// Package prof wires the conventional -cpuprofile/-memprofile flags into
// the odrips command-line tools so `make profile` (and ad-hoc runs) can
// feed `go tool pprof` directly.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile when cpu is non-empty. The returned stop
// function ends the CPU profile and, when mem is non-empty, forces a GC
// and writes an allocation profile. Call stop exactly once, before the
// process exits normally; error-path os.Exit calls simply drop the
// profiles, which is fine — a failed run's profile is not useful.
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
