package platform

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"odrips/internal/aonio"
	"odrips/internal/chipset"
	"odrips/internal/clock"
	"odrips/internal/ctxstore"
	"odrips/internal/dram"
	"odrips/internal/ltr"
	"odrips/internal/mee"
	"odrips/internal/pml"
	"odrips/internal/pmu"
	"odrips/internal/power"
	"odrips/internal/sgx"
	"odrips/internal/sim"
	"odrips/internal/sram"
	"odrips/internal/timer"
)

// phase is the fine-grained power level within the four architectural
// states: trailer covers the hand-over windows (timer migration, FET slew,
// crystal restart) where almost everything is already down.
type phase int

const (
	phActive phase = iota
	phEntry
	phTrailer
	phIdle
	phExit
)

// Platform is a fully assembled mobile system.
type Platform struct {
	cfg Config
	bud Budget

	sched *sim.Scheduler
	meter *power.Meter

	// Board.
	xtal24 *clock.Oscillator
	xtal32 *clock.Oscillator
	ring   *aonio.Ring
	fet    *aonio.FET
	mem    *dram.Module

	// Processor.
	procDom     *clock.Domain
	mainTimer   *timer.FastCounter
	saSRAM      *sram.Array
	computeSRAM *sram.Array
	bootSRAM    *sram.Array
	bootFSM     *pmu.BootFSM
	linkP2C     *pml.Link
	linkC2P     *pml.Link
	ltrTable    *ltr.Table
	cstates     []pmu.CState
	rr          *sgx.RangeRegisters
	ctxRegion   sgx.Range
	meeKey      [32]byte
	eng         *mee.Engine
	ctx         *ctxstore.Context
	ctxImage    []byte
	ctxHash     [32]byte
	emram       []byte // ODRIPS-MRAM: on-chip non-volatile context store

	// emramHash memoizes sha256(emram) for the boundary fingerprint;
	// every emram write either installs the matching digest (the save
	// flow rewrites ctxImage, whose digest is precomputed) or clears
	// emramHashOK (fault injection flips bits in place).
	emramHash   [32]byte
	emramHashOK bool

	// Precomputed per-cycle constants and pooled restore buffers. The
	// context is immutable after New, so the split images, boot config,
	// and PMU vector never change; restores verify into fixed buffers so
	// the steady-state cycle path does not allocate.
	saImage    []byte
	cpImage    []byte
	mcCfg      []byte
	pmuVec     []byte
	saBuf      []byte
	cpBuf      []byte
	restoreBuf []byte

	// Chipset.
	hub *chipset.Hub

	// Power components (the ones the flows drive directly).
	cCompute, cSA, cWake, cPMU   *power.Component
	cChipsetAon, cMonitor, cMisc *power.Component
	cFET                         *power.Component
	cVRFixed, cVRAonIO           *power.Component
	cVRSram, cVRPmu              *power.Component

	// Derived active draws (nominal mW).
	computeActiveMW float64
	saActiveMW      float64
	saEntryMW       float64
	saExitMW        float64

	// Run state.
	tracker       *tracker
	state         power.State
	inFlow        bool
	err           error
	flowStats     flowStats
	wakeCount     map[chipset.WakeSource]uint64
	shallowCounts map[string]uint64

	// In-flight flow plumbing.
	timerEpoch    sim.Time
	cycleDone     func()
	idleFor       sim.Duration
	plan          wakePlan
	armedEv       sim.Event
	restoredTimer uint64
	p2cContinue   func()
	c2pContinue   func()
	pendingWake   *chipset.WakeSource
	quiesce       []func()
	flowTrace     []FlowStep

	// Fault plane (nil unless InjectFaults installed a plan) and the
	// recovery-edge state it drives.
	fplane      *faultPlane
	cycleIdx    int                 // 0-based cycle index within RunCycles
	degraded    bool                // demoted to DRIPS-with-retention-SRAM
	wantAbort   bool                // next entry-racing wake aborts instead of latching
	abortWake   *chipset.WakeSource // abort requested; unwind at next step boundary
	entryStartE power.Energy        // battery energy at entry start (abort accounting)
	entryM      entryMilestones

	// Fast-forward engine state (DESIGN.md §12).
	ff ffState
}

// entryMilestones tracks which entry stages completed, so an abort unwinds
// exactly the deepest already-safe state.
type entryMilestones struct {
	vrOff         bool
	ctxSaved      bool
	selfRefresh   bool
	timerMigrated bool
	gatedIOs      bool
	clockShut     bool
}

type flowStats struct {
	entries, exits         uint64
	entryTotal, exitTotal  sim.Duration
	entryMax, exitMax      sim.Duration
	ctxSaveLat, ctxRestore sim.Duration
	ctxVerified            uint64
}

// New assembles and boots a platform.
func New(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bud := Skylake()
	if cfg.Generation == GenHaswell {
		bud = Haswell()
	}
	if cfg.ExitReinitScale > 0 {
		bud.ReinitWake = sim.Duration(float64(bud.ReinitWake) * cfg.ExitReinitScale)
		bud.ReinitAONIO = sim.Duration(float64(bud.ReinitAONIO) * cfg.ExitReinitScale)
		bud.ReinitCtx = sim.Duration(float64(bud.ReinitCtx) * cfg.ExitReinitScale)
		bud.ReinitMRAM = sim.Duration(float64(bud.ReinitMRAM) * cfg.ExitReinitScale)
	}
	if cfg.LLCDirtyFraction > 0 {
		bud.LLCDirtyFraction = cfg.LLCDirtyFraction
	}
	if cfg.TDPWatts > 0 && cfg.TDPWatts != 15 {
		// Active-state power tracks the TDP class sublinearly (lower-TDP
		// parts run lower voltage/frequency but are not proportionally
		// cheaper); transitions scale half as hard; the always-on idle
		// infrastructure — the thing ODRIPS attacks — stays put.
		f := cfg.TDPWatts / 15
		activeScale := 0.25 + 0.75*f
		transScale := 0.6 + 0.4*f
		for freq, mw := range bud.C0TargetMW {
			bud.C0TargetMW[freq] = mw * activeScale
		}
		for idx, mw := range bud.ShallowTargetMW {
			bud.ShallowTargetMW[idx] = mw * activeScale
		}
		bud.EntryTargetMW *= transScale
		bud.ExitTargetMW *= transScale
	}
	s := sim.NewScheduler()
	m := power.NewMeter(s, bud.EffActive)

	p := &Platform{
		cfg:           cfg,
		bud:           bud,
		sched:         s,
		meter:         m,
		wakeCount:     make(map[chipset.WakeSource]uint64),
		shallowCounts: make(map[string]uint64),
		ff:            ffState{mode: DefaultFastForward()},
	}

	// Board crystals.
	p.xtal24 = clock.NewOscillator(s, "xtal24", 24_000_000, cfg.XtalFastPPB, bud.Xtal24Startup)
	p.xtal32 = clock.NewOscillator(s, "xtal32", 32_768, cfg.XtalSlowPPB, 0)
	cX24 := m.Register("board.xtal24", "board", power.Delivered)
	cX32 := m.Register("board.xtal32", "board", power.Delivered)
	p.xtal24.OnPower = func(on bool) {
		if on {
			m.Set(cX24, bud.Xtal24MW)
		} else {
			m.Set(cX24, 0)
		}
	}
	p.xtal32.OnPower = func(on bool) {
		if on {
			m.Set(cX32, bud.Xtal32MW)
		} else {
			m.Set(cX32, 0)
		}
	}
	p.xtal24.PowerOn()
	p.xtal32.PowerOn()
	s.RunFor(sim.Millisecond) // crystals stable before bring-up

	// Memory.
	memCfg := dram.Config{
		Tech:          cfg.MainMemory,
		CapacityBytes: 8 << 30,
		TransferMTps:  cfg.DRAMMTps,
		Channels:      2,
		BytesPerBeat:  8,
	}
	p.mem = dram.New(memCfg)
	cDram := m.Register("dram.module", "dram", power.Delivered)
	p.mem.OnDraw = func(mw float64) { m.Set(cDram, mw) }
	m.Set(cDram, p.mem.IdleDrawMW(dram.Active))

	// Processor AON IO ring and board FET.
	p.ring = aonio.NewRing(aonio.StandardIOs())
	cRing := m.Register("proc.aonio", "processor", power.Delivered)
	p.ring.OnDraw = func(mw float64) { m.Set(cRing, mw*bud.ProcessLeakageScale) }
	m.Set(cRing, p.ring.TotalDrawMW()*bud.ProcessLeakageScale)
	p.fet = aonio.NewFET(p.ring)
	if cfg.FETLeakageFraction > 0 {
		p.fet.LeakageFraction = cfg.FETLeakageFraction
	}
	p.cFET = m.Register("board.fet", "board", power.Delivered)

	// Processor clock domain and main timer (TSC).
	p.procDom = clock.NewDomain("proc.clk24", p.xtal24)
	p.mainTimer = timer.NewFastCounter(s, "proc.main-timer", p.procDom)
	if err := p.mainTimer.Set(0); err != nil {
		return nil, fmt.Errorf("platform: main timer: %w", err)
	}
	p.timerEpoch = s.Now()

	// Save/restore SRAMs.
	p.saSRAM = sram.New("sa-sr", sram.ProcessorProcess, bud.SASRAMBytes)
	p.computeSRAM = sram.New("compute-sr", sram.ProcessorProcess, bud.ComputeSRAMBytes)
	p.bootSRAM = sram.New("boot", sram.ProcessorProcess, ctxstore.BootImageSize)
	for _, w := range []struct {
		arr  *sram.Array
		name string
	}{
		{p.saSRAM, "proc.sram.sa"},
		{p.computeSRAM, "proc.sram.compute"},
		{p.bootSRAM, "proc.sram.boot"},
	} {
		comp := m.Register(w.name, "processor", power.Delivered)
		arr := w.arr
		arr.OnDraw = func(mw float64) { m.Set(comp, mw*bud.ProcessLeakageScale) }
		arr.SetState(sram.Active)
	}
	p.bootFSM = pmu.NewBootFSM(p.bootSRAM)

	// Chipset hub.
	p.hub = chipset.New(s, p.xtal24, p.xtal32, p.fet)
	if err := p.hub.Calibrate(); err != nil {
		return nil, err
	}
	p.hub.OnWake = p.onWake

	// PML links (16-cycle deterministic latency each way).
	p.linkP2C = pml.NewLink(s, p.hub.Dom24(), pml.ProcessorToChipset, bud.PMLCycles)
	p.linkC2P = pml.NewLink(s, p.hub.Dom24(), pml.ChipsetToProcessor, bud.PMLCycles)
	powered := func() bool { return p.ring.Usable(aonio.IOPMLToChipset) }
	p.linkP2C.Powered = powered
	p.linkC2P.Powered = powered
	p.linkP2C.OnDeliver = p.handleP2C
	p.linkC2P.OnDeliver = p.handleC2P

	// LTR/TNTE and C-states.
	p.ltrTable = ltr.NewTable(s)
	if cfg.Generation == GenHaswell {
		p.cstates = pmu.HaswellCStates()
	} else {
		p.cstates = pmu.SkylakeCStates()
	}

	// Processor context and, when configured, the protected DRAM region.
	p.ctx = ctxstore.GenerateSkylake(cfg.Seed)
	p.ctxImage = p.ctx.Serialize()
	p.ctxHash = sha256.Sum256(p.ctxImage)
	p.saImage = p.ctx.Subset(ctxstore.SASectionNames()).Serialize()
	p.cpImage = p.ctx.Subset(ctxstore.ComputeSectionNames()).Serialize()
	p.saBuf = make([]byte, len(p.saImage))
	p.cpBuf = make([]byte, len(p.cpImage))
	p.mcCfg = p.mcConfig()
	p.pmuVec = p.pmuVector()
	if cfg.Techniques.Has(CtxSGXDRAM) {
		var err error
		p.rr, err = sgx.NewRangeRegisters(memCfg.CapacityBytes, 128<<20)
		if err != nil {
			return nil, err
		}
		blocks := (len(p.ctxImage) + mee.BlockSize - 1) / mee.BlockSize
		p.restoreBuf = make([]byte, blocks*mee.BlockSize)
		layout, err := mee.PlanLayout(0, blocks)
		if err != nil {
			return nil, err
		}
		p.ctxRegion, err = p.rr.Allocate(layout.TotalBytes())
		if err != nil {
			return nil, err
		}
		seedKey(&p.meeKey, cfg.Seed)
		p.eng, err = mee.New(p.mem, p.ctxRegion.Base, blocks, p.meeKey, mee.DefaultCacheLines)
		if err != nil {
			return nil, err
		}
	}

	// Flow-driven logic components.
	p.cCompute = m.Register("proc.compute", "processor", power.Delivered)
	p.cSA = m.Register("proc.sa", "processor", power.Delivered)
	p.cWake = m.Register("proc.wake-timer", "processor", power.Delivered)
	p.cPMU = m.Register("proc.pmu", "processor", power.Delivered)
	p.cChipsetAon = m.Register("chipset.aon", "chipset", power.Delivered)
	p.cMonitor = m.Register("chipset.monitor", "chipset", power.Delivered)
	p.cMisc = m.Register("board.misc", "board", power.Delivered)
	p.cVRFixed = m.Register("vr.fixed", "power-delivery", power.Direct)
	p.cVRAonIO = m.Register("vr.aonio", "power-delivery", power.Direct)
	p.cVRSram = m.Register("vr.sram", "power-delivery", power.Direct)
	p.cVRPmu = m.Register("vr.pmu", "power-delivery", power.Direct)

	p.deriveActiveDraws()

	// Baseline wake monitoring: the chipset samples the EC thermal line
	// with the fast clock (part of the chipset AON budget).
	if err := p.hub.MonitorThermal(p.xtal24); err != nil {
		return nil, err
	}

	p.tracker = newTracker(s, m)
	p.state = power.Active
	p.applyPhase(phActive)
	p.ffAttachPersist()
	return p, nil
}

func seedKey(key *[32]byte, seed int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	*key = sha256.Sum256(append([]byte("odrips-mee-key"), b[:]...))
}

// deriveActiveDraws backs the big active draws out of the battery-level
// targets so the C0/entry/exit totals hit the calibrated 3 W / 1 W / 1.5 W.
func (p *Platform) deriveActiveDraws() {
	bud := p.bud
	scale := bud.ProcessLeakageScale
	sramActive := (p.saSRAM.DrawMW(sram.Active) + p.computeSRAM.DrawMW(sram.Active) + p.bootSRAM.DrawMW(sram.Active)) * scale
	fixed := bud.WakeTimerActiveMW + p.ring.TotalDrawMW()*scale + sramActive +
		bud.PMUActiveMW + bud.Xtal24MW + bud.Xtal32MW + bud.ChipsetAonBusyMW +
		bud.MonitorFastMW + bud.BoardMiscBusyMW + bud.DRAMActiveRefMW
	direct := bud.VRFixedMW + bud.VRAonIOMW + bud.VRSramMW + bud.VRPmuMW

	c0 := bud.C0TargetMW[p.cfg.CoreFreqMHz]
	total := bud.computeDrawForTarget(c0, bud.EffActive, fixed, direct)
	p.saActiveMW = total * 0.12
	p.computeActiveMW = total - p.saActiveMW
	p.saEntryMW = bud.computeDrawForTarget(bud.EntryTargetMW, bud.EffTransition, fixed, direct)
	p.saExitMW = bud.computeDrawForTarget(bud.ExitTargetMW, bud.EffTransition, fixed, direct)
}

// applyPhase sets the flow-driven component draws and the power-delivery
// efficiency for a phase. Hardware-owned components (SRAM arrays, DRAM,
// AON IO ring, crystals) push their own draws on state changes.
func (p *Platform) applyPhase(ph phase) {
	bud := p.bud
	m := p.meter
	idleTech := p.effTech()

	switch ph {
	case phActive:
		m.SetEfficiency(bud.EffActive)
		m.Set(p.cCompute, p.computeActiveMW)
		m.Set(p.cSA, p.saActiveMW)
		m.Set(p.cWake, bud.WakeTimerActiveMW)
		m.Set(p.cPMU, bud.PMUActiveMW)
		m.Set(p.cChipsetAon, bud.ChipsetAonBusyMW)
		m.Set(p.cMonitor, bud.MonitorFastMW)
		m.Set(p.cMisc, bud.BoardMiscBusyMW)
	case phEntry, phExit:
		m.SetEfficiency(bud.EffTransition)
		m.Set(p.cCompute, 0)
		if ph == phEntry {
			m.Set(p.cSA, p.saEntryMW)
		} else {
			m.Set(p.cSA, p.saExitMW)
		}
		m.Set(p.cWake, bud.WakeTimerIdleMW)
		m.Set(p.cPMU, bud.PMUActiveMW)
		m.Set(p.cChipsetAon, bud.ChipsetAonBusyMW)
		m.Set(p.cMonitor, bud.MonitorFastMW)
		m.Set(p.cMisc, bud.BoardMiscBusyMW)
	case phTrailer:
		m.SetEfficiency(bud.EffTransition)
		m.Set(p.cCompute, 0)
		m.Set(p.cSA, bud.TrailerSAMW)
		m.Set(p.cWake, 0)
		m.Set(p.cPMU, bud.PMUAonIdleMW)
		m.Set(p.cChipsetAon, bud.ChipsetAonIdleMW)
		m.Set(p.cMisc, bud.BoardMiscIdleMW)
	case phIdle:
		m.SetEfficiency(bud.EffIdle)
		m.Set(p.cCompute, 0)
		m.Set(p.cSA, 0)
		if idleTech.Has(WakeUpOff) {
			m.Set(p.cWake, 0)
			m.Set(p.cMonitor, bud.MonitorSlowMW)
		} else {
			m.Set(p.cWake, bud.WakeTimerIdleMW)
			m.Set(p.cMonitor, bud.MonitorFastMW)
		}
		switch {
		case idleTech == ODRIPS && p.cfg.MainMemory == dram.PCM:
			m.Set(p.cPMU, bud.PMUAonGatedPCMMW)
		case idleTech == ODRIPS || (idleTech.Has(WakeUpOff|AONIOGate) && p.effEMRAM()):
			m.Set(p.cPMU, bud.PMUAonGatedMW)
		default:
			m.Set(p.cPMU, bud.PMUAonIdleMW)
		}
		m.Set(p.cChipsetAon, bud.ChipsetAonIdleMW)
		m.Set(p.cMisc, bud.BoardMiscIdleMW)
	}

	// Regulator quiescent draws follow the rails they serve.
	m.Set(p.cVRFixed, bud.VRFixedMW)
	if p.ring.Gated() {
		m.Set(p.cVRAonIO, 0)
	} else {
		m.Set(p.cVRAonIO, bud.VRAonIOMW)
	}
	if p.saSRAM.State() == sram.Off && p.computeSRAM.State() == sram.Off {
		m.Set(p.cVRSram, 0)
	} else {
		m.Set(p.cVRSram, bud.VRSramMW)
	}
	if ph == phIdle && p.cfg.Techniques.Has(WakeUpOff) {
		m.Set(p.cVRPmu, bud.VRPmuShedMW)
	} else {
		m.Set(p.cVRPmu, bud.VRPmuMW)
	}
	m.Set(p.cFET, p.fet.ResidualLeakageMW())
}

// Scheduler exposes the simulation clock (tests and experiments).
func (p *Platform) Scheduler() *sim.Scheduler { return p.sched }

// Meter exposes the energy accountant.
func (p *Platform) Meter() *power.Meter { return p.meter }

// Hub exposes the chipset wake hub.
func (p *Platform) Hub() *chipset.Hub { return p.hub }

// Mem exposes the memory module.
func (p *Platform) Mem() *dram.Module { return p.mem }

// CtxRegion returns the SGX-protected DRAM region holding the context
// (zero Range unless CtxSGXDRAM is enabled).
func (p *Platform) CtxRegion() sgx.Range { return p.ctxRegion }

// Active reports whether the platform is currently in C0. Device models
// use it to decide between draining their buffers and accumulating.
func (p *Platform) Active() bool { return p.state == power.Active }

// Wake injects an external wake event through the chipset's always-on
// domain (a peripheral interrupt). Safe to call in any state: wakes racing
// the entry flow are latched, wakes while active or exiting are no-ops.
func (p *Platform) Wake() { p.hub.ExternalWake() }

// OnQuiesce registers a callback invoked when a RunCycles invocation has
// completed its final cycle. Device models with self-scheduling traffic
// register their Stop here so the event queue can drain.
func (p *Platform) OnQuiesce(fn func()) { p.quiesce = append(p.quiesce, fn) }

// Config returns the build configuration.
func (p *Platform) Config() Config { return p.cfg }

// Budget returns the calibrated power/latency table.
func (p *Platform) Budget() Budget { return p.bud }

// LTR exposes the latency-tolerance table so device models can report.
func (p *Platform) LTR() *ltr.Table { return p.ltrTable }

// MaintenanceDuration returns the kernel-maintenance busy time for the
// configured core frequency and memory rate (§7: 100–300 ms; 150 ms at the
// baseline 0.8 GHz).
func (p *Platform) MaintenanceDuration() sim.Duration {
	secs := p.bud.MaintenanceCycles / (float64(p.cfg.CoreFreqMHz) * 1e6)
	secs *= p.bud.MaintSlowdownByMTps[p.cfg.DRAMMTps]
	return sim.FromSeconds(secs)
}

// TimerCounts converts a duration to main-timer (24 MHz nominal) counts,
// as PMU firmware does when arming wake events.
func TimerCounts(d sim.Duration) uint64 {
	return uint64(d.Seconds()*24e6 + 0.5)
}
