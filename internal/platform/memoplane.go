package platform

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"odrips/internal/lru"
	"odrips/internal/memostore"
)

// This file is the shared cross-device cycle-memo plane, the fleet
// engine's concurrency substrate (DESIGN.md §15). A MemoPlane owns one
// bounded cache of cycle-record bundles, keyed by memo class — the
// seed-zeroed canonical configuration — so every device of a fleet that
// shares a configuration class publishes into and adopts from the same
// record set: the first device to discover a steady-state cycle pays for
// it, every other device fast-forwards through it.
//
// Why cross-device sharing is sound: a record is only ever used when the
// live boundary fingerprint recurs, and the fingerprint is recomputed
// from live platform state at every cycle boundary (ffcycle.go). A record
// published by device A and adopted by device B therefore replays on B
// only at boundaries where B's observable state is bit-identical to the
// state A recorded from — any divergence (different drift, different
// context bytes reflected in the eMRAM hash, a fault's aftermath) changes
// the fingerprint and degrades to a full simulation, never to corruption.
// Zeroing the seed in the class key is the same identity the experiment
// runner's canonicalPointConfig proves empirically: the seed varies
// context bytes, and every fingerprinted quantity is size- or
// state-based, never DRAM-content-based.
//
// Determinism: bundle publication is commutative — records are immutable
// once published, first publisher of a key wins, and two publishers of
// the same key hold byte-identical records (same fingerprint, same cycle
// parameters, deterministic simulation) — so the plane's record content
// is independent of attach/publish interleaving as long as no class is
// evicted mid-job. Per-device replay statistics are NOT interleaving
// independent against a live plane (whether a device records or replays a
// class depends on who got there first); fleets that need byte-identical
// stats at any worker count run against a frozen MemoSnapshot instead
// (the fleet engine's two-phase discipline).

// DefaultMemoPlaneClasses bounds a plane that was created without an
// explicit class budget.
const DefaultMemoPlaneClasses = 256

// MemoPlane is a bounded, concurrent, shareable cycle-memo plane. All
// methods are safe for concurrent use; a nil plane is inert.
type MemoPlane struct {
	store *memostore.Store // optional persistence backing; may be nil

	// mu serializes class acquisition so exactly one bundle exists per
	// class (a racing double-build would split publishers across orphan
	// bundles). Record access inside a bundle has its own lock.
	mu      sync.Mutex
	classes *lru.Cache[string, *ffBundle]

	adopted atomic.Uint64

	// warm single-flights cold-class discovery across in-process callers
	// (WarmClass); the counters record the election outcomes. All waits
	// happen here and in the store's claim protocol — never under mu —
	// so a parked warmer cannot block unrelated class acquisition.
	warm       memostore.Flight[struct{}]
	warmLeads  atomic.Uint64
	warmShared atomic.Uint64
}

// NewMemoPlane creates a plane bounded to maxClasses configuration
// classes (maxClasses < 1 uses DefaultMemoPlaneClasses). store, when
// non-nil and readable, warms classes from disk on first acquisition and
// receives dirty bundles on Flush and on eviction; a Verify-mode store is
// treated as detached — the plane's verification path is
// -fastforward=verify, which re-simulates and diffs adopted records.
func NewMemoPlane(store *memostore.Store, maxClasses int) *MemoPlane {
	if maxClasses < 1 {
		maxClasses = DefaultMemoPlaneClasses
	}
	if store.Mode() == memostore.Verify {
		store = nil
	}
	return &MemoPlane{
		store:   store,
		classes: lru.New[string, *ffBundle](maxClasses),
	}
}

// MemoClassKey maps a configuration to its memo class: the seed-zeroed
// canonical key under which the plane shares cycle records. See the
// soundness argument at the top of this file for why seed zeroing is an
// identity here.
func MemoClassKey(cfg Config) string {
	cfg.Seed = 0
	return ffConfigKey(cfg)
}

// acquire returns the plane's bundle for classKey, creating (and, with a
// readable store, disk-loading) it on first use. If creating the bundle
// evicts another class, the victim's unsaved records are flushed to the
// store first so the bound costs a reload, not recorded work.
func (pl *MemoPlane) acquire(classKey string) *ffBundle {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if b, ok := pl.classes.Get(classKey); ok {
		return b
	}
	b := &ffBundle{
		key:      classKey,
		loaded:   true,
		records:  make(map[ffKey]*cycleRecord),
		fromDisk: make(map[ffKey]bool),
	}
	switch payload, ok, err := pl.store.Load("cycles", []byte(classKey)); {
	case err != nil:
		// Typed corruption is a fail-safe miss by the store's contract:
		// counted there, the class starts cold, a later flush overwrites
		// the damaged entry.
	case ok:
		if recs, derr := ffDecodeBundle(payload); derr == nil {
			b.records = recs
			for k := range recs {
				b.fromDisk[k] = true
			}
		}
		// A decode error degrades to a cold class (see ffAcquireBundle).
	}
	if _, victim, evicted := pl.classes.Put(classKey, b); evicted {
		pl.flushBundle(victim)
	}
	return b
}

// Attach hooks a platform into the plane: it adopts every record already
// known for the platform's memo class and publishes the records the
// platform goes on to discover. The platform's own persistent-store
// attachment (if New made one) is superseded — the plane owns disk
// persistence for its classes. A nil plane leaves the platform untouched.
func (pl *MemoPlane) Attach(p *Platform) {
	if pl == nil {
		return
	}
	b := pl.acquire(MemoClassKey(p.cfg))
	ff := &p.ff
	ff.store = nil // the plane flushes; RunCycles' own flush becomes a no-op
	ff.persist = b
	ff.verifyKeys = nil
	ff.recordCap = ffPersistRecordCap

	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.records) == 0 {
		return
	}
	if ff.records == nil {
		ff.records = make(map[ffKey]*cycleRecord, len(b.records))
	}
	for k, cr := range b.records {
		ff.records[k] = cr
	}
	pl.adopted.Add(uint64(len(b.records)))
}

// WarmClass runs compute — a full device simulation expected to
// discover classKey's cycle records through an attached platform —
// under the plane's cold-class coordination (DESIGN.md §17). A class
// that already holds records needs none: compute replays cheaply. For a
// cold class, concurrent in-process callers elect one leader
// (single-flight), and when the plane has a writable store the leader
// additionally coordinates across processes via the store's claim
// protocol: it either wins the claim (computes, flushes the class
// eagerly so sibling processes adopt as soon as possible, releases) or
// adopts the winning process's flushed bundle before running. Every
// caller still runs its own compute — outcomes are per-caller; what is
// deduplicated is the discovery cost. Coordination only ever fails
// toward uncoordinated computing (byte-identical results, duplicated
// work): waits respect ctx and claim staleness, and no wait holds a
// plane or bundle lock. A nil plane just computes.
func (pl *MemoPlane) WarmClass(ctx context.Context, classKey string, compute func() error) error {
	if pl == nil {
		return compute()
	}
	b := pl.acquire(classKey)
	b.mu.Lock()
	cold := len(b.records) == 0
	b.mu.Unlock()
	if !cold {
		return compute()
	}
	var err error
	_, shared, _ := pl.warm.Do(classKey, func() (struct{}, error) {
		claim := pl.claimClass(ctx, b)
		err = compute()
		if claim != nil {
			pl.flushBundle(b)
			claim.Release()
		}
		return struct{}{}, nil
	})
	if shared {
		// Piggybacked on an in-process leader: the class is as warm as
		// it is going to get; run our own simulation against it.
		err = compute()
		pl.warmShared.Add(1)
	} else {
		pl.warmLeads.Add(1)
	}
	return err
}

// claimClass coordinates one cold class across processes. It returns an
// owned claim (the caller computes, flushes, releases) or nil after
// either adopting another process's flushed bundle into b or deciding
// to compute uncoordinated (no writable store, filesystem trouble, ctx
// canceled, or persistent claim churn).
func (pl *MemoPlane) claimClass(ctx context.Context, b *ffBundle) *memostore.Claim {
	st := pl.store
	if !st.Mode().Writable() {
		return nil
	}
	key := []byte(b.key)
	// Bounded rounds: each either wins the claim, adopts a landed
	// bundle, or observes a vanished/stale claim and tries again.
	for round := 0; round < 8; round++ {
		c, err := st.Claim("cycles", key)
		if err != nil {
			return nil
		}
		if c != nil {
			return c
		}
		payload, ok, werr := st.AwaitClaimed(ctx, "cycles", key)
		if werr != nil {
			return nil // ctx canceled; compute observes it too
		}
		if ok {
			if recs, derr := ffDecodeBundle(payload); derr == nil {
				b.adopt(recs)
			}
			// An undecodable payload degrades to a cold class, exactly
			// like acquire's disk path.
			return nil
		}
	}
	return nil
}

// adopt merges disk-origin records into the bundle. First publisher of
// a key wins, as everywhere in the memo plane — two holders of one key
// carry byte-identical records by determinism. Adopted records are not
// dirty: the flushing process already persisted them.
func (b *ffBundle) adopt(recs map[ffKey]*cycleRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k, cr := range recs {
		if _, ok := b.records[k]; !ok {
			b.records[k] = cr
			b.fromDisk[k] = true
		}
	}
}

// flushBundle persists one bundle's unsaved records (no-op without a
// writable store). Callers must not hold the bundle's lock.
func (pl *MemoPlane) flushBundle(b *ffBundle) {
	if b == nil || !pl.store.Mode().Writable() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.dirty || len(b.records) == 0 {
		return
	}
	pl.store.Save("cycles", []byte(b.key), ffEncodeBundle(b.records))
	b.dirty = false
}

// Flush persists every class that gained records since its last flush.
// Fleet jobs call it once at the end instead of paying a disk write per
// device run. A nil plane is a no-op.
func (pl *MemoPlane) Flush() {
	if pl == nil {
		return
	}
	for _, key := range pl.classes.Keys() {
		if b, ok := pl.classes.Peek(key); ok {
			pl.flushBundle(b)
		}
	}
}

// MemoPlaneStats is a point-in-time snapshot of a plane.
type MemoPlaneStats struct {
	Classes    int       `json:"classes"`     // live configuration classes
	Records    int       `json:"records"`     // cycle records across all live classes
	MaxClasses int       `json:"max_classes"` // the class bound
	Adopted    uint64    `json:"adopted"`     // records handed to attaching platforms so far
	WarmLeads  uint64    `json:"warm_leads"`  // WarmClass cold-class elections led
	WarmShared uint64    `json:"warm_shared"` // WarmClass calls that shared an in-process leader's discovery
	Class      lru.Stats `json:"class_cache"` // class-cache counters (hits/misses/puts/evictions)
}

// Stats snapshots the plane. Records walks every live class, so this is
// a reporting call, not a hot-path one. A nil plane reports zeros.
func (pl *MemoPlane) Stats() MemoPlaneStats {
	if pl == nil {
		return MemoPlaneStats{}
	}
	st := MemoPlaneStats{
		Classes:    pl.classes.Len(),
		MaxClasses: pl.classes.Cap(),
		Adopted:    pl.adopted.Load(),
		WarmLeads:  pl.warmLeads.Load(),
		WarmShared: pl.warmShared.Load(),
		Class:      pl.classes.Stats(),
	}
	for _, key := range pl.classes.Keys() {
		if b, ok := pl.classes.Peek(key); ok {
			b.mu.Lock()
			st.Records += len(b.records)
			b.mu.Unlock()
		}
	}
	return st
}

// StoreStats snapshots the plane's backing store (zeros when detached).
func (pl *MemoPlane) StoreStats() memostore.Stats {
	if pl == nil {
		return memostore.Stats{}
	}
	return pl.store.Stats()
}

// MemoSnapshot is a frozen copy of a plane's record content. Platforms
// attached to a snapshot adopt records but never publish, so a run
// against a snapshot is a pure function of (configuration, workload,
// snapshot) — the property the fleet engine's phase-2 executions need for
// replay statistics that are byte-identical at any shard/worker count.
// The record pointers are shared with the plane (records are immutable
// once published); only the index maps are copied.
type MemoSnapshot struct {
	classes map[string]map[ffKey]*cycleRecord
}

// Snapshot freezes the plane's current record content. Classes are
// walked in sorted key order so the copy itself is deterministic for a
// deterministic plane.
func (pl *MemoPlane) Snapshot() *MemoSnapshot {
	snap := &MemoSnapshot{classes: make(map[string]map[ffKey]*cycleRecord)}
	if pl == nil {
		return snap
	}
	keys := pl.classes.Keys()
	sort.Strings(keys)
	for _, key := range keys {
		b, ok := pl.classes.Peek(key)
		if !ok {
			continue
		}
		b.mu.Lock()
		if len(b.records) > 0 {
			recs := make(map[ffKey]*cycleRecord, len(b.records))
			for k, cr := range b.records {
				recs[k] = cr
			}
			snap.classes[key] = recs
		}
		b.mu.Unlock()
	}
	return snap
}

// Classes returns the number of classes holding records in the snapshot.
func (s *MemoSnapshot) Classes() int { return len(s.classes) }

// Records returns the total record count across the snapshot's classes.
func (s *MemoSnapshot) Records() int {
	n := 0
	for _, recs := range s.classes {
		n += len(recs)
	}
	return n
}

// Attach hooks a platform into the frozen snapshot: records for the
// platform's memo class are adopted, nothing is published anywhere, and
// no store is attached — the run can no longer observe or influence any
// shared mutable state through the memo layer.
func (s *MemoSnapshot) Attach(p *Platform) {
	if s == nil {
		return
	}
	ff := &p.ff
	ff.store = nil
	ff.persist = nil
	ff.verifyKeys = nil
	ff.recordCap = ffPersistRecordCap
	recs := s.classes[MemoClassKey(p.cfg)]
	if len(recs) == 0 {
		return
	}
	if ff.records == nil {
		ff.records = make(map[ffKey]*cycleRecord, len(recs))
	}
	for k, cr := range recs {
		ff.records[k] = cr
	}
}
