package platform

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"sync"

	"odrips/internal/memostore"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// This file persists the cycle-replay memo (ffcycle.go) through
// internal/memostore (DESIGN.md §13). The unit of persistence is a
// bundle: every cycle record for one canonical platform configuration,
// stored under the configuration's printed form as the content key. The
// store's header (schema version + build fingerprint) invalidates the
// cache wholesale on any code change, so the key only needs to be stable
// within a build — Config is a pure value type, so %#v is.
//
// Soundness does not rest on the decoder: a loaded record is only ever
// used when the live boundary fingerprint recurs (recomputed from live
// state every boundary, exactly as for in-process records), so a stale
// or mismatched record is unreachable, and -memocache=verify
// additionally re-simulates every disk-loaded class and diffs the full
// record, the same contract as -fastforward=verify.
//
// Bundles are shared across platforms in-process — the ROADMAP's
// "shared cross-device memo store" — so worker-pool sweeps and repeated
// runs of one config reuse each other's records. The cache itself is
// owned by the memostore.Store it mirrors (ffBundles, via Store.View),
// never by a package-level variable, so its identity follows the
// store's and the odrips-vet globalstate rule holds.

// ffPersistRecordCap replaces ffRecordCap when a persistent store is
// attached: a six-hour jittered run produces one class per cycle (~720),
// all of which are worth keeping once they can be reused across runs.
const ffPersistRecordCap = 8192

// ffBundleVersion versions the bundle payload layout inside the store
// entry (the store's schema version covers the envelope, this one the
// cycle-record serialization).
const ffBundleVersion = 1

// ffBundleSchemaHash pins the wire schema of the bundle codec. The marker
// below makes odrips-vet compute a structural hash over ffKey and
// cycleRecord (and every module type reachable from them) and compare it
// to this constant: change the shape of anything ffEncodeBundle
// serializes and vet fails with the new hash, forcing a deliberate
// ffBundleVersion bump alongside the re-recorded constant.
//
//odrips:schema ffKey cycleRecord
const ffBundleSchemaHash = "e402e53416a3e4030e46a2b0cbaae17f6a97a1f3a5632e294e16b34043bda70a"

// ffBundle is the in-process face of one persisted bundle. Its mutex
// guards records/fromDisk/dirty; the record values themselves are
// immutable once published, so readers may hold pointers lock-free.
type ffBundle struct {
	key string

	mu       sync.Mutex
	loaded   bool
	records  map[ffKey]*cycleRecord
	fromDisk map[ffKey]bool
	dirty    bool
}

// ffBundles owns the cross-platform bundle cache for one store. It is
// never a package-level variable: the instance hangs off the
// memostore.Store that feeds it (Store.View), so its identity and
// lifetime follow the store's — a test swapping stores implicitly
// starts from an empty cache, and the odrips-vet globalstate rule holds
// for this package.
type ffBundles struct {
	mu      sync.Mutex
	bundles map[string]*ffBundle
}

// ffBundleViewClass names the platform's view slot on a store.
const ffBundleViewClass = "platform.cycles"

// ffBundleView returns the store-owned bundle cache.
func ffBundleView(s *memostore.Store) *ffBundles {
	v, _ := s.View(ffBundleViewClass, func() any {
		return &ffBundles{bundles: make(map[string]*ffBundle)}
	}).(*ffBundles)
	return v
}

// ffConfigKey is the bundle content key for a platform configuration.
func ffConfigKey(cfg Config) string { return fmt.Sprintf("%#v", cfg) }

// ffAcquireBundle returns (creating and disk-loading if needed) the
// shared bundle for cfgKey under store s.
func ffAcquireBundle(s *memostore.Store, cfgKey string) *ffBundle {
	view := ffBundleView(s)
	view.mu.Lock()
	b := view.bundles[cfgKey]
	if b == nil {
		b = &ffBundle{
			key:      cfgKey,
			records:  make(map[ffKey]*cycleRecord),
			fromDisk: make(map[ffKey]bool),
		}
		view.bundles[cfgKey] = b
	}
	view.mu.Unlock()

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.loaded {
		return b
	}
	b.loaded = true
	switch payload, ok, err := s.Load("cycles", []byte(cfgKey)); {
	case err != nil:
		// Typed corruption (*memostore.CorruptError) is a fail-safe miss
		// by the store's contract: it was counted there, the bundle stays
		// empty, and a later flush overwrites the damaged entry.
	case ok:
		if recs, derr := ffDecodeBundle(payload); derr == nil {
			b.records = recs
			for k := range recs {
				b.fromDisk[k] = true
			}
		}
		// A decode error degrades to an empty bundle: the entry passed
		// the store's checksum but predates a bundle-layout change that
		// forgot to bump ffBundleVersion; recompute and overwrite. The
		// odrips-vet schemahash rule exists to make that path dead code.
	}
	return b
}

// ResetPersistentMemos drops the in-process bundle cache hanging off the
// default store, so the next platform reloads from disk. Benchmarks use
// it to measure the honest disk-warm path; tests use it to simulate a
// fresh process.
func ResetPersistentMemos() {
	memostore.Default().DropView(ffBundleViewClass)
}

// ffAttachPersist hooks the platform's cycle memo to the process default
// store, adopting every already-known record for this configuration.
// Called from New; a nil/off store leaves persistence detached.
func (p *Platform) ffAttachPersist() {
	s := memostore.Default()
	if s.Mode() == memostore.Off {
		return
	}
	ff := &p.ff
	b := ffAcquireBundle(s, ffConfigKey(p.cfg))
	ff.store = s
	ff.persist = b

	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.records) == 0 {
		return
	}
	if ff.records == nil {
		ff.records = make(map[ffKey]*cycleRecord, len(b.records))
	}
	for k, cr := range b.records {
		ff.records[k] = cr
	}
	if s.Mode() == memostore.Verify && len(b.fromDisk) > 0 {
		ff.verifyKeys = make(map[ffKey]bool, len(b.fromDisk))
		for k := range b.fromDisk {
			ff.verifyKeys[k] = true
		}
	}
}

// ffPersistAdd publishes a freshly finalized record to the shared
// bundle. Records are immutable once published, so sharing the pointer
// across platforms is safe.
func (ff *ffState) ffPersistAdd(key ffKey, cr *cycleRecord) {
	b := ff.persist
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.records[key] == nil {
		b.records[key] = cr
		b.dirty = true
	}
}

// ffFlushPersist writes the bundle back to the store when it gained
// records. Called at the end of a successful RunCycles; a write failure
// is dropped (the store counts it).
func (p *Platform) ffFlushPersist() {
	ff := &p.ff
	b := ff.persist
	if b == nil || !ff.store.Mode().Writable() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.dirty || len(b.records) == 0 {
		return
	}
	ff.store.Save("cycles", []byte(b.key), ffEncodeBundle(b.records))
	b.dirty = false
}

// ---- Bundle codec ----
//
// Hand-rolled little-endian serialization in a fixed field order. The
// decoder is total (bounds-checked, error-latched) and reconstructs the
// exact value shapes ffFinalizeRecording produces — non-nil empty steps
// slice, nil-when-empty ltrTimers, always-non-nil shallowD — because
// -memocache=verify diffs disk-loaded records against freshly recorded
// ones with reflect.DeepEqual.

// ffEncodeBundle serializes every record, sorted by key for a
// deterministic artifact.
func ffEncodeBundle(records map[ffKey]*cycleRecord) []byte {
	keys := make([]ffKey, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if c := bytes.Compare(a.fp[:], b.fp[:]); c != 0 {
			return c < 0
		}
		if a.active != b.active {
			return a.active < b.active
		}
		if a.idle != b.idle {
			return a.idle < b.idle
		}
		return a.wake < b.wake
	})

	e := &ffEnc{}
	e.u64(ffBundleVersion)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.b32(k.fp)
		e.i64(int64(k.active))
		e.i64(int64(k.idle))
		e.i64(int64(k.wake))
		ffEncodeRecord(e, records[k])
	}
	return e.b
}

// ffDecodeBundle parses a bundle payload; any malformation is an error
// (the caller degrades to an empty bundle).
func ffDecodeBundle(payload []byte) (map[ffKey]*cycleRecord, error) {
	d := &ffDec{b: payload}
	if v := d.u64(); v != ffBundleVersion {
		return nil, fmt.Errorf("platform: bundle version %d (want %d)", v, ffBundleVersion)
	}
	n := d.len(64) // a key+record is far larger than 64 bytes
	records := make(map[ffKey]*cycleRecord, n)
	for i := 0; i < n && d.err == nil; i++ {
		var k ffKey
		k.fp = d.b32()
		k.active = sim.Duration(d.i64())
		k.idle = sim.Duration(d.i64())
		k.wake = workload.WakeKind(d.i64())
		records[k] = ffDecodeRecord(d)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("platform: bundle has %d trailing bytes", len(d.b)-d.off)
	}
	return records, nil
}

func ffEncodeRecord(e *ffEnc, cr *cycleRecord) {
	e.i64(int64(cr.dur))
	e.b32(cr.endFP)
	e.bool(cr.replayable)

	e.u64(uint64(len(cr.nomD))) // nomD, battD, idleByCmpD share len(comps)
	for i := range cr.nomD {
		e.energy(cr.nomD[i])
		e.energy(cr.battD[i])
		e.energy(cr.idleByCmpD[i])
	}
	for i := 0; i < ffNumStates; i++ {
		e.i64(int64(cr.resD[i]))
		e.energy(cr.enD[i])
	}
	e.u64(cr.transD)

	e.u64(cr.entriesD)
	e.u64(cr.exitsD)
	e.i64(int64(cr.entryTotalD))
	e.i64(int64(cr.exitTotalD))
	e.i64(int64(cr.ctxSaveLat))
	e.i64(int64(cr.ctxRestore))
	e.u64(cr.ctxVerifiedD)

	for i := 0; i < 3; i++ {
		e.u64(cr.wakeD[i])
		e.u64(cr.hubWakeD[i])
	}
	e.bool(cr.endWakeFired)
	shallow := make([]string, 0, len(cr.shallowD))
	for k := range cr.shallowD {
		shallow = append(shallow, k)
	}
	sort.Strings(shallow)
	e.u64(uint64(len(shallow)))
	for _, k := range shallow {
		e.str(k)
		e.u64(cr.shallowD[k])
	}

	e.ctrPatch(cr.mainTimerP)
	e.ctrPatch(cr.unitFastP)
	e.bool(cr.x24P.changed)
	e.i64(int64(cr.x24P.stableOff))

	e.u64(uint64(len(cr.ltrTimers)))
	for _, t := range cr.ltrTimers {
		e.str(t.owner)
		e.i64(int64(t.rel))
	}

	e.bool(cr.engPresent)
	e.u64(cr.rootD)
	e.bool(cr.endPrimed)

	e.u64(uint64(len(cr.steps)))
	for _, s := range cr.steps {
		e.str(s.Flow)
		e.str(s.Step)
		e.i64(int64(s.At))
		e.i64(int64(s.Duration))
		e.u64(math.Float64bits(s.EnergyUJ))
	}
}

func ffDecodeRecord(d *ffDec) *cycleRecord {
	cr := &cycleRecord{}
	cr.dur = sim.Duration(d.i64())
	cr.endFP = d.b32()
	cr.replayable = d.bool()

	nc := d.len(48)
	cr.nomD = make([]power.Energy, nc)
	cr.battD = make([]power.Energy, nc)
	cr.idleByCmpD = make([]power.Energy, nc)
	for i := 0; i < nc; i++ {
		cr.nomD[i] = d.energy()
		cr.battD[i] = d.energy()
		cr.idleByCmpD[i] = d.energy()
	}
	for i := 0; i < ffNumStates; i++ {
		cr.resD[i] = sim.Duration(d.i64())
		cr.enD[i] = d.energy()
	}
	cr.transD = d.u64()

	cr.entriesD = d.u64()
	cr.exitsD = d.u64()
	cr.entryTotalD = sim.Duration(d.i64())
	cr.exitTotalD = sim.Duration(d.i64())
	cr.ctxSaveLat = sim.Duration(d.i64())
	cr.ctxRestore = sim.Duration(d.i64())
	cr.ctxVerifiedD = d.u64()

	for i := 0; i < 3; i++ {
		cr.wakeD[i] = d.u64()
		cr.hubWakeD[i] = d.u64()
	}
	cr.endWakeFired = d.bool()
	ns := d.len(16)
	cr.shallowD = make(map[string]uint64, ns) // finalize always builds it
	for i := 0; i < ns; i++ {
		k := d.str()
		cr.shallowD[k] = d.u64()
	}

	cr.mainTimerP = d.ctrPatch()
	cr.unitFastP = d.ctrPatch()
	cr.x24P.changed = d.bool()
	cr.x24P.stableOff = sim.Duration(d.i64())

	nl := d.len(16)
	if nl > 0 { // finalize append-builds: nil when empty
		cr.ltrTimers = make([]ltrPatch, nl)
		for i := range cr.ltrTimers {
			cr.ltrTimers[i].owner = d.str()
			cr.ltrTimers[i].rel = sim.Duration(d.i64())
		}
	}

	cr.engPresent = d.bool()
	cr.rootD = d.u64()
	cr.endPrimed = d.bool()

	nst := d.len(40)
	cr.steps = make([]FlowStep, nst) // finalize always makes it, even empty
	for i := range cr.steps {
		cr.steps[i].Flow = d.str()
		cr.steps[i].Step = d.str()
		cr.steps[i].At = sim.Time(d.i64())
		cr.steps[i].Duration = sim.Duration(d.i64())
		cr.steps[i].EnergyUJ = math.Float64frombits(d.u64())
	}
	return cr
}

// ffEnc is a little-endian append encoder.
type ffEnc struct{ b []byte }

func (e *ffEnc) u64(v uint64)   { e.b = ffPutU64(e.b, v) }
func (e *ffEnc) i64(v int64)    { e.b = ffPutI64(e.b, v) }
func (e *ffEnc) bool(v bool)    { e.b = ffPutBool(e.b, v) }
func (e *ffEnc) str(s string)   { e.b = ffPutStr(e.b, s) }
func (e *ffEnc) b32(v [32]byte) { e.b = append(e.b, v[:]...) }
func (e *ffEnc) energy(v power.Energy) {
	e.i64(v.PJ)
	e.i64(v.ZJ)
}
func (e *ffEnc) ctrPatch(p ctrPatch) {
	e.bool(p.changed)
	e.u64(p.baseD)
	e.i64(int64(p.anchorOff))
	e.bool(p.running)
}

// ffDec is a bounds-checked, error-latching decoder: after the first
// malformation every read returns zero and err stays set, so decode
// paths need no per-read error plumbing.
type ffDec struct {
	b   []byte
	off int
	err error
}

func (d *ffDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("platform: bundle decode: "+format, args...)
	}
}

func (d *ffDec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated at offset %d (want %d bytes)", d.off, n)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *ffDec) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
		uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
}

func (d *ffDec) i64() int64 { return int64(d.u64()) }

func (d *ffDec) bool() bool {
	s := d.take(1)
	if s == nil {
		return false
	}
	if s[0] > 1 {
		d.fail("bad bool byte %d", s[0])
		return false
	}
	return s[0] == 1
}

func (d *ffDec) b32() (v [32]byte) {
	copy(v[:], d.take(32))
	return v
}

func (d *ffDec) str() string {
	n := d.len(1)
	return string(d.take(n))
}

func (d *ffDec) energy() power.Energy {
	return power.Energy{PJ: d.i64(), ZJ: d.i64()}
}

func (d *ffDec) ctrPatch() ctrPatch {
	return ctrPatch{
		changed:   d.bool(),
		baseD:     d.u64(),
		anchorOff: sim.Duration(d.i64()),
		running:   d.bool(),
	}
}

// len reads a collection count and sanity-bounds it against the bytes
// remaining (each element needs at least minElem bytes), so a corrupt
// count cannot drive a huge allocation.
func (d *ffDec) len(minElem int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if max := uint64(len(d.b)-d.off) / uint64(minElem); n > max {
		d.fail("count %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}
