package platform

import (
	"reflect"
	"testing"

	"odrips/internal/aonio"
	"odrips/internal/chipset"
	"odrips/internal/clock"
	"odrips/internal/dram"
	"odrips/internal/fixedpoint"
	"odrips/internal/gpio"
	"odrips/internal/ltr"
	"odrips/internal/mee"
	"odrips/internal/pml"
	"odrips/internal/pmu"
	"odrips/internal/power"
	"odrips/internal/sram"
	"odrips/internal/timer"
)

// This file is the fast-forward fingerprint manifest (DESIGN.md §12): every
// field of every struct holding platform state must be classified as either
// serialized into the cycle-boundary fingerprint or excluded for a stated
// reason. TestFingerprintManifestExhaustive enforces the classification by
// reflection, so adding a field to any of these structs without deciding its
// memo treatment fails the build's test tier — the same spirit as the
// odrips-vet handle rule. Keys are reflect.Type.String() + "." + field name.

// ffFingerprinted lists the fields (p *Platform) ffFingerprint serializes,
// directly or through an exact digest/accessor.
var ffFingerprinted = map[string]bool{
	"platform.Platform.meter":       true, // per-component draws + efficiency bits
	"platform.Platform.xtal24":      true, // on, ppb, phase residue
	"platform.Platform.xtal32":      true, // on, ppb, phase residue when observable
	"platform.Platform.ring":        true, // gated bit
	"platform.Platform.mem":         true, // power state + CKE
	"platform.Platform.procDom":     true, // gated bit
	"platform.Platform.mainTimer":   true, // running bit (value handled by lazy edge arithmetic)
	"platform.Platform.saSRAM":      true, // retention state
	"platform.Platform.computeSRAM": true, // retention state
	"platform.Platform.bootSRAM":    true, // retention state
	"platform.Platform.ltrTable":    true, // reports + relative timer deadlines
	"platform.Platform.eng":         true, // presence bit; see mee.Engine entries
	"platform.Platform.emram":       true, // length + content digest
	"platform.Platform.hub":         true, // see chipset.Hub entries
	"platform.Platform.state":       true, // power state at the boundary
	"platform.Platform.degraded":    true, // context-store degradation latch
	"platform.Platform.fplane":      true, // presence + see faultPlane entries

	"timer.FastCounter.running":        true,
	"timer.Unit.mode":                  true,
	"timer.Unit.switchFlag":            true,
	"timer.Unit.Fast":                  true, // running bit via FastCounter entries
	"timer.CalibrationResult.Step":     true, // raw fixed-point ratio
	"timer.CalibrationResult.FracBits": true,

	"ltr.Table.reports": true,
	"ltr.Table.timers":  true, // as deadlines relative to the boundary

	"gpio.Bank.pins":       true, // sorted per-pin FastForwardState
	"gpio.Pin.name":        true,
	"gpio.Pin.mode":        true,
	"gpio.Pin.level":       true,
	"gpio.Pin.pending":     true,
	"gpio.Pin.havePending": true,
	"gpio.Pin.sampler":     true, // by oscillator name

	"clock.Oscillator.on":       true,
	"clock.Oscillator.ppb":      true,
	"clock.Oscillator.stableAt": true, // as the phase residue relative to now
	"clock.Domain.gated":        true,

	"chipset.Hub.hosting":     true,
	"chipset.Hub.wakeFired":   true,
	"chipset.Hub.unit":        true, // presence + timer.Unit entries
	"chipset.Hub.calibration": true, // presence + CalibrationResult entries
	"chipset.Hub.xtal24":      true, // via the oscillator entries
	"chipset.Hub.xtal32":      true,
	"chipset.Hub.dom24":       true, // gated bit
	"chipset.Hub.bank":        true, // via the gpio entries

	"power.Meter.components":     true, // count + per-component draws, in registration order
	"power.Meter.efficiency":     true, // exact float bits
	"power.Component.drawMW":     true,
	"power.Component.drawNW":     true,
	"power.Component.battDrawNW": true,

	"aonio.Ring.gated":  true,
	"dram.Module.state": true,
	"dram.Module.cke":   true,
	"sram.Array.state":  true,
}

// fastforward:excluded — fields deliberately not in the fingerprint, with
// the soundness reason. "gate:" reasons mean ffCycleEligible/ffLatchCycle
// refuses the memo unless the field is in its quiescent state, so the
// fingerprint never needs to distinguish values. "dead:" reasons mean the
// field is rewritten before its next read whenever a cycle starts from a
// boundary, so its boundary value cannot influence behavior.
var ffExcluded = map[string]string{
	// ---- platform.Platform ----
	"platform.Platform.cfg":             "immutable after New; the memo is per-platform, so identical by construction",
	"platform.Platform.bud":             "immutable calibrated budget table",
	"platform.Platform.sched":           "absolute simulation time is monotonic; every memoized quantity is a delta relative to the boundary, and replay advances the clock in bulk",
	"platform.Platform.fet":             "see aonio.FET entries; the gate level lives in the fingerprinted fet-control pin",
	"platform.Platform.bootFSM":         "dead: the boot image is saved by every entry before the exit unpacks it",
	"platform.Platform.linkP2C":         "links are idle at boundaries (queue-empty gate); see pml.Link entries",
	"platform.Platform.linkC2P":         "links are idle at boundaries (queue-empty gate); see pml.Link entries",
	"platform.Platform.cstates":         "immutable C-state table",
	"platform.Platform.rr":              "immutable after lock at New (sgx range registers)",
	"platform.Platform.ctxRegion":       "immutable protected-region bounds",
	"platform.Platform.meeKey":          "immutable key material",
	"platform.Platform.ctx":             "immutable architectural context (seed-derived at New)",
	"platform.Platform.ctxImage":        "immutable serialized context bytes",
	"platform.Platform.ctxHash":         "immutable digest of ctxImage",
	"platform.Platform.saImage":         "immutable SA retention image",
	"platform.Platform.cpImage":         "immutable compute retention image",
	"platform.Platform.mcCfg":           "immutable memory-controller config image",
	"platform.Platform.pmuVec":          "immutable PMU vector image",
	"platform.Platform.saBuf":           "dead: scratch, fully rewritten by the next restore before any read",
	"platform.Platform.cpBuf":           "dead: scratch, fully rewritten by the next restore before any read",
	"platform.Platform.restoreBuf":      "dead: scratch, fully rewritten by the next restore before any read",
	"platform.Platform.cCompute":        "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cSA":             "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cWake":           "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cPMU":            "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cChipsetAon":     "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cMonitor":        "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cMisc":           "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cFET":            "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cVRFixed":        "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cVRAonIO":        "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cVRSram":         "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.cVRPmu":          "pointer into meter; draws fingerprinted via power.Meter",
	"platform.Platform.computeActiveMW": "immutable derived constant",
	"platform.Platform.saActiveMW":      "immutable derived constant",
	"platform.Platform.saEntryMW":       "immutable derived constant",
	"platform.Platform.saExitMW":        "immutable derived constant",
	"platform.Platform.tracker":         "pure output accounting, replayed as exact deltas (open interval folded into the snapshot)",
	"platform.Platform.inFlow":          "gate: boundaries are outside flows",
	"platform.Platform.err":             "gate: must be nil for eligibility",
	"platform.Platform.flowStats":       "pure output accounting, replayed as exact deltas",
	"platform.Platform.wakeCount":       "pure output accounting, replayed as exact deltas",
	"platform.Platform.shallowCounts":   "pure output accounting, replayed as exact deltas",
	"platform.Platform.timerEpoch":      "immutable after New (drift baseline)",
	"platform.Platform.cycleDone":       "dead: flow continuation, installed per cycle before use",
	"platform.Platform.idleFor":         "dead: set per cycle before use",
	"platform.Platform.plan":            "dead: set per cycle before use",
	"platform.Platform.armedEv":         "gate: queue empty at boundaries, so no armed event exists",
	"platform.Platform.restoredTimer":   "write-only diagnostic",
	"platform.Platform.p2cContinue":     "gate: must be nil for eligibility",
	"platform.Platform.c2pContinue":     "gate: must be nil for eligibility",
	"platform.Platform.pendingWake":     "gate: must be nil for eligibility",
	"platform.Platform.quiesce":         "registered at run setup, executed at the final boundary; replay neither adds nor consumes entries",
	"platform.Platform.flowTrace":       "output ring; the replayed tail is synthesized from recorded steps",
	"platform.Platform.cycleIdx":        "monotonic bookkeeping (fault matching); advanced by replay",
	"platform.Platform.wantAbort":       "gate: must be false for eligibility",
	"platform.Platform.abortWake":       "gate: must be nil for eligibility",
	"platform.Platform.entryStartE":     "dead: per-flow scratch, set at entry start before use",
	"platform.Platform.entryM":          "dead: per-flow scratch, set at entry start before use",
	"platform.Platform.emramHash":       "memoized digest of the fingerprinted emram content; every emram write installs or invalidates it",
	"platform.Platform.emramHashOK":     "validity flag of the memoized emram digest; see emramHash",
	"platform.Platform.ff":              "the memo's own bookkeeping; output-invariant by the replay contract (see ffState entries)",

	// ---- platform.ffState ----
	"platform.ffState.mode":        "selects memoization, never behavior; byte-identity across modes is the engine's invariant",
	"platform.ffState.cycleOK":     "latched eligibility, recomputed every boundary",
	"platform.ffState.meePrimed":   "output-invariant: only selects op replay vs. real execution, which match by the Layer-1 contract",
	"platform.ffState.meeVirtual":  "output-invariant: replay conservatively marks the engine virtual, forcing materialization before any real op",
	"platform.ffState.haveSave":    "Layer-1 memo bookkeeping, output-invariant",
	"platform.ffState.haveRestore": "Layer-1 memo bookkeeping, output-invariant",
	"platform.ffState.saveLat":     "Layer-1 memo bookkeeping, output-invariant",
	"platform.ffState.restoreLat":  "Layer-1 memo bookkeeping, output-invariant",
	"platform.ffState.saveOp":      "Layer-1 memo bookkeeping, output-invariant",
	"platform.ffState.restoreOp":   "Layer-1 memo bookkeeping, output-invariant",
	"platform.ffState.records":     "the memo itself",
	"platform.ffState.rec":         "in-progress recording bookkeeping",
	"platform.ffState.store":       "persistent memo plumbing; loaded records replay only when the live fingerprint recurs",
	"platform.ffState.persist":     "persistent memo plumbing; shared bundle handle, output-invariant by the replay contract",
	"platform.ffState.verifyKeys":  "verify-tier bookkeeping: forces full simulation plus a diff, never changes outputs",
	"platform.ffState.recordCap":   "memo capacity knob: bounds what is recorded, never what a record replays",
	"platform.ffState.fpBuf":       "dead: serialization scratch",
	"platform.ffState.nomScratch":  "dead: replay scratch",
	"platform.ffState.battScratch": "dead: replay scratch",
	"platform.ffState.stats":       "diagnostics, not part of Result",

	// ---- platform.tracker (output accounting; see Platform.tracker) ----
	"platform.tracker.sched":       "reference",
	"platform.tracker.meter":       "reference",
	"platform.tracker.cur":         "mirrors the fingerprinted Platform.state",
	"platform.tracker.since":       "open-interval start; folded into the effective residency snapshot, and the interval is closed before replay advances time",
	"platform.tracker.last":        "open-interval energy baseline; folded into the effective energy snapshot",
	"platform.tracker.residency":   "pure output, replayed as exact deltas",
	"platform.tracker.energy":      "pure output, replayed as exact deltas",
	"platform.tracker.idleByCmp":   "pure output, replayed as exact deltas",
	"platform.tracker.transitions": "diagnostic count, not part of Result",

	// ---- platform.flowStats (outputs; see Platform.flowStats) ----
	"platform.flowStats.entries":     "pure output, replayed as exact deltas",
	"platform.flowStats.exits":       "pure output, replayed as exact deltas",
	"platform.flowStats.entryTotal":  "pure output, replayed as exact deltas",
	"platform.flowStats.exitTotal":   "pure output, replayed as exact deltas",
	"platform.flowStats.entryMax":    "pure output; a steady-state cycle's per-flow latency is constant, so the max is restored from the record",
	"platform.flowStats.exitMax":     "pure output; restored from the record",
	"platform.flowStats.ctxSaveLat":  "pure output; end value restored from the record",
	"platform.flowStats.ctxRestore":  "pure output; end value restored from the record",
	"platform.flowStats.ctxVerified": "pure output, replayed as exact deltas",

	// ---- platform.faultPlane ----
	"platform.faultPlane.plan":     "immutable injection schedule",
	"platform.faultPlane.fired":    "gate: any unfired injection disables the memo (ffFaultsClean)",
	"platform.faultPlane.stats":    "frozen once every injection has fired, which the gate requires",
	"platform.faultPlane.meeForce": "gate: disables the memo while armed",

	// ---- timer ----
	"timer.FastCounter.name":          "immutable",
	"timer.FastCounter.dom":           "reference; the domain's gate and source grid are fingerprinted",
	"timer.FastCounter.sched":         "reference",
	"timer.FastCounter.base":          "monotonic count; reads are lazy edge arithmetic over the fingerprinted grid, and replay rebases it surgically",
	"timer.FastCounter.anchor":        "monotonic anchor; rebased surgically on replay",
	"timer.SlowCounter.name":          "immutable",
	"timer.SlowCounter.osc":           "reference; the oscillator grid is fingerprinted",
	"timer.SlowCounter.sched":         "reference",
	"timer.SlowCounter.acc":           "dead: re-seeded from the fast counter at every hand-over; boundaries are in fast mode (Unit.mode is fingerprinted)",
	"timer.SlowCounter.step":          "set from the fingerprinted calibration Step",
	"timer.SlowCounter.anchor":        "dead: re-anchored at every hand-over",
	"timer.SlowCounter.running":       "false at boundaries; implied by the fingerprinted Unit.mode",
	"timer.Unit.sched":                "reference",
	"timer.Unit.fastDom":              "reference; gate and grid fingerprinted",
	"timer.Unit.slowOsc":              "reference; grid fingerprinted",
	"timer.Unit.Slow":                 "see SlowCounter entries",
	"timer.Unit.Trace":                "gate: cycles with a trace hook installed are ineligible (fig3b observes edges)",
	"timer.CalibrationResult.NFast":   "immutable measurement record",
	"timer.CalibrationResult.NSlow":   "immutable measurement record",
	"timer.CalibrationResult.Window":  "immutable measurement record",
	"timer.CalibrationResult.IntBits": "immutable measurement record",

	// ---- fixedpoint.Acc (the slow counter's accumulator) ----
	"fixedpoint.Acc.Int":      "dead: re-seeded at every hand-over",
	"fixedpoint.Acc.frac":     "dead: re-seeded at every hand-over",
	"fixedpoint.Acc.FracBits": "set from the fingerprinted calibration FracBits",

	// ---- mee.Engine ----
	"mee.Engine.mem":         "reference; DRAM power state is fingerprinted, content is covered by the version-invariance argument (§12)",
	"mee.Engine.layout":      "immutable tree geometry",
	"mee.Engine.masterKey":   "immutable key material",
	"mee.Engine.aesBlock":    "immutable derived cipher",
	"mee.Engine.macKey":      "immutable key material",
	"mee.Engine.rootCounter": "monotonic version; affects only stored MAC bytes, never traffic or latency (§12); advanced surgically on replay",
	"mee.Engine.cache":       "deterministic function of the op history from canonical state; rebuilt exactly by ReplayMaterialize/ReplayWarm before any real op",
	"mee.Engine.stats":       "diagnostics, not part of Result",
	"mee.Engine.mac":         "dead: per-op scratch",
	"mee.Engine.u64Buf":      "dead: per-op scratch",
	"mee.Engine.ctrBuf":      "dead: per-op scratch",
	"mee.Engine.ksBuf":       "dead: per-op scratch",
	"mee.Engine.ctBuf":       "dead: per-op scratch",
	"mee.Engine.padBuf":      "dead: per-op scratch",
	"mee.Engine.metaBuf":     "dead: per-op scratch",
	"mee.Engine.pathBuf":     "dead: per-op scratch",
	"mee.Engine.victimBuf":   "dead: per-op scratch",
	"mee.Engine.walk":        "dead: per-op scratch",
	"mee.Engine.readPath":    "dead: invalidated by cache generation on every materialization",
	"mee.Engine.noWalk":      "test hook, never set by the platform",

	// ---- ltr ----
	"ltr.Table.sched": "reference",

	// ---- gpio ----
	"gpio.Bank.sched":       "reference",
	"gpio.Pin.sampleEvent":  "gate: queue empty at boundaries, so no armed sample exists",
	"gpio.Pin.sched":        "reference",
	"gpio.Pin.onEdge":       "immutable wiring",
	"gpio.Pin.edgesMissed":  "diagnostic counter, not part of Result",
	"gpio.Pin.edgesCaught":  "diagnostic counter, not part of Result",
	"gpio.Pin.outputDriven": "diagnostic counter, not part of Result",

	// ---- clock ----
	"clock.Oscillator.name":      "immutable",
	"clock.Oscillator.nominalHz": "immutable",
	"clock.Oscillator.startup":   "immutable",
	"clock.Oscillator.sched":     "reference",
	"clock.Oscillator.denom":     "derived from the fingerprinted nominalHz and ppb",
	"clock.Oscillator.OnPower":   "immutable wiring",
	"clock.Domain.name":          "immutable",
	"clock.Domain.src":           "reference; the source grid is fingerprinted",
	"clock.Domain.OnGate":        "immutable wiring",

	// ---- chipset.Hub ----
	"chipset.Hub.sched":      "reference",
	"chipset.Hub.fetPin":     "fingerprinted through the bank's pin walk",
	"chipset.Hub.thermalPin": "fingerprinted through the bank's pin walk",
	"chipset.Hub.fet":        "see aonio.FET entries",
	"chipset.Hub.OnWake":     "immutable wiring",
	"chipset.Hub.wakeEv":     "gate: queue empty at boundaries, so no armed wake exists",
	"chipset.Hub.wakes":      "pure output accounting, replayed as exact deltas",

	// ---- power ----
	"power.Meter.sched":         "reference",
	"power.Meter.byName":        "immutable registry (structure fixed at New; draws fingerprinted via components)",
	"power.Component.name":      "immutable",
	"power.Component.group":     "immutable",
	"power.Component.supply":    "immutable",
	"power.Component.battStale": "dead: lazy-derivation flag; every read of battDrawNW (settle, DrawsNW) refreshes through battDraw first",
	"power.Component.eff":       "mirror of Meter.efficiency, which is fingerprinted",
	"power.Component.nominal":   "pure output, replayed as exact deltas",
	"power.Component.battery":   "pure output, replayed as exact deltas",
	"power.Component.changedAt": "SettleAll at the boundary pins it to now, so it is a constant offset from the boundary",

	// ---- aonio ----
	"aonio.FET.ring":            "reference; the ring gate is fingerprinted",
	"aonio.FET.LeakageFraction": "immutable after New",
	"aonio.FET.switches":        "diagnostic counter, not part of Result",
	"aonio.Ring.draws":          "immutable registered loads",
	"aonio.Ring.gateCount":      "diagnostic counter, not part of Result",
	"aonio.Ring.ungateCount":    "diagnostic counter, not part of Result",
	"aonio.Ring.OnDraw":         "immutable wiring",

	// ---- sram ----
	"sram.Array.name":    "immutable",
	"sram.Array.process": "immutable",
	"sram.Array.size":    "immutable",
	"sram.Array.data":    "dead: every entry rewrites the retained image in full before the exit reads it",
	"sram.Array.valid":   "dead: set by the entry's write before the exit reads",
	"sram.Array.OnDraw":  "immutable wiring",

	// ---- dram ----
	"dram.Module.cfg":         "immutable",
	"dram.Module.blocks":      "versioned ciphertext whose observable effects are version-invariant (§12); canonical bytes are rebuilt by ReplayMaterialize before any real read",
	"dram.Module.readBlocks":  "diagnostic counter, not part of Result",
	"dram.Module.writeBlocks": "diagnostic counter, not part of Result",
	"dram.Module.OnDraw":      "immutable wiring",

	// ---- pml ----
	"pml.Link.sched":         "reference",
	"pml.Link.dom":           "reference; gate and grid fingerprinted",
	"pml.Link.dir":           "immutable",
	"pml.Link.latencyCycles": "immutable",
	"pml.Link.Powered":       "immutable wiring",
	"pml.Link.OnDeliver":     "immutable wiring",
	"pml.Link.sent":          "diagnostic counter, not part of Result",
	"pml.Link.delivered":     "diagnostic counter, not part of Result",

	// ---- pmu ----
	"pmu.BootFSM.SRAM": "reference; the array's state is fingerprinted and its content is dead at boundaries",
}

// ffManifestTypes enumerates every struct the manifest must cover: the
// platform and all components whose mutable state can influence a cycle.
func ffManifestTypes() []reflect.Type {
	return []reflect.Type{
		reflect.TypeOf((*Platform)(nil)).Elem(),
		reflect.TypeOf((*ffState)(nil)).Elem(),
		reflect.TypeOf((*tracker)(nil)).Elem(),
		reflect.TypeOf((*flowStats)(nil)).Elem(),
		reflect.TypeOf((*faultPlane)(nil)).Elem(),
		reflect.TypeOf((*timer.FastCounter)(nil)).Elem(),
		reflect.TypeOf((*timer.SlowCounter)(nil)).Elem(),
		reflect.TypeOf((*timer.Unit)(nil)).Elem(),
		reflect.TypeOf((*timer.CalibrationResult)(nil)).Elem(),
		reflect.TypeOf((*fixedpoint.Acc)(nil)).Elem(),
		reflect.TypeOf((*mee.Engine)(nil)).Elem(),
		reflect.TypeOf((*ltr.Table)(nil)).Elem(),
		reflect.TypeOf((*gpio.Bank)(nil)).Elem(),
		reflect.TypeOf((*gpio.Pin)(nil)).Elem(),
		reflect.TypeOf((*clock.Oscillator)(nil)).Elem(),
		reflect.TypeOf((*clock.Domain)(nil)).Elem(),
		reflect.TypeOf((*chipset.Hub)(nil)).Elem(),
		reflect.TypeOf((*power.Meter)(nil)).Elem(),
		reflect.TypeOf((*power.Component)(nil)).Elem(),
		reflect.TypeOf((*aonio.FET)(nil)).Elem(),
		reflect.TypeOf((*aonio.Ring)(nil)).Elem(),
		reflect.TypeOf((*sram.Array)(nil)).Elem(),
		reflect.TypeOf((*dram.Module)(nil)).Elem(),
		reflect.TypeOf((*pml.Link)(nil)).Elem(),
		reflect.TypeOf((*pmu.BootFSM)(nil)).Elem(),
	}
}

// TestFingerprintManifestExhaustive fails when any field of the registered
// state structs is neither fingerprinted nor explicitly excluded — or when
// the manifest carries stale or contradictory entries.
func TestFingerprintManifestExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for _, typ := range ffManifestTypes() {
		name := typ.String()
		for i := 0; i < typ.NumField(); i++ {
			key := name + "." + typ.Field(i).Name
			if seen[key] {
				t.Errorf("duplicate field key %s (embedded type registered twice?)", key)
			}
			seen[key] = true
			in := ffFingerprinted[key]
			reason, ex := ffExcluded[key]
			switch {
			case in && ex:
				t.Errorf("%s is both fingerprinted and excluded", key)
			case !in && !ex:
				t.Errorf("%s is not classified: add it to the fingerprint or to the exclusion manifest with a reason", key)
			case ex && reason == "":
				t.Errorf("%s is excluded without a reason", key)
			}
		}
	}
	for key := range ffFingerprinted {
		if !seen[key] {
			t.Errorf("stale fingerprint manifest entry %s", key)
		}
	}
	for key := range ffExcluded {
		if !seen[key] {
			t.Errorf("stale exclusion manifest entry %s", key)
		}
	}
}
