package platform

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"odrips/internal/memostore"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// withStore opens a default store for the test and tears the process
// globals back down afterwards.
func withStore(t *testing.T, dir string, mode memostore.Mode) *memostore.Store {
	t.Helper()
	s, err := memostore.Open(dir, mode)
	if err != nil {
		t.Fatal(err)
	}
	memostore.SetDefault(s)
	t.Cleanup(func() {
		memostore.SetDefault(nil)
		ResetPersistentMemos()
	})
	return s
}

func runStandby(t *testing.T, cfg Config, cycles []workload.Cycle) (Result, FFStats) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCycles(cycles)
	if err != nil {
		t.Fatal(err)
	}
	return res, p.FFStats()
}

func TestPersistBundleCodecRoundTrip(t *testing.T) {
	mk := func(mut func(*cycleRecord)) *cycleRecord {
		cr := &cycleRecord{
			dur:        30 * sim.Second,
			endFP:      [32]byte{1, 2, 3},
			replayable: true,
			nomD:       []power.Energy{{PJ: 1, ZJ: 2}, {PJ: -3, ZJ: 4}},
			battD:      []power.Energy{{PJ: 5}, {ZJ: -6}},
			idleByCmpD: []power.Energy{{}, {PJ: 7, ZJ: 8}},
			resD:       [ffNumStates]sim.Duration{1, 2, 3, 4},
			enD:        [ffNumStates]power.Energy{{PJ: 9}, {}, {ZJ: 10}, {}},
			transD:     11,
			entriesD:   1, exitsD: 1,
			entryTotalD: 12, exitTotalD: 13,
			ctxSaveLat: 14, ctxRestore: 15, ctxVerifiedD: 16,
			wakeD:        [3]uint64{1, 0, 2},
			hubWakeD:     [3]uint64{0, 3, 0},
			endWakeFired: true,
			shallowD:     map[string]uint64{},
			mainTimerP:   ctrPatch{changed: true, baseD: 17, anchorOff: -18, running: true},
			unitFastP:    ctrPatch{},
			x24P:         oscPatch{changed: true, stableOff: 19},
			ltrTimers:    nil,
			engPresent:   true, rootD: 20, endPrimed: true,
			steps: make([]FlowStep, 0),
		}
		if mut != nil {
			mut(cr)
		}
		return cr
	}
	records := map[ffKey]*cycleRecord{
		{fp: [32]byte{0xAA}, active: 0, idle: 30 * sim.Second, wake: workload.WakeTimer}: mk(nil),
		{fp: [32]byte{0xBB}, active: 5, idle: 29 * sim.Second, wake: workload.WakeExternal}: mk(func(cr *cycleRecord) {
			cr.shallowD["C6"] = 2
			cr.ltrTimers = []ltrPatch{{owner: "os-wake", rel: -42}, {owner: "nic", rel: 7}}
			cr.steps = []FlowStep{
				{Flow: "entry", Step: "save-ctx-dram", At: 100, Duration: 50, EnergyUJ: 1.25},
				{Flow: "exit", Step: "restore", At: 200, Duration: 60, EnergyUJ: 0},
			}
			cr.replayable = false
		}),
	}
	decoded, err := ffDecodeBundle(ffEncodeBundle(records))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, records) {
		t.Fatalf("bundle did not round-trip:\n got %#v\nwant %#v", decoded, records)
	}
}

func TestPersistBundleDecodeRejectsDamage(t *testing.T) {
	records := map[ffKey]*cycleRecord{
		{fp: [32]byte{1}}: {
			nomD: []power.Energy{{PJ: 1}}, battD: []power.Energy{{}}, idleByCmpD: []power.Energy{{}},
			shallowD: map[string]uint64{}, steps: make([]FlowStep, 0),
		},
	}
	good := ffEncodeBundle(records)
	for name, bad := range map[string][]byte{
		"truncated":     good[:len(good)-3],
		"trailing":      append(append([]byte(nil), good...), 1),
		"empty":         {},
		"version-skew":  append([]byte{99}, good[1:]...),
		"hostile-count": append(append([]byte(nil), good[:8]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF),
	} {
		if _, err := ffDecodeBundle(bad); err == nil {
			t.Errorf("%s: decode accepted damaged bundle", name)
		}
	}
}

// TestPersistWarmReplay is the tentpole's core behavior: a second
// "process" (bundle cache dropped, disk kept) replays every cycle of a
// jittered workload from the persisted memo, byte-identically.
func TestPersistWarmReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := ODRIPSConfig()
	cycles := workload.ConnectedStandby(40, 7)

	// Baseline without any store.
	base, _ := runStandby(t, cfg, cycles)

	store := withStore(t, dir, memostore.RW)
	cold, coldStats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, cold) {
		t.Fatal("rw cold run diverged from store-off run")
	}
	if coldStats.CyclesRecorded == 0 {
		t.Fatal("cold run recorded nothing")
	}
	if st := store.Stats(); st.Writes == 0 {
		t.Fatalf("cold run persisted nothing: %+v", st)
	}

	// A boundary with a pending scheduler event (e.g. after a thermal
	// wake) is ineligible in cold and warm runs alike, so such cycles can
	// never be memoized; everything the cold run recorded must replay.
	want := coldStats.CyclesRecorded
	if want < uint64(len(cycles))-4 {
		t.Fatalf("cold run recorded only %d/%d cycles", want, len(cycles))
	}

	// Same process, records shared in memory through the bundle.
	warmMem, memStats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, warmMem) {
		t.Fatal("in-process warm run diverged")
	}
	if memStats.CyclesReplayed != want {
		t.Fatalf("in-process warm run replayed %d cycles, cold recorded %d", memStats.CyclesReplayed, want)
	}

	// Fresh "process": drop the in-memory bundles, reload from disk.
	ResetPersistentMemos()
	warmDisk, diskStats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, warmDisk) {
		t.Fatal("disk-warm run diverged")
	}
	if diskStats.CyclesReplayed != want {
		t.Fatalf("disk-warm run replayed %d cycles, cold recorded %d", diskStats.CyclesReplayed, want)
	}
	if diskStats.CyclesRecorded != 0 {
		t.Fatalf("disk-warm run re-recorded %d cycles", diskStats.CyclesRecorded)
	}
}

// TestPersistVerifyCleanAndRO: verify mode re-simulates every loaded
// class (no replays, identical output); ro mode replays but never
// writes.
func TestPersistVerifyCleanAndRO(t *testing.T) {
	dir := t.TempDir()
	cfg := ODRIPSConfig()
	cycles := workload.ConnectedStandby(25, 3)
	base, _ := runStandby(t, cfg, cycles)

	withStore(t, dir, memostore.RW)
	runStandby(t, cfg, cycles)

	ResetPersistentMemos()
	withStore(t, dir, memostore.Verify)
	verified, verStats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, verified) {
		t.Fatal("verify run diverged")
	}
	if verStats.CyclesReplayed != 0 {
		t.Fatalf("verify mode replayed %d disk-loaded cycles", verStats.CyclesReplayed)
	}

	ResetPersistentMemos()
	entries := func() int {
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		return len(names)
	}
	before := entries()
	roStore := withStore(t, dir, memostore.RO)
	roRes, roStats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, roRes) {
		t.Fatal("ro run diverged")
	}
	if roStats.CyclesReplayed != uint64(len(cycles)) {
		t.Fatalf("ro warm run replayed %d/%d", roStats.CyclesReplayed, len(cycles))
	}
	if got := entries(); got != before {
		t.Fatalf("ro mode changed the store: %d -> %d entries", before, got)
	}
	if st := roStore.Stats(); st.Writes != 0 {
		t.Fatalf("ro mode wrote: %+v", st)
	}
}

// TestPersistVerifyPackedStore pins the verify contract across the pack
// layer: a bundle served from a compacted segment is still re-simulated,
// never replayed — packing changes where bytes live, not what verify
// trusts.
func TestPersistVerifyPackedStore(t *testing.T) {
	dir := t.TempDir()
	cfg := ODRIPSConfig()
	cycles := workload.ConnectedStandby(25, 3)
	base, _ := runStandby(t, cfg, cycles)

	rw := withStore(t, dir, memostore.RW)
	runStandby(t, cfg, cycles)
	if cs, err := rw.Compact(); err != nil || cs.Entries == 0 {
		t.Fatalf("compact: %+v %v", cs, err)
	}

	ResetPersistentMemos()
	vs := withStore(t, dir, memostore.Verify)
	verified, verStats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, verified) {
		t.Fatal("verify run over packed store diverged")
	}
	if verStats.CyclesReplayed != 0 {
		t.Fatalf("verify mode replayed %d packed cycles", verStats.CyclesReplayed)
	}
	st := vs.Stats()
	if st.PackHits == 0 {
		t.Fatalf("verify run never touched the segment: %+v", st)
	}
	if st.Writes != 0 {
		t.Fatalf("verify mode wrote: %+v", st)
	}
}

// TestPersistWarmReplayPacked: compacting the store between runs changes
// the load path (segment index instead of loose files), and nothing
// else — same replays, same results.
func TestPersistWarmReplayPacked(t *testing.T) {
	dir := t.TempDir()
	cfg := ODRIPSConfig()
	cycles := workload.ConnectedStandby(25, 3)
	base, _ := runStandby(t, cfg, cycles)

	store := withStore(t, dir, memostore.RW)
	_, coldStats := runStandby(t, cfg, cycles)
	if cs, err := store.Compact(); err != nil || cs.LooseRemoved == 0 {
		t.Fatalf("compact: %+v %v", cs, err)
	}

	ResetPersistentMemos()
	warm, warmStats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, warm) {
		t.Fatal("packed-warm run diverged")
	}
	if warmStats.CyclesReplayed != coldStats.CyclesRecorded {
		t.Fatalf("packed-warm replayed %d, cold recorded %d", warmStats.CyclesReplayed, coldStats.CyclesRecorded)
	}
	if st := store.Stats(); st.PackHits == 0 {
		t.Fatalf("warm run bypassed the segment: %+v", st)
	}
}

// TestPersistVerifyDetectsTamper plants a subtly wrong record in the
// store and checks -memocache=verify fails the run instead of trusting
// it.
func TestPersistVerifyDetectsTamper(t *testing.T) {
	dir := t.TempDir()
	cfg := ODRIPSConfig()
	cycles := workload.ConnectedStandby(10, 5)

	store := withStore(t, dir, memostore.RW)
	runStandby(t, cfg, cycles)

	// Tamper: load the bundle, nudge one record's energy delta, save it
	// back through the store (valid envelope, wrong content).
	key := []byte(ffConfigKey(cfg))
	payload, ok, err := store.Load("cycles", key)
	if err != nil || !ok {
		t.Fatalf("bundle load: ok=%v err=%v", ok, err)
	}
	records, err := ffDecodeBundle(payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range records {
		cr.nomD[0].PJ++
	}
	store.Save("cycles", key, ffEncodeBundle(records))

	ResetPersistentMemos()
	withStore(t, dir, memostore.Verify)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunCycles(cycles); err == nil || !strings.Contains(err.Error(), "persistent memo") {
		t.Fatalf("verify accepted a tampered record (err=%v)", err)
	}
}

// TestPersistCorruptEntryRecomputes: a damaged store entry degrades to a
// cold run with identical results.
func TestPersistCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	cfg := ODRIPSConfig()
	cycles := workload.ConnectedStandby(10, 11)
	base, _ := runStandby(t, cfg, cycles)

	store := withStore(t, dir, memostore.RW)
	runStandby(t, cfg, cycles)
	path := store.EntryPath("cycles", []byte(ffConfigKey(cfg)))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	ResetPersistentMemos()
	res, stats := runStandby(t, cfg, cycles)
	if !reflect.DeepEqual(base, res) {
		t.Fatal("corrupt-cache run diverged from cold run")
	}
	if stats.CyclesReplayed != 0 {
		t.Fatalf("corrupt cache replayed %d cycles", stats.CyclesReplayed)
	}
	if st := store.Stats(); st.Corrupt == 0 {
		t.Fatalf("corruption not observed: %+v", st)
	}
	// The recompute rewrote a valid bundle; a third process is warm again.
	ResetPersistentMemos()
	_, warmStats := runStandby(t, cfg, cycles)
	if warmStats.CyclesReplayed != uint64(len(cycles)) {
		t.Fatalf("self-heal failed: replayed %d/%d", warmStats.CyclesReplayed, len(cycles))
	}
}
