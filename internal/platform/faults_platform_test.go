package platform

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"odrips/internal/faults"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// runFaulted builds a platform, installs the plan, and runs n 30 s cycles.
func runFaulted(t testing.TB, cfg Config, plan string, n int) (*Platform, Result) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := faults.Parse(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectFaults(fp); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCycles(workload.Fixed(n, 0, 30*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

// TestFailDrainsScheduler is the regression test for the orphaned-event bug:
// before Scheduler.Clear, a latched flow error left every pending event (the
// armed wake, device-model tickers) queued, and they kept dispatching into a
// half-torn-down platform.
func TestFailDrainsScheduler(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	var held sim.Event
	p.sched.After(1*sim.Second, "test.fail", func() {
		held = p.sched.After(time100ms(), "test.orphan", func() { ran = true })
		p.fail("test: injected failure")
	})
	if _, err := p.RunCycles(workload.Fixed(1, 0, 30*sim.Second)); err == nil {
		t.Fatal("RunCycles succeeded past an injected failure")
	}
	if ran {
		t.Error("orphaned event dispatched after the flow error latched")
	}
	if n := p.sched.Pending(); n != 0 {
		t.Errorf("%d events still pending after failure", n)
	}
	if held.Pending() {
		t.Error("held handle still pending after the drain")
	}
}

func time100ms() sim.Duration { return 100 * sim.Millisecond }

// TestEmptyPlanIsInert: installing the empty plan must leave results and
// traces byte-identical to a platform with no plane at all.
func TestEmptyPlanIsInert(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), ODRIPSConfig()} {
		base, bres := runFixed(t, cfg, 3)
		armed, ares := runFaulted(t, cfg, "", 3)
		if !reflect.DeepEqual(bres, ares) {
			t.Errorf("%v: empty plan changed the result:\n base %+v\narmed %+v", cfg.Techniques, bres, ares)
		}
		if !reflect.DeepEqual(base.FlowTrace(), armed.FlowTrace()) {
			t.Errorf("%v: empty plan changed the flow trace", cfg.Techniques)
		}
	}
}

// TestAbortEntryEarlySteps: an injected wake during the early entry steps
// unwinds the flow, wastes energy, and retries the full idle period.
func TestAbortEntryEarlySteps(t *testing.T) {
	_, base := runFixed(t, ODRIPSConfig(), 3)
	for step := 0; step <= 6; step++ {
		plan := faults.Plan{Injections: []faults.Injection{
			{Kind: faults.WakeDuringEntry, Cycle: 1, Step: step},
		}}
		p, res := runFaulted(t, ODRIPSConfig(), plan.String(), 3)
		if res.Faults.Fired != 1 {
			t.Errorf("step %d: fired = %d, want 1", step, res.Faults.Fired)
			continue
		}
		if res.Faults.EntryAborts != 1 {
			t.Errorf("step %d: aborts = %d, want 1", step, res.Faults.EntryAborts)
			continue
		}
		if res.Faults.AbortWastedUJ <= 0 {
			t.Errorf("step %d: wasted = %v uJ, want > 0", step, res.Faults.AbortWastedUJ)
		}
		// The wasted transition energy shows up in the totals.
		baseJ := base.AvgPowerMW * base.Duration.Seconds()
		gotJ := res.AvgPowerMW * res.Duration.Seconds()
		if gotJ <= baseJ {
			t.Errorf("step %d: run energy %.6f mJ not above fault-free %.6f mJ", step, gotJ, baseJ)
		}
		// The abort rollback was traced.
		var sawAbort bool
		for _, fs := range p.FlowTrace() {
			if fs.Flow == "abort" {
				sawAbort = true
			}
		}
		if !sawAbort {
			t.Errorf("step %d: no abort steps in the flow trace", step)
		}
		// The idle period was retried in full: same cycle count, all
		// planned wakes still happened, plus the injected one.
		if res.Cycles != 3 {
			t.Errorf("step %d: cycles = %d", step, res.Cycles)
		}
		if p.Err() != nil {
			t.Errorf("step %d: %v", step, p.Err())
		}
	}
}

// TestAbortLateEntryStepsDeterministic: wakes injected after the timer
// hand-over quantize to a 32 kHz edge and may land once the platform is
// already resident — then they are ordinary early wakes, not aborts. Either
// way the run must complete and be deterministic.
func TestAbortLateEntryStepsDeterministic(t *testing.T) {
	for step := 7; step <= 8; step++ {
		plan := faults.Plan{Injections: []faults.Injection{
			{Kind: faults.WakeDuringEntry, Cycle: 1, Step: step},
		}}
		p1, r1 := runFaulted(t, ODRIPSConfig(), plan.String(), 3)
		p2, r2 := runFaulted(t, ODRIPSConfig(), plan.String(), 3)
		if r1.Faults.Fired != 1 {
			t.Errorf("step %d: fired = %d, want 1", step, r1.Faults.Fired)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("step %d: repeat run diverged", step)
		}
		if !reflect.DeepEqual(p1.FlowTrace(), p2.FlowTrace()) {
			t.Errorf("step %d: repeat trace diverged", step)
		}
	}
}

// TestWakeDuringExitAbsorbed: the chipset's wake latch is already consumed
// during exit, so an injected exit wake is absorbed without disturbing the
// flow — the marker still lands in the trace.
func TestWakeDuringExitAbsorbed(t *testing.T) {
	p, res := runFaulted(t, ODRIPSConfig(), "wakex@1.2", 3)
	if res.Faults.Fired != 1 {
		t.Fatalf("fired = %d, want 1", res.Faults.Fired)
	}
	if res.Faults.EntryAborts != 0 || res.Faults.Degradations != 0 {
		t.Fatalf("exit wake caused recovery edges: %+v", res.Faults)
	}
	var marked bool
	for _, fs := range p.FlowTrace() {
		if fs.Flow == "fault" && fs.Step == "wakex" {
			marked = true
		}
	}
	if !marked {
		t.Error("no wakex marker in the flow trace")
	}
	if res.Cycles != 3 || res.CtxVerified != 3 {
		t.Errorf("cycles=%d verified=%d", res.Cycles, res.CtxVerified)
	}
}

// TestMEETransientRetrySucceeds: a transient verification failure costs one
// retry and nothing else — no degradation, later cycles clean.
func TestMEETransientRetrySucceeds(t *testing.T) {
	_, base := runFixed(t, ODRIPSConfig(), 3)
	p, res := runFaulted(t, ODRIPSConfig(), "meefail@1", 3)
	if res.Faults.MEERetries != 1 || res.Faults.Degradations != 0 {
		t.Fatalf("stats = %+v, want 1 retry, 0 degradations", res.Faults)
	}
	if p.Degraded() {
		t.Fatal("transient failure degraded the platform")
	}
	if res.CtxVerified != 3 {
		t.Errorf("verified = %d, want 3", res.CtxVerified)
	}
	baseJ := base.AvgPowerMW * base.Duration.Seconds()
	gotJ := res.AvgPowerMW * res.Duration.Seconds()
	if gotJ < baseJ {
		t.Errorf("retry run energy %.6f mJ below fault-free %.6f mJ", gotJ, baseJ)
	}
	var retried bool
	for _, fs := range p.FlowTrace() {
		if fs.Flow == "fault" && fs.Step == "restore-ctx-retry" {
			retried = true
		}
	}
	if !retried {
		t.Error("no restore-ctx-retry marker in the flow trace")
	}
}

// TestMEEPersistentDegrades: a corrupted stored image fails both attempts
// and demotes the platform to DRIPS-with-retention-SRAM. Idle power for the
// remaining cycles rises above ODRIPS but stays at (or below) the
// WAKE-UP-OFF + AON-IO-GATE floor.
func TestMEEPersistentDegrades(t *testing.T) {
	_, odrips := runFixed(t, ODRIPSConfig(), 3)
	_, floor := runFixed(t, DefaultConfig().WithTechniques(WakeUpOff|AONIOGate), 3)

	p, res := runFaulted(t, ODRIPSConfig(), "meefail@1:1", 4)
	if res.Faults.MEERetries != 1 || res.Faults.Degradations != 1 {
		t.Fatalf("stats = %+v, want 1 retry, 1 degradation", res.Faults)
	}
	if !p.Degraded() {
		t.Fatal("persistent failure did not degrade the platform")
	}
	if res.Cycles != 4 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	// Average idle power mixes one pristine ODRIPS cycle with degraded
	// ones, so it sits strictly between the two pure levels.
	idle := res.IdlePowerMW()
	if idle <= odrips.IdlePowerMW() {
		t.Errorf("degraded idle %.3f mW not above ODRIPS %.3f mW", idle, odrips.IdlePowerMW())
	}
	if idle > floor.IdlePowerMW()+0.01 {
		t.Errorf("degraded idle %.3f mW above the retention-SRAM floor %.3f mW", idle, floor.IdlePowerMW())
	}
	var demoted bool
	for _, fs := range p.FlowTrace() {
		if fs.Flow == "fault" && fs.Step == "degrade-retention-sram" {
			demoted = true
		}
	}
	if !demoted {
		t.Error("no degrade-retention-sram marker in the flow trace")
	}
}

// TestBitFlipTriggersRetryThenDegrade: a retention error inside the
// protected region fails MEE verification on both attempts.
func TestBitFlipTriggersRetryThenDegrade(t *testing.T) {
	p, res := runFaulted(t, ODRIPSConfig(), "bitflip@1:12345", 3)
	if res.Faults.Fired != 1 {
		t.Fatalf("fired = %d, want 1", res.Faults.Fired)
	}
	if res.Faults.MEERetries != 1 || res.Faults.Degradations != 1 {
		t.Fatalf("stats = %+v, want retry then degradation", res.Faults)
	}
	if !p.Degraded() {
		t.Fatal("platform not degraded after persistent corruption")
	}
}

// TestBitFlipSkippedWithoutProtectedRegion: on the baseline there is no
// off-chip context to corrupt; the injection counts as skipped.
func TestBitFlipSkippedWithoutProtectedRegion(t *testing.T) {
	_, res := runFaulted(t, DefaultConfig(), "bitflip@1:77", 3)
	if res.Faults.Skipped != 1 || res.Faults.Fired != 0 {
		t.Fatalf("stats = %+v, want 1 skipped", res.Faults)
	}
	if res.Faults.Degradations != 0 {
		t.Fatalf("baseline degraded: %+v", res.Faults)
	}
}

// TestDriftTriggersRecalibration: a slow-crystal excursion beyond the
// threshold is caught by the exit flow's Step cross-check exactly once —
// recalibration re-anchors the stored calibration to the drifted crystal.
func TestDriftTriggersRecalibration(t *testing.T) {
	_, base := runFixed(t, ODRIPSConfig(), 3)
	p, res := runFaulted(t, ODRIPSConfig(), "drift@1:1000000", 4)
	if res.Faults.Fired != 1 {
		t.Fatalf("fired = %d, want 1", res.Faults.Fired)
	}
	if res.Faults.Recalibrations != 1 {
		t.Fatalf("recalibrations = %d, want 1", res.Faults.Recalibrations)
	}
	var recal bool
	for _, fs := range p.FlowTrace() {
		if fs.Flow == "exit" && fs.Step == "recalibrate" {
			recal = true
			if fs.Duration < p.bud.RecalWindow {
				t.Errorf("recalibration window %v below budget %v", fs.Duration, p.bud.RecalWindow)
			}
		}
	}
	if !recal {
		t.Error("no recalibrate step in the flow trace")
	}
	if res.ExitMax <= base.ExitMax {
		t.Errorf("recalibrating exit %v not above fault-free max %v", res.ExitMax, base.ExitMax)
	}
}

// TestDriftBelowThresholdInvisible: a small excursion stays within the
// cross-check budget; no recalibration, no new steps.
func TestDriftBelowThresholdInvisible(t *testing.T) {
	p, res := runFaulted(t, ODRIPSConfig(), "drift@1:5000", 3)
	if res.Faults.Fired != 1 {
		t.Fatalf("fired = %d, want 1", res.Faults.Fired)
	}
	if res.Faults.Recalibrations != 0 {
		t.Fatalf("recalibrations = %d, want 0", res.Faults.Recalibrations)
	}
	for _, fs := range p.FlowTrace() {
		if fs.Step == "recalibrate" {
			t.Fatal("recalibrate step recorded below threshold")
		}
	}
}

// TestFETGlitchCostsExtraSlew: the re-drive adds one slew window to the
// exit and is visible in the trace.
func TestFETGlitchCostsExtraSlew(t *testing.T) {
	p, res := runFaulted(t, ODRIPSConfig(), "fetglitch@1", 3)
	if res.Faults.FETRetries != 1 {
		t.Fatalf("fet retries = %d, want 1", res.Faults.FETRetries)
	}
	// The glitched release takes two slew windows instead of one; exit
	// durations otherwise vary only with 32 kHz edge alignment, so compare
	// the step itself, not whole-exit latencies.
	maxRelease := func(trace []FlowStep) sim.Duration {
		var d sim.Duration
		for _, fs := range trace {
			if fs.Step == "release-fet" && fs.Duration > d {
				d = fs.Duration
			}
		}
		return d
	}
	if got := maxRelease(p.FlowTrace()); got < 2*p.bud.FETSlew {
		t.Errorf("glitched release-fet took %v, want >= %v", got, 2*p.bud.FETSlew)
	}
	var marked bool
	for _, fs := range p.FlowTrace() {
		if fs.Flow == "fault" && fs.Step == "release-fet-retry" {
			marked = true
		}
	}
	if !marked {
		t.Error("no release-fet-retry marker in the flow trace")
	}
}

// TestFaultedRunsDeterministic: a fixed (config, workload, plan) triple
// produces byte-identical results and traces across repeat runs.
func TestFaultedRunsDeterministic(t *testing.T) {
	plans := []string{
		"wake@1.3",
		"meefail@0:1;fetglitch@2",
		"drift@0:2000000;wake@2.5",
		"bitflip@1:999;wakex@2.1",
	}
	for _, plan := range plans {
		p1, r1 := runFaulted(t, ODRIPSConfig(), plan, 3)
		p2, r2 := runFaulted(t, ODRIPSConfig(), plan, 3)
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("plan %q: results diverged", plan)
		}
		if !reflect.DeepEqual(p1.FlowTrace(), p2.FlowTrace()) {
			t.Errorf("plan %q: traces diverged", plan)
		}
	}
}

// TestUnreachedInjectionsStayPlanned: cycles beyond the run never fire.
func TestUnreachedInjectionsStayPlanned(t *testing.T) {
	_, res := runFaulted(t, ODRIPSConfig(), "wake@7.2;meefail@9", 3)
	if res.Faults.Planned != 2 || res.Faults.Fired != 0 || res.Faults.Skipped != 0 {
		t.Fatalf("stats = %+v, want 2 planned, none fired", res.Faults)
	}
}

// TestInjectFaultsValidates: invalid plans and mid-flow installs are
// rejected.
func TestInjectFaultsValidates(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := faults.Plan{Injections: []faults.Injection{{Kind: faults.MEEFail, Cycle: 0, Arg: 9}}}
	if err := p.InjectFaults(bad); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if err := p.InjectFaults(faults.Plan{}); err != nil {
		t.Fatal(err)
	}
}

// TestAbortEnergyAccounting: the run's total battery energy equals the
// tracker's per-state sum even across abort rollbacks (no energy is lost or
// double-counted by the unwind).
func TestAbortEnergyAccounting(t *testing.T) {
	p, err := New(ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("wake@1.4")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectFaults(plan); err != nil {
		t.Fatal(err)
	}
	// Diff the meter across the run: energy spent during New (the initial
	// calibration) predates the tracker and is out of scope.
	startJ := p.meter.Snapshot().TotalBatteryJ()
	res, err := p.RunCycles(workload.Fixed(3, 0, 30*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	var stateJ float64
	for _, st := range power.States() {
		stateJ += res.StateEnergyJ[st]
	}
	meterJ := p.meter.Snapshot().TotalBatteryJ() - startJ
	if math.Abs(stateJ-meterJ) > 1e-9*math.Max(1, meterJ) {
		t.Errorf("state energy %.9f J != meter delta %.9f J", stateJ, meterJ)
	}
	if res.Faults.EntryAborts != 1 {
		t.Fatalf("aborts = %d, want 1", res.Faults.EntryAborts)
	}
}

// TestEMRAMPersistentDegrades: the eMRAM variant degrades the same way.
func TestEMRAMPersistentDegrades(t *testing.T) {
	cfg := ODRIPSConfig()
	cfg.Techniques &^= CtxSGXDRAM
	cfg.CtxInEMRAM = true
	p, res := runFaulted(t, cfg, "meefail@1:1", 3)
	if res.Faults.MEERetries != 1 || res.Faults.Degradations != 1 {
		t.Fatalf("stats = %+v, want retry then degradation", res.Faults)
	}
	if !p.Degraded() {
		t.Fatal("eMRAM platform not degraded")
	}
	var sawSRAMSave bool
	for _, fs := range p.FlowTrace() {
		if fs.Step == "save-ctx-sram" {
			sawSRAMSave = true
		}
	}
	if !sawSRAMSave {
		t.Error("degraded cycles did not save context to retention SRAM")
	}
}

// TestThermalWakeWithoutAONIOGate is the regression test for a liveness
// bug the property harness found: with WAKE-UP-OFF but not AON-IO-GATE,
// the thermal watch stayed on the 24 MHz crystal the entry flow shuts, so
// an EC thermal wake during idle sampled a dead oscillator and was lost
// (the run stalled). The watch must follow the clock to the slow crystal
// at entry and back at exit.
func TestThermalWakeWithoutAONIOGate(t *testing.T) {
	for _, tech := range []Technique{WakeUpOff, WakeUpOff | CtxSGXDRAM} {
		cfg := ODRIPSConfig()
		cfg.Techniques = tech
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cycles := []workload.Cycle{
			{Idle: 30 * sim.Second, Wake: workload.WakeThermal},
			{Idle: 30 * sim.Second, Wake: workload.WakeTimer},
			{Idle: 30 * sim.Second, Wake: workload.WakeThermal},
		}
		res, err := p.RunCycles(cycles)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if res.WakeCounts["thermal"] != 2 {
			t.Errorf("%v: thermal wakes = %d, want 2", tech, res.WakeCounts["thermal"])
		}
	}
}

// TestFaultStatsStringer keeps the stats printable for the CLI summary.
func TestFaultStatsStringer(t *testing.T) {
	s := FaultStats{Planned: 3, Fired: 2, Skipped: 1, EntryAborts: 1}.String()
	for _, want := range []string{"planned 3", "fired 2", "skipped 1", "aborts 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("FaultStats.String() = %q, missing %q", s, want)
		}
	}
}
