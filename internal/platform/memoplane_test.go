package platform

import (
	"reflect"
	"testing"

	"odrips/internal/memostore"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// planeCycles is a short steady-state run: long enough to reach and
// repeat the steady cycle, short enough for the test tier.
func planeCycles() []workload.Cycle {
	return workload.Fixed(40, 2*sim.Millisecond, 30*sim.Second)
}

func planeRun(t *testing.T, cfg Config, attach func(*Platform)) (Result, FFStats) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(p)
	}
	res, err := p.RunCycles(planeCycles())
	if err != nil {
		t.Fatal(err)
	}
	return res, p.FFStats()
}

// stripConfig zeroes the Config echo so results from different seeds can
// be compared field-for-field.
func stripConfig(r Result) Result {
	r.Config = Config{}
	return r
}

// TestMemoPlaneCrossDeviceSharing is the plane's core claim: the first
// device pays for the steady-state cycle, a second device of the same
// memo class — even with a different seed — replays it, and both report
// results byte-identical to an unattached run.
func TestMemoPlaneCrossDeviceSharing(t *testing.T) {
	cfgA := ODRIPSConfig()
	cfgB := cfgA
	cfgB.Seed = 99
	if MemoClassKey(cfgA) != MemoClassKey(cfgB) {
		t.Fatal("seeds split the memo class")
	}

	soloA, _ := planeRun(t, cfgA, nil)
	soloB, _ := planeRun(t, cfgB, nil)

	plane := NewMemoPlane(nil, 0)
	gotA, statsA := planeRun(t, cfgA, plane.Attach)
	gotB, statsB := planeRun(t, cfgB, plane.Attach)

	if !reflect.DeepEqual(gotA, soloA) {
		t.Errorf("device A: plane-attached result diverged from solo run")
	}
	if !reflect.DeepEqual(gotB, soloB) {
		t.Errorf("device B: plane-attached result diverged from solo run")
	}
	if statsA.CyclesRecorded == 0 {
		t.Errorf("device A recorded no cycles: %+v", statsA)
	}
	if statsB.CyclesReplayed == 0 {
		t.Errorf("device B replayed nothing from the shared plane: %+v", statsB)
	}
	if statsB.CyclesRecorded >= statsA.CyclesRecorded {
		t.Errorf("device B re-recorded the plane's classes (A %d, B %d)",
			statsA.CyclesRecorded, statsB.CyclesRecorded)
	}

	st := plane.Stats()
	if st.Classes != 1 {
		t.Errorf("plane classes = %d want 1", st.Classes)
	}
	if st.Records == 0 || st.Adopted == 0 {
		t.Errorf("plane stats %+v: want records and adoptions", st)
	}
}

// TestMemoSnapshotIsFrozen: a snapshot-attached run adopts records but
// publishes nothing, and its results match the live-plane run exactly.
func TestMemoSnapshotIsFrozen(t *testing.T) {
	cfg := ODRIPSConfig()
	plane := NewMemoPlane(nil, 0)
	want, _ := planeRun(t, cfg, plane.Attach)

	snap := plane.Snapshot()
	if snap.Classes() != 1 || snap.Records() == 0 {
		t.Fatalf("snapshot classes=%d records=%d", snap.Classes(), snap.Records())
	}
	recordsBefore := plane.Stats().Records

	got, stats := planeRun(t, cfg, snap.Attach)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot-attached result diverged from live-plane run")
	}
	if stats.CyclesReplayed == 0 {
		t.Errorf("snapshot run replayed nothing: %+v", stats)
	}
	if after := plane.Stats().Records; after != recordsBefore {
		t.Errorf("snapshot run published to the plane: %d -> %d records", recordsBefore, after)
	}

	// A second snapshot run is a pure function of (cfg, cycles, snap):
	// identical replay statistics, not just identical results.
	_, stats2 := planeRun(t, cfg, snap.Attach)
	if stats2 != stats {
		t.Errorf("snapshot runs disagree on stats: %+v vs %+v", stats, stats2)
	}
}

// TestMemoPlanePersistence: Flush writes plane classes through the store,
// and a fresh plane over the same store adopts them without simulating.
func TestMemoPlanePersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := memostore.Open(dir, memostore.RW)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ODRIPSConfig()

	plane1 := NewMemoPlane(store, 0)
	want, _ := planeRun(t, cfg, plane1.Attach)
	plane1.Flush()
	if st := store.Stats(); st.Writes == 0 {
		t.Fatalf("Flush wrote nothing: %+v", st)
	}

	plane2 := NewMemoPlane(store, 0)
	got, stats := planeRun(t, cfg, plane2.Attach)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disk-warmed plane result diverged")
	}
	if stats.CyclesReplayed == 0 || plane2.Stats().Adopted == 0 {
		t.Errorf("fresh plane adopted nothing from disk: ff=%+v plane=%+v", stats, plane2.Stats())
	}
}

// TestMemoPlaneEvictionFlushes: pushing a class out of a size-1 plane
// persists its records, so the bound costs a disk reload, not rework.
func TestMemoPlaneEvictionFlushes(t *testing.T) {
	store, err := memostore.Open(t.TempDir(), memostore.RW)
	if err != nil {
		t.Fatal(err)
	}
	plane := NewMemoPlane(store, 1)
	planeRun(t, ODRIPSConfig(), plane.Attach)

	baseline := DefaultConfig() // different memo class; evicts the first
	planeRun(t, baseline, plane.Attach)
	if st := plane.Stats(); st.Classes != 1 || st.Class.Evictions != 1 {
		t.Fatalf("plane stats %+v: want 1 class, 1 eviction", st)
	}
	if st := store.Stats(); st.Writes == 0 {
		t.Fatalf("eviction did not flush the victim: %+v", st)
	}

	// Re-acquiring the evicted class reloads it from disk.
	plane2 := NewMemoPlane(store, 1)
	_, stats := planeRun(t, ODRIPSConfig(), plane2.Attach)
	if stats.CyclesReplayed == 0 {
		t.Errorf("evicted-and-reloaded class replayed nothing: %+v", stats)
	}
}
