package platform

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"odrips/internal/memostore"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// planeCycles is a short steady-state run: long enough to reach and
// repeat the steady cycle, short enough for the test tier.
func planeCycles() []workload.Cycle {
	return workload.Fixed(40, 2*sim.Millisecond, 30*sim.Second)
}

func planeRun(t *testing.T, cfg Config, attach func(*Platform)) (Result, FFStats) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(p)
	}
	res, err := p.RunCycles(planeCycles())
	if err != nil {
		t.Fatal(err)
	}
	return res, p.FFStats()
}

// stripConfig zeroes the Config echo so results from different seeds can
// be compared field-for-field.
func stripConfig(r Result) Result {
	r.Config = Config{}
	return r
}

// TestMemoPlaneCrossDeviceSharing is the plane's core claim: the first
// device pays for the steady-state cycle, a second device of the same
// memo class — even with a different seed — replays it, and both report
// results byte-identical to an unattached run.
func TestMemoPlaneCrossDeviceSharing(t *testing.T) {
	cfgA := ODRIPSConfig()
	cfgB := cfgA
	cfgB.Seed = 99
	if MemoClassKey(cfgA) != MemoClassKey(cfgB) {
		t.Fatal("seeds split the memo class")
	}

	soloA, _ := planeRun(t, cfgA, nil)
	soloB, _ := planeRun(t, cfgB, nil)

	plane := NewMemoPlane(nil, 0)
	gotA, statsA := planeRun(t, cfgA, plane.Attach)
	gotB, statsB := planeRun(t, cfgB, plane.Attach)

	if !reflect.DeepEqual(gotA, soloA) {
		t.Errorf("device A: plane-attached result diverged from solo run")
	}
	if !reflect.DeepEqual(gotB, soloB) {
		t.Errorf("device B: plane-attached result diverged from solo run")
	}
	if statsA.CyclesRecorded == 0 {
		t.Errorf("device A recorded no cycles: %+v", statsA)
	}
	if statsB.CyclesReplayed == 0 {
		t.Errorf("device B replayed nothing from the shared plane: %+v", statsB)
	}
	if statsB.CyclesRecorded >= statsA.CyclesRecorded {
		t.Errorf("device B re-recorded the plane's classes (A %d, B %d)",
			statsA.CyclesRecorded, statsB.CyclesRecorded)
	}

	st := plane.Stats()
	if st.Classes != 1 {
		t.Errorf("plane classes = %d want 1", st.Classes)
	}
	if st.Records == 0 || st.Adopted == 0 {
		t.Errorf("plane stats %+v: want records and adoptions", st)
	}
}

// TestMemoSnapshotIsFrozen: a snapshot-attached run adopts records but
// publishes nothing, and its results match the live-plane run exactly.
func TestMemoSnapshotIsFrozen(t *testing.T) {
	cfg := ODRIPSConfig()
	plane := NewMemoPlane(nil, 0)
	want, _ := planeRun(t, cfg, plane.Attach)

	snap := plane.Snapshot()
	if snap.Classes() != 1 || snap.Records() == 0 {
		t.Fatalf("snapshot classes=%d records=%d", snap.Classes(), snap.Records())
	}
	recordsBefore := plane.Stats().Records

	got, stats := planeRun(t, cfg, snap.Attach)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot-attached result diverged from live-plane run")
	}
	if stats.CyclesReplayed == 0 {
		t.Errorf("snapshot run replayed nothing: %+v", stats)
	}
	if after := plane.Stats().Records; after != recordsBefore {
		t.Errorf("snapshot run published to the plane: %d -> %d records", recordsBefore, after)
	}

	// A second snapshot run is a pure function of (cfg, cycles, snap):
	// identical replay statistics, not just identical results.
	_, stats2 := planeRun(t, cfg, snap.Attach)
	if stats2 != stats {
		t.Errorf("snapshot runs disagree on stats: %+v vs %+v", stats, stats2)
	}
}

// TestMemoPlanePersistence: Flush writes plane classes through the store,
// and a fresh plane over the same store adopts them without simulating.
func TestMemoPlanePersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := memostore.Open(dir, memostore.RW)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ODRIPSConfig()

	plane1 := NewMemoPlane(store, 0)
	want, _ := planeRun(t, cfg, plane1.Attach)
	plane1.Flush()
	if st := store.Stats(); st.Writes == 0 {
		t.Fatalf("Flush wrote nothing: %+v", st)
	}

	plane2 := NewMemoPlane(store, 0)
	got, stats := planeRun(t, cfg, plane2.Attach)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("disk-warmed plane result diverged")
	}
	if stats.CyclesReplayed == 0 || plane2.Stats().Adopted == 0 {
		t.Errorf("fresh plane adopted nothing from disk: ff=%+v plane=%+v", stats, plane2.Stats())
	}
}

// TestWarmClassCrossProcess is the claim protocol end to end: two
// planes over two stores sharing one directory (two "processes"). The
// first WarmClass wins the claim, computes, and eagerly flushes; the
// second finds the class on disk and replays instead of rediscovering.
func TestWarmClassCrossProcess(t *testing.T) {
	dir := t.TempDir()
	openStore := func() *memostore.Store {
		s, err := memostore.Open(dir, memostore.RW)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	storeA, storeB := openStore(), openStore()
	planeA, planeB := NewMemoPlane(storeA, 0), NewMemoPlane(storeB, 0)
	cfg := ODRIPSConfig()
	key := MemoClassKey(cfg)
	solo, _ := planeRun(t, cfg, nil)

	var resA, resB Result
	var ffA, ffB FFStats
	if err := planeA.WarmClass(context.Background(), key, func() error {
		resA, ffA = planeRun(t, cfg, planeA.Attach)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sa := storeA.Stats(); sa.ClaimsOwned != 1 || sa.Writes == 0 {
		t.Fatalf("leader process stats %+v: want an owned claim and an eager flush", sa)
	}
	if ffA.CyclesRecorded == 0 {
		t.Fatalf("leader discovered nothing: %+v", ffA)
	}

	if err := planeB.WarmClass(context.Background(), key, func() error {
		resB, ffB = planeRun(t, cfg, planeB.Attach)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, solo) || !reflect.DeepEqual(resB, solo) {
		t.Fatal("coordinated runs diverged from solo run")
	}
	if ffB.CyclesReplayed == 0 || ffB.CyclesRecorded != 0 {
		t.Fatalf("second process re-discovered the class: %+v", ffB)
	}
	if sb := storeB.Stats(); sb.ClaimsOwned != 0 {
		t.Fatalf("second process claimed a warm class: %+v", sb)
	}
	if st := planeA.Stats(); st.WarmLeads != 1 || st.WarmShared != 0 {
		t.Fatalf("plane A warm stats %+v", st)
	}
}

// TestWarmClassConcurrentProcesses races two planes' WarmClass over one
// shared store directory under -race. Whoever loses the claim adopts the
// winner's flushed bundle (or claims after the winner released); either
// interleaving must yield identical results and exactly one discovery
// per unique fingerprint fleet-wide is asserted by the claims/waits
// accounting summing consistently.
func TestWarmClassConcurrentProcesses(t *testing.T) {
	dir := t.TempDir()
	cfg := ODRIPSConfig()
	key := MemoClassKey(cfg)
	solo, _ := planeRun(t, cfg, nil)

	stores := make([]*memostore.Store, 2)
	planes := make([]*MemoPlane, 2)
	for i := range stores {
		s, err := memostore.Open(dir, memostore.RW)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = s
		planes[i] = NewMemoPlane(s, 0)
	}

	results := make([]Result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := planes[i].WarmClass(context.Background(), key, func() error {
				results[i], _ = planeRun(t, cfg, planes[i].Attach)
				return nil
			}); err != nil {
				t.Errorf("plane %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	for i, r := range results {
		if !reflect.DeepEqual(r, solo) {
			t.Errorf("plane %d result diverged from solo run", i)
		}
	}
	var owned, lost, waits, takeovers uint64
	for _, s := range stores {
		st := s.Stats()
		owned += st.ClaimsOwned
		lost += st.ClaimsLost
		waits += st.ClaimWaitHits
		takeovers += st.ClaimTakeovers
	}
	if owned < 1 || owned > 2 {
		t.Errorf("claims owned fleet-wide = %d, want 1 or 2", owned)
	}
	if takeovers != 0 {
		t.Errorf("%d takeovers during a live race (stale threshold is 30s)", takeovers)
	}
	// A process that lost the claim must have awaited rather than raced:
	// every loss pairs with a wait outcome (hit, vanish, or retry claim).
	if lost > 0 && waits == 0 && owned != 2 {
		t.Errorf("claim lost without a wait resolution: owned=%d lost=%d waits=%d", owned, lost, waits)
	}
}

// TestMemoPlaneEvictionFlushes: pushing a class out of a size-1 plane
// persists its records, so the bound costs a disk reload, not rework.
func TestMemoPlaneEvictionFlushes(t *testing.T) {
	store, err := memostore.Open(t.TempDir(), memostore.RW)
	if err != nil {
		t.Fatal(err)
	}
	plane := NewMemoPlane(store, 1)
	planeRun(t, ODRIPSConfig(), plane.Attach)

	baseline := DefaultConfig() // different memo class; evicts the first
	planeRun(t, baseline, plane.Attach)
	if st := plane.Stats(); st.Classes != 1 || st.Class.Evictions != 1 {
		t.Fatalf("plane stats %+v: want 1 class, 1 eviction", st)
	}
	if st := store.Stats(); st.Writes == 0 {
		t.Fatalf("eviction did not flush the victim: %+v", st)
	}

	// Re-acquiring the evicted class reloads it from disk.
	plane2 := NewMemoPlane(store, 1)
	_, stats := planeRun(t, ODRIPSConfig(), plane2.Attach)
	if stats.CyclesReplayed == 0 {
		t.Errorf("evicted-and-reloaded class replayed nothing: %+v", stats)
	}
}
