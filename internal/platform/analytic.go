package platform

import (
	"odrips/internal/dram"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/sram"
)

// AnalyticIdleMW predicts the battery power in the idle state from the
// budget table alone — the paper's "in-house power model" (§7), evaluated
// before any simulation runs. The experiments validate it against the
// simulated measurement; the paper reports ~95% accuracy for theirs.
func (p *Platform) AnalyticIdleMW() float64 {
	bud := p.bud
	t := p.cfg.Techniques

	var delivered float64

	// Wake monitoring and main-timer toggling.
	if !t.Has(WakeUpOff) {
		delivered += bud.WakeTimerIdleMW
	}
	// AON IO rail, or FET residual leakage when gated.
	scale := bud.ProcessLeakageScale
	if t.Has(AONIOGate) {
		delivered += p.ring.TotalDrawMW() * scale * p.fet.LeakageFraction
	} else {
		delivered += p.ring.TotalDrawMW() * scale
	}
	// Retention SRAMs or their ODRIPS replacements.
	ctxOffChip := t.Has(CtxSGXDRAM) || p.cfg.CtxInEMRAM
	if !ctxOffChip {
		delivered += p.saSRAM.DrawMW(sram.Retention) * scale
		delivered += p.computeSRAM.DrawMW(sram.Retention) * scale
		delivered += p.bootSRAM.DrawMW(sram.Retention) * scale
	} else if t.Has(CtxSGXDRAM) {
		delivered += p.bootSRAM.DrawMW(sram.Retention) * scale // Boot SRAM stays
	}
	// PMU AON remainder.
	switch {
	case t == ODRIPS && p.cfg.MainMemory == dram.PCM:
		delivered += bud.PMUAonGatedPCMMW
	case t == ODRIPS || (t.Has(WakeUpOff|AONIOGate) && p.cfg.CtxInEMRAM):
		delivered += bud.PMUAonGatedMW
	default:
		delivered += bud.PMUAonIdleMW
	}
	// Crystals.
	if !t.Has(WakeUpOff) {
		delivered += bud.Xtal24MW
	}
	delivered += bud.Xtal32MW
	// Chipset.
	delivered += bud.ChipsetAonIdleMW
	if t.Has(WakeUpOff) {
		delivered += bud.MonitorSlowMW
	} else {
		delivered += bud.MonitorFastMW
	}
	// Memory retention.
	delivered += p.mem.IdleDrawMW(dram.SelfRefresh)
	// Board.
	delivered += bud.BoardMiscIdleMW

	direct := bud.VRFixedMW
	if !t.Has(AONIOGate) {
		direct += bud.VRAonIOMW
	}
	if !ctxOffChip {
		direct += bud.VRSramMW
	}
	if t.Has(WakeUpOff) {
		direct += bud.VRPmuShedMW
	} else {
		direct += bud.VRPmuMW
	}

	return delivered/bud.EffIdle + direct
}

// AnalyticProfile builds the Equation-1 connected-standby profile from the
// budget: per-state power levels and nominal per-cycle durations for the
// given idle residency.
func (p *Platform) AnalyticProfile(idle sim.Duration) (power.Profile, error) {
	bud := p.bud
	powers := map[power.State]float64{
		power.Active: bud.C0TargetMW[p.cfg.CoreFreqMHz],
		power.Entry:  bud.EntryTargetMW,
		power.Idle:   p.AnalyticIdleMW(),
		power.Exit:   bud.ExitTargetMW,
	}
	durations := map[power.State]sim.Duration{
		power.Active: p.MaintenanceDuration(),
		power.Entry:  200 * sim.Microsecond,
		power.Idle:   idle,
		power.Exit:   300 * sim.Microsecond,
	}
	return power.NewProfile(powers, durations)
}
