package platform

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"reflect"

	"odrips/internal/chipset"
	"odrips/internal/ltr"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// This file is the cycle-replay layer of the fast-forward engine
// (DESIGN.md §12): when the platform's behavioral fingerprint at a cycle
// boundary recurs together with the same workload.Cycle parameters, the
// whole cycle is known to repeat exactly, so it is applied as recorded
// exact deltas over one bulk scheduler advance instead of being simulated.
//
// The fingerprint hashes every piece of mutable state that can influence a
// cycle's behavior, expressed relative to the current instant so that it
// can recur: oscillator phase residues instead of absolute edge times, LTR
// deadlines relative to now instead of absolute, per-component power draws
// instead of energy accumulators. State that only accumulates outputs
// (energies, residencies, counters, the main-timer value) is excluded and
// advanced by recorded deltas instead; the exclusion list is enforced
// field-by-field by the fast-forward manifest test.
//
// The scheme is fail-safe by construction: the fingerprint is recomputed
// from live state at every boundary, so a surgery bug produces a memo miss
// and a full simulation, never silent corruption.

// ffRecordCap bounds the number of memoized cycle classes per platform so
// sweeps whose fingerprints never recur stay O(1) in memory.
const ffRecordCap = 64

// ffNumStates is the number of architectural power states; the replay
// deltas use fixed arrays indexed by power.State.
const ffNumStates = 4

// ffKey identifies a steady-state cycle class: the boundary fingerprint
// plus the workload parameters of the cycle about to run.
type ffKey struct {
	fp     [32]byte
	active sim.Duration
	idle   sim.Duration
	wake   workload.WakeKind
}

// ctrPatch replays a FastCounter: the counter's base advances by a fixed
// delta per cycle (the hand-over protocol re-derives it from the same
// phase-locked counts each time) and its anchor lands at a fixed offset
// from the cycle start.
type ctrPatch struct {
	changed   bool
	baseD     uint64 // base advance per cycle (wrapping)
	anchorOff sim.Duration
	running   bool
}

// oscPatch replays an oscillator that was power-cycled during the cycle:
// its edge-grid anchor lands at a fixed offset from the cycle start.
type oscPatch struct {
	changed   bool
	stableOff sim.Duration
}

// ltrPatch replays one named TNTE deadline, relative to the cycle end
// (consumed deadlines legitimately sit in the past).
type ltrPatch struct {
	owner string
	rel   sim.Duration
}

// cycleRecord is everything one cycle does to the platform, as exact
// deltas against the boundary state it started from.
type cycleRecord struct {
	dur        sim.Duration
	endFP      [32]byte
	replayable bool

	// Exact energy/residency movement.
	nomD, battD []power.Energy // per meter component, registration order
	resD        [ffNumStates]sim.Duration
	enD         [ffNumStates]power.Energy
	idleByCmpD  []power.Energy
	transD      uint64

	// Flow statistics.
	entriesD, exitsD        uint64
	entryTotalD, exitTotalD sim.Duration
	ctxSaveLat, ctxRestore  sim.Duration // end values (identical per cycle)
	ctxVerifiedD            uint64

	// Wake accounting. endWakeFired is the hub latch at the end boundary:
	// a completed deep-idle cycle leaves it set until the next idle entry
	// re-arms it, while a shallow or leading boundary leaves it clear, so
	// replay must restore it for the next boundary fingerprint to match.
	wakeD        [3]uint64 // platform counts, indexed by chipset.WakeSource
	hubWakeD     [3]uint64
	shallowD     map[string]uint64
	endWakeFired bool

	// Timekeeping surgery.
	mainTimerP ctrPatch
	unitFastP  ctrPatch
	x24P       oscPatch
	ltrTimers  []ltrPatch

	// MEE root-counter advance (CtxSGXDRAM cycles).
	engPresent bool
	rootD      uint64
	endPrimed  bool

	// Flow-trace steps, At stored as the offset from the cycle start.
	steps []FlowStep
}

// ctrSnap is a FastCounter latch snapshot.
type ctrSnap struct {
	base    uint64
	anchor  sim.Time
	running bool
}

// cycleRecording is an in-flight recording, finalized at the next
// boundary.
type cycleRecording struct {
	key    ffKey
	start  sim.Time
	expect *cycleRecord // verify mode: compare instead of store

	nom0, batt0 []power.Energy
	res0        [ffNumStates]sim.Duration
	en0         [ffNumStates]power.Energy
	idle0       []power.Energy
	trans0      uint64
	fs0         flowStats
	wake0       [3]uint64
	hubWake0    [3]uint64
	shallow0    map[string]uint64
	mt0, uf0    ctrSnap
	x24Stable0  sim.Time
	x32Stable0  sim.Time
	ltrReports0 []ltr.Report
	root0       uint64
	eng0        bool

	steps []FlowStep // absolute At; rebased at finalize
}

// ffCycleEligible reports whether the platform, at a RunCycles boundary,
// is in a state where a cycle may be recorded or replayed: quiescent,
// healthy, with no flow plumbing in flight and no trace hook observing
// the timer protocol (a Trace callback sees per-edge events that a replay
// would skip).
func (p *Platform) ffCycleEligible() bool {
	if p.ff.mode == FFOff || p.sched.Pending() != 0 || !p.ffFaultsClean() {
		return false
	}
	if p.state != power.Active || p.inFlow || p.err != nil {
		return false
	}
	if p.pendingWake != nil || p.p2cContinue != nil || p.c2pContinue != nil ||
		p.abortWake != nil || p.wantAbort {
		return false
	}
	if u := p.hub.Unit(); u != nil && u.Trace != nil {
		return false
	}
	return true
}

// ---- Fingerprint ----

// ffSlowPhaseObservable reports whether any platform logic can observe a
// slow-crystal edge during the upcoming cycle: the Wake-Up-Off timer
// hand-over schedules on it, and a pin watched on it samples on it.
// Everything else is driven by the fast crystal or by plain latencies.
func (p *Platform) ffSlowPhaseObservable() bool {
	if p.cfg.Techniques.Has(WakeUpOff) {
		return true
	}
	slowName := p.xtal32.Name()
	for _, pin := range p.hub.GPIOPins() {
		if _, _, _, _, _, _, sampler := pin.FastForwardState(); sampler == slowName {
			return true
		}
	}
	return false
}

func ffPutU64(b []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(b, w[:]...)
}

func ffPutI64(b []byte, v int64) []byte { return ffPutU64(b, uint64(v)) }

func ffPutBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func ffPutStr(b []byte, s string) []byte {
	b = ffPutU64(b, uint64(len(s)))
	return append(b, s...)
}

// ffFingerprint hashes the behavior-relevant mutable platform state at a
// cycle boundary. Everything here must be either recurrence-capable
// (expressed relative to now) or repeating absolute state (levels, modes,
// draws); monotonic accumulators are excluded and handled by delta replay.
// The serialization order is fixed; changing it only changes memo keys
// within a run, never correctness.
func (p *Platform) ffFingerprint() [32]byte {
	now := p.sched.Now()
	b := p.ff.fpBuf[:0]

	// Power: per-component quantized draws (registration order) and the
	// delivery efficiency in force.
	comps := p.meter.Ordered()
	b = ffPutU64(b, uint64(len(comps)))
	for _, c := range comps {
		nom, batt := c.DrawsNW()
		b = ffPutI64(b, nom)
		b = ffPutI64(b, batt)
	}
	b = ffPutU64(b, math.Float64bits(p.meter.Efficiency()))

	// Platform flags.
	b = ffPutBool(b, p.degraded)
	b = ffPutBool(b, p.hub.Hosting())
	b = ffPutBool(b, p.hub.WakeFired())
	b = ffPutI64(b, int64(p.state))
	b = ffPutBool(b, p.eng != nil)

	// Oscillators: power, tuning, and the exact phase residue relative to
	// now (clock.PhaseFingerprint), which pins the future edge grid. The
	// fast crystal's phase is always significant (the main timer counts
	// its edges and the flows schedule on it); the slow crystal's phase
	// only matters when something can observe a 32 kHz edge — the timer
	// hand-over protocol (WakeUpOff) or a pin sampling on it. A baseline
	// platform has neither, and leaving the dead residue out is what lets
	// its boundary fingerprints recur.
	b = ffPutBool(b, p.xtal24.On())
	b = ffPutI64(b, p.xtal24.PPB())
	hi, lo, neg := p.xtal24.PhaseFingerprint(now)
	b = ffPutU64(b, hi)
	b = ffPutU64(b, lo)
	b = ffPutBool(b, neg)
	b = ffPutBool(b, p.xtal32.On())
	b = ffPutI64(b, p.xtal32.PPB())
	slowObservable := p.ffSlowPhaseObservable()
	b = ffPutBool(b, slowObservable)
	if slowObservable {
		hi, lo, neg = p.xtal32.PhaseFingerprint(now)
		b = ffPutU64(b, hi)
		b = ffPutU64(b, lo)
		b = ffPutBool(b, neg)
	}

	// Clock domains and rails.
	b = ffPutBool(b, p.procDom.Gated())
	b = ffPutBool(b, p.hub.Dom24().Gated())
	b = ffPutBool(b, p.ring.Gated())

	// Memory and retention stores.
	b = ffPutI64(b, int64(p.mem.State()))
	b = ffPutBool(b, p.mem.CKE())
	b = ffPutI64(b, int64(p.saSRAM.State()))
	b = ffPutI64(b, int64(p.computeSRAM.State()))
	b = ffPutI64(b, int64(p.bootSRAM.State()))

	// Timekeeping mode (counter values are excluded; the counter patches
	// replay them as deltas).
	b = ffPutBool(b, p.mainTimer.Running())
	u := p.hub.Unit()
	b = ffPutBool(b, u != nil)
	if u != nil {
		b = ffPutI64(b, int64(u.Mode()))
		b = ffPutBool(b, u.SwitchAsserted())
		b = ffPutBool(b, u.Fast.Running())
	}
	cal := p.hub.Calibration()
	b = ffPutBool(b, cal != nil)
	if cal != nil {
		b = ffPutU64(b, cal.Step.Raw)
		b = ffPutU64(b, uint64(cal.Step.FracBits))
	}

	// LTR reports and TNTE deadlines (relative to now; consumed deadlines
	// are negative and still meaningful — NextTimerEvent clamps them).
	reports := p.ltrTable.Reports()
	b = ffPutU64(b, uint64(len(reports)))
	for _, r := range reports {
		b = ffPutStr(b, r.Device)
		b = ffPutI64(b, int64(r.Tolerance))
	}
	timers := p.ltrTable.Timers()
	b = ffPutU64(b, uint64(len(timers)))
	for _, t := range timers {
		b = ffPutStr(b, t.Owner)
		b = ffPutI64(b, int64(t.Deadline.Sub(now)))
	}

	// GPIO pins (sorted by name).
	pins := p.hub.GPIOPins()
	b = ffPutU64(b, uint64(len(pins)))
	for _, pin := range pins {
		mode, level, pending, havePending, watched, samplePending, sampler := pin.FastForwardState()
		b = ffPutStr(b, pin.Name())
		b = ffPutI64(b, int64(mode))
		b = ffPutBool(b, level)
		b = ffPutBool(b, pending)
		b = ffPutBool(b, havePending)
		b = ffPutBool(b, watched)
		b = ffPutBool(b, samplePending)
		b = ffPutStr(b, sampler)
	}

	// On-chip eMRAM context (fault injection can corrupt it in place).
	// The content digest is memoized behind a dirty flag: the save flow
	// rewrites the same ctxImage bytes every cycle (and installs its
	// precomputed hash), so the per-boundary cost is O(1) instead of a
	// full SHA-256 of the image.
	b = ffPutU64(b, uint64(len(p.emram)))
	if len(p.emram) > 0 {
		if !p.emramHashOK {
			p.emramHash = sha256.Sum256(p.emram)
			p.emramHashOK = true
		}
		b = append(b, p.emramHash[:]...)
	}

	p.ff.fpBuf = b
	return sha256.Sum256(b)
}

// ---- Recording ----

// ffTrackerSnap captures the tracker's per-state residency and energy
// including the open interval, so shallow cycles — which never
// transition — still record exact deltas.
func (p *Platform) ffTrackerSnap(res *[ffNumStates]sim.Duration, en *[ffNumStates]power.Energy) {
	t := p.tracker
	now := p.sched.Now()
	for _, st := range power.States() {
		res[int(st)] = t.residency[st]
		en[int(st)] = t.energy[st]
	}
	res[int(t.cur)] += now.Sub(t.since)
	var lastSum power.Energy
	for _, e := range t.last {
		lastSum = lastSum.Add(e)
	}
	en[int(t.cur)] = en[int(t.cur)].Add(p.meter.TotalBattery().Sub(lastSum))
}

func (p *Platform) ffWakeSnap(plat, hub *[3]uint64) {
	hubCounts := p.hub.WakeCounts()
	for i := 0; i < 3; i++ {
		plat[i] = p.wakeCount[chipset.WakeSource(i)]
		hub[i] = hubCounts[chipset.WakeSource(i)]
	}
}

// ffBeginRecording starts memoizing the cycle about to run. In verify
// mode an existing record becomes the expectation to compare against.
func (p *Platform) ffBeginRecording(key ffKey) {
	ff := &p.ff
	if ff.records == nil {
		ff.records = make(map[ffKey]*cycleRecord)
	}
	existing := ff.records[key]
	if existing != nil && ff.mode != FFVerify && !ff.verifyKeys[key] {
		return // recorded but not replayable; nothing to gain
	}
	capN := ff.recordCap
	if capN == 0 {
		capN = ffRecordCap
		if ff.persist != nil {
			// With a persistent store attached every class is worth
			// keeping: a jittered run's classes never recur in-process
			// but do recur across runs of the same seed.
			capN = ffPersistRecordCap
		}
	}
	if existing == nil && len(ff.records) >= capN {
		return
	}
	comps := p.meter.Ordered()
	rec := &cycleRecording{
		key:      key,
		start:    p.sched.Now(),
		expect:   existing,
		nom0:     make([]power.Energy, len(comps)),
		batt0:    make([]power.Energy, len(comps)),
		idle0:    make([]power.Energy, len(comps)),
		shallow0: make(map[string]uint64, len(p.shallowCounts)),
	}
	for i, c := range comps {
		rec.nom0[i], rec.batt0[i] = p.meter.EnergyOf(c)
	}
	copy(rec.idle0, p.tracker.idleByCmp)
	p.ffTrackerSnap(&rec.res0, &rec.en0)
	rec.trans0 = p.tracker.transitions
	rec.fs0 = p.flowStats
	p.ffWakeSnap(&rec.wake0, &rec.hubWake0)
	for k, v := range p.shallowCounts {
		rec.shallow0[k] = v
	}
	rec.mt0.base, rec.mt0.anchor, rec.mt0.running = p.mainTimer.ReplaySnapshot()
	if u := p.hub.Unit(); u != nil {
		rec.uf0.base, rec.uf0.anchor, rec.uf0.running = u.Fast.ReplaySnapshot()
	}
	rec.x24Stable0 = p.xtal24.StableAt()
	rec.x32Stable0 = p.xtal32.StableAt()
	rec.ltrReports0 = p.ltrTable.Reports()
	if p.eng != nil {
		rec.eng0 = true
		rec.root0 = p.eng.RootCounter()
	}
	ff.rec = rec
}

// ffRecordFlowStep mirrors a flow-trace step into the in-flight
// recording; recordStep calls it on every step.
func (p *Platform) ffRecordFlowStep(fs FlowStep) {
	if rec := p.ff.rec; rec != nil {
		rec.steps = append(rec.steps, fs)
	}
}

// ffFinalizeRecording closes the in-flight recording at a boundary. ok
// says the boundary is memo-eligible and fp is its fingerprint; an
// ineligible end (fault fired mid-cycle, queue not empty, error) discards
// the recording.
func (p *Platform) ffFinalizeRecording(ok bool, fp [32]byte) {
	ff := &p.ff
	rec := ff.rec
	if rec == nil {
		return
	}
	ff.rec = nil
	if !ok {
		return
	}
	now := p.sched.Now()
	comps := p.meter.Ordered()
	if len(comps) != len(rec.nom0) {
		return // component set changed mid-run; refuse
	}
	cr := &cycleRecord{
		dur:        now.Sub(rec.start),
		endFP:      fp,
		replayable: true,
		nomD:       make([]power.Energy, len(comps)),
		battD:      make([]power.Energy, len(comps)),
		idleByCmpD: make([]power.Energy, len(comps)),
	}
	for i, c := range comps {
		nom, batt := p.meter.EnergyOf(c)
		cr.nomD[i] = nom.Sub(rec.nom0[i])
		cr.battD[i] = batt.Sub(rec.batt0[i])
		cr.idleByCmpD[i] = p.tracker.idleByCmp[i].Sub(rec.idle0[i])
	}
	var res1 [ffNumStates]sim.Duration
	var en1 [ffNumStates]power.Energy
	p.ffTrackerSnap(&res1, &en1)
	for i := 0; i < ffNumStates; i++ {
		cr.resD[i] = res1[i] - rec.res0[i]
		cr.enD[i] = en1[i].Sub(rec.en0[i])
	}
	cr.transD = p.tracker.transitions - rec.trans0

	fs := p.flowStats
	cr.entriesD = fs.entries - rec.fs0.entries
	cr.exitsD = fs.exits - rec.fs0.exits
	cr.entryTotalD = fs.entryTotal - rec.fs0.entryTotal
	cr.exitTotalD = fs.exitTotal - rec.fs0.exitTotal
	cr.ctxSaveLat = fs.ctxSaveLat
	cr.ctxRestore = fs.ctxRestore
	cr.ctxVerifiedD = fs.ctxVerified - rec.fs0.ctxVerified

	var wake1, hubWake1 [3]uint64
	p.ffWakeSnap(&wake1, &hubWake1)
	for i := 0; i < 3; i++ {
		cr.wakeD[i] = wake1[i] - rec.wake0[i]
		cr.hubWakeD[i] = hubWake1[i] - rec.hubWake0[i]
	}
	cr.shallowD = make(map[string]uint64)
	for k, v := range p.shallowCounts {
		if d := v - rec.shallow0[k]; d > 0 {
			cr.shallowD[k] = d
		}
	}
	cr.endWakeFired = p.hub.WakeFired()

	base, anchor, running := p.mainTimer.ReplaySnapshot()
	if base != rec.mt0.base || anchor != rec.mt0.anchor || running != rec.mt0.running {
		cr.mainTimerP = ctrPatch{
			changed:   true,
			baseD:     base - rec.mt0.base,
			anchorOff: anchor.Sub(rec.start),
			running:   running,
		}
	}
	if u := p.hub.Unit(); u != nil {
		base, anchor, running = u.Fast.ReplaySnapshot()
		if base != rec.uf0.base || anchor != rec.uf0.anchor || running != rec.uf0.running {
			cr.unitFastP = ctrPatch{
				changed:   true,
				baseD:     base - rec.uf0.base,
				anchorOff: anchor.Sub(rec.start),
				running:   running,
			}
		}
	}
	if s := p.xtal24.StableAt(); s != rec.x24Stable0 {
		cr.x24P = oscPatch{changed: true, stableOff: s.Sub(rec.start)}
	}
	if p.xtal32.StableAt() != rec.x32Stable0 {
		// The slow crystal is never power-cycled by the flows; a moved
		// anchor means a retune (drift recalibration) happened, which is
		// not a steady state.
		cr.replayable = false
	}
	if !reflect.DeepEqual(p.ltrTable.Reports(), rec.ltrReports0) {
		cr.replayable = false // a device adjusted its tolerance mid-cycle
	}
	for _, t := range p.ltrTable.Timers() {
		cr.ltrTimers = append(cr.ltrTimers, ltrPatch{owner: t.Owner, rel: t.Deadline.Sub(now)})
	}

	engPresent := p.eng != nil
	if engPresent != rec.eng0 {
		cr.replayable = false // engine appeared/vanished (degradation edge)
	} else if engPresent {
		cr.engPresent = true
		cr.rootD = p.eng.RootCounter() - rec.root0
		cr.endPrimed = ff.meePrimed
	}

	cr.steps = make([]FlowStep, len(rec.steps))
	for i, s := range rec.steps {
		s.At = sim.Time(s.At.Sub(rec.start)) // store as offset from cycle start
		cr.steps[i] = s
	}

	if rec.expect != nil {
		if !reflect.DeepEqual(cr, rec.expect) {
			src := "memo"
			if ff.verifyKeys[rec.key] {
				src = "persistent memo"
			}
			p.fail("platform: fastforward verify: cycle record diverged from %s (key %x…, dur %v vs %v)",
				src, rec.key.fp[:4], cr.dur, rec.expect.dur)
		}
		return
	}
	ff.records[rec.key] = cr
	ff.stats.CyclesRecorded++
	ff.ffPersistAdd(rec.key, cr)
}

// ---- Replay ----

// ffTryReplay replays as many upcoming cycles as the memo covers,
// starting at cycles[idx] whose boundary fingerprint is fp. It returns
// the number of cycles consumed (0 = no hit; simulate normally).
func (p *Platform) ffTryReplay(fp [32]byte, cycles []workload.Cycle, idx int) int {
	ff := &p.ff
	if ff.mode != FFOn {
		return 0
	}
	c := cycles[idx]
	key := ffKey{fp: fp, active: c.Active, idle: c.Idle, wake: c.Wake}
	if ff.verifyKeys[key] {
		// -memocache=verify: a disk-loaded class is never replayed; the
		// cycle simulates in full and ffFinalizeRecording diffs it
		// against the loaded record.
		return 0
	}
	rec := ff.records[key]
	if rec == nil || !rec.replayable {
		return 0
	}
	n := 1
	if rec.endFP == fp {
		// Self-loop: the cycle reproduces its own starting fingerprint, so
		// every consecutive identical cycle replays in the same batch.
		for idx+n < len(cycles) && cycles[idx+n] == c {
			n++
		}
	}
	p.ffReplay(rec, int64(n))
	return n
}

// ffReplay applies a recorded cycle n times as one batch of exact deltas.
func (p *Platform) ffReplay(rec *cycleRecord, n int64) {
	ff := &p.ff
	t0 := p.sched.Now()
	t1 := t0.Add(rec.dur * sim.Duration(n))
	lastStart := t1.Add(-rec.dur)

	// Close the tracker's open interval with real numbers at t0, then
	// advance the clock and apply the recorded movement n times.
	p.meter.SettleAll()
	p.tracker.to(p.tracker.cur)
	p.sched.AdvanceTo(t1)

	comps := p.meter.Ordered()
	if cap(ff.nomScratch) < len(comps) {
		ff.nomScratch = make([]power.Energy, len(comps))
		ff.battScratch = make([]power.Energy, len(comps))
	}
	nom := ff.nomScratch[:len(comps)]
	batt := ff.battScratch[:len(comps)]
	for i := range comps {
		nom[i] = rec.nomD[i].MulN(n)
		batt[i] = rec.battD[i].MulN(n)
	}
	p.meter.ReplayAdvance(nom, batt)

	tr := p.tracker
	for _, st := range power.States() {
		tr.residency[st] += rec.resD[int(st)] * sim.Duration(n)
		tr.energy[st] = tr.energy[st].Add(rec.enD[int(st)].MulN(n))
	}
	for i := range tr.idleByCmp {
		tr.idleByCmp[i] = tr.idleByCmp[i].Add(rec.idleByCmpD[i].MulN(n))
	}
	tr.transitions += rec.transD * uint64(n)
	tr.since = t1
	tr.capture(tr.last)

	fs := &p.flowStats
	fs.entries += rec.entriesD * uint64(n)
	fs.exits += rec.exitsD * uint64(n)
	fs.entryTotal += rec.entryTotalD * sim.Duration(n)
	fs.exitTotal += rec.exitTotalD * sim.Duration(n)
	if rec.entriesD > 0 {
		per := rec.entryTotalD / sim.Duration(rec.entriesD)
		if per > fs.entryMax {
			fs.entryMax = per
		}
		fs.ctxSaveLat = rec.ctxSaveLat
	}
	if rec.exitsD > 0 {
		per := rec.exitTotalD / sim.Duration(rec.exitsD)
		if per > fs.exitMax {
			fs.exitMax = per
		}
		fs.ctxRestore = rec.ctxRestore
	}
	fs.ctxVerified += rec.ctxVerifiedD * uint64(n)

	for i := 0; i < 3; i++ {
		src := chipset.WakeSource(i)
		if rec.wakeD[i] > 0 {
			p.wakeCount[src] += rec.wakeD[i] * uint64(n)
		}
		if rec.hubWakeD[i] > 0 {
			p.hub.ReplayAddWakes(src, rec.hubWakeD[i]*uint64(n))
		}
	}
	for name, d := range rec.shallowD {
		p.shallowCounts[name] += d * uint64(n)
	}
	p.hub.ReplayRestoreWakeLatch(rec.endWakeFired)

	if rec.mainTimerP.changed {
		base, _, _ := p.mainTimer.ReplaySnapshot()
		p.mainTimer.ReplayRestore(
			base+rec.mainTimerP.baseD*uint64(n),
			lastStart.Add(rec.mainTimerP.anchorOff),
			rec.mainTimerP.running,
		)
	}
	if rec.unitFastP.changed {
		uf := p.hub.Unit().Fast
		base, _, _ := uf.ReplaySnapshot()
		uf.ReplayRestore(
			base+rec.unitFastP.baseD*uint64(n),
			lastStart.Add(rec.unitFastP.anchorOff),
			rec.unitFastP.running,
		)
	}
	if rec.x24P.changed {
		p.xtal24.ReplayRebase(lastStart.Add(rec.x24P.stableOff))
	}

	for _, t := range p.ltrTable.Timers() {
		p.ltrTable.ClearTimer(t.Owner)
	}
	for _, t := range rec.ltrTimers {
		p.ltrTable.ReplaySetTimer(t.owner, t1.Add(t.rel))
	}

	if rec.engPresent && rec.rootD > 0 {
		p.eng.ReplayAdvanceRoot(rec.rootD * uint64(n))
		ff.meePrimed = rec.endPrimed
		ff.meeVirtual = true
	}

	// Flow trace: synthesize only the tail that can survive the ring.
	if steps := len(rec.steps); steps > 0 {
		keep := int64((flowTraceCap + steps - 1) / steps)
		if keep > n {
			keep = n
		}
		for j := n - keep; j < n; j++ {
			cycleStart := t0.Add(rec.dur * sim.Duration(j))
			for _, s := range rec.steps {
				s.At = cycleStart.Add(sim.Duration(s.At))
				p.recordStep(s)
			}
		}
	}

	ff.stats.CyclesReplayed += uint64(n)
}
