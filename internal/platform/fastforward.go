package platform

import (
	"fmt"
	"sync/atomic"

	"odrips/internal/mee"
	"odrips/internal/memostore"
	"odrips/internal/pmu"
	"odrips/internal/power"
	"odrips/internal/sim"
)

// This file is the steady-state fast-forward engine (DESIGN.md §12).
// Connected-standby runs are long sequences of near-identical cycles; the
// engine memoizes the two kinds of redundancy they carry:
//
//   - MEE op replay: the per-cycle context save/restore through the MEE is
//     a strictly periodic op sequence whose observable effects (traffic
//     counters, latency, root-counter advance) repeat exactly. After one
//     period is recorded, later saves/restores advance the counters
//     arithmetically and skip the crypto and DRAM traffic
//     (mee.OpRecord/ReplayOp), with ReplayMaterialize/ReplayWarm
//     rebuilding the canonical bytes before any real engine op.
//
//   - Cycle replay: when the full behavioral fingerprint of the platform
//     at a cycle boundary recurs together with the same workload.Cycle
//     parameters, the whole cycle is replayed as exact fixed-point deltas
//     (energy, residency, latencies, counters, flow-trace steps) over a
//     bulk scheduler time advance.
//
// Both layers are gated per cycle: a cycle may only record or replay when
// the fault plane has nothing left to inject and the event queue is empty
// at the boundary (so no external event can observe or mutate skipped
// state mid-cycle). Every replayed quantity is integer/fixed-point exact,
// so results are byte-identical to full simulation.

// FFMode selects the fast-forward engine's behavior.
type FFMode int32

const (
	// FFOn memoizes and replays steady-state work (the default).
	FFOn FFMode = iota
	// FFOff always simulates in full.
	FFOff
	// FFVerify simulates in full and diffs every memoized quantity
	// against the record, failing the run on any divergence.
	FFVerify
)

// String renders the flag form.
func (m FFMode) String() string {
	switch m {
	case FFOff:
		return "off"
	case FFVerify:
		return "verify"
	default:
		return "on"
	}
}

// ParseFFMode parses the -fastforward flag values on|off|verify.
func ParseFFMode(s string) (FFMode, error) {
	switch s {
	case "on":
		return FFOn, nil
	case "off":
		return FFOff, nil
	case "verify":
		return FFVerify, nil
	}
	return FFOn, fmt.Errorf("platform: fast-forward mode %q (want on, off, or verify)", s)
}

// defaultFFMode is deliberately not part of Config: the whole point of the
// engine is that results are byte-identical across modes, so the mode must
// not leak into Result.Config. That same argument is why a process-wide
// default is sound to keep at all — the knob selects how results are
// computed, never what they are.
//
//odrips:allow globalstate the -fastforward flag's process default: set once by CLI wiring, and provably output-invariant (mode never changes results, only how they are computed)
var defaultFFMode atomic.Int32

// SetDefaultFastForward sets the mode platforms are created with.
func SetDefaultFastForward(m FFMode) { defaultFFMode.Store(int32(m)) }

// DefaultFastForward returns the mode platforms are created with.
func DefaultFastForward() FFMode { return FFMode(defaultFFMode.Load()) }

// SetFastForward overrides this platform's mode. Illegal mid-flow.
func (p *Platform) SetFastForward(m FFMode) error {
	if p.inFlow {
		return fmt.Errorf("platform: SetFastForward during a flow")
	}
	p.ff.mode = m
	return nil
}

// FFStats reports what the fast-forward engine did during a run.
type FFStats struct {
	// MEEOpsReplayed counts context saves/restores replayed from the op
	// memo; Materializations counts canonical-state rebuilds before a
	// real engine op.
	MEEOpsReplayed   uint64
	Materializations uint64

	// CyclesRecorded counts boundary fingerprints memoized;
	// CyclesReplayed counts whole cycles fast-forwarded.
	CyclesRecorded uint64
	CyclesReplayed uint64
}

// FFStats returns the engine's counters so far.
func (p *Platform) FFStats() FFStats { return p.ff.stats }

// ffState is the per-platform fast-forward state.
type ffState struct {
	mode FFMode

	// cycleOK is latched at each cycle boundary: the upcoming cycle may
	// record into or replay from the memo.
	cycleOK bool

	// MEE op memo. meePrimed marks the live engine as being in the
	// canonical post-import+restore state (the state every recorded save
	// starts from); meeVirtual marks DRAM bytes and the metadata cache
	// as stale because ops were replayed over them.
	meePrimed   bool
	meeVirtual  bool
	haveSave    bool
	haveRestore bool
	saveLat     sim.Duration
	restoreLat  sim.Duration
	saveOp      mee.OpRecord
	restoreOp   mee.OpRecord

	// Cycle memo (fingerprint keyed), populated lazily, plus reusable
	// scratch for the fingerprint serialization and scaled replay deltas.
	records     map[ffKey]*cycleRecord
	rec         *cycleRecording // in-progress recording, nil outside one
	fpBuf       []byte
	nomScratch  []power.Energy
	battScratch []power.Energy

	// Persistent memo plumbing (ffpersist.go): the process default store
	// this platform attached to, the shared bundle for its config, and —
	// under -memocache=verify — the disk-loaded keys that must be
	// re-simulated and diffed instead of replayed.
	store      *memostore.Store
	persist    *ffBundle
	verifyKeys map[ffKey]bool

	// recordCap, when nonzero, overrides the per-platform cycle-class
	// cap (ffRecordCap / ffPersistRecordCap). The memo plane sets it on
	// attach: a platform seeded with hundreds of adopted records must
	// still be allowed to record the classes the plane does not cover.
	recordCap int

	stats FFStats
}

// ffFaultsClean reports that no injection remains unfired and no forced
// verification failure is pending: the fault plane can no longer influence
// this run's remaining cycles. Conservative on purpose — an unfired
// injection for a later cycle also disables the memo now, because a replay
// would leave DRAM/cache state stale for that later cycle's real work
// until realized, and recording next to an armed plane is not worth the
// asymmetry. Once every injection has fired, recording resumes.
func (p *Platform) ffFaultsClean() bool {
	fp := p.fplane
	if fp == nil {
		return true
	}
	if fp.meeForce {
		return false
	}
	for _, fired := range fp.fired {
		if !fired {
			return false
		}
	}
	return true
}

// ffLatchCycle latches, at a cycle boundary, whether the upcoming cycle
// may use the memo. The queue must be empty: a pending event (a device
// model's ticker, an externally scheduled mutation) could observe or
// modify state mid-cycle, so such cycles always run in full.
func (p *Platform) ffLatchCycle() {
	p.ff.cycleOK = p.ff.mode != FFOff && p.sched.Pending() == 0 && p.ffFaultsClean()
}

// ffRealize rebuilds canonical MEE state before a real engine operation:
// materialize the DRAM bytes the replayed saves would have produced and,
// when the engine should be in the post-restore state, re-warm the
// metadata cache by re-executing the skipped sequential read.
func (p *Platform) ffRealize() error {
	ff := &p.ff
	if !ff.meeVirtual || p.eng == nil {
		return nil
	}
	if err := p.eng.ReplayMaterialize(p.ctxImage); err != nil {
		return err
	}
	if ff.meePrimed {
		if err := p.eng.ReplayWarm(p.restoreBuf, len(p.ctxImage)); err != nil {
			return err
		}
	}
	ff.meeVirtual = false
	ff.stats.Materializations++
	return nil
}

// ffSaveCtxDRAM runs — or replays — the MEE context save, returning its
// latency. Only canonical saves (from the primed post-restore state, in a
// memo-eligible cycle) are recorded or compared.
func (p *Platform) ffSaveCtxDRAM() (sim.Duration, error) {
	ff := &p.ff
	if ff.mode == FFOn && ff.cycleOK && ff.meePrimed && ff.haveSave {
		p.eng.ReplayOp(ff.saveOp)
		ff.meePrimed = false
		ff.meeVirtual = true
		ff.stats.MEEOpsReplayed++
		return ff.saveLat, nil
	}
	if err := p.ffRealize(); err != nil {
		return 0, err
	}
	canonical := ff.cycleOK && ff.meePrimed && ff.mode != FFOff
	ff.meePrimed = false
	var snap mee.OpCapture
	if canonical {
		snap = p.eng.CaptureOp()
	}
	tgt := &pmu.DRAMTarget{Engine: p.eng}
	lat, err := tgt.Save(p.ctxImage)
	if err != nil {
		return 0, err
	}
	if canonical {
		op := p.eng.DeltaSince(snap)
		if !ff.haveSave {
			ff.saveOp, ff.saveLat, ff.haveSave = op, lat, true
		} else if ff.mode == FFVerify && (op != ff.saveOp || lat != ff.saveLat) {
			return 0, fmt.Errorf("fastforward verify: save diverged from memo (lat %v vs %v, op %+v vs %+v)",
				lat, ff.saveLat, op, ff.saveOp)
		}
	}
	return lat, nil
}
