package platform

import (
	"crypto/sha256"
	"fmt"

	"odrips/internal/chipset"
	"odrips/internal/faults"
	"odrips/internal/mee"
	"odrips/internal/pml"
	"odrips/internal/pmu"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/sram"
	"odrips/internal/timer"
)

// This file is the platform-side interpreter of internal/faults plans plus
// the recovery edges they exercise: abortable entry, MEE restore
// retry/degradation, drift-triggered recalibration, and FET re-drive. Every
// injection is delivered through an ordinary scheduler event, so runs with
// a fixed (config, workload, plan) triple are byte-identical regardless of
// host parallelism. With no plan installed — or an empty one — none of
// these paths run and the platform behaves exactly as before.

// FaultStats surfaces what an installed fault plan did to a run.
type FaultStats struct {
	// Planned is the number of injections in the installed plan. Fired
	// counts those delivered to the hardware models; Skipped counts those
	// reached but inapplicable to the configuration (e.g. a bit flip with
	// no protected DRAM region). Planned - Fired - Skipped injections were
	// never reached (their cycle or step did not occur).
	Planned uint64
	Fired   uint64
	Skipped uint64

	// EntryAborts counts entry flows unwound by an injected wake, and
	// AbortWastedUJ the battery energy those abandoned entries plus their
	// rollbacks consumed.
	EntryAborts   uint64
	AbortWastedUJ float64

	// MEERetries counts context-restore verification failures answered by
	// a retry; Degradations counts second failures that demoted the
	// platform to DRIPS-with-retention-SRAM for the rest of the run.
	MEERetries   uint64
	Degradations uint64

	// Recalibrations counts drift excursions caught by the exit flow's
	// Step cross-check; FETRetries counts AON-IO re-power glitches that
	// cost an extra slew window.
	Recalibrations uint64
	FETRetries     uint64
}

// String renders the stats as a one-line summary for CLI output.
func (s FaultStats) String() string {
	return fmt.Sprintf(
		"planned %d fired %d skipped %d | aborts %d (wasted %.1f uJ) retries %d degradations %d recals %d fet-retries %d",
		s.Planned, s.Fired, s.Skipped,
		s.EntryAborts, s.AbortWastedUJ, s.MEERetries, s.Degradations,
		s.Recalibrations, s.FETRetries)
}

// faultPlane holds the installed plan and its interpreter state.
type faultPlane struct {
	plan  faults.Plan
	fired []bool // one-shot latch per injection
	stats FaultStats

	// meeForce fails the next context-restore verification once (the
	// transient MEEFail arm).
	meeForce bool
}

// InjectFaults installs a fault plan, arming the fault plane for the next
// RunCycles invocation. Cycle indices in the plan are 0-based within that
// run; injections are one-shot, so a cycle retried after an abort replays
// clean. Installing the empty plan arms the plane but injects nothing —
// results are then byte-identical to a platform with no plan at all.
// Replaces any previously installed plan (and its statistics); illegal
// mid-flow.
func (p *Platform) InjectFaults(plan faults.Plan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if p.inFlow {
		return fmt.Errorf("platform: InjectFaults during a flow")
	}
	p.fplane = &faultPlane{
		plan:  plan,
		fired: make([]bool, len(plan.Injections)),
	}
	p.fplane.stats.Planned = uint64(len(plan.Injections))
	return nil
}

// FaultStats returns the installed plan's statistics so far (zero value if
// no plan was installed). Also carried in Result.Faults.
func (p *Platform) FaultStats() FaultStats {
	if p.fplane == nil {
		return FaultStats{}
	}
	return p.fplane.stats
}

// Degraded reports whether repeated context-restore failures demoted the
// platform to DRIPS-with-retention-SRAM.
func (p *Platform) Degraded() bool { return p.degraded }

// effTech returns the techniques actually in force: degradation strips
// CtxSGXDRAM (the context falls back to the retention SRAMs) while the
// timer and AON-IO techniques keep working.
func (p *Platform) effTech() Technique {
	t := p.cfg.Techniques
	if p.degraded {
		t &^= CtxSGXDRAM
	}
	return t
}

// effEMRAM reports whether the eMRAM context store is in force (degradation
// abandons it the same way it abandons the DRAM store).
func (p *Platform) effEMRAM() bool { return p.cfg.CtxInEMRAM && !p.degraded }

// faultMarker records a zero-duration annotation in the flow trace; the
// enclosing flow step's recorded duration carries the real cost.
func (p *Platform) faultMarker(step string) {
	p.recordStep(FlowStep{Flow: "fault", Step: step, At: p.sched.Now()})
}

// injectAtStep fires the wake-kind injections addressed to step i of the
// named flow. The wake is scheduled as an ordinary zero-delay event, so it
// lands after the currently-dispatching event — i.e. while step i runs (or,
// for synchronous steps, at the first wait that follows).
func (p *Platform) injectAtStep(flow string, i int) {
	fp := p.fplane
	if fp == nil {
		return
	}
	var want faults.Kind
	switch flow {
	case "entry":
		want = faults.WakeDuringEntry
	case "exit":
		want = faults.WakeDuringExit
	default:
		return
	}
	for idx, inj := range fp.plan.Injections {
		if fp.fired[idx] || inj.Kind != want || inj.Cycle != p.cycleIdx || inj.Step != i {
			continue
		}
		fp.fired[idx] = true
		kind := inj.Kind
		p.sched.After(0, "fault.wake", func() {
			fp.stats.Fired++
			p.faultMarker(kind.String())
			if kind == faults.WakeDuringEntry {
				// Arm the abortable-entry path: onWake distinguishes this
				// injected wake from a naturally racing one.
				p.wantAbort = true
			}
			p.hub.ExternalWake()
		})
	}
}

// injectAtIdle fires the idle-window injections (MEE failure, DRAM bit
// flip, timer drift) for the current cycle, as zero-delay events scheduled
// at idle-state entry.
func (p *Platform) injectAtIdle() {
	fp := p.fplane
	if fp == nil {
		return
	}
	for idx, inj := range fp.plan.Injections {
		if fp.fired[idx] || inj.Cycle != p.cycleIdx {
			continue
		}
		switch inj.Kind {
		case faults.MEEFail, faults.DRAMBitFlip, faults.TimerDrift:
		default:
			continue
		}
		fp.fired[idx] = true
		inj := inj
		p.sched.After(0, "fault.inject", func() { p.applyIdleFault(inj) })
	}
}

func (p *Platform) applyIdleFault(inj faults.Injection) {
	fp := p.fplane
	switch inj.Kind {
	case faults.TimerDrift:
		// A thermal excursion retunes the slow crystal. Materialize the
		// lazy slow-counter state first so already-elapsed edges keep
		// their pre-drift timing (clock.Oscillator.Retune contract).
		if p.hub.Hosting() {
			_ = p.hub.Unit().Now()
		}
		ppb := p.xtal32.PPB() + inj.Arg
		const bound = 900_000_000
		if ppb > bound {
			ppb = bound
		} else if ppb < -bound {
			ppb = -bound
		}
		p.xtal32.Retune(ppb)
		fp.stats.Fired++
		p.faultMarker(inj.Kind.String())

	case faults.DRAMBitFlip:
		if !p.effTech().Has(CtxSGXDRAM) {
			fp.stats.Skipped++
			return
		}
		// Reduce the planned bit offset into the protected region — data
		// and integrity metadata alike — and flip it in place. The module
		// is in self-refresh; CorruptBit models exactly that retention
		// error.
		bits := p.ctxRegion.Size * 8
		bit := uint64(inj.Arg) % bits
		if err := p.mem.CorruptBit(p.ctxRegion.Base+bit/8, uint(bit%8)); err != nil {
			p.fail("platform: fault bitflip: %v", err)
			return
		}
		fp.stats.Fired++
		p.faultMarker(inj.Kind.String())

	case faults.MEEFail:
		ctxOffChip := p.effTech().Has(CtxSGXDRAM) || p.effEMRAM()
		if !ctxOffChip {
			fp.stats.Skipped++
			return
		}
		if inj.Arg == faults.ArgPersistent {
			// Corrupt the stored image itself: every restore attempt
			// fails verification and the platform degrades.
			if p.effTech().Has(CtxSGXDRAM) {
				if err := p.mem.CorruptBit(p.ctxRegion.Base, 0); err != nil {
					p.fail("platform: fault meefail: %v", err)
					return
				}
			} else {
				p.emram[0] ^= 1
				p.emramHashOK = false // in-place corruption invalidates the cached digest
			}
		} else {
			// Transient: the stored image is fine, the first restore's
			// verification fails anyway (soft ECC / bus glitch).
			fp.meeForce = true
		}
		fp.stats.Fired++
		p.faultMarker(inj.Kind.String())
	}
}

// takeFETGlitch consumes a pending FETGlitch injection for the current
// cycle, if any.
func (p *Platform) takeFETGlitch() bool {
	fp := p.fplane
	if fp == nil {
		return false
	}
	for idx, inj := range fp.plan.Injections {
		if !fp.fired[idx] && inj.Kind == faults.FETGlitch && inj.Cycle == p.cycleIdx {
			fp.fired[idx] = true
			fp.stats.Fired++
			return true
		}
	}
	return false
}

// takeMEEForce consumes the one-shot transient verification failure.
func (p *Platform) takeMEEForce() bool {
	if p.fplane != nil && p.fplane.meeForce {
		p.fplane.meeForce = false
		return true
	}
	return false
}

// ---- Recovery edges ----

// abortEntry unwinds a partially executed entry flow after an injected
// wake: the PMU rolls back from the deepest already-safe state by running
// the inverse of the milestones the entry reached (the same hardware
// sequencing the exit flow uses), services the wake in Active, and the OS
// immediately retries the idle period — the wake consumed none of it.
// Everything the abandoned entry and its rollback spent is accounted in
// FaultStats.AbortWastedUJ.
func (p *Platform) abortEntry(src chipset.WakeSource) {
	fp := p.fplane
	fp.stats.EntryAborts++
	p.wakeCount[src]++
	p.state = power.Exit
	p.tracker.to(power.Exit)
	p.applyPhase(phTrailer)

	bud := p.bud
	m := p.entryM
	var steps []step

	if m.timerMigrated {
		steps = append(steps, p.restoreFastTimerStep())
	}
	if m.gatedIOs {
		steps = append(steps, step{name: "release-fet", run: p.releaseFET})
	}
	if m.timerMigrated {
		steps = append(steps, step{name: "pml-timer-return", run: func(next func()) {
			p.procDom.Ungate()
			p.c2pContinue = next // no drift check on the abort path
			err := p.linkC2P.Send(pml.Message{
				Kind:  pml.TimerValue,
				Value: p.linkC2P.CompensateTimer(p.hub.Unit().Now()),
			})
			if err != nil {
				p.fail("platform: abort timer return: %v", err)
			}
		}})
	}
	steps = append(steps, action("exit-power", func() { p.applyPhase(phExit) }))
	if m.vrOff {
		steps = append(steps, p.wait("vr-on", bud.VROn))
	}
	if m.ctxSaved {
		restore := p.ctxRestoreSteps()
		if !m.selfRefresh {
			// DRAM never entered self-refresh: drop the dram-wake stage,
			// keep the variant's bring-up/restore stages.
			kept := restore[:0]
			for _, s := range restore {
				if s.name != "dram-wake" {
					kept = append(kept, s)
				}
			}
			restore = kept
		}
		steps = append(steps, restore...)
	}
	steps = append(steps, p.wait("abort-firmware", bud.ExitFirmware))

	p.runSteps("abort", steps, func() {
		p.state = power.Active
		p.tracker.to(power.Active)
		p.applyPhase(phActive)
		wasted := p.meter.TotalBattery().Sub(p.entryStartE)
		fp.stats.AbortWastedUJ += wasted.Joules() * 1e6
		p.inFlow = false
		done := p.cycleDone
		p.cycleDone = nil
		// The OS retries the full idle period; injections are one-shot,
		// so the retry replays clean.
		p.enterIdle(p.idleFor, p.plan, done)
	})
}

// releaseFET is the exit/abort FET-release stage, including the glitch
// recovery edge: a planned over/undershoot is detected after the slew
// window, the PMU re-drives the FET, and a second slew is waited out.
func (p *Platform) releaseFET(next func()) {
	bud := p.bud
	if err := p.hub.ReleaseProcessorIOs(); err != nil {
		p.fail("platform: FET release: %v", err)
		return
	}
	p.meter.Set(p.cFET, 0)
	p.meter.Set(p.cVRAonIO, bud.VRAonIOMW)
	if err := p.hub.MonitorThermal(p.xtal24); err != nil {
		p.fail("platform: thermal re-host: %v", err)
		return
	}
	if p.takeFETGlitch() {
		p.sched.After(bud.FETSlew, "fault.fet-glitch", func() {
			p.fplane.stats.FETRetries++
			p.faultMarker("release-fet-retry")
			p.sched.After(bud.FETSlew, "flow.fet-slew", next)
		})
		return
	}
	p.sched.After(bud.FETSlew, "flow.fet-slew", next)
}

// restoreCtxDRAM runs one context-restore attempt through the MEE,
// retrying a failed verification once and degrading to retention SRAM on
// the second failure (§6.2's integrity guarantee turned into a recovery
// edge instead of a latched error).
func (p *Platform) restoreCtxDRAM(attempt int, next func()) {
	bud := p.bud
	ff := &p.ff
	done := func(lat sim.Duration) {
		p.flowStats.ctxRestore = lat
		p.flowStats.ctxVerified++
		p.sched.After(lat, "flow.restore-ctx-dram", func() {
			p.saSRAM.SetState(sram.Active)
			p.computeSRAM.SetState(sram.Active)
			p.meter.Set(p.cVRSram, bud.VRSramMW)
			next()
		})
	}
	if attempt == 1 && ff.mode == FFOn && ff.cycleOK && ff.haveRestore {
		// A steady-state restore is a fresh-import engine sequentially
		// reading the canonical post-save region: its traffic, latency,
		// and verification outcome are the memoized ones. The cache stays
		// cold-stale; ffRealize rebuilds it before the next real op.
		p.eng.ReplayOp(ff.restoreOp)
		ff.meePrimed = true
		ff.meeVirtual = true
		ff.stats.MEEOpsReplayed++
		done(ff.restoreLat)
		return
	}
	if err := p.ffRealize(); err != nil {
		p.fail("platform: context restore: %v", err)
		return
	}
	canonical := attempt == 1 && ff.mode != FFOff && ff.cycleOK
	var snap mee.OpCapture
	if canonical {
		snap = p.eng.CaptureOp()
	}
	tgt := &pmu.DRAMTarget{Engine: p.eng}
	before := p.eng.Stats()
	data, lat, err := tgt.RestoreInto(p.restoreBuf, len(p.ctxImage))
	if err == nil && sha256.Sum256(data) != p.ctxHash {
		err = fmt.Errorf("platform: restored context hash mismatch")
	}
	forced := err == nil && p.takeMEEForce()
	if err == nil && !forced {
		if canonical {
			op := p.eng.DeltaSince(snap)
			if !ff.haveRestore {
				ff.restoreOp, ff.restoreLat, ff.haveRestore = op, lat, true
			} else if ff.mode == FFVerify && (op != ff.restoreOp || lat != ff.restoreLat) {
				p.fail("platform: fastforward verify: restore diverged from memo (lat %v vs %v, op %+v vs %+v)",
					lat, ff.restoreLat, op, ff.restoreOp)
				return
			}
			// The engine now sits in the canonical post-restore state
			// every memoized save starts from.
			ff.meePrimed = true
		}
		done(lat)
		return
	}
	// Forced failures and retries leave a non-canonical cache.
	ff.meePrimed = false
	if p.fplane == nil {
		// No fault plane: a genuine integrity failure stays a hard error.
		p.fail("platform: context restore: %v", err)
		return
	}
	// The DMA that produced the failure still moved blocks; charge its bus
	// time before deciding what happens next. RestoreInto reports zero
	// latency on error, so recover it from the engine's traffic delta.
	failLat := lat
	if failLat == 0 {
		after := p.eng.Stats()
		blocks := after.TotalBlocks() - before.TotalBlocks()
		failLat = p.eng.Mem().TransferTime(int(blocks)*mee.BlockSize, false)
	}
	if attempt == 1 {
		p.fplane.stats.MEERetries++
		p.sched.After(failLat, "fault.restore-retry", func() {
			p.faultMarker("restore-ctx-retry")
			p.restoreCtxDRAM(2, next)
		})
		return
	}
	p.sched.After(failLat, "fault.degrade", func() { p.degradeToSRAM(next) })
}

// restoreCtxEMRAM is the eMRAM-variant counterpart of restoreCtxDRAM.
func (p *Platform) restoreCtxEMRAM(attempt int, next func()) {
	bud := p.bud
	lat := sim.FromSeconds(float64(len(p.emram)) / bud.EMRAMPortBW)
	ok := sha256.Sum256(p.emram) == p.ctxHash
	if ok && p.takeMEEForce() {
		ok = false
	}
	if ok {
		p.flowStats.ctxRestore = lat
		p.flowStats.ctxVerified++
		p.sched.After(lat, "flow.restore-ctx-emram", func() {
			p.saSRAM.SetState(sram.Active)
			p.computeSRAM.SetState(sram.Active)
			p.bootSRAM.SetState(sram.Active)
			p.meter.Set(p.cVRSram, bud.VRSramMW)
			next()
		})
		return
	}
	if p.fplane == nil {
		p.fail("platform: eMRAM context hash mismatch")
		return
	}
	if attempt == 1 {
		p.fplane.stats.MEERetries++
		p.sched.After(lat, "fault.restore-retry", func() {
			p.faultMarker("restore-ctx-retry")
			p.restoreCtxEMRAM(2, next)
		})
		return
	}
	p.sched.After(lat, "fault.degrade", func() { p.degradeToSRAM(next) })
}

// degradeToSRAM demotes the platform to DRIPS-with-retention-SRAM after
// repeated restore verification failures: the off-chip image is abandoned,
// the retention SRAMs come back up, and the OS re-initializes the context
// (a full re-init rather than a resume, charged as Budget.CtxRebuild). All
// subsequent cycles run with effTech() — WakeUpOff and AONIOGate keep
// working, so idle power rises toward the DRIPS-with-retention-SRAM floor
// instead of collapsing to the baseline.
func (p *Platform) degradeToSRAM(next func()) {
	p.fplane.stats.Degradations++
	p.faultMarker("degrade-retention-sram")
	p.degraded = true
	p.eng = nil
	p.saSRAM.SetState(sram.Active)
	p.computeSRAM.SetState(sram.Active)
	p.bootSRAM.SetState(sram.Active)
	p.meter.Set(p.cVRSram, p.bud.VRSramMW)
	p.sched.After(p.bud.CtxRebuild, "fault.ctx-rebuild", next)
}

// driftCheck is the exit flow's timer cross-check: after the fast timer is
// back, PMU firmware re-measures the Step (a zero-latency edge-arithmetic
// probe, free and invisible when nothing drifted) and compares it against
// the calibration in force. An excursion beyond Budget.DriftRecalPPB
// triggers a recalibration — the §4.1.3 once-per-reset calibration re-armed
// as a recovery edge — costing Budget.RecalWindow at exit power.
func (p *Platform) driftCheck(next func()) {
	cal := p.hub.Calibration()
	if cal == nil || cal.Step.Raw == 0 {
		next()
		return
	}
	probe, err := timer.CalibrateNow(p.sched, p.xtal24, p.xtal32)
	if err != nil {
		next()
		return
	}
	diff := int64(probe.Step.Raw) - int64(cal.Step.Raw)
	if diff < 0 {
		diff = -diff
	}
	// Step LSBs are 2^-f of a fast count per slow cycle, so the relative
	// drift in ppb is diff/raw * 1e9, computed from the two raw integers
	// (no fixed-point rendering involved).
	ppb := float64(diff) * 1e9 / float64(cal.Step.Raw)
	if p.bud.DriftRecalPPB <= 0 || ppb < float64(p.bud.DriftRecalPPB) {
		next()
		return
	}
	if p.fplane != nil {
		p.fplane.stats.Recalibrations++
	}
	started := p.sched.Now()
	startE := p.meter.TotalBattery()
	if err := p.hub.Calibrate(); err != nil {
		p.fail("platform: recalibration: %v", err)
		return
	}
	p.sched.After(p.bud.RecalWindow, "fault.recalibrate", func() {
		p.recordStep(FlowStep{
			Flow:     "exit",
			Step:     "recalibrate",
			At:       started,
			Duration: p.sched.Now().Sub(started),
			EnergyUJ: p.meter.TotalBattery().Sub(startE).Joules() * 1e6,
		})
		next()
	})
}
