package platform

import (
	"odrips/internal/power"
	"odrips/internal/sim"
)

// tracker accumulates per-state residency and battery energy by diffing
// meter snapshots at every state transition. It also merges the
// per-component energy spent in the Idle state for the Fig. 1(b) breakdown.
type tracker struct {
	sched *sim.Scheduler
	meter *power.Meter

	cur      power.State
	since    sim.Time
	lastSnap power.Snapshot

	residency map[power.State]sim.Duration
	energyJ   map[power.State]float64
	idleByCmp map[string]float64

	transitions uint64
}

func newTracker(s *sim.Scheduler, m *power.Meter) *tracker {
	return &tracker{
		sched:     s,
		meter:     m,
		cur:       power.Active,
		since:     s.Now(),
		lastSnap:  m.Snapshot(),
		residency: make(map[power.State]sim.Duration),
		energyJ:   make(map[power.State]float64),
		idleByCmp: make(map[string]float64),
	}
}

// to closes the current state's interval and opens the next.
func (t *tracker) to(next power.State) {
	now := t.sched.Now()
	snap := t.meter.Snapshot()
	iv := snap.Since(t.lastSnap)
	t.residency[t.cur] += now.Sub(t.since)
	t.energyJ[t.cur] += iv.TotalJ()
	if t.cur == power.Idle {
		for name, j := range iv.ByName {
			t.idleByCmp[name] += j
		}
	}
	t.cur = next
	t.since = now
	t.lastSnap = snap
	t.transitions++
}

// finish closes the open interval without changing state.
func (t *tracker) finish() { t.to(t.cur) }

// total returns the tracked wall time.
func (t *tracker) total() sim.Duration {
	var d sim.Duration
	for _, v := range t.residency {
		d += v
	}
	return d
}
