package platform

import (
	"odrips/internal/power"
	"odrips/internal/sim"
)

// tracker accumulates per-state residency and battery energy by diffing
// exact meter energies at every state transition. It also merges the
// per-component energy spent in the Idle state for the Fig. 1(b) breakdown.
//
// All accumulation is integer fixed-point (power.Energy), keyed by the
// meter's registration order rather than by name, so the fast-forward
// engine can apply a recorded cycle's contribution as exact arithmetic
// deltas (DESIGN.md §12) and reach bit-identical state.
type tracker struct {
	sched *sim.Scheduler
	meter *power.Meter

	cur   power.State
	since sim.Time
	last  []power.Energy // battery energy per component at last transition

	residency map[power.State]sim.Duration
	energy    map[power.State]power.Energy
	idleByCmp []power.Energy // battery energy per component while Idle

	transitions uint64
}

func newTracker(s *sim.Scheduler, m *power.Meter) *tracker {
	n := len(m.Ordered())
	t := &tracker{
		sched:     s,
		meter:     m,
		cur:       power.Active,
		since:     s.Now(),
		last:      make([]power.Energy, n),
		residency: make(map[power.State]sim.Duration),
		energy:    make(map[power.State]power.Energy),
		idleByCmp: make([]power.Energy, n),
	}
	t.capture(t.last)
	return t
}

// capture fills dst with each component's settled battery energy, in
// registration order.
func (t *tracker) capture(dst []power.Energy) {
	for i, c := range t.meter.Ordered() {
		_, batt := t.meter.EnergyOf(c)
		dst[i] = batt
	}
}

// to closes the current state's interval and opens the next.
func (t *tracker) to(next power.State) {
	now := t.sched.Now()
	t.residency[t.cur] += now.Sub(t.since)
	var spent power.Energy
	for i, c := range t.meter.Ordered() {
		_, batt := t.meter.EnergyOf(c)
		d := batt.Sub(t.last[i])
		spent = spent.Add(d)
		if t.cur == power.Idle {
			t.idleByCmp[i] = t.idleByCmp[i].Add(d)
		}
		t.last[i] = batt
	}
	t.energy[t.cur] = t.energy[t.cur].Add(spent)
	t.cur = next
	t.since = now
	t.transitions++
}

// finish closes the open interval without changing state.
func (t *tracker) finish() { t.to(t.cur) }

// total returns the tracked wall time.
func (t *tracker) total() sim.Duration {
	var d sim.Duration
	for _, v := range t.residency {
		d += v
	}
	return d
}
