package platform

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"odrips/internal/chipset"
	"odrips/internal/ctxstore"
	"odrips/internal/dram"
	"odrips/internal/mee"
	"odrips/internal/pml"
	"odrips/internal/pmu"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/sram"
)

// wakePlan says what ends an idle period.
type wakePlan struct {
	kind  chipset.WakeSource
	after sim.Duration // measured from Idle-state entry
}

// step is one stage of a firmware flow; run must invoke next exactly once,
// now or later.
type step struct {
	name string
	run  func(next func())
}

func (p *Platform) runSteps(flow string, steps []step, done func()) {
	var exec func(i int)
	exec = func(i int) {
		if p.err != nil {
			return // a failed flow stops dead; RunCycles reports the error
		}
		if p.abortWake != nil && flow == "entry" {
			// An injected wake arrived while the previous step ran: the
			// flow unwinds at this step boundary instead of going deeper.
			src := *p.abortWake
			p.abortWake = nil
			p.abortEntry(src)
			return
		}
		if i >= len(steps) {
			done()
			return
		}
		p.injectAtStep(flow, i)
		started := p.sched.Now()
		startE := p.meter.TotalBattery()
		steps[i].run(func() {
			p.recordStep(FlowStep{
				Flow:     flow,
				Step:     steps[i].name,
				At:       started,
				Duration: p.sched.Now().Sub(started),
				EnergyUJ: p.meter.TotalBattery().Sub(startE).Joules() * 1e6,
			})
			exec(i + 1)
		})
	}
	exec(0)
}

// FlowStep is one recorded stage of an entry or exit flow, an abort
// rollback, or a zero-duration fault-injection marker.
type FlowStep struct {
	Flow     string // "entry", "exit", "abort", or "fault"
	Step     string
	At       sim.Time
	Duration sim.Duration
	// EnergyUJ is the battery energy spent while the step ran.
	EnergyUJ float64
}

// flowTraceCap bounds the trace ring so multi-hour runs stay flat.
const flowTraceCap = 128

func (p *Platform) recordStep(fs FlowStep) {
	p.ffRecordFlowStep(fs)
	p.flowTrace = append(p.flowTrace, fs)
	if len(p.flowTrace) > flowTraceCap {
		p.flowTrace = p.flowTrace[len(p.flowTrace)-flowTraceCap:]
	}
}

// FlowTrace returns the most recent flow steps (entry and exit stages with
// their timestamps and durations), newest last. Useful for inspecting what
// a configuration actually executes: ODRIPS entries show the timer
// migration, FET gating, and crystal shutdown that baseline DRIPS lacks.
func (p *Platform) FlowTrace() []FlowStep {
	return append([]FlowStep(nil), p.flowTrace...)
}

// wait returns a fixed-latency step.
func (p *Platform) wait(name string, d sim.Duration) step {
	return step{name: name, run: func(next func()) {
		p.sched.After(d, "flow."+name, next)
	}}
}

// action returns a synchronous step.
func action(name string, fn func()) step {
	return step{name: name, run: func(next func()) {
		fn()
		next()
	}}
}

func (p *Platform) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
	// Drain the queue: a latched error must stop the run dead rather than
	// leave orphaned events dispatching into half-torn-down hardware
	// models. Held handles (armed wakes, tickers) go stale, as if each had
	// been cancelled individually.
	p.sched.Clear()
}

// mark wraps a step so the given milestone flips when the step completes.
func mark(s step, m *bool) step {
	run := s.run
	return step{name: s.name, run: func(next func()) {
		run(func() {
			*m = true
			next()
		})
	}}
}

// mcConfig serializes the minimal memory-controller bring-up state kept in
// the Boot SRAM.
func (p *Platform) mcConfig() []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], p.mem.Config().CapacityBytes)
	binary.LittleEndian.PutUint32(b[8:12], uint32(p.mem.Config().TransferMTps))
	binary.LittleEndian.PutUint32(b[12:16], uint32(p.mem.Config().Tech))
	return b[:]
}

func (p *Platform) pmuVector() []byte {
	v := sha256.Sum256([]byte(fmt.Sprintf("pmu-vector-%d", p.cfg.Seed)))
	return v[:]
}

// ---- Entry flow (§2.2 baseline; §4–6 ODRIPS additions) ----

// enterIdle runs the DRIPS/ODRIPS entry flow, idles until the planned wake
// fires, exits, and finally calls done back in the Active state.
func (p *Platform) enterIdle(idleFor sim.Duration, plan wakePlan, done func()) {
	if p.state != power.Active {
		p.fail("platform: enterIdle from state %v", p.state)
		return
	}
	if p.inFlow {
		p.fail("platform: overlapping flows")
		return
	}
	p.inFlow = true
	p.cycleDone = done
	p.idleFor = idleFor
	p.plan = plan
	p.state = power.Entry
	p.tracker.to(power.Entry)
	p.applyPhase(phEntry)
	p.hub.ResetWakeLatch()
	entryStart := p.sched.Now()
	p.entryM = entryMilestones{}
	p.entryStartE = p.meter.TotalBattery()
	p.wantAbort = false
	p.abortWake = nil

	bud := p.bud
	var steps []step

	// PMU firmware sequencing overhead.
	steps = append(steps, p.wait("entry-firmware", bud.EntryFirmware))

	// (1) Flush the dirty LLC lines into DRAM.
	dirty := int(float64(bud.LLCBytes) * bud.LLCDirtyFraction)
	steps = append(steps, p.wait("flush-llc", p.mem.TransferTime(dirty, true)))

	// (2) Compute-domain voltage regulators off.
	steps = append(steps, mark(p.wait("vr-compute-off", bud.VRComputeOff), &p.entryM.vrOff))

	// (3) Context save: to protected DRAM (CTX-SGX-DRAM), to on-chip eMRAM
	// (ODRIPS-MRAM), or to the retention SRAMs (baseline).
	steps = append(steps, mark(p.ctxSaveStep(), &p.entryM.ctxSaved))

	// (4) DRAM into self-refresh (CKE held low by the PMU AON domain;
	// PCM needs neither refresh nor CKE).
	steps = append(steps, mark(step{name: "dram-self-refresh", run: func(next func()) {
		if p.mem.NonVolatile() {
			p.mem.SetCKE(false)
		}
		if err := p.mem.SetState(dram.SelfRefresh); err != nil {
			p.fail("platform: self-refresh: %v", err)
			return
		}
		p.sched.After(bud.SelfRefreshEnter, "flow.self-refresh", next)
	}}, &p.entryM.selfRefresh))

	// Hand-over windows run at trailer power: the platform is mostly down.
	steps = append(steps, action("trailer", func() { p.applyPhase(phTrailer) }))

	if p.cfg.Techniques.Has(WakeUpOff) {
		// (5) Timer migration over the PML, then hand-over to the slow
		// timer at a 32.768 kHz edge (§4.1.2, Fig. 3(b)).
		steps = append(steps, mark(step{name: "timer-migrate", run: func(next func()) {
			v := p.mainTimer.Read()
			p.mainTimer.Stop()
			p.p2cContinue = next
			err := p.linkP2C.Send(pml.Message{
				Kind:  pml.TimerValue,
				Value: p.linkP2C.CompensateTimer(v),
			})
			if err != nil {
				p.fail("platform: timer migration: %v", err)
			}
		}}, &p.entryM.timerMigrated))
		// (6) Offload the AON IO functions and gate the rail (§5.2).
		if p.cfg.Techniques.Has(AONIOGate) {
			steps = append(steps, mark(step{name: "gate-aon-ios", run: func(next func()) {
				if err := p.hub.MonitorThermal(p.xtal32); err != nil {
					p.fail("platform: thermal offload: %v", err)
					return
				}
				if err := p.hub.GateProcessorIOs(); err != nil {
					p.fail("platform: FET gate: %v", err)
					return
				}
				p.meter.Set(p.cFET, p.fet.ResidualLeakageMW())
				p.meter.Set(p.cVRAonIO, 0)
				p.sched.After(bud.FETSlew, "flow.fet-slew", next)
			}}, &p.entryM.gatedIOs))
		}
		// (7) All 24 MHz consumers are gone: gate the processor clock
		// domain and shut the crystal (§4.1.2).
		steps = append(steps, mark(action("shut-fast-clock", func() {
			if !p.cfg.Techniques.Has(AONIOGate) {
				// Without the AON-IO offload the thermal watch was never
				// re-hosted; it must still follow the clock to the slow
				// crystal, or an EC wake during idle samples a dead
				// oscillator and is lost (found by the fault-plane
				// property harness).
				if err := p.hub.MonitorThermal(p.xtal32); err != nil {
					p.fail("platform: thermal re-host: %v", err)
					return
				}
			}
			p.procDom.Gate()
			if err := p.hub.ShutFastCrystal(); err != nil {
				p.fail("platform: shut fast crystal: %v", err)
			}
		}), &p.entryM.clockShut))
	}

	p.runSteps("entry", steps, func() {
		// (8) PMU gated; the platform is resident in DRIPS/ODRIPS.
		p.state = power.Idle
		p.tracker.to(power.Idle)
		p.applyPhase(phIdle)
		p.flowStats.entries++
		d := p.sched.Now().Sub(entryStart)
		p.flowStats.entryTotal += d
		if d > p.flowStats.entryMax {
			p.flowStats.entryMax = d
		}
		p.injectAtIdle()
		p.armWake()
		if pending := p.pendingWake; pending != nil {
			// A wake raced the entry flow: leave immediately.
			p.pendingWake = nil
			p.onWake(*pending, p.sched.Now())
		}
	})
}

// ctxSaveStep builds the context-save stage for the variant in force
// (degradation demotes the off-chip variants to the retention SRAMs).
func (p *Platform) ctxSaveStep() step {
	bud := p.bud
	switch {
	case p.effTech().Has(CtxSGXDRAM):
		return step{name: "save-ctx-dram", run: func(next func()) {
			lat, err := p.ffSaveCtxDRAM()
			if err != nil {
				p.fail("platform: context save: %v", err)
				return
			}
			boot := ctxstore.BootImage{
				MEEState:  p.eng.ExportState(),
				MCConfig:  p.mcCfg,
				PMUVector: p.pmuVec,
			}
			if err := p.bootFSM.Save(boot); err != nil {
				p.fail("platform: boot image save: %v", err)
				return
			}
			p.flowStats.ctxSaveLat = lat
			p.sched.After(lat+bud.BootFSMLatency, "flow.save-ctx-dram", func() {
				// The MEE, with its key and root counter, powers down;
				// only the Boot SRAM retains state on-chip.
				p.eng = nil
				p.saSRAM.SetState(sram.Off)
				p.computeSRAM.SetState(sram.Off)
				p.bootSRAM.SetState(sram.Retention)
				p.meter.Set(p.cVRSram, 0)
				next()
			})
		}}
	case p.effEMRAM():
		return step{name: "save-ctx-emram", run: func(next func()) {
			p.emram = append(p.emram[:0], p.ctxImage...)
			// The bytes are exactly ctxImage, whose digest was computed
			// once at New; install it so the boundary fingerprint never
			// re-hashes an unchanged image.
			p.emramHash, p.emramHashOK = p.ctxHash, true
			lat := sim.FromSeconds(float64(len(p.ctxImage)) / bud.EMRAMPortBW)
			p.flowStats.ctxSaveLat = lat
			p.sched.After(lat, "flow.save-ctx-emram", func() {
				// eMRAM retains with the supply off: everything on-chip
				// can power down, Boot SRAM included.
				p.saSRAM.SetState(sram.Off)
				p.computeSRAM.SetState(sram.Off)
				p.bootSRAM.SetState(sram.Off)
				p.meter.Set(p.cVRSram, 0)
				next()
			})
		}}
	default:
		return step{name: "save-ctx-sram", run: func(next func()) {
			saImg := p.saImage
			cpImg := p.cpImage
			saT := pmu.NewSRAMTarget(p.saSRAM)
			cpT := pmu.NewSRAMTarget(p.computeSRAM)
			if err := saT.Save(saImg); err != nil {
				p.fail("platform: SA context save: %v", err)
				return
			}
			if err := cpT.Save(cpImg); err != nil {
				p.fail("platform: compute context save: %v", err)
				return
			}
			// The two FSMs run concurrently; latency is the slower one.
			lat := saT.SaveLatency(len(saImg))
			if l := cpT.SaveLatency(len(cpImg)); l > lat {
				lat = l
			}
			p.flowStats.ctxSaveLat = lat
			p.sched.After(lat, "flow.save-ctx-sram", func() {
				p.saSRAM.SetState(sram.Retention)
				p.computeSRAM.SetState(sram.Retention)
				p.bootSRAM.SetState(sram.Retention)
				next()
			})
		}}
	}
}

// armWake schedules the planned wake source once the platform is resident.
func (p *Platform) armWake() {
	counts := TimerCounts(p.idleFor)
	switch p.plan.kind {
	case chipset.WakeTimer:
		if p.cfg.Techniques.Has(WakeUpOff) {
			target := p.hub.Unit().Now() + counts
			if err := p.hub.ArmTimerWake(target); err != nil {
				p.fail("platform: arm chipset timer wake: %v", err)
			}
			return
		}
		// Baseline: the PMU's own wake timer, toggling at 24 MHz.
		target := p.mainTimer.Read() + counts
		at, ok := p.mainTimer.TimeOfValue(target)
		if !ok {
			p.fail("platform: baseline timer wake unreachable")
			return
		}
		p.armedEv = p.sched.At(at, "pmu.timer-wake", func() {
			p.onWake(chipset.WakeTimer, p.sched.Now())
		})
	case chipset.WakeExternal:
		p.armedEv = p.sched.After(p.idleFor, "workload.external-wake", func() {
			p.hub.ExternalWake()
		})
	case chipset.WakeThermal:
		p.armedEv = p.sched.After(p.idleFor, "workload.thermal-wake", func() {
			if err := p.hub.ThermalPin().Drive(true); err != nil {
				p.fail("platform: thermal drive: %v", err)
			}
		})
	}
}

// restoreFastTimerStep is the shared exit/abort stage that brings the fast
// crystal back and re-adopts counting at a 32 kHz edge. When AON-IO-GATE is
// absent the thermal watch re-hosted to the slow crystal at entry (there is
// no release-fet stage to undo it), so it moves back here.
func (p *Platform) restoreFastTimerStep() step {
	return step{name: "restore-fast-timer", run: func(next func()) {
		err := p.hub.RestoreFastTimer(func(v uint64, _ sim.Time) {
			p.restoredTimer = v
			if !p.cfg.Techniques.Has(AONIOGate) {
				if err := p.hub.MonitorThermal(p.xtal24); err != nil {
					p.fail("platform: thermal re-host: %v", err)
					return
				}
			}
			next()
		})
		if err != nil {
			p.fail("platform: restore fast timer: %v", err)
		}
	}}
}

// ---- Exit flow ----

// onWake starts the exit flow. It is the hub's OnWake handler and also the
// baseline PMU timer-wake target.
func (p *Platform) onWake(src chipset.WakeSource, _ sim.Time) {
	if p.err != nil {
		return
	}
	if p.state == power.Entry {
		if p.wantAbort {
			// An injected wake armed the abortable-entry path: the
			// in-flight step completes, then runSteps unwinds the flow
			// from the deepest already-safe state.
			p.wantAbort = false
			src := src
			p.abortWake = &src
			return
		}
		// A wake event naturally raced the entry flow. The PMU sequences
		// an uninstrumented entry to completion (as the paper's does);
		// latch the event and exit immediately once resident.
		p.pendingWake = &src
		return
	}
	p.wantAbort = false // injected wake landed outside entry: plain wake
	if p.state != power.Idle {
		return
	}
	p.wakeCount[src]++
	p.sched.Cancel(p.armedEv)
	p.armedEv = sim.Event{}
	p.state = power.Exit
	p.tracker.to(power.Exit)
	p.applyPhase(phTrailer)
	exitStart := p.sched.Now()
	if src == chipset.WakeThermal {
		// The EC deasserts its line as soon as servicing begins, so the
		// next thermal event produces a fresh rising edge. Deasserting here
		// rather than at flow completion lets the falling-edge sample land
		// inside the exit flow (it is quantized to the sampling clock), so
		// the cycle ends with an empty event queue and stays eligible for
		// fast-forward memoization.
		if err := p.hub.ThermalPin().Drive(false); err != nil {
			p.fail("platform: thermal deassert: %v", err)
			return
		}
	}

	bud := p.bud
	var steps []step
	var reinit sim.Duration

	if p.cfg.Techniques.Has(WakeUpOff) {
		reinit += bud.ReinitWake
		// Crystal back on, counting handed back to the fast timer at a
		// 32 kHz edge (§4.1.2 exit).
		steps = append(steps, p.restoreFastTimerStep())
		if p.cfg.Techniques.Has(AONIOGate) {
			reinit += bud.ReinitAONIO
			steps = append(steps, step{name: "release-fet", run: p.releaseFET})
		}
		// Timer value returns to the processor over the PML (§4.1.2). The
		// chipset sends the live fast-timer register, not the value from
		// the hand-over edge — intermediate waits (FET slew) have already
		// elapsed on the fast clock. Once the value lands, PMU firmware
		// cross-checks the slow-timer interval against the restarted fast
		// clock (driftCheck) — free and invisible unless the slow crystal
		// drifted past the recalibration threshold.
		steps = append(steps, step{name: "pml-timer-return", run: func(next func()) {
			p.procDom.Ungate()
			p.c2pContinue = func() { p.driftCheck(next) }
			err := p.linkC2P.Send(pml.Message{
				Kind:  pml.TimerValue,
				Value: p.linkC2P.CompensateTimer(p.hub.Unit().Now()),
			})
			if err != nil {
				p.fail("platform: timer return: %v", err)
			}
		}})
	}

	// Power restoration runs at full exit level.
	steps = append(steps, action("exit-power", func() { p.applyPhase(phExit) }))
	steps = append(steps, p.wait("vr-on", bud.VROn))

	// Context restore for the configured variant.
	steps = append(steps, p.ctxRestoreSteps()...)

	switch {
	case p.effTech().Has(CtxSGXDRAM):
		reinit += bud.ReinitCtx
	case p.effEMRAM():
		reinit += bud.ReinitMRAM
	}
	if reinit > 0 {
		steps = append(steps, p.wait("technique-reinit", reinit))
	}
	steps = append(steps, p.wait("exit-firmware", bud.ExitFirmware))

	p.runSteps("exit", steps, func() {
		p.state = power.Active
		p.tracker.to(power.Active)
		p.applyPhase(phActive)
		p.flowStats.exits++
		d := p.sched.Now().Sub(exitStart)
		p.flowStats.exitTotal += d
		if d > p.flowStats.exitMax {
			p.flowStats.exitMax = d
		}
		p.inFlow = false
		if done := p.cycleDone; done != nil {
			p.cycleDone = nil
			done()
		}
	})
}

// ctxRestoreSteps builds the context-restore stages (self-refresh exit
// included, since reaching the context requires DRAM in every variant that
// stored it there).
func (p *Platform) ctxRestoreSteps() []step {
	bud := p.bud
	memUp := step{name: "dram-wake", run: func(next func()) {
		if p.mem.NonVolatile() {
			p.mem.SetCKE(true)
		}
		if err := p.mem.SetState(dram.Active); err != nil {
			p.fail("platform: self-refresh exit: %v", err)
			return
		}
		p.sched.After(bud.SelfRefreshExit, "flow.self-refresh-exit", next)
	}}

	switch {
	case p.effTech().Has(CtxSGXDRAM):
		bootUp := step{name: "boot-fsm", run: func(next func()) {
			p.bootSRAM.SetState(sram.Active)
			boot, err := p.bootFSM.Restore()
			if err != nil {
				p.fail("platform: boot image restore: %v", err)
				return
			}
			eng, err := mee.ImportState(p.mem, boot.MEEState, mee.DefaultCacheLines)
			if err != nil {
				p.fail("platform: MEE restore: %v", err)
				return
			}
			if !bytes.Equal(boot.MCConfig, p.mcCfg) {
				p.fail("platform: memory-controller boot config mismatch")
				return
			}
			p.eng = eng
			p.sched.After(p.bootFSM.Latency(), "flow.boot-fsm", next)
		}}
		restore := step{name: "restore-ctx-dram", run: func(next func()) {
			p.restoreCtxDRAM(1, next)
		}}
		// Boot FSM first (it is what lets the exit flow reach DRAM).
		return []step{bootUp, memUp, restore}

	case p.effEMRAM():
		restore := step{name: "restore-ctx-emram", run: func(next func()) {
			p.restoreCtxEMRAM(1, next)
		}}
		return []step{memUp, restore}

	default:
		restore := step{name: "restore-ctx-sram", run: func(next func()) {
			p.saSRAM.SetState(sram.Active)
			p.computeSRAM.SetState(sram.Active)
			p.bootSRAM.SetState(sram.Active)
			saT := pmu.NewSRAMTarget(p.saSRAM)
			cpT := pmu.NewSRAMTarget(p.computeSRAM)
			// The reference images were serialized once at New (the context
			// is immutable), so verification is a straight byte compare
			// into pooled buffers: equality to the canonical serialization
			// implies the Deserialize/Merge round trip would succeed too.
			if err := saT.RestoreInto(p.saBuf); err != nil {
				p.fail("platform: SA context restore: %v", err)
				return
			}
			if err := cpT.RestoreInto(p.cpBuf); err != nil {
				p.fail("platform: compute context restore: %v", err)
				return
			}
			if !bytes.Equal(p.saBuf, p.saImage) || !bytes.Equal(p.cpBuf, p.cpImage) {
				p.fail("platform: restored context mismatch")
				return
			}
			p.flowStats.ctxVerified++
			lat := saT.RestoreLatency(len(p.saImage))
			if l := cpT.RestoreLatency(len(p.cpImage)); l > lat {
				lat = l
			}
			p.flowStats.ctxRestore = lat
			p.sched.After(lat, "flow.restore-ctx-sram", next)
		}}
		return []step{memUp, restore}
	}
}

// pml delivery dispatch: the platform wires these at New time.
func (p *Platform) handleP2C(m pml.Message) {
	switch m.Kind {
	case pml.TimerValue:
		next := p.p2cContinue
		p.p2cContinue = nil
		err := p.hub.AdoptTimer(m.Value, func(_ sim.Time) {
			if next != nil {
				next()
			}
		})
		if err != nil {
			p.fail("platform: chipset timer adopt: %v", err)
		}
	}
}

func (p *Platform) handleC2P(m pml.Message) {
	switch m.Kind {
	case pml.TimerValue:
		if err := p.mainTimer.Set(m.Value); err != nil {
			p.fail("platform: main timer reload: %v", err)
			return
		}
		if next := p.c2pContinue; next != nil {
			p.c2pContinue = nil
			next()
		}
	}
}
