package platform

import (
	"reflect"
	"testing"

	"odrips/internal/sim"
	"odrips/internal/workload"
)

// runWithMode builds a platform for cfg, forces the fast-forward mode, and
// runs the cycles, returning everything observable.
func runWithMode(t *testing.T, cfg Config, mode FFMode, cycles []workload.Cycle) (Result, []FlowStep, FFStats) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.SetFastForward(mode); err != nil {
		t.Fatalf("SetFastForward: %v", err)
	}
	res, err := p.RunCycles(cycles)
	if err != nil {
		t.Fatalf("RunCycles(%v): %v", mode, err)
	}
	return res, p.FlowTrace(), p.FFStats()
}

// zeroPPBConfigs are configurations whose crystal phases recur across
// steady-state cycles, so whole-cycle replay can engage.
func zeroPPBConfigs() map[string]Config {
	mk := func(tech Technique) Config {
		c := DefaultConfig()
		c.XtalFastPPB = 0
		c.XtalSlowPPB = 0
		c.Techniques = tech
		return c
	}
	return map[string]Config{
		"baseline":     mk(0),
		"wakeupoff":    mk(WakeUpOff),
		"ctx-sgx-dram": mk(WakeUpOff | CtxSGXDRAM),
		"odrips":       mk(ODRIPS),
	}
}

// TestCycleReplayByteIdentical is the core tentpole assertion: with the
// cycle memo engaged, every Result field and the flow trace are
// byte-identical to a full simulation.
func TestCycleReplayByteIdentical(t *testing.T) {
	for name, cfg := range zeroPPBConfigs() {
		t.Run(name, func(t *testing.T) {
			cycles := workload.Fixed(40, 0, 30*sim.Second)
			resOff, traceOff, statsOff := runWithMode(t, cfg, FFOff, cycles)
			resOn, traceOn, statsOn := runWithMode(t, cfg, FFOn, cycles)
			if statsOff.CyclesReplayed != 0 {
				t.Fatalf("FFOff replayed %d cycles", statsOff.CyclesReplayed)
			}
			if !reflect.DeepEqual(resOff, resOn) {
				t.Errorf("Result diverged:\noff: %+v\non:  %+v", resOff, resOn)
			}
			if !reflect.DeepEqual(traceOff, traceOn) {
				t.Errorf("FlowTrace diverged: off %d steps, on %d steps", len(traceOff), len(traceOn))
				for i := range traceOff {
					if i < len(traceOn) && !reflect.DeepEqual(traceOff[i], traceOn[i]) {
						t.Errorf("first divergent step %d:\noff: %+v\non:  %+v", i, traceOff[i], traceOn[i])
						break
					}
				}
			}
			t.Logf("recorded=%d replayed=%d", statsOn.CyclesRecorded, statsOn.CyclesReplayed)
			if statsOn.CyclesReplayed == 0 {
				t.Errorf("cycle replay never engaged (recorded %d)", statsOn.CyclesRecorded)
			}
		})
	}
}

// TestCycleReplayMixedWakeSources exercises memo keys that differ only in
// the wake kind, including the external/thermal wake paths through the
// chipset.
func TestCycleReplayMixedWakeSources(t *testing.T) {
	cfg := zeroPPBConfigs()["odrips"]
	var cycles []workload.Cycle
	for i := 0; i < 30; i++ {
		w := workload.WakeTimer
		switch i % 6 {
		case 2:
			w = workload.WakeExternal
		case 4:
			w = workload.WakeThermal
		}
		cycles = append(cycles, workload.Cycle{Idle: 30 * sim.Second, Wake: w})
	}
	resOff, traceOff, _ := runWithMode(t, cfg, FFOff, cycles)
	resOn, traceOn, statsOn := runWithMode(t, cfg, FFOn, cycles)
	if !reflect.DeepEqual(resOff, resOn) {
		t.Errorf("Result diverged:\noff: %+v\non:  %+v", resOff, resOn)
	}
	if !reflect.DeepEqual(traceOff, traceOn) {
		t.Errorf("FlowTrace diverged")
	}
	t.Logf("recorded=%d replayed=%d", statsOn.CyclesRecorded, statsOn.CyclesReplayed)
}

// TestCycleReplayJitteredIdle keeps the cycle parameters unique per cycle
// (jittered idle); the cycle memo then finds no run-length batches, but the
// MEE op memo still engages, and results stay byte-identical.
func TestCycleReplayJitteredIdle(t *testing.T) {
	cfg := ODRIPSConfig() // default (non-zero) ppb: the realistic case
	cycles := workload.ConnectedStandby(25, 7)
	resOff, traceOff, _ := runWithMode(t, cfg, FFOff, cycles)
	resOn, traceOn, statsOn := runWithMode(t, cfg, FFOn, cycles)
	if !reflect.DeepEqual(resOff, resOn) {
		t.Errorf("Result diverged:\noff: %+v\non:  %+v", resOff, resOn)
	}
	if !reflect.DeepEqual(traceOff, traceOn) {
		t.Errorf("FlowTrace diverged")
	}
	if statsOn.MEEOpsReplayed == 0 {
		t.Errorf("MEE op replay never engaged")
	}
}

// TestCycleReplayShallowCycles replays cycles that park in a shallow
// C-state (no flow, no tracker transition) — the open-interval handling in
// the tracker snapshot is what keeps these exact. Shallow cycles end at an
// arbitrary (not edge-aligned) instant, so an all-shallow workload never
// revisits a crystal phase and runs in full; interleaving deep cycles
// re-anchors the fast crystal every exit and makes the pattern recur.
func TestCycleReplayShallowCycles(t *testing.T) {
	cfg := zeroPPBConfigs()["odrips"]
	var cycles []workload.Cycle
	for i := 0; i < 15; i++ {
		cycles = append(cycles,
			workload.Cycle{Idle: 30 * sim.Second, Wake: workload.WakeTimer},
			// A short idle interval fails the TNTE gate and parks shallow.
			workload.Cycle{Idle: 2 * sim.Millisecond, Wake: workload.WakeTimer},
		)
	}
	resOff, traceOff, _ := runWithMode(t, cfg, FFOff, cycles)
	resOn, traceOn, statsOn := runWithMode(t, cfg, FFOn, cycles)
	if !reflect.DeepEqual(resOff, resOn) {
		t.Errorf("Result diverged:\noff: %+v\non:  %+v", resOff, resOn)
	}
	if !reflect.DeepEqual(traceOff, traceOn) {
		t.Errorf("FlowTrace diverged")
	}
	t.Logf("recorded=%d replayed=%d shallow=%v", statsOn.CyclesRecorded, statsOn.CyclesReplayed, resOn.ShallowIdles)
	if statsOn.CyclesReplayed == 0 {
		t.Errorf("shallow cycles never replayed")
	}
	if resOn.ShallowIdles["C8"] != 15 {
		t.Errorf("shallow idles = %v, want 15 C8 parks", resOn.ShallowIdles)
	}

	// An all-shallow workload cannot recur (no re-anchoring), but must
	// still be byte-identical while running in full.
	flat := workload.Fixed(20, 0, 2*sim.Millisecond)
	fOff, _, _ := runWithMode(t, cfg, FFOff, flat)
	fOn, _, fStats := runWithMode(t, cfg, FFOn, flat)
	if !reflect.DeepEqual(fOff, fOn) {
		t.Errorf("all-shallow Result diverged:\noff: %+v\non:  %+v", fOff, fOn)
	}
	t.Logf("all-shallow recorded=%d replayed=%d", fStats.CyclesRecorded, fStats.CyclesReplayed)
}

// TestVerifyModeCleanRun: verify mode re-simulates every memoized cycle
// and diffs it against the record; a healthy platform must pass.
func TestVerifyModeCleanRun(t *testing.T) {
	for name, cfg := range zeroPPBConfigs() {
		t.Run(name, func(t *testing.T) {
			cycles := workload.Fixed(20, 0, 30*sim.Second)
			res, _, stats := runWithMode(t, cfg, FFVerify, cycles)
			if stats.CyclesReplayed != 0 {
				t.Errorf("verify mode replayed %d cycles", stats.CyclesReplayed)
			}
			if res.Cycles != 20 {
				t.Errorf("cycles = %d", res.Cycles)
			}
		})
	}
}

// TestFFModeParsing covers the flag round trip.
func TestFFModeParsing(t *testing.T) {
	for _, m := range []FFMode{FFOn, FFOff, FFVerify} {
		got, err := ParseFFMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: got %v, err %v", m, got, err)
		}
	}
	if _, err := ParseFFMode("maybe"); err == nil {
		t.Errorf("ParseFFMode(maybe) succeeded")
	}
}
