package platform

import (
	"fmt"
	"math"

	"odrips/internal/chipset"
	"odrips/internal/pmu"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// Result summarizes a connected-standby run.
type Result struct {
	Config   Config
	Duration sim.Duration
	Cycles   int

	// AvgPowerMW is the battery average power over the whole run — the
	// quantity of Fig. 6.
	AvgPowerMW float64

	// Per-state residency shares (sum to 1) and average power while
	// resident — the inputs of Equation 1.
	Residency    map[power.State]float64
	StatePowerMW map[power.State]float64
	StateEnergyJ map[power.State]float64

	// IdleByComponent is the battery energy per component while in
	// DRIPS/ODRIPS, the Fig. 1(b) breakdown.
	IdleByComponent map[string]float64

	// Flow latencies.
	EntryAvg, EntryMax  sim.Duration
	ExitAvg, ExitMax    sim.Duration
	CtxSave, CtxRestore sim.Duration
	CtxVerified         uint64

	// Wake accounting.
	WakeCounts map[string]uint64

	// ShallowIdles counts intervals parked in C1–C8 because LTR or TNTE
	// forbade DRIPS, keyed by state name.
	ShallowIdles map[string]uint64

	// TimerDriftPPB is the main timer's deviation from the ideal fast
	// clock over the run, in parts per billion (§4.1.3's 1 ppb target,
	// plus sub-count hand-over losses).
	TimerDriftPPB float64

	// CycleEnergy feeds the break-even analysis: average transition
	// (entry+exit) battery energy per cycle and idle-state battery power.
	CycleEnergy power.CycleEnergy

	// Faults reports the injection plane's accounting for the run. Zero
	// when no fault plan is installed.
	Faults FaultStats
}

// IdlePowerMW returns the average battery power in the idle state.
func (r Result) IdlePowerMW() float64 { return r.StatePowerMW[power.Idle] }

// RunCycles executes the given connected-standby cycles and reports.
func (p *Platform) RunCycles(cycles []workload.Cycle) (Result, error) {
	if len(cycles) == 0 {
		return Result{}, fmt.Errorf("platform: no cycles to run")
	}
	start := p.sched.Now()
	idx := 0
	var startCycle func()
	startCycle = func() {
		if p.err != nil {
			return
		}
		// Each iteration is one cycle boundary: finalize any in-flight
		// recording against it, then either replay memoized cycles (and
		// loop to the next boundary) or launch one real cycle.
		for {
			p.meter.SettleAll()
			eligible := p.ffCycleEligible()
			var fp [32]byte
			if eligible {
				fp = p.ffFingerprint()
			}
			p.ffFinalizeRecording(eligible, fp)
			if p.err != nil {
				return
			}
			if idx >= len(cycles) {
				for _, fn := range p.quiesce {
					fn()
				}
				p.quiesce = nil
				return
			}
			c := cycles[idx]
			p.ffLatchCycle()
			if eligible {
				if n := p.ffTryReplay(fp, cycles, idx); n > 0 {
					idx += n
					p.cycleIdx = idx - 1
					continue
				}
				p.ffBeginRecording(ffKey{fp: fp, active: c.Active, idle: c.Idle, wake: c.Wake})
			}
			p.cycleIdx = idx
			idx++
			p.runCycle(c, startCycle)
			return
		}
	}
	startCycle()
	p.sched.Run()
	if p.err != nil {
		return Result{}, p.err
	}
	if idx != len(cycles) {
		return Result{}, fmt.Errorf("platform: run stalled after %d/%d cycles", idx, len(cycles))
	}
	p.ffFlushPersist()
	return p.buildResult(start, len(cycles)), nil
}

// runCycle: active maintenance period, then idle until the planned wake.
func (p *Platform) runCycle(c workload.Cycle, done func()) {
	active := c.Active
	if active <= 0 {
		active = p.MaintenanceDuration()
	}
	// The OS arms its next wake before going idle; TNTE sees it.
	p.sched.After(active, "workload.maintenance-done", func() {
		if p.err != nil {
			return
		}
		idle := c.Idle
		if err := p.ltrTable.SetTimer("os-wake", p.sched.Now().Add(idle)); err != nil {
			p.fail("platform: TNTE arm: %v", err)
			return
		}
		if !p.cfg.ForceDeepest {
			st, err := pmu.SelectState(p.cstates, p.ltrTable)
			if err != nil {
				p.fail("platform: %v", err)
				return
			}
			if st.Index < 10 {
				// Too shallow for DRIPS: park in the selected runtime
				// idle state for the interval. Shallow residency counts
				// as Active&Transitions in the Equation-1 sense (the
				// platform never reaches the deep idle state).
				p.shallowIdle(st, idle, done)
				return
			}
		}
		plan := wakePlan{kind: wakeKind(c.Wake), after: idle}
		p.enterIdle(idle, plan, done)
	})
}

func wakeKind(k workload.WakeKind) chipset.WakeSource {
	switch k {
	case workload.WakeExternal:
		return chipset.WakeExternal
	case workload.WakeThermal:
		return chipset.WakeThermal
	default:
		return chipset.WakeTimer
	}
}

func (p *Platform) buildResult(start sim.Time, cycles int) Result {
	p.tracker.finish()
	total := p.sched.Now().Sub(start)
	r := Result{
		Config:          p.cfg,
		Duration:        total,
		Cycles:          cycles,
		Residency:       make(map[power.State]float64),
		StatePowerMW:    make(map[power.State]float64),
		StateEnergyJ:    make(map[power.State]float64),
		IdleByComponent: make(map[string]float64),
		WakeCounts:      make(map[string]uint64),
	}
	var totalE power.Energy
	for _, st := range power.States() {
		d := p.tracker.residency[st]
		e := p.tracker.energy[st]
		totalE = totalE.Add(e)
		if total > 0 {
			r.Residency[st] = float64(d) / float64(total)
		}
		if d > 0 {
			r.StatePowerMW[st] = e.Joules() * 1e3 / d.Seconds()
		}
		r.StateEnergyJ[st] = e.Joules()
	}
	if total > 0 {
		r.AvgPowerMW = totalE.Joules() * 1e3 / total.Seconds()
	}
	for i, c := range p.meter.Ordered() {
		r.IdleByComponent[c.Name()] = p.tracker.idleByCmp[i].Joules()
	}
	fs := p.flowStats
	if fs.entries > 0 {
		r.EntryAvg = fs.entryTotal / sim.Duration(fs.entries)
		r.EntryMax = fs.entryMax
	}
	if fs.exits > 0 {
		r.ExitAvg = fs.exitTotal / sim.Duration(fs.exits)
		r.ExitMax = fs.exitMax
	}
	r.CtxSave = fs.ctxSaveLat
	r.CtxRestore = fs.ctxRestore
	r.CtxVerified = fs.ctxVerified
	for src, n := range p.wakeCount {
		r.WakeCounts[src.String()] = n
	}
	r.ShallowIdles = make(map[string]uint64)
	for name, n := range p.shallowCounts {
		r.ShallowIdles[name] = n
	}
	r.TimerDriftPPB = p.timerDriftPPB()
	if p.fplane != nil {
		r.Faults = p.fplane.stats
	}

	transJ := p.tracker.energy[power.Entry].Add(p.tracker.energy[power.Exit]).Joules()
	if cycles > 0 {
		r.CycleEnergy = power.CycleEnergy{
			TransitionUJ: transJ * 1e6 / float64(cycles),
			IdleMW:       r.StatePowerMW[power.Idle],
		}
	}
	return r
}

// timerDriftPPB compares the main timer against the ideal fast clock.
func (p *Platform) timerDriftPPB() float64 {
	elapsed := p.sched.Now().Sub(p.timerEpoch).Seconds()
	if elapsed <= 0 {
		return 0
	}
	var v float64
	if p.mainTimer.Running() || !p.cfg.Techniques.Has(WakeUpOff) {
		v = float64(p.mainTimer.Read())
	} else if p.hub.Unit() != nil {
		v = float64(p.hub.Unit().Now())
	}
	expected := elapsed * 24e6 * (1 + float64(p.cfg.XtalFastPPB)/1e9)
	if expected == 0 {
		return 0
	}
	return math.Abs(v-expected) / expected * 1e9
}

// Err returns the first flow error, if any (nil on healthy platforms).
func (p *Platform) Err() error { return p.err }

// shallowIdle parks the platform in a C1–C8 state for the interval: the
// compute draw drops to hit the state's calibrated battery target, and
// everything else stays at its active level (DRAM stays out of
// self-refresh, the 24 MHz clock keeps running, no context moves).
func (p *Platform) shallowIdle(st pmu.CState, idle sim.Duration, done func()) {
	target, ok := p.bud.ShallowTargetMW[st.Index]
	if !ok {
		target = p.bud.C0TargetMW[p.cfg.CoreFreqMHz] // C0/C1-adjacent fallback
	}
	p.shallowCounts[st.Name]++
	// Back the residual draw out of the battery target the same way the
	// active draws are derived: fixed = every delivered draw except the
	// compute/SA pair being rescaled (NominalPowerMW also sums the direct
	// regulator draws, which are removed separately).
	saved := p.meter.Lookup("proc.compute").DrawMW() + p.meter.Lookup("proc.sa").DrawMW()
	direct := p.bud.VRFixedMW + p.bud.VRAonIOMW + p.bud.VRSramMW + p.bud.VRPmuMW
	fixedMW := p.meter.NominalPowerMW() - saved - direct
	residual := p.bud.computeDrawForTarget(target, p.bud.EffActive, fixedMW, direct)
	p.meter.Set(p.cCompute, residual)
	p.meter.Set(p.cSA, 0)
	p.sched.After(idle+st.EntryLatency+st.ExitLatency, "workload.shallow-idle", func() {
		p.applyPhase(phActive)
		done()
	})
}
