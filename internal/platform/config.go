// Package platform assembles the full mobile system of Fig. 1(a) —
// processor, chipset, board (crystals, FET, regulators), and DRAM — and
// executes the DRIPS/ODRIPS entry and exit flows end-to-end on the
// discrete-event kernel, with exact energy accounting.
package platform

import (
	"fmt"

	"odrips/internal/dram"
)

// Technique is a bitmask of the paper's three power-reduction techniques.
type Technique uint8

const (
	// WakeUpOff migrates timer wake-up handling to the chipset and turns
	// off the 24 MHz crystal in idle (§4).
	WakeUpOff Technique = 1 << iota
	// AONIOGate offloads the processor AON IO functions to the chipset and
	// power-gates the rail through the board FET (§5). Requires WakeUpOff.
	AONIOGate
	// CtxSGXDRAM moves the processor context from retention SRAMs into the
	// SGX-protected DRAM region through the MEE (§6).
	CtxSGXDRAM
)

// ODRIPS is the full optimized state: all three techniques together.
const ODRIPS = WakeUpOff | AONIOGate | CtxSGXDRAM

// Has reports whether t includes x.
func (t Technique) Has(x Technique) bool { return t&x == x }

// String names the combination using the paper's labels.
func (t Technique) String() string {
	switch t {
	case 0:
		return "Baseline"
	case WakeUpOff:
		return "WAKE-UP-OFF"
	case WakeUpOff | AONIOGate:
		return "AON-IO-GATE"
	case CtxSGXDRAM:
		return "CTX-SGX-DRAM"
	case ODRIPS:
		return "ODRIPS"
	default:
		s := ""
		if t.Has(WakeUpOff) {
			s += "+wake-up-off"
		}
		if t.Has(AONIOGate) {
			s += "+aon-io-gate"
		}
		if t.Has(CtxSGXDRAM) {
			s += "+ctx-sgx-dram"
		}
		return s
	}
}

// Config selects a platform build.
type Config struct {
	// Techniques enables ODRIPS techniques; zero is baseline DRIPS.
	Techniques Technique
	// CoreFreqMHz is the core clock during kernel maintenance (§8.1):
	// 800 (baseline), 1000, or 1500.
	CoreFreqMHz int
	// DRAMMTps is the memory transfer rate (§8.2): 1600 (baseline), 1067,
	// or 800 — the paper's "1.6 GHz", "1.067 GHz", "0.8 GHz".
	DRAMMTps int
	// MainMemory selects DDR3L (baseline) or PCM (§8.3, ODRIPS-PCM).
	MainMemory dram.Technology
	// Generation selects Skylake (default) or the Haswell-ULT measurement
	// platform of §7 (baseline DRIPS only; ODRIPS ships with Skylake).
	Generation Generation
	// CtxInEMRAM stores the context in optimistic on-chip eMRAM instead of
	// DRAM (§8.3, ODRIPS-MRAM). Mutually exclusive with CtxSGXDRAM.
	CtxInEMRAM bool
	// ForceDeepest skips the LTR/TNTE gating so residency sweeps can force
	// DRIPS at arbitrarily short residencies (§7's break-even methodology
	// uses a debug switch the same way).
	ForceDeepest bool
	// Seed drives context generation and workload jitter.
	Seed int64
	// XtalFastPPB/XtalSlowPPB are the crystal frequency errors.
	XtalFastPPB int64
	XtalSlowPPB int64

	// Ablation knobs (zero = calibrated default).
	//
	// ExitReinitScale multiplies the per-technique exit re-initialization
	// durations, the calibrated counterpart of the measured break-even
	// residencies; sweeping it shows how break-even scales with exit cost.
	ExitReinitScale float64
	// LLCDirtyFraction overrides the fraction of the LLC flushed at entry.
	LLCDirtyFraction float64
	// FETLeakageFraction overrides the AON IO gate's off-state leakage
	// relative to the gated load (§5.1: board FET ~0.3%; an embedded
	// power gate leaks more).
	FETLeakageFraction float64
	// TDPWatts selects the product's thermal design point (§1: Skylake
	// spans 3.5 W handhelds to 95 W desktops; the baseline is the 15 W
	// U-series of Table 1). Active-state power scales with the TDP class
	// while the always-on idle infrastructure does not — which is why the
	// paper says ODRIPS matters most at low TDP. Zero means 15.
	TDPWatts float64
}

// Config must stay a pure value type: the experiment engine memoizes sweep
// points in maps keyed on (Config, residency, cycles), and worker-pool
// determinism relies on Config copies sharing no mutable state. This
// declaration fails to compile if a non-comparable field (slice, map,
// func) is ever added.
var _ map[Config]struct{}

// DefaultConfig returns the paper's baseline platform (Table 1).
func DefaultConfig() Config {
	return Config{
		Techniques:  0,
		CoreFreqMHz: 800,
		DRAMMTps:    1600,
		MainMemory:  dram.DDR3L,
		Seed:        1,
		XtalFastPPB: 2_300,  // a realistic ±ppm-class crystal
		XtalSlowPPB: -4_100, // RTC crystals are typically worse
	}
}

// ODRIPSConfig returns the full ODRIPS platform.
func ODRIPSConfig() Config {
	c := DefaultConfig()
	c.Techniques = ODRIPS
	return c
}

// WithTechniques returns a copy with the given techniques.
func (c Config) WithTechniques(t Technique) Config {
	c.Techniques = t
	return c
}

// Name returns a human-readable configuration label.
func (c Config) Name() string {
	name := c.Techniques.String()
	if c.Generation == GenHaswell {
		name = "Haswell " + name
	}
	if c.CtxInEMRAM {
		name = "ODRIPS-MRAM"
	}
	if c.MainMemory == dram.PCM {
		name = "ODRIPS-PCM"
	}
	return name
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.Techniques.Has(AONIOGate) && !c.Techniques.Has(WakeUpOff) {
		return fmt.Errorf("platform: AON IO power-gating requires wake-up event migration (paper §8, footnote 4)")
	}
	if c.CtxInEMRAM && c.Techniques.Has(CtxSGXDRAM) {
		return fmt.Errorf("platform: context cannot live in both eMRAM and protected DRAM")
	}
	if c.Generation == GenHaswell && (c.Techniques != 0 || c.CtxInEMRAM) {
		return fmt.Errorf("platform: ODRIPS techniques first shipped with Skylake; Haswell-ULT models baseline DRIPS only (§7)")
	}
	switch c.CoreFreqMHz {
	case 800, 1000, 1500:
	default:
		return fmt.Errorf("platform: unsupported core frequency %d MHz (800/1000/1500)", c.CoreFreqMHz)
	}
	switch c.DRAMMTps {
	case 1600, 1067, 800:
	default:
		return fmt.Errorf("platform: unsupported DRAM rate %d MT/s (1600/1067/800)", c.DRAMMTps)
	}
	if c.XtalFastPPB <= -1e9 || c.XtalSlowPPB <= -1e9 {
		return fmt.Errorf("platform: crystal error out of range")
	}
	if c.ExitReinitScale < 0 || c.LLCDirtyFraction < 0 || c.LLCDirtyFraction > 1 ||
		c.FETLeakageFraction < 0 || c.FETLeakageFraction > 1 {
		return fmt.Errorf("platform: ablation knob out of range")
	}
	if c.TDPWatts < 0 || (c.TDPWatts > 0 && (c.TDPWatts < 3 || c.TDPWatts > 95)) {
		return fmt.Errorf("platform: TDP %v W outside the Skylake 3.5-95 W band", c.TDPWatts)
	}
	return nil
}
