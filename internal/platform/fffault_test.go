package platform

import (
	"reflect"
	"testing"

	"odrips/internal/faults"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

func runFaultedFF(t *testing.T, cfg Config, mode FFMode, plan string, cycles []workload.Cycle) (Result, []FlowStep, FFStats) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := p.SetFastForward(mode); err != nil {
		t.Fatalf("SetFastForward: %v", err)
	}
	fp, err := faults.Parse(plan)
	if err != nil {
		t.Fatalf("Parse(%q): %v", plan, err)
	}
	if err := p.InjectFaults(fp); err != nil {
		t.Fatalf("InjectFaults: %v", err)
	}
	res, err := p.RunCycles(cycles)
	if err != nil {
		t.Fatalf("RunCycles: %v", err)
	}
	return res, p.FlowTrace(), p.FFStats()
}

// TestFastForwardResumesAfterFaults: the memo self-disables while any
// injection is unfired and resumes once the plane is exhausted — and the
// faulted run stays byte-identical to full simulation either way.
func TestFastForwardResumesAfterFaults(t *testing.T) {
	cfg := zeroPPBConfigs()["odrips"]
	cycles := workload.Fixed(40, 0, 30*sim.Second)
	const plan = "wake@2" // aborts cycle 2's entry, then the plane is spent

	resOff, traceOff, _ := runFaultedFF(t, cfg, FFOff, plan, cycles)
	resOn, traceOn, statsOn := runFaultedFF(t, cfg, FFOn, plan, cycles)
	if !reflect.DeepEqual(resOff, resOn) {
		t.Errorf("Result diverged:\noff: %+v\non:  %+v", resOff, resOn)
	}
	if !reflect.DeepEqual(traceOff, traceOn) {
		t.Errorf("FlowTrace diverged")
	}
	if resOn.Faults.Fired != 1 {
		t.Errorf("faults fired = %d, want 1", resOn.Faults.Fired)
	}
	t.Logf("recorded=%d replayed=%d", statsOn.CyclesRecorded, statsOn.CyclesReplayed)
	if statsOn.CyclesReplayed == 0 {
		t.Errorf("memo never resumed after the plane was exhausted")
	}

	// Verify mode re-simulates every memoized cycle of the faulted run and
	// must find no divergence.
	resV, _, statsV := runFaultedFF(t, cfg, FFVerify, plan, cycles)
	if !reflect.DeepEqual(resOff, resV) {
		t.Errorf("verify-mode Result diverged")
	}
	if statsV.CyclesReplayed != 0 {
		t.Errorf("verify mode replayed %d cycles", statsV.CyclesReplayed)
	}
}

// TestFastForwardDisabledWhileArmed: with an injection armed for the final
// cycle, no earlier boundary is clean, so the memo must never engage.
func TestFastForwardDisabledWhileArmed(t *testing.T) {
	cfg := zeroPPBConfigs()["odrips"]
	cycles := workload.Fixed(40, 0, 30*sim.Second)
	const plan = "wake@39"

	resOff, _, _ := runFaultedFF(t, cfg, FFOff, plan, cycles)
	resOn, _, statsOn := runFaultedFF(t, cfg, FFOn, plan, cycles)
	if !reflect.DeepEqual(resOff, resOn) {
		t.Errorf("Result diverged:\noff: %+v\non:  %+v", resOff, resOn)
	}
	if statsOn.CyclesRecorded != 0 || statsOn.CyclesReplayed != 0 {
		t.Errorf("memo engaged with an armed injection: recorded=%d replayed=%d",
			statsOn.CyclesRecorded, statsOn.CyclesReplayed)
	}
}
