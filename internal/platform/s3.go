package platform

import (
	"fmt"

	"odrips/internal/dram"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/sram"
)

// ACPI S3 (suspend-to-RAM) support, for the §9 comparison between
// connected standby and legacy suspend. In S3 the OS context lives in
// self-refreshing DRAM and essentially everything else — processor,
// chipset logic, radios — powers off. The platform cannot service network
// traffic or timers: only an explicit user event resumes it, and the
// resume runs through firmware (hundreds of milliseconds), not the
// microsecond-scale DRIPS exit.

// S3 budget constants: with the whole SoC off, the platform draws DRAM
// self-refresh plus a sliver of EC/RTC and regulator quiescent current.
const (
	s3MiscMW    = 1.2 // EC in its own sleep state + RTC
	s3VRMW      = 1.6 // one always-on regulator for the DRAM rail
	s3ResumeDur = 450 * sim.Millisecond
	s3EnterDur  = 80 * sim.Millisecond
)

// S3Result summarizes one suspend/resume cycle.
type S3Result struct {
	SuspendPowerMW float64
	AvgPowerMW     float64
	ResumeLatency  sim.Duration
	Duration       sim.Duration
}

// RunS3Cycle suspends the platform to RAM for the given duration and
// resumes it. The platform must be Active and between RunCycles
// invocations. Connectivity is lost for the whole window: no LTR, no
// chipset wake hub, no timers — the §9 distinction from connected standby.
func (p *Platform) RunS3Cycle(suspended sim.Duration) (S3Result, error) {
	if p.state != power.Active {
		return S3Result{}, fmt.Errorf("platform: S3 entry from state %v", p.state)
	}
	if p.inFlow {
		return S3Result{}, fmt.Errorf("platform: S3 entry during a flow")
	}
	if suspended <= 0 {
		return S3Result{}, fmt.Errorf("platform: non-positive suspend duration")
	}
	start := p.sched.Now()
	before := p.meter.Snapshot()

	// Entry: the OS writes its image to DRAM and firmware sequences the
	// platform down (seconds-scale path compressed into the entry cost).
	p.tracker.to(power.Entry)
	p.applyPhase(phEntry)
	p.sched.After(s3EnterDur, "s3.enter", func() {
		// Suspend: everything off but the DRAM rail and the EC sliver.
		if err := p.mem.SetState(dram.SelfRefresh); err != nil {
			p.fail("platform: S3 self-refresh: %v", err)
			return
		}
		p.saSRAM.SetState(sram.Off)
		p.computeSRAM.SetState(sram.Off)
		p.bootSRAM.SetState(sram.Off)
		p.xtal24.PowerOff()
		m := p.meter
		m.SetEfficiency(p.bud.EffIdle)
		for _, c := range []*power.Component{
			p.cCompute, p.cSA, p.cWake, p.cPMU, p.cChipsetAon,
			p.cMonitor, p.cVRAonIO, p.cVRSram, p.cVRPmu, p.cFET,
		} {
			m.Set(c, 0)
		}
		m.Set(p.cMisc, s3MiscMW)
		m.Set(p.cVRFixed, s3VRMW)
		p.ring.SetGated(true)
		p.tracker.to(power.Idle)
		p.sched.After(suspended, "s3.user-resume", func() {
			// Resume: firmware re-init, memory out of self-refresh, OS
			// image reload. Hundreds of milliseconds (§9 / [56]).
			p.tracker.to(power.Exit)
			p.ring.SetGated(false)
			p.xtal24.PowerOn()
			p.applyPhase(phExit)
			if err := p.mem.SetState(dram.Active); err != nil {
				p.fail("platform: S3 resume: %v", err)
				return
			}
			p.sched.After(s3ResumeDur, "s3.resume", func() {
				p.saSRAM.SetState(sram.Active)
				p.computeSRAM.SetState(sram.Active)
				p.bootSRAM.SetState(sram.Active)
				p.tracker.to(power.Active)
				p.applyPhase(phActive)
			})
		})
	})
	p.sched.Run()
	if p.err != nil {
		return S3Result{}, p.err
	}
	iv := p.meter.Snapshot().Since(before)
	total := p.sched.Now().Sub(start)
	return S3Result{
		AvgPowerMW:     iv.TotalJ() * 1e3 / total.Seconds(),
		ResumeLatency:  s3ResumeDur,
		Duration:       total,
		SuspendPowerMW: s3MiscMW + s3VRMW + p.mem.IdleDrawMW(dram.SelfRefresh)/p.bud.EffIdle,
	}, nil
}
