package platform

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"odrips/internal/dram"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// runFixed builds a platform and runs n deterministic 30 s-idle cycles.
func runFixed(t testing.TB, cfg Config, n int) (*Platform, Result) {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCycles(workload.Fixed(n, 0, 30*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestBaselineMatchesPaperAnchors(t *testing.T) {
	_, res := runFixed(t, DefaultConfig(), 3)

	// DRIPS platform power ~60 mW (Fig. 1(b)).
	if idle := res.IdlePowerMW(); math.Abs(idle-60) > 1.0 {
		t.Errorf("DRIPS power = %.2f mW, want ~60", idle)
	}
	// Connected-standby average ~74-75 mW; DRIPS residency ~99.5% (Fig. 2).
	if res.AvgPowerMW < 70 || res.AvgPowerMW > 80 {
		t.Errorf("average power = %.2f mW, want ~74.6", res.AvgPowerMW)
	}
	if r := res.Residency[power.Idle]; r < 0.99 || r > 0.998 {
		t.Errorf("DRIPS residency = %.4f, want ~0.995", r)
	}
	// Entry ~200 us, exit ~300 us (§7).
	if res.EntryAvg > 300*sim.Microsecond {
		t.Errorf("entry latency = %v, want < 300us", res.EntryAvg)
	}
	if res.ExitAvg > 400*sim.Microsecond {
		t.Errorf("exit latency = %v, want ~300us", res.ExitAvg)
	}
	// Residencies account for everything.
	var sum float64
	for _, st := range power.States() {
		sum += res.Residency[st]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("residencies sum to %v", sum)
	}
	if res.Cycles != 3 || res.CtxVerified != 3 {
		t.Errorf("cycles=%d verified=%d", res.Cycles, res.CtxVerified)
	}
}

func TestTechniqueReductionsMatchPaper(t *testing.T) {
	_, base := runFixed(t, DefaultConfig(), 3)
	cases := []struct {
		tech    Technique
		wantPct float64 // paper's Fig. 6(a) reductions
	}{
		{WakeUpOff, 6},
		{WakeUpOff | AONIOGate, 13},
		{CtxSGXDRAM, 8},
		{ODRIPS, 22},
	}
	for _, c := range cases {
		_, res := runFixed(t, DefaultConfig().WithTechniques(c.tech), 3)
		got := 100 * (base.AvgPowerMW - res.AvgPowerMW) / base.AvgPowerMW
		if math.Abs(got-c.wantPct) > 1.0 {
			t.Errorf("%v: average power reduction = %.1f%%, paper says %v%%", c.tech, got, c.wantPct)
		}
	}
}

func TestBreakEvensMatchPaper(t *testing.T) {
	_, base := runFixed(t, DefaultConfig(), 3)
	cases := []struct {
		tech   Technique
		wantMS float64 // paper §8: 6.6 / 6.3 / 7.4 / 6.5 ms
	}{
		{WakeUpOff, 6.6},
		{WakeUpOff | AONIOGate, 6.3},
		{CtxSGXDRAM, 7.4},
		{ODRIPS, 6.5},
	}
	for _, c := range cases {
		_, res := runFixed(t, DefaultConfig().WithTechniques(c.tech), 3)
		be, err := power.BreakEven(base.CycleEnergy, res.CycleEnergy)
		if err != nil {
			t.Fatalf("%v: %v", c.tech, err)
		}
		if got := be.Milliseconds(); math.Abs(got-c.wantMS) > 0.5 {
			t.Errorf("%v: break-even = %.2f ms, paper says %v ms", c.tech, got, c.wantMS)
		}
	}
}

func TestODRIPSContextLatencies(t *testing.T) {
	_, res := runFixed(t, ODRIPSConfig(), 2)
	// §6.3: ~18 us save, ~13 us restore (95% accuracy claimed).
	if us := res.CtxSave.Microseconds(); us < 14 || us > 24 {
		t.Errorf("context save = %.1f us, want ~18", us)
	}
	if us := res.CtxRestore.Microseconds(); us < 10 || us > 18 {
		t.Errorf("context restore = %.1f us, want ~13", us)
	}
}

func TestODRIPSHardwareStateDuringIdle(t *testing.T) {
	p, err := New(ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Probe mid-idle: the 24 MHz crystal must be off, the AON IO rail
	// gated, DRAM in self-refresh, and the chipset hosting time.
	probed := false
	p.Scheduler().At(p.Scheduler().Now().Add(10*sim.Second), "probe", func() {
		probed = true
		if p.xtal24.On() {
			t.Error("24 MHz crystal on during ODRIPS")
		}
		if !p.ring.Gated() {
			t.Error("AON IO rail not gated during ODRIPS")
		}
		if p.mem.State() != dram.SelfRefresh {
			t.Errorf("DRAM state = %v during ODRIPS", p.mem.State())
		}
		if !p.hub.Hosting() {
			t.Error("chipset not hosting timekeeping during ODRIPS")
		}
		if p.saSRAM.State().String() != "off" {
			t.Errorf("SA SRAM state = %v, want off", p.saSRAM.State())
		}
	})
	if _, err := p.RunCycles(workload.Fixed(1, 0, 30*sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("probe never fired")
	}
}

func TestBaselineHardwareStateDuringIdle(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.Scheduler().At(p.Scheduler().Now().Add(10*sim.Second), "probe", func() {
		if !p.xtal24.On() {
			t.Error("24 MHz crystal off in baseline DRIPS")
		}
		if p.ring.Gated() {
			t.Error("AON IO rail gated in baseline DRIPS")
		}
		if p.saSRAM.State().String() != "retention" {
			t.Errorf("SA SRAM state = %v, want retention", p.saSRAM.State())
		}
		if !p.mainTimer.Running() {
			t.Error("main timer stopped in baseline DRIPS")
		}
	})
	if _, err := p.RunCycles(workload.Fixed(1, 0, 30*sim.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestExternalAndThermalWakes(t *testing.T) {
	for _, tech := range []Technique{0, ODRIPS} {
		p, err := New(DefaultConfig().WithTechniques(tech))
		if err != nil {
			t.Fatal(err)
		}
		cycles := []workload.Cycle{
			{Idle: 5 * sim.Second, Wake: workload.WakeExternal},
			{Idle: 5 * sim.Second, Wake: workload.WakeThermal},
			{Idle: 5 * sim.Second, Wake: workload.WakeTimer},
		}
		res, err := p.RunCycles(cycles)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if res.WakeCounts["external"] != 1 || res.WakeCounts["thermal"] != 1 || res.WakeCounts["timer"] != 1 {
			t.Errorf("%v: wake counts = %v", tech, res.WakeCounts)
		}
	}
}

func TestTNTEGatingPreventsShortDRIPS(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1 ms idle is below C10's break-even residency: the PMU must refuse
	// DRIPS and the run must complete without an entry.
	res, err := p.RunCycles(workload.Fixed(2, sim.Millisecond, sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Residency[power.Idle] != 0 {
		t.Errorf("idle residency %v despite TNTE gating", res.Residency[power.Idle])
	}
	if p.flowStats.entries != 0 {
		t.Errorf("%d DRIPS entries despite 1 ms TNTE", p.flowStats.entries)
	}
}

func TestForceDeepestOverridesGating(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ForceDeepest = true
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCycles(workload.Fixed(2, sim.Millisecond, 2*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if p.flowStats.entries != 2 {
		t.Errorf("entries = %d, want 2", p.flowStats.entries)
	}
	if res.Residency[power.Idle] <= 0 {
		t.Error("no idle residency under ForceDeepest")
	}
}

func TestTimerPrecisionAcrossRun(t *testing.T) {
	for _, tech := range []Technique{0, ODRIPS} {
		_, res := runFixed(t, DefaultConfig().WithTechniques(tech), 3)
		// §4.1.3 targets 1 ppb from Step quantization; hand-over floor
		// copies add at most a couple of counts per cycle.
		if res.TimerDriftPPB > 5 {
			t.Errorf("%v: timer drift = %.2f ppb", tech, res.TimerDriftPPB)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	_, res := runFixed(t, ODRIPSConfig(), 2)
	var sumJ float64
	for _, st := range power.States() {
		sumJ += res.StateEnergyJ[st]
	}
	fromAvg := res.AvgPowerMW * 1e-3 * res.Duration.Seconds()
	if math.Abs(sumJ-fromAvg) > 1e-9+fromAvg*1e-9 {
		t.Errorf("state energies %.9f J vs average-derived %.9f J", sumJ, fromAvg)
	}
	// Per-component idle energy must add up to the Idle state energy.
	var idleJ float64
	for _, j := range res.IdleByComponent {
		idleJ += j
	}
	if math.Abs(idleJ-res.StateEnergyJ[power.Idle]) > 1e-9+idleJ*1e-9 {
		t.Errorf("idle component sum %.9f J vs idle state %.9f J", idleJ, res.StateEnergyJ[power.Idle])
	}
}

func TestIdleBreakdownShares(t *testing.T) {
	// Fig. 1(b): processor ~18% of DRIPS power; AON IO ~7%; S/R SRAM ~9%.
	_, res := runFixed(t, DefaultConfig(), 3)
	var total float64
	for _, j := range res.IdleByComponent {
		total += j
	}
	share := func(names ...string) float64 {
		var j float64
		for _, n := range names {
			j += res.IdleByComponent[n]
		}
		return 100 * j / total
	}
	proc := share("proc.compute", "proc.sa", "proc.wake-timer", "proc.pmu",
		"proc.aonio", "proc.sram.sa", "proc.sram.compute", "proc.sram.boot")
	if math.Abs(proc-18) > 1.5 {
		t.Errorf("processor share = %.1f%%, want ~18%%", proc)
	}
	if got := share("proc.aonio"); math.Abs(got-7) > 1 {
		t.Errorf("AON IO share = %.1f%%, want ~7%%", got)
	}
	if got := share("proc.sram.sa", "proc.sram.compute"); math.Abs(got-9) > 1 {
		t.Errorf("S/R SRAM share = %.1f%%, want ~9%%", got)
	}
	if got := share("board.xtal24"); math.Abs(got-4) > 1 {
		t.Errorf("24 MHz crystal share = %.1f%%, want ~4%%", got)
	}
}

func TestDRAMTamperDuringIdleDetectedAtExit(t *testing.T) {
	p, err := New(ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A physical attacker wakes the DRAM mid-idle and corrupts one byte
	// of the protected context region. The MEE must refuse the restore.
	p.Scheduler().At(p.Scheduler().Now().Add(10*sim.Second), "attack", func() {
		if err := p.mem.SetState(dram.Active); err != nil {
			t.Fatal(err)
		}
		addr := p.ctxRegion.Base + 3*dram.BlockSize
		blk, err := p.mem.Read(addr, dram.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		blk[7] ^= 0xFF
		if err := p.mem.Write(addr, blk); err != nil {
			t.Fatal(err)
		}
		if err := p.mem.SetState(dram.SelfRefresh); err != nil {
			t.Fatal(err)
		}
	})
	_, err = p.RunCycles(workload.Fixed(1, 0, 30*sim.Second))
	if err == nil {
		t.Fatal("tampered context restored without error")
	}
	if !strings.Contains(err.Error(), "integrity") && !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPCMVariant(t *testing.T) {
	cfg := ODRIPSConfig()
	cfg.MainMemory = dram.PCM
	p, res := runFixed(t, cfg, 2)
	_, base := runFixed(t, DefaultConfig(), 2)
	red := 100 * (base.AvgPowerMW - res.AvgPowerMW) / base.AvgPowerMW
	// §8.3: PCM reduces baseline average power by ~37%.
	if math.Abs(red-37) > 1.5 {
		t.Errorf("ODRIPS-PCM reduction = %.1f%%, paper says 37%%", red)
	}
	// PCM context writes are slower than DRAM writes.
	if res.CtxSave <= 50*sim.Microsecond {
		t.Errorf("PCM context save = %v, expected well above DRAM's ~19us", res.CtxSave)
	}
	_ = p
}

func TestMRAMVariant(t *testing.T) {
	cfg := DefaultConfig().WithTechniques(WakeUpOff | AONIOGate)
	cfg.CtxInEMRAM = true
	_, res := runFixed(t, cfg, 2)
	_, odrips := runFixed(t, ODRIPSConfig(), 2)
	_, base := runFixed(t, DefaultConfig(), 2)
	// §8.3: slightly lower average power than ODRIPS, lowest break-even.
	if res.AvgPowerMW > odrips.AvgPowerMW {
		t.Errorf("ODRIPS-MRAM avg %.3f mW not below ODRIPS %.3f mW", res.AvgPowerMW, odrips.AvgPowerMW)
	}
	beM, err := power.BreakEven(base.CycleEnergy, res.CycleEnergy)
	if err != nil {
		t.Fatal(err)
	}
	beO, err := power.BreakEven(base.CycleEnergy, odrips.CycleEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if beM >= beO {
		t.Errorf("MRAM break-even %v not below ODRIPS %v", beM, beO)
	}
}

func TestCoreFrequencySweepShape(t *testing.T) {
	avg := func(mhz int) float64 {
		cfg := ODRIPSConfig()
		cfg.CoreFreqMHz = mhz
		_, res := runFixed(t, cfg, 2)
		return res.AvgPowerMW
	}
	a800, a1000, a1500 := avg(800), avg(1000), avg(1500)
	// §8.1: 1.0 GHz saves ~1.4%; 1.5 GHz costs ~1% vs 0.8 GHz.
	if a1000 >= a800 {
		t.Errorf("1.0 GHz (%.2f) not below 0.8 GHz (%.2f)", a1000, a800)
	}
	if a1500 <= a800 {
		t.Errorf("1.5 GHz (%.2f) not above 0.8 GHz (%.2f)", a1500, a800)
	}
	if d := 100 * (a800 - a1000) / a800; math.Abs(d-1.4) > 0.7 {
		t.Errorf("1.0 GHz saving = %.2f%%, paper says ~1.4%%", d)
	}
	if d := 100 * (a1500 - a800) / a800; math.Abs(d-1.0) > 0.7 {
		t.Errorf("1.5 GHz penalty = %.2f%%, paper says ~1%%", d)
	}
}

func TestDRAMFrequencySweepShape(t *testing.T) {
	avg := func(mtps int) (float64, sim.Duration) {
		cfg := ODRIPSConfig()
		cfg.DRAMMTps = mtps
		_, res := runFixed(t, cfg, 2)
		return res.AvgPowerMW, res.CtxSave
	}
	a1600, s1600 := avg(1600)
	a1067, s1067 := avg(1067)
	a800, s800 := avg(800)
	// §8.2: small monotone reduction; longer context transfers.
	if !(a800 < a1067 && a1067 < a1600) {
		t.Errorf("average power not monotone: %.3f, %.3f, %.3f", a1600, a1067, a800)
	}
	if d := 100 * (a1600 - a800) / a1600; d > 1.5 {
		t.Errorf("0.8 GHz saving = %.2f%%, paper says under ~1%%", d)
	}
	if !(s800 > s1067 && s1067 > s1600) {
		t.Errorf("context save latency not increasing: %v, %v, %v", s1600, s1067, s800)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		DefaultConfig().WithTechniques(AONIOGate), // needs WakeUpOff
		func() Config {
			c := ODRIPSConfig()
			c.CtxInEMRAM = true // both stores
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.CoreFreqMHz = 1200
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.DRAMMTps = 2133
			return c
		}(),
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunRequiresCycles(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunCycles(nil); err == nil {
		t.Fatal("empty run accepted")
	}
}

// Property: for random valid technique sets and wake mixes, runs complete,
// residencies sum to one, idle power never exceeds the baseline's, and
// deeper technique sets never idle hotter than shallower ones.
func TestTechniqueMonotonicityProperty(t *testing.T) {
	valid := []Technique{0, WakeUpOff, WakeUpOff | AONIOGate, CtxSGXDRAM, WakeUpOff | CtxSGXDRAM, ODRIPS}
	f := func(techSeed, wakeSeed uint8) bool {
		tech := valid[int(techSeed)%len(valid)]
		cfg := DefaultConfig().WithTechniques(tech)
		p, err := New(cfg)
		if err != nil {
			return false
		}
		wake := workload.WakeKind(int(wakeSeed) % 3)
		res, err := p.RunCycles([]workload.Cycle{{Idle: 10 * sim.Second, Wake: wake}})
		if err != nil {
			return false
		}
		var sum float64
		for _, st := range power.States() {
			sum += res.Residency[st]
		}
		if math.Abs(sum-1) > 1e-9 || res.AvgPowerMW <= 0 {
			return false
		}
		return res.IdlePowerMW() <= 60.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: idle power strictly decreases as techniques stack up.
func TestTechniqueOrdering(t *testing.T) {
	order := []Technique{0, WakeUpOff, WakeUpOff | AONIOGate, ODRIPS}
	var prev float64 = math.Inf(1)
	for _, tech := range order {
		_, res := runFixed(t, DefaultConfig().WithTechniques(tech), 1)
		if res.IdlePowerMW() >= prev {
			t.Fatalf("%v idle power %.3f not below previous %.3f", tech, res.IdlePowerMW(), prev)
		}
		prev = res.IdlePowerMW()
	}
}

func TestMaintenanceDuration(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 1.2e8 cycles at 800 MHz = 150 ms, inside the paper's 100-300 ms.
	if d := p.MaintenanceDuration(); math.Abs(d.Milliseconds()-150) > 1 {
		t.Fatalf("maintenance = %v, want 150ms", d)
	}
}

func TestTimerCounts(t *testing.T) {
	if got := TimerCounts(sim.Second); got != 24_000_000 {
		t.Fatalf("TimerCounts(1s) = %d", got)
	}
	if got := TimerCounts(30 * sim.Second); got != 720_000_000 {
		t.Fatalf("TimerCounts(30s) = %d", got)
	}
}

func BenchmarkConnectedStandbyCycle(b *testing.B) {
	p, err := New(ODRIPSConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunCycles(workload.Fixed(1, 0, 30*sim.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAnalyticModelValidation(t *testing.T) {
	// §7: the in-house Equation-1 power model validated against the
	// (simulated) measurement at ~95% accuracy or better.
	configs := []Config{
		DefaultConfig(),
		DefaultConfig().WithTechniques(WakeUpOff),
		DefaultConfig().WithTechniques(WakeUpOff | AONIOGate),
		DefaultConfig().WithTechniques(CtxSGXDRAM),
		ODRIPSConfig(),
	}
	for _, cfg := range configs {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		predictedIdle := p.AnalyticIdleMW()
		prof, err := p.AnalyticProfile(30 * sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		predictedAvg := prof.AverageMW()
		res, err := p.RunCycles(workload.Fixed(2, 0, 30*sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		if acc := 1 - math.Abs(predictedIdle-res.IdlePowerMW())/res.IdlePowerMW(); acc < 0.95 {
			t.Errorf("%s: idle model accuracy %.3f (predicted %.2f, measured %.2f)",
				cfg.Name(), acc, predictedIdle, res.IdlePowerMW())
		}
		if acc := 1 - math.Abs(predictedAvg-res.AvgPowerMW)/res.AvgPowerMW; acc < 0.95 {
			t.Errorf("%s: average model accuracy %.3f (predicted %.2f, measured %.2f)",
				cfg.Name(), acc, predictedAvg, res.AvgPowerMW)
		}
	}
}

func TestWakeRacingEntryIsNotLost(t *testing.T) {
	// An external wake that arrives while the entry flow is mid-teardown
	// must not be swallowed: the platform completes entry and exits
	// immediately instead of sleeping until the (absent) timer wake.
	for _, tech := range []Technique{0, ODRIPS} {
		p, err := New(DefaultConfig().WithTechniques(tech))
		if err != nil {
			t.Fatal(err)
		}
		// The first cycle's entry begins after the 150 ms maintenance
		// burst; inject the external wake ~100 us into the entry flow.
		inject := p.Scheduler().Now().Add(150*sim.Millisecond + 100*sim.Microsecond)
		p.Scheduler().At(inject, "racing-wake", func() {
			p.hub.ExternalWake()
		})
		// No timer wake would fire for an hour; if the racing wake were
		// lost, the run would stall (RunCycles reports it).
		res, err := p.RunCycles([]workload.Cycle{{Idle: sim.Hour, Wake: workload.WakeExternal}})
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		// The platform must have come back far before the hour elapsed.
		if res.Duration > sim.Second {
			t.Fatalf("%v: run took %v; racing wake was lost", tech, res.Duration)
		}
		if res.WakeCounts["external"] == 0 {
			t.Fatalf("%v: external wake not accounted: %v", tech, res.WakeCounts)
		}
	}
}

func TestWakeDuringExitIgnored(t *testing.T) {
	// A second wake while the exit flow is already running must be a
	// no-op (the platform is on its way to Active anyway).
	p, err := New(ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	p.Scheduler().At(p.Scheduler().Now().Add(150*sim.Millisecond+5*sim.Second+150*sim.Microsecond),
		"mid-exit-wake", func() {
			fired = true
			p.hub.ResetWakeLatch() // a genuinely new event at the hub
			p.hub.ExternalWake()
		})
	res, err := p.RunCycles([]workload.Cycle{{Idle: 5 * sim.Second, Wake: workload.WakeTimer}})
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("mid-exit wake never injected")
	}
	if res.Cycles != 1 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
}

func TestShallowIdleStates(t *testing.T) {
	// An audio stream with a 150 us buffer forbids C10 (300 us exit) and
	// C7 (110 us exit is fine, but its 0.8 ms break-even needs TNTE) —
	// the PMU should park in an intermediate state at intermediate power.
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.LTR().Update("audio", 150*sim.Microsecond)
	res, err := p.RunCycles(workload.Fixed(2, 100*sim.Millisecond, 5*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.Residency[power.Idle] != 0 {
		t.Fatal("platform reached DRIPS despite 150 us tolerance")
	}
	var shallow uint64
	for _, n := range res.ShallowIdles {
		shallow += n
	}
	if shallow != 2 {
		t.Fatalf("shallow idles = %v", res.ShallowIdles)
	}
	// Average power must sit well between the DRIPS floor and full C0:
	// parked at a few hundred mW, not 3 W, not 60 mW.
	if res.AvgPowerMW < 150 || res.AvgPowerMW > 1200 {
		t.Fatalf("shallow-idle average = %.1f mW", res.AvgPowerMW)
	}
}

func TestShallowStateDepthOrdering(t *testing.T) {
	// Tighter tolerances pin shallower states, which must cost more power.
	run := func(tol sim.Duration) float64 {
		p, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		p.LTR().Update("dev", tol)
		res, err := p.RunCycles(workload.Fixed(1, 10*sim.Millisecond, 5*sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgPowerMW
	}
	c6 := run(100 * sim.Microsecond) // allows C6
	c3 := run(50 * sim.Microsecond)  // allows C3
	c1 := run(3 * sim.Microsecond)   // allows C1 only
	if !(c6 < c3 && c3 < c1) {
		t.Fatalf("shallow power not ordered: C6=%.0f C3=%.0f C1=%.0f", c6, c3, c1)
	}
}

func TestS3Cycle(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunS3Cycle(60 * sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// S3 suspends well below the 60 mW DRIPS floor (only DRAM + EC live)…
	if res.SuspendPowerMW >= 30 || res.SuspendPowerMW <= 10 {
		t.Errorf("S3 suspend power = %.2f mW", res.SuspendPowerMW)
	}
	// …but resumes in hundreds of milliseconds, not hundreds of
	// microseconds (§9: S3 is not connected standby).
	if res.ResumeLatency < 200*sim.Millisecond {
		t.Errorf("S3 resume = %v", res.ResumeLatency)
	}
	if res.AvgPowerMW >= 60 {
		t.Errorf("S3 window average = %.2f mW", res.AvgPowerMW)
	}
	// The platform must be fully back: another normal run works.
	if _, err := p.RunCycles(workload.Fixed(1, 0, 5*sim.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestS3EntryRules(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunS3Cycle(0); err == nil {
		t.Fatal("zero-duration S3 accepted")
	}
}

func TestFlowTraceContents(t *testing.T) {
	steps := func(cfg Config) map[string][]string {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.RunCycles(workload.Fixed(1, 0, 5*sim.Second)); err != nil {
			t.Fatal(err)
		}
		out := map[string][]string{}
		for _, fs := range p.FlowTrace() {
			out[fs.Flow] = append(out[fs.Flow], fs.Step)
		}
		return out
	}
	base := steps(DefaultConfig())
	opt := steps(ODRIPSConfig())

	has := func(list []string, name string) bool {
		for _, s := range list {
			if s == name {
				return true
			}
		}
		return false
	}
	// ODRIPS entries run the technique stages baseline lacks.
	for _, want := range []string{"timer-migrate", "gate-aon-ios", "shut-fast-clock", "save-ctx-dram"} {
		if !has(opt["entry"], want) {
			t.Errorf("ODRIPS entry missing %q: %v", want, opt["entry"])
		}
		if has(base["entry"], want) {
			t.Errorf("baseline entry unexpectedly ran %q", want)
		}
	}
	if !has(base["entry"], "save-ctx-sram") {
		t.Errorf("baseline entry missing save-ctx-sram: %v", base["entry"])
	}
	for _, want := range []string{"restore-fast-timer", "release-fet", "pml-timer-return", "boot-fsm", "restore-ctx-dram"} {
		if !has(opt["exit"], want) {
			t.Errorf("ODRIPS exit missing %q: %v", want, opt["exit"])
		}
	}
	// Ordering inside the ODRIPS entry: migrate before gating before the
	// crystal shutdown (paper §4-5: migration facilitates the gating).
	idx := func(list []string, name string) int {
		for i, s := range list {
			if s == name {
				return i
			}
		}
		return -1
	}
	e := opt["entry"]
	if !(idx(e, "save-ctx-dram") < idx(e, "dram-self-refresh") &&
		idx(e, "dram-self-refresh") < idx(e, "timer-migrate") &&
		idx(e, "timer-migrate") < idx(e, "gate-aon-ios") &&
		idx(e, "gate-aon-ios") < idx(e, "shut-fast-clock")) {
		t.Errorf("ODRIPS entry order wrong: %v", e)
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical platforms over the same workload must agree bit-for-
	// bit: any hidden map-iteration or wall-clock dependence breaks the
	// reproducibility contract of the whole harness.
	run := func() Result {
		p, err := New(ODRIPSConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunCycles(workload.ConnectedStandby(5, 99))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AvgPowerMW != b.AvgPowerMW {
		t.Errorf("avg power differs: %v vs %v", a.AvgPowerMW, b.AvgPowerMW)
	}
	if a.Duration != b.Duration {
		t.Errorf("duration differs: %v vs %v", a.Duration, b.Duration)
	}
	if a.TimerDriftPPB != b.TimerDriftPPB {
		t.Errorf("drift differs: %v vs %v", a.TimerDriftPPB, b.TimerDriftPPB)
	}
	for st, j := range a.StateEnergyJ {
		if b.StateEnergyJ[st] != j {
			t.Errorf("state %v energy differs", st)
		}
	}
	for name, j := range a.IdleByComponent {
		if b.IdleByComponent[name] != j {
			t.Errorf("component %s energy differs", name)
		}
	}
}

func TestPlatformReuseAcrossRuns(t *testing.T) {
	p, err := New(ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.RunCycles(workload.Fixed(1, 0, 2*sim.Second)); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	res, err := p.RunCycles(workload.Fixed(1, 0, 2*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.CtxVerified == 0 {
		t.Fatal("context verification lost across reuse")
	}
}

func TestExtremeCrystalError(t *testing.T) {
	// ±100 ppm crystals (a badly out-of-spec board) must still keep the
	// calibrated timekeeping within a few ppb of the true fast clock.
	cfg := ODRIPSConfig()
	cfg.XtalFastPPB = 100_000
	cfg.XtalSlowPPB = -100_000
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCycles(workload.Fixed(3, 0, 30*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimerDriftPPB > 5 {
		t.Fatalf("drift with ±100ppm crystals = %.2f ppb", res.TimerDriftPPB)
	}
}

func TestPowerIndependentOfContextSeed(t *testing.T) {
	// The context *contents* must not affect energy: only sizes and flows
	// matter. (A leak here would mean data-dependent power, which the
	// model does not intend.)
	a := func(seed int64) float64 {
		cfg := ODRIPSConfig()
		cfg.Seed = seed
		_, res := runFixed(t, cfg, 1)
		return res.AvgPowerMW
	}
	if p1, p2 := a(1), a(424242); p1 != p2 {
		t.Fatalf("context seed changed power: %v vs %v", p1, p2)
	}
}

func TestConfigNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{DefaultConfig(), "Baseline"},
		{ODRIPSConfig(), "ODRIPS"},
	}
	hsw := DefaultConfig()
	hsw.Generation = GenHaswell
	cases = append(cases, struct {
		cfg  Config
		want string
	}{hsw, "Haswell Baseline"})
	pcm := ODRIPSConfig()
	pcm.MainMemory = dram.PCM
	cases = append(cases, struct {
		cfg  Config
		want string
	}{pcm, "ODRIPS-PCM"})
	for _, c := range cases {
		if got := c.cfg.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
	if GenHaswell.String() != "Haswell-ULT" || GenSkylake.String() != "Skylake" {
		t.Error("generation names wrong")
	}
}

func TestTDPValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TDPWatts = 1.0
	if _, err := New(cfg); err == nil {
		t.Fatal("1 W TDP accepted")
	}
	cfg.TDPWatts = 200
	if _, err := New(cfg); err == nil {
		t.Fatal("200 W TDP accepted")
	}
	cfg.TDPWatts = 28
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}
