package platform

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odrips/internal/faults"
)

var updateGolden = flag.Bool("update", false, "rewrite golden flow traces")

// formatTrace renders a flow trace one step per line; byte-stable because
// every field derives from integer simulation state and the deterministic
// meter (energy printed to fixed precision).
func formatTrace(trace []FlowStep) string {
	var b strings.Builder
	for _, fs := range trace {
		fmt.Fprintf(&b, "%-6s %-22s at=%-14s dur=%-12s energy=%.6fuJ\n",
			fs.Flow, fs.Step, fs.At, fs.Duration, fs.EnergyUJ)
	}
	return b.String()
}

// diffTraces reports the first lines where two rendered traces disagree,
// with surrounding context, so a golden failure reads as a step-level diff.
func diffTraces(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	n := len(g)
	if len(w) > n {
		n = len(w)
	}
	var b strings.Builder
	reported := 0
	for i := 0; i < n && reported < 8; i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl == wl {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  got:  %s\n  want: %s\n", i+1, gl, wl)
		reported++
	}
	if reported == 8 {
		b.WriteString("(further differences elided)\n")
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("trace differs from %s:\n%s", path, diffTraces(got, string(want)))
	}
}

// goldenRun executes 3 cycles with the plan installed and returns the
// rendered trace and the result.
func goldenRun(t *testing.T, cfg Config, plan string) (string, Result) {
	t.Helper()
	p, res := runFaulted(t, cfg, plan, 3)
	return formatTrace(p.FlowTrace()), res
}

// TestGoldenFaultFree pins the unfaulted ODRIPS and baseline traces; every
// other golden in this file must reduce to these when its plan is removed.
func TestGoldenFaultFree(t *testing.T) {
	for name, cfg := range map[string]Config{
		"clean-odrips":   ODRIPSConfig(),
		"clean-baseline": DefaultConfig(),
	} {
		got, _ := goldenRun(t, cfg, "")
		checkGolden(t, name, got)
	}
}

// TestGoldenAbortAtEveryEntryStep pins the rollback sequence for a wake
// injected at each step index of the ODRIPS entry flow. Early steps unwind
// progressively deeper; wakes after the timer hand-over quantize to a
// 32 kHz edge and may resolve as ordinary early wakes instead.
func TestGoldenAbortAtEveryEntryStep(t *testing.T) {
	for step := 0; step <= 8; step++ {
		plan := faults.Plan{Injections: []faults.Injection{
			{Kind: faults.WakeDuringEntry, Cycle: 1, Step: step},
		}}
		got, res := goldenRun(t, ODRIPSConfig(), plan.String())
		if res.Faults.Fired != 1 {
			t.Errorf("step %d: fired = %d, want 1", step, res.Faults.Fired)
		}
		checkGolden(t, fmt.Sprintf("abort-entry-step%d", step), got)
	}
}

// TestGoldenAbortBaselineEntry pins the shallower baseline rollback (no
// timer migration or FET gating to unwind).
func TestGoldenAbortBaselineEntry(t *testing.T) {
	for _, step := range []int{0, 3, 5} {
		plan := faults.Plan{Injections: []faults.Injection{
			{Kind: faults.WakeDuringEntry, Cycle: 1, Step: step},
		}}
		got, res := goldenRun(t, DefaultConfig(), plan.String())
		if res.Faults.Fired != 1 {
			t.Errorf("step %d: fired = %d, want 1", step, res.Faults.Fired)
		}
		checkGolden(t, fmt.Sprintf("abort-baseline-step%d", step), got)
	}
}

// TestGoldenWakeAtEveryExitStep pins the absorbed-wake traces: the chipset
// wake latch is already consumed during exit, so the flow is undisturbed
// and only the marker distinguishes the trace.
func TestGoldenWakeAtEveryExitStep(t *testing.T) {
	for step := 0; step <= 9; step++ {
		plan := faults.Plan{Injections: []faults.Injection{
			{Kind: faults.WakeDuringExit, Cycle: 1, Step: step},
		}}
		got, res := goldenRun(t, ODRIPSConfig(), plan.String())
		if res.Faults.Fired != 1 {
			t.Errorf("step %d: fired = %d, want 1", step, res.Faults.Fired)
		}
		checkGolden(t, fmt.Sprintf("wakex-exit-step%d", step), got)
	}
}

// TestGoldenRecoveryEdges pins one trace per recovery edge.
func TestGoldenRecoveryEdges(t *testing.T) {
	emram := ODRIPSConfig()
	emram.Techniques &^= CtxSGXDRAM
	emram.CtxInEMRAM = true
	cases := []struct {
		name string
		cfg  Config
		plan string
	}{
		{"meefail-transient", ODRIPSConfig(), "meefail@1"},
		{"meefail-persistent", ODRIPSConfig(), "meefail@1:1"},
		{"meefail-emram", emram, "meefail@1:1"},
		{"bitflip-degrade", ODRIPSConfig(), "bitflip@1:12345"},
		{"drift-recalibrate", ODRIPSConfig(), "drift@1:1000000"},
		{"fetglitch-retry", ODRIPSConfig(), "fetglitch@1"},
	}
	for _, c := range cases {
		got, res := goldenRun(t, c.cfg, c.plan)
		if res.Faults.Fired != 1 {
			t.Errorf("%s: fired = %d, want 1", c.name, res.Faults.Fired)
		}
		checkGolden(t, c.name, got)
	}
}

// TestGoldenTracesAreFresh re-renders every golden scenario and requires
// the second run to be byte-identical — the determinism the files pin is
// only meaningful if a re-run reproduces them in-process too.
func TestGoldenTracesAreFresh(t *testing.T) {
	plan := "wake@1.3;meefail@2"
	p1, _ := runFaulted(t, ODRIPSConfig(), plan, 3)
	p2, _ := runFaulted(t, ODRIPSConfig(), plan, 3)
	a, b := formatTrace(p1.FlowTrace()), formatTrace(p2.FlowTrace())
	if a != b {
		t.Fatalf("repeat render diverged:\n%s", diffTraces(a, b))
	}
}

// Keep the ring-buffer cap out of golden territory: 3 cycles of the
// busiest scenario must fit in the trace window, or the goldens would
// silently pin a truncated prefix.
func TestGoldenTracesFitTraceCap(t *testing.T) {
	p, _ := runFaulted(t, ODRIPSConfig(), "wake@1.0;meefail@2:1", 3)
	if n := len(p.FlowTrace()); n >= flowTraceCap {
		t.Fatalf("trace hit the %d-step cap (%d steps): shorten golden runs", flowTraceCap, n)
	}
}
