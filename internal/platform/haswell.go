package platform

import "odrips/internal/sim"

// Generation selects the modeled silicon generation. The paper's power
// model is built by measuring Haswell-ULT (22 nm, Lynx Point-LP chipset,
// baseline DRIPS only, ~3 ms C10 exit) and scaling to Skylake (14 nm) with
// per-component process factors (§7, steps 1–2).
type Generation int

const (
	// GenSkylake is the 14 nm target platform (default).
	GenSkylake Generation = iota
	// GenHaswell is the 22 nm baseline platform used for measurement.
	GenHaswell
)

// String names the generation.
func (g Generation) String() string {
	if g == GenHaswell {
		return "Haswell-ULT"
	}
	return "Skylake"
}

// Process scaling factors from 22 nm to 14 nm, in the style of the
// Stillmaker–Baas scaling equations the paper cites [79]: leakage-dominated
// structures improve more than dynamic logic across this node transition.
const (
	// LeakageScale22to14 divides a 22 nm leakage draw to get 14 nm.
	LeakageScale22to14 = 1.65
	// DynamicScale22to14 divides a 22 nm dynamic draw to get 14 nm.
	DynamicScale22to14 = 1.30
)

// Haswell returns the 22 nm budget, constructed from the Skylake table by
// inverting the §7 process scaling: on-die leakage components grow by
// LeakageScale22to14, clocked logic by DynamicScale22to14, and board-level
// consumers (crystals, DRAM, EC) stay put. Transition latencies revert to
// the Haswell-ULT values the paper quotes: C10 exit ~3 ms, dominated by
// voltage-regulator re-initialization (§3).
func Haswell() Budget {
	b := Skylake()

	// On-die leakage-dominated draws (processor + chipset AON).
	b.WakeTimerIdleMW *= LeakageScale22to14
	b.PMUAonIdleMW *= LeakageScale22to14
	b.PMUActiveMW *= DynamicScale22to14
	b.ChipsetAonIdleMW *= LeakageScale22to14
	b.ChipsetAonBusyMW *= DynamicScale22to14
	// Clocked wake monitoring is dynamic-dominated.
	b.MonitorFastMW *= DynamicScale22to14
	b.MonitorSlowMW *= DynamicScale22to14
	b.WakeTimerActiveMW *= DynamicScale22to14
	b.TrailerSAMW *= DynamicScale22to14

	// The older platform's always-on regulators are also less refined.
	b.VRFixedMW *= 1.15
	b.VRAonIOMW *= 1.15
	b.VRSramMW *= 1.15
	b.VRPmuMW *= 1.15
	b.VRPmuShedMW *= 1.15
	b.EffIdle = 0.72 // slightly worse delivery in DRIPS

	// Active-state targets: 22 nm burns more for the same work.
	for f, mw := range b.C0TargetMW {
		b.C0TargetMW[f] = mw * 1.25
	}
	b.EntryTargetMW *= 1.2
	b.ExitTargetMW *= 1.2
	for i, mw := range b.ShallowTargetMW {
		b.ShallowTargetMW[i] = mw * 1.25
	}

	// Haswell-ULT's C10 exit is ~3 ms (§3), dominated by VR re-init; the
	// paper notes Skylake cut that to a few hundred microseconds.
	b.VROn = 2500 * sim.Microsecond
	b.ExitFirmware = 400 * sim.Microsecond
	b.EntryFirmware = 250 * sim.Microsecond

	// ProcessLeakageScale is applied by the platform to the draws pushed
	// by the self-reporting leakage components (retention SRAMs, AON IO
	// ring), which compute their Skylake-process values internally.
	b.ProcessLeakageScale = LeakageScale22to14
	return b
}

// ComponentScaleTo14nm returns the §7 step-2 projection factor for one
// meter component when scaling a Haswell measurement to Skylake: divide
// the measured draw by the returned value.
func ComponentScaleTo14nm(name string) float64 {
	switch name {
	case "proc.sram.sa", "proc.sram.compute", "proc.sram.boot",
		"proc.aonio", "proc.pmu", "proc.wake-timer", "chipset.aon":
		return LeakageScale22to14
	case "chipset.monitor":
		return DynamicScale22to14
	case "vr.fixed", "vr.aonio", "vr.sram", "vr.pmu":
		return 1.15
	default:
		// Board-level consumers: crystals, DRAM, EC, FET.
		return 1.0
	}
}
