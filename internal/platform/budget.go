package platform

import (
	"odrips/internal/sim"
)

// Budget is the calibrated Skylake-class power and latency table. Absolute
// values are anchored to every number the paper publishes: ~60 mW DRIPS
// platform power at 30 °C (Fig. 1(b)), the 18/7/9/5% component shares, 74%
// power-delivery efficiency in DRIPS (footnote 5), ~3 W active power with
// display off (Fig. 2), 200 µs entry / 300 µs exit (§7), and the §8
// break-even residencies. See DESIGN.md §5 for the derivation.
type Budget struct {
	// Power-delivery efficiency per phase.
	EffActive     float64
	EffTransition float64
	EffIdle       float64

	// Nominal draws (mW, at the component, behind the regulators).
	WakeTimerIdleMW   float64 // PMU wake monitor + main-timer toggling
	WakeTimerActiveMW float64
	PMUAonIdleMW      float64 // ungated PMU remainder + CKE drivers
	PMUAonGatedMW     float64 // ODRIPS residual (Boot SRAM periphery, FET sense)
	PMUAonGatedPCMMW  float64 // PCM drops the CKE drivers too
	PMUActiveMW       float64
	Xtal24MW          float64 // board crystal draw while on
	Xtal32MW          float64
	ChipsetAonIdleMW  float64
	ChipsetAonBusyMW  float64
	MonitorFastMW     float64 // chipset wake monitoring clocked at 24 MHz
	MonitorSlowMW     float64 // same function at 32.768 kHz (+ slow timer)
	BoardMiscIdleMW   float64 // EC and other board consumers
	BoardMiscBusyMW   float64
	TrailerSAMW       float64 // residual SA/firmware draw in hand-over waits

	// Regulator quiescent draws (mW, directly at the battery).
	VRFixedMW   float64 // always-on regulators that never shed
	VRAonIOMW   float64 // the AON IO rail's regulator (off when FET gates)
	VRSramMW    float64 // the retention rail's regulator (off when SRAMs off)
	VRPmuMW     float64 // wake/PMU rail; partially shed by WAKE-UP-OFF
	VRPmuShedMW float64 // what remains of VRPmuMW after WAKE-UP-OFF

	// Battery-level power targets used to derive the big active draws.
	C0TargetMW    map[int]float64 // per core frequency (MHz)
	EntryTargetMW float64
	ExitTargetMW  float64
	// ShallowTargetMW is the platform battery power while parked in a
	// shallow runtime-idle state (C1–C8) when LTR or TNTE forbids DRIPS.
	// Keyed by C-state index.
	ShallowTargetMW map[int]float64

	// Maintenance workload (§7): fixed cycle count, so duration scales
	// inversely with core frequency; memory rate adds a small slowdown.
	MaintenanceCycles   float64
	MaintSlowdownByMTps map[int]float64

	// Flow latencies.
	EntryFirmware    sim.Duration
	ExitFirmware     sim.Duration
	VRComputeOff     sim.Duration
	VROn             sim.Duration
	SelfRefreshEnter sim.Duration
	SelfRefreshExit  sim.Duration
	FETSlew          sim.Duration
	Xtal24Startup    sim.Duration
	PMLCycles        uint64
	BootFSMLatency   sim.Duration

	// Per-technique exit re-initialization work (PLL relock, IO retrain,
	// MEE pipeline bring-up) charged at exit power. These constants are
	// the calibrated counterpart of the paper's measured break-even
	// residencies (6.6/6.3/7.4/6.5 ms).
	ReinitWake  sim.Duration
	ReinitAONIO sim.Duration
	ReinitCtx   sim.Duration
	ReinitMRAM  sim.Duration

	// Recovery-edge constants (fault plane, DESIGN.md §10). CtxRebuild is
	// the OS context re-initialization charged when repeated restore
	// verification failures force degradation to retention SRAM; a drift
	// excursion beyond DriftRecalPPB detected by the exit flow's Step
	// cross-check triggers a recalibration costing RecalWindow.
	CtxRebuild    sim.Duration
	DriftRecalPPB int64
	RecalWindow   sim.Duration

	// LLC flush model.
	LLCBytes         int
	LLCDirtyFraction float64

	// SRAM geometry (bytes). SA + compute = the ~200 KB context budget.
	SASRAMBytes      int
	ComputeSRAMBytes int

	// eMRAM port bandwidth for the ODRIPS-MRAM variant (bytes/s).
	EMRAMPortBW float64

	// DRAMActiveRefMW is the reference (DDR3L-1600) active-standby draw
	// used when backing compute draws out of the battery targets, so that
	// real DRAM-rate scaling shows through in the totals instead of being
	// re-absorbed by the derivation.
	DRAMActiveRefMW float64

	// ProcessLeakageScale multiplies the draws pushed by self-reporting
	// leakage components (retention SRAMs, AON IO ring), which compute
	// Skylake-process values internally. 1.0 for Skylake; the Haswell
	// budget sets the 22 nm factor.
	ProcessLeakageScale float64
}

// Skylake returns the calibrated budget.
func Skylake() Budget {
	return Budget{
		EffActive:     0.85,
		EffTransition: 0.80,
		EffIdle:       0.74,

		WakeTimerIdleMW:   0.444,
		WakeTimerActiveMW: 0.5,
		PMUAonIdleMW:      0.444,
		PMUAonGatedMW:     0.148,
		PMUAonGatedPCMMW:  0.050,
		PMUActiveMW:       2.0,
		Xtal24MW:          1.776,
		Xtal32MW:          0.111,
		ChipsetAonIdleMW:  7.03,
		ChipsetAonBusyMW:  150,
		MonitorFastMW:     0.962,
		MonitorSlowMW:     0.037,
		BoardMiscIdleMW:   7.215,
		BoardMiscBusyMW:   30,
		TrailerSAMW:       70,

		VRFixedMW:   6.85,
		VRAonIOMW:   1.2,
		VRSramMW:    0.6,
		VRPmuMW:     0.65,
		VRPmuShedMW: 0.15,

		C0TargetMW:    map[int]float64{800: 3000, 1000: 3535, 1500: 5795},
		EntryTargetMW: 1000,
		ExitTargetMW:  1500,
		ShallowTargetMW: map[int]float64{
			1: 1500, 3: 900, 6: 500, 7: 350, 8: 200,
		},

		MaintenanceCycles:   1.2e8,
		MaintSlowdownByMTps: map[int]float64{1600: 1.0, 1067: 1.010, 800: 1.020},

		EntryFirmware:    120 * sim.Microsecond,
		ExitFirmware:     100 * sim.Microsecond,
		VRComputeOff:     20 * sim.Microsecond,
		VROn:             150 * sim.Microsecond,
		SelfRefreshEnter: 2 * sim.Microsecond,
		SelfRefreshExit:  5 * sim.Microsecond,
		FETSlew:          5 * sim.Microsecond,
		Xtal24Startup:    10 * sim.Microsecond,
		PMLCycles:        16,
		BootFSMLatency:   2 * sim.Microsecond,

		ReinitWake:  17 * sim.Microsecond,
		ReinitAONIO: 20 * sim.Microsecond,
		ReinitCtx:   10 * sim.Microsecond,
		ReinitMRAM:  3 * sim.Microsecond,

		CtxRebuild:    250 * sim.Microsecond,
		DriftRecalPPB: 20_000,
		RecalWindow:   500 * sim.Microsecond,

		LLCBytes:         3 << 20,
		LLCDirtyFraction: 0.10,

		SASRAMBytes:      120 << 10,
		ComputeSRAMBytes: 81 << 10,

		EMRAMPortBW: 24e9,

		DRAMActiveRefMW: 280,

		ProcessLeakageScale: 1.0,
	}
}

// sumFixedActiveMW adds the delivered draws that are independent of the
// compute load in a given phase; used to back out the compute draw from
// the battery-level target.
func (b Budget) computeDrawForTarget(targetBatteryMW, eff float64, otherDeliveredMW, directMW float64) float64 {
	nominal := (targetBatteryMW-directMW)*eff - otherDeliveredMW
	if nominal < 0 {
		return 0
	}
	return nominal
}
