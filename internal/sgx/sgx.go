// Package sgx models the memory-controller side of the protected-memory
// plumbing of §6.2: the processor-reserved memory range registers
// (Context/SGX RR in Fig. 4) that classify physical addresses, and the
// allocation of the small context region inside the protected range.
package sgx

import (
	"fmt"

	"odrips/internal/dram"
)

// Range is a physical address range [Base, Base+Size).
type Range struct {
	Base uint64
	Size uint64
}

// Contains reports whether addr falls inside the range.
func (r Range) Contains(addr uint64) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// Overlaps reports whether two ranges intersect.
func (r Range) Overlaps(o Range) bool {
	return r.Base < o.Base+o.Size && o.Base < r.Base+r.Size
}

// End returns the first address after the range.
func (r Range) End() uint64 { return r.Base + r.Size }

// RangeRegisters is the protected-range classification logic in the memory
// controller: accesses inside a protected range must be routed through the
// MEE; everything else goes straight to DRAM.
type RangeRegisters struct {
	prmrr  Range   // processor-reserved (SGX) memory range
	ranges []Range // sub-ranges in use (context region, enclave pages, ...)
}

// NewRangeRegisters reserves the PRMRR at the top of memory with the given
// size (64 MB or 128 MB in deployed SGX systems, §6.3).
func NewRangeRegisters(capacityBytes, prmrrSize uint64) (*RangeRegisters, error) {
	if prmrrSize == 0 || prmrrSize%dram.BlockSize != 0 {
		return nil, fmt.Errorf("sgx: invalid PRMRR size %d", prmrrSize)
	}
	if prmrrSize > capacityBytes {
		return nil, fmt.Errorf("sgx: PRMRR size %d exceeds memory capacity %d", prmrrSize, capacityBytes)
	}
	base := capacityBytes - prmrrSize
	base -= base % dram.BlockSize
	return &RangeRegisters{prmrr: Range{Base: base, Size: prmrrSize}}, nil
}

// PRMRR returns the processor-reserved memory range.
func (rr *RangeRegisters) PRMRR() Range { return rr.prmrr }

// Protected reports whether an access to addr must be routed via the MEE.
func (rr *RangeRegisters) Protected(addr uint64) bool { return rr.prmrr.Contains(addr) }

// Allocate reserves size bytes inside the PRMRR and returns the sub-range.
// Allocation is a simple bump within the reserved range; the context region
// of §6.2 needs at most ~270 KB (200 KB data + tree metadata), under 0.3%
// of a 128 MB PRMRR.
func (rr *RangeRegisters) Allocate(size uint64) (Range, error) {
	if size == 0 {
		return Range{}, fmt.Errorf("sgx: zero-size allocation")
	}
	size = (size + dram.BlockSize - 1) / dram.BlockSize * dram.BlockSize
	next := rr.prmrr.Base
	for _, r := range rr.ranges {
		if r.End() > next {
			next = r.End()
		}
	}
	alloc := Range{Base: next, Size: size}
	if alloc.End() > rr.prmrr.End() {
		return Range{}, fmt.Errorf("sgx: PRMRR exhausted: need %d bytes, %d free", size, rr.prmrr.End()-next)
	}
	rr.ranges = append(rr.ranges, alloc)
	return alloc, nil
}

// Allocations returns the allocated sub-ranges.
func (rr *RangeRegisters) Allocations() []Range {
	return append([]Range(nil), rr.ranges...)
}
