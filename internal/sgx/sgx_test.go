package sgx

import (
	"testing"
	"testing/quick"
)

func TestPRMRRPlacement(t *testing.T) {
	rr, err := NewRangeRegisters(8<<30, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	p := rr.PRMRR()
	if p.Size != 128<<20 {
		t.Fatalf("PRMRR size = %d", p.Size)
	}
	if p.End() != 8<<30 {
		t.Fatalf("PRMRR not at top of memory: end = %#x", p.End())
	}
	if !rr.Protected(p.Base) || !rr.Protected(p.End()-1) {
		t.Fatal("PRMRR interior not protected")
	}
	if rr.Protected(p.Base-1) || rr.Protected(0) {
		t.Fatal("outside PRMRR reported protected")
	}
}

func TestBadPRMRR(t *testing.T) {
	if _, err := NewRangeRegisters(8<<30, 0); err == nil {
		t.Fatal("zero PRMRR accepted")
	}
	if _, err := NewRangeRegisters(8<<30, 63); err == nil {
		t.Fatal("unaligned PRMRR accepted")
	}
	if _, err := NewRangeRegisters(1<<20, 2<<20); err == nil {
		t.Fatal("oversized PRMRR accepted")
	}
}

func TestAllocate(t *testing.T) {
	rr, err := NewRangeRegisters(8<<30, 128<<20)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's context region: ~270 KB for 200 KB of data + metadata.
	ctx, err := rr.Allocate(270 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Base != rr.PRMRR().Base {
		t.Fatalf("first allocation not at PRMRR base: %#x", ctx.Base)
	}
	if ctx.Size%64 != 0 {
		t.Fatalf("allocation not block-aligned: %d", ctx.Size)
	}
	// Under 0.3% of the PRMRR (§6.3).
	if frac := float64(ctx.Size) / float64(rr.PRMRR().Size); frac > 0.003 {
		t.Fatalf("context uses %.4f of PRMRR, want < 0.003", frac)
	}
	second, err := rr.Allocate(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if second.Overlaps(ctx) {
		t.Fatal("allocations overlap")
	}
	if len(rr.Allocations()) != 2 {
		t.Fatal("allocation bookkeeping wrong")
	}
}

func TestAllocateExhaustion(t *testing.T) {
	rr, err := NewRangeRegisters(1<<30, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Allocate(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Allocate(64); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if _, err := rr.Allocate(0); err == nil {
		t.Fatal("zero allocation accepted")
	}
}

func TestRangeOps(t *testing.T) {
	a := Range{Base: 100, Size: 50}
	b := Range{Base: 149, Size: 10}
	c := Range{Base: 150, Size: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("adjacent-overlapping ranges not detected")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("disjoint ranges reported overlapping")
	}
	if !a.Contains(100) || !a.Contains(149) || a.Contains(150) || a.Contains(99) {
		t.Fatal("Contains boundary wrong")
	}
}

// Property: every allocated byte is inside the PRMRR and allocations never
// overlap pairwise.
func TestAllocationDisjointProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		rr, err := NewRangeRegisters(8<<30, 16<<20)
		if err != nil {
			return false
		}
		var got []Range
		for _, s := range sizes {
			r, err := rr.Allocate(uint64(s) + 1)
			if err != nil {
				continue // exhausted is fine
			}
			got = append(got, r)
		}
		for i, a := range got {
			if !rr.PRMRR().Contains(a.Base) || a.End() > rr.PRMRR().End() {
				return false
			}
			for _, b := range got[i+1:] {
				if a.Overlaps(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
