package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicGetPut(t *testing.T) {
	c := New[string, int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v want 1,true", v, ok)
	}
	c.Put("a", 10) // overwrite
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("Get(a) after overwrite = %d want 10", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d want 2", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 2 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEvictionOrder pins strict LRU: the least recently touched key (by
// Get or Put) is the one evicted, deterministically.
func TestEvictionOrder(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	c.Get(1)    // order now (MRU) 1 3 2 (LRU)
	c.Put(4, 4) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d should have survived", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d want 1", st.Evictions)
	}

	// Single-entry cache: every new key evicts the previous one.
	c1 := New[int, int](1)
	for i := 0; i < 10; i++ {
		c1.Put(i, i)
	}
	if c1.Len() != 1 {
		t.Fatalf("cap-1 Len = %d want 1", c1.Len())
	}
	if v, ok := c1.Get(9); !ok || v != 9 {
		t.Fatalf("cap-1 kept %d,%v want 9,true", v, ok)
	}
	if st := c1.Stats(); st.Evictions != 9 {
		t.Fatalf("cap-1 evictions = %d want 9", st.Evictions)
	}
}

func TestReset(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 8; i++ {
		c.Put(i, i)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats after Reset = %+v", st)
	}
	c.Put(1, 1)
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Fatalf("cache unusable after Reset: %d,%v", v, ok)
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int, int](0)
}

// TestConcurrent hammers one cache from many goroutines under -race: the
// memo planes share caches across fleet shards, so the mutex discipline is
// part of the contract.
func TestConcurrent(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%100)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Errorf("impossible value %d", v)
				}
				c.Put(k, i)
				if i%17 == 0 {
					c.Len()
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d exceeds capacity 64", c.Len())
	}
}

// TestPutEvictionReturn pins the victim-reporting contract of Put and the
// non-observing reads (Peek, Keys).
func TestPutEvictionReturn(t *testing.T) {
	c := New[int, string](2)
	if _, _, ev := c.Put(1, "a"); ev {
		t.Fatal("eviction reported below capacity")
	}
	c.Put(2, "b")
	k, v, ev := c.Put(3, "c") // evicts 1 (LRU)
	if !ev || k != 1 || v != "a" {
		t.Fatalf("victim = %d,%q,%v want 1,a,true", k, v, ev)
	}
	if _, _, ev := c.Put(2, "b2"); ev {
		t.Fatal("overwrite reported an eviction")
	}

	before := c.Stats()
	if v, ok := c.Peek(2); !ok || v != "b2" {
		t.Fatalf("Peek(2) = %q,%v", v, ok)
	}
	if _, ok := c.Peek(99); ok {
		t.Fatal("Peek hit a missing key")
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != 2 || keys[1] != 3 {
		t.Fatalf("Keys = %v want [2 3] (MRU first)", keys)
	}
	if after := c.Stats(); after != before {
		t.Fatalf("Peek/Keys moved counters: %+v -> %+v", before, after)
	}
}
