// Package lru is a mutex-guarded, bounded, metrics-instrumented LRU
// cache for the simulator's memo layers. The memoized values are pure —
// a hit is bit-identical to a recompute — so eviction can only ever cost
// time, never correctness, which is what makes bounding the previously
// unbounded memo maps safe: a fleet-scale run that streams millions of
// distinct keys through a memo now stays O(capacity) in memory and the
// counters say how well the bound fits the working set.
//
// Eviction is strict least-recently-used over Get/Put touches, so for a
// deterministic access sequence the evicted set is deterministic too (a
// property the fleet engine's memo-rate accounting relies on).
package lru

import "sync"

// Stats counts cache outcomes since construction (or the last Reset).
type Stats struct {
	Hits      uint64 `json:"hits"`      // Get found the key
	Misses    uint64 `json:"misses"`    // Get did not
	Puts      uint64 `json:"puts"`      // values inserted (not counting overwrites of a key)
	Evictions uint64 `json:"evictions"` // entries dropped to respect the capacity bound
}

// Cache is a bounded LRU map. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	m     map[K]*node[K, V]
	head  *node[K, V] // most recently used
	tail  *node[K, V] // least recently used
	stats Stats
}

type node[K comparable, V any] struct {
	key        K
	val        V
	prev, next *node[K, V]
}

// New creates a cache bounded to capacity entries. capacity < 1 panics:
// an unbounded memo is exactly what this package exists to replace, so
// asking for one is a caller bug, not a mode.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		panic("lru: capacity must be at least 1")
	}
	return &Cache[K, V]{cap: capacity, m: make(map[K]*node[K, V])}
}

// Get returns the value cached for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.m[key]
	if !ok {
		c.stats.Misses++
		var zero V
		return zero, false
	}
	c.stats.Hits++
	c.touch(n)
	return n.val, true
}

// Put caches value under key (overwriting any previous value), marking it
// most recently used and evicting the least recently used entry if the
// cache is over capacity. When an eviction happens, the dropped pair is
// returned with evicted=true so owners with teardown duties (the memo
// plane flushing a dirty bundle to disk) can act on the victim.
func (c *Cache[K, V]) Put(key K, value V) (victimKey K, victimVal V, evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.m[key]; ok {
		n.val = value
		c.touch(n)
		return victimKey, victimVal, false
	}
	c.stats.Puts++
	n := &node[K, V]{key: key, val: value}
	c.m[key] = n
	c.push(n)
	if len(c.m) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.stats.Evictions++
		return lru.key, lru.val, true
	}
	return victimKey, victimVal, false
}

// Peek returns the value cached for key without touching recency or
// counters — an observation, not a use. Owners iterating for maintenance
// (flushing dirty entries) use it so bookkeeping reads don't distort the
// eviction order or the hit-rate statistics.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Keys returns the cached keys from most to least recently used. Like
// Peek it leaves recency and counters untouched.
func (c *Cache[K, V]) Keys() []K {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]K, 0, len(c.m))
	for n := c.head; n != nil; n = n.next {
		keys = append(keys, n.key)
	}
	return keys
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Cap returns the capacity bound.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Stats returns a snapshot of the counters.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset drops every entry and zeroes the counters.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[K]*node[K, V])
	c.head, c.tail = nil, nil
	c.stats = Stats{}
}

// touch moves n to the head of the recency list.
func (c *Cache[K, V]) touch(n *node[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.push(n)
}

// push links n at the head.
func (c *Cache[K, V]) push(n *node[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// unlink removes n from the recency list.
func (c *Cache[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
