package pml

import (
	"testing"

	"odrips/internal/clock"
	"odrips/internal/sim"
)

func newLink(t *testing.T) (*sim.Scheduler, *clock.Oscillator, *clock.Domain, *Link) {
	t.Helper()
	s := sim.NewScheduler()
	osc := clock.NewOscillator(s, "xtal24", 24_000_000, 0, 0)
	osc.PowerOn()
	dom := clock.NewDomain("pml", osc)
	return s, osc, dom, NewLink(s, dom, ProcessorToChipset, 16)
}

func TestSendDelivers(t *testing.T) {
	s, osc, _, l := newLink(t)
	var got []Message
	l.OnDeliver = func(m Message) { got = append(got, m) }
	s.RunFor(10 * sim.Nanosecond)
	if err := l.Send(Message{Kind: TimerValue, Value: 42}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(got) != 1 || got[0].Value != 42 {
		t.Fatalf("delivered = %+v", got)
	}
	// Delivery lands exactly latencyCycles edges after the first edge
	// at/after send time.
	wantAt := osc.EdgeTime(1 + 16)
	if s.Now() != wantAt {
		t.Fatalf("delivered at %v, want %v", s.Now(), wantAt)
	}
	sent, delivered := l.Stats()
	if sent != 1 || delivered != 1 {
		t.Fatalf("stats = %d,%d", sent, delivered)
	}
}

func TestSendFailsWhenClockStopped(t *testing.T) {
	_, osc, dom, l := newLink(t)
	dom.Gate()
	if err := l.Send(Message{Kind: WakeRequest}); err == nil {
		t.Fatal("send with gated clock succeeded")
	}
	dom.Ungate()
	osc.PowerOff()
	if err := l.Send(Message{Kind: WakeRequest}); err == nil {
		t.Fatal("send with crystal off succeeded")
	}
}

func TestSendFailsWhenUnpowered(t *testing.T) {
	_, _, _, l := newLink(t)
	powered := false
	l.Powered = func() bool { return powered }
	if err := l.Send(Message{Kind: EnterIdle}); err == nil {
		t.Fatal("send with unpowered pads succeeded")
	}
	powered = true
	if err := l.Send(Message{Kind: EnterIdle}); err != nil {
		t.Fatal(err)
	}
}

func TestCompensateTimer(t *testing.T) {
	_, _, _, l := newLink(t)
	if got := l.CompensateTimer(1000); got != 1016 {
		t.Fatalf("CompensateTimer(1000) = %d, want 1016", got)
	}
}

// TestTimerTransferEndToEnd checks the §4.1.2 latency-compensation trick:
// a timer value compensated at send equals the live counter at delivery.
func TestTimerTransferEndToEnd(t *testing.T) {
	s, osc, dom, l := newLink(t)
	// A live 64-bit counter on the same clock, modeled analytically.
	countAt := func(at sim.Time) uint64 { return osc.EdgesBetween(0, at) }
	s.RunFor(777 * sim.Nanosecond)
	var deliveredVal uint64
	var deliveredAt sim.Time
	l.OnDeliver = func(m Message) { deliveredVal, deliveredAt = m.Value, s.Now() }
	_ = dom
	live := countAt(s.Now())
	if err := l.Send(Message{Kind: TimerValue, Value: l.CompensateTimer(live)}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	want := countAt(deliveredAt)
	if deliveredVal != want && deliveredVal != want+1 {
		t.Fatalf("compensated value %d at delivery, live counter %d", deliveredVal, want)
	}
}

func TestLatency(t *testing.T) {
	_, _, _, l := newLink(t)
	if l.LatencyCycles() != 16 {
		t.Fatalf("latency cycles = %d", l.LatencyCycles())
	}
	// 16 cycles at 24 MHz = 666.67 ns.
	if got := l.Latency(); got < 666*sim.Nanosecond || got > 667*sim.Nanosecond {
		t.Fatalf("latency = %v, want ~666.7ns", got)
	}
}

func TestZeroLatencyPanics(t *testing.T) {
	s := sim.NewScheduler()
	osc := clock.NewOscillator(s, "x", 24_000_000, 0, 0)
	dom := clock.NewDomain("d", osc)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-latency link did not panic")
		}
	}()
	NewLink(s, dom, ChipsetToProcessor, 0)
}
