// Package pml models the Power Management Link of §4.1.2: two deterministic
// master-slave serial interfaces between the processor and the chipset,
// clocked by the 24 MHz clock. The link's fixed transfer latency is what the
// timer hand-off compensates for by adding a constant to transferred timer
// values.
package pml

import (
	"fmt"

	"odrips/internal/clock"
	"odrips/internal/sim"
)

// Kind labels a link message.
type Kind int

const (
	// TimerValue carries a 64-bit timer value (hand-off flows).
	TimerValue Kind = iota
	// WakeRequest tells the processor to start the DRIPS exit flow.
	WakeRequest
	// EnterIdle tells the chipset the processor is committing to DRIPS.
	EnterIdle
	// ThermalEvent forwards an embedded-controller thermal report.
	ThermalEvent
)

var kindNames = [...]string{"timer-value", "wake-request", "enter-idle", "thermal-event"}

// String returns the kind name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Message is one transfer on the link.
type Message struct {
	Kind  Kind
	Value uint64
}

// Direction identifies one of the two physical interfaces.
type Direction int

const (
	// ProcessorToChipset: the processor is master.
	ProcessorToChipset Direction = iota
	// ChipsetToProcessor: the chipset is master.
	ChipsetToProcessor
)

// Link is one direction of the PML. Both endpoints' pads must be powered
// (the processor side is behind the AON IO FET in ODRIPS) and the 24 MHz
// clock running for a transfer to start.
type Link struct {
	sched         *sim.Scheduler
	dom           *clock.Domain
	dir           Direction
	latencyCycles uint64

	// Powered, if non-nil, gates the link: it must report true at send
	// time. The platform wires it to the processor AON IO ring state.
	Powered func() bool

	// OnDeliver receives messages at the far end.
	OnDeliver func(Message)

	sent, delivered uint64
}

// NewLink creates a link clocked by dom with the given transfer latency in
// 24 MHz cycles.
func NewLink(sched *sim.Scheduler, dom *clock.Domain, dir Direction, latencyCycles uint64) *Link {
	if latencyCycles == 0 {
		panic("pml: zero-latency link is not a deterministic serial interface")
	}
	return &Link{sched: sched, dom: dom, dir: dir, latencyCycles: latencyCycles}
}

// LatencyCycles returns the fixed transfer latency in clock cycles.
func (l *Link) LatencyCycles() uint64 { return l.latencyCycles }

// Latency returns the transfer latency as simulated time from the next
// clock edge.
func (l *Link) Latency() sim.Duration {
	period := sim.FromSeconds(1 / l.dom.Source().ActualHz())
	return sim.Duration(l.latencyCycles) * period
}

// Stats returns messages sent and delivered.
func (l *Link) Stats() (sent, delivered uint64) { return l.sent, l.delivered }

// Send starts a transfer. Delivery happens latencyCycles clock edges after
// the next edge. Fails when the clock is stopped or the pads are unpowered.
func (l *Link) Send(m Message) error {
	if l.Powered != nil && !l.Powered() {
		return fmt.Errorf("pml: %v send with pads unpowered", m.Kind)
	}
	if !l.dom.Running() {
		return fmt.Errorf("pml: %v send with 24 MHz clock stopped", m.Kind)
	}
	k, _, ok := l.dom.NextEdge(l.sched.Now())
	if !ok {
		return fmt.Errorf("pml: no clock edge available")
	}
	l.sent++
	at := l.dom.Source().EdgeTime(k + l.latencyCycles)
	l.sched.At(at, "pml.deliver", func() {
		l.delivered++
		if l.OnDeliver != nil {
			l.OnDeliver(m)
		}
	})
	return nil
}

// CompensateTimer returns a timer value adjusted for the transfer latency:
// the value the counter will hold when the message lands (§4.1.2: "we add
// a fixed constant to the transferred timer value").
func (l *Link) CompensateTimer(value uint64) uint64 {
	return value + l.latencyCycles
}
