// Package aonio models the processor's always-on IO ring (Fig. 1(a) item 4
// and §5): the differential 24 MHz clock buffers, the two PML interfaces,
// thermal reporting, voltage-regulator serial control, and the
// reset/debug pads. In baseline DRIPS these stay powered; ODRIPS gates the
// whole rail through a board FET controlled by a chipset GPIO.
package aonio

import (
	"fmt"
	"sort"
)

// Standard IO names on the ring.
const (
	IOClk24Buffers   = "clk24-buffers"
	IOPMLToChipset   = "pml-to-chipset"
	IOPMLFromChipset = "pml-from-chipset"
	IOThermal        = "thermal-report"
	IOVRSerial       = "vr-serial"
	IOReset          = "reset"
	IODebug          = "debug"
)

// StandardIOs returns the paper's AON IO inventory (§5.2) with nominal
// draws in mW that sum to the AON IO budget of the DRIPS power breakdown.
func StandardIOs() map[string]float64 {
	return map[string]float64{
		IOClk24Buffers:   1.05,
		IOPMLToChipset:   0.45,
		IOPMLFromChipset: 0.45,
		IOThermal:        0.35,
		IOVRSerial:       0.30,
		IOReset:          0.20,
		IODebug:          0.31,
	}
}

// Ring is the AON IO rail: a set of pads that live or die together behind
// the FET.
type Ring struct {
	draws map[string]float64
	gated bool

	gateCount, ungateCount uint64

	// OnDraw, if non-nil, receives the total nominal rail draw in mW when
	// the gate state changes.
	OnDraw func(mW float64)
}

// NewRing builds a ring from a name→draw map. The ring starts ungated.
func NewRing(draws map[string]float64) *Ring {
	if len(draws) == 0 {
		panic("aonio: empty ring")
	}
	cp := make(map[string]float64, len(draws))
	for name, mw := range draws {
		if mw < 0 {
			panic(fmt.Sprintf("aonio: negative draw for %s", name))
		}
		cp[name] = mw
	}
	return &Ring{draws: cp}
}

// Names returns the pad names, sorted.
func (r *Ring) Names() []string {
	out := make([]string, 0, len(r.draws))
	for n := range r.draws {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gated reports whether the FET has cut the rail.
func (r *Ring) Gated() bool { return r.gated }

// Usable reports whether a named pad is powered and present.
func (r *Ring) Usable(name string) bool {
	_, ok := r.draws[name]
	return ok && !r.gated
}

// TotalDrawMW returns the rail's current nominal draw. Summation runs in
// sorted-name order so the floating-point result is identical across runs
// (map iteration order would otherwise leak ulp-level nondeterminism into
// the energy accounting).
func (r *Ring) TotalDrawMW() float64 {
	if r.gated {
		return 0
	}
	return r.loadMW()
}

func (r *Ring) loadMW() float64 {
	var t float64
	for _, name := range r.Names() {
		t += r.draws[name]
	}
	return t
}

// SetGated switches the FET. Idempotent transitions do not recount.
func (r *Ring) SetGated(gated bool) {
	if r.gated == gated {
		return
	}
	r.gated = gated
	if gated {
		r.gateCount++
	} else {
		r.ungateCount++
	}
	if r.OnDraw != nil {
		r.OnDraw(r.TotalDrawMW())
	}
}

// Stats returns gate and ungate transition counts.
func (r *Ring) Stats() (gates, ungates uint64) { return r.gateCount, r.ungateCount }

// FET is the on-board field-effect transistor of §5.1 that gates the AON
// IO rail, driven by a chipset GPIO level. Its leakage when open is <0.3%
// of the gated load (§5.3), which the platform charges as a residual draw.
type FET struct {
	ring *Ring
	// LeakageFraction is the off-state leakage relative to the gated load.
	LeakageFraction float64
	// SlewTime is the rail ramp latency on switching, in seconds; the
	// platform turns it into entry/exit latency.
	switches uint64
}

// NewFET wires a FET to a ring.
func NewFET(ring *Ring) *FET {
	return &FET{ring: ring, LeakageFraction: 0.003}
}

// Drive applies the GPIO level: true opens the FET (rail cut / gated).
func (f *FET) Drive(gateOn bool) {
	f.switches++
	f.ring.SetGated(gateOn)
}

// ResidualLeakageMW returns the off-state leakage while gating.
func (f *FET) ResidualLeakageMW() float64 {
	if !f.ring.Gated() {
		return 0
	}
	return f.ring.loadMW() * f.LeakageFraction
}

// Switches returns how many times the FET has been driven.
func (f *FET) Switches() uint64 { return f.switches }
