package aonio

import (
	"math"
	"testing"
)

func TestStandardIOBudget(t *testing.T) {
	r := NewRing(StandardIOs())
	// The AON IO rail budget is 3.11 mW nominal (7% of the 60 mW DRIPS
	// platform power at the battery, before the power-delivery tax).
	if got := r.TotalDrawMW(); math.Abs(got-3.11) > 1e-9 {
		t.Fatalf("AON IO rail draw = %v mW, want 3.11", got)
	}
	if len(r.Names()) != 7 {
		t.Fatalf("IO inventory = %v", r.Names())
	}
}

func TestGating(t *testing.T) {
	r := NewRing(StandardIOs())
	var draws []float64
	r.OnDraw = func(mw float64) { draws = append(draws, mw) }
	if !r.Usable(IOPMLToChipset) {
		t.Fatal("ungated PML not usable")
	}
	r.SetGated(true)
	r.SetGated(true) // idempotent
	if r.Usable(IOPMLToChipset) || r.Usable(IOThermal) {
		t.Fatal("gated IOs usable")
	}
	if r.TotalDrawMW() != 0 {
		t.Fatal("gated rail still draws")
	}
	r.SetGated(false)
	if !r.Usable(IODebug) {
		t.Fatal("ungated IO unusable")
	}
	gates, ungates := r.Stats()
	if gates != 1 || ungates != 1 {
		t.Fatalf("stats = %d,%d", gates, ungates)
	}
	if len(draws) != 2 || draws[0] != 0 || draws[1] == 0 {
		t.Fatalf("draw hook = %v", draws)
	}
}

func TestUnknownIONotUsable(t *testing.T) {
	r := NewRing(StandardIOs())
	if r.Usable("nonexistent") {
		t.Fatal("unknown IO reported usable")
	}
}

func TestFET(t *testing.T) {
	r := NewRing(StandardIOs())
	f := NewFET(r)
	if f.ResidualLeakageMW() != 0 {
		t.Fatal("leakage while conducting")
	}
	f.Drive(true)
	if !r.Gated() {
		t.Fatal("FET drive did not gate the ring")
	}
	// Off-state leakage < 0.3% of the load (§5.3).
	leak := f.ResidualLeakageMW()
	if leak <= 0 || leak > 0.003*3.11+1e-12 {
		t.Fatalf("residual leakage = %v mW", leak)
	}
	f.Drive(false)
	if r.Gated() {
		t.Fatal("FET drive did not ungate")
	}
	if f.Switches() != 2 {
		t.Fatalf("switches = %d", f.Switches())
	}
}

func TestEmptyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ring did not panic")
		}
	}()
	NewRing(nil)
}

func TestNegativeDrawPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative draw did not panic")
		}
	}()
	NewRing(map[string]float64{"bad": -1})
}
