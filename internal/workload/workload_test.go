package workload

import (
	"bytes"
	"strings"
	"testing"

	"odrips/internal/sim"
)

func TestConnectedStandbyShape(t *testing.T) {
	cycles := ConnectedStandby(500, 42)
	if len(cycles) != 500 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	var external, thermal int
	for _, c := range cycles {
		if c.Idle < 27*sim.Second || c.Idle > 33*sim.Second {
			t.Fatalf("idle = %v outside 30s ±10%%", c.Idle)
		}
		switch c.Wake {
		case WakeExternal:
			external++
		case WakeThermal:
			thermal++
		}
	}
	// ~5% external, ~2% thermal.
	if external < 10 || external > 50 {
		t.Errorf("external wakes = %d/500", external)
	}
	if thermal < 2 || thermal > 30 {
		t.Errorf("thermal wakes = %d/500", thermal)
	}
}

func TestConnectedStandbyDeterministic(t *testing.T) {
	a := ConnectedStandby(50, 7)
	b := ConnectedStandby(50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := ConnectedStandby(50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestFixed(t *testing.T) {
	cycles := Fixed(3, sim.Millisecond, sim.Second)
	if len(cycles) != 3 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	for _, c := range cycles {
		if c.Active != sim.Millisecond || c.Idle != sim.Second || c.Wake != WakeTimer {
			t.Fatalf("cycle = %+v", c)
		}
	}
}

func TestSweepResidencies(t *testing.T) {
	rs := SweepResidencies(600*sim.Microsecond, sim.Millisecond, 100*sim.Microsecond)
	if len(rs) != 5 {
		t.Fatalf("points = %d: %v", len(rs), rs)
	}
	if rs[0] != 600*sim.Microsecond || rs[4] != sim.Millisecond {
		t.Fatalf("bounds wrong: %v", rs)
	}
	if SweepResidencies(1, 0, 1) != nil {
		t.Fatal("inverted range produced points")
	}
	if SweepResidencies(0, 10, 0) != nil {
		t.Fatal("zero step produced points")
	}
}

func TestPaperSweepGrid(t *testing.T) {
	rs := PaperSweep()
	// 0.6 ms .. 1000.0 ms at 0.1 ms = 9995 points.
	if len(rs) != 9995 {
		t.Fatalf("paper grid = %d points, want 9995", len(rs))
	}
	if rs[0] != 600*sim.Microsecond || rs[len(rs)-1] != sim.Second {
		t.Fatalf("grid bounds: %v .. %v", rs[0], rs[len(rs)-1])
	}
}

func TestParseTrace(t *testing.T) {
	const trace = `active_ms,idle_ms,wake
# a comment line
150,30000,timer
0,5000,external
200.5,1000,thermal
`
	cycles, err := ParseTrace(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 3 {
		t.Fatalf("cycles = %d", len(cycles))
	}
	if cycles[0].Active != 150*sim.Millisecond || cycles[0].Idle != 30*sim.Second || cycles[0].Wake != WakeTimer {
		t.Fatalf("cycle 0 = %+v", cycles[0])
	}
	if cycles[1].Active != 0 || cycles[1].Wake != WakeExternal {
		t.Fatalf("cycle 1 = %+v", cycles[1])
	}
	if cycles[2].Wake != WakeThermal {
		t.Fatalf("cycle 2 = %+v", cycles[2])
	}
}

func TestParseTraceErrors(t *testing.T) {
	bad := []string{
		"",                 // empty
		"150,30000",        // missing field
		"abc,30000,timer",  // bad active
		"150,-5,timer",     // non-positive idle
		"150,0,timer",      // zero idle
		"150,30000,banana", // unknown wake
	}
	for i, tr := range bad {
		if _, err := ParseTrace(strings.NewReader(tr)); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := []Cycle{
		{Active: 150 * sim.Millisecond, Idle: 30 * sim.Second, Wake: WakeTimer},
		{Active: 0, Idle: 5 * sim.Second, Wake: WakeExternal},
		{Active: 2 * sim.Millisecond, Idle: 600 * sim.Microsecond, Wake: WakeThermal},
	}
	var buf bytes.Buffer
	if err := FormatTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d cycles", len(back))
	}
	for i := range orig {
		if back[i].Wake != orig[i].Wake {
			t.Errorf("cycle %d wake mismatch", i)
		}
		// Millisecond formatting keeps microsecond precision.
		if d := back[i].Idle - orig[i].Idle; d > sim.Microsecond || d < -sim.Microsecond {
			t.Errorf("cycle %d idle drifted by %v", i, d)
		}
	}
}
