package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"odrips/internal/sim"
)

// ParseTrace reads a connected-standby trace in CSV form, one cycle per
// row: `active_ms,idle_ms,wake` where wake is one of timer, external, or
// thermal (an active_ms of 0 lets the platform use its computed
// maintenance duration). Lines starting with '#' and a leading header row
// (`active_ms,...`) are skipped, so exported spreadsheets replay directly.
func ParseTrace(r io.Reader) ([]Cycle, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	var cycles []Cycle
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line+1, err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		if line == 1 && strings.EqualFold(strings.TrimSpace(rec[0]), "active_ms") {
			continue // header
		}
		if len(rec) != 3 {
			return nil, fmt.Errorf("workload: trace line %d: want 3 fields, got %d", line, len(rec))
		}
		activeMS, err := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		if err != nil || activeMS < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad active_ms %q", line, rec[0])
		}
		idleMS, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil || idleMS <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad idle_ms %q", line, rec[1])
		}
		var wake WakeKind
		switch strings.ToLower(strings.TrimSpace(rec[2])) {
		case "timer", "":
			wake = WakeTimer
		case "external", "network":
			wake = WakeExternal
		case "thermal":
			wake = WakeThermal
		default:
			return nil, fmt.Errorf("workload: trace line %d: unknown wake %q", line, rec[2])
		}
		cycles = append(cycles, Cycle{
			Active: sim.FromSeconds(activeMS / 1000),
			Idle:   sim.FromSeconds(idleMS / 1000),
			Wake:   wake,
		})
	}
	if len(cycles) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return cycles, nil
}

// FormatTrace writes cycles in the ParseTrace CSV format.
func FormatTrace(w io.Writer, cycles []Cycle) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"active_ms", "idle_ms", "wake"}); err != nil {
		return err
	}
	names := map[WakeKind]string{WakeTimer: "timer", WakeExternal: "external", WakeThermal: "thermal"}
	for _, c := range cycles {
		if err := cw.Write([]string{
			strconv.FormatFloat(c.Active.Milliseconds(), 'f', 3, 64),
			strconv.FormatFloat(c.Idle.Milliseconds(), 'f', 3, 64),
			names[c.Wake],
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
