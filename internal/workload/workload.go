// Package workload generates connected-standby activity patterns (§7):
// the platform idles for long windows (~30 s), wakes for kernel
// maintenance (100–300 ms), and occasionally takes on-demand wakes from
// external triggers. It also builds the residency sweeps used to measure
// break-even points (0.6 ms to 1 s at 0.1 ms granularity).
package workload

import (
	"math/rand"

	"odrips/internal/sim"
)

// WakeKind says what ends an idle window.
type WakeKind int

const (
	// WakeTimer is the scheduled OS timer (the dominant case).
	WakeTimer WakeKind = iota
	// WakeExternal is a network/peripheral event through the chipset.
	WakeExternal
	// WakeThermal is an EC thermal report on the offloaded GPIO.
	WakeThermal
)

// Cycle is one connected-standby period: an active burst followed by an
// idle window ended by the given wake source. Active == 0 lets the
// platform use its own computed maintenance duration.
type Cycle struct {
	Active sim.Duration
	Idle   sim.Duration
	Wake   WakeKind
}

// Run is a maximal group of consecutive identical cycles. The platform's
// fast-forward engine replays such a group as one batch when the boundary
// fingerprint also recurs.
type Run struct {
	Cycle Cycle
	Count int
}

// Runs run-length encodes a cycle sequence into maximal groups of
// consecutive identical cycles. The concatenation of the groups is the
// input sequence.
func Runs(cycles []Cycle) []Run {
	var out []Run
	for _, c := range cycles {
		if n := len(out); n > 0 && out[n-1].Cycle == c {
			out[n-1].Count++
			continue
		}
		out = append(out, Run{Cycle: c, Count: 1})
	}
	return out
}

// ConnectedStandby generates n paper-style cycles: ~30 s idle with ±10%
// jitter, platform-computed maintenance bursts, and a sprinkling of
// external and thermal wakes.
func ConnectedStandby(n int, seed int64) []Cycle {
	rng := rand.New(rand.NewSource(seed))
	cycles := make([]Cycle, n)
	for i := range cycles {
		idle := 30 * sim.Second
		jitter := sim.Duration(float64(idle) * 0.1 * (rng.Float64()*2 - 1))
		wake := WakeTimer
		switch r := rng.Float64(); {
		case r < 0.05:
			wake = WakeExternal
		case r < 0.07:
			wake = WakeThermal
		}
		cycles[i] = Cycle{Idle: idle + jitter, Wake: wake}
	}
	return cycles
}

// Fixed generates n identical timer-wake cycles (deterministic runs).
func Fixed(n int, active, idle sim.Duration) []Cycle {
	cycles := make([]Cycle, n)
	for i := range cycles {
		cycles[i] = Cycle{Active: active, Idle: idle, Wake: WakeTimer}
	}
	return cycles
}

// SweepResidencies returns the §7 break-even sweep grid: idle residencies
// from lo to hi inclusive at the given step.
func SweepResidencies(lo, hi, step sim.Duration) []sim.Duration {
	if step <= 0 || hi < lo {
		return nil
	}
	var out []sim.Duration
	for r := lo; r <= hi; r += step {
		out = append(out, r)
	}
	return out
}

// PaperSweep returns the exact grid from §7: 0.6 ms to 1 s at 0.1 ms.
// That is 9995 points; callers that want a faster pass can use
// SweepResidencies with a coarser step.
func PaperSweep() []sim.Duration {
	return SweepResidencies(600*sim.Microsecond, sim.Second, 100*sim.Microsecond)
}
