package pmu

import (
	"testing"

	"odrips/internal/ctxstore"
	"odrips/internal/dram"
	"odrips/internal/ltr"
	"odrips/internal/mee"
	"odrips/internal/sim"
	"odrips/internal/sram"
)

func TestCStateTableShape(t *testing.T) {
	states := SkylakeCStates()
	if DeepestState(states).Name != "C10" {
		t.Fatalf("deepest = %s", DeepestState(states).Name)
	}
	// Deeper states must cost more to enter and exit.
	for i := 1; i < len(states); i++ {
		if states[i].ExitLatency <= states[i-1].ExitLatency {
			t.Fatalf("%s exit latency not above %s", states[i].Name, states[i-1].Name)
		}
		if states[i].MinResidency <= states[i-1].MinResidency {
			t.Fatalf("%s min residency not above %s", states[i].Name, states[i-1].Name)
		}
	}
	// C10 exit is a few hundred microseconds (§3).
	c10 := DeepestState(states)
	if c10.ExitLatency < 100*sim.Microsecond || c10.ExitLatency > sim.Millisecond {
		t.Fatalf("C10 exit latency = %v", c10.ExitLatency)
	}
}

func TestSelectStateUnconstrained(t *testing.T) {
	s := sim.NewScheduler()
	st, err := SelectState(SkylakeCStates(), ltr.NewTable(s))
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "C10" {
		t.Fatalf("unconstrained selection = %s, want C10 (DRIPS)", st.Name)
	}
}

func TestSelectStateLTRConstrained(t *testing.T) {
	s := sim.NewScheduler()
	tbl := ltr.NewTable(s)
	// Audio can only tolerate 100 us of wake latency: C10 (300 us exit)
	// must be rejected; C7 (110 us) also; C6 (85 us) qualifies.
	tbl.Update("audio", 100*sim.Microsecond)
	st, err := SelectState(SkylakeCStates(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "C6" {
		t.Fatalf("LTR-constrained selection = %s, want C6", st.Name)
	}
}

func TestSelectStateTNTEConstrained(t *testing.T) {
	s := sim.NewScheduler()
	tbl := ltr.NewTable(s)
	// A timer fires in 1 ms: C10 (5 ms break-even) and C8 (2 ms) are not
	// worth entering; C7 (0.8 ms) is.
	if err := tbl.SetTimer("tick", s.Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	st, err := SelectState(SkylakeCStates(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "C7" {
		t.Fatalf("TNTE-constrained selection = %s, want C7", st.Name)
	}
}

func TestSelectStateBothConstraints(t *testing.T) {
	s := sim.NewScheduler()
	tbl := ltr.NewTable(s)
	tbl.Update("nic", 50*sim.Microsecond) // allows up to C3 (40 us exit)
	if err := tbl.SetTimer("t", s.Now().Add(200*sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	// TNTE 200 us allows C3 (120 us break-even) but not C6.
	st, err := SelectState(SkylakeCStates(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "C3" {
		t.Fatalf("selection = %s, want C3", st.Name)
	}
}

func TestSelectStateHostileConstraints(t *testing.T) {
	s := sim.NewScheduler()
	tbl := ltr.NewTable(s)
	tbl.Update("dma", 0) // tolerates nothing
	st, err := SelectState(SkylakeCStates(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "C0" {
		t.Fatalf("zero-tolerance selection = %s, want C0", st.Name)
	}
}

func TestSelectStateEmptyTable(t *testing.T) {
	s := sim.NewScheduler()
	if _, err := SelectState(nil, ltr.NewTable(s)); err == nil {
		t.Fatal("empty C-state table accepted")
	}
}

func TestSRAMTargetRoundTrip(t *testing.T) {
	arr := sram.New("sa-sr", sram.ProcessorProcess, 128<<10)
	arr.SetState(sram.Active)
	tgt := NewSRAMTarget(arr)
	img := ctxstore.GenerateSkylake(1).Subset(ctxstore.SASectionNames()).Serialize()
	if err := tgt.Save(img); err != nil {
		t.Fatal(err)
	}
	back, err := tgt.Restore(len(img))
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(img) {
		t.Fatal("SRAM round trip mismatch")
	}
	// On-chip save of ~117 KB should take single-digit microseconds.
	if lat := tgt.SaveLatency(len(img)); lat > 10*sim.Microsecond {
		t.Fatalf("SRAM save latency = %v", lat)
	}
}

func TestSRAMTargetOverflow(t *testing.T) {
	arr := sram.New("tiny", sram.ProcessorProcess, 64)
	arr.SetState(sram.Active)
	tgt := NewSRAMTarget(arr)
	if err := tgt.Save(make([]byte, 128)); err == nil {
		t.Fatal("oversized save accepted")
	}
}

func TestDRAMTargetLatenciesMatchPaper(t *testing.T) {
	mem := dram.New(dram.Skylake8GB())
	var key [32]byte
	key[0] = 9
	ctx := ctxstore.GenerateSkylake(2)
	img := ctx.Serialize()
	blocks := (len(img) + mee.BlockSize - 1) / mee.BlockSize
	eng, err := mee.New(mem, 0x1000_0000, blocks, key, mee.DefaultCacheLines)
	if err != nil {
		t.Fatal(err)
	}
	tgt := &DRAMTarget{Engine: eng}
	saveLat, err := tgt.Save(img)
	if err != nil {
		t.Fatal(err)
	}
	// §6.3: ~18 us save for ~200 KB (95% estimation accuracy claimed).
	if us := saveLat.Microseconds(); us < 14 || us > 24 {
		t.Fatalf("DRAM context save latency = %.1f us, want ~18", us)
	}
	// Cold engine restore (as after DRIPS).
	cold, err := mee.ImportState(mem, eng.ExportState(), mee.DefaultCacheLines)
	if err != nil {
		t.Fatal(err)
	}
	coldTgt := &DRAMTarget{Engine: cold}
	back, restoreLat, err := coldTgt.Restore(len(img))
	if err != nil {
		t.Fatal(err)
	}
	if us := restoreLat.Microseconds(); us < 10 || us > 18 {
		t.Fatalf("DRAM context restore latency = %.1f us, want ~13", us)
	}
	if restoreLat >= saveLat {
		t.Fatal("restore not faster than save")
	}
	got, err := ctxstore.Deserialize(back)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ctx) {
		t.Fatal("context mismatch after DRAM round trip")
	}
}

func TestBootFSMRoundTrip(t *testing.T) {
	arr := sram.New("boot", sram.ProcessorProcess, ctxstore.BootImageSize)
	arr.SetState(sram.Active)
	fsm := NewBootFSM(arr)
	img := ctxstore.BootImage{
		MEEState:  []byte{1, 2, 3},
		MCConfig:  make([]byte, 200),
		PMUVector: []byte{9},
	}
	if err := fsm.Save(img); err != nil {
		t.Fatal(err)
	}
	back, err := fsm.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if string(back.MEEState) != string(img.MEEState) || len(back.MCConfig) != 200 {
		t.Fatal("boot image mismatch")
	}
	if fsm.Latency() > 10*sim.Microsecond {
		t.Fatal("boot FSM latency implausible")
	}
}

func TestBootFSMPowerLoss(t *testing.T) {
	arr := sram.New("boot", sram.ProcessorProcess, ctxstore.BootImageSize)
	arr.SetState(sram.Active)
	fsm := NewBootFSM(arr)
	if err := fsm.Save(ctxstore.BootImage{MEEState: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	arr.SetState(sram.Off) // Boot SRAM must never be powered off in DRIPS
	arr.SetState(sram.Active)
	if _, err := fsm.Restore(); err == nil {
		t.Fatal("restore after Boot SRAM power loss succeeded")
	}
}
