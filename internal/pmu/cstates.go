// Package pmu implements the processor power-management-unit firmware
// logic: the C-state table, the idle-state selection policy driven by LTR
// and TNTE (§2.2), and the save/restore engines (SA FSM, LLC FSM, Boot FSM
// of Fig. 4) that move context between SRAM, DRAM, and the MEE.
package pmu

import (
	"fmt"
	"sort"

	"odrips/internal/ltr"
	"odrips/internal/sim"
)

// CState describes one idle power state of the processor.
type CState struct {
	Name  string
	Index int // the i in Ci; deeper states have larger i
	// EntryLatency and ExitLatency are the transition costs.
	EntryLatency sim.Duration
	ExitLatency  sim.Duration
	// MinResidency is the energy break-even residency: entering pays off
	// only if the platform stays at least this long.
	MinResidency sim.Duration
}

// SkylakeCStates returns a client-processor C-state table modeled after the
// paper's platform. C10 is DRIPS, the deepest runtime idle power state.
// Latencies reflect §3: Haswell-ULT's C10 exit was ~3 ms; Skylake reduced
// the voltage-regulator re-initialization to a few hundred microseconds.
func SkylakeCStates() []CState {
	return []CState{
		{Name: "C0", Index: 0},
		{Name: "C1", Index: 1, EntryLatency: sim.Microsecond, ExitLatency: 2 * sim.Microsecond, MinResidency: 4 * sim.Microsecond},
		{Name: "C3", Index: 3, EntryLatency: 20 * sim.Microsecond, ExitLatency: 40 * sim.Microsecond, MinResidency: 120 * sim.Microsecond},
		{Name: "C6", Index: 6, EntryLatency: 50 * sim.Microsecond, ExitLatency: 85 * sim.Microsecond, MinResidency: 400 * sim.Microsecond},
		{Name: "C7", Index: 7, EntryLatency: 70 * sim.Microsecond, ExitLatency: 110 * sim.Microsecond, MinResidency: 800 * sim.Microsecond},
		{Name: "C8", Index: 8, EntryLatency: 100 * sim.Microsecond, ExitLatency: 160 * sim.Microsecond, MinResidency: 2 * sim.Millisecond},
		{Name: "C10", Index: 10, EntryLatency: 200 * sim.Microsecond, ExitLatency: 300 * sim.Microsecond, MinResidency: 5 * sim.Millisecond},
	}
}

// HaswellCStates returns the previous-generation table: identical shallow
// states but a ~3 ms C10 exit (§3: Haswell-ULT's DRIPS exit, dominated by
// voltage-regulator re-initialization) with a correspondingly larger
// break-even residency.
func HaswellCStates() []CState {
	states := SkylakeCStates()
	for i := range states {
		if states[i].Name == "C10" {
			states[i].EntryLatency = 400 * sim.Microsecond
			states[i].ExitLatency = 3 * sim.Millisecond
			states[i].MinResidency = 40 * sim.Millisecond
		}
	}
	return states
}

// SelectState implements the PMU's target-state decision (§2.2): pick the
// deepest state whose exit latency every device can tolerate (LTR) and
// whose break-even residency fits before the next timer event (TNTE).
// When no constraint is reported, the deepest state wins.
func SelectState(states []CState, table *ltr.Table) (CState, error) {
	if len(states) == 0 {
		return CState{}, fmt.Errorf("pmu: empty C-state table")
	}
	sorted := append([]CState(nil), states...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index > sorted[j].Index })

	tol, haveTol := table.MinTolerance()
	tnte, haveTNTE := table.TNTE()
	for _, st := range sorted {
		if haveTol && st.ExitLatency > tol {
			continue
		}
		if haveTNTE && sim.Duration(float64(st.MinResidency)) > tnte {
			continue
		}
		return st, nil
	}
	// Even C0 should always qualify (zero latencies); defensive fallback.
	return sorted[len(sorted)-1], nil
}

// DeepestState returns the Cn entry (largest index).
func DeepestState(states []CState) CState {
	if len(states) == 0 {
		panic("pmu: empty C-state table")
	}
	deepest := states[0]
	for _, st := range states[1:] {
		if st.Index > deepest.Index {
			deepest = st
		}
	}
	return deepest
}
