package pmu

import (
	"fmt"

	"odrips/internal/ctxstore"
	"odrips/internal/mee"
	"odrips/internal/sim"
	"odrips/internal/sram"
)

// SaveEngine is the common shape of the context-moving finite state
// machines of Fig. 4: the SA FSM (system-agent context), the LLC FSM
// (cores/graphics context), and the Boot FSM (Boot SRAM). Each exposes the
// latency its transfer takes, so flows can schedule completion events, and
// performs the actual byte movement so restores are verifiable.

// SRAMTarget moves a serialized context image into an on-chip S/R SRAM
// (the baseline DRIPS path). On-chip transfers run at array port speed.
type SRAMTarget struct {
	Array *sram.Array
	// PortBandwidth in bytes/second; on-chip arrays stream at tens of GB/s.
	PortBandwidth float64
}

// NewSRAMTarget wires an engine to an array at 24 GB/s port bandwidth.
func NewSRAMTarget(a *sram.Array) *SRAMTarget {
	return &SRAMTarget{Array: a, PortBandwidth: 24e9}
}

// SaveLatency returns the time to write n bytes into the array.
func (t *SRAMTarget) SaveLatency(n int) sim.Duration {
	return sim.FromSeconds(float64(n)/t.PortBandwidth) + 500*sim.Nanosecond
}

// RestoreLatency returns the time to read n bytes back.
func (t *SRAMTarget) RestoreLatency(n int) sim.Duration { return t.SaveLatency(n) }

// Save writes the image at offset 0. The array must be Active.
func (t *SRAMTarget) Save(image []byte) error {
	if len(image) > t.Array.Size() {
		return fmt.Errorf("pmu: image %d bytes exceeds %s (%d bytes)", len(image), t.Array.Name(), t.Array.Size())
	}
	return t.Array.Write(0, image)
}

// Restore reads n bytes back from offset 0.
func (t *SRAMTarget) Restore(n int) ([]byte, error) { return t.Array.Read(0, n) }

// RestoreInto reads len(dst) bytes back from offset 0 into the caller's
// buffer, allocating nothing.
func (t *SRAMTarget) RestoreInto(dst []byte) error { return t.Array.ReadInto(0, dst) }

// DRAMTarget moves a serialized context image through the MEE into the
// protected DRAM region (the ODRIPS path, §6.2). Latency derives from the
// real DRAM traffic the engine generated, so it inherits the MEE-cache and
// tree behavior.
type DRAMTarget struct {
	Engine *mee.Engine
}

// Save encrypts and writes the image into the protected region, returning
// the transfer latency implied by the generated DRAM traffic.
func (t *DRAMTarget) Save(image []byte) (sim.Duration, error) {
	before := t.Engine.Stats()
	if err := t.Engine.WriteRegion(image); err != nil {
		return 0, err
	}
	if err := t.Engine.Flush(); err != nil {
		return 0, err
	}
	after := t.Engine.Stats()
	blocks := after.TotalBlocks() - before.TotalBlocks()
	return t.Engine.Mem().TransferTime(int(blocks)*mee.BlockSize, true), nil
}

// Restore reads and verifies n bytes from the protected region.
func (t *DRAMTarget) Restore(n int) ([]byte, sim.Duration, error) {
	before := t.Engine.Stats()
	data, err := t.Engine.ReadRegion(n)
	if err != nil {
		return nil, 0, err
	}
	after := t.Engine.Stats()
	blocks := after.TotalBlocks() - before.TotalBlocks()
	return data, t.Engine.Mem().TransferTime(int(blocks)*mee.BlockSize, false), nil
}

// RestoreInto reads and verifies n bytes from the protected region into
// the caller's buffer, which must hold whole MEE blocks
// (ceil(n/mee.BlockSize)*mee.BlockSize bytes). It returns dst[:n] and the
// transfer latency, allocating nothing.
func (t *DRAMTarget) RestoreInto(dst []byte, n int) ([]byte, sim.Duration, error) {
	before := t.Engine.Stats()
	data, err := t.Engine.ReadRegionInto(dst, n)
	if err != nil {
		return nil, 0, err
	}
	after := t.Engine.Stats()
	blocks := after.TotalBlocks() - before.TotalBlocks()
	return data, t.Engine.Mem().TransferTime(int(blocks)*mee.BlockSize, false), nil
}

// BootFSM saves the minimal bring-up image (PMU vector, memory-controller
// config, sealed MEE state) into the on-chip Boot SRAM and restores it
// before DRAM is reachable at exit (§6.2).
type BootFSM struct {
	SRAM *sram.Array
}

// NewBootFSM wires the FSM to a 1 KiB boot array.
func NewBootFSM(a *sram.Array) *BootFSM { return &BootFSM{SRAM: a} }

// Save packs and stores the boot image. The array must be Active.
func (b *BootFSM) Save(img ctxstore.BootImage) error {
	packed, err := img.Pack()
	if err != nil {
		return err
	}
	return b.SRAM.Write(0, packed)
}

// Restore unpacks the boot image from the array.
func (b *BootFSM) Restore() (ctxstore.BootImage, error) {
	data, err := b.SRAM.Read(0, b.SRAM.Size())
	if err != nil {
		return ctxstore.BootImage{}, err
	}
	return ctxstore.UnpackBootImage(data)
}

// Latency returns the (small) Boot SRAM transfer time.
func (b *BootFSM) Latency() sim.Duration { return 2 * sim.Microsecond }
