// Package device models wake-generating peripherals. The paper's
// Observation 1 rests on them: modern SoCs aggregate interrupts and buffer
// peripheral data (network, audio, camera) so the platform can afford
// millisecond-scale DRIPS exit latencies — each device's buffer headroom is
// what it reports through LTR, and a buffer high-water mark is what fires
// an external wake through the chipset.
package device

import (
	"fmt"
	"math/rand"

	"odrips/internal/ltr"
	"odrips/internal/sim"
)

// Platform is the slice of the platform a device interacts with.
type Platform interface {
	// Active reports whether the platform is in C0 (devices drain their
	// buffers only while the host is awake).
	Active() bool
	// Wake injects an external wake through the chipset's AON domain.
	Wake()
}

// NIC is a network interface with an RX buffer. Packets arrive with
// exponential inter-arrival times; while the platform sleeps they
// accumulate in the buffer, and the device wakes the host only when the
// buffer passes its high-water mark — interrupt coalescing. Its LTR report
// is the time-to-overflow of the remaining headroom.
type NIC struct {
	sched *sim.Scheduler
	table *ltr.Table
	host  Platform

	name        string
	rateBps     float64 // average ingress in bytes/second
	packetBytes int
	bufferBytes int
	highWater   int

	buffered int
	rng      *rand.Rand
	stopped  bool
	draining bool

	packets   uint64
	wakes     uint64
	overflows uint64 // packets dropped because the host slept too long
}

// NICConfig describes a NIC model.
type NICConfig struct {
	Name        string
	RateKBps    float64 // average ingress rate
	PacketBytes int
	BufferBytes int
	// HighWaterFraction of the buffer at which the NIC wakes the host
	// (defaults to 0.75).
	HighWaterFraction float64
	Seed              int64
}

// NewNIC creates a NIC and registers its initial LTR report.
func NewNIC(sched *sim.Scheduler, table *ltr.Table, host Platform, cfg NICConfig) (*NIC, error) {
	if cfg.RateKBps <= 0 || cfg.PacketBytes <= 0 || cfg.BufferBytes < cfg.PacketBytes {
		return nil, fmt.Errorf("device: invalid NIC config %+v", cfg)
	}
	if cfg.HighWaterFraction <= 0 || cfg.HighWaterFraction > 1 {
		cfg.HighWaterFraction = 0.75
	}
	if cfg.Name == "" {
		cfg.Name = "nic"
	}
	n := &NIC{
		sched:       sched,
		table:       table,
		host:        host,
		name:        cfg.Name,
		rateBps:     cfg.RateKBps * 1000,
		packetBytes: cfg.PacketBytes,
		bufferBytes: cfg.BufferBytes,
		highWater:   int(float64(cfg.BufferBytes) * cfg.HighWaterFraction),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	n.reportLTR()
	return n, nil
}

// Start begins packet arrivals.
func (n *NIC) Start() { n.scheduleNext() }

// Stop ends the traffic process (the pending arrival still fires but is
// discarded).
func (n *NIC) Stop() {
	n.stopped = true
	n.table.Remove(n.name)
}

// Stats returns packets seen, wakes raised, and overflow drops.
func (n *NIC) Stats() (packets, wakes, overflows uint64) {
	return n.packets, n.wakes, n.overflows
}

// Buffered returns the current buffer occupancy in bytes.
func (n *NIC) Buffered() int { return n.buffered }

func (n *NIC) scheduleNext() {
	// Exponential inter-arrival for the configured average byte rate.
	mean := float64(n.packetBytes) / n.rateBps
	gap := n.rng.ExpFloat64() * mean
	if gap < 1e-9 {
		gap = 1e-9
	}
	n.sched.After(sim.FromSeconds(gap), "device."+n.name+".rx", n.arrival)
}

func (n *NIC) arrival() {
	if n.stopped {
		return
	}
	n.packets++
	if n.host.Active() {
		// Host awake: the packet is consumed immediately; the buffer
		// drains too (DMA while in C0).
		n.buffered = 0
	} else {
		n.buffered += n.packetBytes
		if n.buffered > n.bufferBytes {
			n.buffered = n.bufferBytes
			n.overflows++
		}
		if n.buffered >= n.highWater {
			n.wakes++
			n.host.Wake()
			n.awaitDrain()
		}
	}
	n.reportLTR()
	n.scheduleNext()
}

// awaitDrain polls for the host to reach C0 after a wake, then DMAs the
// buffer out. Without this, a quiet active window (no arrivals) would
// leave the buffer at its high-water mark and the next idle period would
// overflow it.
func (n *NIC) awaitDrain() {
	if n.draining {
		return
	}
	n.draining = true
	var poll func()
	poll = func() {
		if n.stopped {
			n.draining = false
			return
		}
		if n.host.Active() {
			n.buffered = 0
			n.draining = false
			n.reportLTR()
			return
		}
		n.sched.After(100*sim.Microsecond, "device."+n.name+".drain", poll)
	}
	n.sched.After(100*sim.Microsecond, "device."+n.name+".drain", poll)
}

// reportLTR publishes the time-to-overflow of the remaining headroom: how
// much wake latency the NIC can absorb before losing data (§2.2).
func (n *NIC) reportLTR() {
	headroom := n.bufferBytes - n.buffered
	if headroom < 0 {
		headroom = 0
	}
	tolerance := sim.FromSeconds(float64(headroom) / n.rateBps)
	n.table.Update(n.name, tolerance)
}

// AudioStream is a periodic isochronous consumer: it drains a fixed-size
// buffer at a constant rate and reports the buffer depth as its tolerance.
// Unlike the NIC it never *generates* wakes — it constrains how deep the
// platform may sleep (a too-small audio buffer pins the platform out of
// DRIPS entirely, the LTR gating path).
type AudioStream struct {
	table *ltr.Table
	name  string
}

// NewAudioStream registers a stream with the given buffer depth in play
// time; the tolerance is static while the stream runs.
func NewAudioStream(table *ltr.Table, name string, bufferDepth sim.Duration) *AudioStream {
	if name == "" {
		name = "audio"
	}
	table.Update(name, bufferDepth)
	return &AudioStream{table: table, name: name}
}

// Stop deregisters the stream (playback ended).
func (a *AudioStream) Stop() { a.table.Remove(a.name) }
