package device

import (
	"testing"

	"odrips/internal/ltr"
	"odrips/internal/sim"
)

// fakeHost is a controllable Platform.
type fakeHost struct {
	active bool
	wakes  int
}

func (h *fakeHost) Active() bool { return h.active }
func (h *fakeHost) Wake()        { h.wakes++ }

func bench(t *testing.T) (*sim.Scheduler, *ltr.Table, *fakeHost) {
	t.Helper()
	s := sim.NewScheduler()
	return s, ltr.NewTable(s), &fakeHost{}
}

func TestNICConfigValidation(t *testing.T) {
	s, tbl, h := bench(t)
	bad := []NICConfig{
		{RateKBps: 0, PacketBytes: 1500, BufferBytes: 64 << 10},
		{RateKBps: 100, PacketBytes: 0, BufferBytes: 64 << 10},
		{RateKBps: 100, PacketBytes: 1500, BufferBytes: 100},
	}
	for i, cfg := range bad {
		if _, err := NewNIC(s, tbl, h, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNICDrainsWhileHostActive(t *testing.T) {
	s, tbl, h := bench(t)
	h.active = true
	n, err := NewNIC(s, tbl, h, NICConfig{RateKBps: 1000, PacketBytes: 1500, BufferBytes: 64 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	s.RunFor(sim.Second)
	n.Stop()
	packets, wakes, overflows := n.Stats()
	if packets == 0 {
		t.Fatal("no packets arrived")
	}
	if wakes != 0 || overflows != 0 || n.Buffered() != 0 {
		t.Fatalf("active host: wakes=%d overflows=%d buffered=%d", wakes, overflows, n.Buffered())
	}
}

func TestNICBuffersAndWakesWhileHostSleeps(t *testing.T) {
	s, tbl, h := bench(t)
	h.active = false
	// 64 KiB buffer at 100 KB/s fills its 75% high-water in ~0.5 s.
	n, err := NewNIC(s, tbl, h, NICConfig{RateKBps: 100, PacketBytes: 1500, BufferBytes: 64 << 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	s.RunFor(400 * sim.Millisecond)
	if h.wakes != 0 {
		t.Fatalf("woke after 0.4s with a ~0.5s high-water: buffered=%d", n.Buffered())
	}
	s.RunFor(sim.Second)
	if h.wakes == 0 {
		t.Fatal("never woke the host")
	}
	n.Stop()
}

func TestNICLTRTracksHeadroom(t *testing.T) {
	s, tbl, h := bench(t)
	h.active = false
	n, err := NewNIC(s, tbl, h, NICConfig{RateKBps: 100, PacketBytes: 1500, BufferBytes: 64 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tol0, ok := tbl.MinTolerance()
	if !ok {
		t.Fatal("no LTR report at creation")
	}
	// Full buffer headroom at 100 KB/s: 65536/100000 s = ~655 ms.
	if tol0 < 600*sim.Millisecond || tol0 > 700*sim.Millisecond {
		t.Fatalf("initial tolerance = %v", tol0)
	}
	n.Start()
	s.RunFor(300 * sim.Millisecond)
	tol1, _ := tbl.MinTolerance()
	if tol1 >= tol0 {
		t.Fatalf("tolerance did not shrink as the buffer filled: %v -> %v", tol0, tol1)
	}
	n.Stop()
	if _, ok := tbl.MinTolerance(); ok {
		t.Fatal("LTR report not removed on Stop")
	}
}

func TestNICOverflowAccounting(t *testing.T) {
	s, tbl, h := bench(t)
	h.active = false
	// High-water at 100%: the host is never woken (h ignores), so the
	// buffer must saturate and count drops.
	n, err := NewNIC(s, tbl, h, NICConfig{
		RateKBps: 1000, PacketBytes: 1500, BufferBytes: 16 << 10,
		HighWaterFraction: 1.0, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	s.RunFor(sim.Second)
	n.Stop()
	_, _, overflows := n.Stats()
	if overflows == 0 {
		t.Fatal("saturated buffer counted no overflows")
	}
	if n.Buffered() > 16<<10 {
		t.Fatal("buffer exceeded capacity")
	}
}

func TestAudioStreamLTR(t *testing.T) {
	s, tbl, _ := bench(t)
	_ = s
	a := NewAudioStream(tbl, "audio", 2*sim.Millisecond)
	tol, ok := tbl.MinTolerance()
	if !ok || tol != 2*sim.Millisecond {
		t.Fatalf("tolerance = %v,%v", tol, ok)
	}
	a.Stop()
	if _, ok := tbl.MinTolerance(); ok {
		t.Fatal("audio report not removed")
	}
}
