// Package sram models the on-chip save/restore SRAMs of Fig. 1(a): the SA
// context SRAM, the cores/GFX context SRAMs, and the 1 KB Boot SRAM of §6.2.
//
// Two properties matter for the paper's third technique. First, leakage:
// a high-performance processor's SRAM leaks ~5x more than an equal-capacity
// SRAM fabricated in the chipset's low-power process, even at retention
// voltage (§3, Observation 3). Second, volatility: dropping the retention
// supply loses the contents, which is exactly what ODRIPS exploits after
// the context has been moved to protected DRAM.
package sram

import (
	"fmt"
)

// Process selects the fabrication process, which sets leakage density.
type Process int

const (
	// ProcessorProcess is performance-optimized (high leakage).
	ProcessorProcess Process = iota
	// ChipsetProcess is power-optimized: ~5x less leakage at Vmin.
	ChipsetProcess
)

// Leakage densities in microwatts per KiB. The 5x processor/chipset ratio
// is the paper's measured relation; absolute values are calibrated so a
// ~225 KiB processor context array at retention draws ~4.5 mW nominal.
const (
	procRetentionUWPerKiB = 20.0
	procActiveUWPerKiB    = 60.0
	chipRetentionUWPerKiB = 4.0
	chipActiveUWPerKiB    = 14.0
)

// State is the SRAM power state.
type State int

const (
	// Off: supply gated, contents lost.
	Off State = iota
	// Retention: minimum data-retention voltage, contents preserved,
	// array not accessible.
	Retention
	// Active: full voltage, accessible.
	Active
)

var stateNames = [...]string{"off", "retention", "active"}

// String returns the state name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Array is a retention SRAM array holding real bytes.
type Array struct {
	name    string
	process Process
	size    int
	state   State
	data    []byte
	valid   bool // false after a power loss until next write

	// OnDraw, if non-nil, is called with the new nominal draw in mW on
	// every state change. The platform wires this to a power.Component.
	OnDraw func(mW float64)
}

// New creates an SRAM array, powered off.
func New(name string, process Process, sizeBytes int) *Array {
	if sizeBytes <= 0 {
		panic(fmt.Sprintf("sram: non-positive size %d for %s", sizeBytes, name))
	}
	return &Array{name: name, process: process, size: sizeBytes, data: make([]byte, sizeBytes)}
}

// Name returns the array label.
func (a *Array) Name() string { return a.name }

// Size returns the capacity in bytes.
func (a *Array) Size() int { return a.size }

// State returns the current power state.
func (a *Array) State() State { return a.state }

// Valid reports whether the contents survived since the last write (false
// after a power loss).
func (a *Array) Valid() bool { return a.valid }

// DrawMW returns the nominal leakage draw for a state.
func (a *Array) DrawMW(s State) float64 {
	kib := float64(a.size) / 1024
	switch {
	case s == Off:
		return 0
	case s == Retention && a.process == ProcessorProcess:
		return procRetentionUWPerKiB * kib / 1000
	case s == Retention:
		return chipRetentionUWPerKiB * kib / 1000
	case a.process == ProcessorProcess:
		return procActiveUWPerKiB * kib / 1000
	default:
		return chipActiveUWPerKiB * kib / 1000
	}
}

// SetState transitions the power state. Entering Off clears the contents.
func (a *Array) SetState(s State) {
	if s == a.state {
		return
	}
	if s == Off {
		for i := range a.data {
			a.data[i] = 0
		}
		a.valid = false
	}
	a.state = s
	if a.OnDraw != nil {
		a.OnDraw(a.DrawMW(s))
	}
}

// Write stores data at offset. The array must be Active.
func (a *Array) Write(offset int, data []byte) error {
	if a.state != Active {
		return fmt.Errorf("sram: %s: write in state %s", a.name, a.state)
	}
	if offset < 0 || offset+len(data) > a.size {
		return fmt.Errorf("sram: %s: write [%d,%d) out of range (size %d)", a.name, offset, offset+len(data), a.size)
	}
	copy(a.data[offset:], data)
	a.valid = true
	return nil
}

// Read copies size bytes at offset. The array must be Active and must not
// have lost power since the last write.
func (a *Array) Read(offset, size int) ([]byte, error) {
	if a.state != Active {
		return nil, fmt.Errorf("sram: %s: read in state %s", a.name, a.state)
	}
	if offset < 0 || offset+size > a.size {
		return nil, fmt.Errorf("sram: %s: read [%d,%d) out of range (size %d)", a.name, offset, offset+size, a.size)
	}
	if !a.valid {
		return nil, fmt.Errorf("sram: %s: contents invalid (power was lost)", a.name)
	}
	out := make([]byte, size)
	copy(out, a.data[offset:])
	return out, nil
}

// ReadInto copies len(dst) bytes at offset into dst without allocating,
// under the same state and range rules as Read.
func (a *Array) ReadInto(offset int, dst []byte) error {
	if a.state != Active {
		return fmt.Errorf("sram: %s: read in state %s", a.name, a.state)
	}
	if offset < 0 || offset+len(dst) > a.size {
		return fmt.Errorf("sram: %s: read [%d,%d) out of range (size %d)", a.name, offset, offset+len(dst), a.size)
	}
	if !a.valid {
		return fmt.Errorf("sram: %s: contents invalid (power was lost)", a.name)
	}
	copy(dst, a.data[offset:])
	return nil
}
