package sram

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestLeakageRatioProcessorVsChipset(t *testing.T) {
	p := New("proc", ProcessorProcess, 200<<10)
	c := New("chip", ChipsetProcess, 200<<10)
	ratio := p.DrawMW(Retention) / c.DrawMW(Retention)
	// Paper §3 Observation 3: ~5x.
	if math.Abs(ratio-5.0) > 1e-9 {
		t.Fatalf("processor/chipset retention leakage ratio = %v, want 5", ratio)
	}
}

func TestContextArrayDrawCalibration(t *testing.T) {
	// 225 KiB of processor-process retention SRAM should draw ~4.5 mW
	// nominal (the S/R SRAM budget in the DRIPS breakdown).
	a := New("ctx", ProcessorProcess, 225<<10)
	if got := a.DrawMW(Retention); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("225KiB retention draw = %v mW, want 4.5", got)
	}
	if a.DrawMW(Off) != 0 {
		t.Fatal("off draw not zero")
	}
	if a.DrawMW(Active) <= a.DrawMW(Retention) {
		t.Fatal("active draw not above retention draw")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := New("x", ProcessorProcess, 1024)
	a.SetState(Active)
	msg := []byte("processor context: CSRs, patches, fuses")
	if err := a.Write(100, msg); err != nil {
		t.Fatal(err)
	}
	got, err := a.Read(100, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
}

func TestAccessRequiresActive(t *testing.T) {
	a := New("x", ProcessorProcess, 64)
	if err := a.Write(0, []byte{1}); err == nil {
		t.Fatal("write while off succeeded")
	}
	a.SetState(Retention)
	if _, err := a.Read(0, 1); err == nil {
		t.Fatal("read in retention succeeded")
	}
}

func TestPowerLossDestroysContents(t *testing.T) {
	a := New("x", ProcessorProcess, 64)
	a.SetState(Active)
	if err := a.Write(0, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	a.SetState(Off)
	a.SetState(Active)
	if a.Valid() {
		t.Fatal("contents valid after power loss")
	}
	if _, err := a.Read(0, 1); err == nil {
		t.Fatal("read of invalidated contents succeeded")
	}
}

func TestRetentionPreservesContents(t *testing.T) {
	a := New("x", ChipsetProcess, 64)
	a.SetState(Active)
	if err := a.Write(10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	a.SetState(Retention)
	a.SetState(Active)
	got, err := a.Read(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("retention lost data: %v", got)
	}
}

func TestBoundsChecks(t *testing.T) {
	a := New("x", ProcessorProcess, 64)
	a.SetState(Active)
	if err := a.Write(60, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if err := a.Write(-1, []byte{1}); err == nil {
		t.Fatal("negative-offset write succeeded")
	}
	if err := a.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(60, 5); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

func TestOnDrawHook(t *testing.T) {
	a := New("x", ProcessorProcess, 1024)
	var draws []float64
	a.OnDraw = func(mw float64) { draws = append(draws, mw) }
	a.SetState(Active)
	a.SetState(Active) // no-op
	a.SetState(Retention)
	a.SetState(Off)
	if len(draws) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(draws))
	}
	if draws[2] != 0 || draws[1] >= draws[0] {
		t.Fatalf("draw sequence = %v", draws)
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size array did not panic")
		}
	}()
	New("bad", ProcessorProcess, 0)
}

// Property: any sequence of writes followed by reads over live power
// returns exactly what was written last at each offset.
func TestWriteReadProperty(t *testing.T) {
	f := func(writes []struct {
		Off  uint8
		Data [4]byte
	}) bool {
		a := New("p", ChipsetProcess, 256+4)
		a.SetState(Active)
		shadow := make([]byte, a.Size())
		for _, w := range writes {
			if err := a.Write(int(w.Off), w.Data[:]); err != nil {
				return false
			}
			copy(shadow[w.Off:], w.Data[:])
		}
		if len(writes) == 0 {
			return true
		}
		got, err := a.Read(0, a.Size())
		if err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
