package gpio

import (
	"testing"

	"odrips/internal/clock"
	"odrips/internal/sim"
)

func bench(t *testing.T) (*sim.Scheduler, *clock.Oscillator, *clock.Oscillator, *Bank) {
	t.Helper()
	s := sim.NewScheduler()
	fast := clock.NewOscillator(s, "xtal24", 24_000_000, 0, 0)
	slow := clock.NewOscillator(s, "xtal32", 32_768, 0, 0)
	fast.PowerOn()
	slow.PowerOn()
	return s, fast, slow, NewBank(s)
}

func TestOutputPin(t *testing.T) {
	_, _, _, b := bench(t)
	p := b.Claim("fet-ctl", Output)
	if err := p.SetOutput(true); err != nil {
		t.Fatal(err)
	}
	if !p.Level() {
		t.Fatal("output level not set")
	}
	if err := p.Drive(true); err == nil {
		t.Fatal("Drive on output pin succeeded")
	}
}

func TestInputModeRules(t *testing.T) {
	_, fast, _, b := bench(t)
	p := b.Claim("thermal", Input)
	if err := p.SetOutput(true); err == nil {
		t.Fatal("SetOutput on input pin succeeded")
	}
	if err := p.WatchInput(fast, nil); err != nil {
		t.Fatal(err)
	}
	out := b.Claim("out", Output)
	if err := out.WatchInput(fast, nil); err == nil {
		t.Fatal("WatchInput on output pin succeeded")
	}
}

func TestDuplicateClaimPanics(t *testing.T) {
	_, _, _, b := bench(t)
	b.Claim("x", Input)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate claim did not panic")
		}
	}()
	b.Claim("x", Output)
}

func TestLookup(t *testing.T) {
	_, _, _, b := bench(t)
	p := b.Claim("x", Input)
	if b.Lookup("x") != p || b.Lookup("y") != nil {
		t.Fatal("Lookup misbehaved")
	}
}

func TestEdgeDetectionLatencyQuantizedToSampler(t *testing.T) {
	s, fast, slow, b := bench(t)
	p := b.Claim("thermal", Input)

	// Sampled with the 32 kHz clock: detection waits for the next slow
	// edge (up to ~30.5 us) — the ODRIPS monitoring mode of §5.2.
	var at sim.Time
	if err := p.WatchInput(slow, func(rising bool, when sim.Time) {
		if rising {
			at = when
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Microsecond)
	if err := p.Drive(true); err != nil {
		t.Fatal(err)
	}
	driveAt := s.Now()
	s.RunFor(100 * sim.Microsecond)
	if at == 0 {
		t.Fatal("edge never detected")
	}
	lat := at.Sub(driveAt)
	slowPeriod := sim.FromSeconds(1.0 / 32768)
	if lat < 0 || lat > slowPeriod {
		t.Fatalf("detection latency %v outside one slow period %v", lat, slowPeriod)
	}
	// Detection must land exactly on a slow-clock edge.
	_, edge, _ := slow.NextEdge(at)
	if edge != at {
		t.Fatalf("detection at %v not on a 32 kHz edge", at)
	}

	// Re-armed on the 24 MHz clock (baseline DRIPS): latency < 42 ns.
	var at2 sim.Time
	if err := p.WatchInput(fast, func(rising bool, when sim.Time) {
		if !rising {
			at2 = when
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Drive(false); err != nil {
		t.Fatal(err)
	}
	drive2 := s.Now()
	s.RunFor(sim.Microsecond)
	if at2 == 0 {
		t.Fatal("falling edge never detected on fast sampler")
	}
	if lat := at2.Sub(drive2); lat > 42*sim.Nanosecond {
		t.Fatalf("fast-sampled latency %v exceeds one 24 MHz period", lat)
	}
}

func TestGlitchShorterThanSampleMissed(t *testing.T) {
	s, _, slow, b := bench(t)
	p := b.Claim("glitchy", Input)
	fired := 0
	if err := p.WatchInput(slow, func(bool, sim.Time) { fired++ }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Microsecond)
	// Pulse up and back down between two slow edges: invisible.
	if err := p.Drive(true); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Microsecond)
	if err := p.Drive(false); err != nil {
		t.Fatal(err)
	}
	s.RunFor(200 * sim.Microsecond)
	if fired != 0 {
		t.Fatalf("sub-sample glitch detected %d times", fired)
	}
}

func TestUnwatchStopsSampling(t *testing.T) {
	s, _, slow, b := bench(t)
	p := b.Claim("x", Input)
	fired := 0
	if err := p.WatchInput(slow, func(bool, sim.Time) { fired++ }); err != nil {
		t.Fatal(err)
	}
	p.Unwatch()
	if err := p.Drive(true); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	if fired != 0 {
		t.Fatal("unwatched pin fired")
	}
}

func TestStats(t *testing.T) {
	s, _, slow, b := bench(t)
	p := b.Claim("x", Input)
	if err := p.WatchInput(slow, func(bool, sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Microsecond)
	if err := p.Drive(true); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Millisecond)
	caught, _ := p.Stats()
	if caught != 1 {
		t.Fatalf("caught = %d, want 1", caught)
	}
}
