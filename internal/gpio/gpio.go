// Package gpio models the chipset's general-purpose IO block. ODRIPS uses
// two spare GPIOs (§5.3): one to monitor the embedded controller's thermal
// wake line, one to control the board FET that gates the processor's AON IO
// rail. Input pins are sampled on a clock — the 24 MHz clock in baseline
// DRIPS, the 32.768 kHz clock in ODRIPS (§5.2) — so wake detection latency
// is quantized to the sampling clock, which is exactly the latency/power
// trade the paper makes.
//
// Sampling is modeled lazily: externally driven changes are only evaluated
// at the next sampling-clock edge after the drive, which is observationally
// identical to per-edge sampling but costs O(changes) simulation events
// instead of one event per clock edge across a 30-second idle window.
package gpio

import (
	"fmt"
	"sort"

	"odrips/internal/clock"
	"odrips/internal/sim"
)

// Mode is a pin mode.
type Mode int

const (
	// Input pins are sampled and deliver edge callbacks.
	Input Mode = iota
	// Output pins are driven by firmware.
	Output
)

// Pin is a single GPIO.
type Pin struct {
	name string
	mode Mode

	level       bool // current (sampled, for inputs) level
	pending     bool // externally driven level awaiting a sampling edge
	havePending bool
	sampler     *clock.Oscillator
	sampleEvent sim.Event
	sched       *sim.Scheduler
	onEdge      func(rising bool, at sim.Time)

	edgesMissed  uint64
	edgesCaught  uint64
	outputDriven uint64
}

// Bank is a set of pins sharing a scheduler.
type Bank struct {
	sched *sim.Scheduler
	pins  map[string]*Pin
}

// NewBank creates an empty bank.
func NewBank(sched *sim.Scheduler) *Bank {
	return &Bank{sched: sched, pins: make(map[string]*Pin)}
}

// Claim allocates a named pin. Claiming a name twice panics: pin muxing is
// a board-design-time decision.
func (b *Bank) Claim(name string, mode Mode) *Pin {
	if _, dup := b.pins[name]; dup {
		panic(fmt.Sprintf("gpio: pin %q claimed twice", name))
	}
	p := &Pin{name: name, mode: mode, sched: b.sched}
	b.pins[name] = p
	return p
}

// Lookup returns a claimed pin or nil.
func (b *Bank) Lookup(name string) *Pin { return b.pins[name] }

// Pins returns every claimed pin sorted by name.
func (b *Bank) Pins() []*Pin {
	out := make([]*Pin, 0, len(b.pins))
	for _, p := range b.pins {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// FastForwardState exports the pin's behavior-relevant mutable state for
// the platform fast-forward fingerprint (DESIGN.md §12): everything that
// determines how the pin reacts to future drives and samples. The sampler
// is identified by oscillator name ("" when unwatched). The edge/drive
// statistics counters are deliberately not part of this: they are
// diagnostics with no behavioral feedback.
func (p *Pin) FastForwardState() (mode Mode, level, pending, havePending, watched, samplePending bool, sampler string) {
	if p.sampler != nil {
		sampler = p.sampler.Name()
	}
	return p.mode, p.level, p.pending, p.havePending, p.onEdge != nil, p.sampleEvent.Pending(), sampler
}

// Name returns the pin name.
func (p *Pin) Name() string { return p.name }

// Level returns the pin's current level (for inputs, the last sampled
// level; for outputs, the driven level).
func (p *Pin) Level() bool { return p.level }

// SetOutput drives an output pin. The new level is visible immediately to
// whatever the pin controls (the FET model reads it synchronously).
func (p *Pin) SetOutput(level bool) error {
	if p.mode != Output {
		return fmt.Errorf("gpio: %s: SetOutput on input pin", p.name)
	}
	p.level = level
	p.outputDriven++
	return nil
}

// WatchInput arms an input pin: externally driven changes are observed at
// the first rising edge of sampler after the drive, and fn fires when the
// observed level differs from the previous sample. Re-arming replaces the
// previous sampler/callback (the DRIPS↔ODRIPS transition does exactly this
// to move from 24 MHz to 32 kHz sampling).
func (p *Pin) WatchInput(sampler *clock.Oscillator, fn func(rising bool, at sim.Time)) error {
	if p.mode != Input {
		return fmt.Errorf("gpio: %s: WatchInput on output pin", p.name)
	}
	p.sampler = sampler
	p.onEdge = fn
	if p.havePending {
		p.scheduleSample()
	}
	return nil
}

// Unwatch stops sampling (pin still holds its level).
func (p *Pin) Unwatch() {
	p.sampler = nil
	p.onEdge = nil
	p.sched.Cancel(p.sampleEvent)
	p.sampleEvent = sim.Event{}
}

// Drive sets the externally-driven level of an input pin (e.g. the EC
// raising the thermal line). The change is only observed at the next
// sampling edge.
func (p *Pin) Drive(level bool) error {
	if p.mode != Input {
		return fmt.Errorf("gpio: %s: Drive on output pin", p.name)
	}
	p.pending = level
	p.havePending = true
	if p.sampler != nil {
		p.scheduleSample()
	}
	return nil
}

func (p *Pin) scheduleSample() {
	if p.sampleEvent.Pending() {
		return // an evaluation is already queued at the next edge
	}
	p.sampleEvent = p.sampler.ScheduleEdge("gpio.sample."+p.name, p.sample)
}

func (p *Pin) sample() {
	p.sampleEvent = sim.Event{}
	if !p.havePending {
		return
	}
	newLevel := p.pending
	p.havePending = false
	if newLevel == p.level {
		p.edgesMissed++ // glitch shorter than a sample period, or no-op
		return
	}
	p.level = newLevel
	p.edgesCaught++
	if p.onEdge != nil {
		p.onEdge(newLevel, p.sched.Now())
	}
}

// Stats returns edges caught and redundant samples observed.
func (p *Pin) Stats() (caught, missed uint64) { return p.edgesCaught, p.edgesMissed }
