package experiments

import (
	"fmt"
	"math/rand"

	"odrips/internal/dram"
	"odrips/internal/mee"
	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/report"
	"odrips/internal/sim"
)

// Ablation studies for the design choices the paper discusses but does not
// quantify: the MEE metadata cache size behind the §6.3 latencies, the two
// timer-wake design alternatives of §4.1.1, the EPG-vs-FET choice of §5.1,
// and the sensitivity of the break-even residencies to the exit
// re-initialization cost.

// MEECacheRow is one cache size of the MEE ablation.
type MEECacheRow struct {
	Lines        int
	SaveBlocks   uint64
	RestoreBlcks uint64
	SaveLat      sim.Duration
	RestoreLat   sim.Duration
	HitRatePct   float64
}

// MEECacheAblation sweeps the MEE metadata cache size and reports context
// save/restore traffic and latency for the ~200 KB context.
type MEECacheAblation struct {
	Rows []MEECacheRow
}

// AblationMEECache runs the sweep.
func AblationMEECache() (*MEECacheAblation, error) {
	const dataBlocks = 3141 // the serialized ~196 KiB context
	payload := make([]byte, dataBlocks*mee.BlockSize)
	rand.New(rand.NewSource(99)).Read(payload)
	var key [32]byte
	key[0] = 0x5A

	sizes := []int{16, 32, 64, 128, 256, 512}
	rows, err := runIndexed(len(sizes), 0,
		func(i int) string { return fmt.Sprintf("%d cache lines", sizes[i]) },
		func(i int) (MEECacheRow, error) {
			lines := sizes[i]
			mem := dram.New(dram.Skylake8GB())
			eng, err := mee.New(mem, 0x1000_0000, dataBlocks, key, lines)
			if err != nil {
				return MEECacheRow{}, err
			}
			eng.ResetStats()
			if err := eng.WriteRegion(payload); err != nil {
				return MEECacheRow{}, err
			}
			if err := eng.Flush(); err != nil {
				return MEECacheRow{}, err
			}
			ws := eng.Stats()
			cold, err := mee.ImportState(mem, eng.ExportState(), lines)
			if err != nil {
				return MEECacheRow{}, err
			}
			if _, err := cold.ReadRegion(len(payload)); err != nil {
				return MEECacheRow{}, err
			}
			rs := cold.Stats()
			hitPct := 0.0
			if ws.CacheHits+ws.CacheMisses > 0 {
				hitPct = 100 * float64(ws.CacheHits) / float64(ws.CacheHits+ws.CacheMisses)
			}
			return MEECacheRow{
				Lines:        lines,
				SaveBlocks:   ws.TotalBlocks(),
				RestoreBlcks: rs.TotalBlocks(),
				SaveLat:      mem.TransferTime(int(ws.TotalBlocks())*mee.BlockSize, true),
				RestoreLat:   mem.TransferTime(int(rs.TotalBlocks())*mee.BlockSize, false),
				HitRatePct:   hitPct,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &MEECacheAblation{Rows: rows}, nil
}

// Table renders the cache ablation.
func (r *MEECacheAblation) Table() *report.Table {
	t := report.NewTable("Ablation — MEE metadata cache size vs. context transfer",
		"Cache lines", "Save traffic", "Save", "Restore", "Write hit rate")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d (%d KiB)", row.Lines, row.Lines*64/1024),
			fmt.Sprintf("%d blk", row.SaveBlocks),
			fmt.Sprintf("%.1f us", row.SaveLat.Microseconds()),
			fmt.Sprintf("%.1f us", row.RestoreLat.Microseconds()),
			fmt.Sprintf("%.1f%%", row.HitRatePct))
	}
	t.AddNote("the shipped configuration (256 lines / 16 KiB) reproduces the paper's 18/13 us")
	return t
}

// TimerAltRow is one §4.1.1 design alternative.
type TimerAltRow struct {
	Design     string
	IdleMW     float64
	ExtraPins  int
	EnablesFET bool
	Note       string
}

// TimerAltAblation compares the two §4.1.1 designs for slow-clock timer
// wake handling.
type TimerAltAblation struct {
	Rows []TimerAltRow
}

// AblationTimerAlternatives quantifies the choice the paper makes: hosting
// the slow timer in the chipset (alternative 2) versus bringing the
// 32.768 kHz crystal onto the processor die (alternative 1).
func AblationTimerAlternatives() (*TimerAltAblation, error) {
	bud := platform.Skylake()
	configs := []platform.Config{
		platform.DefaultConfig(),
		platform.DefaultConfig().WithTechniques(platform.WakeUpOff),
		platform.DefaultConfig().WithTechniques(platform.WakeUpOff | platform.AONIOGate),
	}
	results, err := runIndexed(len(configs), 0,
		func(i int) string { return configs[i].Name() },
		func(i int) (platform.Result, error) { return runConfig(configs[i], 2) })
	if err != nil {
		return nil, err
	}
	base, alt2, alt2Gated := results[0], results[1], results[2]
	// Alternative 1, modeled analytically on the same budget: the 24 MHz
	// crystal still turns off and the timer toggles at 32 kHz on-die
	// (residual ~0.06 mW nominal), but a new clock input pad plus on-die
	// 32 kHz distribution costs ~0.5 mW nominal, the processor keeps its
	// AON IO ring powered (the chipset is not the wake hub, so the FET
	// gating of §5 is off the table), and the extra package pin raises
	// cost (ITRS; paper footnote 3).
	const (
		alt1TimerResidualMW = 0.06
		alt1PadMW           = 0.50
	)
	alt1Idle := base.IdlePowerMW() +
		(-bud.Xtal24MW-bud.WakeTimerIdleMW+alt1TimerResidualMW+alt1PadMW)/bud.EffIdle -
		(bud.VRPmuMW - bud.VRPmuShedMW)

	return &TimerAltAblation{Rows: []TimerAltRow{
		{
			Design: "Baseline DRIPS (24 MHz timer on-die)",
			IdleMW: base.IdlePowerMW(),
			Note:   "reference",
		},
		{
			Design:    "Alt 1: 32 kHz crystal into the processor",
			IdleMW:    alt1Idle,
			ExtraPins: 1,
			Note:      "AON IO gating unavailable; extra package pin",
		},
		{
			Design:     "Alt 2: chipset hosts the timer (WAKE-UP-OFF)",
			IdleMW:     alt2.IdlePowerMW(),
			EnablesFET: true,
			Note:       "paper's choice",
		},
		{
			Design:     "Alt 2 + AON IO gating it enables",
			IdleMW:     alt2Gated.IdlePowerMW(),
			EnablesFET: true,
			Note:       "the §5 follow-on only alt 2 allows",
		},
	}}, nil
}

// Table renders the §4.1.1 comparison.
func (r *TimerAltAblation) Table() *report.Table {
	t := report.NewTable("Ablation — §4.1.1 timer-wake design alternatives",
		"Design", "Idle power", "Extra pins", "Enables AON IO gating", "Note")
	for _, row := range r.Rows {
		fet := "no"
		if row.EnablesFET {
			fet = "yes"
		}
		t.AddRow(row.Design, fmt.Sprintf("%.2f mW", row.IdleMW),
			fmt.Sprintf("%d", row.ExtraPins), fet, row.Note)
	}
	t.AddNote("alternative 2 wins on pins, on idle power, and by unlocking the FET gating")
	return t
}

// GateRow is one §5.1 gating option.
type GateRow struct {
	Gate      string
	IdleMW    float64
	LeakPct   float64
	ExtraPins int
}

// GateAblation compares the board FET against an embedded power gate.
type GateAblation struct {
	Rows []GateRow
}

// AblationIOGate quantifies §5.1: the board FET leaks <0.3% of the gated
// load; an embedded power gate (EPG) is area-efficient but leaks more and
// needs control pins.
func AblationIOGate() (*GateAblation, error) {
	opts := []struct {
		name string
		frac float64
		pins int
	}{
		{"Board FET (paper's choice)", 0.003, 0},
		{"Embedded power gate (EPG)", 0.025, 2},
		{"No gating (baseline AON IOs)", 1.0, 0},
	}
	rows, err := runIndexed(len(opts), 0,
		func(i int) string { return opts[i].name },
		func(i int) (GateRow, error) {
			opt := opts[i]
			cfg := platform.ODRIPSConfig()
			if opt.frac < 1.0 {
				cfg.FETLeakageFraction = opt.frac
			} else {
				cfg.Techniques = platform.WakeUpOff | platform.CtxSGXDRAM // ring stays powered
			}
			res, err := runConfig(cfg, 2)
			if err != nil {
				return GateRow{}, err
			}
			return GateRow{
				Gate:      opt.name,
				IdleMW:    res.IdlePowerMW(),
				LeakPct:   opt.frac * 100,
				ExtraPins: opt.pins,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &GateAblation{Rows: rows}, nil
}

// Table renders the gate comparison.
func (r *GateAblation) Table() *report.Table {
	t := report.NewTable("Ablation — §5.1 AON IO gating options",
		"Gate", "Idle power", "Off-state leakage", "Extra pins")
	for _, row := range r.Rows {
		t.AddRow(row.Gate, fmt.Sprintf("%.2f mW", row.IdleMW),
			fmt.Sprintf("%.1f%% of load", row.LeakPct),
			fmt.Sprintf("%d", row.ExtraPins))
	}
	return t
}

// ReinitRow is one point of the break-even sensitivity sweep.
type ReinitRow struct {
	Scale     float64
	BreakEven sim.Duration
	ExitAvg   sim.Duration
}

// ReinitSensitivity sweeps the exit re-initialization cost and shows how
// the ODRIPS break-even residency scales — the knob our calibration pins
// to the paper's measured 6.5 ms.
type ReinitSensitivity struct {
	Rows []ReinitRow
}

// AblationReinitSensitivity runs the sweep; the baseline and all four
// scale points evaluate in parallel.
func AblationReinitSensitivity() (*ReinitSensitivity, error) {
	scales := []float64{0.5, 1.0, 2.0, 4.0}
	results, err := runIndexed(len(scales)+1, 0,
		func(i int) string {
			if i == 0 {
				return "baseline"
			}
			return fmt.Sprintf("reinit x%.1f", scales[i-1])
		},
		func(i int) (platform.Result, error) {
			if i == 0 {
				return runConfig(platform.DefaultConfig(), 2)
			}
			cfg := platform.ODRIPSConfig()
			cfg.ExitReinitScale = scales[i-1]
			return runConfig(cfg, 2)
		})
	if err != nil {
		return nil, err
	}
	base := results[0]
	out := &ReinitSensitivity{}
	for i, scale := range scales {
		res := results[i+1]
		be, err := power.BreakEven(base.CycleEnergy, res.CycleEnergy)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ReinitRow{Scale: scale, BreakEven: be, ExitAvg: res.ExitAvg})
	}
	return out, nil
}

// Table renders the sensitivity sweep.
func (r *ReinitSensitivity) Table() *report.Table {
	t := report.NewTable("Ablation — break-even vs. exit re-initialization cost (ODRIPS)",
		"Re-init scale", "Exit latency", "Break-even")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.1fx", row.Scale),
			fmt.Sprintf("%.0f us", row.ExitAvg.Microseconds()),
			fmt.Sprintf("%.2f ms", row.BreakEven.Milliseconds()))
	}
	t.AddNote("1.0x is the calibration that lands the paper's 6.5 ms")
	return t
}
