package experiments

import (
	"fmt"

	"odrips/internal/device"
	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/report"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// CoalescingRow is one buffer size of the Observation-1 study.
type CoalescingRow struct {
	Label        string
	BufferKiB    int
	WakesPerHour float64
	AvgMW        float64
	IdlePct      float64
	Overflows    uint64
}

// CoalescingResult quantifies the paper's Observation 1: peripheral
// buffering is what affords millisecond-scale DRIPS exit latencies. Bigger
// device buffers coalesce interrupts into fewer wakes and push average
// power toward the idle floor; a device with a too-small buffer reports an
// LTR tolerance below the C10 exit latency and pins the platform out of
// DRIPS entirely.
type CoalescingResult struct {
	Rows []CoalescingRow
}

// WakeCoalescing sweeps the NIC RX buffer size on the ODRIPS platform with
// 20 KB/s of background ingress. The buffer points — plus the LTR gating
// end of the spectrum, an isochronous consumer whose buffer depth
// undercuts the C10 exit latency and keeps the platform out of DRIPS no
// matter what the NIC does — are independent platform runs and evaluate in
// parallel.
func WakeCoalescing() (*CoalescingResult, error) {
	sizes := []int{16, 32, 64, 128, 256}
	rows, err := runIndexed(len(sizes)+1, 0,
		func(i int) string {
			if i == len(sizes) {
				return "LTR-gated audio"
			}
			return fmt.Sprintf("%d KiB RX buffer", sizes[i])
		},
		func(i int) (CoalescingRow, error) {
			if i == len(sizes) {
				return coalescingGatedPoint()
			}
			return coalescingPoint(sizes[i])
		})
	if err != nil {
		return nil, err
	}
	return &CoalescingResult{Rows: rows}, nil
}

func coalescingPoint(bufKiB int) (CoalescingRow, error) {
	p, err := platform.New(platform.ODRIPSConfig())
	if err != nil {
		return CoalescingRow{}, err
	}
	nic, err := device.NewNIC(p.Scheduler(), p.LTR(), p, device.NICConfig{
		Name:        "nic",
		RateKBps:    20,
		PacketBytes: 1500,
		BufferBytes: bufKiB << 10,
		Seed:        11,
	})
	if err != nil {
		return CoalescingRow{}, err
	}
	nic.Start()
	p.OnQuiesce(nic.Stop)
	// Forty OS cycles; the NIC usually wakes the platform first.
	res, err := p.RunCycles(workload.Fixed(40, 0, 30*sim.Second))
	if err != nil {
		return CoalescingRow{}, err
	}
	var wakes uint64
	for _, n := range res.WakeCounts {
		wakes += n
	}
	_, _, overflows := nic.Stats()
	return CoalescingRow{
		Label:        fmt.Sprintf("%d KiB RX buffer", bufKiB),
		BufferKiB:    bufKiB,
		WakesPerHour: float64(wakes) / res.Duration.Seconds() * 3600,
		AvgMW:        res.AvgPowerMW,
		IdlePct:      100 * res.Residency[power.Idle],
		Overflows:    overflows,
	}, nil
}

func coalescingGatedPoint() (CoalescingRow, error) {
	p, err := platform.New(platform.ODRIPSConfig())
	if err != nil {
		return CoalescingRow{}, err
	}
	// 100 us of audio buffer: below every deep state's exit latency.
	device.NewAudioStream(p.LTR(), "audio", 100*sim.Microsecond)
	res, err := p.RunCycles(workload.Fixed(4, 0, 30*sim.Second))
	if err != nil {
		return CoalescingRow{}, err
	}
	var wakes uint64
	for _, n := range res.WakeCounts {
		wakes += n
	}
	return CoalescingRow{
		Label:        "0.1 ms audio buffer (LTR pins shallow)",
		WakesPerHour: float64(wakes) / res.Duration.Seconds() * 3600,
		AvgMW:        res.AvgPowerMW,
		IdlePct:      100 * res.Residency[power.Idle],
	}, nil
}

// Table renders the study.
func (r *CoalescingResult) Table() *report.Table {
	t := report.NewTable("Observation 1 — buffering, wake coalescing, and LTR gating (ODRIPS)",
		"Device buffering", "Wakes/hour", "Avg power", "DRIPS residency", "Drops")
	for _, row := range r.Rows {
		t.AddRow(row.Label,
			fmt.Sprintf("%.0f", row.WakesPerHour),
			fmt.Sprintf("%.1f mW", row.AvgMW),
			fmt.Sprintf("%.2f%%", row.IdlePct),
			fmt.Sprintf("%d", row.Overflows))
	}
	t.AddNote("bigger buffers coalesce wakes and push power toward the %.1f mW idle floor;", 43.4)
	t.AddNote("a buffer below the C10 exit latency forbids DRIPS via LTR (§2.2)")
	return t
}
