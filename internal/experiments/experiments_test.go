package experiments

import (
	"math"
	"strings"
	"testing"

	"odrips/internal/sim"
)

func TestFig1bMatchesPaper(t *testing.T) {
	r, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalMW-60) > 1 {
		t.Errorf("DRIPS total = %.2f mW, want ~60", r.TotalMW)
	}
	if math.Abs(r.ProcessorPct-18) > 1.5 {
		t.Errorf("processor share = %.1f%%, want ~18%%", r.ProcessorPct)
	}
	find := func(label string) BreakdownSlice {
		for _, s := range r.Slices {
			if s.Label == label {
				return s
			}
		}
		t.Fatalf("slice %q missing", label)
		return BreakdownSlice{}
	}
	if s := find("AON IOs (4)"); math.Abs(s.Percent-7) > 1 {
		t.Errorf("AON IO = %.1f%%, want ~7%%", s.Percent)
	}
	if s := find("S/R SRAMs (7,8)"); math.Abs(s.Percent-9) > 1 {
		t.Errorf("S/R SRAM = %.1f%%, want ~9%%", s.Percent)
	}
	wake := find("Wake-up & timer (5)").Percent + find("24MHz crystal (1)").Percent
	if math.Abs(wake-5) > 1 {
		t.Errorf("wake-up hardware = %.1f%%, want ~5%%", wake)
	}
	// Slices must cover everything.
	var sum float64
	for _, s := range r.Slices {
		sum += s.Percent
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("slices sum to %.3f%%", sum)
	}
	if !strings.Contains(r.Table().String(), "DRIPS") {
		t.Error("table render broken")
	}
}

func TestFig2MatchesPaper(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if r.AverageMW < 70 || r.AverageMW > 80 {
		t.Errorf("average = %.2f mW", r.AverageMW)
	}
	// Equation 1 over measured rows must reproduce the measured average.
	if math.Abs(r.Equation1-r.AverageMW) > 0.05 {
		t.Errorf("Eq.1 %.3f vs measured %.3f", r.Equation1, r.AverageMW)
	}
	var idleRes, activePow float64
	for _, row := range r.Rows {
		switch row.State.String() {
		case "DRIPS":
			idleRes = row.Residency
		case "Active":
			activePow = row.PowerMW
		}
	}
	if idleRes < 0.99 {
		t.Errorf("DRIPS residency = %.4f", idleRes)
	}
	if activePow < 2500 || activePow > 3500 {
		t.Errorf("active power = %.0f mW, want ~3000", activePow)
	}
}

func TestFig3bWaveform(t *testing.T) {
	r, err := Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"assert-switch", "slow-loaded", "deassert-switch", "fast-reloaded"}
	if len(r.Events) != len(want) {
		t.Fatalf("events = %d (%v), want %d", len(r.Events), r.Events, len(want))
	}
	var last sim.Time
	var values []uint64
	for i, e := range r.Events {
		if e.Event != want[i] {
			t.Errorf("event %d = %s, want %s", i, e.Event, want[i])
		}
		if e.At < last {
			t.Error("events out of order")
		}
		last = e.At
		values = append(values, e.Value)
	}
	// Timer values must be monotonically non-decreasing through the
	// hand-over (counting correctness, §4.1.3).
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] {
			t.Errorf("timer value regressed: %v", values)
		}
	}
}

func TestCalibrationExperiment(t *testing.T) {
	r, err := Calibration()
	if err != nil {
		t.Fatal(err)
	}
	if r.IntBits != 10 || r.FracBits != 21 {
		t.Errorf("m,f = %d,%d", r.IntBits, r.FracBits)
	}
	if r.DriftPPB > 1.0 {
		t.Errorf("quantization drift = %.3f ppb", r.DriftPPB)
	}
	if r.MeasuredDriftPPB > 5.0 {
		t.Errorf("measured drift = %.3f ppb", r.MeasuredDriftPPB)
	}
	if math.Abs(r.Window.Seconds()-64) > 0.1 {
		t.Errorf("window = %v", r.Window)
	}
}

func TestFig6aWithoutSweep(t *testing.T) {
	r, err := Fig6a(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	want := map[string]float64{
		"WAKE-UP-OFF":  6,
		"AON-IO-GATE":  13,
		"CTX-SGX-DRAM": 8,
		"ODRIPS":       22,
	}
	for _, row := range r.Rows[1:] {
		if w, ok := want[row.Name]; ok {
			if math.Abs(row.ReductionPct-w) > 1.0 {
				t.Errorf("%s reduction = %.1f%%, paper %v%%", row.Name, row.ReductionPct, w)
			}
		}
	}
	wantBE := map[string]float64{
		"WAKE-UP-OFF":  6.6,
		"AON-IO-GATE":  6.3,
		"CTX-SGX-DRAM": 7.4,
		"ODRIPS":       6.5,
	}
	for _, row := range r.Rows[1:] {
		if w, ok := wantBE[row.Name]; ok {
			if math.Abs(row.BreakEven.Milliseconds()-w) > 0.5 {
				t.Errorf("%s break-even = %.2f ms, paper %v ms", row.Name, row.BreakEven.Milliseconds(), w)
			}
		}
	}
}

func TestSweepBreakEvenAgreesWithAnalytic(t *testing.T) {
	// One configuration, coarse grid: the empirical crossover must land
	// near the analytic break-even.
	r, err := Fig6a(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var odrips ConfigResult
	for _, row := range r.Rows {
		if row.Name == "ODRIPS" {
			odrips = row
		}
	}
	opts := SweepOptions{
		Enabled:        true,
		Lo:             4 * sim.Millisecond,
		Hi:             12 * sim.Millisecond,
		Step:           500 * sim.Microsecond,
		CyclesPerPoint: 1,
	}
	be, ok, err := SweepBreakEven(fig6aConfigs()[0], fig6aConfigs()[4], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no crossover found in sweep")
	}
	if diff := math.Abs(be.Milliseconds() - odrips.BreakEven.Milliseconds()); diff > 1.0 {
		t.Errorf("sweep BE %.2f ms vs analytic %.2f ms", be.Milliseconds(), odrips.BreakEven.Milliseconds())
	}
}

func TestFig6bShape(t *testing.T) {
	r, err := Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// 1.0 GHz saves, 1.5 GHz costs (§8.1).
	if r.Rows[1].ReductionPct <= 0 {
		t.Errorf("1.0 GHz delta = %.2f%%, want a saving", r.Rows[1].ReductionPct)
	}
	if r.Rows[2].ReductionPct >= 0 {
		t.Errorf("1.5 GHz delta = %.2f%%, want a penalty", r.Rows[2].ReductionPct)
	}
}

func TestFig6cShape(t *testing.T) {
	r, err := Fig6c()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Lower rates save slightly and stretch the context transfer (§8.2).
	if !(r.Rows[1].ReductionPct > 0 && r.Rows[2].ReductionPct > r.Rows[1].ReductionPct) {
		t.Errorf("reductions = %.2f, %.2f", r.Rows[1].ReductionPct, r.Rows[2].ReductionPct)
	}
	if r.Rows[2].ReductionPct > 1.5 {
		t.Errorf("0.8 GHz saving = %.2f%%, paper says under ~1%%", r.Rows[2].ReductionPct)
	}
	if !(r.CtxSave[2] > r.CtxSave[1] && r.CtxSave[1] > r.CtxSave[0]) {
		t.Errorf("ctx save latencies: %v", r.CtxSave)
	}
}

func TestFig6dShape(t *testing.T) {
	r, err := Fig6d(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ConfigResult{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	odrips, mram, pcm := byName["ODRIPS"], byName["ODRIPS-MRAM"], byName["ODRIPS-PCM"]
	if math.Abs(pcm.ReductionPct-37) > 1.5 {
		t.Errorf("ODRIPS-PCM = -%.1f%%, paper -37%%", pcm.ReductionPct)
	}
	if mram.AvgMW > odrips.AvgMW {
		t.Errorf("MRAM avg %.3f not below ODRIPS %.3f", mram.AvgMW, odrips.AvgMW)
	}
	if mram.BreakEven >= odrips.BreakEven || mram.BreakEven >= pcm.BreakEven {
		t.Errorf("MRAM break-even %v not lowest (ODRIPS %v, PCM %v)",
			mram.BreakEven, odrips.BreakEven, pcm.BreakEven)
	}
}

func TestCtxLatencyExperiment(t *testing.T) {
	r, err := CtxLatency()
	if err != nil {
		t.Fatal(err)
	}
	byMedium := map[string]CtxLatencyRow{}
	for _, row := range r.Rows {
		byMedium[row.Medium] = row
	}
	sgx := byMedium["SGX DRAM (ODRIPS)"]
	if us := sgx.Save.Microseconds(); us < 14 || us > 24 {
		t.Errorf("SGX save = %.1f us, paper ~18", us)
	}
	if us := sgx.Restore.Microseconds(); us < 10 || us > 18 {
		t.Errorf("SGX restore = %.1f us, paper ~13", us)
	}
	if pcm := byMedium["PCM (ODRIPS-PCM)"]; pcm.Save <= sgx.Save {
		t.Error("PCM save not slower than DRAM save")
	}
	if mram := byMedium["eMRAM (ODRIPS-MRAM)"]; mram.Save >= sgx.Save {
		t.Error("eMRAM save not faster than DRAM save")
	}
}

func TestModelValidation(t *testing.T) {
	r, err := ModelValidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper's model achieved ~95%; ours must too, on every variant.
	if r.WorstAccPct < 95 {
		t.Errorf("worst model accuracy = %.1f%%, want >= 95%%", r.WorstAccPct)
	}
}

func TestTable1(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"DDR3L-1600", "8 GB", "24 MHz", "32.768 kHz", "74%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestAllTablesRender(t *testing.T) {
	f1, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Fig6a(SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{f1.Table().String(), f6.Table().String(), f6.Chart().String()} {
		if len(s) < 50 {
			t.Error("suspiciously short render")
		}
	}
}
