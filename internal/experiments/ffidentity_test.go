// This external test package exercises the public odrips API (legal even
// though odrips imports experiments: external test packages may import
// their importers). It deliberately does not live in the root package:
// adding test code there shifts the root bench binary's code layout, which
// measurably skews the rand-bound microbenchmarks it hosts.
package experiments_test

import (
	"bytes"
	"fmt"
	"testing"

	"odrips"
)

// renderAllExperiments regenerates the full `odrips-bench -exp all` output
// (plus the opt-in fault sweep) under the given fast-forward mode, with
// cold point caches so no measurement leaks between modes.
func renderAllExperiments(t *testing.T, mode odrips.FFMode) []byte {
	t.Helper()
	odrips.SetDefaultFastForward(mode)
	odrips.ResetPointCache()
	var buf bytes.Buffer
	sweep := odrips.DefaultSweep()

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			t.Fatalf("%s at -fastforward=%v: %v", name, mode, err)
		}
	}
	run("table1", func() error { odrips.Table1().Render(&buf); return nil })
	run("fig1b", func() error {
		r, err := odrips.Fig1b()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("fig2", func() error {
		r, err := odrips.Fig2()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("fig3b", func() error {
		r, err := odrips.Fig3b()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("calibration", func() error {
		r, err := odrips.Calibration()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("fig6a", func() error {
		r, err := odrips.Fig6a(sweep)
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		r.Chart().Render(&buf)
		return nil
	})
	run("fig6b", func() error {
		r, err := odrips.Fig6b()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("fig6c", func() error {
		r, err := odrips.Fig6c()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("fig6d", func() error {
		r, err := odrips.Fig6d(sweep)
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("ctxlatency", func() error {
		r, err := odrips.CtxLatency()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("validation", func() error {
		r, err := odrips.ModelValidation()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("ablations", func() error {
		mc, err := odrips.AblationMEECache()
		if err != nil {
			return err
		}
		mc.Table().Render(&buf)
		ta, err := odrips.AblationTimerAlternatives()
		if err != nil {
			return err
		}
		ta.Table().Render(&buf)
		gg, err := odrips.AblationIOGate()
		if err != nil {
			return err
		}
		gg.Table().Render(&buf)
		rs, err := odrips.AblationReinitSensitivity()
		if err != nil {
			return err
		}
		rs.Table().Render(&buf)
		return nil
	})
	run("coalescing", func() error {
		r, err := odrips.WakeCoalescing()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("scaling", func() error {
		r, err := odrips.ProcessScaling()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("standby", func() error {
		r, err := odrips.Standby()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("anatomy", func() error {
		for _, tech := range []odrips.Technique{0, odrips.ODRIPS} {
			r, err := odrips.TransitionAnatomy(tech)
			if err != nil {
				return err
			}
			r.Table(fmt.Sprintf("tech=%d", tech)).Render(&buf)
		}
		return nil
	})
	run("aging", func() error {
		r, err := odrips.CalibrationAging()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("tdp", func() error {
		r, err := odrips.TDPSensitivity()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("wakelatency", func() error {
		r, err := odrips.WakeLatency()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	run("faultsweep", func() error {
		r, err := odrips.FaultSweep()
		if err != nil {
			return err
		}
		r.Table().Render(&buf)
		return nil
	})
	return buf.Bytes()
}

// TestExpAllByteIdenticalAcrossFastForward is the acceptance criterion:
// the full experiment set renders byte-identically with the fast-forward
// engine on and off, and passes in verify mode (which re-simulates every
// memoized cycle and fails the run on any divergence).
func TestExpAllByteIdenticalAcrossFastForward(t *testing.T) {
	t.Cleanup(func() {
		odrips.SetDefaultFastForward(odrips.FFOn)
		odrips.ResetPointCache()
	})
	off := renderAllExperiments(t, odrips.FFOff)
	on := renderAllExperiments(t, odrips.FFOn)
	if !bytes.Equal(off, on) {
		line := 1
		for i := range off {
			if i >= len(on) || off[i] != on[i] {
				break
			}
			if off[i] == '\n' {
				line++
			}
		}
		t.Fatalf("-exp all output diverged between -fastforward=off and on (first difference near line %d; %d vs %d bytes)",
			line, len(off), len(on))
	}
	verify := renderAllExperiments(t, odrips.FFVerify)
	if !bytes.Equal(off, verify) {
		t.Fatalf("-exp all output diverged in -fastforward=verify (%d vs %d bytes)", len(off), len(verify))
	}
}
