package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"odrips/internal/platform"
	"odrips/internal/sim"
)

// The engine's core guarantee: results are identical at any worker count.
func TestRunPointsDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := func() []PointSpec[string] {
		out := make([]PointSpec[string], 64)
		for i := range out {
			i := i
			out[i] = PointSpec[string]{
				Label: fmt.Sprintf("p%d", i),
				Run:   func() (string, error) { return fmt.Sprintf("value-%d", i*i), nil },
			}
		}
		return out
	}
	seq, err := RunPoints(specs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := RunPoints(specs(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d diverged from sequential:\nseq: %v\npar: %v", workers, seq, par)
		}
	}
}

// The same guarantee end-to-end on the real sweep: the empirical
// break-even must be byte-identical sequential vs parallel, with the memo
// cache cleared in between so both runs actually simulate.
func TestSweepBreakEvenDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("platform sweep in -short mode")
	}
	o := SweepOptions{
		Enabled:        true,
		Lo:             600 * sim.Microsecond,
		Hi:             10 * sim.Millisecond,
		Step:           sim.Millisecond,
		CyclesPerPoint: 1,
	}
	base := platform.DefaultConfig()
	opt := platform.ODRIPSConfig()

	ResetPointCache()
	o.Workers = 1
	beSeq, okSeq, err := SweepBreakEven(base, opt, o)
	if err != nil {
		t.Fatal(err)
	}
	ResetPointCache()
	o.Workers = 8
	bePar, okPar, err := SweepBreakEven(base, opt, o)
	if err != nil {
		t.Fatal(err)
	}
	if beSeq != bePar || okSeq != okPar {
		t.Fatalf("sweep diverged: workers=1 -> (%v, %v), workers=8 -> (%v, %v)",
			beSeq, okSeq, bePar, okPar)
	}

	// And a cached re-run is bit-identical to the cold runs.
	beHot, okHot, err := SweepBreakEven(base, opt, o)
	if err != nil {
		t.Fatal(err)
	}
	if beHot != beSeq || okHot != okSeq {
		t.Fatalf("memo cache changed the answer: cold (%v, %v), hot (%v, %v)",
			beSeq, okSeq, beHot, okHot)
	}
}

// One failing point cancels the pool — workers stop claiming points — and
// the error surfaces with the point's index and label.
func TestRunPointsErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	specs := make([]PointSpec[int], 1000)
	for i := range specs {
		i := i
		specs[i] = PointSpec[int]{
			Label: fmt.Sprintf("p%d", i),
			Run: func() (int, error) {
				ran.Add(1)
				if i == 3 {
					return 0, boom
				}
				return i, nil
			},
		}
	}
	results, err := RunPoints(specs, 4)
	if err == nil {
		t.Fatal("failing point did not surface an error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error lost its cause: %v", err)
	}
	if !strings.Contains(err.Error(), "point 3") || !strings.Contains(err.Error(), "p3") {
		t.Fatalf("error does not identify the failing point: %v", err)
	}
	if results[3].Err == nil {
		t.Fatal("failing point's result slot does not record the error")
	}
	// Cancellation: with 1000 points and the failure at index 3, the pool
	// must stop long before draining everything.
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("pool did not cancel: ran all %d points", n)
	}
}

// Sequential error propagation takes the fast path but behaves the same.
func TestRunPointsErrorSequential(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	specs := []PointSpec[int]{
		{Run: func() (int, error) { ran++; return 1, nil }},
		{Run: func() (int, error) { ran++; return 0, boom }},
		{Run: func() (int, error) { ran++; return 3, nil }},
	}
	_, err := RunPoints(specs, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 2 {
		t.Fatalf("sequential path ran %d points after the failure, want stop at 2", ran)
	}
}

func TestRunPointsEmpty(t *testing.T) {
	results, err := RunPoints[int](nil, 4)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty input: results=%v err=%v", results, err)
	}
}

// The satellite fix: a zero-value grid (Enabled set, Step unset) must be a
// descriptive error, not a hang or a silent no-op.
func TestSweepOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    SweepOptions
		want string
	}{
		{"zero step", SweepOptions{Enabled: true, Lo: sim.Millisecond, Hi: sim.Second}, "step"},
		{"negative step", SweepOptions{Enabled: true, Lo: sim.Millisecond, Hi: sim.Second, Step: -1}, "step"},
		{"zero lo", SweepOptions{Enabled: true, Hi: sim.Second, Step: sim.Millisecond}, "lower bound"},
		{"inverted", SweepOptions{Enabled: true, Lo: sim.Second, Hi: sim.Millisecond, Step: sim.Millisecond}, "inverted"},
		{"negative cycles", SweepOptions{Enabled: true, Lo: 1, Hi: 2, Step: 1, CyclesPerPoint: -1}, "cycles"},
		{"negative workers", SweepOptions{Enabled: true, Lo: 1, Hi: 2, Step: 1, Workers: -1}, "worker"},
	}
	for _, c := range cases {
		err := c.o.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := (SweepOptions{}).Validate(); err != nil {
		t.Errorf("disabled zero-value options must validate clean, got %v", err)
	}
	if err := DefaultSweep().Validate(); err != nil {
		t.Errorf("DefaultSweep invalid: %v", err)
	}
	if err := PaperGrid().Validate(); err != nil {
		t.Errorf("PaperGrid invalid: %v", err)
	}
}

// SweepBreakEven and the Fig. 6 entry points must reject a broken grid.
func TestSweepBreakEvenRejectsZeroStep(t *testing.T) {
	bad := SweepOptions{Enabled: true, Lo: sim.Millisecond, Hi: sim.Second}
	if _, _, err := SweepBreakEven(platform.DefaultConfig(), platform.ODRIPSConfig(), bad); err == nil {
		t.Fatal("SweepBreakEven accepted a zero step")
	}
	if _, err := Fig6a(bad); err == nil {
		t.Fatal("Fig6a accepted a zero step")
	}
	if _, err := Fig6d(bad); err == nil {
		t.Fatal("Fig6d accepted a zero step")
	}
}

// Sequential knob wins over Workers.
func TestSweepOptionsSequentialKnob(t *testing.T) {
	o := SweepOptions{Workers: 8, Sequential: true}
	if got := o.workers(); got != 1 {
		t.Fatalf("Sequential knob ignored: workers() = %d, want 1", got)
	}
}

func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := resolveWorkers(0); got != 3 {
		t.Fatalf("resolveWorkers(0) = %d after SetDefaultWorkers(3)", got)
	}
	if got := resolveWorkers(5); got != 5 {
		t.Fatalf("explicit worker count overridden: got %d, want 5", got)
	}
	SetDefaultWorkers(0)
	if got := resolveWorkers(0); got < 1 {
		t.Fatalf("resolveWorkers(0) = %d, want >= 1", got)
	}
}
