package experiments

import (
	"fmt"

	"odrips/internal/platform"
	"odrips/internal/report"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// TransitionBudgetRow is one step of an entry or exit flow.
type TransitionBudgetRow struct {
	Flow     string
	Step     string
	Duration sim.Duration
	EnergyUJ float64
}

// TransitionBudget decomposes one ODRIPS entry+exit into its firmware
// steps with latency and battery energy — the anatomy behind the ~110 µJ
// transition-energy delta that sets the 6.5 ms break-even residency.
type TransitionBudget struct {
	Rows         []TransitionBudgetRow
	EntryTotalUJ float64
	ExitTotalUJ  float64
}

// TransitionAnatomy runs one cycle per configuration and reports the step
// budget for the given technique set.
func TransitionAnatomy(tech platform.Technique) (*TransitionBudget, error) {
	cfg := platform.DefaultConfig().WithTechniques(tech)
	p, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := p.RunCycles(workload.Fixed(1, 0, 5*sim.Second)); err != nil {
		return nil, err
	}
	out := &TransitionBudget{}
	for _, fs := range p.FlowTrace() {
		out.Rows = append(out.Rows, TransitionBudgetRow{
			Flow:     fs.Flow,
			Step:     fs.Step,
			Duration: fs.Duration,
			EnergyUJ: fs.EnergyUJ,
		})
		switch fs.Flow {
		case "entry":
			out.EntryTotalUJ += fs.EnergyUJ
		case "exit":
			out.ExitTotalUJ += fs.EnergyUJ
		}
	}
	return out, nil
}

// Table renders the budget.
func (r *TransitionBudget) Table(name string) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Transition anatomy — %s entry/exit step budget", name),
		"Flow", "Step", "Latency", "Energy")
	for _, row := range r.Rows {
		t.AddRow(row.Flow, row.Step, row.Duration.String(),
			fmt.Sprintf("%.1f uJ", row.EnergyUJ))
	}
	t.AddRow("", "entry total", "", fmt.Sprintf("%.1f uJ", r.EntryTotalUJ))
	t.AddRow("", "exit total", "", fmt.Sprintf("%.1f uJ", r.ExitTotalUJ))
	return t
}
