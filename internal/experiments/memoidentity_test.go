// Byte-identity of the full experiment set across every -memocache mode:
// the persistent memo store must be invisible in the output, whether the
// run populates it (rw cold), replays from it (rw warm, ro), audits it
// (verify), or finds it deleted. Lives in the external test package for
// the same binary-layout reason as ffidentity_test.go.
package experiments_test

import (
	"bytes"
	"os"
	"testing"

	"odrips"
)

// renderWithMemoCache regenerates the full -exp all output with the
// persistent store in the given mode, starting from a cold in-process
// view (bundles and sweep points reload from disk, not RAM).
func renderWithMemoCache(t *testing.T, mode, dir string) []byte {
	t.Helper()
	if err := odrips.SetupMemoCache(mode, dir); err != nil {
		t.Fatalf("-memocache=%s: %v", mode, err)
	}
	return renderAllExperiments(t, odrips.FFOn)
}

// TestExpAllByteIdenticalAcrossMemoCache is the tentpole acceptance
// criterion: `-exp all` renders byte-identically with the memo store
// off, populating (rw cold), warm from disk (rw), read-only, verifying
// (every loaded memo re-simulated and diffed), and after the cache
// directory is deleted out from under a configured store.
func TestExpAllByteIdenticalAcrossMemoCache(t *testing.T) {
	if testing.Short() {
		t.Skip("six full experiment renders in -short mode")
	}
	t.Cleanup(func() {
		if err := odrips.SetupMemoCache("off", ""); err != nil {
			t.Error(err)
		}
		odrips.SetDefaultFastForward(odrips.FFOn)
		odrips.ResetPointCache()
	})
	dir := t.TempDir()

	base := renderAllExperiments(t, odrips.FFOn) // no store

	compare := func(name string, got []byte) {
		t.Helper()
		if !bytes.Equal(base, got) {
			line := 1
			for i := range base {
				if i >= len(got) || base[i] != got[i] {
					break
				}
				if base[i] == '\n' {
					line++
				}
			}
			t.Fatalf("-exp all output diverged at -memocache=%s (first difference near line %d; %d vs %d bytes)",
				name, line, len(base), len(got))
		}
	}

	compare("rw (cold)", renderWithMemoCache(t, "rw", dir))
	if st := odrips.MemoCacheStats(); st.Writes == 0 {
		t.Fatalf("rw cold run persisted nothing: %+v", st)
	}

	compare("rw (warm)", renderWithMemoCache(t, "rw", dir))
	if st := odrips.MemoCacheStats(); st.Hits == 0 {
		t.Fatalf("rw warm run loaded nothing: %+v", st)
	}

	compare("ro", renderWithMemoCache(t, "ro", dir))
	if st := odrips.MemoCacheStats(); st.Writes != 0 {
		t.Fatalf("ro run wrote: %+v", st)
	}

	compare("verify", renderWithMemoCache(t, "verify", dir))

	// Delete the cache out from under a configured rw store: every load
	// misses, everything recomputes, output is still identical.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	compare("rw (deleted cache)", renderWithMemoCache(t, "rw", dir))
}
