package experiments

import (
	"testing"

	"odrips/internal/platform"
	"odrips/internal/sim"
)

// TestCanonicalPointConfigIdentities proves each canonicalization rule
// empirically: a configuration and its canonical form must measure
// bit-identically with a cold cache, because a cache hit substitutes one
// for the other.
func TestCanonicalPointConfigIdentities(t *testing.T) {
	base := platform.ODRIPSConfig()
	variants := map[string]func(platform.Config) platform.Config{
		"seed":        func(c platform.Config) platform.Config { c.Seed = 7; return c },
		"tdp-default": func(c platform.Config) platform.Config { c.TDPWatts = 15; return c },
		"reinit-unit": func(c platform.Config) platform.Config { c.ExitReinitScale = 1; return c },
		"llc-default": func(c platform.Config) platform.Config {
			c.LLCDirtyFraction = platform.Skylake().LLCDirtyFraction
			return c
		},
		"fet-default": func(c platform.Config) platform.Config { c.FETLeakageFraction = 0.003; return c },
	}
	const residency = 4 * sim.Millisecond
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := mutate(base)
			if canonicalPointConfig(cfg) != canonicalPointConfig(base) {
				t.Fatalf("canonical forms differ: %+v vs %+v",
					canonicalPointConfig(cfg), canonicalPointConfig(base))
			}
			ResetPointCache()
			want, err := sweepAverage(base, residency, 1)
			if err != nil {
				t.Fatal(err)
			}
			ResetPointCache()
			got, err := sweepAverage(cfg, residency, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("variant measures %.12f mW, canonical base %.12f mW — the cache would lie", got, want)
			}
		})
	}
}

// TestCanonicalPointConfigPreservesRealKnobs: knobs that do change
// measurements must survive canonicalization.
func TestCanonicalPointConfigPreservesRealKnobs(t *testing.T) {
	base := platform.ODRIPSConfig()
	for name, mutate := range map[string]func(platform.Config) platform.Config{
		"tdp-9w":     func(c platform.Config) platform.Config { c.TDPWatts = 9; return c },
		"reinit-2x":  func(c platform.Config) platform.Config { c.ExitReinitScale = 2; return c },
		"llc-half":   func(c platform.Config) platform.Config { c.LLCDirtyFraction = 0.5; return c },
		"fet-leaky":  func(c platform.Config) platform.Config { c.FETLeakageFraction = 0.05; return c },
		"techniques": func(c platform.Config) platform.Config { c.Techniques = platform.WakeUpOff; return c },
	} {
		if canonicalPointConfig(mutate(base)) == canonicalPointConfig(base) {
			t.Errorf("%s collapsed into the base fingerprint class", name)
		}
	}
}

// TestCanonicalDedupAcrossExperiments is the satellite's goal state: two
// experiments expressing the same steady state differently share cache
// entries, so the second sweep half is free.
func TestCanonicalDedupAcrossExperiments(t *testing.T) {
	ResetPointCache()
	base := platform.ODRIPSConfig()
	if _, err := sweepAverage(base, 2*sim.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	entries := eng.sweep.Len()

	tdpRow := base
	tdpRow.TDPWatts = 15 // the TDP study's calibration row
	if _, err := sweepAverage(tdpRow, 2*sim.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if after := eng.sweep.Len(); after != entries {
		t.Errorf("equivalent config added %d cache entries; want a hit", after-entries)
	}
}
