package experiments

import (
	"fmt"

	"odrips/internal/dram"
	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/report"
	"odrips/internal/sim"
)

// ConfigResult is one bar of a Fig. 6 chart.
type ConfigResult struct {
	Name         string
	AvgMW        float64
	ReductionPct float64      // vs. the baseline bar
	BreakEven    sim.Duration // analytic, from measured cycle energies
	SweepBE      sim.Duration // empirical, from the residency sweep (0 if skipped)
	IdleMW       float64
}

// Fig6aResult reproduces Fig. 6(a): average power and break-even residency
// for each technique and for ODRIPS.
type Fig6aResult struct {
	Rows []ConfigResult
}

// fig6aConfigs returns the paper's five bars.
func fig6aConfigs() []platform.Config {
	base := platform.DefaultConfig()
	return []platform.Config{
		base,
		base.WithTechniques(platform.WakeUpOff),
		base.WithTechniques(platform.WakeUpOff | platform.AONIOGate),
		base.WithTechniques(platform.CtxSGXDRAM),
		base.WithTechniques(platform.ODRIPS),
	}
}

// Fig6a measures the five configurations, fanning the platform runs across
// the worker pool. When sweep.Enabled, break-even points are additionally
// measured empirically via the residency sweep (each sweep parallel over
// its grid; its baseline half is memoized across rows).
func Fig6a(sweep SweepOptions) (*Fig6aResult, error) {
	if err := sweep.Validate(); err != nil {
		return nil, fmt.Errorf("fig6a: %w", err)
	}
	configs := fig6aConfigs()
	results, err := runIndexed(len(configs), sweep.workers(),
		func(i int) string { return configs[i].Name() },
		func(i int) (platform.Result, error) { return runConfig(configs[i], defaultCycles) })
	if err != nil {
		return nil, fmt.Errorf("fig6a: %w", err)
	}
	out := &Fig6aResult{}
	base := results[0]
	for i, cfg := range configs {
		res := results[i]
		row := ConfigResult{Name: cfg.Name(), AvgMW: res.AvgPowerMW, IdleMW: res.IdlePowerMW()}
		if i > 0 {
			row.ReductionPct = 100 * (base.AvgPowerMW - res.AvgPowerMW) / base.AvgPowerMW
			be, err := power.BreakEven(base.CycleEnergy, res.CycleEnergy)
			if err != nil {
				return nil, fmt.Errorf("fig6a %s break-even: %w", cfg.Name(), err)
			}
			row.BreakEven = be
			if sweep.Enabled {
				sbe, ok, err := SweepBreakEven(configs[0], cfg, sweep)
				if err != nil {
					return nil, err
				}
				if ok {
					row.SweepBE = sbe
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders Fig. 6(a).
func (r *Fig6aResult) Table() *report.Table {
	t := report.NewTable(
		"Fig. 6(a) — Average power and energy break-even point",
		"Configuration", "Avg (mW)", "Reduction", "Break-even", "Sweep BE")
	for _, row := range r.Rows {
		red, be, sbe := "—", "—", "—"
		if row.ReductionPct != 0 {
			red = fmt.Sprintf("-%.1f%%", row.ReductionPct)
			be = fmt.Sprintf("%.2f ms", row.BreakEven.Milliseconds())
			if row.SweepBE > 0 {
				sbe = fmt.Sprintf("%.2f ms", row.SweepBE.Milliseconds())
			}
		}
		t.AddRow(row.Name, fmt.Sprintf("%.2f", row.AvgMW), red, be, sbe)
	}
	t.AddNote("paper: -6%%, -13%%, -8%%, -22%%; break-evens 6.6, 6.3, 7.4, 6.5 ms")
	return t
}

// Chart renders the bars.
func (r *Fig6aResult) Chart() *report.Series {
	s := &report.Series{Title: "Fig. 6(a) average power", YLabel: "mW"}
	for i, row := range r.Rows {
		s.Add(float64(i), row.AvgMW, row.Name)
	}
	return s
}

// Fig6bResult reproduces Fig. 6(b): ODRIPS under core-frequency scaling.
type Fig6bResult struct {
	Rows []ConfigResult // Name carries the frequency label
}

// Fig6b sweeps the maintenance core frequency (race-to-sleep study, §8.1),
// with the three frequency points evaluated in parallel.
func Fig6b() (*Fig6bResult, error) {
	freqs := []int{800, 1000, 1500}
	results, err := runIndexed(len(freqs), 0,
		func(i int) string { return fmt.Sprintf("%d MHz", freqs[i]) },
		func(i int) (platform.Result, error) {
			cfg := platform.ODRIPSConfig()
			cfg.CoreFreqMHz = freqs[i]
			return runConfig(cfg, defaultCycles)
		})
	if err != nil {
		return nil, fmt.Errorf("fig6b: %w", err)
	}
	out := &Fig6bResult{}
	base := results[0].AvgPowerMW
	for i, mhz := range freqs {
		row := ConfigResult{
			Name:   fmt.Sprintf("ODRIPS @ %.1f GHz", float64(mhz)/1000),
			AvgMW:  results[i].AvgPowerMW,
			IdleMW: results[i].IdlePowerMW(),
		}
		if i > 0 {
			row.ReductionPct = 100 * (base - results[i].AvgPowerMW) / base
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders Fig. 6(b).
func (r *Fig6bResult) Table() *report.Table {
	t := report.NewTable(
		"Fig. 6(b) — ODRIPS under core-frequency scaling",
		"Configuration", "Avg (mW)", "Δ vs 0.8 GHz")
	for _, row := range r.Rows {
		d := "—"
		if row.ReductionPct != 0 {
			d = fmt.Sprintf("%+.2f%%", -row.ReductionPct)
		}
		t.AddRow(row.Name, fmt.Sprintf("%.2f", row.AvgMW), d)
	}
	t.AddNote("paper: 1.0 GHz saves ~1.4%%; 1.5 GHz costs ~1%%")
	return t
}

// Fig6cResult reproduces Fig. 6(c): ODRIPS under DRAM-frequency scaling.
type Fig6cResult struct {
	Rows    []ConfigResult
	CtxSave []sim.Duration // context save latency per rate
}

// Fig6c sweeps the DRAM transfer rate (§8.2), with the three rate points
// evaluated in parallel.
func Fig6c() (*Fig6cResult, error) {
	rates := []int{1600, 1067, 800}
	results, err := runIndexed(len(rates), 0,
		func(i int) string { return fmt.Sprintf("%d MT/s", rates[i]) },
		func(i int) (platform.Result, error) {
			cfg := platform.ODRIPSConfig()
			cfg.DRAMMTps = rates[i]
			return runConfig(cfg, defaultCycles)
		})
	if err != nil {
		return nil, fmt.Errorf("fig6c: %w", err)
	}
	out := &Fig6cResult{}
	base := results[0].AvgPowerMW
	for i, mtps := range rates {
		row := ConfigResult{
			Name:   fmt.Sprintf("ODRIPS, DDR3L-%d", mtps),
			AvgMW:  results[i].AvgPowerMW,
			IdleMW: results[i].IdlePowerMW(),
		}
		if i > 0 {
			row.ReductionPct = 100 * (base - results[i].AvgPowerMW) / base
		}
		out.Rows = append(out.Rows, row)
		out.CtxSave = append(out.CtxSave, results[i].CtxSave)
	}
	return out, nil
}

// Table renders Fig. 6(c).
func (r *Fig6cResult) Table() *report.Table {
	t := report.NewTable(
		"Fig. 6(c) — ODRIPS under DRAM-frequency scaling",
		"Configuration", "Avg (mW)", "Δ vs 1600 MT/s", "Ctx save")
	for i, row := range r.Rows {
		d := "—"
		if row.ReductionPct != 0 {
			d = fmt.Sprintf("-%.2f%%", row.ReductionPct)
		}
		t.AddRow(row.Name, fmt.Sprintf("%.2f", row.AvgMW), d,
			fmt.Sprintf("%.1f us", r.CtxSave[i].Microseconds()))
	}
	t.AddNote("paper: -0.3%% at 1.067 GHz, -0.7%% at 0.8 GHz; longer context transfers")
	return t
}

// Fig6dResult reproduces Fig. 6(d): ODRIPS with emerging memories.
type Fig6dResult struct {
	Rows []ConfigResult
}

// Fig6d measures baseline, ODRIPS, ODRIPS-MRAM, and ODRIPS-PCM (§8.3).
func Fig6d(sweep SweepOptions) (*Fig6dResult, error) {
	base := platform.DefaultConfig()
	mram := base.WithTechniques(platform.WakeUpOff | platform.AONIOGate)
	mram.CtxInEMRAM = true
	pcm := platform.ODRIPSConfig()
	pcm.MainMemory = dram.PCM

	configs := []platform.Config{base, platform.ODRIPSConfig(), mram, pcm}
	if err := sweep.Validate(); err != nil {
		return nil, fmt.Errorf("fig6d: %w", err)
	}
	results, err := runIndexed(len(configs), sweep.workers(),
		func(i int) string { return configs[i].Name() },
		func(i int) (platform.Result, error) { return runConfig(configs[i], defaultCycles) })
	if err != nil {
		return nil, fmt.Errorf("fig6d: %w", err)
	}
	out := &Fig6dResult{}
	baseRes := results[0]
	for i, cfg := range configs {
		res := results[i]
		row := ConfigResult{Name: cfg.Name(), AvgMW: res.AvgPowerMW, IdleMW: res.IdlePowerMW()}
		if i > 0 {
			row.ReductionPct = 100 * (baseRes.AvgPowerMW - res.AvgPowerMW) / baseRes.AvgPowerMW
			be, err := power.BreakEven(baseRes.CycleEnergy, res.CycleEnergy)
			if err != nil {
				return nil, fmt.Errorf("fig6d %s break-even: %w", cfg.Name(), err)
			}
			row.BreakEven = be
			if sweep.Enabled {
				sbe, ok, err := SweepBreakEven(configs[0], cfg, sweep)
				if err != nil {
					return nil, err
				}
				if ok {
					row.SweepBE = sbe
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Table renders Fig. 6(d).
func (r *Fig6dResult) Table() *report.Table {
	t := report.NewTable(
		"Fig. 6(d) — ODRIPS with emerging memory technologies",
		"Configuration", "Avg (mW)", "Reduction", "Break-even")
	for _, row := range r.Rows {
		red, be := "—", "—"
		if row.ReductionPct != 0 {
			red = fmt.Sprintf("-%.1f%%", row.ReductionPct)
			be = fmt.Sprintf("%.2f ms", row.BreakEven.Milliseconds())
		}
		t.AddRow(row.Name, fmt.Sprintf("%.2f", row.AvgMW), red, be)
	}
	t.AddNote("paper: ODRIPS-MRAM slightly below ODRIPS with the lowest break-even; ODRIPS-PCM -37%%")
	return t
}
