package experiments

import (
	"fmt"

	"odrips/internal/platform"
	"odrips/internal/report"
	"odrips/internal/sim"
)

// StandbyRow compares one standby mode.
type StandbyRow struct {
	Mode         string
	FloorMW      float64 // power while resident in the mode's idle state
	AvgMW        float64 // average over an hour of standby
	WakeLatency  sim.Duration
	Connectivity string
}

// StandbyComparison reproduces the §9 distinction between legacy ACPI
// suspend (S3) and connected standby: S3 draws less but is deaf — no
// timers, no network, and a resume that takes hundreds of milliseconds —
// while DRIPS/ODRIPS keep the device reachable at microsecond-scale exit
// latencies.
type StandbyComparison struct {
	Rows []StandbyRow
}

// Standby measures the comparison.
func Standby() (*StandbyComparison, error) {
	out := &StandbyComparison{}

	// Connected-standby modes: an hour of the standard workload.
	for _, cfg := range []platform.Config{
		platform.DefaultConfig(),
		platform.ODRIPSConfig(),
	} {
		res, err := runConfig(cfg, defaultCycles)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, StandbyRow{
			Mode:         cfg.Name() + " (connected standby)",
			FloorMW:      res.IdlePowerMW(),
			AvgMW:        res.AvgPowerMW,
			WakeLatency:  res.ExitAvg,
			Connectivity: "full (timers, network, thermal)",
		})
	}

	// S3: one long suspend; the device does no kernel maintenance because
	// it cannot wake itself.
	p, err := platform.New(platform.DefaultConfig())
	if err != nil {
		return nil, err
	}
	s3, err := p.RunS3Cycle(sim.Hour)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, StandbyRow{
		Mode:         "ACPI S3 (suspend to RAM)",
		FloorMW:      s3.SuspendPowerMW,
		AvgMW:        s3.AvgPowerMW,
		WakeLatency:  s3.ResumeLatency,
		Connectivity: "none (user wake only)",
	})
	return out, nil
}

// Table renders the comparison.
func (r *StandbyComparison) Table() *report.Table {
	t := report.NewTable("§9 — Connected standby vs. legacy suspend",
		"Mode", "Idle floor", "Avg (1 h standby)", "Wake latency", "Connectivity")
	for _, row := range r.Rows {
		t.AddRow(row.Mode,
			fmt.Sprintf("%.1f mW", row.FloorMW),
			fmt.Sprintf("%.1f mW", row.AvgMW),
			row.WakeLatency.String(),
			row.Connectivity)
	}
	t.AddNote("S3 is cheaper but deaf; ODRIPS closes most of the gap while staying connected")
	return t
}
