package experiments

import (
	"fmt"

	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/report"
)

func idleState() power.State { return power.Idle }

// Fig2Row is one state of the connected-standby profile.
type Fig2Row struct {
	State     power.State
	PowerMW   float64
	Residency float64
}

// Fig2Result reproduces Fig. 2: the four-state connected-standby profile
// and its Equation-1 average.
type Fig2Result struct {
	Rows       []Fig2Row
	AverageMW  float64 // measured
	Equation1  float64 // Σ power×residency over the measured rows
	CyclePerID string
}

// Fig2 measures the baseline connected-standby profile.
func Fig2() (*Fig2Result, error) {
	res, err := runConfig(platform.DefaultConfig(), defaultCycles)
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{AverageMW: res.AvgPowerMW}
	for _, st := range power.States() {
		row := Fig2Row{State: st, PowerMW: res.StatePowerMW[st], Residency: res.Residency[st]}
		out.Rows = append(out.Rows, row)
		out.Equation1 += row.PowerMW * row.Residency
	}
	out.CyclePerID = fmt.Sprintf("%d cycles, %.1f s total", res.Cycles, res.Duration.Seconds())
	return out, nil
}

// Table renders the profile.
func (r *Fig2Result) Table() *report.Table {
	t := report.NewTable(
		"Fig. 2 — Connected-standby profile (baseline DRIPS)",
		"State", "Power (mW)", "Residency")
	for _, row := range r.Rows {
		t.AddRow(row.State.String(),
			fmt.Sprintf("%.2f", row.PowerMW),
			fmt.Sprintf("%.4f%%", 100*row.Residency))
	}
	t.AddRow("Average (Eq. 1)", fmt.Sprintf("%.2f", r.Equation1), "")
	t.AddNote("measured average %.2f mW over %s", r.AverageMW, r.CyclePerID)
	t.AddNote("paper anchors: DRIPS ~99.5%% at ~60 mW; active ~0.5%% at ~3 W")
	return t
}
