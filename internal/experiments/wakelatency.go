package experiments

import (
	"fmt"
	"sort"

	"odrips/internal/platform"
	"odrips/internal/report"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// WakeLatencyRow is one configuration's latency distribution for one flow
// direction (entry or exit).
type WakeLatencyRow struct {
	Name string
	Flow string
	Min  sim.Duration
	Mean sim.Duration
	P95  sim.Duration
	Max  sim.Duration
}

// WakeLatencyResult checks the paper's §3 user-experience claim: ODRIPS
// may lengthen DRIPS exit "by a few tens of microseconds" without
// degrading connected-standby responsiveness. Exit latency is sampled over
// many external wakes with varying idle durations, so the 32.768 kHz
// hand-over edges land at every phase.
type WakeLatencyResult struct {
	Rows []WakeLatencyRow
	// DeltaMean is ODRIPS mean minus baseline mean.
	DeltaMean sim.Duration
}

// wakeLatencySamples is the number of wakes measured per configuration.
const wakeLatencySamples = 40

// WakeLatency measures entry- and exit-latency distributions for baseline
// DRIPS and ODRIPS. A notable emergent property: ODRIPS *exits* are
// deterministic because every wake source is quantized to a 32.768 kHz
// edge before the exit flow starts; the phase-dependent edge wait shows up
// in the *entry* flow instead (the timer hand-over waits for the next
// rising edge from an arbitrary phase, Fig. 3(b)).
func WakeLatency() (*WakeLatencyResult, error) {
	out := &WakeLatencyResult{}
	var exitMeans [2]sim.Duration
	for i, cfg := range []platform.Config{platform.DefaultConfig(), platform.ODRIPSConfig()} {
		entries, exits, err := wakeLatencyDistribution(cfg)
		if err != nil {
			return nil, err
		}
		entryRow := summarize(cfg.Name(), "entry", entries)
		exitRow := summarize(cfg.Name(), "exit", exits)
		exitMeans[i] = exitRow.Mean
		out.Rows = append(out.Rows, entryRow, exitRow)
	}
	out.DeltaMean = exitMeans[1] - exitMeans[0]
	return out, nil
}

// wakeLatencyDistribution runs one external wake per fresh platform, with
// a prime-stepped idle duration so the hand-over edges sample all phases
// of the 32.768 kHz clock. A fresh platform per sample keeps each ExitAvg
// a single-wake measurement rather than a running mean — and makes the
// samples independent points that fan out across the worker pool.
func wakeLatencyDistribution(cfg platform.Config) (entries, exits []sim.Duration, err error) {
	type sample struct{ entry, exit sim.Duration }
	samples, err := runIndexed(wakeLatencySamples, 0,
		func(i int) string { return fmt.Sprintf("wake sample %d", i) },
		func(i int) (sample, error) {
			p, err := platform.New(cfg)
			if err != nil {
				return sample{}, err
			}
			idle := 200*sim.Millisecond + sim.Duration(i)*7_919*sim.Microsecond
			res, err := p.RunCycles([]workload.Cycle{
				{Active: 2*sim.Millisecond + sim.Duration(i)*101*sim.Microsecond, Idle: idle, Wake: workload.WakeExternal},
			})
			if err != nil {
				return sample{}, err
			}
			return sample{entry: res.EntryAvg, exit: res.ExitAvg}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	for _, s := range samples {
		entries = append(entries, s.entry)
		exits = append(exits, s.exit)
	}
	return entries, exits, nil
}

func summarize(name, flow string, samples []sim.Duration) WakeLatencyRow {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum sim.Duration
	for _, s := range samples {
		sum += s
	}
	p95 := samples[len(samples)*95/100]
	return WakeLatencyRow{
		Name: name,
		Flow: flow,
		Min:  samples[0],
		Mean: sum / sim.Duration(len(samples)),
		P95:  p95,
		Max:  samples[len(samples)-1],
	}
}

// Table renders the distribution.
func (r *WakeLatencyResult) Table() *report.Table {
	t := report.NewTable("§3 — Entry/exit latency distributions over external wakes",
		"Configuration", "Flow", "Min", "Mean", "P95", "Max")
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Flow, row.Min.String(), row.Mean.String(), row.P95.String(), row.Max.String())
	}
	t.AddNote("ODRIPS exits run %.0f us longer on average but are deterministic: every wake", r.DeltaMean.Microseconds())
	t.AddNote("is 32 kHz-edge-aligned; the phase-dependent edge wait appears in the entry flow")
	return t
}
