package experiments

import (
	"math"
	"testing"

	"odrips/internal/platform"
	"odrips/internal/sim"
)

func TestAblationMEECache(t *testing.T) {
	r, err := AblationMEECache()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Bigger caches must never increase save traffic; hit rate must be
	// monotone non-decreasing.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].SaveBlocks > r.Rows[i-1].SaveBlocks {
			t.Errorf("save traffic grew from %d lines (%d) to %d lines (%d)",
				r.Rows[i-1].Lines, r.Rows[i-1].SaveBlocks, r.Rows[i].Lines, r.Rows[i].SaveBlocks)
		}
		if r.Rows[i].HitRatePct+0.5 < r.Rows[i-1].HitRatePct {
			t.Errorf("hit rate regressed at %d lines", r.Rows[i].Lines)
		}
	}
	// The shipped 256-line point must land on the paper's latencies.
	for _, row := range r.Rows {
		if row.Lines == 256 {
			if us := row.SaveLat.Microseconds(); us < 14 || us > 24 {
				t.Errorf("256-line save = %.1f us", us)
			}
			if us := row.RestoreLat.Microseconds(); us < 10 || us > 18 {
				t.Errorf("256-line restore = %.1f us", us)
			}
		}
	}
	if len(r.Table().Rows) != 6 {
		t.Error("table render wrong")
	}
}

func TestAblationTimerAlternatives(t *testing.T) {
	r, err := AblationTimerAlternatives()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base, alt1, alt2, alt2Gated := r.Rows[0], r.Rows[1], r.Rows[2], r.Rows[3]
	// Alternative 1 helps over baseline but needs a pin.
	if alt1.IdleMW >= base.IdleMW {
		t.Errorf("alt1 (%.2f) not below baseline (%.2f)", alt1.IdleMW, base.IdleMW)
	}
	if alt1.ExtraPins == 0 {
		t.Error("alt1 should cost a package pin")
	}
	// Alternative 2 beats alternative 1 even before the FET gating.
	if alt2.IdleMW >= alt1.IdleMW {
		t.Errorf("alt2 (%.2f) not below alt1 (%.2f)", alt2.IdleMW, alt1.IdleMW)
	}
	// And the gating it enables widens the gap decisively.
	if alt2Gated.IdleMW >= alt2.IdleMW {
		t.Errorf("gated (%.2f) not below alt2 (%.2f)", alt2Gated.IdleMW, alt2.IdleMW)
	}
}

func TestAblationIOGate(t *testing.T) {
	r, err := AblationIOGate()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	fet, epg, none := r.Rows[0], r.Rows[1], r.Rows[2]
	if !(fet.IdleMW < epg.IdleMW && epg.IdleMW < none.IdleMW) {
		t.Errorf("ordering wrong: FET %.3f, EPG %.3f, none %.3f",
			fet.IdleMW, epg.IdleMW, none.IdleMW)
	}
	// The FET-vs-EPG gap is small (both gate the rail) but real.
	if d := epg.IdleMW - fet.IdleMW; d <= 0 || d > 0.5 {
		t.Errorf("FET/EPG gap = %.3f mW", d)
	}
}

func TestAblationReinitSensitivity(t *testing.T) {
	r, err := AblationReinitSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Break-even must grow monotonically with exit cost.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].BreakEven <= r.Rows[i-1].BreakEven {
			t.Errorf("break-even not monotone at scale %.1f", r.Rows[i].Scale)
		}
	}
	// The 1.0x point is the paper calibration.
	for _, row := range r.Rows {
		if row.Scale == 1.0 {
			if ms := row.BreakEven.Milliseconds(); math.Abs(ms-6.5) > 0.5 {
				t.Errorf("1.0x break-even = %.2f ms", ms)
			}
		}
	}
}

func TestWakeCoalescing(t *testing.T) {
	r, err := WakeCoalescing()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Bigger buffers must wake less often and burn less power.
	for i := 1; i < 5; i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		if cur.WakesPerHour >= prev.WakesPerHour {
			t.Errorf("%s wakes (%.0f/h) not below %s (%.0f/h)",
				cur.Label, cur.WakesPerHour, prev.Label, prev.WakesPerHour)
		}
		if cur.AvgMW >= prev.AvgMW {
			t.Errorf("%s power (%.1f) not below %s (%.1f)",
				cur.Label, cur.AvgMW, prev.Label, prev.AvgMW)
		}
	}
	// No buffer may overflow: the high-water wake fires in time.
	for _, row := range r.Rows {
		if row.Overflows != 0 {
			t.Errorf("%s dropped %d packets", row.Label, row.Overflows)
		}
	}
	// The LTR-gated row never reaches DRIPS and pays dearly for it.
	gated := r.Rows[5]
	if gated.IdlePct != 0 {
		t.Errorf("gated row reached DRIPS: %.2f%%", gated.IdlePct)
	}
	if gated.AvgMW < r.Rows[4].AvgMW*2 {
		t.Errorf("gated row (%.1f mW) not dramatically above buffered rows", gated.AvgMW)
	}
}

func TestProcessScaling(t *testing.T) {
	r, err := ProcessScaling()
	if err != nil {
		t.Fatal(err)
	}
	// The 22 nm platform must idle meaningfully hotter than 14 nm.
	if r.HaswellTotalMW < r.SkylakeTotalMW*1.15 {
		t.Errorf("Haswell DRIPS %.1f mW not well above Skylake %.1f mW",
			r.HaswellTotalMW, r.SkylakeTotalMW)
	}
	// The §7 projection must validate at the paper's ~95% or better.
	if r.AccuracyPct < 95 {
		t.Errorf("projection accuracy = %.1f%%", r.AccuracyPct)
	}
	// Haswell's C10 exit is ~3 ms; Skylake's a few hundred us (§3).
	if ms := r.HaswellExitAvg.Milliseconds(); ms < 2.5 || ms > 3.5 {
		t.Errorf("Haswell exit = %.2f ms, want ~3", ms)
	}
	if us := r.SkylakeExitAvg.Microseconds(); us > 400 {
		t.Errorf("Skylake exit = %.0f us", us)
	}
}

func TestHaswellRejectsODRIPS(t *testing.T) {
	cfg := platform.ODRIPSConfig()
	cfg.Generation = platform.GenHaswell
	if _, err := platform.New(cfg); err == nil {
		t.Fatal("Haswell platform accepted ODRIPS techniques")
	}
}

func TestStandbyComparison(t *testing.T) {
	r, err := Standby()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base, odrips, s3 := r.Rows[0], r.Rows[1], r.Rows[2]
	// S3 undercuts both connected-standby floors…
	if !(s3.FloorMW < odrips.FloorMW && odrips.FloorMW < base.FloorMW) {
		t.Errorf("floors not ordered: S3 %.1f, ODRIPS %.1f, base %.1f",
			s3.FloorMW, odrips.FloorMW, base.FloorMW)
	}
	// …but wakes three orders of magnitude slower.
	if s3.WakeLatency < 500*odrips.WakeLatency {
		t.Errorf("S3 wake %v not far above ODRIPS %v", s3.WakeLatency, odrips.WakeLatency)
	}
}

func TestTransitionAnatomy(t *testing.T) {
	base, err := TransitionAnatomy(0)
	if err != nil {
		t.Fatal(err)
	}
	odrips, err := TransitionAnatomy(platform.ODRIPS)
	if err != nil {
		t.Fatal(err)
	}
	if len(odrips.Rows) <= len(base.Rows) {
		t.Errorf("ODRIPS flow (%d steps) not longer than baseline (%d)",
			len(odrips.Rows), len(base.Rows))
	}
	// Per-step energies must sum to more than baseline's: the transition-
	// energy delta that produces the break-even residency.
	baseJ := base.EntryTotalUJ + base.ExitTotalUJ
	optJ := odrips.EntryTotalUJ + odrips.ExitTotalUJ
	if optJ <= baseJ {
		t.Errorf("ODRIPS transition energy %.1f uJ not above baseline %.1f uJ", optJ, baseJ)
	}
	// The delta matches the measured CycleEnergy difference (~105 uJ).
	if d := optJ - baseJ; d < 70 || d > 150 {
		t.Errorf("transition delta = %.1f uJ, want ~105", d)
	}
	// Every step carries non-negative energy.
	for _, row := range odrips.Rows {
		if row.EnergyUJ < 0 {
			t.Errorf("step %s has negative energy", row.Step)
		}
	}
}

// TestAllTablesRenderComplete exercises every table constructor end to end:
// report.AddRow panics on column-count mistakes, so a render pass is a real
// structural check on each experiment's output.
func TestAllTablesRenderComplete(t *testing.T) {
	renders := []struct {
		name string
		run  func() (interface{ String() string }, error)
	}{
		{"fig6b", func() (interface{ String() string }, error) {
			r, err := Fig6b()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig6c", func() (interface{ String() string }, error) {
			r, err := Fig6c()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig6d", func() (interface{ String() string }, error) {
			r, err := Fig6d(SweepOptions{})
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig2", func() (interface{ String() string }, error) {
			r, err := Fig2()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig3b", func() (interface{ String() string }, error) {
			r, err := Fig3b()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"calibration", func() (interface{ String() string }, error) {
			r, err := Calibration()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ctxlatency", func() (interface{ String() string }, error) {
			r, err := CtxLatency()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"validation", func() (interface{ String() string }, error) {
			r, err := ModelValidation()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"scaling", func() (interface{ String() string }, error) {
			r, err := ProcessScaling()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"standby", func() (interface{ String() string }, error) {
			r, err := Standby()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"coalescing", func() (interface{ String() string }, error) {
			r, err := WakeCoalescing()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"anatomy", func() (interface{ String() string }, error) {
			r, err := TransitionAnatomy(platform.ODRIPS)
			if err != nil {
				return nil, err
			}
			return r.Table("ODRIPS"), nil
		}},
		{"timer-alts", func() (interface{ String() string }, error) {
			r, err := AblationTimerAlternatives()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"io-gate", func() (interface{ String() string }, error) {
			r, err := AblationIOGate()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"mee-cache", func() (interface{ String() string }, error) {
			r, err := AblationMEECache()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"reinit", func() (interface{ String() string }, error) {
			r, err := AblationReinitSensitivity()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}
	for _, rd := range renders {
		tbl, err := rd.run()
		if err != nil {
			t.Fatalf("%s: %v", rd.name, err)
		}
		if len(tbl.String()) < 80 {
			t.Errorf("%s: suspiciously short render", rd.name)
		}
	}
}

func TestCalibrationAging(t *testing.T) {
	r, err := CalibrationAging()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Stale drift ≈ 1000 ppb per ppm of shift (±25%), and essentially
		// the quantization floor for no shift.
		want := 1000 * row.DeltaPPM
		if row.DeltaPPM == 0 {
			if row.StaleDriftPPB > 2 {
				t.Errorf("zero-shift stale drift = %.2f ppb", row.StaleDriftPPB)
			}
		} else if math.Abs(row.StaleDriftPPB-want) > want*0.25 {
			t.Errorf("%+.1f ppm: stale drift = %.1f ppb, want ~%.0f", row.DeltaPPM, row.StaleDriftPPB, want)
		}
		// Recalibration always recovers the ppb-scale target (within the
		// 1 ppb quantization bound plus 1 count of sampling granularity).
		if row.RecalDriftPPB > 2 {
			t.Errorf("%+.1f ppm: post-recal drift = %.2f ppb", row.DeltaPPM, row.RecalDriftPPB)
		}
	}
}

func TestTDPSensitivity(t *testing.T) {
	r, err := TDPSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Reduction must shrink monotonically as TDP grows (§1).
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].ReductionPct >= r.Rows[i-1].ReductionPct {
			t.Errorf("%.1fW reduction %.1f%% not below %.1fW's %.1f%%",
				r.Rows[i].TDPWatts, r.Rows[i].ReductionPct,
				r.Rows[i-1].TDPWatts, r.Rows[i-1].ReductionPct)
		}
	}
	// The 15 W row is the headline 22%.
	if math.Abs(r.Rows[1].ReductionPct-22) > 1.5 {
		t.Errorf("15W reduction = %.1f%%", r.Rows[1].ReductionPct)
	}
	// Baseline average power grows with TDP.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].BaselineMW <= r.Rows[i-1].BaselineMW {
			t.Error("baseline power not increasing with TDP")
		}
	}
}

func TestWakeLatencyDistribution(t *testing.T) {
	r, err := WakeLatency()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byKey := map[string]WakeLatencyRow{}
	for _, row := range r.Rows {
		if !(row.Min <= row.Mean && row.Mean <= row.P95 && row.P95 <= row.Max) {
			t.Errorf("%s/%s distribution disordered: %+v", row.Name, row.Flow, row)
		}
		byKey[row.Name+"/"+row.Flow] = row
	}
	baseExit, optExit := byKey["Baseline/exit"], byKey["ODRIPS/exit"]
	optEntry := byKey["ODRIPS/entry"]
	// ODRIPS exits are slower…
	if optExit.Mean <= baseExit.Mean {
		t.Errorf("ODRIPS exit mean %v not above baseline %v", optExit.Mean, baseExit.Mean)
	}
	// …by the paper's "few tens of microseconds" (up to ~200 us with
	// crystal restart + FET + context restore + re-init).
	if r.DeltaMean < 30*sim.Microsecond || r.DeltaMean > 200*sim.Microsecond {
		t.Errorf("mean exit delta = %v, want tens of microseconds", r.DeltaMean)
	}
	// Worst-case ODRIPS exit stays far below user perception.
	if optExit.Max > sim.Millisecond {
		t.Errorf("ODRIPS max exit = %v", optExit.Max)
	}
	// Exits are edge-aligned hence deterministic; the 32 kHz phase wait
	// shows as spread in the ODRIPS entry flow instead.
	if optExit.Max-optExit.Min > sim.Microsecond {
		t.Errorf("ODRIPS exit spread = %v, expected edge-aligned determinism", optExit.Max-optExit.Min)
	}
	if optEntry.Max-optEntry.Min < 15*sim.Microsecond {
		t.Errorf("ODRIPS entry spread = %v, expected the 32 kHz edge wait to show", optEntry.Max-optEntry.Min)
	}
}
