package experiments

import (
	"fmt"
	"sort"

	"odrips/internal/platform"
	"odrips/internal/report"
)

// BreakdownSlice is one wedge of the Fig. 1(b) pie.
type BreakdownSlice struct {
	Label   string
	MW      float64
	Percent float64
}

// Fig1bResult reproduces Fig. 1(b): the breakdown of platform power in
// DRIPS, with power-delivery losses allocated per the paper's footnote 5.
type Fig1bResult struct {
	TotalMW      float64
	ProcessorPct float64
	Slices       []BreakdownSlice
}

// fig1bGroups maps meter components to the paper's wedges. The numbers in
// the labels are the component markers of Fig. 1(a).
var fig1bGroups = []struct {
	label string
	comps []string
}{
	{"Wake-up & timer (5)", []string{"proc.wake-timer"}},
	{"24MHz crystal (1)", []string{"board.xtal24"}},
	{"AON IOs (4)", []string{"proc.aonio"}},
	{"S/R SRAMs (7,8)", []string{"proc.sram.sa", "proc.sram.compute", "proc.sram.boot"}},
	{"PMU AON & CKE (5,6)", []string{"proc.pmu", "proc.compute", "proc.sa"}},
	{"Chipset AON (2)", []string{"chipset.aon", "chipset.monitor"}},
	{"DRAM self-refresh", []string{"dram.module"}},
	{"RTC crystal (3)", []string{"board.xtal32"}},
	{"Board & EC", []string{"board.misc", "board.fet"}},
	{"AON regulators", []string{"vr.fixed", "vr.aonio", "vr.sram", "vr.pmu"}},
}

// Fig1b measures the baseline DRIPS breakdown.
func Fig1b() (*Fig1bResult, error) {
	res, err := runConfig(platform.DefaultConfig(), defaultCycles)
	if err != nil {
		return nil, err
	}
	idleSec := res.Residency[idleState()] * res.Duration.Seconds()
	if idleSec <= 0 {
		return nil, fmt.Errorf("experiments: no idle residency measured")
	}
	var total float64
	for _, j := range res.IdleByComponent {
		total += j
	}
	out := &Fig1bResult{TotalMW: total * 1e3 / idleSec}
	seen := make(map[string]bool)
	for _, g := range fig1bGroups {
		var j float64
		for _, c := range g.comps {
			j += res.IdleByComponent[c]
			seen[c] = true
		}
		out.Slices = append(out.Slices, BreakdownSlice{
			Label:   g.label,
			MW:      j * 1e3 / idleSec,
			Percent: 100 * j / total,
		})
	}
	// Anything unmapped (defensive) lands in a final wedge.
	var rest float64
	for name, j := range res.IdleByComponent {
		if !seen[name] {
			rest += j
		}
	}
	if rest > 1e-12 {
		out.Slices = append(out.Slices, BreakdownSlice{
			Label: "other", MW: rest * 1e3 / idleSec, Percent: 100 * rest / total,
		})
	}
	sort.Slice(out.Slices, func(i, j int) bool { return out.Slices[i].MW > out.Slices[j].MW })
	for _, s := range out.Slices {
		if isProcessorSlice(s.Label) {
			out.ProcessorPct += s.Percent
		}
	}
	return out, nil
}

func isProcessorSlice(label string) bool {
	switch label {
	case "Wake-up & timer (5)", "AON IOs (4)", "S/R SRAMs (7,8)", "PMU AON & CKE (5,6)":
		return true
	}
	return false
}

// Table renders the breakdown.
func (r *Fig1bResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Fig. 1(b) — DRIPS platform power breakdown (total %.1f mW)", r.TotalMW),
		"Component", "mW", "Share")
	for _, s := range r.Slices {
		t.AddRow(s.Label, fmt.Sprintf("%.2f", s.MW), fmt.Sprintf("%.1f%%", s.Percent))
	}
	t.AddNote("processor die total: %.1f%% (paper: 18%%)", r.ProcessorPct)
	t.AddNote("paper anchors: total ~60 mW; AON IOs 7%%; S/R SRAMs 9%%; wake-up hw (timer+crystal) ~5%%")
	return t
}
