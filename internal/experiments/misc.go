package experiments

import (
	"fmt"

	"odrips/internal/clock"
	"odrips/internal/ctxstore"
	"odrips/internal/dram"
	"odrips/internal/platform"
	"odrips/internal/report"
	"odrips/internal/sim"
	"odrips/internal/timer"
	"odrips/internal/workload"
)

// Table1 renders the paper's Table 1 system parameters as realized by the
// simulation.
func Table1() *report.Table {
	cfg := platform.DefaultConfig()
	bud := platform.Skylake()
	t := report.NewTable("Table 1 — Baseline and target system parameters", "Parameter", "Value")
	t.AddRow("Processor (modeled)", "Skylake-class client, 14 nm")
	t.AddRow("Core frequency (maintenance)", fmt.Sprintf("%d MHz (800–2400 supported band)", cfg.CoreFreqMHz))
	t.AddRow("L3 cache (LLC)", fmt.Sprintf("%d MB", bud.LLCBytes>>20))
	t.AddRow("TDP class", "15 W (U-series)")
	t.AddRow("Chipset (modeled)", "Sunrise Point-LP-class wake hub")
	t.AddRow("Memory", fmt.Sprintf("DDR3L-%d, dual channel, non-ECC", cfg.DRAMMTps))
	t.AddRow("Memory capacity", "8 GB")
	t.AddRow("Fast crystal", "24 MHz (board XTAL)")
	t.AddRow("RTC crystal", "32.768 kHz (board XTAL)")
	t.AddRow("Processor context", fmt.Sprintf("%d KB + %d B boot image",
		ctxstore.GenerateSkylake(cfg.Seed).Size()>>10, ctxstore.BootImageSize))
	t.AddRow("PD efficiency (DRIPS)", fmt.Sprintf("%.0f%%", bud.EffIdle*100))
	return t
}

// CalibrationResult reproduces §4.1.3: the Step geometry and precision.
type CalibrationResult struct {
	IntBits, FracBits uint
	NSlow, NFast      uint64
	Window            sim.Duration
	Step              float64
	DriftPPB          float64
	MeasuredDriftPPB  float64 // from a full ODRIPS run
}

// Calibration runs the Step calibration on the standard crystal pair and
// measures actual end-to-end timer drift across ODRIPS cycles.
func Calibration() (*CalibrationResult, error) {
	s := sim.NewScheduler()
	fast := clock.NewOscillator(s, "xtal24", 24_000_000, 2_300, 0)
	slow := clock.NewOscillator(s, "xtal32", 32_768, -4_100, 0)
	fast.PowerOn()
	slow.PowerOn()
	res, err := timer.CalibrateNow(s, fast, slow)
	if err != nil {
		return nil, err
	}
	out := &CalibrationResult{
		IntBits:  res.IntBits,
		FracBits: res.FracBits,
		NSlow:    res.NSlow,
		NFast:    res.NFast,
		Window:   res.Window,
		//odrips:allow fpfloat Step here only feeds the §4.1.3 report table; the run's timer math stays in fixed point
		Step:     res.Step.Float(),
		DriftPPB: res.DriftPPB(),
	}
	run, err := runConfig(platform.ODRIPSConfig(), defaultCycles)
	if err != nil {
		return nil, err
	}
	out.MeasuredDriftPPB = run.TimerDriftPPB
	return out, nil
}

// Table renders the calibration result.
func (r *CalibrationResult) Table() *report.Table {
	t := report.NewTable("§4.1.3 — Step calibration and timer precision", "Quantity", "Value")
	t.AddRow("Integer bits m", fmt.Sprintf("%d (paper: 10)", r.IntBits))
	t.AddRow("Fractional bits f", fmt.Sprintf("%d (paper: 21)", r.FracBits))
	t.AddRow("Calibration window N_slow", fmt.Sprintf("2^%d = %d slow cycles", r.FracBits, r.NSlow))
	t.AddRow("Window wall time", r.Window.String())
	t.AddRow("Counted N_fast", fmt.Sprintf("%d", r.NFast))
	t.AddRow("Step", fmt.Sprintf("%.9f", r.Step))
	t.AddRow("Quantization drift bound", fmt.Sprintf("%.3f ppb (target: 1 ppb)", r.DriftPPB))
	t.AddRow("Measured end-to-end drift", fmt.Sprintf("%.3f ppb across ODRIPS cycles", r.MeasuredDriftPPB))
	return t
}

// CtxLatencyResult reproduces §6.3: context save/restore latencies per
// storage medium.
type CtxLatencyResult struct {
	Rows []CtxLatencyRow
}

// CtxLatencyRow is one storage medium.
type CtxLatencyRow struct {
	Medium  string
	Save    sim.Duration
	Restore sim.Duration
}

// CtxLatency measures the context transfer for protected DRAM (ODRIPS),
// on-chip eMRAM, PCM main memory, and the baseline SRAM path.
func CtxLatency() (*CtxLatencyResult, error) {
	out := &CtxLatencyResult{}
	add := func(name string, cfg platform.Config) error {
		res, err := runConfig(cfg, 2)
		if err != nil {
			return fmt.Errorf("ctx latency %s: %w", name, err)
		}
		out.Rows = append(out.Rows, CtxLatencyRow{Medium: name, Save: res.CtxSave, Restore: res.CtxRestore})
		return nil
	}
	if err := add("S/R SRAM (baseline)", platform.DefaultConfig()); err != nil {
		return nil, err
	}
	if err := add("SGX DRAM (ODRIPS)", platform.ODRIPSConfig()); err != nil {
		return nil, err
	}
	mram := platform.DefaultConfig().WithTechniques(platform.WakeUpOff | platform.AONIOGate)
	mram.CtxInEMRAM = true
	if err := add("eMRAM (ODRIPS-MRAM)", mram); err != nil {
		return nil, err
	}
	pcm := platform.ODRIPSConfig()
	pcm.MainMemory = dram.PCM
	if err := add("PCM (ODRIPS-PCM)", pcm); err != nil {
		return nil, err
	}
	return out, nil
}

// Table renders the latencies.
func (r *CtxLatencyResult) Table() *report.Table {
	t := report.NewTable("§6.3 — Context save/restore latency (~200 KB)",
		"Medium", "Save", "Restore")
	for _, row := range r.Rows {
		t.AddRow(row.Medium,
			fmt.Sprintf("%.1f us", row.Save.Microseconds()),
			fmt.Sprintf("%.1f us", row.Restore.Microseconds()))
	}
	t.AddNote("paper (SGX DRAM): ~18 us save, ~13 us restore, 95%% estimation accuracy")
	return t
}

// ValidationRow is one configuration of the model-validation experiment.
type ValidationRow struct {
	Name         string
	PredictedMW  float64
	MeasuredMW   float64
	AccuracyPct  float64
	IdlePredMW   float64
	IdleMeasMW   float64
	IdleAccuracy float64
}

// ValidationResult reproduces §7's power-model validation: the analytic
// Equation-1 model against the simulated measurement.
type ValidationResult struct {
	Rows        []ValidationRow
	WorstAccPct float64
}

// ModelValidation evaluates every Fig. 6(a) configuration plus the
// emerging-memory variants of Fig. 6(d).
func ModelValidation() (*ValidationResult, error) {
	out := &ValidationResult{WorstAccPct: 100}
	configs := fig6aConfigs()
	mram := platform.DefaultConfig().WithTechniques(platform.WakeUpOff | platform.AONIOGate)
	mram.CtxInEMRAM = true
	pcm := platform.ODRIPSConfig()
	pcm.MainMemory = dram.PCM
	configs = append(configs, mram, pcm)
	for _, cfg := range configs {
		p, err := platform.New(cfg)
		if err != nil {
			return nil, err
		}
		prof, err := p.AnalyticProfile(30 * sim.Second)
		if err != nil {
			return nil, err
		}
		idlePred := p.AnalyticIdleMW()
		res, err := p.RunCycles(workload.Fixed(defaultCycles, 0, 30*sim.Second))
		if err != nil {
			return nil, err
		}
		row := ValidationRow{
			Name:        cfg.Name(),
			PredictedMW: prof.AverageMW(),
			MeasuredMW:  res.AvgPowerMW,
			IdlePredMW:  idlePred,
			IdleMeasMW:  res.IdlePowerMW(),
		}
		row.AccuracyPct = 100 * (1 - abs(row.PredictedMW-row.MeasuredMW)/row.MeasuredMW)
		row.IdleAccuracy = 100 * (1 - abs(row.IdlePredMW-row.IdleMeasMW)/row.IdleMeasMW)
		if row.AccuracyPct < out.WorstAccPct {
			out.WorstAccPct = row.AccuracyPct
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Table renders the validation.
func (r *ValidationResult) Table() *report.Table {
	t := report.NewTable("§7 — Power-model validation (Equation 1 vs. measurement)",
		"Configuration", "Model (mW)", "Measured (mW)", "Accuracy", "Idle model", "Idle meas.", "Idle acc.")
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%.2f", row.PredictedMW),
			fmt.Sprintf("%.2f", row.MeasuredMW),
			fmt.Sprintf("%.1f%%", row.AccuracyPct),
			fmt.Sprintf("%.2f", row.IdlePredMW),
			fmt.Sprintf("%.2f", row.IdleMeasMW),
			fmt.Sprintf("%.1f%%", row.IdleAccuracy))
	}
	t.AddNote("paper reports ~95%% model accuracy; worst configuration here: %.1f%%", r.WorstAccPct)
	return t
}
