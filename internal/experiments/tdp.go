package experiments

import (
	"fmt"

	"odrips/internal/platform"
	"odrips/internal/report"
)

// TDPRow is one product class of the TDP-sensitivity study.
type TDPRow struct {
	TDPWatts     float64
	Class        string
	BaselineMW   float64
	ODRIPSMW     float64
	ReductionPct float64
}

// TDPResult reproduces the paper's §1 claim that the proposal "is more
// critical for lower TDPs (e.g., 3.5 W to 25 W)": active power scales with
// the product class, but the always-on idle infrastructure ODRIPS attacks
// does not, so the percentage saving grows as the TDP shrinks.
type TDPResult struct {
	Rows []TDPRow
}

// TDPSensitivity measures baseline and ODRIPS average power across product
// classes.
func TDPSensitivity() (*TDPResult, error) {
	classes := []struct {
		watts float64
		name  string
	}{
		{4.5, "Y-series handheld"},
		{15, "U-series notebook (Table 1)"},
		{28, "H-series performance laptop"},
		{45, "HK-series mobile workstation"},
	}
	out := &TDPResult{}
	for _, cl := range classes {
		base := platform.DefaultConfig()
		base.TDPWatts = cl.watts
		baseRes, err := runConfig(base, 2)
		if err != nil {
			return nil, fmt.Errorf("tdp %v base: %w", cl.watts, err)
		}
		opt := platform.ODRIPSConfig()
		opt.TDPWatts = cl.watts
		optRes, err := runConfig(opt, 2)
		if err != nil {
			return nil, fmt.Errorf("tdp %v odrips: %w", cl.watts, err)
		}
		out.Rows = append(out.Rows, TDPRow{
			TDPWatts:     cl.watts,
			Class:        cl.name,
			BaselineMW:   baseRes.AvgPowerMW,
			ODRIPSMW:     optRes.AvgPowerMW,
			ReductionPct: 100 * (baseRes.AvgPowerMW - optRes.AvgPowerMW) / baseRes.AvgPowerMW,
		})
	}
	return out, nil
}

// Table renders the study.
func (r *TDPResult) Table() *report.Table {
	t := report.NewTable("§1 — ODRIPS saving across TDP classes (connected standby)",
		"TDP", "Class", "Baseline", "ODRIPS", "Reduction")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%.1f W", row.TDPWatts),
			row.Class,
			fmt.Sprintf("%.1f mW", row.BaselineMW),
			fmt.Sprintf("%.1f mW", row.ODRIPSMW),
			fmt.Sprintf("-%.1f%%", row.ReductionPct))
	}
	t.AddNote("the idle infrastructure ODRIPS removes is TDP-independent, so the")
	t.AddNote("percentage saving grows as the product class shrinks (paper §1)")
	return t
}
