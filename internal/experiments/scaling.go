package experiments

import (
	"fmt"
	"sort"

	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/report"
	"odrips/internal/sim"
)

// ScalingRow is one component group of the §7 process-scaling projection.
type ScalingRow struct {
	Component   string
	HaswellMW   float64 // measured on the 22 nm platform
	Factor      float64 // 22 nm → 14 nm divisor
	ProjectedMW float64
	SkylakeMW   float64 // measured directly on the 14 nm platform
}

// ScalingResult reproduces the paper's power-model construction (§7,
// steps 1–2): measure the previous-generation Haswell-ULT platform in
// DRIPS, scale each component by its process factor, and validate the
// projection against the direct Skylake measurement.
type ScalingResult struct {
	Rows             []ScalingRow
	HaswellTotalMW   float64
	ProjectedTotalMW float64
	SkylakeTotalMW   float64
	AccuracyPct      float64
	HaswellExitAvg   sim.Duration
	SkylakeExitAvg   sim.Duration
}

// ProcessScaling runs both generations (in parallel) and builds the
// projection.
func ProcessScaling() (*ScalingResult, error) {
	hswCfg := platform.DefaultConfig()
	hswCfg.Generation = platform.GenHaswell
	configs := []platform.Config{hswCfg, platform.DefaultConfig()}
	results, err := runIndexed(len(configs), 0,
		func(i int) string { return configs[i].Name() },
		func(i int) (platform.Result, error) { return runConfig(configs[i], defaultCycles) })
	if err != nil {
		return nil, fmt.Errorf("scaling: %w", err)
	}
	hsw, sky := results[0], results[1]

	idleMW := func(res platform.Result, name string) float64 {
		sec := res.Residency[power.Idle] * res.Duration.Seconds()
		if sec <= 0 {
			return 0
		}
		return res.IdleByComponent[name] * 1e3 / sec
	}
	names := make([]string, 0, len(hsw.IdleByComponent))
	for name := range hsw.IdleByComponent {
		names = append(names, name)
	}
	sort.Strings(names)

	out := &ScalingResult{
		HaswellExitAvg: hsw.ExitAvg,
		SkylakeExitAvg: sky.ExitAvg,
	}
	for _, name := range names {
		h := idleMW(hsw, name)
		s := idleMW(sky, name)
		f := platform.ComponentScaleTo14nm(name)
		row := ScalingRow{
			Component:   name,
			HaswellMW:   h,
			Factor:      f,
			ProjectedMW: h / f,
			SkylakeMW:   s,
		}
		out.Rows = append(out.Rows, row)
		out.HaswellTotalMW += h
		out.ProjectedTotalMW += row.ProjectedMW
		out.SkylakeTotalMW += s
	}
	if out.SkylakeTotalMW > 0 {
		out.AccuracyPct = 100 * (1 - abs(out.ProjectedTotalMW-out.SkylakeTotalMW)/out.SkylakeTotalMW)
	}

	return out, nil
}

// Table renders the projection.
func (r *ScalingResult) Table() *report.Table {
	t := report.NewTable("§7 — Process scaling: Haswell-ULT (22 nm) measurement → Skylake (14 nm) projection",
		"Component", "Haswell (mW)", "Factor", "Projected (mW)", "Skylake (mW)")
	for _, row := range r.Rows {
		if row.HaswellMW < 0.01 && row.SkylakeMW < 0.01 {
			continue
		}
		t.AddRow(row.Component,
			fmt.Sprintf("%.2f", row.HaswellMW),
			fmt.Sprintf("1/%.2f", row.Factor),
			fmt.Sprintf("%.2f", row.ProjectedMW),
			fmt.Sprintf("%.2f", row.SkylakeMW))
	}
	t.AddRow("TOTAL",
		fmt.Sprintf("%.1f", r.HaswellTotalMW), "",
		fmt.Sprintf("%.1f", r.ProjectedTotalMW),
		fmt.Sprintf("%.1f", r.SkylakeTotalMW))
	t.AddNote("projection accuracy %.1f%% (the paper validates its model at ~95%%)", r.AccuracyPct)
	t.AddNote("Haswell C10 exit %.2f ms vs Skylake %.0f us (§3: VR re-init dominates)",
		r.HaswellExitAvg.Milliseconds(), r.SkylakeExitAvg.Microseconds())
	return t
}
