package experiments

import (
	"fmt"

	"odrips/internal/faults"
	"odrips/internal/platform"
	"odrips/internal/report"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// FaultSweepRow is one fault scenario measured against the clean run.
type FaultSweepRow struct {
	Scenario string
	Plan     string
	AvgMW    float64
	DeltaUW  float64 // average-power overhead vs. the clean run, in uW
	Stats    platform.FaultStats
}

// FaultSweepReport measures the energy cost of every recovery edge the
// fault plane can exercise: aborted entries at increasing depth, context
// restore retry and degradation, drift recalibration, and FET re-drive.
// The clean row doubles as a self-check — its plan is empty, so its
// numbers must equal the ordinary ODRIPS headline run.
type FaultSweepReport struct {
	Rows []FaultSweepRow
}

// faultSweepScenarios is the fixed scenario list: deterministic order,
// deterministic plans.
var faultSweepScenarios = []struct {
	name string
	plan string
}{
	{"clean", ""},
	{"abort @ firmware", "wake@1.0"},
	{"abort @ ctx saved", "wake@1.3"},
	{"abort @ timer migrated", "wake@1.6"},
	{"wake during exit", "wakex@1.2"},
	{"restore retry (transient)", "meefail@1"},
	{"degrade (persistent)", "meefail@1:1"},
	{"degrade (retention bit flip)", "bitflip@1:12345"},
	{"drift recalibration", "drift@1:1000000"},
	{"FET re-drive", "fetglitch@1"},
}

// FaultSweep measures the scenario list, fanning points across the worker
// pool like every other experiment.
func FaultSweep() (*FaultSweepReport, error) {
	specs := make([]PointSpec[FaultSweepRow], len(faultSweepScenarios))
	for i, sc := range faultSweepScenarios {
		sc := sc
		specs[i] = PointSpec[FaultSweepRow]{
			Label: sc.name,
			Run: func() (FaultSweepRow, error) {
				plan, err := faults.Parse(sc.plan)
				if err != nil {
					return FaultSweepRow{}, err
				}
				p, err := platform.New(platform.ODRIPSConfig())
				if err != nil {
					return FaultSweepRow{}, err
				}
				if err := p.InjectFaults(plan); err != nil {
					return FaultSweepRow{}, err
				}
				res, err := p.RunCycles(workload.Fixed(defaultCycles, 0, 30*sim.Second))
				if err != nil {
					return FaultSweepRow{}, err
				}
				return FaultSweepRow{
					Scenario: sc.name,
					Plan:     sc.plan,
					AvgMW:    res.AvgPowerMW,
					Stats:    res.Faults,
				}, nil
			},
		}
	}
	results, err := RunPoints(specs, 0)
	if err != nil {
		return nil, err
	}
	out := &FaultSweepReport{Rows: make([]FaultSweepRow, len(results))}
	for i, r := range results {
		out.Rows[i] = r.Value
	}
	clean := out.Rows[0].AvgMW
	for i := range out.Rows {
		out.Rows[i].DeltaUW = (out.Rows[i].AvgMW - clean) * 1e3
	}
	return out, nil
}

// Table renders the sweep.
func (r *FaultSweepReport) Table() *report.Table {
	t := report.NewTable("Fault sweep — recovery-edge energy overheads (ODRIPS, 3x30s cycles)",
		"Scenario", "Plan", "Avg power", "Overhead", "Recovery")
	for _, row := range r.Rows {
		recovery := "-"
		if s := row.Stats; s.Fired > 0 || s.Skipped > 0 {
			recovery = fmt.Sprintf("aborts %d (%.0f uJ wasted), retries %d, degradations %d, recals %d, fet %d",
				s.EntryAborts, s.AbortWastedUJ, s.MEERetries, s.Degradations,
				s.Recalibrations, s.FETRetries)
		}
		t.AddRow(row.Scenario,
			row.Plan,
			fmt.Sprintf("%.3f mW", row.AvgMW),
			fmt.Sprintf("%+.1f uW", row.DeltaUW),
			recovery)
	}
	t.AddNote("overhead vs. the clean row; aborted entries retry the full idle window, degradation persists for the rest of the run")
	return t
}
