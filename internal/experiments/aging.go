package experiments

import (
	"fmt"
	"math"

	"odrips/internal/clock"
	"odrips/internal/report"
	"odrips/internal/sim"
	"odrips/internal/timer"
)

// AgingRow is one temperature-excursion point of the calibration study.
type AgingRow struct {
	DeltaPPM      float64 // fast-crystal shift after calibration
	StaleDriftPPB float64 // drift with the original (stale) Step
	RecalDriftPPB float64 // drift after re-running the calibration
}

// AgingResult probes the §4.1.3 design decision to calibrate "only once
// after each reset": the Step captures the crystal ratio at calibration
// time, so a later temperature excursion of Δppm on the fast crystal turns
// into ~1000·Δppm ppb of slow-timer drift until a recalibration runs.
type AgingResult struct {
	Rows []AgingRow
}

// agingWindow is the drift-measurement window: ~42 s is one billion fast
// cycles, the paper's own 1 ppb definition window, making the ±1-count
// sampling granularity equal to 1 ppb.
const agingWindow = 42 * sim.Second

// CalibrationAging measures stale-Step drift for several post-calibration
// crystal shifts, and the recovery after recalibration.
func CalibrationAging() (*AgingResult, error) {
	out := &AgingResult{}
	for _, deltaPPM := range []float64{0, 0.5, 2, 10} {
		stale, err := agingDrift(deltaPPM, false)
		if err != nil {
			return nil, err
		}
		recal, err := agingDrift(deltaPPM, true)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AgingRow{
			DeltaPPM:      deltaPPM,
			StaleDriftPPB: stale,
			RecalDriftPPB: recal,
		})
	}
	return out, nil
}

// agingDrift calibrates, shifts the fast crystal by deltaPPM, optionally
// recalibrates, and measures slow-timer drift against a live fast counter
// over the window, sampled exactly on a slow-clock edge so inter-edge lag
// does not pollute the number.
func agingDrift(deltaPPM float64, recal bool) (float64, error) {
	s := sim.NewScheduler()
	fast := clock.NewOscillator(s, "xtal24", 24_000_000, 2_300, 0)
	slow := clock.NewOscillator(s, "xtal32", 32_768, -4_100, 0)
	fast.PowerOn()
	slow.PowerOn()
	res, err := timer.CalibrateNow(s, fast, slow)
	if err != nil {
		return 0, err
	}
	// Temperature excursion after calibration.
	fast.Retune(2_300 + int64(deltaPPM*1000))
	step := res.Step
	if recal {
		res2, err := timer.CalibrateNow(s, fast, slow)
		if err != nil {
			return 0, err
		}
		step = res2.Step
	}

	dom := clock.NewDomain("fast", fast)
	ref := timer.NewFastCounter(s, "ref", dom)
	sc := timer.NewSlowCounter(s, "slow", slow, step)
	k0, t0, ok := slow.NextEdge(s.Now())
	if !ok {
		return 0, fmt.Errorf("experiments: no slow edge")
	}
	var startErr error
	s.At(t0, "aging.start", func() {
		if err := ref.Set(0); err != nil {
			startErr = err
			return
		}
		startErr = sc.Load(0)
	})
	// End one picosecond after a slow edge ~window later: edge timestamps
	// are floored to the picosecond grid, so sampling exactly at
	// EdgeTime(k) would miss the step that lands on that edge, polluting
	// the measurement with one full Step (~3000 ppb) of sampling lag.
	nEdges := uint64(agingWindow.Seconds()*32_768 + 0.5)
	end := slow.EdgeTime(k0 + nEdges).Add(sim.Picosecond)
	var drift float64
	s.At(end, "aging.sample", func() {
		refV := float64(ref.Read())
		slowV := float64(sc.Read())
		if refV > 0 {
			drift = math.Abs(slowV-refV) / refV * 1e9
		}
	})
	s.Run()
	if startErr != nil {
		return 0, startErr
	}
	return drift, nil
}

// Table renders the study.
func (r *AgingResult) Table() *report.Table {
	t := report.NewTable("§4.1.3 — Calibration aging: drift vs. post-calibration crystal shift",
		"Crystal shift", "Stale-Step drift", "After recalibration")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%+.1f ppm", row.DeltaPPM),
			fmt.Sprintf("%.1f ppb", row.StaleDriftPPB),
			fmt.Sprintf("%.1f ppb", row.RecalDriftPPB))
	}
	t.AddNote("a Δppm excursion costs ~1000·Δppm ppb until the Step is re-measured;")
	t.AddNote("the paper calibrates once per reset, which suffices for the 1 ppb target only while the ratio holds")
	return t
}
