package experiments

import (
	"strings"
	"testing"

	"odrips/internal/platform"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// The clean row is the sweep's self-check: an empty plan must reproduce
// the ordinary ODRIPS run exactly, and every recovery edge must fire in
// its scenario.
func TestFaultSweep(t *testing.T) {
	r, err := FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(faultSweepScenarios) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(faultSweepScenarios))
	}

	p, err := platform.New(platform.ODRIPSConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunCycles(workload.Fixed(defaultCycles, 0, 30*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	clean := r.Rows[0]
	if clean.Scenario != "clean" || clean.Plan != "" {
		t.Fatalf("row 0 = %q plan %q, want the clean scenario", clean.Scenario, clean.Plan)
	}
	if clean.AvgMW != res.AvgPowerMW {
		t.Errorf("clean row %.9f mW differs from plane-free run %.9f mW", clean.AvgMW, res.AvgPowerMW)
	}
	if clean.DeltaUW != 0 {
		t.Errorf("clean row overhead = %f uW, want 0", clean.DeltaUW)
	}

	for _, row := range r.Rows[1:] {
		if row.Stats.Fired == 0 {
			t.Errorf("%s: plan %q never fired", row.Scenario, row.Plan)
		}
		edges := row.Stats.EntryAborts + row.Stats.MEERetries + row.Stats.Degradations +
			row.Stats.Recalibrations + row.Stats.FETRetries
		if edges == 0 && !strings.Contains(row.Scenario, "exit") {
			t.Errorf("%s: no recovery edge exercised (stats %+v)", row.Scenario, row.Stats)
		}
		if strings.HasPrefix(row.Scenario, "abort") && row.DeltaUW <= 0 {
			t.Errorf("%s: abort overhead %.2f uW, want > 0", row.Scenario, row.DeltaUW)
		}
		if strings.HasPrefix(row.Scenario, "degrade") && row.DeltaUW < 1000 {
			t.Errorf("%s: degradation overhead %.2f uW, want >= 1 mW", row.Scenario, row.DeltaUW)
		}
	}

	var sb strings.Builder
	r.Table().Render(&sb)
	if !strings.Contains(sb.String(), "degradations 1") {
		t.Errorf("rendered table missing recovery summary:\n%s", sb.String())
	}
}
