// Package experiments reproduces every table and figure of the paper's
// evaluation: the DRIPS power breakdown (Fig. 1(b)), the connected-standby
// profile (Fig. 2), the timer hand-over waveform (Fig. 3(b)), the Step
// calibration (§4.1.3), the technique comparison with break-even points
// (Fig. 6(a)), the core-frequency and DRAM-frequency sweeps (Fig. 6(b,c)),
// the emerging-memory variants (Fig. 6(d)), the context transfer latencies
// (§6.3), the platform parameters (Table 1), and the power-model validation
// (§7). Each experiment returns both raw values (asserted by tests and
// benchmarks) and a rendered report table.
package experiments

import (
	"fmt"

	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// defaultCycles is the number of connected-standby cycles measured per
// configuration for headline numbers.
const defaultCycles = 3

// runConfig builds a platform and measures n standard 30 s cycles.
func runConfig(cfg platform.Config, n int) (platform.Result, error) {
	p, err := platform.New(cfg)
	if err != nil {
		return platform.Result{}, err
	}
	return p.RunCycles(workload.Fixed(n, 0, 30*sim.Second))
}

// SweepOptions controls the empirical break-even sweep (§7: residency from
// 0.6 ms to 1 s at 0.1 ms). The default grid covers the crossover region
// at 0.2 ms granularity; PaperGrid reproduces the full published sweep.
type SweepOptions struct {
	Enabled        bool
	Lo, Hi, Step   sim.Duration
	CyclesPerPoint int
}

// DefaultSweep covers the break-even region quickly.
func DefaultSweep() SweepOptions {
	return SweepOptions{
		Enabled:        true,
		Lo:             600 * sim.Microsecond,
		Hi:             12 * sim.Millisecond,
		Step:           200 * sim.Microsecond,
		CyclesPerPoint: 4,
	}
}

// PaperGrid is the full §7 sweep (0.6 ms – 1 s at 0.1 ms). It runs ~10,000
// points per configuration; use it from the command-line harness, not from
// unit tests.
func PaperGrid() SweepOptions {
	return SweepOptions{
		Enabled:        true,
		Lo:             600 * sim.Microsecond,
		Hi:             sim.Second,
		Step:           100 * sim.Microsecond,
		CyclesPerPoint: 1,
	}
}

// sweepAverage measures the average power of the idle cycle — entry, idle
// residency, and exit, excluding the identical active burst — with the
// deepest state forced (the paper's debug-switch methodology). Excluding
// the active burst isolates the energy trade the break-even point is
// about; including it only adds identical energy to both sides of the
// comparison while its 3 W level drowns the microjoule-scale signal at
// sub-millisecond residencies.
func sweepAverage(cfg platform.Config, residency sim.Duration, cycles int) (float64, error) {
	cfg.ForceDeepest = true
	p, err := platform.New(cfg)
	if err != nil {
		return 0, err
	}
	res, err := p.RunCycles(workload.Fixed(cycles, 2*sim.Millisecond, residency))
	if err != nil {
		return 0, err
	}
	var energyJ, seconds float64
	for _, st := range []power.State{power.Entry, power.Idle, power.Exit} {
		energyJ += res.StateEnergyJ[st]
		seconds += res.Residency[st] * res.Duration.Seconds()
	}
	if seconds <= 0 {
		return 0, fmt.Errorf("sweep: no idle-cycle time at %v", residency)
	}
	return energyJ * 1e3 / seconds, nil
}

// transitionTime measures a configuration's entry+exit duration once, so
// the sweep can hold the wake period fixed across configurations.
func transitionTime(cfg platform.Config) (sim.Duration, error) {
	cfg.ForceDeepest = true
	p, err := platform.New(cfg)
	if err != nil {
		return 0, err
	}
	res, err := p.RunCycles(workload.Fixed(1, 2*sim.Millisecond, 20*sim.Millisecond))
	if err != nil {
		return 0, err
	}
	return res.EntryAvg + res.ExitAvg, nil
}

// SweepBreakEven finds the first residency at which opt's measured average
// power drops below base's. The wake period is held constant across the
// two configurations (a fixed-interval timer wake, as a real sweep would
// arm): opt's longer transitions come out of its idle window, so the
// comparison is a pure energy trade rather than a duration dilution.
func SweepBreakEven(base, opt platform.Config, o SweepOptions) (sim.Duration, bool, error) {
	if o.CyclesPerPoint <= 0 {
		o.CyclesPerPoint = 1
	}
	transBase, err := transitionTime(base)
	if err != nil {
		return 0, false, fmt.Errorf("sweep base transitions: %w", err)
	}
	transOpt, err := transitionTime(opt)
	if err != nil {
		return 0, false, fmt.Errorf("sweep opt transitions: %w", err)
	}
	extra := transOpt - transBase
	var points []power.SweepPoint
	for _, r := range workload.SweepResidencies(o.Lo, o.Hi, o.Step) {
		optIdle := r - extra
		if optIdle < 100*sim.Microsecond {
			continue // period too short for the optimized transitions
		}
		b, err := sweepAverage(base, r, o.CyclesPerPoint)
		if err != nil {
			return 0, false, fmt.Errorf("sweep base at %v: %w", r, err)
		}
		op, err := sweepAverage(opt, optIdle, o.CyclesPerPoint)
		if err != nil {
			return 0, false, fmt.Errorf("sweep opt at %v: %w", r, err)
		}
		points = append(points, power.SweepPoint{Residency: r, BaseMW: b, OptMW: op})
		// Early exit once the crossover is established.
		if op < b {
			break
		}
	}
	be, ok := power.BreakEvenFromSweep(points)
	return be, ok, nil
}
