// Package experiments reproduces every table and figure of the paper's
// evaluation: the DRIPS power breakdown (Fig. 1(b)), the connected-standby
// profile (Fig. 2), the timer hand-over waveform (Fig. 3(b)), the Step
// calibration (§4.1.3), the technique comparison with break-even points
// (Fig. 6(a)), the core-frequency and DRAM-frequency sweeps (Fig. 6(b,c)),
// the emerging-memory variants (Fig. 6(d)), the context transfer latencies
// (§6.3), the platform parameters (Table 1), and the power-model validation
// (§7). Each experiment returns both raw values (asserted by tests and
// benchmarks) and a rendered report table.
//
// Point evaluations are embarrassingly parallel — each builds its own
// platform and scheduler — and run through the worker-pool engine in
// engine.go; results are deterministic at any worker count.
package experiments

import (
	"encoding/binary"
	"fmt"
	"math"

	"odrips/internal/aonio"
	"odrips/internal/memostore"
	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// defaultCycles is the number of connected-standby cycles measured per
// configuration for headline numbers.
const defaultCycles = 3

// runConfig builds a platform and measures n standard 30 s cycles.
func runConfig(cfg platform.Config, n int) (platform.Result, error) {
	p, err := platform.New(cfg)
	if err != nil {
		return platform.Result{}, err
	}
	return p.RunCycles(workload.Fixed(n, 0, 30*sim.Second))
}

// SweepOptions controls the empirical break-even sweep (§7: residency from
// 0.6 ms to 1 s at 0.1 ms). The default grid covers the crossover region
// at 0.2 ms granularity; PaperGrid reproduces the full published sweep.
type SweepOptions struct {
	Enabled        bool
	Lo, Hi, Step   sim.Duration
	CyclesPerPoint int

	// Workers sizes the point-evaluation worker pool: 0 uses the package
	// default (normally runtime.GOMAXPROCS(0)), 1 evaluates points
	// sequentially on the calling goroutine. Results are identical at any
	// worker count.
	Workers int
	// Sequential forces single-threaded evaluation regardless of Workers —
	// a debugging knob equivalent to Workers=1.
	Sequential bool
}

// workers resolves the knobs to a concrete pool size request.
func (o SweepOptions) workers() int {
	if o.Sequential {
		return 1
	}
	return o.Workers
}

// Validate checks that an enabled sweep describes a finite, advancing
// residency grid. A zero Step in particular would never advance the grid.
func (o SweepOptions) Validate() error {
	if !o.Enabled {
		return nil
	}
	if o.Step <= 0 {
		return fmt.Errorf("experiments: sweep step %v must be positive (a non-advancing grid would sweep forever)", o.Step)
	}
	if o.Lo <= 0 {
		return fmt.Errorf("experiments: sweep lower bound %v must be positive", o.Lo)
	}
	if o.Hi < o.Lo {
		return fmt.Errorf("experiments: sweep range inverted (lo %v > hi %v)", o.Lo, o.Hi)
	}
	if o.CyclesPerPoint < 0 {
		return fmt.Errorf("experiments: negative cycles per point %d", o.CyclesPerPoint)
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: negative worker count %d", o.Workers)
	}
	return nil
}

// DefaultSweep covers the break-even region quickly.
func DefaultSweep() SweepOptions {
	return SweepOptions{
		Enabled:        true,
		Lo:             600 * sim.Microsecond,
		Hi:             12 * sim.Millisecond,
		Step:           200 * sim.Microsecond,
		CyclesPerPoint: 4,
	}
}

// PaperGrid is the full §7 sweep (0.6 ms – 1 s at 0.1 ms). It runs ~10,000
// points per configuration; use it from the command-line harness, not from
// unit tests.
func PaperGrid() SweepOptions {
	return SweepOptions{
		Enabled:        true,
		Lo:             600 * sim.Microsecond,
		Hi:             sim.Second,
		Step:           100 * sim.Microsecond,
		CyclesPerPoint: 1,
	}
}

// ---- Point memo cache ----
//
// Sweep comparisons re-simulate the same (config, residency, cycles)
// points constantly: SweepBreakEven holds its baseline fixed across every
// comparison row of Fig. 6(a)/(d), so the base half of each sweep is the
// same grid re-evaluated per row. Config is a pure value type (see the
// comparability guard in internal/platform), so points memoize on the
// exact triple. Simulations are deterministic, which makes the cache
// transparent: a hit is bit-identical to a recompute.

// sweepPointKey identifies one sweep measurement, keyed by the config's
// canonical fingerprint class rather than the literal config.
type sweepPointKey struct {
	cfg       platform.Config
	residency sim.Duration
	cycles    int
}

// The canonicalization defaults are config-independent: the generation
// budgets are pure literals and the FET leakage default is a constructor
// constant. Building them once removes a Skylake()+Haswell()+NewFET
// allocation triple from every sweep point.
var (
	canonSkylakeDirty = platform.Skylake().LLCDirtyFraction
	canonHaswellDirty = platform.Haswell().LLCDirtyFraction
	canonFETLeakage   = aonio.NewFET(nil).LeakageFraction
)

// canonicalPointConfig maps a configuration to its sweep fingerprint
// class: knobs that provably cannot change a measured duration or energy
// are normalized to their zero form, so sweep halves sharing a steady
// state dedupe across experiments (the TDP study's 15 W row, a reinit
// ablation's 1.0 scale, and an explicit generation default all hit the
// same cache entries as the plain configuration). Every rule below is a
// platform.New identity, not an approximation:
func canonicalPointConfig(cfg platform.Config) platform.Config {
	// The seed only varies the context bytes; every measured quantity —
	// traffic, latency, energy — is size-based, never content-based (the
	// same argument the fast-forward manifest makes for DRAM content).
	cfg.Seed = 0
	// New ignores TDPWatts 0 and 15 alike (15 W is the calibration point).
	if cfg.TDPWatts == 15 {
		cfg.TDPWatts = 0
	}
	// A scale of exactly 1 multiplies the reinit latencies by 1.0 — a
	// float no-op.
	if cfg.ExitReinitScale == 1 {
		cfg.ExitReinitScale = 0
	}
	// Restating a generation's budget default changes nothing.
	dirty := canonSkylakeDirty
	if cfg.Generation == platform.GenHaswell {
		dirty = canonHaswellDirty
	}
	if cfg.LLCDirtyFraction == dirty {
		cfg.LLCDirtyFraction = 0
	}
	if cfg.FETLeakageFraction == canonFETLeakage {
		cfg.FETLeakageFraction = 0
	}
	return cfg
}

// The memo caches themselves live in the eng owner struct (engine.go),
// alongside the worker default — the package's one audited piece of
// process-scoped state. They are LRU-bounded (see the capacity rationale
// there); eviction merely re-simulates, so the bound trades time for a
// memory ceiling.

// ResetPointCache drops every memoized sweep point and transition time
// and zeroes the cache counters. Benchmarks call it so each iteration
// measures cold-cache cost.
func ResetPointCache() {
	eng.sweep.Reset()
	eng.trans.Reset()
}

// ---- Persistent point memos ----
//
// Beyond the in-process maps, points round-trip through the
// content-addressed memo store (-memocache) so a warm process skips the
// simulations entirely. An entry is one 8-byte little-endian word — the
// sweep average's Float64bits or the transition duration — keyed by the
// canonical config's exact Go representation plus the grid coordinates.
// Determinism makes the equality contract exact: in Verify mode the point
// is re-simulated and the stored bits must match to the last bit.

// pointDiskKey renders a stable store key for a canonicalized config.
func pointDiskKey(cfg platform.Config, residency sim.Duration, cycles int) []byte {
	return []byte(fmt.Sprintf("%#v|res=%d|n=%d", cfg, int64(residency), cycles))
}

// pointDiskLoad reads one 8-byte point from the default store. Any
// failure — no store, miss, corruption, wrong size — is a cache miss.
func pointDiskLoad(class string, key []byte) (uint64, bool) {
	payload, ok, err := memostore.Default().Load(class, key)
	if err != nil || !ok || len(payload) != 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(payload), true
}

// pointDiskVerify diffs a freshly computed point against the stored bits
// in -memocache=verify mode.
func pointDiskVerify(class string, key []byte, got uint64) error {
	if memostore.Default().Mode() != memostore.Verify {
		return nil
	}
	stored, ok := pointDiskLoad(class, key)
	if ok && stored != got {
		return fmt.Errorf("experiments: memocache verify: %s point diverged from persistent memo (stored %#x, computed %#x)", class, stored, got)
	}
	return nil
}

// pointMemo funnels one 8-byte point through the persistent store's
// load-miss→compute→save pipeline with in-process single-flight dedup
// (memostore.Store.LoadOrCompute): N sweep workers hitting the same cold
// point simulate it once and share the leader's bits — byte-identical to
// each recomputing, since points are deterministic. Verify mode is
// honored inside the pipeline: the load is skipped and the fresh bits
// are diffed against the stored ones by pointDiskVerify. With no store
// installed this degrades to a plain simulate call.
func pointMemo(class string, diskKey []byte, simulate func() (uint64, error)) (uint64, error) {
	payload, err := memostore.Default().LoadOrCompute(class, diskKey, func() ([]byte, error) {
		bits, serr := simulate()
		if serr != nil {
			return nil, serr
		}
		if verr := pointDiskVerify(class, diskKey, bits); verr != nil {
			return nil, verr
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], bits)
		return b[:], nil
	})
	if err != nil {
		return 0, err
	}
	if len(payload) == 8 {
		return binary.LittleEndian.Uint64(payload), nil
	}
	// A stored payload of the wrong shape is a miss by the point-memo
	// contract (pointDiskLoad's size check); re-simulate directly.
	bits, err := simulate()
	if err != nil {
		return 0, err
	}
	if err := pointDiskVerify(class, diskKey, bits); err != nil {
		return 0, err
	}
	return bits, nil
}

// sweepAverage measures the average power of the idle cycle — entry, idle
// residency, and exit, excluding the identical active burst — with the
// deepest state forced (the paper's debug-switch methodology). Excluding
// the active burst isolates the energy trade the break-even point is
// about; including it only adds identical energy to both sides of the
// comparison while its 3 W level drowns the microjoule-scale signal at
// sub-millisecond residencies.
func sweepAverage(cfg platform.Config, residency sim.Duration, cycles int) (float64, error) {
	key := sweepPointKey{cfg: canonicalPointConfig(cfg), residency: residency, cycles: cycles}
	if v, ok := eng.sweep.Get(key); ok {
		return v, nil
	}
	diskKey := pointDiskKey(key.cfg, residency, cycles)
	bits, err := pointMemo("sweep", diskKey, func() (uint64, error) {
		cfg.ForceDeepest = true
		p, err := platform.New(cfg)
		if err != nil {
			return 0, err
		}
		res, err := p.RunCycles(workload.Fixed(cycles, 2*sim.Millisecond, residency))
		if err != nil {
			return 0, err
		}
		var energyJ, seconds float64
		for _, st := range []power.State{power.Entry, power.Idle, power.Exit} {
			energyJ += res.StateEnergyJ[st]
			seconds += res.Residency[st] * res.Duration.Seconds()
		}
		if seconds <= 0 {
			return 0, fmt.Errorf("sweep: no idle-cycle time at %v", residency)
		}
		return math.Float64bits(energyJ * 1e3 / seconds), nil
	})
	if err != nil {
		return 0, err
	}
	mw := math.Float64frombits(bits)
	eng.sweep.Put(key, mw)
	return mw, nil
}

// transitionTime measures a configuration's entry+exit duration once, so
// the sweep can hold the wake period fixed across configurations.
func transitionTime(cfg platform.Config) (sim.Duration, error) {
	key := canonicalPointConfig(cfg)
	if v, ok := eng.trans.Get(key); ok {
		return v, nil
	}
	diskKey := pointDiskKey(key, 0, 0)
	bits, err := pointMemo("trans", diskKey, func() (uint64, error) {
		forced := cfg
		forced.ForceDeepest = true
		p, err := platform.New(forced)
		if err != nil {
			return 0, err
		}
		res, err := p.RunCycles(workload.Fixed(1, 2*sim.Millisecond, 20*sim.Millisecond))
		if err != nil {
			return 0, err
		}
		return uint64(int64(res.EntryAvg + res.ExitAvg)), nil
	})
	if err != nil {
		return 0, err
	}
	d := sim.Duration(int64(bits))
	eng.trans.Put(key, d)
	return d, nil
}

// SweepBreakEven finds the first residency at which opt's measured average
// power drops below base's. The wake period is held constant across the
// two configurations (a fixed-interval timer wake, as a real sweep would
// arm): opt's longer transitions come out of its idle window, so the
// comparison is a pure energy trade rather than a duration dilution.
//
// Grid points are evaluated in worker-sized parallel chunks: each chunk
// fans out across the pool, then the chunk is scanned in residency order
// for the crossover, preserving the sequential early-exit on long grids
// (the full PaperGrid stops ~60 points in, not 10,000). The chunk equals
// the worker count — never larger — because overshoot past the crossover
// is pure waste, and the optimized configurations are the expensive half
// of each point (a context save/restore through the real MEE per cycle);
// at Workers=1 the scan is exactly the sequential early-exit. The
// returned break-even is identical at any worker count because the point
// list is truncated at the first crossover before interpolation.
func SweepBreakEven(base, opt platform.Config, o SweepOptions) (sim.Duration, bool, error) {
	o.Enabled = true // callers gate on Enabled themselves; validate the grid
	if err := o.Validate(); err != nil {
		return 0, false, err
	}
	if o.CyclesPerPoint <= 0 {
		o.CyclesPerPoint = 1
	}
	workers := resolveWorkers(o.workers())
	transBase, err := transitionTime(base)
	if err != nil {
		return 0, false, fmt.Errorf("sweep base transitions: %w", err)
	}
	transOpt, err := transitionTime(opt)
	if err != nil {
		return 0, false, fmt.Errorf("sweep opt transitions: %w", err)
	}
	extra := transOpt - transBase

	// The evaluable grid: points whose optimized idle window survives the
	// longer transitions.
	var grid []sim.Duration
	for _, r := range workload.SweepResidencies(o.Lo, o.Hi, o.Step) {
		if r-extra >= 100*sim.Microsecond {
			grid = append(grid, r)
		}
	}

	chunk := workers
	if chunk < 1 {
		chunk = 1
	}
	var points []power.SweepPoint
scan:
	for start := 0; start < len(grid); start += chunk {
		end := start + chunk
		if end > len(grid) {
			end = len(grid)
		}
		batch, err := runIndexed(end-start, workers,
			func(i int) string { return fmt.Sprintf("residency %v", grid[start+i]) },
			func(i int) (power.SweepPoint, error) {
				r := grid[start+i]
				b, err := sweepAverage(base, r, o.CyclesPerPoint)
				if err != nil {
					return power.SweepPoint{}, fmt.Errorf("sweep base at %v: %w", r, err)
				}
				op, err := sweepAverage(opt, r-extra, o.CyclesPerPoint)
				if err != nil {
					return power.SweepPoint{}, fmt.Errorf("sweep opt at %v: %w", r, err)
				}
				return power.SweepPoint{Residency: r, BaseMW: b, OptMW: op}, nil
			})
		if err != nil {
			return 0, false, err
		}
		for _, pt := range batch {
			points = append(points, pt)
			// Early exit once the crossover is established; truncating here
			// keeps the point list — and thus the interpolated break-even —
			// independent of chunking and worker count.
			if pt.OptMW < pt.BaseMW {
				break scan
			}
		}
	}
	be, ok := power.BreakEvenFromSweep(points)
	return be, ok, nil
}
