package experiments

import (
	"fmt"

	"odrips/internal/platform"
	"odrips/internal/report"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// TraceEvent is one milestone of the timer hand-over waveform.
type TraceEvent struct {
	At    sim.Time
	Event string
	Value uint64
}

// Fig3bResult reproduces Fig. 3(b): the fast→slow hand-over during ODRIPS
// entry and the slow→fast hand-over during exit, with every milestone
// aligned to a 32.768 kHz rising edge.
type Fig3bResult struct {
	Events []TraceEvent
}

// Fig3b runs a single short ODRIPS cycle with the switch-unit trace armed.
func Fig3b() (*Fig3bResult, error) {
	cfg := platform.ODRIPSConfig()
	cfg.ForceDeepest = true
	p, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig3bResult{}
	p.Hub().Unit().Trace = func(event string, at sim.Time, value uint64) {
		out.Events = append(out.Events, TraceEvent{At: at, Event: event, Value: value})
	}
	if _, err := p.RunCycles(workload.Fixed(1, 2*sim.Millisecond, 50*sim.Millisecond)); err != nil {
		return nil, err
	}
	return out, nil
}

// Table renders the waveform milestones.
func (r *Fig3bResult) Table() *report.Table {
	t := report.NewTable(
		"Fig. 3(b) — Timer hand-over waveform (one ODRIPS entry + exit)",
		"Time", "Milestone", "Timer value")
	for _, e := range r.Events {
		t.AddRow(e.At.String(), e.Event, fmt.Sprintf("%d", e.Value))
	}
	t.AddNote("assert-switch→slow-loaded and deassert-switch→fast-reloaded land on 32.768 kHz edges")
	return t
}
