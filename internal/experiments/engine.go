package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"odrips/internal/lru"
	"odrips/internal/platform"
	"odrips/internal/sim"
)

// This file is the parallel experiment execution engine. Every figure of
// the paper's evaluation is built from independent platform simulations —
// each point constructs its own platform.New and scheduler, shares nothing
// mutable, and is bit-exact deterministic — so points fan out across
// worker goroutines and results are reassembled in submission order. The
// determinism guarantee: RunPoints output is byte-identical for any worker
// count, including 1.

// PointSpec describes one independent simulation point.
type PointSpec[T any] struct {
	// Label names the point in error messages ("ODRIPS @ 1.0 GHz",
	// "residency 6.6ms", ...).
	Label string
	// LabelFn lazily names the point when Label is empty. Sweeps submit
	// thousands of points whose names are only read on the error path, so
	// the engine defers the formatting instead of paying a Sprintf per
	// point.
	LabelFn func() string
	// Run evaluates the point. It must not share mutable state with other
	// points; `go test -race ./...` enforces this across the experiment
	// suite.
	Run func() (T, error)
}

// label resolves the point's name, formatting lazily if needed.
func (p *PointSpec[T]) label() string {
	if p.Label == "" && p.LabelFn != nil {
		return p.LabelFn()
	}
	return p.Label
}

// PointResult is one evaluated point, delivered at its submission index.
type PointResult[T any] struct {
	Index int
	Label string
	Value T
	Err   error
}

// Point-memo capacity bounds. The full paper sweep touches ~10,000
// residencies per configuration half and a comparison row holds two
// halves, so 1<<16 sweep entries cover every in-repo workload with slack;
// transition times are one per configuration class. Eviction is safe by
// construction — a hit is bit-identical to a recompute — so an undersized
// bound costs recomputation time, never correctness, and the lru counters
// (PointCacheStats) say when that is happening.
const (
	sweepCacheCap = 1 << 16
	transCacheCap = 1 << 10
)

// eng owns this package's process-scoped mutable state behind a single
// struct, so every access goes through the funnels below and the
// odrips-vet globalstate rule can ban loose package-level state: the
// worker-pool default the CLI harnesses set from -workers (0 means
// runtime.GOMAXPROCS(0)), and the bounded in-process point memo caches
// (see the "Point memo cache" section of runner.go). The caches are a
// pure, deterministic memo — a hit is bit-identical to a recompute —
// which is what makes a process-wide instance sound, and they are
// LRU-bounded so fleet-scale key streams stay O(capacity) in memory.
//
//odrips:allow globalstate the process composition root for experiments: the -workers default set once by flag wiring plus the bounded deterministic point memo whose hits are bit-identical to recomputes
var eng = struct {
	workers atomic.Int32
	sweep   *lru.Cache[sweepPointKey, float64]        // average mW per point
	trans   *lru.Cache[platform.Config, sim.Duration] // entry+exit per config
}{
	sweep: lru.New[sweepPointKey, float64](sweepCacheCap),
	trans: lru.New[platform.Config, sim.Duration](transCacheCap),
}

// PointMemoStats snapshots the in-process point-memo caches: counters
// since process start (or the last ResetPointCache) plus current sizes
// against their bounds.
type PointMemoStats struct {
	Sweep, Trans       lru.Stats
	SweepLen, TransLen int
	SweepCap, TransCap int
}

// PointCacheStats reports the point-memo cache counters; odrips-bench
// -memostats and the fleet report surface them.
func PointCacheStats() PointMemoStats {
	return PointMemoStats{
		Sweep:    eng.sweep.Stats(),
		Trans:    eng.trans.Stats(),
		SweepLen: eng.sweep.Len(),
		TransLen: eng.trans.Len(),
		SweepCap: eng.sweep.Cap(),
		TransCap: eng.trans.Cap(),
	}
}

// SetDefaultWorkers sets the package-wide worker-pool size used when a
// sweep or experiment does not specify its own (n <= 0 restores the
// GOMAXPROCS default).
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	eng.workers.Store(int32(n))
}

// resolveWorkers maps a knob value to a concrete pool size.
func resolveWorkers(n int) int {
	if n <= 0 {
		n = int(eng.workers.Load())
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// RunPoints evaluates the points on a pool of `workers` goroutines
// (workers <= 0 uses the package default, normally GOMAXPROCS) and returns
// the results in submission order, independent of scheduling. The first
// point error cancels the pool — workers stop claiming new points — and is
// returned after the in-flight points drain; the lowest-indexed error
// among the evaluated points is the one reported, so single-failure runs
// surface the same error at every worker count.
func RunPoints[T any](points []PointSpec[T], workers int) ([]PointResult[T], error) {
	results := make([]PointResult[T], len(points))
	if len(points) == 0 {
		return results, nil
	}
	workers = resolveWorkers(workers)
	if workers > len(points) {
		workers = len(points)
	}

	if workers == 1 {
		// Sequential fast path: no goroutines, no synchronization.
		for i, p := range points {
			v, err := p.Run()
			lbl := p.Label
			if err != nil {
				lbl = p.label()
			}
			results[i] = PointResult[T]{Index: i, Label: lbl, Value: v, Err: err}
			if err != nil {
				break
			}
		}
		return results, firstError(points, results)
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) || stop.Load() {
					return
				}
				v, err := points[i].Run()
				lbl := points[i].Label
				if err != nil {
					lbl = points[i].label()
				}
				results[i] = PointResult[T]{Index: i, Label: lbl, Value: v, Err: err}
				if err != nil {
					// errgroup-style: poison the pool so idle workers stop
					// claiming points, then let in-flight ones drain.
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return results, firstError(points, results)
}

// firstError scans results in index order and wraps the first failure.
func firstError[T any](points []PointSpec[T], results []PointResult[T]) error {
	for i := range results {
		if results[i].Err != nil {
			if lbl := points[i].label(); lbl != "" {
				return fmt.Errorf("point %d (%s): %w", i, lbl, results[i].Err)
			}
			return fmt.Errorf("point %d: %w", i, results[i].Err)
		}
	}
	return nil
}

// runIndexed is a convenience wrapper for the common case of n homogeneous
// points: it evaluates run(0..n-1) on the pool and returns just the values
// in index order.
func runIndexed[T any](n, workers int, label func(int) string, run func(int) (T, error)) ([]T, error) {
	specs := make([]PointSpec[T], n)
	for i := range specs {
		i := i
		specs[i] = PointSpec[T]{Run: func() (T, error) { return run(i) }}
		if label != nil {
			specs[i].LabelFn = func() string { return label(i) }
		}
	}
	results, err := RunPoints(specs, workers)
	if err != nil {
		return nil, err
	}
	out := make([]T, n)
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}
