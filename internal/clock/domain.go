package clock

import "odrips/internal/sim"

// Domain is a gateable clock domain fed by an oscillator. Gating a domain
// stops clock delivery to its consumers without powering off the source
// crystal — the distinction matters in the DRIPS entry flow, where the
// 24 MHz clock to the processor is first gated and only afterwards is the
// crystal itself turned off (paper §4.1.2).
type Domain struct {
	name  string
	src   *Oscillator
	gated bool

	// OnGate, if non-nil, is invoked when the domain is gated or ungated.
	OnGate func(gated bool)
}

// NewDomain creates an ungated domain fed by src.
func NewDomain(name string, src *Oscillator) *Domain {
	return &Domain{name: name, src: src}
}

// Name returns the domain's label.
func (d *Domain) Name() string { return d.name }

// Source returns the feeding oscillator.
func (d *Domain) Source() *Oscillator { return d.src }

// Gated reports whether the domain is gated.
func (d *Domain) Gated() bool { return d.gated }

// Running reports whether the domain currently delivers edges: source on,
// stable, and domain ungated.
func (d *Domain) Running() bool { return !d.gated && d.src.Stable() }

// Gate stops clock delivery. Idempotent.
func (d *Domain) Gate() { d.setGated(true) }

// Ungate resumes clock delivery. Idempotent.
func (d *Domain) Ungate() { d.setGated(false) }

func (d *Domain) setGated(g bool) {
	if d.gated == g {
		return
	}
	d.gated = g
	if d.OnGate != nil {
		d.OnGate(g)
	}
}

// NextEdge returns the next rising edge delivered by this domain at or
// after t; ok is false when the domain is gated or the source is off.
func (d *Domain) NextEdge(t sim.Time) (k uint64, at sim.Time, ok bool) {
	if d.gated {
		return 0, 0, false
	}
	return d.src.NextEdge(t)
}
