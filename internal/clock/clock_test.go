package clock

import (
	"math"
	"testing"
	"testing/quick"

	"odrips/internal/sim"
)

func newTestOsc(t *testing.T, hz uint64, ppb int64) (*sim.Scheduler, *Oscillator) {
	t.Helper()
	s := sim.NewScheduler()
	o := NewOscillator(s, "osc", hz, ppb, 0)
	o.PowerOn()
	return s, o
}

func TestOscillatorExactEdges24MHz(t *testing.T) {
	_, o := newTestOsc(t, 24_000_000, 0)
	// Period is 125000/3 ps = 41666.66..ps; edge times are floor(k*125000/3).
	cases := []struct {
		k    uint64
		want sim.Time
	}{
		{0, 0},
		{1, 41666},
		{2, 83333},
		{3, 125000},
		{24_000_000, sim.Time(sim.Second)},
		{48_000_000, sim.Time(2 * sim.Second)},
	}
	for _, c := range cases {
		if got := o.EdgeTime(c.k); got != c.want {
			t.Errorf("EdgeTime(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestOscillatorExactEdges32KHz(t *testing.T) {
	_, o := newTestOsc(t, 32_768, 0)
	// Period = 1e12/32768 ps = 30517578.125 ps exactly.
	if got := o.EdgeTime(8); got != sim.Time(8*30517578)+sim.Time(1) {
		t.Errorf("EdgeTime(8) = %d, want %d (8 periods = 244140625 ps exactly)", got, 8*30517578+1)
	}
	if got := o.EdgeTime(32_768); got != sim.Time(sim.Second) {
		t.Errorf("EdgeTime(32768) = %v, want 1s", got)
	}
}

func TestOscillatorPPB(t *testing.T) {
	// +1000 ppb crystal runs fast: one nominal second elapses in slightly
	// fewer picoseconds.
	_, o := newTestOsc(t, 24_000_000, 1000)
	exact := o.EdgeTime(24_000_000)
	want := 1e12 / (1 + 1000e-9)
	if math.Abs(float64(exact)-want) > 1 {
		t.Errorf("edge 24e6 at %d ps, want ~%.0f ps", exact, want)
	}
}

func TestNextEdge(t *testing.T) {
	s, o := newTestOsc(t, 24_000_000, 0)
	k, at, ok := o.NextEdge(s.Now())
	if !ok || k != 0 || at != 0 {
		t.Fatalf("NextEdge(0) = %d,%v,%v; want 0,0,true", k, at, ok)
	}
	// Just after edge 1 (41666 ps) the next edge is edge 2 at 83333.
	k, at, ok = o.NextEdge(sim.Time(41_667))
	if !ok || k != 2 || at != sim.Time(83_333) {
		t.Fatalf("NextEdge(41667) = %d,%v,%v; want 2,83333,true", k, at, ok)
	}
	// Exactly on edge 3 returns edge 3.
	k, at, ok = o.NextEdge(sim.Time(125_000))
	if !ok || k != 3 || at != sim.Time(125_000) {
		t.Fatalf("NextEdge(125000) = %d,%v,%v; want 3,125000,true", k, at, ok)
	}
	o.PowerOff()
	if _, _, ok := o.NextEdge(s.Now()); ok {
		t.Fatal("NextEdge on a powered-off oscillator reported ok")
	}
}

func TestEdgesBetween(t *testing.T) {
	_, o := newTestOsc(t, 32_768, 0)
	// Exactly one second: 32768 edges in (0, 1s].
	if got := o.EdgesBetween(0, sim.Time(sim.Second)); got != 32_768 {
		t.Fatalf("EdgesBetween(0,1s) = %d, want 32768", got)
	}
	// Empty interval.
	if got := o.EdgesBetween(sim.Time(sim.Second), sim.Time(sim.Second)); got != 0 {
		t.Fatalf("EdgesBetween(1s,1s) = %d, want 0", got)
	}
	// Half-open: an edge exactly at t1 is excluded, at t2 included.
	e5 := o.EdgeTime(5)
	if got := o.EdgesBetween(e5, o.EdgeTime(7)); got != 2 {
		t.Fatalf("EdgesBetween(edge5,edge7) = %d, want 2", got)
	}
}

func TestEdgesBetweenReversedPanics(t *testing.T) {
	_, o := newTestOsc(t, 32_768, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("EdgesBetween(t2<t1) did not panic")
		}
	}()
	o.EdgesBetween(sim.Time(sim.Second), 0)
}

func TestStartupLatencyAndPhaseRestart(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(s, "xtal24", 24_000_000, 0, sim.Millisecond)
	o.PowerOn()
	if o.Stable() {
		t.Fatal("oscillator stable immediately despite 1ms startup latency")
	}
	if o.StableAt() != sim.Time(sim.Millisecond) {
		t.Fatalf("StableAt = %v, want 1ms", o.StableAt())
	}
	s.RunFor(2 * sim.Millisecond)
	if !o.Stable() {
		t.Fatal("oscillator not stable after startup latency")
	}
	// Power cycle at t=2ms: new epoch for edges.
	o.PowerOff()
	o.PowerOn()
	if o.StableAt() != sim.Time(3*sim.Millisecond) {
		t.Fatalf("restarted StableAt = %v, want 3ms", o.StableAt())
	}
	if got := o.EdgeTime(0); got != sim.Time(3*sim.Millisecond) {
		t.Fatalf("edge 0 after restart at %v, want 3ms", got)
	}
}

func TestPowerHook(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(s, "x", 32_768, 0, 0)
	var log []bool
	o.OnPower = func(on bool) { log = append(log, on) }
	o.PowerOn()
	o.PowerOn() // no-op
	o.PowerOff()
	o.PowerOff() // no-op
	if len(log) != 2 || log[0] != true || log[1] != false {
		t.Fatalf("power hook log = %v, want [true false]", log)
	}
}

func TestScheduleEdge(t *testing.T) {
	s, o := newTestOsc(t, 32_768, 0)
	var fired sim.Time
	s.RunFor(10 * sim.Nanosecond) // move off edge 0
	o.ScheduleEdge("edge", func() { fired = s.Now() })
	s.Run()
	if fired != o.EdgeTime(1) {
		t.Fatalf("edge callback at %v, want %v", fired, o.EdgeTime(1))
	}
}

func TestScheduleNthEdge(t *testing.T) {
	s, o := newTestOsc(t, 32_768, 0)
	s.RunFor(10 * sim.Nanosecond)
	var fired sim.Time
	o.ScheduleNthEdge(3, "edge+3", func() { fired = s.Now() })
	s.Run()
	if fired != o.EdgeTime(4) {
		t.Fatalf("n-th edge callback at %v, want %v", fired, o.EdgeTime(4))
	}
}

func TestDomainGating(t *testing.T) {
	s, o := newTestOsc(t, 24_000_000, 0)
	d := NewDomain("proc24", o)
	var gateLog []bool
	d.OnGate = func(g bool) { gateLog = append(gateLog, g) }
	if !d.Running() {
		t.Fatal("ungated domain with stable source not running")
	}
	d.Gate()
	d.Gate()
	if d.Running() {
		t.Fatal("gated domain reported running")
	}
	if _, _, ok := d.NextEdge(s.Now()); ok {
		t.Fatal("gated domain delivered an edge")
	}
	d.Ungate()
	if k, at, ok := d.NextEdge(s.Now()); !ok || k != 0 || at != 0 {
		t.Fatalf("ungated NextEdge = %d,%v,%v", k, at, ok)
	}
	if len(gateLog) != 2 {
		t.Fatalf("gate hook fired %d times, want 2", len(gateLog))
	}
	o.PowerOff()
	if d.Running() {
		t.Fatal("domain running with source off")
	}
}

func TestZeroFrequencyPanics(t *testing.T) {
	s := sim.NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-frequency oscillator did not panic")
		}
	}()
	NewOscillator(s, "bad", 0, 0, 0)
}

// Property: edge times are strictly increasing and consecutive deltas are
// within 1 ps of the true period, for random frequencies and ppb errors.
func TestEdgeMonotonicProperty(t *testing.T) {
	f := func(hzSeed uint32, ppbSeed int16, kSeed uint16) bool {
		hz := uint64(hzSeed%100_000_000) + 1
		ppb := int64(ppbSeed) * 100 // ±3.2768e6 ppb max
		if ppb <= -1e9 {
			ppb = -999_999_999
		}
		s := sim.NewScheduler()
		o := NewOscillator(s, "p", hz, ppb, 0)
		o.PowerOn()
		k := uint64(kSeed)
		t0, t1 := o.EdgeTime(k), o.EdgeTime(k+1)
		if t1 <= t0 && o.PeriodPs() >= 1 {
			return false
		}
		return math.Abs(float64(t1.Sub(t0))-o.PeriodPs()) <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextEdge(EdgeTime(k)) == k for random k (idempotent on edges).
func TestNextEdgeOnEdgeProperty(t *testing.T) {
	f := func(kSeed uint16) bool {
		s := sim.NewScheduler()
		o := NewOscillator(s, "p", 32_768, 37, 0)
		o.PowerOn()
		k := uint64(kSeed)
		gotK, at, ok := o.NextEdge(o.EdgeTime(k))
		return ok && gotK == k && at == o.EdgeTime(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: EdgesBetween is additive: edges(a,c) = edges(a,b)+edges(b,c).
func TestEdgesBetweenAdditiveProperty(t *testing.T) {
	f := func(a, b, c uint32) bool {
		ts := []sim.Time{sim.Time(a), sim.Time(b), sim.Time(c)}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		if ts[1] > ts[2] {
			ts[1], ts[2] = ts[2], ts[1]
		}
		if ts[0] > ts[1] {
			ts[0], ts[1] = ts[1], ts[0]
		}
		s := sim.NewScheduler()
		o := NewOscillator(s, "p", 24_000_000, -250, 0)
		o.PowerOn()
		return o.EdgesBetween(ts[0], ts[2]) ==
			o.EdgesBetween(ts[0], ts[1])+o.EdgesBetween(ts[1], ts[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEdgeTime(b *testing.B) {
	s := sim.NewScheduler()
	o := NewOscillator(s, "bench", 24_000_000, 42, 0)
	o.PowerOn()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.EdgeTime(uint64(i))
	}
}

func TestRetunePreservesEdgeContinuity(t *testing.T) {
	s, o := newTestOsc(t, 24_000_000, 0)
	s.RunFor(sim.Millisecond)
	// Count edges in the first millisecond: exactly 24000 (plus edge 0).
	before := o.EdgesBetween(0, s.Now())
	o.Retune(1_000_000) // +1000 ppm: visibly faster
	// The re-anchored edge 0 is at or before now, never in the future.
	if o.StableAt().After(s.Now()) {
		t.Fatalf("retune anchored in the future: %v > %v", o.StableAt(), s.Now())
	}
	s.RunFor(sim.Millisecond)
	after := o.EdgesBetween(o.StableAt(), s.Now())
	// ~24024 edges in the second millisecond.
	if after < 24_010 || after > 24_040 {
		t.Fatalf("retuned edge count = %d, want ~24024", after)
	}
	if before < 24_000-1 || before > 24_000+1 {
		t.Fatalf("pre-retune edge count = %d", before)
	}
	if o.PPB() != 1_000_000 {
		t.Fatalf("PPB = %d", o.PPB())
	}
}

func TestRetuneWhileOff(t *testing.T) {
	s := sim.NewScheduler()
	o := NewOscillator(s, "x", 32_768, 0, 0)
	o.Retune(500) // legal while off; takes effect on power-on
	o.PowerOn()
	if o.PPB() != 500 {
		t.Fatal("retune while off lost")
	}
}

func TestRetuneInvalidPanics(t *testing.T) {
	s, o := newTestOsc(t, 32_768, 0)
	_ = s
	defer func() {
		if recover() == nil {
			t.Fatal("invalid retune did not panic")
		}
	}()
	o.Retune(-2_000_000_000)
}
