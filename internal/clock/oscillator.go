// Package clock models the platform clock sources: board crystal
// oscillators (the 24 MHz fast crystal and the 32.768 kHz real-time-clock
// crystal of the paper's Fig. 1(a)) and gateable clock domains derived from
// them.
//
// Edge arithmetic is exact. An oscillator's true frequency is
// nominal*(1+ppb/1e9) Hz, so the k-th rising edge after stabilization falls
// at phase + floor(k * 1e21 / (nominal*(1e9+ppb))) picoseconds. The division
// is done in big.Int so that multi-hour simulations (used by the 1 ppb
// timer-drift property tests) accumulate no floating-point error.
package clock

import (
	"fmt"
	"math/big"

	"odrips/internal/sim"
)

// psPerSecondTimesBillion is 1e12 ps/s * 1e9 (the ppb scale), i.e. the exact
// numerator of the period rational.
var psPerSecondTimesBillion = new(big.Int).Mul(big.NewInt(1e12), big.NewInt(1e9))

// Oscillator is a crystal oscillator. The zero value is not usable; use
// NewOscillator. Oscillators start powered off.
type Oscillator struct {
	name      string
	nominalHz uint64
	ppb       int64        // true frequency error in parts per billion
	startup   sim.Duration // stabilization latency after power-on
	sched     *sim.Scheduler

	on       bool
	stableAt sim.Time // epoch of edge 0 for the current power-on period
	denom    *big.Int // nominalHz * (1e9 + ppb)

	// OnPower, if non-nil, is invoked whenever the oscillator is switched
	// on or off. The platform uses it to charge oscillator power.
	OnPower func(on bool)
}

// NewOscillator creates an oscillator. ppb is the crystal's frequency error
// in parts per billion (positive runs fast). startup is the stabilization
// latency from power-on until the first usable edge.
func NewOscillator(sched *sim.Scheduler, name string, nominalHz uint64, ppb int64, startup sim.Duration) *Oscillator {
	if nominalHz == 0 {
		panic("clock: oscillator with zero nominal frequency")
	}
	if ppb <= -1e9 {
		panic(fmt.Sprintf("clock: oscillator %s ppb %d implies non-positive frequency", name, ppb))
	}
	o := &Oscillator{
		name:      name,
		nominalHz: nominalHz,
		ppb:       ppb,
		startup:   startup,
		sched:     sched,
	}
	o.denom = new(big.Int).Mul(
		new(big.Int).SetUint64(nominalHz),
		big.NewInt(1_000_000_000+ppb),
	)
	return o
}

// Name returns the oscillator's label.
func (o *Oscillator) Name() string { return o.name }

// NominalHz returns the nominal frequency in Hz.
func (o *Oscillator) NominalHz() uint64 { return o.nominalHz }

// PPB returns the crystal frequency error in parts per billion.
func (o *Oscillator) PPB() int64 { return o.ppb }

// ActualHz returns the true frequency in Hz.
func (o *Oscillator) ActualHz() float64 {
	return float64(o.nominalHz) * (1 + float64(o.ppb)/1e9)
}

// PeriodPs returns the true period in picoseconds (for display only; edge
// arithmetic never uses this float).
func (o *Oscillator) PeriodPs() float64 { return 1e12 / o.ActualHz() }

// On reports whether the oscillator is powered.
func (o *Oscillator) On() bool { return o.on }

// Stable reports whether the oscillator is powered and past its
// stabilization latency at the current instant.
func (o *Oscillator) Stable() bool {
	return o.on && !o.sched.Now().Before(o.stableAt)
}

// StableAt returns the instant the current power-on period became (or will
// become) stable. Meaningless when off.
func (o *Oscillator) StableAt() sim.Time { return o.stableAt }

// PowerOn enables the oscillator. Edges restart: the crystal loses phase
// across a power cycle, so edge 0 of the new period is at now+startup.
// Powering an already-on oscillator is a no-op.
func (o *Oscillator) PowerOn() {
	if o.on {
		return
	}
	o.on = true
	o.stableAt = o.sched.Now().Add(o.startup)
	if o.OnPower != nil {
		o.OnPower(true)
	}
}

// PowerOff disables the oscillator. Idempotent.
func (o *Oscillator) PowerOff() {
	if !o.on {
		return
	}
	o.on = false
	if o.OnPower != nil {
		o.OnPower(false)
	}
}

// Retune changes the crystal's frequency error from the current instant
// onward (temperature drift, aging). Edge continuity is preserved: the
// most recent rising edge becomes edge 0 of the retuned timebase, so the
// next edge falls one new-period later. Consumers that count edges
// lazily (timer counters) must materialize their state immediately before
// a retune; edges spanning the retune boundary are otherwise misattributed
// to the new frequency.
func (o *Oscillator) Retune(ppb int64) {
	if ppb <= -1e9 {
		panic(fmt.Sprintf("clock: oscillator %s retune ppb %d implies non-positive frequency", o.name, ppb))
	}
	if o.on && o.Stable() {
		// Re-anchor at the most recent edge at or before now.
		now := o.sched.Now()
		k, at, ok := o.NextEdge(now)
		if ok {
			if at.After(now) && k > 0 {
				at = o.EdgeTime(k - 1)
			}
			o.stableAt = at
		}
	}
	o.ppb = ppb
	o.denom = new(big.Int).Mul(
		new(big.Int).SetUint64(o.nominalHz),
		big.NewInt(1_000_000_000+ppb),
	)
}

// EdgeTime returns the instant of rising edge k (k=0 at stabilization) of
// the current power-on period.
func (o *Oscillator) EdgeTime(k uint64) sim.Time {
	// offset = floor(k * 1e21 / denom)
	n := new(big.Int).SetUint64(k)
	n.Mul(n, psPerSecondTimesBillion)
	n.Quo(n, o.denom)
	if !n.IsInt64() {
		panic(fmt.Sprintf("clock: edge %d of %s overflows sim time", k, o.name))
	}
	return o.stableAt.Add(sim.Duration(n.Int64()))
}

// NextEdge returns the index and instant of the first rising edge at or
// after t. ok is false if the oscillator is off, or if t precedes
// stabilization and the oscillator will never produce an edge before it is
// reconfigured — in that case the first stable edge (index 0) is returned
// with ok=true when t <= stableAt.
func (o *Oscillator) NextEdge(t sim.Time) (k uint64, at sim.Time, ok bool) {
	if !o.on {
		return 0, 0, false
	}
	if !t.After(o.stableAt) {
		return 0, o.stableAt, true
	}
	// k = ceil((t-stableAt) * denom / 1e21)
	d := new(big.Int).SetInt64(int64(t.Sub(o.stableAt)))
	d.Mul(d, o.denom)
	rem := new(big.Int)
	d.QuoRem(d, psPerSecondTimesBillion, rem)
	if rem.Sign() != 0 {
		d.Add(d, big.NewInt(1))
	}
	if !d.IsUint64() {
		return 0, 0, false
	}
	k = d.Uint64()
	return k, o.EdgeTime(k), true
}

// EdgesBetween returns the number of rising edges in the half-open interval
// (t1, t2] for the current power-on period. Both instants must not precede
// stabilization.
func (o *Oscillator) EdgesBetween(t1, t2 sim.Time) uint64 {
	if t2.Before(t1) {
		panic("clock: EdgesBetween with t2 < t1")
	}
	return o.edgesUpTo(t2) - o.edgesUpTo(t1)
}

// edgesUpTo counts edges with EdgeTime <= t (edge 0 included when stable).
func (o *Oscillator) edgesUpTo(t sim.Time) uint64 {
	if t.Before(o.stableAt) {
		return 0
	}
	// count = floor((t-stableAt) * denom / 1e21) + 1  (edge 0 at stableAt)
	d := new(big.Int).SetInt64(int64(t.Sub(o.stableAt)))
	d.Mul(d, o.denom)
	d.Quo(d, psPerSecondTimesBillion)
	return d.Uint64() + 1
}

// PhaseFingerprint returns the oscillator's exact phase residue at t for
// the platform fast-forward fingerprint (DESIGN.md §12): the numerator of
// the fractional edge position, ((t-stableAt) * denom) mod 1e21, split
// into two uint64 words. Two on, stable oscillators with equal ppb and
// equal residues produce identical edge grids relative to t, so every
// future edge offset is identical — which is what makes an
// absolute-time-free fingerprint sound. neg reports t before stableAt
// (the residue is then of stableAt-t).
func (o *Oscillator) PhaseFingerprint(t sim.Time) (hi, lo uint64, neg bool) {
	d := t.Sub(o.stableAt)
	if d < 0 {
		d, neg = -d, true
	}
	n := new(big.Int).SetInt64(int64(d))
	n.Mul(n, o.denom)
	n.Mod(n, psPerSecondTimesBillion)
	lo = n.Uint64()
	hi = n.Rsh(n, 64).Uint64()
	return hi, lo, neg
}

// ReplayRebase re-anchors the edge grid at stableAt, for whole-cycle
// replays where the power cycling that would have re-derived the anchor
// was skipped. The caller guarantees the rebased grid is the one the
// skipped cycles would have produced.
func (o *Oscillator) ReplayRebase(stableAt sim.Time) { o.stableAt = stableAt }

// ScheduleEdge schedules fn at the first rising edge at or after the
// current instant and returns the event, or an invalid (zero) event if the
// oscillator is off. This is how firmware flows "wait for the rising edge"
// of a clock (paper Fig. 3(b)).
func (o *Oscillator) ScheduleEdge(name string, fn func()) sim.Event {
	_, at, ok := o.NextEdge(o.sched.Now())
	if !ok {
		return sim.Event{}
	}
	return o.sched.At(at, name, fn)
}

// ScheduleNthEdge schedules fn n edges after the first edge at or after now
// (n=0 means the next edge). Returns an invalid (zero) event if the
// oscillator is off.
func (o *Oscillator) ScheduleNthEdge(n uint64, name string, fn func()) sim.Event {
	k, _, ok := o.NextEdge(o.sched.Now())
	if !ok {
		return sim.Event{}
	}
	return o.sched.At(o.EdgeTime(k+n), name, fn)
}
