package battery

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandbyDays(t *testing.T) {
	p := Tablet()
	// At the paper's baseline 74.7 mW a 36 Wh tablet lasts ~17-19 days
	// once self-discharge is counted.
	days, err := p.StandbyDays(74.7)
	if err != nil {
		t.Fatal(err)
	}
	if days < 15 || days > 20 {
		t.Fatalf("baseline standby = %.1f days", days)
	}
	// ODRIPS at 58.2 mW buys several more days.
	odays, err := p.StandbyDays(58.2)
	if err != nil {
		t.Fatal(err)
	}
	if odays <= days+3 {
		t.Fatalf("ODRIPS standby %.1f days not well above baseline %.1f", odays, days)
	}
}

func TestSelfDischargeCeiling(t *testing.T) {
	p := Tablet()
	// Even a perfect zero-power platform is bounded by self-discharge:
	// 2.5%/month of a 36 Wh pack is a 1.25 mW equivalent drain, capping
	// standby around 38 months of usable capacity... i.e. finite.
	days, err := p.StandbyDays(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(days, 1) || days > 3000 {
		t.Fatalf("self-discharge did not bound standby: %.0f days", days)
	}
	if days < 300 {
		t.Fatalf("zero-power standby implausibly short: %.0f days", days)
	}
}

func TestDrainPct(t *testing.T) {
	p := Tablet()
	// An 8-hour night at 74.7 mW drains ~1.8% of the usable pack.
	pct, err := p.DrainPct(74.7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pct < 1.5 || pct > 2.2 {
		t.Fatalf("overnight drain = %.2f%%", pct)
	}
}

func TestValidation(t *testing.T) {
	bad := []Pack{
		{CapacityMWh: 0, UsableFraction: 0.9},
		{CapacityMWh: 1000, UsableFraction: 0},
		{CapacityMWh: 1000, UsableFraction: 1.5},
		{CapacityMWh: 1000, UsableFraction: 0.9, SelfDischargePctPerMonth: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad pack %d accepted", i)
		}
	}
	p := Phone()
	if _, err := p.StandbyHours(-1); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := p.DrainPct(1, -1); err == nil {
		t.Error("negative hours accepted")
	}
}

func TestPackPresets(t *testing.T) {
	for _, p := range []Pack{Tablet(), Phone(), Laptop()} {
		if err := p.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
	if Laptop().UsableMWh() <= Tablet().UsableMWh() {
		t.Error("laptop pack not larger than tablet pack")
	}
}

// Property: lower average power never shortens standby, and drain is
// linear in hours.
func TestMonotonicityProperty(t *testing.T) {
	f := func(p1, p2 uint16, hSeed uint8) bool {
		pack := Tablet()
		lo, hi := float64(p1%500), float64(p2%500)
		if lo > hi {
			lo, hi = hi, lo
		}
		dLo, err1 := pack.StandbyDays(lo)
		dHi, err2 := pack.StandbyDays(hi)
		if err1 != nil || err2 != nil {
			return false
		}
		if dLo < dHi-1e-9 {
			return false
		}
		h := float64(hSeed%100) + 1
		a, err3 := pack.DrainPct(hi, h)
		b, err4 := pack.DrainPct(hi, 2*h)
		if err3 != nil || err4 != nil {
			return false
		}
		return math.Abs(b-2*a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
