// Package battery converts the platform's average-power measurements into
// the quantity end users feel: standby battery life. The paper motivates
// ODRIPS with battery life in connected standby (§1); this model adds
// realistic pack behavior — usable-capacity derating and chemical
// self-discharge — so "22% lower average power" can be stated as days.
package battery

import "fmt"

// Pack is a lithium battery pack.
type Pack struct {
	// CapacityMWh is the nameplate capacity.
	CapacityMWh float64
	// UsableFraction derates the nameplate for the OS cutoff and aging
	// headroom (typically 0.92–0.97 for a healthy pack).
	UsableFraction float64
	// SelfDischargePctPerMonth is the chemical self-discharge (2–3%/month
	// for Li-ion at room temperature); it sets the ceiling on standby
	// life no matter how good the platform gets.
	SelfDischargePctPerMonth float64
}

// Validate checks pack parameters.
func (p Pack) Validate() error {
	if p.CapacityMWh <= 0 {
		return fmt.Errorf("battery: non-positive capacity")
	}
	if p.UsableFraction <= 0 || p.UsableFraction > 1 {
		return fmt.Errorf("battery: usable fraction %v out of (0,1]", p.UsableFraction)
	}
	if p.SelfDischargePctPerMonth < 0 || p.SelfDischargePctPerMonth >= 100 {
		return fmt.Errorf("battery: self-discharge %v%%/month out of range", p.SelfDischargePctPerMonth)
	}
	return nil
}

// Tablet returns a Surface-class 36 Wh pack.
func Tablet() Pack {
	return Pack{CapacityMWh: 36_000, UsableFraction: 0.95, SelfDischargePctPerMonth: 2.5}
}

// Phone returns a 15 Wh handset pack.
func Phone() Pack {
	return Pack{CapacityMWh: 15_000, UsableFraction: 0.95, SelfDischargePctPerMonth: 2.5}
}

// Laptop returns a 56 Wh notebook pack.
func Laptop() Pack {
	return Pack{CapacityMWh: 56_000, UsableFraction: 0.95, SelfDischargePctPerMonth: 2.5}
}

// UsableMWh returns the derated capacity.
func (p Pack) UsableMWh() float64 { return p.CapacityMWh * p.UsableFraction }

// selfDischargeMW converts the monthly percentage into an equivalent
// constant drain in milliwatts.
func (p Pack) selfDischargeMW() float64 {
	const hoursPerMonth = 30 * 24
	return p.CapacityMWh * p.SelfDischargePctPerMonth / 100 / hoursPerMonth
}

// StandbyHours returns how long the pack sustains the given platform
// average power, self-discharge included.
func (p Pack) StandbyHours(avgMW float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if avgMW < 0 {
		return 0, fmt.Errorf("battery: negative average power")
	}
	total := avgMW + p.selfDischargeMW()
	if total <= 0 {
		return 0, fmt.Errorf("battery: zero total drain")
	}
	return p.UsableMWh() / total, nil
}

// StandbyDays is StandbyHours in days.
func (p Pack) StandbyDays(avgMW float64) (float64, error) {
	h, err := p.StandbyHours(avgMW)
	return h / 24, err
}

// DrainPct returns the percentage of usable capacity consumed by running
// at avgMW for the given hours (self-discharge included).
func (p Pack) DrainPct(avgMW, hours float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if avgMW < 0 || hours < 0 {
		return 0, fmt.Errorf("battery: negative inputs")
	}
	used := (avgMW + p.selfDischargeMW()) * hours
	return 100 * used / p.UsableMWh(), nil
}
