//go:build !race

// Alloc-regression guard for the streaming serializer (excluded under the
// race detector, whose instrumentation allocates).

package ctxstore

import (
	"bytes"
	"testing"
)

// TestAppendSerializedAllocFree locks in zero allocations when serializing
// into a pre-sized buffer, and that the streamed bytes match Serialize.
func TestAppendSerializedAllocFree(t *testing.T) {
	c := GenerateSkylake(42)
	want := c.Serialize()
	if len(want) != c.SerializedSize() {
		t.Fatalf("SerializedSize=%d, Serialize produced %d bytes", c.SerializedSize(), len(want))
	}
	buf := make([]byte, 0, c.SerializedSize())
	if n := testing.AllocsPerRun(20, func() {
		buf = c.AppendSerialized(buf[:0])
	}); n != 0 {
		t.Fatalf("AppendSerialized into sized buffer allocates %.1f/op, want 0", n)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("AppendSerialized bytes differ from Serialize")
	}
}
