package ctxstore

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSkylakeContextScale(t *testing.T) {
	c := GenerateSkylake(1)
	// The paper puts the context at ~200 KB ("at most 200 KB", §9).
	if c.Size() != 196<<10 {
		t.Fatalf("context size = %d, want %d", c.Size(), 196<<10)
	}
	if len(c.Sections()) != 9 {
		t.Fatalf("sections = %d", len(c.Sections()))
	}
	// SA + compute split covers every section exactly once.
	names := map[string]bool{}
	for _, n := range append(SASectionNames(), ComputeSectionNames()...) {
		if names[n] {
			t.Fatalf("section %s in both splits", n)
		}
		names[n] = true
	}
	for _, s := range c.Sections() {
		if !names[s.Name] {
			t.Fatalf("section %s missing from splits", s.Name)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := GenerateSkylake(7), GenerateSkylake(7)
	if !a.Equal(b) {
		t.Fatal("same seed produced different contexts")
	}
	c := GenerateSkylake(8)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical contexts")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("hash collision across seeds")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c := GenerateSkylake(3)
	img := c.Serialize()
	back, err := Deserialize(img)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Fatal("round trip mismatch")
	}
}

func TestDeserializeRejectsCorruption(t *testing.T) {
	img := GenerateSkylake(3).Serialize()
	for _, off := range []int{0, 10, len(img) / 2, len(img) - 1} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x40
		if _, err := Deserialize(bad); err == nil {
			t.Fatalf("corruption at %d accepted", off)
		}
	}
	if _, err := Deserialize(img[:20]); err == nil {
		t.Fatal("truncated image accepted")
	}
	if _, err := Deserialize(nil); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestSectionLookup(t *testing.T) {
	c := GenerateSkylake(1)
	if c.Section("sa/csr") == nil {
		t.Fatal("sa/csr missing")
	}
	if c.Section("nope") != nil {
		t.Fatal("bogus section found")
	}
}

func TestSubsetAndMerge(t *testing.T) {
	c := GenerateSkylake(5)
	sa := c.Subset(SASectionNames())
	compute := c.Subset(ComputeSectionNames())
	if sa.Size()+compute.Size() != c.Size() {
		t.Fatalf("split sizes %d+%d != %d", sa.Size(), compute.Size(), c.Size())
	}
	merged := Merge(sa, compute)
	if !merged.Equal(c) {
		t.Fatal("merge(split) != original")
	}
	if !Merge(nil, c).Equal(c) {
		t.Fatal("merge with nil broke")
	}
}

func TestBootImagePackUnpack(t *testing.T) {
	b := BootImage{
		MEEState:  bytes.Repeat([]byte{1}, 96),
		MCConfig:  bytes.Repeat([]byte{2}, 400),
		PMUVector: bytes.Repeat([]byte{3}, 300),
	}
	packed, err := b.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) > BootImageSize {
		t.Fatalf("boot image %d bytes exceeds Boot SRAM", len(packed))
	}
	back, err := UnpackBootImage(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.MEEState, b.MEEState) ||
		!bytes.Equal(back.MCConfig, b.MCConfig) ||
		!bytes.Equal(back.PMUVector, b.PMUVector) {
		t.Fatal("boot image round trip mismatch")
	}
}

func TestBootImageOverflowRejected(t *testing.T) {
	b := BootImage{MEEState: make([]byte, BootImageSize)}
	if _, err := b.Pack(); err == nil {
		t.Fatal("oversized boot image packed")
	}
}

func TestUnpackBootImageRejectsGarbage(t *testing.T) {
	if _, err := UnpackBootImage([]byte{1, 2}); err == nil {
		t.Fatal("short boot image accepted")
	}
	if _, err := UnpackBootImage([]byte{255, 255, 255, 255, 0}); err == nil {
		t.Fatal("lying length accepted")
	}
}

// Property: serialize/deserialize round-trips arbitrary section contents.
func TestSerializeProperty(t *testing.T) {
	f := func(sizes []uint8, seed int64) bool {
		m := make(map[string]int)
		for i, s := range sizes {
			if i >= 6 {
				break
			}
			m[string(rune('a'+i))] = int(s)
		}
		if len(m) == 0 {
			m["x"] = 1
		}
		c := Generate(seed, m)
		back, err := Deserialize(c.Serialize())
		return err == nil && c.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSerialize200KB(b *testing.B) {
	c := GenerateSkylake(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Serialize()
	}
}
