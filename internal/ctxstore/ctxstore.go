// Package ctxstore models the processor context that DRIPS must preserve:
// configuration/status registers, firmware persistent data and patches, and
// fuse shadows (§1, §6) — around 200 KB in total — plus the ~1 KB boot
// image (PMU, memory-controller, and MEE state) that must stay on-chip in
// the Boot SRAM so the exit flow can reach DRAM at all (§6.2).
package ctxstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// Section is one logically distinct piece of processor context.
type Section struct {
	Name string
	Data []byte
}

// Context is the full save/restore image.
type Context struct {
	sections []Section
}

// SkylakeSections returns the paper-scale section inventory: the sizes sum
// to ~200 KB, split between the system-agent domain (saved to the SA S/R
// SRAM in baseline DRIPS) and the compute domain (cores/GFX S/R SRAMs).
func SkylakeSections() map[string]int {
	return map[string]int{
		"sa/csr":          24 << 10, // system-agent config/status registers
		"sa/mc-training":  20 << 10, // memory-controller DDR training data
		"sa/io-config":    12 << 10,
		"sa/fuses":        8 << 10,  // fuse shadow copies
		"pmu/firmware":    28 << 10, // PMU firmware persistent data
		"pmu/patches":     24 << 10, // firmware patch storage
		"cores/archstate": 48 << 10, // per-core architectural state
		"cores/microcode": 24 << 10, // microcode patch RAM
		"gfx/state":       8 << 10,
	}
}

// SASectionNames returns the names held in the SA save/restore SRAM.
func SASectionNames() []string {
	return []string{"sa/csr", "sa/mc-training", "sa/io-config", "sa/fuses", "pmu/firmware", "pmu/patches"}
}

// ComputeSectionNames returns the names held in the cores/GFX SRAMs.
func ComputeSectionNames() []string {
	return []string{"cores/archstate", "cores/microcode", "gfx/state"}
}

// Generate builds a deterministic pseudo-random context from a seed, with
// the given section sizes. Deterministic generation lets tests compare a
// restored context byte-for-byte.
func Generate(seed int64, sizes map[string]int) *Context {
	names := make([]string, 0, len(sizes))
	for n := range sizes {
		names = append(names, n)
	}
	sort.Strings(names)
	rng := rand.New(rand.NewSource(seed))
	c := &Context{}
	for _, n := range names {
		data := make([]byte, sizes[n])
		rng.Read(data)
		c.sections = append(c.sections, Section{Name: n, Data: data})
	}
	return c
}

// GenerateSkylake builds the standard ~200 KB context.
func GenerateSkylake(seed int64) *Context {
	return Generate(seed, SkylakeSections())
}

// Sections returns the sections in canonical (sorted) order.
func (c *Context) Sections() []Section {
	return append([]Section(nil), c.sections...)
}

// Section returns one section's data, or nil.
func (c *Context) Section(name string) []byte {
	for _, s := range c.sections {
		if s.Name == name {
			return s.Data
		}
	}
	return nil
}

// Size returns the total payload size in bytes.
func (c *Context) Size() int {
	var n int
	for _, s := range c.sections {
		n += len(s.Data)
	}
	return n
}

// Hash returns a SHA-256 over the canonical serialization.
func (c *Context) Hash() [32]byte { return sha256.Sum256(c.Serialize()) }

// Equal reports whether two contexts are byte-identical.
func (c *Context) Equal(o *Context) bool {
	return o != nil && bytes.Equal(c.Serialize(), o.Serialize())
}

// serialization: u32 section count, then per section u32 name len, name,
// u32 data len, data; finally a SHA-256 trailer over everything before it.

// SerializedSize returns the exact length of the canonical serialization,
// letting callers size a reusable buffer once instead of growing one per
// save.
func (c *Context) SerializedSize() int {
	n := 4 + sha256.Size
	for _, s := range c.sections {
		n += 4 + len(s.Name) + 4 + len(s.Data)
	}
	return n
}

// AppendSerialized appends the canonical serialization to dst and returns
// the extended slice. With dst pre-sized to SerializedSize capacity it
// performs no allocations, which is what keeps repeated context saves off
// the garbage collector.
func (c *Context) AppendSerialized(dst []byte) []byte {
	start := len(dst)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(c.sections)))
	dst = append(dst, tmp[:]...)
	for _, s := range c.sections {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(s.Name)))
		dst = append(dst, tmp[:]...)
		dst = append(dst, s.Name...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(s.Data)))
		dst = append(dst, tmp[:]...)
		dst = append(dst, s.Data...)
	}
	sum := sha256.Sum256(dst[start:])
	return append(dst, sum[:]...)
}

// Serialize flattens the context for transport to SRAM or protected DRAM.
func (c *Context) Serialize() []byte {
	return c.AppendSerialized(make([]byte, 0, c.SerializedSize()))
}

// Deserialize parses a serialized context, verifying the trailer checksum.
func Deserialize(data []byte) (*Context, error) {
	if len(data) < 4+sha256.Size {
		return nil, fmt.Errorf("ctxstore: image too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("ctxstore: image checksum mismatch")
	}
	rd := bytes.NewReader(body)
	var count uint32
	if err := binary.Read(rd, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("ctxstore: truncated header: %w", err)
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("ctxstore: implausible section count %d", count)
	}
	c := &Context{}
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(rd, binary.LittleEndian, &nameLen); err != nil {
			return nil, fmt.Errorf("ctxstore: truncated section %d: %w", i, err)
		}
		if nameLen > 1<<10 {
			return nil, fmt.Errorf("ctxstore: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(rd, name); err != nil {
			return nil, fmt.Errorf("ctxstore: truncated name in section %d: %w", i, err)
		}
		var dataLen uint32
		if err := binary.Read(rd, binary.LittleEndian, &dataLen); err != nil {
			return nil, fmt.Errorf("ctxstore: truncated length in section %d: %w", i, err)
		}
		if int(dataLen) > rd.Len() {
			return nil, fmt.Errorf("ctxstore: section %d claims %d bytes, %d remain", i, dataLen, rd.Len())
		}
		payload := make([]byte, dataLen)
		if _, err := io.ReadFull(rd, payload); err != nil {
			return nil, fmt.Errorf("ctxstore: truncated payload in section %d: %w", i, err)
		}
		c.sections = append(c.sections, Section{Name: string(name), Data: payload})
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("ctxstore: %d trailing bytes", rd.Len())
	}
	return c, nil
}

// Subset returns a new context holding only the named sections (used to
// split the image between the SA FSM and the LLC FSM paths).
func (c *Context) Subset(names []string) *Context {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := &Context{}
	for _, s := range c.sections {
		if want[s.Name] {
			out.sections = append(out.sections, s)
		}
	}
	return out
}

// Merge combines contexts; section order is re-canonicalized by name.
func Merge(parts ...*Context) *Context {
	out := &Context{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.sections = append(out.sections, p.sections...)
	}
	sort.Slice(out.sections, func(i, j int) bool { return out.sections[i].Name < out.sections[j].Name })
	return out
}

// BootImageSize is the on-chip Boot SRAM budget (§6.2): ~1 KB, about 0.5%
// of the full context.
const BootImageSize = 1 << 10

// BootImage is the minimal state that must survive on-chip: enough to
// restore the PMU, memory controller, and MEE before DRAM is reachable.
type BootImage struct {
	MEEState  []byte // sealed MEE state (key, root counter, layout)
	MCConfig  []byte // minimal memory-controller bring-up values
	PMUVector []byte // PMU boot vector/state
}

// Pack serializes the boot image, failing if it exceeds the Boot SRAM.
func (b BootImage) Pack() ([]byte, error) {
	var buf bytes.Buffer
	for _, part := range [][]byte{b.MEEState, b.MCConfig, b.PMUVector} {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(part)))
		buf.Write(tmp[:])
		buf.Write(part)
	}
	if buf.Len() > BootImageSize {
		return nil, fmt.Errorf("ctxstore: boot image %d bytes exceeds Boot SRAM (%d)", buf.Len(), BootImageSize)
	}
	return buf.Bytes(), nil
}

// UnpackBootImage parses a packed boot image.
func UnpackBootImage(data []byte) (BootImage, error) {
	var out BootImage
	parts := []*[]byte{&out.MEEState, &out.MCConfig, &out.PMUVector}
	rd := bytes.NewReader(data)
	for i, dst := range parts {
		var n uint32
		if err := binary.Read(rd, binary.LittleEndian, &n); err != nil {
			return BootImage{}, fmt.Errorf("ctxstore: truncated boot image part %d: %w", i, err)
		}
		if int(n) > rd.Len() {
			return BootImage{}, fmt.Errorf("ctxstore: boot image part %d claims %d bytes, %d remain", i, n, rd.Len())
		}
		*dst = make([]byte, n)
		if _, err := io.ReadFull(rd, *dst); err != nil {
			return BootImage{}, err
		}
	}
	return out, nil
}
