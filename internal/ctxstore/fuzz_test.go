package ctxstore

import (
	"bytes"
	"testing"
)

// FuzzDeserialize hardens the context parser: arbitrary bytes — including
// mutations of valid images, which is exactly what a corrupted S/R SRAM or
// DRAM region would hand the exit flow — must produce an error or a
// faithful context, never a panic.
func FuzzDeserialize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(GenerateSkylake(1).Serialize()[:64])
	small := Generate(2, map[string]int{"a": 10, "b": 0}).Serialize()
	f.Add(small)
	// A few targeted mutations as corpus seeds.
	for _, off := range []int{0, 4, 9, len(small) - 1} {
		bad := append([]byte(nil), small...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Deserialize(data)
		if err != nil {
			return
		}
		// Anything accepted must re-serialize to the same bytes.
		if !bytes.Equal(c.Serialize(), data) {
			t.Fatalf("accepted image does not round-trip")
		}
	})
}

// FuzzUnpackBootImage hardens the Boot SRAM image parser the exit flow
// trusts before DRAM is reachable.
func FuzzUnpackBootImage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255})
	good, err := (BootImage{MEEState: []byte{1, 2}, MCConfig: []byte{3}, PMUVector: []byte{4}}).Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := UnpackBootImage(data)
		if err != nil {
			return
		}
		repacked, err := img.Pack()
		if err != nil {
			t.Fatalf("accepted boot image fails to repack: %v", err)
		}
		// Boot images carry no padding, so accept implies round-trip of
		// the consumed prefix.
		if len(repacked) > len(data) {
			t.Fatalf("repack grew: %d > %d", len(repacked), len(data))
		}
	})
}
