// Package analysis implements odrips-vet, the repository's determinism and
// units lint suite (run via `make lint` or `go run ./cmd/odrips-vet ./...`).
//
// The simulator's headline guarantees — bit-exact fixed-point timekeeping
// (the m=10/f=21 Step of §4.1.3) and byte-identical runs at any sweep worker
// count — are contracts that ordinary code review cannot police forever.
// This package turns them into build failures. It is deliberately
// dependency-free: packages are loaded with go/parser + go/types through a
// small module-aware loader (load.go), not golang.org/x/tools, so the module
// keeps a zero-entry go.mod.
//
// Rules:
//
//	walltime  - internal/* must not read wall-clock time or the global
//	            math/rand state; only the sim.Scheduler clock and seeded
//	            rand.New(rand.NewSource(...)) generators are reproducible.
//	fpfloat   - fixedpoint Q.Float/Acc.Float are diagnostics-only; results
//	            may flow to internal/report, cmd/*, _test.go files and
//	            fmt/log call sites, never into simulation state.
//	maporder  - a range over a map whose body appends, sends, schedules a
//	            sim event, or writes output is nondeterministically ordered
//	            unless the collected slice is sorted afterwards.
//	mutexcopy - structs holding sync.Mutex/WaitGroup/... must not be
//	            copied by value.
//	handle    - sim.Event handles must not be stored in maps or slices,
//	            where they outlive Cancel and go stale silently.
//	globalstate - internal/* packages must not hold loose package-level
//	            mutable state; process-scoped state lives behind a single
//	            owning struct (or a store-attached view) with an audited
//	            allow.
//	gotrack   - every go statement joins through a WaitGroup.Done in its
//	            body or carries an allow; goroutines must not launch inside
//	            a range over a map.
//	errdrop   - errors from fail-safe load paths (memostore Load*,
//	            faults.Parse, ffDecode*) must be handled, never blanked
//	            with _.
//	schemahash - string constants marked //odrips:schema must equal the
//	            structural hash of the named types they pin, so codec-type
//	            changes force a version bump.
//	ffclass   - every field of the structs registered in ffManifestTypes
//	            is classified in ffFingerprinted or ffExcluded (the static
//	            twin of TestFingerprintManifestExhaustive).
//
// Intentional exceptions are annotated in source with a line directive
//
//	//odrips:allow <rule>[,<rule>...] <reason>
//
// which suppresses findings of the named rules on its own line and on the
// line directly below. The reason is mandatory and unused or malformed
// directives are themselves findings (rule "directive") — per rule, so a
// two-rule directive where only one rule fires still reports the dead
// half — keeping the exception list audited.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Finding is one rule violation.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the canonical file:line: [rule] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// An Analyzer is one lint rule run over every loaded unit.
type Analyzer struct {
	Name string // rule name as printed in findings and used by directives
	Doc  string
	Run  func(*Pass)
}

// Pass carries one unit through one analyzer.
type Pass struct {
	*Package
	Fset *token.FileSet

	analyzer *Analyzer
	found    *[]Finding
}

// Reportf records a finding at pos under the pass's rule.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportRulef(p.analyzer.Name, pos, format, args...)
}

// ReportRulef records a finding under an explicit rule name, for analyzers
// that own more than one rule (mutexcopy/handle).
func (p *Pass) ReportRulef(rule string, pos token.Pos, format string, args ...any) {
	*p.found = append(*p.found, Finding{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzers returns the full suite in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		walltimeAnalyzer, fpfloatAnalyzer, maporderAnalyzer, locksAnalyzer,
		globalstateAnalyzer, gotrackAnalyzer, errdropAnalyzer,
		schemahashAnalyzer, ffclassAnalyzer,
	}
}

// Rules returns every rule name an //odrips:allow directive may name.
func Rules() []string {
	return []string{
		"walltime", "fpfloat", "maporder", "mutexcopy", "handle",
		"globalstate", "gotrack", "errdrop", "schemahash", "ffclass",
	}
}

// Run loads the patterns relative to the module containing dir, runs the
// whole suite, applies //odrips:allow directives, and returns the surviving
// findings sorted by position. A non-nil error means the tree could not be
// loaded (parse or type error), not that findings exist.
func Run(dir string, patterns []string) ([]Finding, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(loader.Fset(), pkgs), nil
}

// RunPackages runs the suite over already-loaded units. Units are
// independent once loaded (type info and ASTs are read-only, FileSet
// position lookups are internally locked), so the analyzer phase fans out
// one goroutine per unit into an indexed slot; output order comes from the
// final merge and sort, never from scheduling, so findings are
// byte-identical at any parallelism.
func RunPackages(fset *token.FileSet, pkgs []*Package) []Finding {
	units := make([][]Finding, len(pkgs))
	var wg sync.WaitGroup
	wg.Add(len(pkgs))
	for i := range pkgs {
		go func() {
			defer wg.Done()
			units[i] = lintUnit(fset, pkgs[i])
		}()
	}
	wg.Wait()

	var raw []Finding
	dirs := map[string][]*directive{} // filename -> directives, parsed once
	for i, pkg := range pkgs {
		raw = append(raw, units[i]...)
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			if _, ok := dirs[name]; !ok {
				dirs[name] = collectDirectives(fset, f, &raw)
			}
		}
	}
	findings := applyDirectives(raw, dirs)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings
}

// lintUnit runs every analyzer over one unit and returns its raw findings.
func lintUnit(fset *token.FileSet, pkg *Package) []Finding {
	var unit []Finding
	for _, a := range Analyzers() {
		pass := &Pass{Package: pkg, Fset: fset, analyzer: a, found: &unit}
		a.Run(pass)
	}
	// The in-package test unit re-checks the plain files alongside the
	// _test.go files; keep only the test-file findings so the plain
	// unit's are not duplicated.
	if pkg.Test && !pkg.XTest {
		kept := unit[:0]
		for _, f := range unit {
			if strings.HasSuffix(f.Pos.Filename, "_test.go") {
				kept = append(kept, f)
			}
		}
		unit = kept
	}
	return unit
}

// directive is one parsed //odrips:allow comment, exploded to one entry
// per named rule: `//odrips:allow maporder,walltime reason` yields two
// entries sharing a position, so suppression and unused detection stay
// per-rule.
type directive struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

const allowPrefix = "//odrips:allow"

// collectDirectives parses every //odrips:allow directive of a file,
// reporting malformed ones (missing rule or reason, unknown rule) as
// findings under the "directive" rule.
func collectDirectives(fset *token.FileSet, f *ast.File, raw *[]Finding) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			report := func(format string, args ...any) {
				*raw = append(*raw, Finding{Pos: pos, Rule: "directive", Message: fmt.Sprintf(format, args...)})
			}
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				continue // some other odrips:allowX token, not ours
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report("allow directive names no rule; want %q", allowPrefix+" <rule>[,<rule>...] <reason>")
				continue
			}
			rules := strings.Split(fields[0], ",")
			bad := false
			for _, rule := range rules {
				if rule == "" {
					report("allow directive has an empty rule in %q; want comma-separated rule names", fields[0])
					bad = true
					continue
				}
				if !knownRule(rule) {
					report("allow directive names unknown rule %q (have %s)", rule, strings.Join(Rules(), ", "))
					bad = true
				}
			}
			if bad {
				continue
			}
			if len(fields) == 1 {
				report("allow directive for %q has no reason; exceptions must be justified in-line", fields[0])
				continue
			}
			for _, rule := range rules {
				out = append(out, &directive{
					pos:    pos,
					rule:   rule,
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

func knownRule(name string) bool {
	for _, r := range Rules() {
		if r == name {
			return true
		}
	}
	return false
}

// applyDirectives drops findings covered by an allow directive (same file,
// same rule, on the directive's line or the line directly below it) and
// reports directives that suppressed nothing.
func applyDirectives(raw []Finding, dirs map[string][]*directive) []Finding {
	var out []Finding
	for _, f := range raw {
		suppressed := false
		for _, d := range dirs[f.Pos.Filename] {
			if d.rule == f.Rule && (d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	files := make([]string, 0, len(dirs))
	for name := range dirs {
		files = append(files, name)
	}
	sort.Strings(files) // deterministic unused-directive order (maporder's own rule)
	for _, name := range files {
		for _, d := range dirs[name] {
			if !d.used {
				out = append(out, Finding{
					Pos:     d.pos,
					Rule:    "directive",
					Message: fmt.Sprintf("allow directive for %q suppresses nothing; delete it", d.rule),
				})
			}
		}
	}
	return out
}
