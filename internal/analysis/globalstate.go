package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// globalstateAnalyzer bans package-level mutable process state in the
// simulation packages (internal/*). The fleet-server arc (ROADMAP item 1)
// shards millions of simulated devices over shared concurrent memo stores;
// any state reachable without going through an owning struct is state that
// arc can corrupt invisibly. A package-level var is flagged when
//
//   - its type contains a sync primitive (Mutex, WaitGroup, Once, Map,
//     ...), a sync/atomic type, or a channel — mutable-by-design process
//     state, however it is accessed — or
//   - any function in the package assigns to it (directly or through an
//     index/field/dereference chain), i.e. it is demonstrably mutated at
//     runtime.
//
// Read-only seeded values pass: name tables ([...]string), precomputed
// constants (big.Int products, canonicalization defaults), and the
// registered analyzers of this package are all initialized at package
// level and never written again. State that is genuinely process-scoped —
// composition-root defaults set once by flag/env wiring — must be
// gathered behind a single owning struct and carry an audited
// //odrips:allow globalstate directive; everything else belongs in an
// instance plumbed from whoever owns its lifetime (the ffBundles cache
// hanging off its memostore.Store is the canonical fix).
//
// Known hole, accepted: mutation through an alias (`p := &global` followed
// by `p.x = ...`) or inside a method call is invisible to the write check;
// the type check catches the sync-bearing cases that matter, and the rule
// is a structural gate, not a proof.
var globalstateAnalyzer = &Analyzer{
	Name: "globalstate",
	Doc:  "forbid package-level mutable vars in internal/*; process state lives behind owning structs",
	Run:  runGlobalstate,
}

func runGlobalstate(pass *Pass) {
	if !strings.HasPrefix(pass.Path, "odrips/internal/") {
		return
	}
	// Collect package-level var objects with their declaration sites.
	type pkgVar struct {
		id  *ast.Ident
		obj types.Object
	}
	var vars []pkgVar
	byObj := map[types.Object]*pkgVar{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			// Test files declare scoped helpers (golden -update flags, the
			// fingerprint manifest maps); the invariant protects the
			// production packages.
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue // compile-time assertions
					}
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					vars = append(vars, pkgVar{id: name, obj: obj})
					byObj[obj] = &vars[len(vars)-1]
				}
			}
		}
	}
	if len(vars) == 0 {
		return
	}

	// Type check: inherently shared-mutable types.
	for _, v := range vars {
		if kind := processStateIn(v.obj.Type()); kind != "" {
			pass.Reportf(v.id.Pos(),
				"package-level var %s holds process-wide mutable state (%s); own it in a struct plumbed from the composition root (or a store-attached view), or justify it with //odrips:allow globalstate",
				v.id.Name, kind)
			delete(byObj, v.obj) // one finding per var
		}
	}

	// Write check: assignments targeting a remaining package-level var
	// from inside any function body.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var targets []ast.Expr
				switch n := n.(type) {
				case *ast.AssignStmt:
					targets = n.Lhs
				case *ast.IncDecStmt:
					targets = []ast.Expr{n.X}
				default:
					return true
				}
				for _, lhs := range targets {
					id := rootIdent(lhs)
					if id == nil {
						continue
					}
					obj := pass.Info.Uses[id]
					v, ok := byObj[obj]
					if !ok {
						continue
					}
					pass.Reportf(v.id.Pos(),
						"package-level var %s is mutated at runtime (write in %s); move it into a struct owned by whoever created it",
						v.id.Name, fd.Name.Name)
					delete(byObj, obj)
				}
				return true
			})
		}
	}
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier of an assignment target (x, x.f, x[i], *x, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// processStateIn reports the first shared-mutable type found inside t
// ("sync.Mutex", "atomic.Int32", "chan"), or "".
func processStateIn(t types.Type) string {
	return processStateIn1(t, map[types.Type]bool{})
}

func processStateIn1(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				if syncLockTypes[obj.Name()] {
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				return "atomic." + obj.Name()
			}
		}
		return processStateIn1(t.Underlying(), seen)
	case *types.Chan:
		return "chan"
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if kind := processStateIn1(t.Field(i).Type(), seen); kind != "" {
				return kind
			}
		}
	case *types.Array:
		return processStateIn1(t.Elem(), seen)
	case *types.Pointer:
		// A pointer-typed var itself is only mutable if reassigned (the
		// write check) — the pointee is the pointee's owner's problem —
		// but atomic.Pointer is caught above as a named atomic type.
	}
	return ""
}
