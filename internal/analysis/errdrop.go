package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropAnalyzer protects the fail-safe load paths. The persistent memo
// store is deliberately tolerant: Load returns (payload, ok, err) where a
// typed *CorruptError is a recoverable miss, not a failure — but that
// tolerance is a contract the CALLER discharges by inspecting err, not by
// discarding it. A `payload, ok, _ := s.Load(...)` silently converts disk
// corruption, permission errors, and codec drift into cold-cache behavior,
// which is exactly the class of bug that made ffpersist re-simulate
// thousands of cycles without anyone noticing. Flagged call shapes:
//
//   - assignments that bind an error result of a fail-safe loader to `_`;
//   - bare expression statements that call one and drop every result.
//
// Fail-safe loaders are: Load*, Claim, and AwaitClaimed methods on
// odrips/internal/memostore.Store, Parse in odrips/internal/faults, and
// any function whose name starts with "ffDecode" and returns an error
// (the platform bundle codec convention).
var errdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "errors from fail-safe load paths (memostore Load*/Claim/AwaitClaimed, faults.Parse, ffDecode*) must be handled, not blanked",
	Run:  runErrdrop,
}

func runErrdrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Single-call form: lhs... := f(...)
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, errIdx := failSafeLoader(pass, call)
				if name == "" || errIdx < 0 || errIdx >= len(n.Lhs) {
					return true
				}
				if id, ok := n.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(n.Pos(),
						"error from fail-safe loader %s discarded with _; a typed miss (*memostore.CorruptError and kin) must be handled explicitly",
						name)
				}
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, errIdx := failSafeLoader(pass, call); name != "" && errIdx >= 0 {
					pass.Reportf(n.Pos(),
						"result of fail-safe loader %s dropped entirely; its error return must be handled",
						name)
				}
			}
			return true
		})
	}
}

// failSafeLoader reports whether call targets one of the protected loaders,
// returning its display name and the index of the error result (-1 when the
// call is not protected or returns no error).
func failSafeLoader(pass *Pass, call *ast.CallExpr) (string, int) {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			fn = obj
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Func); ok {
			fn = obj
		}
	}
	if fn == nil || fn.Pkg() == nil {
		return "", -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", -1
	}
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = i
			break
		}
	}
	if errIdx < 0 {
		return "", -1
	}

	pkgPath := fn.Pkg().Path()
	switch {
	case pkgPath == "odrips/internal/memostore" &&
		(strings.HasPrefix(fn.Name(), "Load") || fn.Name() == "Claim" || fn.Name() == "AwaitClaimed"):
		// Load* covers LoadPacked and LoadOrCompute; Claim and
		// AwaitClaimed are coordination, but a blanked error there turns
		// "compute uncoordinated" into "assume someone else computes" —
		// a hang, not a graceful miss.
		if recv := sig.Recv(); recv != nil && recvNamed(recv.Type(), "odrips/internal/memostore", "Store") {
			return "memostore.Store." + fn.Name(), errIdx
		}
	case pkgPath == "odrips/internal/faults" && fn.Name() == "Parse" && sig.Recv() == nil:
		return "faults.Parse", errIdx
	case strings.HasPrefix(fn.Name(), "ffDecode"):
		return fn.Name(), errIdx
	}
	return "", -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
