package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"odrips/internal/analysis"
)

// lintFixture runs the full suite (directives applied) over one testdata
// package.
func lintFixture(t *testing.T, name string) []analysis.Finding {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run(".", []string{dir})
	if err != nil {
		t.Fatalf("linting %s: %v", dir, err)
	}
	return findings
}

var wantRe = regexp.MustCompile(`//\s*want\s+([a-z ]+?)\s*$`)

// parseWant scans a fixture directory for `// want <rule> [<rule>...]`
// line markers.
func parseWant(t *testing.T, name string) map[string][]string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			rules := strings.Fields(m[1])
			sort.Strings(rules)
			want[key] = rules
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no // want markers", name)
	}
	return want
}

// TestFixtures checks, for every rule, that the must-flag lines are flagged,
// the must-allow lines (clean idioms and //odrips:allow escapes) are not,
// and nothing else fires.
func TestFixtures(t *testing.T) {
	for _, rule := range []string{
		"walltime", "fpfloat", "maporder", "mutexcopy", "handle",
		"globalstate", "gotrack", "errdrop", "schemahash", "ffclass",
		"multirule", // comma-separated directives; exercises several rules at once
	} {
		t.Run(rule, func(t *testing.T) {
			want := parseWant(t, rule)
			got := map[string][]string{}
			for _, f := range lintFixture(t, rule) {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				got[key] = append(got[key], f.Rule)
			}
			for key := range got {
				sort.Strings(got[key])
			}
			for key, rules := range want {
				if strings.Join(got[key], " ") != strings.Join(rules, " ") {
					t.Errorf("%s: got findings [%s], want [%s]",
						key, strings.Join(got[key], " "), strings.Join(rules, " "))
				}
			}
			for key, rules := range got {
				if _, ok := want[key]; !ok {
					t.Errorf("%s: unexpected finding(s) [%s]", key, strings.Join(rules, " "))
				}
			}
		})
	}
}

// TestMustFlagFixturesFailTheBuild pins the acceptance contract: linting a
// must-flag fixture yields findings (the driver exits nonzero on those), and
// each finding renders in file:line: [rule] form.
func TestMustFlagFixturesFailTheBuild(t *testing.T) {
	findings := lintFixture(t, "walltime")
	if len(findings) == 0 {
		t.Fatal("walltime fixture produced no findings; odrips-vet would exit 0 on broken code")
	}
	form := regexp.MustCompile(`^.+\.go:\d+: \[[a-z]+\] .+`)
	for _, f := range findings {
		if !form.MatchString(f.String()) {
			t.Errorf("finding %q does not match file:line: [rule] message", f.String())
		}
	}
}

// TestDirectiveFindings covers the audit of the allow mechanism itself:
// malformed, reason-less, unknown-rule, and unused directives each fire.
func TestDirectiveFindings(t *testing.T) {
	findings := lintFixture(t, "directive")
	var msgs []string
	for _, f := range findings {
		if f.Rule != "directive" {
			t.Errorf("unexpected rule %q: %s", f.Rule, f)
		}
		msgs = append(msgs, f.Message)
	}
	all := strings.Join(msgs, "\n")
	for _, wantSub := range []string{
		"names no rule",
		"has no reason",
		"unknown rule \"nosuchrule\"",
		"suppresses nothing",
	} {
		if !strings.Contains(all, wantSub) {
			t.Errorf("no directive finding mentions %q in:\n%s", wantSub, all)
		}
	}
	if len(findings) != 4 {
		t.Errorf("got %d directive findings, want 4:\n%s", len(findings), all)
	}
}

// TestRepoIsClean is `make lint` as a test: the real tree (fixtures
// excluded by the testdata walk rule) must produce zero findings, so any
// future violation fails the ordinary test tier too, not only CI's lint
// step.
func TestRepoIsClean(t *testing.T) {
	findings, err := analysis.Run(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestLoaderUnits sanity-checks the dependency-free loader: a directory
// with plain, in-package test, and external test files yields the right
// units, and module-internal imports resolve to a single type identity.
func TestLoaderUnits(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "odrips" {
		t.Fatalf("module = %q, want odrips", loader.Module)
	}
	pkgs, err := loader.Load("internal/mee")
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	// internal/mee has plain files, in-package tests, and an external
	// example_test package.
	joined := strings.Join(paths, " ")
	if !strings.Contains(joined, "odrips/internal/mee") {
		t.Fatalf("loaded units %v missing odrips/internal/mee", paths)
	}
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("unit %s (test=%v xtest=%v) incompletely loaded", p.Path, p.Test, p.XTest)
		}
	}
}

// TestGlobalStateAllowRoster pins the repo's //odrips:allow globalstate
// directives to an explicit roster. The rule keeps loose package-level
// state out; the allows are the audited composition roots — a new one
// must be added here deliberately, with its reason reviewed, not slipped
// in by copying the directive.
func TestGlobalStateAllowRoster(t *testing.T) {
	want := map[string]bool{
		"internal/experiments/engine.go":   true, // -workers default + bounded point memo
		"internal/fleet/root.go":           true, // shared fleet memo plane
		"internal/memostore/memostore.go":  true, // default persistent store + build fingerprint
		"internal/platform/fastforward.go": true, // -fastforward process default
	}
	got := map[string]bool{}
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "//odrips:allow globalstate") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				got[filepath.ToSlash(rel)] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for path := range got {
		if !want[path] {
			t.Errorf("unaudited globalstate allow in %s: add it to the roster with a reviewed reason", path)
		}
	}
	for path := range want {
		if !got[path] {
			t.Errorf("roster entry %s has no globalstate allow anymore; prune it", path)
		}
	}
}
