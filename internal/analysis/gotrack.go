package analysis

import (
	"go/ast"
	"go/types"
)

// gotrackAnalyzer polices goroutine launches. The byte-identity guarantee
// (RunPoints output identical at any -workers count) only holds while every
// goroutine is joined before its results are read; a fire-and-forget
// goroutine is either a leak or a data race waiting for the fleet server's
// load profile. Two checks:
//
//   - every `go func(){...}()` whose body does not call
//     (*sync.WaitGroup).Done — the join protocol this codebase uses
//     everywhere — is flagged, as is any `go` of a named function or
//     method (the analyzer cannot see into those bodies, so the launch
//     site must either wrap it in a joined closure or carry an allow);
//   - a `go` statement inside a `range` over a map is always flagged,
//     joined or not: the launch order is map-iteration order, so anything
//     order-sensitive the goroutines do (claiming indices, appending,
//     first-error selection) varies run to run.
//
// Genuinely detached goroutines (a future server's accept loop) document
// themselves with //odrips:allow gotrack <reason>.
var gotrackAnalyzer = &Analyzer{
	Name: "gotrack",
	Doc:  "every go statement joins via WaitGroup.Done in its body, or carries an allow; no go inside range-over-map",
	Run:  runGotrack,
}

func runGotrack(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Stack of enclosing statements, so a go statement can look
			// outward for a range-over-map without crossing into the
			// enclosing function literal's own launch context.
			var stack []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if rng := mapRangeAbove(pass, stack[:len(stack)-1]); rng != nil {
					pass.Reportf(gs.Pos(),
						"goroutine launched inside range over map %s: launch order is map-iteration order and varies run to run; collect keys into a sorted slice first",
						types.ExprString(rng.X))
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					pass.Reportf(gs.Pos(),
						"go of named function %s hides its join; wrap it in a closure that defers wg.Done (or annotate //odrips:allow gotrack <reason>)",
						types.ExprString(gs.Call.Fun))
					return true
				}
				if !callsWaitGroupDone(pass, lit.Body) {
					pass.Reportf(gs.Pos(),
						"goroutine body never calls (*sync.WaitGroup).Done: nothing joins this goroutine before results are read; add a WaitGroup (or annotate //odrips:allow gotrack <reason>)")
				}
				return true
			})
		}
	}
}

// mapRangeAbove walks the ancestor stack outward from a go statement and
// returns the innermost enclosing range-over-map, stopping at any function
// boundary (a func literal between the range and the go statement runs
// later, under its own rules).
func mapRangeAbove(pass *Pass, stack []ast.Node) *ast.RangeStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return nil
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return n
				}
			}
		}
	}
	return nil
}

// callsWaitGroupDone reports whether body (including nested literals —
// a deferred closure calling wg.Done counts) contains a call that resolves
// to (*sync.WaitGroup).Done.
func callsWaitGroupDone(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		selInfo, ok := pass.Info.Selections[sel]
		if !ok {
			return true
		}
		fn, ok := selInfo.Obj().(*types.Func)
		if !ok {
			return true
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return true
		}
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
