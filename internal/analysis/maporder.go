package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// maporderAnalyzer protects the engine's deterministic, index-ordered
// assembly: Go randomizes map iteration order, so a `range` over a map whose
// body has an order-sensitive effect — appending to a slice, sending on a
// channel, scheduling a sim event, or writing output — produces a different
// run every time. Order-insensitive bodies (counting, summing into integers,
// keyed writes into another map) pass. An append is also fine when the
// collected slice is sorted later in the same function, the
// collect-then-sort idiom used by ltr.Reports and aonio.Names.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive effects inside range-over-map loops",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.Info.TypeOf(rng.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRangeBody(pass, rng, enclosingBody(stack[:len(stack)-1]))
				}
			}
			return true
		})
	}
}

// enclosingBody returns the body of the innermost enclosing function.
func enclosingBody(ancestors []ast.Node) *ast.BlockStmt {
	for i := len(ancestors) - 1; i >= 0; i-- {
		switch fn := ancestors[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, body *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map runs in nondeterministic order; iterate sorted keys")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					continue
				}
				if i < len(n.Lhs) {
					if target, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pass.Info.ObjectOf(target); obj != nil && sortedAfter(pass, body, rng.End(), obj) {
							continue
						}
					}
				}
				pass.Reportf(call.Pos(), "append inside range over map builds a nondeterministically ordered slice; iterate sorted keys or sort the result")
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, n)
		}
		return true
	})
}

func checkMapRangeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return
	}
	// Output writes: fmt printers and io-style Write methods emit bytes in
	// iteration order.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		pass.Reportf(call.Pos(), "fmt.%s inside range over map writes output in nondeterministic order; iterate sorted keys", fn.Name())
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	switch {
	case recvNamed(recv, "odrips/internal/sim", "Scheduler"):
		switch fn.Name() {
		case "At", "After", "Every":
			pass.Reportf(call.Pos(), "scheduling a sim event inside range over map assigns nondeterministic sequence numbers; iterate sorted keys")
		}
	case strings.HasPrefix(fn.Name(), "Write") || fn.Name() == "AddRow" || fn.Name() == "AddNote":
		pass.Reportf(call.Pos(), "%s.%s inside range over map writes output in nondeterministic order; iterate sorted keys",
			recvTypeName(recv), fn.Name())
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, later in the enclosing function body, the
// slice variable obj is handed to a sort.* or slices.Sort* call — the
// collect-then-sort idiom that re-establishes a deterministic order.
func sortedAfter(pass *Pass, body *ast.BlockStmt, after token.Pos, obj types.Object) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentions(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

func recvNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
