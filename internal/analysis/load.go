package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit of source. A directory yields up to three
// units, mirroring how the go tool compiles it: the plain package, the
// package recompiled with its in-package _test.go files, and the external
// _test package. Test units reuse the ASTs of the plain unit, so every file
// is parsed exactly once and directives are collected once per file.
type Package struct {
	Path  string // import path ("odrips/internal/sim")
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Test reports that this unit exists only under `go test`: either the
	// package rebuilt with in-package test files, or an external _test
	// package. For the former, findings are kept only for _test.go files
	// (the plain unit already covers the rest).
	Test  bool
	XTest bool
}

// Loader parses and type-checks packages of the enclosing module using only
// the standard library: module-internal imports resolve by mapping the import
// path under the module root, and everything else goes through the stdlib
// source importer. No go/packages, no external dependencies.
type Loader struct {
	Root   string // absolute module root (directory of go.mod)
	Module string // module path from go.mod

	fset   *token.FileSet
	std    types.Importer
	deps   map[string]*Package  // memoized plain units, keyed by import path
	parsed map[string]parsedDir // memoized parses, keyed by directory
}

type parsedDir struct {
	plain, test, xtest []*ast.File
}

// NewLoader locates go.mod at or above dir and returns a loader for that
// module.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: mod,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		deps:   map[string]*Package{},
		parsed: map[string]parsedDir{},
	}, nil
}

// Fset returns the file set positions in loaded packages refer to.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load resolves package patterns to type-checked units. Supported patterns:
// "./..." and "dir/..." for subtrees, plus plain (relative or absolute)
// directories. Directories named testdata, vendor, or starting with "." or
// "_" are skipped by subtree walks but may be named explicitly — that is how
// the analyzer tests lint their fixtures.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	addDir := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := l.absDir(rest)
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if ok, err := hasGoFiles(path); err != nil {
					return err
				} else if ok {
					addDir(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			addDir(l.absDir(pat))
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

func (l *Loader) absDir(p string) string {
	if p == "" || p == "." {
		return l.Root
	}
	if filepath.IsAbs(p) {
		return filepath.Clean(p)
	}
	return filepath.Join(l.Root, p)
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && goFileName(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func goFileName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirFor(importPath string) (string, error) {
	if importPath == l.Module {
		return l.Root, nil
	}
	rest, ok := strings.CutPrefix(importPath, l.Module+"/")
	if !ok {
		return "", fmt.Errorf("analysis: %s is not in module %s", importPath, l.Module)
	}
	return filepath.Join(l.Root, filepath.FromSlash(rest)), nil
}

// parseDir parses every buildable file of dir once, split into the plain
// package files, in-package test files, and external (package foo_test)
// files.
func (l *Loader) parseDir(dir string) (plain, test, xtest []*ast.File, err error) {
	if p, ok := l.parsed[dir]; ok {
		return p.plain, p.test, p.xtest, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		if e.IsDir() || !goFileName(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(e.Name(), "_test.go"):
			plain = append(plain, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtest = append(xtest, f)
		default:
			test = append(test, f)
		}
	}
	l.parsed[dir] = parsedDir{plain, test, xtest}
	return plain, test, xtest, nil
}

// loadDir builds every unit of one directory.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	plain, test, xtest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	var units []*Package
	if len(plain) > 0 {
		u, err := l.plainUnit(path, dir, plain)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(test) > 0 {
		u, err := l.check(path, dir, append(append([]*ast.File{}, plain...), test...), true, false)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(xtest) > 0 {
		u, err := l.check(path+"_test", dir, xtest, true, true)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

func (l *Loader) check(path, dir string, files []*ast.File, isTest, isXTest bool) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: (*depImporter)(l),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return &Package{
		Path: path, Dir: dir, Files: files,
		Types: tpkg, Info: info,
		Test: isTest, XTest: isXTest,
	}, nil
}

// plainUnit type-checks (once) the plain, non-test unit of a directory. The
// memo is shared with import resolution, so a package has a single type
// identity whether it is linted directly or pulled in as a dependency.
func (l *Loader) plainUnit(path, dir string, plain []*ast.File) (*Package, error) {
	if u, ok := l.deps[path]; ok {
		if u == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return u, nil
	}
	l.deps[path] = nil // cycle marker
	u, err := l.check(path, dir, plain, false, false)
	if err != nil {
		return nil, err
	}
	l.deps[path] = u
	return u, nil
}

// depImporter resolves imports during type-checking: module-internal paths
// load (and memoize) the plain unit of the target directory; everything else
// defers to the stdlib source importer.
type depImporter Loader

func (d *depImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(d)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.Import(path)
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	plain, _, _, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(plain) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	u, err := l.plainUnit(path, dir, plain)
	if err != nil {
		return nil, err
	}
	return u.Types, nil
}
