package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// fpfloatAnalyzer enforces the "diagnostics only" contract on
// fixedpoint.Q.Float and fixedpoint.Acc.Float: the 1 ppb Step arithmetic of
// §4.1.3 is exact in fixed point, and a float64 rendering of it must never
// flow back into simulation state where rounding could contaminate energy or
// timer results. Float calls are allowed only in internal/report, cmd/*,
// _test.go files, and directly inside fmt/log formatting call sites.
var fpfloatAnalyzer = &Analyzer{
	Name: "fpfloat",
	Doc:  "restrict fixedpoint Float() results to reporting, tests and fmt/log call sites",
	Run:  runFpfloat,
}

func runFpfloat(pass *Pass) {
	if pass.Path == "odrips/internal/fixedpoint" ||
		strings.HasPrefix(pass.Path, "odrips/internal/report") ||
		strings.HasPrefix(pass.Path, "odrips/cmd/") {
		return
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Name() != "Float" ||
				fn.Pkg() == nil || fn.Pkg().Path() != "odrips/internal/fixedpoint" {
				return true
			}
			if pass.IsTestFile(call.Pos()) || insideFormatting(pass, stack[:len(stack)-1]) {
				return true
			}
			recv := "fixedpoint value"
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = "fixedpoint." + recvTypeName(sig.Recv().Type())
			}
			pass.Reportf(call.Pos(),
				"%s.Float() is diagnostics-only; keep simulation math in fixed point (allowed in internal/report, cmd/*, _test.go and fmt/log call sites)",
				recv)
			return true
		})
	}
}

// insideFormatting reports whether the node whose ancestor stack is given
// sits inside a fmt, log, or log/slog call — a Float() feeding a Printf is
// the blessed diagnostics path.
func insideFormatting(pass *Pass, ancestors []ast.Node) bool {
	for _, n := range ancestors {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt", "log", "log/slog":
				return true
			}
		}
	}
	return false
}
