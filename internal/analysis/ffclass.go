package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// ffclassAnalyzer is the static companion to the fast-forward fingerprint
// manifest (platform/ffmanifest_test.go). The reflect-based
// TestFingerprintManifestExhaustive already fails the test tier when a
// field of a registered state struct is unclassified — but only when the
// tests run. This rule moves the same exhaustiveness check to vet time, so
// `make lint` (and the editor) flags the new field the moment it is added,
// before a test cycle.
//
// The rule activates in any unit that declares the manifest triple:
//
//	var ffFingerprinted = map[string]bool{...}
//	var ffExcluded = map[string]string{...}
//	func ffManifestTypes() []reflect.Type { ... }
//
// The registered types are recovered from the (*T)(nil) type expressions
// in ffManifestTypes; keys follow reflect.Type.String() form,
// "pkgname.Type.field". Every field of every registered struct must appear
// in exactly one of the two maps.
var ffclassAnalyzer = &Analyzer{
	Name: "ffclass",
	Doc:  "every field of the ffManifestTypes structs is classified in ffFingerprinted or ffExcluded",
	Run:  runFFClass,
}

func runFFClass(pass *Pass) {
	var fpLit, exLit *ast.CompositeLit
	var manifestFn *ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.Name == "ffManifestTypes" && d.Body != nil {
					manifestFn = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i >= len(vs.Values) {
							continue
						}
						cl, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						switch name.Name {
						case "ffFingerprinted":
							fpLit = cl
						case "ffExcluded":
							exLit = cl
						}
					}
				}
			}
		}
	}
	if fpLit == nil || exLit == nil || manifestFn == nil {
		return
	}
	if obj, ok := pass.Info.Defs[manifestFn.Name].(*types.Func); ok {
		sig := obj.Type().(*types.Signature)
		if sig.Results().Len() != 1 || types.TypeString(sig.Results().At(0).Type(), nil) != "[]reflect.Type" {
			return
		}
	}

	fp := manifestKeys(pass, fpLit)
	ex := manifestKeys(pass, exLit)

	// The registered struct types: every (*T) type expression inside
	// ffManifestTypes' body (the reflect.TypeOf((*T)(nil)).Elem() idiom).
	ast.Inspect(manifestFn.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.StarExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[se]
		if !ok || !tv.IsType() {
			return true
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			return true
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			return true
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		// reflect.Type.String() renders pkgname.Type (package short name).
		typeStr := named.Obj().Name()
		if p := named.Obj().Pkg(); p != nil {
			typeStr = p.Name() + "." + typeStr
		}
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			key := typeStr + "." + st.Field(i).Name()
			_, inFP := fp[key]
			_, inEx := ex[key]
			switch {
			case !inFP && !inEx:
				missing = append(missing, st.Field(i).Name())
			case inFP && inEx:
				pass.Reportf(fp[key].Pos(),
					"manifest key %s is both fingerprinted and excluded; pick one", key)
			}
		}
		sort.Strings(missing)
		for _, field := range missing {
			pass.Reportf(se.Pos(),
				"field %s.%s is not classified in the fingerprint manifest; add it to ffFingerprinted or to ffExcluded with a reason",
				typeStr, field)
		}
		return true
	})
}

// manifestKeys extracts the constant string keys of a map composite
// literal, each mapped to its position.
func manifestKeys(pass *Pass, cl *ast.CompositeLit) map[string]ast.Node {
	out := map[string]ast.Node{}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		tv, ok := pass.Info.Types[kv.Key]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		out[constant.StringVal(tv.Value)] = kv.Key
	}
	return out
}
