package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// schemahashAnalyzer pins the persisted codec schemas. The memostore's
// build-fingerprint versioning protects cache entries across *code*
// changes, but the bundle codec's wire layout is hand-rolled: adding a
// field to cycleRecord without bumping ffBundleVersion silently decodes
// stale bytes into the wrong fields. This rule makes the layout a checked
// artifact. A string constant annotated
//
//	//odrips:schema <RootType> <RootType>...
//
// records the sha256 over a canonical structural description of the named
// types reachable from the roots (field names, field order, and underlying
// types of every module-internal named type in the closure; external named
// types appear by qualified name only). If any serialized type changes
// shape, the computed hash diverges from the recorded constant and vet
// fails with both hashes — the fix is to bump the schema/bundle version
// AND re-record the constant from the message, making "changed the codec
// types, forgot the version" impossible to merge silently.
var schemahashAnalyzer = &Analyzer{
	Name: "schemahash",
	Doc:  "string consts marked //odrips:schema must equal the structural hash of their root types' closure",
	Run:  runSchemahash,
}

func runSchemahash(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				doc := vs.Doc
				if doc == nil {
					doc = gd.Doc
				}
				roots := schemaMarkerTypes(doc)
				if roots == nil {
					continue
				}
				checkSchemaConst(pass, vs, roots)
			}
		}
	}
}

const schemaPrefix = "//odrips:schema"

// schemaMarkerTypes extracts the root type names from an //odrips:schema
// marker line in doc, or nil when doc carries no marker.
func schemaMarkerTypes(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, schemaPrefix)
		if !ok {
			continue
		}
		if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
			continue
		}
		return strings.Fields(rest)
	}
	return nil
}

func checkSchemaConst(pass *Pass, vs *ast.ValueSpec, roots []string) {
	if len(vs.Names) != 1 {
		pass.Reportf(vs.Pos(), "//odrips:schema marker must annotate exactly one string constant")
		return
	}
	name := vs.Names[0]
	if len(roots) == 0 {
		pass.Reportf(name.Pos(), "//odrips:schema on %s names no root types; want %q", name.Name, schemaPrefix+" <Type>...")
		return
	}
	obj, ok := pass.Info.Defs[name].(*types.Const)
	if !ok || obj.Val().Kind() != constant.String {
		pass.Reportf(name.Pos(), "//odrips:schema marker requires %s to be a string constant holding the recorded hash", name.Name)
		return
	}
	recorded := constant.StringVal(obj.Val())

	var rootTypes []*types.Named
	for _, r := range roots {
		tobj := pass.Types.Scope().Lookup(r)
		tn, ok := tobj.(*types.TypeName)
		if !ok {
			pass.Reportf(name.Pos(), "//odrips:schema on %s names %q, which is not a type in package %s", name.Name, r, pass.Types.Path())
			return
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			pass.Reportf(name.Pos(), "//odrips:schema root %q must be a defined (named) type", r)
			return
		}
		rootTypes = append(rootTypes, named)
	}

	computed := schemaHashOf(rootTypes)
	if recorded != computed {
		pass.Reportf(name.Pos(),
			"schema hash mismatch for %s (roots %s): recorded %q, computed %q; a serialized type changed shape — bump the codec version and re-record the constant",
			name.Name, strings.Join(roots, " "), recorded, computed)
	}
}

// schemaHashOf computes the canonical structural hash: every
// module-internal named type reachable from the roots contributes one line
// "pkgpath.Name = <underlying>", lines are sorted, and the sha256 of the
// joined description is hex-encoded.
func schemaHashOf(roots []*types.Named) string {
	qual := func(p *types.Package) string { return p.Path() }
	lines := map[string]string{}
	var queue []*types.Named
	queued := map[string]bool{}
	enqueue := func(n *types.Named) {
		key := namedKey(n)
		if key == "" || queued[key] {
			return
		}
		queued[key] = true
		queue = append(queue, n)
	}
	for _, r := range roots {
		enqueue(r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		u := n.Underlying()
		lines[namedKey(n)] = namedKey(n) + " = " + types.TypeString(u, qual)
		collectNamed(u, enqueue, map[types.Type]bool{})
	}
	keys := make([]string, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(lines[k])
		sb.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// namedKey is the closure identity of a named type: its qualified name for
// module-internal types, "" for external ones (they are rendered by name at
// use sites but never expanded — their layout is the stdlib's contract, not
// this module's).
func namedKey(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	if path != "odrips" && !strings.HasPrefix(path, "odrips/") {
		return ""
	}
	return path + "." + obj.Name()
}

// collectNamed walks a type structurally, enqueueing every named type it
// references (expansion of module-internal ones happens at the queue).
func collectNamed(t types.Type, enqueue func(*types.Named), seen map[types.Type]bool) {
	if seen[t] {
		return
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		enqueue(t)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			collectNamed(t.Field(i).Type(), enqueue, seen)
		}
	case *types.Array:
		collectNamed(t.Elem(), enqueue, seen)
	case *types.Slice:
		collectNamed(t.Elem(), enqueue, seen)
	case *types.Pointer:
		collectNamed(t.Elem(), enqueue, seen)
	case *types.Map:
		collectNamed(t.Key(), enqueue, seen)
		collectNamed(t.Elem(), enqueue, seen)
	case *types.Chan:
		collectNamed(t.Elem(), enqueue, seen)
	case *types.Signature:
		for i := 0; i < t.Params().Len(); i++ {
			collectNamed(t.Params().At(i).Type(), enqueue, seen)
		}
		for i := 0; i < t.Results().Len(); i++ {
			collectNamed(t.Results().At(i).Type(), enqueue, seen)
		}
	}
}
