package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// walltimeAnalyzer forbids wall-clock time and the global math/rand state in
// the simulation packages (internal/*). Simulated time comes from
// sim.Scheduler.Now; randomness must flow from an explicitly seeded
// rand.New(rand.NewSource(seed)) so every run — and every re-run of a failed
// sweep point — is byte-identical.
var walltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Sleep/... and global math/rand in internal/* simulation packages",
	Run:  runWalltime,
}

// bannedTimeFuncs are the package time functions that read or wait on the
// host clock. Types (time.Duration) and pure constructors/conversions
// (time.Duration arithmetic, time.Unix) stay allowed; internal/sim uses
// time.Duration for interoperable formatting.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level functions that do not
// touch the global generator.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runWalltime(pass *Pass) {
	if !strings.HasPrefix(pass.Path, "odrips/internal/") {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if bannedTimeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host clock; simulation packages must use the sim.Scheduler clock",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok { // a type (rand.Rand, rand.Source) or var, not a call target
					return true
				}
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the unseeded global generator; build a seeded rand.New(rand.NewSource(seed)) instead",
						fn.Name())
				}
			}
			return true
		})
	}
}
