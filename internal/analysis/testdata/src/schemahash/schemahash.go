// Package schemahash is an odrips-vet test fixture: string constants
// pinned to the structural hash of the types a codec serializes.
package schemahash

// wireKey and wireRecord stand in for a hand-rolled codec's types.
type wireKey struct {
	ID   uint64
	Name string
}

type wireRecord struct {
	Key  wireKey
	Vals []int64
	Tags map[string]uint32
}

// goodHash records the current structural hash, so it verifies clean.
//
//odrips:schema wireKey wireRecord
const goodHash = "441ac3330f9c01813231582cded2bcc18abd31c5da878dc88e2bcd655a1baeb7"

// staleHash was recorded before wireRecord grew a field (simulated by
// recording garbage): the codec changed shape without a version bump.
//
//odrips:schema wireRecord
const staleHash = "decafbad0000000000000000000000000000000000000000000000000000cafe" // want schemahash

// badRoot names a type that does not exist in this package.
//
//odrips:schema NoSuchType
const badRoot = "irrelevant" // want schemahash

// notAString is marked but cannot hold a hash.
//
//odrips:schema wireKey
const notAString = 42 // want schemahash

// unmarked constants are ignored entirely.
const unmarked = "not a schema pin"
