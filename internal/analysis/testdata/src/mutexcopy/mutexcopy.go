// Package mutexcopy is an odrips-vet test fixture: by-value copies of
// lock-bearing structs.
package mutexcopy

import "sync"

// Guarded embeds a mutex by value.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested embeds Guarded, so it is lock-bearing transitively.
type Nested struct {
	g Guarded
}

// BadParam receives the lock by value.
func BadParam(g Guarded) int { // want mutexcopy
	return g.n
}

// BadReceiver copies the lock on every call.
func (g Guarded) BadReceiver() int { // want mutexcopy
	return g.n
}

// BadCopy forks the lock state.
func BadCopy(g *Guarded) {
	cp := *g // want mutexcopy
	_ = cp
}

// BadRange copies each element's lock.
func BadRange(gs []Nested) int {
	n := 0
	for _, g := range gs { // want mutexcopy
		n += g.g.n
	}
	return n
}

// GoodPointer threads the lock by reference.
func GoodPointer(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// GoodInit builds fresh values; composite literals initialize, not copy.
func GoodInit() *Guarded {
	g := Guarded{n: 1}
	return &g
}

// Allowed shows the audited escape hatch.
func Allowed(g Guarded) int { //odrips:allow mutexcopy fixture exercises the allow path
	return g.n
}
