// Package gotrack is an odrips-vet test fixture: goroutine launches that
// nothing joins, and launches inside range-over-map.
package gotrack

import "sync"

func leak() {}

// BadNamed launches a named function: the join (if any) is invisible at
// the launch site.
func BadNamed() {
	go leak() // want gotrack
}

// BadFireAndForget launches a closure no WaitGroup ever joins.
func BadFireAndForget(ch chan int) {
	go func() { // want gotrack
		ch <- 1
	}()
}

// BadMapRange launches in map-iteration order; even a joined goroutine is
// flagged because the launch order itself varies run to run.
func BadMapRange(m map[string]int) {
	var wg sync.WaitGroup
	for k := range m {
		_ = k
		wg.Add(1)
		go func() { // want gotrack
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// GoodJoined is the worker-pool idiom: every launch is joined before
// results are read.
func GoodJoined(items []int) int {
	var (
		wg  sync.WaitGroup
		sum int
		mu  sync.Mutex
	)
	wg.Add(len(items))
	for _, v := range items {
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += v
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sum
}

// GoodNestedDone joins through a deferred closure; the Done call still
// resolves inside the goroutine body.
func GoodNestedDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() { wg.Done() }()
	}()
	wg.Wait()
}

// Allowed shows the audited escape hatch for genuinely detached
// goroutines (a server accept loop).
func Allowed() {
	go leak() //odrips:allow gotrack fixture stands in for a detached accept loop
}
