// Package errdrop is an odrips-vet test fixture: errors from the
// fail-safe load paths (memostore Load*, faults.Parse, the ffDecode*
// codec convention) discarded instead of handled.
package errdrop

import (
	"errors"

	"odrips/internal/faults"
	"odrips/internal/memostore"
)

// ffDecodeWire matches the platform bundle codec naming convention.
func ffDecodeWire(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errors.New("empty")
	}
	return len(b), nil
}

// BadBlank binds the error results to _.
func BadBlank(s *memostore.Store, key []byte) ([]byte, faults.Plan, int) {
	payload, ok, _ := s.Load("cycles", key) // want errdrop
	_ = ok
	plan, _ := faults.Parse("mee@2") // want errdrop
	n, _ := ffDecodeWire(payload)    // want errdrop
	return payload, plan, n
}

// BadDropped discards every result of a fail-safe loader.
func BadDropped(s *memostore.Store, key []byte) {
	s.Load("cycles", key) // want errdrop
	faults.Parse("mee@2") // want errdrop
	ffDecodeWire(key)     // want errdrop
}

// Good handles the error explicitly, treating a typed miss as a cold
// cache and anything else as a real failure.
func Good(s *memostore.Store, key []byte) ([]byte, error) {
	payload, ok, err := s.Load("cycles", key)
	if err != nil {
		var corrupt *memostore.CorruptError
		if !errors.As(err, &corrupt) {
			return nil, err
		}
		return nil, nil // counted miss; recompute
	}
	if !ok {
		return nil, nil
	}
	if _, derr := ffDecodeWire(payload); derr != nil {
		return nil, derr
	}
	return payload, nil
}

// Allowed shows the audited escape hatch.
func Allowed(s *memostore.Store, key []byte) []byte {
	payload, _, _ := s.Load("cycles", key) //odrips:allow errdrop fixture exercises the allow path
	return payload
}
