// Package errdrop is an odrips-vet test fixture: errors from the
// fail-safe load paths (memostore Load*, faults.Parse, the ffDecode*
// codec convention) discarded instead of handled.
package errdrop

import (
	"context"
	"errors"

	"odrips/internal/faults"
	"odrips/internal/memostore"
)

// ffDecodeWire matches the platform bundle codec naming convention.
func ffDecodeWire(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errors.New("empty")
	}
	return len(b), nil
}

// BadBlank binds the error results to _.
func BadBlank(s *memostore.Store, key []byte) ([]byte, faults.Plan, int) {
	payload, ok, _ := s.Load("cycles", key) // want errdrop
	_ = ok
	plan, _ := faults.Parse("mee@2") // want errdrop
	n, _ := ffDecodeWire(payload)    // want errdrop
	return payload, plan, n
}

// BadDropped discards every result of a fail-safe loader.
func BadDropped(s *memostore.Store, key []byte) {
	s.Load("cycles", key) // want errdrop
	faults.Parse("mee@2") // want errdrop
	ffDecodeWire(key)     // want errdrop
}

// BadPackedAndClaims covers the pack/claim surface: a blanked Claim
// error silently downgrades "compute uncoordinated" into "assume another
// process computes" — a potential hang, not a graceful miss.
func BadPackedAndClaims(s *memostore.Store, key []byte) []byte {
	payload, ok, _ := s.LoadPacked("cycles", key) // want errdrop
	_ = ok
	c, _ := s.Claim("cycles", key) // want errdrop
	if c != nil {
		c.Release()
	}
	p2, _ := s.LoadOrCompute("cycles", key, func() ([]byte, error) { return nil, nil }) // want errdrop
	_ = p2
	p3, ok, _ := s.AwaitClaimed(context.Background(), "cycles", key) // want errdrop
	_, _ = p3, ok
	return payload
}

// GoodClaims handles the coordination errors explicitly.
func GoodClaims(s *memostore.Store, key []byte) error {
	c, err := s.Claim("cycles", key)
	if err != nil {
		return err // claim unavailable: compute uncoordinated
	}
	if c != nil {
		defer c.Release()
	}
	return nil
}

// Good handles the error explicitly, treating a typed miss as a cold
// cache and anything else as a real failure.
func Good(s *memostore.Store, key []byte) ([]byte, error) {
	payload, ok, err := s.Load("cycles", key)
	if err != nil {
		var corrupt *memostore.CorruptError
		if !errors.As(err, &corrupt) {
			return nil, err
		}
		return nil, nil // counted miss; recompute
	}
	if !ok {
		return nil, nil
	}
	if _, derr := ffDecodeWire(payload); derr != nil {
		return nil, derr
	}
	return payload, nil
}

// Allowed shows the audited escape hatch.
func Allowed(s *memostore.Store, key []byte) []byte {
	payload, _, _ := s.Load("cycles", key) //odrips:allow errdrop fixture exercises the allow path
	return payload
}
