// Package handle is an odrips-vet test fixture: collections of sim.Event
// handles that outlive Cancel.
package handle

import "odrips/internal/sim"

// BadQueue stashes handles where they will go stale.
type BadQueue struct {
	pending []sim.Event       // want handle
	byID    map[int]sim.Event // want handle
}

// GoodTicker holds the single live handle, the sim.Ticker pattern.
type GoodTicker struct {
	ev sim.Event
}

// BadLocal builds a local collection of handles.
func BadLocal(s *sim.Scheduler) {
	handles := make([]sim.Event, 0, 4) // want handle
	for i := 1; i <= 4; i++ {
		handles = append(handles, s.After(sim.Duration(i), "fixture", func() {}))
	}
	_ = handles
}

// GoodSingle re-arms one handle in place.
func GoodSingle(s *sim.Scheduler) sim.Event {
	ev := s.After(1, "fixture", func() {})
	return ev
}

// Allowed shows the audited escape hatch.
func Allowed() {
	var cache map[string]sim.Event //odrips:allow handle fixture exercises the allow path
	_ = cache
}
