// Package directive is an odrips-vet test fixture for the //odrips:allow
// machinery itself: malformed, unknown-rule, and unused directives are all
// findings, so the exception list stays audited. The expected findings for
// this package are asserted explicitly in analysis_test.go (they cannot be
// annotated in-line without confusing the directives under test).
package directive

//odrips:allow

//odrips:allow fpfloat

//odrips:allow nosuchrule because the rule name is made up

//odrips:allow walltime this one is well-formed but suppresses nothing

// Clean exists so the package has code.
func Clean() int { return 1 }
