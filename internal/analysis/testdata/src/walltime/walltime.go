// Package walltime is an odrips-vet test fixture: wall-clock and global
// math/rand use inside internal/*.
package walltime

import (
	"math/rand"
	"time"
)

// Bad reads host time and the global generator.
func Bad() int {
	_ = time.Now()                             // want walltime
	time.Sleep(time.Second)                    // want walltime
	if c := time.Tick(time.Minute); c != nil { // want walltime
		<-c
	}
	return rand.Intn(4) // want walltime
}

// Good keeps to types, constants, and seeded generators.
func Good() *rand.Rand {
	const warm = 3 * time.Second // the Duration type and constants are fine
	_ = warm
	var d time.Duration
	_ = d
	return rand.New(rand.NewSource(42))
}

// Allowed shows the audited escape hatch.
func Allowed() time.Time {
	return time.Now() //odrips:allow walltime fixture exercises the allow path
}
