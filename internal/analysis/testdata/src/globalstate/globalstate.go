// Package globalstate is an odrips-vet test fixture: package-level mutable
// process state in internal/*.
package globalstate

import "sync"

// Bad: the type itself is shared-mutable, however it is accessed.
var mu sync.Mutex // want globalstate

// Bad: a plain var demonstrably written at runtime.
var count int // want globalstate

// Bad: a seeded table that a function later mutates.
var registry = map[string]int{"a": 1} // want globalstate

// Bad: sync state buried inside a struct type.
var pool struct { // want globalstate
	once  sync.Once
	items []string
}

// Good: read-only seeded values, never written after initialization.
var names = [...]string{"alpha", "beta"}
var limit = 64

// Allowed shows the audited escape hatch for composition-root state.
//
//odrips:allow globalstate fixture exercises the allow path
var allowed sync.Once

// Bump mutates the package-level state the write check flags.
func Bump() {
	count++
	registry["b"] = 2
}

// Local state is fine: owned by the caller's frame.
func Local() int {
	var localMu sync.Mutex
	localMu.Lock()
	defer localMu.Unlock()
	n := limit
	for range names {
		n++
	}
	pool.once.Do(func() {})
	return n
}
