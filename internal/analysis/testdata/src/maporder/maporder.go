// Package maporder is an odrips-vet test fixture: order-sensitive effects
// inside range-over-map loops.
package maporder

import (
	"fmt"
	"sort"

	"odrips/internal/sim"
)

// BadAppend collects keys in randomized iteration order.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// GoodSorted is the collect-then-sort idiom; the append is fine because the
// slice is sorted before anyone observes its order.
func GoodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BadSend delivers map values in randomized order.
func BadSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want maporder
	}
}

// BadPrint writes output in randomized order.
func BadPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want maporder
	}
}

// BadSchedule hands the scheduler events in randomized order, so tie-broken
// sequence numbers differ run to run.
func BadSchedule(s *sim.Scheduler, m map[string]sim.Duration) {
	for name, d := range m {
		_ = name
		s.After(d, "fixture", func() {}) // want maporder
	}
}

// GoodKeyed writes into another map: keyed, order-insensitive.
func GoodKeyed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// GoodSum folds with a commutative integer op.
func GoodSum(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// Allowed shows the audited escape hatch.
func Allowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //odrips:allow maporder fixture exercises the allow path
	}
	return out
}
