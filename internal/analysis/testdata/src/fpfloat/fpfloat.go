// Package fpfloat is an odrips-vet test fixture: fixedpoint Float() flowing
// outside the diagnostics contexts.
package fpfloat

import (
	"fmt"

	"odrips/internal/fixedpoint"
)

// Bad lets float renderings of exact fixed-point values escape into state.
func Bad(q fixedpoint.Q, a *fixedpoint.Acc) float64 {
	x := q.Float()       // want fpfloat
	return x + a.Float() // want fpfloat
}

// Good stays in integer space.
func Good(q fixedpoint.Q) uint64 {
	return q.Integer() + q.Frac()
}

// Formatted uses the blessed fmt call-site path.
func Formatted(q fixedpoint.Q, a *fixedpoint.Acc) string {
	fmt.Printf("step=%.9f\n", q.Float())
	return fmt.Sprintf("acc=%f", a.Float())
}

// Allowed shows the audited escape hatch.
func Allowed(q fixedpoint.Q) float64 {
	return q.Float() //odrips:allow fpfloat fixture exercises the allow path
}
