// Package ffclass is an odrips-vet test fixture: the fast-forward
// fingerprint manifest triple (ffFingerprinted / ffExcluded /
// ffManifestTypes) with an unclassified field and a dual-classified one.
package ffclass

import "reflect"

type gizmo struct {
	classified   int
	excludedOK   string
	dual         uint32
	unclassified bool
}

type widget struct {
	covered int64
}

var ffFingerprinted = map[string]bool{
	"ffclass.gizmo.classified": true,
	"ffclass.gizmo.dual":       true, // want ffclass
	"ffclass.widget.covered":   true,
}

var ffExcluded = map[string]string{
	"ffclass.gizmo.excludedOK": "immutable after construction",
	"ffclass.gizmo.dual":       "contradicts the fingerprint entry above",
}

func ffManifestTypes() []reflect.Type {
	return []reflect.Type{
		reflect.TypeOf((*gizmo)(nil)).Elem(), // want ffclass
		reflect.TypeOf((*widget)(nil)).Elem(),
	}
}
