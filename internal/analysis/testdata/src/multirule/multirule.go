// Package multirule is an odrips-vet test fixture for comma-separated
// allow directives: one directive suppressing two rules on one line, and
// per-rule unused detection when only half of a directive fires.
package multirule

import "time"

// Bad trips walltime and maporder on the same line.
func Bad(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v+int(time.Now().Unix())) // want maporder walltime
	}
	return out
}

// Suppressed is the same shape with one directive covering both rules.
func Suppressed(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//odrips:allow maporder,walltime fixture: one directive suppresses two rules on the next line
		out = append(out, v+int(time.Now().Unix()))
	}
	return out
}

// PartlyUsed names two rules but only walltime fires: the fpfloat half is
// dead and must be reported per-rule.
func PartlyUsed() int64 {
	return time.Now().Unix() //odrips:allow walltime,fpfloat only walltime can fire here // want directive
}
