package analysis

import (
	"go/ast"
	"go/types"
)

// locksAnalyzer owns two rules.
//
// mutexcopy: copying a struct that embeds a sync.Mutex/WaitGroup/... forks
// its lock state; the copy guards nothing. Flagged at value receivers,
// by-value parameters and results, copy assignments from existing values,
// and range clauses that copy lock-bearing elements.
//
// handle: sim.Event handles are generation-counted tickets into the
// scheduler's recycled slot slab. Stashing them in a map or slice that
// outlives Cancel/fire is exactly the stale-handle class PR 1 added
// regression tests for — the collection keeps "valid-looking" handles whose
// slots have been reissued. Hold the single live handle (like sim.Ticker
// does) or re-derive; never build collections of them.
var locksAnalyzer = &Analyzer{
	Name: "mutexcopy",
	Doc:  "flag by-value copies of lock-bearing structs and collections of sim.Event handles",
	Run:  runLocks,
}

func runLocks(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, n.Type)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// A blank-identifier assignment discards the value;
					// nothing observable is copied.
					if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
						continue
					}
					checkCopyExpr(pass, rhs)
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if len(n.Names) == len(n.Values) && n.Names[i].Name == "_" {
						continue
					}
					checkCopyExpr(pass, v)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.Info.TypeOf(n.Value); t != nil {
						if name := lockIn(t); name != "" {
							pass.Reportf(n.Value.Pos(),
								"range clause copies %s (contains sync.%s) by value; iterate by index or use pointers", t, name)
						}
					}
				}
			}
			checkHandleDef(pass, n)
			return true
		})
	}
}

// checkFuncSig flags lock-bearing by-value receivers, params, and results.
func checkFuncSig(pass *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if name := lockIn(t); name != "" {
				pass.Reportf(field.Type.Pos(),
					"%s passes %s (contains sync.%s) by value; use a pointer", kind, t, name)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// checkCopyExpr flags assignments whose right-hand side copies an existing
// lock-bearing value. Fresh values (composite literals, function calls,
// new/make) initialize rather than copy and stay allowed.
func checkCopyExpr(pass *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
	default:
		return
	}
	t := pass.Info.TypeOf(rhs)
	if t == nil {
		return
	}
	if name := lockIn(t); name != "" {
		pass.Reportf(rhs.Pos(),
			"assignment copies %s (contains sync.%s) by value; use a pointer", t, name)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// lockIn returns the sync type name embedded (recursively, by value) in t,
// or "" if t is safely copyable.
func lockIn(t types.Type) string {
	return lockIn1(t, map[types.Type]bool{})
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

func lockIn1(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return obj.Name()
		}
		return lockIn1(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockIn1(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockIn1(t.Elem(), seen)
	}
	return ""
}

// checkHandleDef reports variables and struct fields whose type is a map,
// slice, or array of sim.Event (or *sim.Event).
func checkHandleDef(pass *Pass, n ast.Node) {
	var idents []*ast.Ident
	switch n := n.(type) {
	case *ast.ValueSpec:
		idents = n.Names
	case *ast.Field:
		idents = n.Names
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				idents = append(idents, id)
			}
		}
	default:
		return
	}
	for _, id := range idents {
		obj, ok := pass.Info.Defs[id]
		if !ok || obj == nil {
			continue
		}
		if coll := eventCollection(obj.Type()); coll != "" {
			pass.ReportRulef("handle", id.Pos(),
				"%s stores sim.Event handles in a %s; handles outliving Cancel/fire go stale — keep the single live handle (like sim.Ticker) or re-derive it",
				id.Name, coll)
		}
	}
}

// eventCollection classifies map/slice/array types whose elements are
// sim.Event handles.
func eventCollection(t types.Type) string {
	switch t := t.Underlying().(type) {
	case *types.Map:
		if isSimEvent(t.Elem()) {
			return "map"
		}
	case *types.Slice:
		if isSimEvent(t.Elem()) {
			return "slice"
		}
	case *types.Array:
		if isSimEvent(t.Elem()) {
			return "array"
		}
	}
	return ""
}

func isSimEvent(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return recvNamed(t, "odrips/internal/sim", "Event")
}
