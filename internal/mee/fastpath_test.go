package mee

import (
	"bytes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"testing"

	"odrips/internal/dram"
)

// TestStatsGolden pins the exact traffic counters of a 200 KB-scale
// save/flush/power-cycle/restore against values recorded before the
// zero-allocation datapath landed. The §6.3 latencies are derived from
// these counts, so any optimization that shifts them — including the
// sequential-walk fast path's hit crediting — is a model change, not a
// speedup.
func TestStatsGolden(t *testing.T) {
	type golden struct {
		blocks, lines int
		save, restore Stats
	}
	cases := []golden{
		// Pathologically small cache: the walk must disengage (path lines
		// alias) and the slow path's thrash pattern must be reproduced
		// exactly.
		{24, 4,
			Stats{DataWrites: 24, MetaReads: 31, MetaWrites: 30, CacheHits: 168, CacheMisses: 55},
			Stats{DataReads: 24, MetaReads: 15, CacheHits: 36, CacheMisses: 15}},
		{24, 16,
			Stats{DataWrites: 24, MetaReads: 11, MetaWrites: 11, CacheHits: 154, CacheMisses: 11},
			Stats{DataReads: 24, MetaReads: 11, CacheHits: 34, CacheMisses: 11}},
		{3141, 4,
			Stats{DataWrites: 3141, MetaReads: 14072, MetaWrites: 11430, CacheHits: 42388, CacheMisses: 25076},
			Stats{DataReads: 3141, MetaReads: 2247, CacheHits: 5142, CacheMisses: 2247}},
		{3141, 32,
			Stats{DataWrites: 3141, MetaReads: 2453, MetaWrites: 2428, CacheHits: 33658, CacheMisses: 3794},
			Stats{DataReads: 3141, MetaReads: 1337, CacheHits: 4448, CacheMisses: 1337}},
		{3141, 256,
			Stats{DataWrites: 3141, MetaReads: 1304, MetaWrites: 1304, CacheHits: 32701, CacheMisses: 1400},
			Stats{DataReads: 3141, MetaReads: 1239, CacheHits: 4375, CacheMisses: 1239}},
		{3200, 16,
			Stats{DataWrites: 3200, MetaReads: 4411, MetaWrites: 4320, CacheHits: 35864, CacheMisses: 7753},
			Stats{DataReads: 3200, MetaReads: 1490, CacheHits: 4636, CacheMisses: 1490}},
		{3200, 256,
			Stats{DataWrites: 3200, MetaReads: 1327, MetaWrites: 1327, CacheHits: 33314, CacheMisses: 1423},
			Stats{DataReads: 3200, MetaReads: 1262, CacheHits: 4457, CacheMisses: 1262}},
		{3200, 512,
			Stats{DataWrites: 3200, MetaReads: 1287, MetaWrites: 1287, CacheHits: 33280, CacheMisses: 1335},
			Stats{DataReads: 3200, MetaReads: 1255, CacheHits: 4452, CacheMisses: 1255}},
	}
	var key [32]byte
	key[0] = 0x5A
	for _, g := range cases {
		payload := make([]byte, g.blocks*BlockSize)
		rand.New(rand.NewSource(99)).Read(payload)
		mem := dram.New(dram.Skylake8GB())
		eng, err := New(mem, 0x1000_0000, g.blocks, key, g.lines)
		if err != nil {
			t.Fatal(err)
		}
		eng.ResetStats()
		if err := eng.WriteRegion(payload); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := eng.Stats(); got != g.save {
			t.Errorf("blocks=%d lines=%d save stats drifted:\n got  %+v\n want %+v", g.blocks, g.lines, got, g.save)
		}
		cold, err := ImportState(mem, eng.ExportState(), g.lines)
		if err != nil {
			t.Fatal(err)
		}
		back, err := cold.ReadRegion(len(payload))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("blocks=%d lines=%d restore corrupted payload", g.blocks, g.lines)
		}
		if got := cold.Stats(); got != g.restore {
			t.Errorf("blocks=%d lines=%d restore stats drifted:\n got  %+v\n want %+v", g.blocks, g.lines, got, g.restore)
		}
	}
}

// TestWalkMatchesSlowPath drives two engines — one with the sequential-walk
// fast paths disabled — through identical operation mixes and demands
// bit-identical Stats after every operation, identical read results, and
// identical DRAM images after every flush. This is the tentpole's "Stats
// counts must not change" assertion in its strongest form.
func TestWalkMatchesSlowPath(t *testing.T) {
	const blocks = 64
	for _, lines := range []int{4, 8, 32, 256} {
		memA := dram.New(dram.Skylake8GB())
		memB := dram.New(dram.Skylake8GB())
		a, err := New(memA, 0x1000_0000, blocks, testKey, lines)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(memB, 0x1000_0000, blocks, testKey, lines)
		if err != nil {
			t.Fatal(err)
		}
		b.noWalk = true
		a.ResetStats()
		b.ResetStats()

		rng := rand.New(rand.NewSource(int64(lines)))
		var bufA, bufB [BlockSize]byte
		for op := 0; op < 4000; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // sequential-ish write runs exercise the walk
				i := rng.Intn(blocks)
				data := block(byte(op))
				if err := a.WriteBlock(i, data); err != nil {
					t.Fatal(err)
				}
				if err := b.WriteBlock(i, data); err != nil {
					t.Fatal(err)
				}
				if rng.Intn(3) == 0 { // extend into a run
					for j := i + 1; j < blocks && j < i+rng.Intn(12); j++ {
						data := block(byte(op + j))
						if err := a.WriteBlock(j, data); err != nil {
							t.Fatal(err)
						}
						if err := b.WriteBlock(j, data); err != nil {
							t.Fatal(err)
						}
					}
				}
			case k < 8: // reads (skip never-written errors symmetrically)
				i := rng.Intn(blocks)
				errA := a.ReadBlockInto(i, bufA[:])
				errB := b.ReadBlockInto(i, bufB[:])
				if (errA == nil) != (errB == nil) {
					t.Fatalf("lines=%d op=%d read %d: walk err=%v, slow err=%v", lines, op, i, errA, errB)
				}
				if errA == nil && bufA != bufB {
					t.Fatalf("lines=%d op=%d read %d: plaintext diverged", lines, op, i)
				}
			default: // flush and compare full DRAM images
				if err := a.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := b.Flush(); err != nil {
					t.Fatal(err)
				}
				total := int(a.Layout().TotalBytes())
				rawA, err := memA.Read(a.Layout().Base, total)
				if err != nil {
					t.Fatal(err)
				}
				rawB, err := memB.Read(b.Layout().Base, total)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rawA, rawB) {
					t.Fatalf("lines=%d op=%d: DRAM images diverged after flush", lines, op)
				}
			}
			sa, sb := a.Stats(), b.Stats()
			// DRAM traffic is priced identically on both modules, so strip
			// the module-level counters before comparing.
			if sa != sb {
				t.Fatalf("lines=%d op=%d: stats diverged:\n walk %+v\n slow %+v", lines, op, sa, sb)
			}
		}
	}
}

// TestMacCtxMatchesCryptoHMAC checks the reusable clone-and-reset HMAC
// context against crypto/hmac across message shapes and both code paths
// (marshaled-state restore and the pad-rewrite fallback).
func TestMacCtxMatchesCryptoHMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, keyLen := range []int{16, 32, sha256.BlockSize, sha256.BlockSize + 17} {
		key := make([]byte, keyLen)
		rng.Read(key)
		var m macCtx
		m.init(key)
		if m.innerU == nil {
			t.Fatalf("sha256 digest lost state marshaling; fallback would be silently slower")
		}
		var fb macCtx
		fb.init(key)
		fb.innerU, fb.outerU = nil, nil // force the pad-rewrite fallback
		for trial := 0; trial < 64; trial++ {
			msg := make([]byte, rng.Intn(200))
			rng.Read(msg)
			ref := hmac.New(sha256.New, key)
			ref.Write(msg)
			want := ref.Sum(nil)
			for name, ctx := range map[string]*macCtx{"marshaled": &m, "fallback": &fb} {
				ctx.begin()
				// Stream in two pieces to exercise chunked writes.
				ctx.write(msg[:len(msg)/2])
				ctx.write(msg[len(msg)/2:])
				got := ctx.finishTrunc()
				if !bytes.Equal(got[:], want[:macSize]) {
					t.Fatalf("%s keyLen=%d trial=%d: macCtx %x != hmac %x", name, keyLen, trial, got, want[:macSize])
				}
			}
		}
	}
}

// TestXORKeyStreamMatchesStdlibCTR checks the engine's in-place CTR
// implementation against cipher.NewCTR for the exact IV construction the
// datapath uses.
func TestXORKeyStreamMatchesStdlibCTR(t *testing.T) {
	_, e := newEngine(t, 8)
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, BlockSize)
	want := make([]byte, BlockSize)
	got := make([]byte, BlockSize)
	for trial := 0; trial < 256; trial++ {
		rng.Read(src)
		blockIdx := rng.Intn(1 << 20)
		version := rng.Uint64()
		var iv [16]byte
		binary.LittleEndian.PutUint64(iv[0:8], uint64(blockIdx))
		binary.LittleEndian.PutUint64(iv[8:16], version)
		cipher.NewCTR(e.aesBlock, iv[:]).XORKeyStream(want, src)
		e.xorKeyStream(got, src, blockIdx, version)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (block=%d version=%d): xorKeyStream diverged from cipher.NewCTR", trial, blockIdx, version)
		}
	}
}

// TestReadBlockIntoShortDst covers the in-place API's size contract.
func TestReadBlockIntoShortDst(t *testing.T) {
	_, e := newEngine(t, 4)
	if err := e.WriteBlock(0, block(1)); err != nil {
		t.Fatal(err)
	}
	var buf [BlockSize]byte
	if err := e.ReadBlockInto(0, buf[:BlockSize-1]); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := e.ReadBlockInto(0, buf[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ReadRegionInto(buf[:], 2*BlockSize); err == nil {
		t.Fatal("short region destination accepted")
	}
}
