package mee_test

import (
	"bytes"
	"fmt"
	"log"

	"odrips/internal/dram"
	"odrips/internal/mee"
)

// Example walks the §6.2 context path: encrypt the processor context into
// a protected DRAM region, power-cycle through self-refresh with only the
// sealed engine state surviving (the Boot SRAM payload), and restore with
// verification — then show an attacker's bit flip being refused.
func Example() {
	mem := dram.New(dram.Skylake8GB())
	var key [32]byte
	key[0] = 0x42

	eng, err := mee.New(mem, 0x1000_0000, 64, key, mee.DefaultCacheLines)
	if err != nil {
		log.Fatal(err)
	}
	context := bytes.Repeat([]byte("processor-context!"), 256)[:64*mee.BlockSize]
	if err := eng.WriteRegion(context); err != nil {
		log.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	sealed := eng.ExportState() // lives in the Boot SRAM across DRIPS
	fmt.Printf("sealed engine state: %d bytes\n", len(sealed))

	// DRIPS: DRAM self-refreshes, the engine powers off.
	if err := mem.SetState(dram.SelfRefresh); err != nil {
		log.Fatal(err)
	}
	if err := mem.SetState(dram.Active); err != nil {
		log.Fatal(err)
	}

	cold, err := mee.ImportState(mem, sealed, mee.DefaultCacheLines)
	if err != nil {
		log.Fatal(err)
	}
	back, err := cold.ReadRegion(len(context))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context restored intact: %v\n", bytes.Equal(back, context))

	// An attacker flips one ciphertext bit; the next restore fails.
	blk, _ := mem.Read(0x1000_0000, mee.BlockSize)
	blk[3] ^= 1
	if err := mem.Write(0x1000_0000, blk); err != nil {
		log.Fatal(err)
	}
	_, err = cold.ReadBlock(0)
	fmt.Printf("tamper detected: %v\n", err != nil)
	// Output:
	// sealed engine state: 96 bytes
	// context restored intact: true
	// tamper detected: true
}
