package mee

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"odrips/internal/dram"
)

var testKey = [32]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

func newEngine(t testing.TB, dataBlocks int) (*dram.Module, *Engine) {
	return newEngineLines(t, dataBlocks, 32)
}

func newEngineLines(t testing.TB, dataBlocks, lines int) (*dram.Module, *Engine) {
	t.Helper()
	mem := dram.New(dram.Skylake8GB())
	e, err := New(mem, 0x1000_0000, dataBlocks, testKey, lines)
	if err != nil {
		t.Fatal(err)
	}
	e.ResetStats()
	return mem, e
}

func block(seed byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = seed ^ byte(i*31)
	}
	return b
}

func TestLayoutGeometry(t *testing.T) {
	// 200 KiB context = 3200 data blocks.
	l, err := PlanLayout(0, 3200)
	if err != nil {
		t.Fatal(err)
	}
	if l.L0Blocks != (3200+2)/3 {
		t.Fatalf("L0 blocks = %d", l.L0Blocks)
	}
	// Tree must shrink by 7x per level down to a single node.
	prev := l.L0Blocks
	for i, n := range l.LevelNodes {
		want := (prev + nodeArity - 1) / nodeArity
		if n != want {
			t.Fatalf("level %d has %d nodes, want %d", i+1, n, want)
		}
		prev = n
	}
	if l.LevelNodes[len(l.LevelNodes)-1] != 1 {
		t.Fatal("top level is not a single node")
	}
	// Metadata overhead should be modest (~35% for this geometry).
	overhead := float64(l.MetadataBytes()) / float64(3200*BlockSize)
	if overhead < 0.2 || overhead > 0.6 {
		t.Fatalf("metadata overhead = %.2f", overhead)
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := PlanLayout(0, 0); err == nil {
		t.Fatal("zero-block layout accepted")
	}
	if _, err := PlanLayout(13, 10); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, e := newEngine(t, 64)
	for i := 0; i < 64; i++ {
		if err := e.WriteBlock(i, block(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		got, err := e.ReadBlock(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, block(byte(i))) {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	mem, e := newEngine(t, 4)
	pt := block(0x42)
	if err := e.WriteBlock(0, pt); err != nil {
		t.Fatal(err)
	}
	ct, err := mem.Read(e.Layout().dataAddr(0), BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("DRAM holds plaintext")
	}
	// Same plaintext re-written gets a fresh version, hence fresh
	// ciphertext (no deterministic encryption leak).
	if err := e.WriteBlock(0, pt); err != nil {
		t.Fatal(err)
	}
	ct2, _ := mem.Read(e.Layout().dataAddr(0), BlockSize)
	if bytes.Equal(ct, ct2) {
		t.Fatal("re-encryption reused the keystream")
	}
}

func TestUnwrittenBlockRejected(t *testing.T) {
	_, e := newEngine(t, 4)
	if _, err := e.ReadBlock(2); err == nil {
		t.Fatal("read of never-written block succeeded")
	}
}

func TestTamperCiphertextDetected(t *testing.T) {
	mem, e := newEngine(t, 4)
	if err := e.WriteBlock(1, block(7)); err != nil {
		t.Fatal(err)
	}
	addr := e.Layout().dataAddr(1)
	ct, _ := mem.Read(addr, BlockSize)
	ct[5] ^= 0x01
	if err := mem.Write(addr, ct); err != nil {
		t.Fatal(err)
	}
	_, err := e.ReadBlock(1)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered ciphertext read: %v, want IntegrityError", err)
	}
}

func TestTamperMetadataDetected(t *testing.T) {
	mem, e := newEngine(t, 16)
	for i := 0; i < 16; i++ {
		if err := e.WriteBlock(i, block(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt an L0 metadata block in DRAM; a cold engine must refuse it.
	addr := e.Layout().l0Addr(0)
	raw, _ := mem.Read(addr, BlockSize)
	raw[3] ^= 0x80
	if err := mem.Write(addr, raw); err != nil {
		t.Fatal(err)
	}
	e2, err := ImportState(mem, e.ExportState(), 32)
	if err != nil {
		t.Fatal(err)
	}
	_, err = e2.ReadBlock(0)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered metadata read: %v, want IntegrityError", err)
	}
}

func TestReplayOldCiphertextDetected(t *testing.T) {
	mem, e := newEngine(t, 4)
	if err := e.WriteBlock(0, block(1)); err != nil {
		t.Fatal(err)
	}
	addr := e.Layout().dataAddr(0)
	old, _ := mem.Read(addr, BlockSize)
	if err := e.WriteBlock(0, block(2)); err != nil {
		t.Fatal(err)
	}
	// Attacker restores the stale ciphertext.
	if err := mem.Write(addr, old); err != nil {
		t.Fatal(err)
	}
	_, err := e.ReadBlock(0)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("replayed ciphertext read: %v, want IntegrityError", err)
	}
}

// TestFullRegionReplayDetected snapshots the whole region (data AND
// metadata), performs another write, restores the snapshot, and verifies
// the on-chip root counter catches the rollback — the freshness property
// that makes DRAM a safe home for the processor context.
func TestFullRegionReplayDetected(t *testing.T) {
	mem, e := newEngine(t, 8)
	for i := 0; i < 8; i++ {
		if err := e.WriteBlock(i, block(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	l := e.Layout()
	snapshot, err := mem.Read(l.Base, int(l.TotalBytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Legitimate update after the snapshot.
	if err := e.WriteBlock(3, block(0xEE)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// Attacker rolls the entire region back.
	if err := mem.Write(l.Base, snapshot); err != nil {
		t.Fatal(err)
	}
	_, err = e.ReadBlock(3)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("full-region rollback read: %v, want IntegrityError", err)
	}
}

func TestStateRoundTripAcrossSelfRefresh(t *testing.T) {
	mem, e := newEngine(t, 32)
	payload := make([]byte, 32*BlockSize)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := e.WriteRegion(payload); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	state := e.ExportState()
	if len(state) != StateSize {
		t.Fatalf("state size = %d, want %d", len(state), StateSize)
	}
	// DRIPS: engine powered off (dropped), DRAM in self-refresh.
	if err := mem.SetState(dram.SelfRefresh); err != nil {
		t.Fatal(err)
	}
	if err := mem.SetState(dram.Active); err != nil {
		t.Fatal(err)
	}
	e2, err := ImportState(mem, state, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.ReadRegion(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("region mismatch after power cycle")
	}
}

func TestCorruptStateBlobRejected(t *testing.T) {
	_, e := newEngine(t, 4)
	state := e.ExportState()
	state[10] ^= 1
	if _, err := ImportState(dram.New(dram.Skylake8GB()), state, 32); err == nil {
		t.Fatal("corrupt state blob accepted")
	}
	if _, err := ImportState(dram.New(dram.Skylake8GB()), state[:10], 32); err == nil {
		t.Fatal("truncated state blob accepted")
	}
}

func TestBoundsAndSizes(t *testing.T) {
	_, e := newEngine(t, 4)
	if err := e.WriteBlock(4, block(0)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := e.WriteBlock(-1, block(0)); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := e.WriteBlock(0, []byte{1, 2}); err == nil {
		t.Fatal("short plaintext accepted")
	}
	if _, err := e.ReadBlock(99); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := e.WriteRegion(make([]byte, 5*BlockSize)); err == nil {
		t.Fatal("oversized region write accepted")
	}
	if _, err := e.ReadRegion(5 * BlockSize); err == nil {
		t.Fatal("oversized region read accepted")
	}
}

func TestContextTrafficMatchesPaperScale(t *testing.T) {
	// The paper's ~200 KB context through a DDR3L-1600 module should cost
	// ~18 us to save and ~13 us to restore (§6.3). Check the traffic the
	// engine generates lands in that range when priced by the module.
	mem, e := newEngineLines(t, 3200, DefaultCacheLines) // 200 KiB
	payload := make([]byte, 3200*BlockSize)
	rand.New(rand.NewSource(7)).Read(payload)

	e.ResetStats()
	if err := e.WriteRegion(payload); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	ws := e.Stats()
	writeTime := mem.TransferTime(int(ws.TotalBlocks())*BlockSize, true)
	if ms := writeTime.Microseconds(); ms < 12 || ms > 26 {
		t.Fatalf("context save = %.1f us (traffic %d blocks), want ~18", ms, ws.TotalBlocks())
	}

	// Cold restore.
	e2, err := ImportState(mem, e.ExportState(), 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e2.ReadRegion(len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("restore mismatch")
	}
	rs := e2.Stats()
	readTime := mem.TransferTime(int(rs.TotalBlocks())*BlockSize, false)
	if ms := readTime.Microseconds(); ms < 9 || ms > 20 {
		t.Fatalf("context restore = %.1f us (traffic %d blocks), want ~13", ms, rs.TotalBlocks())
	}
	if rs.TotalBlocks() >= ws.TotalBlocks() {
		t.Fatal("restore traffic not below save traffic")
	}
	// The MEE cache must be doing real work.
	if rs.CacheHits == 0 || ws.CacheHits == 0 {
		t.Fatal("MEE cache never hit")
	}
}

// Property: random interleavings of writes and reads always round-trip, and
// reads never succeed with wrong data.
func TestRandomAccessProperty(t *testing.T) {
	f := func(ops []struct {
		Idx   uint8
		Seed  byte
		Write bool
	}) bool {
		_, e := newEngine(t, 16)
		shadow := make(map[int][]byte)
		for _, op := range ops {
			i := int(op.Idx % 16)
			if op.Write {
				data := block(op.Seed)
				if err := e.WriteBlock(i, data); err != nil {
					return false
				}
				shadow[i] = data
			} else {
				got, err := e.ReadBlock(i)
				want, written := shadow[i]
				if !written {
					if err == nil {
						return false
					}
					continue
				}
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: tampering any single byte of the region (data or metadata,
// after flush) makes some read fail.
func TestTamperAnywhereProperty(t *testing.T) {
	f := func(offSeed uint16) bool {
		mem, e := newEngine(t, 8)
		for i := 0; i < 8; i++ {
			if err := e.WriteBlock(i, block(byte(i))); err != nil {
				return false
			}
		}
		if err := e.Flush(); err != nil {
			return false
		}
		l := e.Layout()
		off := uint64(offSeed) % l.TotalBytes()
		blockAddr := l.Base + off/BlockSize*BlockSize
		raw, err := mem.Read(blockAddr, BlockSize)
		if err != nil {
			return false
		}
		raw[off%BlockSize] ^= 0xA5
		if err := mem.Write(blockAddr, raw); err != nil {
			return false
		}
		cold, err := ImportState(mem, e.ExportState(), 32)
		if err != nil {
			return false
		}
		// At least one block read must fail.
		for i := 0; i < 8; i++ {
			if _, err := cold.ReadBlock(i); err != nil {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBlock(b *testing.B) {
	_, e := newEngine(b, 3200)
	data := block(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.WriteBlock(i%3200, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContextSave200KB(b *testing.B) {
	payload := make([]byte, 3200*BlockSize)
	rand.New(rand.NewSource(1)).Read(payload)
	_, e := newEngine(b, 3200)
	// Warm once: materialize the DRAM blocks and the metadata cache so the
	// timed iterations measure the steady-state save that every repeated
	// C10 cycle performs (the first-ever save also pays engine format).
	if err := e.WriteRegion(payload); err != nil {
		b.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.WriteRegion(payload); err != nil {
			b.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: arbitrary interleavings of writes, flushes, and power cycles
// (export state, DRAM self-refresh round trip, cold import) preserve every
// committed block and never accept a stale one.
func TestPowerCycleFuzzProperty(t *testing.T) {
	f := func(ops []uint8, seed byte) bool {
		mem := dram.New(dram.Skylake8GB())
		e, err := New(mem, 0x2000_0000, 24, testKey, 16)
		if err != nil {
			return false
		}
		shadow := make(map[int][]byte)
		for i, op := range ops {
			switch op % 4 {
			case 0, 1: // write
				idx := int(op/4) % 24
				data := block(seed ^ byte(i))
				if err := e.WriteBlock(idx, data); err != nil {
					return false
				}
				shadow[idx] = data
			case 2: // read+verify a random committed block
				idx := int(op/4) % 24
				want, ok := shadow[idx]
				got, err := e.ReadBlock(idx)
				if !ok {
					if err == nil {
						return false
					}
					continue
				}
				if err != nil || !bytes.Equal(got, want) {
					return false
				}
			case 3: // power cycle: flush, export, self-refresh, cold import
				if err := e.Flush(); err != nil {
					return false
				}
				state := e.ExportState()
				if err := mem.SetState(dram.SelfRefresh); err != nil {
					return false
				}
				if err := mem.SetState(dram.Active); err != nil {
					return false
				}
				e, err = ImportState(mem, state, 16)
				if err != nil {
					return false
				}
			}
		}
		// Final audit: every committed block reads back exactly.
		for idx, want := range shadow {
			got, err := e.ReadBlock(idx)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
