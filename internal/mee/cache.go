package mee

// DefaultCacheLines is the standard MEE metadata cache size (256 lines of
// 64 B = 16 KiB). With this capacity the 200 KB context save prices out at
// ~19 us and the cold restore at ~14 us on DDR3L-1600, matching §6.3.
const DefaultCacheLines = 256

// metaCache is the MEE metadata cache: a direct-mapped, write-back cache of
// 64-byte metadata blocks keyed by DRAM address. It exists to absorb
// counter-tree traffic (Gueron §5.3); its hit rate is what keeps the
// context-transfer overhead near the paper's measured 18/13 µs.
type metaCache struct {
	lines []cacheLine

	hits, misses, writebacks uint64
}

type cacheLine struct {
	valid bool
	dirty bool
	addr  uint64
	data  [BlockSize]byte
}

func newMetaCache(lines int) *metaCache {
	if lines <= 0 {
		lines = 1
	}
	return &metaCache{lines: make([]cacheLine, lines)}
}

func (c *metaCache) index(addr uint64) int {
	return int((addr / BlockSize) % uint64(len(c.lines)))
}

// lookup returns the cached copy of addr, or nil.
func (c *metaCache) lookup(addr uint64) *cacheLine {
	ln := &c.lines[c.index(addr)]
	if ln.valid && ln.addr == addr {
		c.hits++
		return ln
	}
	c.misses++
	return nil
}

// fill installs data for addr, returning any dirty victim that must be
// written back (victim.valid == false when no write-back is needed).
func (c *metaCache) fill(addr uint64, data []byte) (victim cacheLine) {
	ln := &c.lines[c.index(addr)]
	if ln.valid && ln.dirty && ln.addr != addr {
		victim = *ln
		c.writebacks++
	}
	ln.valid = true
	ln.dirty = false
	ln.addr = addr
	copy(ln.data[:], data)
	return victim
}

// flushAll returns all dirty lines and invalidates the cache (engine
// power-down path). The caller writes the returned lines back to DRAM.
func (c *metaCache) flushAll() []cacheLine {
	var dirty []cacheLine
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.dirty {
			dirty = append(dirty, *ln)
			c.writebacks++
		}
		ln.valid = false
		ln.dirty = false
	}
	return dirty
}

// stats returns hits, misses, writebacks.
func (c *metaCache) stats() (hits, misses, writebacks uint64) {
	return c.hits, c.misses, c.writebacks
}
