package mee

// DefaultCacheLines is the standard MEE metadata cache size (256 lines of
// 64 B = 16 KiB). With this capacity the 200 KB context save prices out at
// ~19 us and the cold restore at ~14 us on DDR3L-1600, matching §6.3.
const DefaultCacheLines = 256

// metaCache is the MEE metadata cache: a direct-mapped, write-back cache of
// 64-byte metadata blocks keyed by DRAM address. It exists to absorb
// counter-tree traffic (Gueron §5.3); its hit rate is what keeps the
// context-transfer overhead near the paper's measured 18/13 µs.
type metaCache struct {
	lines []cacheLine

	hits, misses, writebacks uint64

	// gen counts line mutations (fills, installs, flushes). The engine's
	// sequential-walk fast paths stamp it when they capture a line pointer
	// and bail out of the fast path once it moves.
	gen uint64
}

type cacheLine struct {
	valid bool
	dirty bool
	addr  uint64
	data  [BlockSize]byte

	// Deferred-seal bookkeeping (engine metadata, not modeled bytes). A
	// line's MAC field is only observable when the line leaves the cache
	// for DRAM, and its covering counter cannot change without the line
	// itself being re-touched (any write through the node re-installs it),
	// so the engine seals lazily: sealed marks whether data[56:64] holds a
	// valid MAC, parentCtr records the freshness counter to seal under,
	// and lvl/idx identify the node for the MAC's level/index binding.
	sealed    bool
	parentCtr uint64
	lvl, idx  int
}

func newMetaCache(lines int) *metaCache {
	if lines <= 0 {
		lines = 1
	}
	return &metaCache{lines: make([]cacheLine, lines)}
}

func (c *metaCache) index(addr uint64) int {
	return int((addr / BlockSize) % uint64(len(c.lines)))
}

// lookup returns the cached copy of addr, or nil, counting a hit or miss.
func (c *metaCache) lookup(addr uint64) *cacheLine {
	ln := &c.lines[c.index(addr)]
	if ln.valid && ln.addr == addr {
		c.hits++
		return ln
	}
	c.misses++
	return nil
}

// peek is lookup without touching the hit/miss counters. The engine's
// sequential-walk fast path uses it to test residency and to install
// deferred path copies whose lookups were already accounted for.
func (c *metaCache) peek(addr uint64) *cacheLine {
	ln := &c.lines[c.index(addr)]
	if ln.valid && ln.addr == addr {
		return ln
	}
	return nil
}

// credit adds n cache hits without performing lookups. The sequential-walk
// fast path skips lookups it has proven would hit; crediting them keeps the
// Stats counters bit-identical to the unoptimized walk.
func (c *metaCache) credit(n uint64) { c.hits += n }

// fill installs data for addr, returning any dirty victim that must be
// written back (victim.valid == false when no write-back is needed). The
// lvl/idx/parentCtr/sealed arguments carry the deferred-seal bookkeeping.
func (c *metaCache) fill(addr uint64, data []byte, lvl, idx int, parentCtr uint64, sealed bool) (victim cacheLine) {
	ln := &c.lines[c.index(addr)]
	if ln.valid && ln.dirty && ln.addr != addr {
		victim = *ln
		c.writebacks++
	}
	ln.valid = true
	ln.dirty = false
	ln.addr = addr
	copy(ln.data[:], data)
	ln.lvl, ln.idx = lvl, idx
	ln.parentCtr = parentCtr
	ln.sealed = sealed
	c.gen++
	return victim
}

// flushDirty invokes fn on every dirty line in index order, then
// invalidates the whole cache (engine power-down path). The caller must
// have sealed all dirty lines first. Write-back accounting happens up
// front so the counters match the historical collect-then-write behavior
// even if fn fails mid-way.
func (c *metaCache) flushDirty(fn func(addr uint64, data []byte) error) error {
	for i := range c.lines {
		if ln := &c.lines[i]; ln.valid && ln.dirty {
			c.writebacks++
		}
	}
	var firstErr error
	for i := range c.lines {
		ln := &c.lines[i]
		if firstErr == nil && ln.valid && ln.dirty {
			firstErr = fn(ln.addr, ln.data[:])
		}
		ln.valid = false
		ln.dirty = false
	}
	c.gen++
	return firstErr
}

// stats returns hits, misses, writebacks.
func (c *metaCache) stats() (hits, misses, writebacks uint64) {
	return c.hits, c.misses, c.writebacks
}
