//go:build !race

// Alloc-regression guards for the zero-allocation datapath. They are
// excluded under the race detector, whose instrumentation inserts its own
// allocations; the plain `go test` tier (tier 1 and the CI bench smoke)
// runs them.

package mee

import (
	"math/rand"
	"testing"

	"odrips/internal/dram"
)

func warmEngine(t *testing.T, blocks int) (*dram.Module, *Engine, []byte) {
	t.Helper()
	mem, e := newEngine(t, blocks)
	payload := make([]byte, blocks*BlockSize)
	rand.New(rand.NewSource(3)).Read(payload)
	if err := e.WriteRegion(payload); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return mem, e, payload
}

// TestWriteBlockAllocFree locks in zero allocations on the steady-state
// write path (reused HMAC state, engine scratch, in-place DRAM blocks).
func TestWriteBlockAllocFree(t *testing.T) {
	_, e, _ := warmEngine(t, 64)
	data := block(0x42)
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		if err := e.WriteBlock(i%64, data); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("WriteBlock allocates %.1f/op in steady state, want 0", n)
	}
}

// TestReadBlockIntoAllocFree locks in zero allocations on the in-place
// read path.
func TestReadBlockIntoAllocFree(t *testing.T) {
	_, e, _ := warmEngine(t, 64)
	var buf [BlockSize]byte
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		if err := e.ReadBlockInto(i%64, buf[:]); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("ReadBlockInto allocates %.1f/op in steady state, want 0", n)
	}
}

// TestContextSaveAllocFree locks in zero allocations for a full warm
// 200 KB-scale save (WriteRegion + Flush), the per-cycle hot loop of the
// CTX-SGX-DRAM flow.
func TestContextSaveAllocFree(t *testing.T) {
	_, e, payload := warmEngine(t, 3200)
	if n := testing.AllocsPerRun(5, func() {
		if err := e.WriteRegion(payload); err != nil {
			t.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm WriteRegion+Flush allocates %.1f/op, want 0", n)
	}
}

// TestContextRestoreAllocFree locks in zero allocations for a full warm
// region read through ReadRegionInto.
func TestContextRestoreAllocFree(t *testing.T) {
	_, e, payload := warmEngine(t, 3200)
	dst := make([]byte, 3200*BlockSize)
	if n := testing.AllocsPerRun(5, func() {
		if _, err := e.ReadRegionInto(dst, len(payload)); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm ReadRegionInto allocates %.1f/op, want 0", n)
	}
}
