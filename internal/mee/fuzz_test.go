package mee

import (
	"testing"

	"odrips/internal/dram"
)

// FuzzImportState hardens the Boot-SRAM-resident engine state parser: a
// corrupted blob must be rejected with an error, never panic, and never
// produce an engine that silently accepts a tampered region.
func FuzzImportState(f *testing.F) {
	mem := dram.New(dram.Skylake8GB())
	eng, err := New(mem, 0x1000_0000, 8, testKey, 16)
	if err != nil {
		f.Fatal(err)
	}
	if err := eng.WriteBlock(0, block(1)); err != nil {
		f.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		f.Fatal(err)
	}
	good := eng.ExportState()
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:StateSize/2])
	for _, off := range []int{0, 8, 40, StateSize - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x80
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		m := dram.New(dram.Skylake8GB())
		e, err := ImportState(m, blob, 16)
		if err != nil {
			return
		}
		// Only the untouched good blob may be accepted: the HMAC covers
		// every byte, so any mutation must fail.
		if string(blob) != string(good) {
			t.Fatalf("mutated state blob accepted")
		}
		_ = e
	})
}

// FuzzReadAfterCorruption feeds random single-block corruption into a
// protected region and checks the engine either errors or returns the
// original plaintext — never garbage.
func FuzzReadAfterCorruption(f *testing.F) {
	f.Add(uint16(0), byte(1))
	f.Add(uint16(100), byte(0x80))
	f.Fuzz(func(t *testing.T, offSeed uint16, flip byte) {
		if flip == 0 {
			return
		}
		mem := dram.New(dram.Skylake8GB())
		e, err := New(mem, 0, 6, testKey, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[int][]byte)
		for i := 0; i < 6; i++ {
			data := block(byte(i * 7))
			if err := e.WriteBlock(i, data); err != nil {
				t.Fatal(err)
			}
			want[i] = data
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		l := e.Layout()
		off := uint64(offSeed) % l.TotalBytes()
		addr := off / BlockSize * BlockSize
		raw, err := mem.Read(addr, BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		raw[off%BlockSize] ^= flip
		if err := mem.Write(addr, raw); err != nil {
			t.Fatal(err)
		}
		cold, err := ImportState(mem, e.ExportState(), 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			got, err := cold.ReadBlock(i)
			if err != nil {
				continue // rejection is always acceptable
			}
			if string(got) != string(want[i]) {
				t.Fatalf("block %d read garbage after corruption at %#x", i, off)
			}
		}
	})
}
