package mee

import (
	"bytes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"odrips/internal/dram"
)

// FuzzImportState hardens the Boot-SRAM-resident engine state parser: a
// corrupted blob must be rejected with an error, never panic, and never
// produce an engine that silently accepts a tampered region.
func FuzzImportState(f *testing.F) {
	mem := dram.New(dram.Skylake8GB())
	eng, err := New(mem, 0x1000_0000, 8, testKey, 16)
	if err != nil {
		f.Fatal(err)
	}
	if err := eng.WriteBlock(0, block(1)); err != nil {
		f.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		f.Fatal(err)
	}
	good := eng.ExportState()
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:StateSize/2])
	for _, off := range []int{0, 8, 40, StateSize - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x80
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		m := dram.New(dram.Skylake8GB())
		e, err := ImportState(m, blob, 16)
		if err != nil {
			return
		}
		// Only the untouched good blob may be accepted: the HMAC covers
		// every byte, so any mutation must fail.
		if string(blob) != string(good) {
			t.Fatalf("mutated state blob accepted")
		}
		_ = e
	})
}

// FuzzReadAfterCorruption feeds random single-block corruption into a
// protected region and checks the engine either errors or returns the
// original plaintext — never garbage.
func FuzzReadAfterCorruption(f *testing.F) {
	f.Add(uint16(0), byte(1))
	f.Add(uint16(100), byte(0x80))
	f.Fuzz(func(t *testing.T, offSeed uint16, flip byte) {
		if flip == 0 {
			return
		}
		mem := dram.New(dram.Skylake8GB())
		e, err := New(mem, 0, 6, testKey, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[int][]byte)
		for i := 0; i < 6; i++ {
			data := block(byte(i * 7))
			if err := e.WriteBlock(i, data); err != nil {
				t.Fatal(err)
			}
			want[i] = data
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		l := e.Layout()
		off := uint64(offSeed) % l.TotalBytes()
		addr := off / BlockSize * BlockSize
		raw, err := mem.Read(addr, BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		raw[off%BlockSize] ^= flip
		if err := mem.Write(addr, raw); err != nil {
			t.Fatal(err)
		}
		cold, err := ImportState(mem, e.ExportState(), 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			got, err := cold.ReadBlock(i)
			if err != nil {
				continue // rejection is always acceptable
			}
			if string(got) != string(want[i]) {
				t.Fatalf("block %d read garbage after corruption at %#x", i, off)
			}
		}
	})
}

// referenceReadBlock is a deliberately naive, allocation-heavy read of
// block i straight from flushed DRAM: fresh crypto/hmac and cipher.NewCTR
// objects, fresh buffers, no engine scratch, no cache. It shares nothing
// with the in-place datapath except the key material.
func referenceReadBlock(e *Engine, mem *dram.Module, i int) ([]byte, error) {
	l0Raw, err := mem.Read(e.layout.l0Addr(i/entriesPerL0), BlockSize)
	if err != nil {
		return nil, err
	}
	version, wantMAC := l0Entry(l0Raw, i%entriesPerL0)
	if version == 0 {
		return nil, nil // never written
	}
	ct, err := mem.Read(e.layout.dataAddr(i), BlockSize)
	if err != nil {
		return nil, err
	}
	h := hmac.New(sha256.New, e.macKey[:])
	h.Write([]byte("data"))
	h.Write(ct)
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], uint64(i))
	h.Write(u[:])
	binary.LittleEndian.PutUint64(u[:], version)
	h.Write(u[:])
	if !bytes.Equal(h.Sum(nil)[:macSize], wantMAC) {
		return nil, &IntegrityError{What: "reference data MAC", Addr: e.layout.dataAddr(i)}
	}
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:8], uint64(i))
	binary.LittleEndian.PutUint64(iv[8:16], version)
	pt := make([]byte, BlockSize)
	cipher.NewCTR(e.aesBlock, iv[:]).XORKeyStream(pt, ct)
	return pt, nil
}

// FuzzReadInPlaceDifferential drives the in-place read path (shared
// scratch buffers, sequential-walk L0 reuse) against both a copy-based
// slow-path engine and a from-scratch stdlib reference decode, under
// fuzzer-chosen write/read interleavings. Any scratch-aliasing or
// walk-reuse corruption shows up as a three-way mismatch.
func FuzzReadInPlaceDifferential(f *testing.F) {
	f.Add([]byte{0x00, 0x51, 0x12, 0xa3, 0x64, 0xf5}, byte(1))
	f.Add([]byte{0x10, 0x11, 0x12, 0x90, 0x91, 0x92, 0x93}, byte(0x7f))
	f.Fuzz(func(t *testing.T, script []byte, seed byte) {
		const blocks = 12
		memA := dram.New(dram.Skylake8GB())
		memB := dram.New(dram.Skylake8GB())
		a, err := New(memA, 0x1000_0000, blocks, testKey, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(memB, 0x1000_0000, blocks, testKey, 8)
		if err != nil {
			t.Fatal(err)
		}
		b.noWalk = true // copy-based slow path throughout
		shadow := make(map[int][]byte)
		var inPlace [BlockSize]byte // one buffer reused across ALL reads
		for op, code := range script {
			i := int(code) % blocks
			if (code>>4)&1 == 0 { // write
				data := block(seed ^ byte(op))
				if err := a.WriteBlock(i, data); err != nil {
					t.Fatal(err)
				}
				if err := b.WriteBlock(i, data); err != nil {
					t.Fatal(err)
				}
				shadow[i] = data
				continue
			}
			errA := a.ReadBlockInto(i, inPlace[:])
			refB, errB := b.ReadBlock(i)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("op %d block %d: in-place err=%v, copy-based err=%v", op, i, errA, errB)
			}
			if errA != nil {
				if shadow[i] != nil {
					t.Fatalf("op %d: written block %d failed to read: %v", op, i, errA)
				}
				continue
			}
			if !bytes.Equal(inPlace[:], refB) {
				t.Fatalf("op %d block %d: in-place read diverged from copy-based read", op, i)
			}
			if !bytes.Equal(inPlace[:], shadow[i]) {
				t.Fatalf("op %d block %d: read diverged from written plaintext", op, i)
			}
		}
		// Flush and reference-decode every written block with stdlib
		// primitives straight from DRAM bytes.
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		for i, want := range shadow {
			ref, err := referenceReadBlock(a, memA, i)
			if err != nil {
				t.Fatalf("reference read of block %d: %v", i, err)
			}
			if !bytes.Equal(ref, want) {
				t.Fatalf("block %d: reference decode of flushed DRAM diverged from plaintext", i)
			}
		}
	})
}
