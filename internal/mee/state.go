package mee

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"

	"odrips/internal/dram"
)

// stateMagic identifies a serialized engine state blob.
const stateMagic = 0x4F44524D45455631 // "ODRMEEV1"

// StateSize is the size of the serialized on-chip engine state in bytes.
// It is what ODRIPS must keep in the Boot SRAM (together with PMU and
// memory-controller state) across the power-down: key material, the
// freshness root, and the region geometry, sealed with an integrity tag.
const StateSize = 8 + 32 + 8 + 8 + 8 + 32

// ExportState serializes the engine's on-chip state: master key, root
// counter, and layout. The blob is bound by an HMAC so Boot SRAM
// corruption is detected at import.
//
// The cache is NOT exported: it is power-gated in DRIPS, which is why
// restore traffic pays cold metadata misses (§6.3's 13 µs read latency).
func (e *Engine) ExportState() []byte {
	buf := make([]byte, 0, StateSize)
	buf = binary.LittleEndian.AppendUint64(buf, stateMagic)
	buf = append(buf, e.masterKey[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, e.rootCounter)
	buf = binary.LittleEndian.AppendUint64(buf, e.layout.Base)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.layout.DataBlocks))
	h := hmac.New(sha256.New, e.masterKey[:])
	h.Write(buf)
	return h.Sum(buf)
}

// ImportState reconstructs an engine from a state blob over the same
// memory module, with a cold cache. The master key embedded in the blob
// must produce a matching integrity tag.
func ImportState(mem *dram.Module, blob []byte, cacheLines int) (*Engine, error) {
	if len(blob) != StateSize {
		return nil, fmt.Errorf("mee: state blob size %d, want %d", len(blob), StateSize)
	}
	if binary.LittleEndian.Uint64(blob[0:8]) != stateMagic {
		return nil, fmt.Errorf("mee: bad state magic")
	}
	var key [32]byte
	copy(key[:], blob[8:40])
	h := hmac.New(sha256.New, key[:])
	h.Write(blob[:StateSize-32])
	if subtle.ConstantTimeCompare(h.Sum(nil), blob[StateSize-32:]) != 1 {
		return nil, fmt.Errorf("mee: state blob integrity check failed")
	}
	rootCounter := binary.LittleEndian.Uint64(blob[40:48])
	base := binary.LittleEndian.Uint64(blob[48:56])
	dataBlocks := int(binary.LittleEndian.Uint64(blob[56:64]))
	layout, err := PlanLayout(base, dataBlocks)
	if err != nil {
		return nil, err
	}
	return build(mem, layout, key, cacheLines, rootCounter)
}
