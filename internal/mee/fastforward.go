package mee

import "fmt"

// This file is the MEE side of the platform fast-forward engine
// (DESIGN.md §12). The connected-standby steady state drives the engine
// through a strictly periodic op sequence — save (WriteRegion+Flush) from
// the canonical post-restore state, then restore (fresh ImportState +
// sequential ReadRegionInto) — whose externally observable effects (traffic
// counters, hence latency, and the root-counter advance) are identical
// every period. Once one period has been recorded, later periods can skip
// the crypto and DRAM traffic entirely and advance the counters
// arithmetically (ReplayOp), leaving DRAM bytes and the metadata cache
// stale. Before the next *real* operation the caller must rebuild the
// canonical state: ReplayMaterialize regenerates the exact DRAM bytes the
// skipped saves would have produced (a save's output is a pure function of
// the starting root counter and the image), and ReplayWarm re-executes the
// skipped sequential read to rebuild the canonical post-restore cache.

// OpCapture is a point-in-time snapshot of the engine's observable
// counters, taken before a region-sized operation so its delta can be
// recorded.
type OpCapture struct {
	root       uint64
	stats      Stats
	writebacks uint64
}

// OpRecord is the recorded effect of one region-sized operation: the
// counter deltas a replay must apply to be observationally identical to
// re-running the op.
type OpRecord struct {
	RootDelta  uint64
	Stats      Stats  // merged engine+cache traffic delta
	Writebacks uint64 // cache write-back delta (internal-counter parity)
}

// CaptureOp snapshots the observable counters.
func (e *Engine) CaptureOp() OpCapture {
	_, _, wb := e.cache.stats()
	return OpCapture{root: e.rootCounter, stats: e.Stats(), writebacks: wb}
}

// DeltaSince returns the counter movement since the capture.
func (e *Engine) DeltaSince(c OpCapture) OpRecord {
	s := e.Stats()
	_, _, wb := e.cache.stats()
	return OpRecord{
		RootDelta: e.rootCounter - c.root,
		Stats: Stats{
			DataReads:   s.DataReads - c.stats.DataReads,
			DataWrites:  s.DataWrites - c.stats.DataWrites,
			MetaReads:   s.MetaReads - c.stats.MetaReads,
			MetaWrites:  s.MetaWrites - c.stats.MetaWrites,
			CacheHits:   s.CacheHits - c.stats.CacheHits,
			CacheMisses: s.CacheMisses - c.stats.CacheMisses,
		},
		Writebacks: wb - c.writebacks,
	}
}

// ReplayOp advances the observable counters as if the recorded operation
// had run, without touching DRAM or the metadata cache contents. The DRAM
// bytes (for a save) and the cache (for either op) are left stale; the
// caller must ReplayMaterialize/ReplayWarm before the next real operation.
func (e *Engine) ReplayOp(r OpRecord) {
	e.rootCounter += r.RootDelta
	e.stats.DataReads += r.Stats.DataReads
	e.stats.DataWrites += r.Stats.DataWrites
	e.stats.MetaReads += r.Stats.MetaReads
	e.stats.MetaWrites += r.Stats.MetaWrites
	e.cache.hits += r.Stats.CacheHits
	e.cache.misses += r.Stats.CacheMisses
	e.cache.writebacks += r.Writebacks
}

// ReplayAdvanceRoot advances only the freshness root, for whole-cycle
// replays where the engine's per-instance traffic counters are already at
// their canonical (periodic) values.
func (e *Engine) ReplayAdvanceRoot(delta uint64) { e.rootCounter += delta }

// ReplayMaterialize rebuilds the canonical DRAM image that the replayed
// saves would have left, by direct construction. The engine's only writer
// is the periodic full-region sequential save, so after k saves (k =
// rootCounter / DataBlocks) the canonical state is uniform: every data
// block i holds AES-CTR(plaintext_i) under version k, every L0 entry is
// (k, macData), every node counter is k x the data blocks beneath its
// child, every metadata MAC is sealed under its parent's canonical
// counter, and the L0 pad bytes stay zero exactly as format left them.
// Building that directly costs one save's worth of crypto regardless of
// how many saves were skipped. The traffic counters are untouched (they
// were already advanced by ReplayOp) and the metadata cache is emptied —
// the canonical post-save state.
func (e *Engine) ReplayMaterialize(image []byte) error {
	n := e.layout.DataBlocks
	if e.rootCounter == 0 || e.rootCounter%uint64(n) != 0 {
		return fmt.Errorf("mee: materialize at non-periodic root %d (blocks %d)", e.rootCounter, n)
	}
	k := e.rootCounter / uint64(n)
	need := (len(image) + BlockSize - 1) / BlockSize
	if need != n {
		return fmt.Errorf("mee: materialize image of %d blocks over region of %d", need, n)
	}

	// Data blocks and their entry MACs.
	macs := make([][macSize]byte, n)
	for i := 0; i < n; i++ {
		chunk := image[i*BlockSize:]
		if len(chunk) >= BlockSize {
			e.xorKeyStream(e.ctBuf[:], chunk[:BlockSize], i, k)
		} else {
			for j := range e.padBuf {
				e.padBuf[j] = 0
			}
			copy(e.padBuf[:], chunk)
			e.xorKeyStream(e.ctBuf[:], e.padBuf[:], i, k)
		}
		if err := e.mem.Write(e.layout.dataAddr(i), e.ctBuf[:]); err != nil {
			return err
		}
		macs[i] = e.macData(e.ctBuf[:], i, k)
	}

	// L0 blocks: entries under version k, sealed under the L1 counter
	// covering them (k x entries in the block).
	under := make([]uint64, e.layout.L0Blocks)
	for b := 0; b < e.layout.L0Blocks; b++ {
		var data [BlockSize]byte
		entries := n - b*entriesPerL0
		if entries > entriesPerL0 {
			entries = entriesPerL0
		}
		for slot := 0; slot < entries; slot++ {
			setL0Entry(data[:], slot, k, macs[b*entriesPerL0+slot])
		}
		under[b] = uint64(entries)
		mac := e.macMeta(payloadOf(0, data[:]), 0, b, k*under[b])
		setMacOf(0, data[:], mac)
		if err := e.mem.Write(e.layout.l0Addr(b), data[:]); err != nil {
			return err
		}
	}

	// Counter-tree nodes, bottom-up; the top node seals under the root.
	for lvl := 1; lvl <= e.layout.Levels(); lvl++ {
		nodes := e.layout.LevelNodes[lvl-1]
		next := make([]uint64, nodes)
		for j := 0; j < nodes; j++ {
			var data [BlockSize]byte
			var sum uint64
			for slot := 0; slot < nodeArity; slot++ {
				child := j*nodeArity + slot
				if child >= len(under) {
					break
				}
				setNodeCounter(data[:], slot, k*under[child])
				sum += under[child]
			}
			next[j] = sum
			mac := e.macMeta(payloadOf(lvl, data[:]), lvl, j, k*sum)
			setMacOf(lvl, data[:], mac)
			if err := e.mem.Write(e.layout.nodeAddr(lvl, j), data[:]); err != nil {
				return err
			}
		}
		under = next
	}

	// Canonical post-save cache state: empty, no walk in flight.
	for i := range e.cache.lines {
		e.cache.lines[i].valid = false
		e.cache.lines[i].dirty = false
	}
	e.cache.gen++
	e.walk = writeWalk{}
	e.readPath = readWalk{}
	return nil
}

// ReplayWarm re-executes the sequential region read a replayed restore
// skipped, rebuilding the canonical post-restore metadata cache from
// (materialized) canonical DRAM without advancing the observable counters.
// dst is caller scratch sized for n bytes of region data.
func (e *Engine) ReplayWarm(dst []byte, n int) error {
	snap := e.CaptureOp()
	if _, err := e.ReadRegionInto(dst, n); err != nil {
		return err
	}
	e.stats = Stats{
		DataReads:  snap.stats.DataReads,
		DataWrites: snap.stats.DataWrites,
		MetaReads:  snap.stats.MetaReads,
		MetaWrites: snap.stats.MetaWrites,
	}
	e.cache.hits = snap.stats.CacheHits
	e.cache.misses = snap.stats.CacheMisses
	e.cache.writebacks = snap.writebacks
	return nil
}
