package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"

	"odrips/internal/dram"
)

// Stats counts the engine's DRAM traffic in 64-byte blocks, split by kind.
// The context save/restore timing model is driven by these counts.
//
// Every fast path in this package (reusable HMAC states, in-place block IO,
// sequential-walk tree-path reuse) is required to leave these counters
// bit-identical to the straightforward implementation: the §6.3 latencies
// must keep emerging from block counts, not change under optimization.
type Stats struct {
	DataReads   uint64
	DataWrites  uint64
	MetaReads   uint64
	MetaWrites  uint64
	CacheHits   uint64
	CacheMisses uint64
}

// TotalReadBlocks returns all blocks read from DRAM.
func (s Stats) TotalReadBlocks() uint64 { return s.DataReads + s.MetaReads }

// TotalWriteBlocks returns all blocks written to DRAM.
func (s Stats) TotalWriteBlocks() uint64 { return s.DataWrites + s.MetaWrites }

// TotalBlocks returns all DRAM accesses.
func (s Stats) TotalBlocks() uint64 { return s.TotalReadBlocks() + s.TotalWriteBlocks() }

// IntegrityError reports a confidentiality/integrity/freshness violation.
type IntegrityError struct {
	What string
	Addr uint64
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("mee: integrity violation: %s at %#x", e.What, e.Addr)
}

// writeWalk tracks an in-progress sequential write walk: consecutive
// WriteBlock calls that land in the same L0 metadata block keep mutating
// the locally held path copies (versions and counters) and defer the
// per-level reseal + cache install until the walk leaves the subtree.
// Intermediate seals are never observable — DRAM and the cache see exactly
// the bytes the unoptimized per-block walk would have produced.
type writeWalk struct {
	active bool
	dirty  bool // a deferred (unsealed, uninstalled) mutation exists
	b      int  // L0 block index the walk covers
}

// readWalk remembers the verified L0 cache line the previous ReadBlock
// used, so a contiguous restore re-uses the verified ancestor path instead
// of re-looking it up per block. gen guards against any cache mutation.
type readWalk struct {
	ok   bool
	b    int
	gen  uint64
	line *cacheLine
}

// Engine is the memory encryption engine guarding one protected region.
type Engine struct {
	mem    *dram.Module
	layout Layout

	masterKey [32]byte
	aesBlock  cipher.Block
	macKey    [32]byte

	rootCounter uint64
	cache       *metaCache

	stats Stats

	// Reusable crypto state and engine-owned scratch buffers. Together
	// they make the steady-state block datapath allocation-free.
	mac     macCtx
	u64Buf  [8]byte // MAC length/index staging
	ctrBuf  [aes.BlockSize]byte
	ksBuf   [aes.BlockSize]byte
	ctBuf   [BlockSize]byte // ciphertext staging (write + read paths)
	padBuf  [BlockSize]byte // zero-padded tail block for WriteRegion
	metaBuf [BlockSize]byte // metadata fetch staging
	pathBuf []pathBlock     // reusable loadPath scratch
	// victimBuf stages evicted cache lines for sealing + write-back; an
	// engine field because slices of it escape through the hash.Hash
	// interface, which would heap-allocate a per-call local.
	victimBuf cacheLine

	walk     writeWalk
	readPath readWalk
	noWalk   bool // test hook: force the per-block slow path
}

// New creates an engine over a fresh protected region and formats the
// metadata (all versions zero, counters zero, MACs valid). cacheLines sizes
// the MEE metadata cache (32 lines in the Skylake-like configuration).
func New(mem *dram.Module, base uint64, dataBlocks int, key [32]byte, cacheLines int) (*Engine, error) {
	layout, err := PlanLayout(base, dataBlocks)
	if err != nil {
		return nil, err
	}
	e, err := build(mem, layout, key, cacheLines, 0)
	if err != nil {
		return nil, err
	}
	if err := e.format(); err != nil {
		return nil, err
	}
	return e, nil
}

func build(mem *dram.Module, layout Layout, key [32]byte, cacheLines int, rootCounter uint64) (*Engine, error) {
	if mem == nil {
		return nil, fmt.Errorf("mee: nil memory module")
	}
	if layout.Base+layout.TotalBytes() > mem.Config().CapacityBytes {
		return nil, fmt.Errorf("mee: region [%#x,%#x) exceeds memory capacity", layout.Base, layout.Base+layout.TotalBytes())
	}
	var aesKey [16]byte
	h := sha256.Sum256(append([]byte("mee-aes-key"), key[:]...))
	copy(aesKey[:], h[:16])
	blk, err := aes.NewCipher(aesKey[:])
	if err != nil {
		return nil, err
	}
	var macKey [32]byte
	macKey = sha256.Sum256(append([]byte("mee-mac-key"), key[:]...))
	e := &Engine{
		mem:         mem,
		layout:      layout,
		masterKey:   key,
		aesBlock:    blk,
		macKey:      macKey,
		rootCounter: rootCounter,
		cache:       newMetaCache(cacheLines),
		pathBuf:     make([]pathBlock, 0, layout.Levels()+1),
	}
	e.mac.init(macKey[:])
	return e, nil
}

// Layout returns the region layout.
func (e *Engine) Layout() Layout { return e.layout }

// Mem returns the backing memory module (for transfer pricing).
func (e *Engine) Mem() *dram.Module { return e.mem }

// Stats returns a snapshot of the traffic counters. Deferred sequential-
// walk work is accounted eagerly, so the snapshot is exact at every
// WriteBlock/ReadBlock boundary.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.CacheHits, s.CacheMisses, _ = e.cache.stats()
	return s
}

// ResetStats zeroes the traffic counters (cache statistics included).
func (e *Engine) ResetStats() {
	e.stats = Stats{}
	e.cache.hits, e.cache.misses, e.cache.writebacks = 0, 0, 0
}

// RootCounter returns the on-chip freshness root.
func (e *Engine) RootCounter() uint64 { return e.rootCounter }

// ---- crypto helpers ----

// xorKeyStream encrypts (or, CTR being an involution, decrypts) one
// 64-byte block with AES-128-CTR under IV = (blockIdx, version), staging
// the counter and keystream in engine-owned buffers. The output is
// bit-identical to cipher.NewCTR(e.aesBlock, iv).XORKeyStream, which
// TestXORKeyStreamMatchesStdlibCTR asserts, without the per-call stream
// allocation. dst and src must not overlap unless equal.
func (e *Engine) xorKeyStream(dst, src []byte, blockIdx int, version uint64) {
	ctr := e.ctrBuf[:]
	binary.LittleEndian.PutUint64(ctr[0:8], uint64(blockIdx))
	binary.LittleEndian.PutUint64(ctr[8:16], version)
	ks := e.ksBuf[:]
	for off := 0; off < BlockSize; off += aes.BlockSize {
		e.aesBlock.Encrypt(ks, ctr)
		for j := 0; j < aes.BlockSize; j++ {
			dst[off+j] = src[off+j] ^ ks[j]
		}
		// CTR mode treats the whole IV as one big-endian counter.
		for k := aes.BlockSize - 1; k >= 0; k-- {
			ctr[k]++
			if ctr[k] != 0 {
				break
			}
		}
	}
}

var (
	dataTag = []byte("data")
	metaTag = []byte("meta")
)

// macU64 streams a little-endian uint64 into the in-progress MAC.
func (e *Engine) macU64(v uint64) {
	binary.LittleEndian.PutUint64(e.u64Buf[:], v)
	e.mac.write(e.u64Buf[:])
}

// macData authenticates a data block's ciphertext bound to its index and
// version.
func (e *Engine) macData(ct []byte, blockIdx int, version uint64) [macSize]byte {
	e.mac.begin()
	e.mac.write(dataTag)
	e.mac.write(ct)
	e.macU64(uint64(blockIdx))
	e.macU64(version)
	return e.mac.finishTrunc()
}

// macMeta authenticates a metadata block's payload bound to its level,
// index, and the parent counter that provides freshness.
func (e *Engine) macMeta(payload []byte, lvl, idx int, parentCtr uint64) [macSize]byte {
	e.mac.begin()
	e.mac.write(metaTag)
	e.mac.write(payload)
	e.macU64(uint64(lvl))
	e.macU64(uint64(idx))
	e.macU64(parentCtr)
	return e.mac.finishTrunc()
}

// ---- metadata block codecs ----
//
// L0 block: 3 x (version u64 | dataMAC 8B) at [0:48], pad [48:56], block
// MAC at [56:64]. Node block (lvl>=1): 7 counters u64 at [0:56], MAC at
// [56:64]. Every byte except the MAC itself is MAC-covered.

func l0Entry(data []byte, slot int) (version uint64, mac []byte) {
	off := slot * 16
	return binary.LittleEndian.Uint64(data[off : off+8]), data[off+8 : off+16]
}

func setL0Entry(data []byte, slot int, version uint64, mac [macSize]byte) {
	off := slot * 16
	binary.LittleEndian.PutUint64(data[off:off+8], version)
	copy(data[off+8:off+16], mac[:])
}

func nodeCounter(data []byte, slot int) uint64 {
	return binary.LittleEndian.Uint64(data[slot*8 : slot*8+8])
}

func setNodeCounter(data []byte, slot int, v uint64) {
	binary.LittleEndian.PutUint64(data[slot*8:slot*8+8], v)
}

func (e *Engine) metaAddr(lvl, idx int) uint64 {
	if lvl == 0 {
		return e.layout.l0Addr(idx)
	}
	return e.layout.nodeAddr(lvl, idx)
}

// payloadOf returns the MAC-covered payload of a metadata block.
func payloadOf(lvl int, data []byte) []byte {
	_ = lvl // uniform layout at every level
	return data[:56]
}

func macOf(lvl int, data []byte) []byte {
	_ = lvl
	return data[56:64]
}

func setMacOf(lvl int, data []byte, mac [macSize]byte) {
	copy(macOf(lvl, data), mac[:])
}

// topLevel returns the index of the root tree level.
func (e *Engine) topLevel() int { return e.layout.Levels() }

// parentCounterOf returns the freshness counter covering (lvl, idx),
// fetching (and verifying) the parent node if needed.
func (e *Engine) parentCounterOf(lvl, idx int) (uint64, error) {
	if lvl == e.topLevel() {
		return e.rootCounter, nil
	}
	parent, err := e.fetchMeta(lvl+1, idx/nodeArity)
	if err != nil {
		return 0, err
	}
	return nodeCounter(parent.data[:], idx%nodeArity), nil
}

// fetchMeta returns a verified, cached metadata block.
func (e *Engine) fetchMeta(lvl, idx int) (*cacheLine, error) {
	addr := e.metaAddr(lvl, idx)
	if ln := e.cache.lookup(addr); ln != nil {
		return ln, nil
	}
	// Verify the parent chain first (recursion terminates at the root).
	// The recursion finishes with metaBuf before this frame stages its own
	// block in it, so one engine-owned buffer serves every level.
	parentCtr, err := e.parentCounterOf(lvl, idx)
	if err != nil {
		return nil, err
	}
	raw := e.metaBuf[:]
	if err := e.mem.ReadBlockInto(addr, raw); err != nil {
		return nil, err
	}
	e.stats.MetaReads++
	want := e.macMeta(payloadOf(lvl, raw), lvl, idx, parentCtr)
	if subtle.ConstantTimeCompare(want[:], macOf(lvl, raw)) != 1 {
		return nil, &IntegrityError{What: fmt.Sprintf("metadata MAC (level %d node %d)", lvl, idx), Addr: addr}
	}
	e.victimBuf = e.cache.fill(addr, raw, lvl, idx, parentCtr, true)
	if e.victimBuf.valid {
		e.sealLine(&e.victimBuf)
		if err := e.mem.Write(e.victimBuf.addr, e.victimBuf.data[:]); err != nil {
			return nil, err
		}
		e.stats.MetaWrites++
	}
	// The fill may have evicted the parent we depend on; that is fine, the
	// returned line is re-looked-up by address.
	ln := e.cache.lookup(addr)
	if ln == nil || ln.addr != addr {
		return nil, fmt.Errorf("mee: cache line vanished after fill (lines too few)")
	}
	return ln, nil
}

// pathBlock is a local, verified copy of one metadata block on the path
// from an L0 block to the tree root. Write operations mutate local copies
// and install them atomically, so the cache never holds a half-updated
// (unsealable) line that could be evicted and fail re-verification.
type pathBlock struct {
	lvl, idx int
	data     [BlockSize]byte

	// Deferred-seal bookkeeping mirrored into the cache line on install
	// (see cacheLine): sealed says whether data[56:64] is a valid MAC,
	// parentCtr is the freshness counter to seal under when it is not.
	sealed    bool
	parentCtr uint64
}

// sealLine computes the deferred MAC of an unsealed metadata line just
// before its bytes become observable (DRAM write-back or flush). Sealing at
// eviction time is byte-identical to sealing at install time: a node's
// covering counter cannot advance without the node itself being
// re-installed with a fresh parentCtr, so parentCtr still holds the value
// an eager implementation would have sealed under.
func (e *Engine) sealLine(ln *cacheLine) {
	if ln.sealed {
		return
	}
	mac := e.macMeta(payloadOf(ln.lvl, ln.data[:]), ln.lvl, ln.idx, ln.parentCtr)
	setMacOf(ln.lvl, ln.data[:], mac)
	ln.sealed = true
}

// loadPath fetches and verifies the metadata path covering L0 block b,
// bottom-up, returning local copies: [L0 b, L1 node, ..., top node]. The
// returned slice is backed by the engine-owned pathBuf scratch.
func (e *Engine) loadPath(b int) ([]pathBlock, error) {
	path := e.pathBuf[:0]
	lvl, idx := 0, b
	for {
		ln, err := e.fetchMeta(lvl, idx)
		if err != nil {
			return nil, err
		}
		// Copy immediately; the line may be evicted later.
		path = append(path, pathBlock{lvl: lvl, idx: idx, data: ln.data, sealed: ln.sealed, parentCtr: ln.parentCtr})
		if lvl == e.topLevel() {
			e.pathBuf = path
			return path, nil
		}
		lvl, idx = lvl+1, idx/nodeArity
	}
}

// installPath writes mutated path copies into the cache as dirty lines,
// writing back any victims. All copies are mutually consistent before the
// first install, so any later refetch verifies cleanly.
func (e *Engine) installPath(path []pathBlock) error {
	for i := range path {
		pb := &path[i]
		addr := e.metaAddr(pb.lvl, pb.idx)
		if ln := e.cache.lookup(addr); ln != nil {
			ln.data = pb.data
			ln.sealed = pb.sealed
			ln.parentCtr = pb.parentCtr
			ln.dirty = true
			continue
		}
		e.victimBuf = e.cache.fill(addr, pb.data[:], pb.lvl, pb.idx, pb.parentCtr, pb.sealed)
		if e.victimBuf.valid {
			e.sealLine(&e.victimBuf)
			if err := e.mem.Write(e.victimBuf.addr, e.victimBuf.data[:]); err != nil {
				return err
			}
			e.stats.MetaWrites++
		}
		if ln := e.cache.lookup(addr); ln != nil {
			ln.dirty = true
		}
	}
	e.cache.gen++
	return nil
}

// startWalk arms the sequential write walk over the just-installed path.
// The fast path is only sound while every path line stays resident, so a
// cache too small (or too aliased) to hold the whole path keeps the engine
// on the per-block slow path.
func (e *Engine) startWalk(b int, path []pathBlock) {
	if e.noWalk {
		return
	}
	for i := range path {
		if e.cache.peek(e.metaAddr(path[i].lvl, path[i].idx)) == nil {
			return
		}
	}
	e.walk = writeWalk{active: true, b: b}
}

// commitWalk installs the locally mutated path into the cache under its
// final counters. The lines go in unsealed: their MACs are computed lazily
// at eviction or flush time (sealLine), which produces the same bytes the
// per-block resealing walk would have — seals depend only on the final
// payloads and counters, and no eviction can occur while a walk is active
// (a walk ends before any cache fill).
func (e *Engine) commitWalk() error {
	if !e.walk.active {
		return nil
	}
	e.walk.active = false
	if !e.walk.dirty {
		return nil
	}
	e.walk.dirty = false
	path := e.pathBuf
	for p := 0; p < len(path)-1; p++ {
		child, node := &path[p], &path[p+1]
		child.sealed = false
		child.parentCtr = nodeCounter(node.data[:], child.idx%nodeArity)
	}
	top := &path[len(path)-1]
	top.sealed = false
	top.parentCtr = e.rootCounter
	// Quiet install: the lookups for these lines were credited when the
	// deferred writes happened, so this must not count again.
	for p := range path {
		pb := &path[p]
		ln := e.cache.peek(e.metaAddr(pb.lvl, pb.idx))
		if ln == nil {
			return fmt.Errorf("mee: sequential-walk path line evicted (internal invariant)")
		}
		ln.data = pb.data
		ln.sealed = false
		ln.parentCtr = pb.parentCtr
		ln.dirty = true
	}
	e.cache.gen++
	return nil
}

// writeBlockFast is WriteBlock for a block whose whole metadata path is
// already held (verified and mutated) by the active sequential walk: bump
// the version and counters locally, write the ciphertext, and defer the
// per-level reseal to commitWalk.
func (e *Engine) writeBlockFast(i, slot int, plaintext []byte) error {
	path := e.pathBuf
	l0 := &path[0]
	version, _ := l0Entry(l0.data[:], slot)
	version++
	e.xorKeyStream(e.ctBuf[:], plaintext, i, version)
	if err := e.mem.Write(e.layout.dataAddr(i), e.ctBuf[:]); err != nil {
		return err
	}
	e.stats.DataWrites++
	setL0Entry(l0.data[:], slot, version, e.macData(e.ctBuf[:], i, version))
	for p := 1; p < len(path); p++ {
		child, node := &path[p-1], &path[p]
		cslot := child.idx % nodeArity
		setNodeCounter(node.data[:], cslot, nodeCounter(node.data[:], cslot)+1)
	}
	e.rootCounter++
	e.walk.dirty = true
	// Accounting parity: the slow path's loadPath and installPath would
	// each have looked up every (resident) path line — all hits.
	e.cache.credit(2 * uint64(len(path)))
	return nil
}

// WriteBlock encrypts and stores one 64-byte plaintext block at index i,
// bumping the freshness counters along the whole path to the on-chip root.
func (e *Engine) WriteBlock(i int, plaintext []byte) error {
	if i < 0 || i >= e.layout.DataBlocks {
		return fmt.Errorf("mee: block index %d out of range [0,%d)", i, e.layout.DataBlocks)
	}
	if len(plaintext) != BlockSize {
		return fmt.Errorf("mee: plaintext length %d, want %d", len(plaintext), BlockSize)
	}
	b, slot := i/entriesPerL0, i%entriesPerL0
	if e.walk.active && e.walk.b == b {
		return e.writeBlockFast(i, slot, plaintext)
	}
	if err := e.commitWalk(); err != nil {
		return err
	}
	path, err := e.loadPath(b)
	if err != nil {
		return err
	}
	// Mutate the local copies: new data version and MAC in the L0 entry...
	l0 := &path[0]
	version, _ := l0Entry(l0.data[:], slot)
	version++
	e.xorKeyStream(e.ctBuf[:], plaintext, i, version)
	if err := e.mem.Write(e.layout.dataAddr(i), e.ctBuf[:]); err != nil {
		return err
	}
	e.stats.DataWrites++
	setL0Entry(l0.data[:], slot, version, e.macData(e.ctBuf[:], i, version))
	// ...then bump one counter per level, leaving each child unsealed with
	// its new covering counter recorded: the reseal is deferred until the
	// line's bytes become observable (eviction or flush).
	for p := 1; p < len(path); p++ {
		child, node := &path[p-1], &path[p]
		cslot := child.idx % nodeArity
		newCtr := nodeCounter(node.data[:], cslot) + 1
		setNodeCounter(node.data[:], cslot, newCtr)
		child.sealed = false
		child.parentCtr = newCtr
	}
	// The top node seals under a fresh on-chip root counter.
	e.rootCounter++
	top := &path[len(path)-1]
	top.sealed = false
	top.parentCtr = e.rootCounter
	if err := e.installPath(path); err != nil {
		return err
	}
	e.startWalk(b, path)
	return nil
}

// ReadBlockInto fetches, verifies, and decrypts data block i into
// dst[:BlockSize] without allocating. dst must hold at least BlockSize
// bytes and must not alias engine or module internals. A block that was
// never written reads as an error (version 0 means "not present").
func (e *Engine) ReadBlockInto(i int, dst []byte) error {
	if i < 0 || i >= e.layout.DataBlocks {
		return fmt.Errorf("mee: block index %d out of range [0,%d)", i, e.layout.DataBlocks)
	}
	if len(dst) < BlockSize {
		return fmt.Errorf("mee: read destination of %d bytes, need %d", len(dst), BlockSize)
	}
	dst = dst[:BlockSize]
	if err := e.commitWalk(); err != nil {
		return err
	}
	b, slot := i/entriesPerL0, i%entriesPerL0
	var l0 *cacheLine
	if e.readPath.ok && e.readPath.b == b && e.readPath.gen == e.cache.gen && !e.noWalk {
		// Sequential-walk reuse: the ancestor path verified for the
		// previous block still covers this one and the cache is untouched
		// since. Credit the lookup the slow path would have hit.
		e.cache.credit(1)
		l0 = e.readPath.line
	} else {
		var err error
		l0, err = e.fetchMeta(0, b)
		if err != nil {
			return err
		}
		e.readPath = readWalk{ok: true, b: b, gen: e.cache.gen, line: l0}
	}
	version, wantMAC := l0Entry(l0.data[:], slot)
	if version == 0 {
		return fmt.Errorf("mee: block %d never written", i)
	}
	// Copy the expected MAC out before any further cache activity.
	var want [macSize]byte
	copy(want[:], wantMAC)
	if err := e.mem.ReadBlockInto(e.layout.dataAddr(i), e.ctBuf[:]); err != nil {
		return err
	}
	e.stats.DataReads++
	got := e.macData(e.ctBuf[:], i, version)
	if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
		return &IntegrityError{What: fmt.Sprintf("data MAC (block %d)", i), Addr: e.layout.dataAddr(i)}
	}
	e.xorKeyStream(dst, e.ctBuf[:], i, version)
	return nil
}

// ReadBlock fetches, verifies, and decrypts data block i into a fresh
// buffer. ReadBlockInto is the allocation-free variant.
func (e *Engine) ReadBlock(i int) ([]byte, error) {
	out := make([]byte, BlockSize)
	if err := e.ReadBlockInto(i, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRegion writes data starting at block 0, zero-padding the tail of the
// final block.
func (e *Engine) WriteRegion(data []byte) error {
	need := (len(data) + BlockSize - 1) / BlockSize
	if need > e.layout.DataBlocks {
		return fmt.Errorf("mee: %d bytes exceed region of %d blocks", len(data), e.layout.DataBlocks)
	}
	for i := 0; i < need; i++ {
		chunk := data[i*BlockSize:]
		if len(chunk) >= BlockSize {
			if err := e.WriteBlock(i, chunk[:BlockSize]); err != nil {
				return err
			}
			continue
		}
		for j := range e.padBuf {
			e.padBuf[j] = 0
		}
		copy(e.padBuf[:], chunk)
		if err := e.WriteBlock(i, e.padBuf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadRegionInto reads n bytes starting at block 0 into the caller-provided
// buffer, which must hold the full ceil(n/BlockSize) blocks. It returns
// dst[:n] and performs no allocations.
func (e *Engine) ReadRegionInto(dst []byte, n int) ([]byte, error) {
	need := (n + BlockSize - 1) / BlockSize
	if need > e.layout.DataBlocks {
		return nil, fmt.Errorf("mee: %d bytes exceed region of %d blocks", n, e.layout.DataBlocks)
	}
	if len(dst) < need*BlockSize {
		return nil, fmt.Errorf("mee: region read destination of %d bytes, need %d", len(dst), need*BlockSize)
	}
	for i := 0; i < need; i++ {
		if err := e.ReadBlockInto(i, dst[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return nil, err
		}
	}
	return dst[:n], nil
}

// ReadRegion reads n bytes starting at block 0 into a fresh buffer.
func (e *Engine) ReadRegion(n int) ([]byte, error) {
	need := (n + BlockSize - 1) / BlockSize
	if need > e.layout.DataBlocks {
		return nil, fmt.Errorf("mee: %d bytes exceed region of %d blocks", n, e.layout.DataBlocks)
	}
	return e.ReadRegionInto(make([]byte, need*BlockSize), n)
}

// Flush writes back all dirty metadata. Call before removing engine power
// (DRIPS entry): afterwards DRAM holds a complete, self-consistent image
// rooted in the on-chip counter.
func (e *Engine) Flush() error {
	if err := e.commitWalk(); err != nil {
		return err
	}
	// Materialize every deferred seal before the lines hit DRAM.
	for i := range e.cache.lines {
		if ln := &e.cache.lines[i]; ln.valid && ln.dirty {
			e.sealLine(ln)
		}
	}
	return e.cache.flushDirty(func(addr uint64, data []byte) error {
		if err := e.mem.Write(addr, data); err != nil {
			return err
		}
		e.stats.MetaWrites++
		return nil
	})
}

// format initializes all metadata blocks with zero versions/counters and
// valid MACs, writing directly to DRAM (boot-time flow, not counted as
// save/restore traffic by callers that ResetStats afterwards).
func (e *Engine) format() error {
	// Zero root.
	e.rootCounter = 0
	// Top-down so each level's MACs are keyed by the (zero) parent
	// counters.
	var zero [BlockSize]byte
	writeLvl := func(lvl, count int) error {
		for idx := 0; idx < count; idx++ {
			data := zero
			var parentCtr uint64 // all counters start at zero
			mac := e.macMeta(payloadOf(lvl, data[:]), lvl, idx, parentCtr)
			setMacOf(lvl, data[:], mac)
			if err := e.mem.Write(e.metaAddr(lvl, idx), data[:]); err != nil {
				return err
			}
			e.stats.MetaWrites++
		}
		return nil
	}
	for lvl := e.topLevel(); lvl >= 1; lvl-- {
		if err := writeLvl(lvl, e.layout.LevelNodes[lvl-1]); err != nil {
			return err
		}
	}
	return writeLvl(0, e.layout.L0Blocks)
}
