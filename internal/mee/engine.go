package mee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"

	"odrips/internal/dram"
)

// Stats counts the engine's DRAM traffic in 64-byte blocks, split by kind.
// The context save/restore timing model is driven by these counts.
type Stats struct {
	DataReads   uint64
	DataWrites  uint64
	MetaReads   uint64
	MetaWrites  uint64
	CacheHits   uint64
	CacheMisses uint64
}

// TotalReadBlocks returns all blocks read from DRAM.
func (s Stats) TotalReadBlocks() uint64 { return s.DataReads + s.MetaReads }

// TotalWriteBlocks returns all blocks written to DRAM.
func (s Stats) TotalWriteBlocks() uint64 { return s.DataWrites + s.MetaWrites }

// TotalBlocks returns all DRAM accesses.
func (s Stats) TotalBlocks() uint64 { return s.TotalReadBlocks() + s.TotalWriteBlocks() }

// IntegrityError reports a confidentiality/integrity/freshness violation.
type IntegrityError struct {
	What string
	Addr uint64
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("mee: integrity violation: %s at %#x", e.What, e.Addr)
}

// Engine is the memory encryption engine guarding one protected region.
type Engine struct {
	mem    *dram.Module
	layout Layout

	masterKey [32]byte
	aesBlock  cipher.Block
	macKey    [32]byte

	rootCounter uint64
	cache       *metaCache

	stats Stats
}

// New creates an engine over a fresh protected region and formats the
// metadata (all versions zero, counters zero, MACs valid). cacheLines sizes
// the MEE metadata cache (32 lines in the Skylake-like configuration).
func New(mem *dram.Module, base uint64, dataBlocks int, key [32]byte, cacheLines int) (*Engine, error) {
	layout, err := PlanLayout(base, dataBlocks)
	if err != nil {
		return nil, err
	}
	e, err := build(mem, layout, key, cacheLines, 0)
	if err != nil {
		return nil, err
	}
	if err := e.format(); err != nil {
		return nil, err
	}
	return e, nil
}

func build(mem *dram.Module, layout Layout, key [32]byte, cacheLines int, rootCounter uint64) (*Engine, error) {
	if mem == nil {
		return nil, fmt.Errorf("mee: nil memory module")
	}
	if layout.Base+layout.TotalBytes() > mem.Config().CapacityBytes {
		return nil, fmt.Errorf("mee: region [%#x,%#x) exceeds memory capacity", layout.Base, layout.Base+layout.TotalBytes())
	}
	var aesKey [16]byte
	h := sha256.Sum256(append([]byte("mee-aes-key"), key[:]...))
	copy(aesKey[:], h[:16])
	blk, err := aes.NewCipher(aesKey[:])
	if err != nil {
		return nil, err
	}
	var macKey [32]byte
	macKey = sha256.Sum256(append([]byte("mee-mac-key"), key[:]...))
	return &Engine{
		mem:         mem,
		layout:      layout,
		masterKey:   key,
		aesBlock:    blk,
		macKey:      macKey,
		rootCounter: rootCounter,
		cache:       newMetaCache(cacheLines),
	}, nil
}

// Layout returns the region layout.
func (e *Engine) Layout() Layout { return e.layout }

// Mem returns the backing memory module (for transfer pricing).
func (e *Engine) Mem() *dram.Module { return e.mem }

// Stats returns a snapshot of the traffic counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.CacheHits, s.CacheMisses, _ = e.cache.stats()
	return s
}

// ResetStats zeroes the traffic counters (cache statistics included).
func (e *Engine) ResetStats() {
	e.stats = Stats{}
	e.cache.hits, e.cache.misses, e.cache.writebacks = 0, 0, 0
}

// RootCounter returns the on-chip freshness root.
func (e *Engine) RootCounter() uint64 { return e.rootCounter }

// ---- crypto helpers ----

func (e *Engine) encrypt(plaintext []byte, blockIdx int, version uint64) []byte {
	var iv [16]byte
	binary.LittleEndian.PutUint64(iv[0:8], uint64(blockIdx))
	binary.LittleEndian.PutUint64(iv[8:16], version)
	out := make([]byte, BlockSize)
	cipher.NewCTR(e.aesBlock, iv[:]).XORKeyStream(out, plaintext)
	return out
}

// decrypt is identical to encrypt under CTR mode.
func (e *Engine) decrypt(ct []byte, blockIdx int, version uint64) []byte {
	return e.encrypt(ct, blockIdx, version)
}

func (e *Engine) mac(parts ...[]byte) [macSize]byte {
	h := hmac.New(sha256.New, e.macKey[:])
	for _, p := range parts {
		h.Write(p)
	}
	var out [macSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

func le64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// macData authenticates a data block's ciphertext bound to its index and
// version.
func (e *Engine) macData(ct []byte, blockIdx int, version uint64) [macSize]byte {
	return e.mac([]byte("data"), ct, le64(uint64(blockIdx)), le64(version))
}

// macMeta authenticates a metadata block's payload bound to its level,
// index, and the parent counter that provides freshness.
func (e *Engine) macMeta(payload []byte, lvl, idx int, parentCtr uint64) [macSize]byte {
	return e.mac([]byte("meta"), payload, le64(uint64(lvl)), le64(uint64(idx)), le64(parentCtr))
}

// ---- metadata block codecs ----
//
// L0 block: 3 x (version u64 | dataMAC 8B) at [0:48], pad [48:56], block
// MAC at [56:64]. Node block (lvl>=1): 7 counters u64 at [0:56], MAC at
// [56:64]. Every byte except the MAC itself is MAC-covered.

func l0Entry(data []byte, slot int) (version uint64, mac []byte) {
	off := slot * 16
	return binary.LittleEndian.Uint64(data[off : off+8]), data[off+8 : off+16]
}

func setL0Entry(data []byte, slot int, version uint64, mac [macSize]byte) {
	off := slot * 16
	binary.LittleEndian.PutUint64(data[off:off+8], version)
	copy(data[off+8:off+16], mac[:])
}

func nodeCounter(data []byte, slot int) uint64 {
	return binary.LittleEndian.Uint64(data[slot*8 : slot*8+8])
}

func setNodeCounter(data []byte, slot int, v uint64) {
	binary.LittleEndian.PutUint64(data[slot*8:slot*8+8], v)
}

func (e *Engine) metaAddr(lvl, idx int) uint64 {
	if lvl == 0 {
		return e.layout.l0Addr(idx)
	}
	return e.layout.nodeAddr(lvl, idx)
}

// payloadOf returns the MAC-covered payload of a metadata block.
func payloadOf(lvl int, data []byte) []byte {
	_ = lvl // uniform layout at every level
	return data[:56]
}

func macOf(lvl int, data []byte) []byte {
	_ = lvl
	return data[56:64]
}

func setMacOf(lvl int, data []byte, mac [macSize]byte) {
	copy(macOf(lvl, data), mac[:])
}

// topLevel returns the index of the root tree level.
func (e *Engine) topLevel() int { return e.layout.Levels() }

// parentCounterOf returns the freshness counter covering (lvl, idx),
// fetching (and verifying) the parent node if needed.
func (e *Engine) parentCounterOf(lvl, idx int) (uint64, error) {
	if lvl == e.topLevel() {
		return e.rootCounter, nil
	}
	parent, err := e.fetchMeta(lvl+1, idx/nodeArity)
	if err != nil {
		return 0, err
	}
	return nodeCounter(parent.data[:], idx%nodeArity), nil
}

// fetchMeta returns a verified, cached metadata block.
func (e *Engine) fetchMeta(lvl, idx int) (*cacheLine, error) {
	addr := e.metaAddr(lvl, idx)
	if ln := e.cache.lookup(addr); ln != nil {
		return ln, nil
	}
	// Verify the parent chain first (recursion terminates at the root).
	parentCtr, err := e.parentCounterOf(lvl, idx)
	if err != nil {
		return nil, err
	}
	raw, err := e.mem.Read(addr, BlockSize)
	if err != nil {
		return nil, err
	}
	e.stats.MetaReads++
	want := e.macMeta(payloadOf(lvl, raw), lvl, idx, parentCtr)
	if subtle.ConstantTimeCompare(want[:], macOf(lvl, raw)) != 1 {
		return nil, &IntegrityError{What: fmt.Sprintf("metadata MAC (level %d node %d)", lvl, idx), Addr: addr}
	}
	victim := e.cache.fill(addr, raw)
	if victim.valid {
		if err := e.mem.Write(victim.addr, victim.data[:]); err != nil {
			return nil, err
		}
		e.stats.MetaWrites++
	}
	// The fill may have evicted the parent we depend on; that is fine, the
	// returned line is re-looked-up by address.
	ln := e.cache.lookup(addr)
	if ln == nil || ln.addr != addr {
		return nil, fmt.Errorf("mee: cache line vanished after fill (lines too few)")
	}
	return ln, nil
}

// pathBlock is a local, verified copy of one metadata block on the path
// from an L0 block to the tree root. Write operations mutate local copies
// and install them atomically, so the cache never holds a half-updated
// (unsealable) line that could be evicted and fail re-verification.
type pathBlock struct {
	lvl, idx int
	data     [BlockSize]byte
}

// loadPath fetches and verifies the metadata path covering L0 block b,
// bottom-up, returning local copies: [L0 b, L1 node, ..., top node].
func (e *Engine) loadPath(b int) ([]pathBlock, error) {
	path := make([]pathBlock, 0, e.topLevel()+1)
	lvl, idx := 0, b
	for {
		ln, err := e.fetchMeta(lvl, idx)
		if err != nil {
			return nil, err
		}
		pb := pathBlock{lvl: lvl, idx: idx}
		pb.data = ln.data // copy immediately; the line may be evicted later
		path = append(path, pb)
		if lvl == e.topLevel() {
			return path, nil
		}
		lvl, idx = lvl+1, idx/nodeArity
	}
}

// installPath writes mutated path copies into the cache as dirty lines,
// writing back any victims. All copies are mutually consistent before the
// first install, so any later refetch verifies cleanly.
func (e *Engine) installPath(path []pathBlock) error {
	for i := range path {
		pb := &path[i]
		addr := e.metaAddr(pb.lvl, pb.idx)
		if ln := e.cache.lookup(addr); ln != nil {
			ln.data = pb.data
			ln.dirty = true
			continue
		}
		victim := e.cache.fill(addr, pb.data[:])
		if victim.valid {
			if err := e.mem.Write(victim.addr, victim.data[:]); err != nil {
				return err
			}
			e.stats.MetaWrites++
		}
		if ln := e.cache.lookup(addr); ln != nil {
			ln.dirty = true
		}
	}
	return nil
}

// WriteBlock encrypts and stores one 64-byte plaintext block at index i,
// bumping the freshness counters along the whole path to the on-chip root.
func (e *Engine) WriteBlock(i int, plaintext []byte) error {
	if i < 0 || i >= e.layout.DataBlocks {
		return fmt.Errorf("mee: block index %d out of range [0,%d)", i, e.layout.DataBlocks)
	}
	if len(plaintext) != BlockSize {
		return fmt.Errorf("mee: plaintext length %d, want %d", len(plaintext), BlockSize)
	}
	b, slot := i/entriesPerL0, i%entriesPerL0
	path, err := e.loadPath(b)
	if err != nil {
		return err
	}
	// Mutate the local copies: new data version and MAC in the L0 entry...
	l0 := &path[0]
	version, _ := l0Entry(l0.data[:], slot)
	version++
	ct := e.encrypt(plaintext, i, version)
	if err := e.mem.Write(e.layout.dataAddr(i), ct); err != nil {
		return err
	}
	e.stats.DataWrites++
	setL0Entry(l0.data[:], slot, version, e.macData(ct, i, version))
	// ...then bump one counter per level and reseal each child under its
	// incremented parent counter.
	for p := 1; p < len(path); p++ {
		child, node := &path[p-1], &path[p]
		cslot := child.idx % nodeArity
		newCtr := nodeCounter(node.data[:], cslot) + 1
		setNodeCounter(node.data[:], cslot, newCtr)
		mac := e.macMeta(payloadOf(child.lvl, child.data[:]), child.lvl, child.idx, newCtr)
		setMacOf(child.lvl, child.data[:], mac)
	}
	// Seal the top node under a fresh on-chip root counter.
	e.rootCounter++
	top := &path[len(path)-1]
	mac := e.macMeta(payloadOf(top.lvl, top.data[:]), top.lvl, top.idx, e.rootCounter)
	setMacOf(top.lvl, top.data[:], mac)
	return e.installPath(path)
}

// ReadBlock fetches, verifies, and decrypts data block i. A block that was
// never written reads as an error (version 0 means "not present").
func (e *Engine) ReadBlock(i int) ([]byte, error) {
	if i < 0 || i >= e.layout.DataBlocks {
		return nil, fmt.Errorf("mee: block index %d out of range [0,%d)", i, e.layout.DataBlocks)
	}
	b, slot := i/entriesPerL0, i%entriesPerL0
	l0, err := e.fetchMeta(0, b)
	if err != nil {
		return nil, err
	}
	version, wantMAC := l0Entry(l0.data[:], slot)
	if version == 0 {
		return nil, fmt.Errorf("mee: block %d never written", i)
	}
	// Copy the expected MAC out before any further cache activity.
	var want [macSize]byte
	copy(want[:], wantMAC)
	ct, err := e.mem.Read(e.layout.dataAddr(i), BlockSize)
	if err != nil {
		return nil, err
	}
	e.stats.DataReads++
	got := e.macData(ct, i, version)
	if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
		return nil, &IntegrityError{What: fmt.Sprintf("data MAC (block %d)", i), Addr: e.layout.dataAddr(i)}
	}
	return e.decrypt(ct, i, version), nil
}

// WriteRegion writes data starting at block 0, zero-padding the tail of the
// final block.
func (e *Engine) WriteRegion(data []byte) error {
	need := (len(data) + BlockSize - 1) / BlockSize
	if need > e.layout.DataBlocks {
		return fmt.Errorf("mee: %d bytes exceed region of %d blocks", len(data), e.layout.DataBlocks)
	}
	var buf [BlockSize]byte
	for i := 0; i < need; i++ {
		for j := range buf {
			buf[j] = 0
		}
		copy(buf[:], data[i*BlockSize:])
		if err := e.WriteBlock(i, buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadRegion reads n bytes starting at block 0.
func (e *Engine) ReadRegion(n int) ([]byte, error) {
	need := (n + BlockSize - 1) / BlockSize
	if need > e.layout.DataBlocks {
		return nil, fmt.Errorf("mee: %d bytes exceed region of %d blocks", n, e.layout.DataBlocks)
	}
	out := make([]byte, 0, need*BlockSize)
	for i := 0; i < need; i++ {
		blk, err := e.ReadBlock(i)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out[:n], nil
}

// Flush writes back all dirty metadata. Call before removing engine power
// (DRIPS entry): afterwards DRAM holds a complete, self-consistent image
// rooted in the on-chip counter.
func (e *Engine) Flush() error {
	for _, ln := range e.cache.flushAll() {
		if err := e.mem.Write(ln.addr, ln.data[:]); err != nil {
			return err
		}
		e.stats.MetaWrites++
	}
	return nil
}

// format initializes all metadata blocks with zero versions/counters and
// valid MACs, writing directly to DRAM (boot-time flow, not counted as
// save/restore traffic by callers that ResetStats afterwards).
func (e *Engine) format() error {
	// Zero root.
	e.rootCounter = 0
	// Top-down so each level's MACs are keyed by the (zero) parent
	// counters.
	var zero [BlockSize]byte
	writeLvl := func(lvl, count int) error {
		for idx := 0; idx < count; idx++ {
			data := zero
			var parentCtr uint64 // all counters start at zero
			mac := e.macMeta(payloadOf(lvl, data[:]), lvl, idx, parentCtr)
			setMacOf(lvl, data[:], mac)
			if err := e.mem.Write(e.metaAddr(lvl, idx), data[:]); err != nil {
				return err
			}
			e.stats.MetaWrites++
		}
		return nil
	}
	for lvl := e.topLevel(); lvl >= 1; lvl-- {
		if err := writeLvl(lvl, e.layout.LevelNodes[lvl-1]); err != nil {
			return err
		}
	}
	return writeLvl(0, e.layout.L0Blocks)
}
