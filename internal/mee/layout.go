// Package mee implements a functional Memory Encryption Engine in the
// style of Intel SGX's MEE (Gueron, 2016; paper §6): AES-128-CTR
// confidentiality, per-block HMAC integrity, and an on-chip-rooted counter
// tree for freshness, with a small metadata cache ("MEE cache") that
// absorbs tree traffic.
//
// The engine stores ciphertext and metadata in a dram.Module, so every tree
// miss and write-back is real DRAM traffic; the context save/restore
// latencies of §6.3 (≈18 µs write, ≈13 µs read for ~200 KB) emerge from the
// block counts this engine generates rather than from a fitted constant.
//
// Geometry (documented deviation from the undisclosed SGX tree): data is
// protected in 64-byte blocks; a level-0 metadata block carries three
// (version, MAC) entries plus its own embedded MAC; higher levels are
// 64-byte nodes of seven counters plus an embedded MAC, each node's MAC
// keyed by its parent's counter; the root counter lives on-chip.
package mee

import (
	"fmt"

	"odrips/internal/dram"
)

const (
	// BlockSize is the protection granularity.
	BlockSize = dram.BlockSize
	// entriesPerL0 is the number of (version, MAC) data entries per
	// level-0 metadata block: 3*16 B + 8 B block MAC + 8 B pad = 64 B.
	entriesPerL0 = 3
	// nodeArity is the counter fan-out of levels >= 1: 7*8 B counters +
	// 8 B MAC = 64 B.
	nodeArity = 7
	// macSize is the truncated MAC width in bytes.
	macSize = 8
)

// Layout describes where a protected region's data and metadata live.
type Layout struct {
	Base       uint64 // first byte of the region in DRAM
	DataBlocks int    // number of protected 64-byte data blocks
	L0Blocks   int    // level-0 metadata blocks
	LevelNodes []int  // nodes at levels 1..top (top has exactly 1)

	l0Base     uint64
	levelBases []uint64
	totalBytes uint64
}

// PlanLayout computes the metadata geometry for a region of dataBlocks
// 64-byte blocks based at base. base must be block-aligned.
func PlanLayout(base uint64, dataBlocks int) (Layout, error) {
	if dataBlocks <= 0 {
		return Layout{}, fmt.Errorf("mee: non-positive data block count %d", dataBlocks)
	}
	if base%BlockSize != 0 {
		return Layout{}, fmt.Errorf("mee: unaligned region base %#x", base)
	}
	l := Layout{Base: base, DataBlocks: dataBlocks}
	l.L0Blocks = (dataBlocks + entriesPerL0 - 1) / entriesPerL0
	l.l0Base = base + uint64(dataBlocks)*BlockSize
	next := l.l0Base + uint64(l.L0Blocks)*BlockSize
	children := l.L0Blocks
	for {
		nodes := (children + nodeArity - 1) / nodeArity
		l.LevelNodes = append(l.LevelNodes, nodes)
		l.levelBases = append(l.levelBases, next)
		next += uint64(nodes) * BlockSize
		if nodes == 1 {
			break
		}
		children = nodes
	}
	l.totalBytes = next - base
	return l, nil
}

// TotalBytes returns the full region footprint (data + metadata).
func (l Layout) TotalBytes() uint64 { return l.totalBytes }

// MetadataBytes returns the metadata-only footprint.
func (l Layout) MetadataBytes() uint64 {
	return l.totalBytes - uint64(l.DataBlocks)*BlockSize
}

// Levels returns the number of counter-tree levels above level 0.
func (l Layout) Levels() int { return len(l.LevelNodes) }

// dataAddr returns the DRAM address of data block i.
func (l Layout) dataAddr(i int) uint64 { return l.Base + uint64(i)*BlockSize }

// l0Addr returns the DRAM address of level-0 metadata block b.
func (l Layout) l0Addr(b int) uint64 { return l.l0Base + uint64(b)*BlockSize }

// nodeAddr returns the DRAM address of node j at level lvl (1-based).
func (l Layout) nodeAddr(lvl, j int) uint64 {
	return l.levelBases[lvl-1] + uint64(j)*BlockSize
}
