package mee

import (
	"crypto/sha256"
	"encoding"
	"hash"
)

// macCtx is a reusable HMAC-SHA-256 context. Instead of constructing a
// fresh hmac.New(sha256.New, key) for every MAC — which allocates two
// digests, the pad blocks, and a Sum buffer per call — it keeps two
// engine-owned digests plus the serialized SHA-256 states that result from
// absorbing the ipad/opad blocks once. Each MAC then restores the
// precomputed state (clone-and-reset) and streams the message, so the
// steady-state path performs zero allocations and skips the two pad-block
// compressions HMAC normally pays per invocation.
//
// The output is bit-identical to crypto/hmac with the same key (asserted by
// TestMacCtxMatchesCryptoHMAC).
type macCtx struct {
	inner, outer hash.Hash
	// Pre-asserted unmarshalers for the two digests (nil when the hash
	// implementation does not support state marshaling; then the pads are
	// re-absorbed on every MAC, still without allocating).
	innerU, outerU encoding.BinaryUnmarshaler
	// Serialized digest states right after absorbing ipad / opad.
	innerSeed, outerSeed []byte
	ipad, opad           [sha256.BlockSize]byte
	sum                  [sha256.Size]byte
}

// init keys the context. Keys longer than the SHA-256 block size are
// pre-hashed, matching RFC 2104 / crypto/hmac.
func (m *macCtx) init(key []byte) {
	if len(key) > sha256.BlockSize {
		sum := sha256.Sum256(key)
		key = sum[:]
	}
	for i := range m.ipad {
		m.ipad[i] = 0x36
		m.opad[i] = 0x5c
	}
	for i, b := range key {
		m.ipad[i] ^= b
		m.opad[i] ^= b
	}
	m.inner = sha256.New()
	m.outer = sha256.New()
	m.inner.Write(m.ipad[:])
	m.outer.Write(m.opad[:])
	im, iok := m.inner.(encoding.BinaryMarshaler)
	om, ook := m.outer.(encoding.BinaryMarshaler)
	iu, iuok := m.inner.(encoding.BinaryUnmarshaler)
	ou, ouok := m.outer.(encoding.BinaryUnmarshaler)
	if !(iok && ook && iuok && ouok) {
		return // pad-rewrite fallback
	}
	iseed, ierr := im.MarshalBinary()
	oseed, oerr := om.MarshalBinary()
	if ierr != nil || oerr != nil {
		return
	}
	// Round-trip once so begin/finish can ignore the (impossible after
	// this check) unmarshal error on the hot path.
	if iu.UnmarshalBinary(iseed) != nil || ou.UnmarshalBinary(oseed) != nil {
		return
	}
	m.innerU, m.outerU = iu, ou
	m.innerSeed, m.outerSeed = iseed, oseed
}

// begin resets the context to the post-ipad state.
func (m *macCtx) begin() {
	if m.innerU != nil {
		_ = m.innerU.UnmarshalBinary(m.innerSeed) // verified at init
		return
	}
	m.inner.Reset()
	m.inner.Write(m.ipad[:])
}

// write streams message bytes into the MAC.
func (m *macCtx) write(p []byte) { m.inner.Write(p) }

// finishTrunc completes the HMAC and returns the truncated macSize-byte
// tag. The context is left ready for the next begin.
func (m *macCtx) finishTrunc() (out [macSize]byte) {
	isum := m.inner.Sum(m.sum[:0])
	if m.outerU != nil {
		_ = m.outerU.UnmarshalBinary(m.outerSeed) // verified at init
	} else {
		m.outer.Reset()
		m.outer.Write(m.opad[:])
	}
	m.outer.Write(isum)
	osum := m.outer.Sum(m.sum[:0]) // isum already consumed; reuse the buffer
	copy(out[:], osum[:macSize])
	return out
}
