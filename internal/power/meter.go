// Package power provides energy accounting for the simulated platform and
// the analytic connected-standby power model of the paper (Equation 1).
//
// Every hardware block registers a Component with the platform Meter and
// reports draw changes as the simulation runs. The meter integrates energy
// exactly (piecewise-constant draws between events) at two levels:
//
//   - nominal energy, at the component's own supply, and
//   - battery energy, with the power-delivery tax applied (the paper
//     measures 74% delivery efficiency in DRIPS, footnote 5).
//
// The sampled power analyzer in package measure reads the meter's
// instantaneous battery power, mirroring the paper's Keysight N6705B setup.
package power

import (
	"fmt"
	"sort"

	"odrips/internal/sim"
)

// Supply says how a component is powered.
type Supply int

const (
	// Delivered components sit behind a voltage regulator and pay the
	// power-delivery tax: battery draw = nominal / efficiency.
	Delivered Supply = iota
	// Direct components draw straight from the battery rail (e.g. the
	// quiescent current of the always-on regulators themselves).
	Direct
)

// Component is a named power consumer. Create components with Meter.Register.
type Component struct {
	name   string
	group  string
	supply Supply

	drawMW    float64
	nominalJ  float64
	batteryJ  float64
	changedAt sim.Time
}

// Name returns the component name.
func (c *Component) Name() string { return c.name }

// Group returns the reporting group (e.g. "processor", "board").
func (c *Component) Group() string { return c.group }

// DrawMW returns the current nominal draw in milliwatts.
func (c *Component) DrawMW() float64 { return c.drawMW }

// Meter owns all components of a platform and integrates their energy.
type Meter struct {
	sched      *sim.Scheduler
	byName     map[string]*Component
	components []*Component
	efficiency float64 // current power-delivery efficiency (0,1]
}

// NewMeter creates a meter with the given initial power-delivery efficiency.
func NewMeter(sched *sim.Scheduler, efficiency float64) *Meter {
	m := &Meter{sched: sched, byName: make(map[string]*Component)}
	m.SetEfficiency(efficiency)
	return m
}

// Register adds a component with zero initial draw. Registering a duplicate
// name panics: component names identify breakdown rows.
func (m *Meter) Register(name, group string, supply Supply) *Component {
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("power: duplicate component %q", name))
	}
	c := &Component{name: name, group: group, supply: supply, changedAt: m.sched.Now()}
	m.byName[name] = c
	m.components = append(m.components, c)
	return c
}

// Lookup returns a registered component, or nil.
func (m *Meter) Lookup(name string) *Component { return m.byName[name] }

// Components returns all components sorted by name.
func (m *Meter) Components() []*Component {
	out := append([]*Component(nil), m.components...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Efficiency returns the current power-delivery efficiency.
func (m *Meter) Efficiency() float64 { return m.efficiency }

// SetEfficiency changes the power-delivery efficiency from the current
// instant onward, settling accumulated energy first.
func (m *Meter) SetEfficiency(eff float64) {
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("power: efficiency %v out of (0,1]", eff))
	}
	m.settleAll()
	m.efficiency = eff
}

// Set changes a component's nominal draw from the current instant onward.
// Negative draws panic.
func (m *Meter) Set(c *Component, drawMW float64) {
	if drawMW < 0 {
		panic(fmt.Sprintf("power: negative draw %v for %s", drawMW, c.name))
	}
	m.settle(c)
	c.drawMW = drawMW
}

// settle accumulates a component's energy up to now.
func (m *Meter) settle(c *Component) {
	now := m.sched.Now()
	dt := now.Sub(c.changedAt).Seconds()
	if dt > 0 {
		nomJ := c.drawMW * 1e-3 * dt
		c.nominalJ += nomJ
		if c.supply == Delivered {
			c.batteryJ += nomJ / m.efficiency
		} else {
			c.batteryJ += nomJ
		}
	}
	c.changedAt = now
}

func (m *Meter) settleAll() {
	for _, c := range m.components {
		m.settle(c)
	}
}

// BatteryPowerMW returns the instantaneous platform draw at the battery.
func (m *Meter) BatteryPowerMW() float64 {
	var total float64
	for _, c := range m.components {
		if c.supply == Delivered {
			total += c.drawMW / m.efficiency
		} else {
			total += c.drawMW
		}
	}
	return total
}

// NominalPowerMW returns the instantaneous sum of nominal draws.
func (m *Meter) NominalPowerMW() float64 {
	var total float64
	for _, c := range m.components {
		total += c.drawMW
	}
	return total
}

// Snapshot captures per-component battery energy at the current instant.
// Subtracting two snapshots gives the energy spent in an interval.
type Snapshot struct {
	At       sim.Time
	BatteryJ map[string]float64
	NominalJ map[string]float64
}

// Snapshot settles and captures all component energies.
func (m *Meter) Snapshot() Snapshot {
	m.settleAll()
	s := Snapshot{
		At:       m.sched.Now(),
		BatteryJ: make(map[string]float64, len(m.components)),
		NominalJ: make(map[string]float64, len(m.components)),
	}
	for _, c := range m.components {
		s.BatteryJ[c.name] = c.batteryJ
		s.NominalJ[c.name] = c.nominalJ
	}
	return s
}

// TotalBatteryJ returns the total battery energy in the snapshot, summed
// in sorted-name order for run-to-run bit stability.
func (s Snapshot) TotalBatteryJ() float64 { return sortedSum(s.BatteryJ) }

func sortedSum(m map[string]float64) float64 {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	var t float64
	for _, n := range names {
		t += m[n]
	}
	return t
}

// Interval is the energy spent between two snapshots.
type Interval struct {
	Duration sim.Duration
	ByName   map[string]float64 // battery joules per component
}

// Since returns the per-component battery energy spent since the earlier
// snapshot prev. Both snapshots must come from the same meter.
func (s Snapshot) Since(prev Snapshot) Interval {
	iv := Interval{
		Duration: s.At.Sub(prev.At),
		ByName:   make(map[string]float64, len(s.BatteryJ)),
	}
	for name, j := range s.BatteryJ {
		iv.ByName[name] = j - prev.BatteryJ[name]
	}
	return iv
}

// TotalJ returns the total battery energy in the interval (sorted-order
// summation; see TotalBatteryJ).
func (iv Interval) TotalJ() float64 { return sortedSum(iv.ByName) }

// AverageMW returns the interval's average battery power in milliwatts.
func (iv Interval) AverageMW() float64 {
	if iv.Duration <= 0 {
		return 0
	}
	return iv.TotalJ() * 1e3 / iv.Duration.Seconds()
}

// Breakdown aggregates an interval's energy by component group, returning
// group names sorted by descending share. Used for Fig. 1(b).
type Slice struct {
	Name    string
	Joules  float64
	Percent float64
}

// BreakdownBy aggregates interval energy through keyFn (e.g. by group or by
// component) and returns slices sorted by descending energy.
func (iv Interval) BreakdownBy(keyFn func(name string) string) []Slice {
	names := make([]string, 0, len(iv.ByName))
	for n := range iv.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	agg := make(map[string]float64)
	var total float64
	for _, name := range names {
		j := iv.ByName[name]
		agg[keyFn(name)] += j
		total += j
	}
	out := make([]Slice, 0, len(agg))
	for k, j := range agg {
		pct := 0.0
		if total > 0 {
			pct = 100 * j / total
		}
		out = append(out, Slice{Name: k, Joules: j, Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Joules != out[j].Joules {
			return out[i].Joules > out[j].Joules
		}
		return out[i].Name < out[j].Name
	})
	return out
}
