// Package power provides energy accounting for the simulated platform and
// the analytic connected-standby power model of the paper (Equation 1).
//
// Every hardware block registers a Component with the platform Meter and
// reports draw changes as the simulation runs. The meter integrates energy
// exactly (piecewise-constant draws between events) at two levels:
//
//   - nominal energy, at the component's own supply, and
//   - battery energy, with the power-delivery tax applied (the paper
//     measures 74% delivery efficiency in DRIPS, footnote 5).
//
// Integration is fixed-point and exact: draws are quantized to integer
// nanowatts when they are set, and energy accumulates as an integer
// picojoule count plus an exact zeptojoule remainder (1 nW * 1 ps = 1 zJ,
// and 1e9 zJ = 1 pJ). Because the per-interval contribution is computed
// with a full 128-bit intermediate and the remainder is carried, settling
// a draw interval in any number of pieces yields bit-identical accumulator
// state — the property the platform's cycle fast-forward engine relies on
// to replay whole cycles as arithmetic deltas (DESIGN.md §12). Every float
// the meter reports is a pure function of this integer state.
//
// The sampled power analyzer in package measure reads the meter's
// instantaneous battery power, mirroring the paper's Keysight N6705B setup.
package power

import (
	"fmt"
	"math/bits"
	"sort"

	"odrips/internal/sim"
)

// Supply says how a component is powered.
type Supply int

const (
	// Delivered components sit behind a voltage regulator and pay the
	// power-delivery tax: battery draw = nominal / efficiency.
	Delivered Supply = iota
	// Direct components draw straight from the battery rail (e.g. the
	// quiescent current of the always-on regulators themselves).
	Direct
)

// zJPerPJ is the fixed-point remainder base: 1 pJ = 1e9 zJ, and
// 1 nW * 1 ps = 1 zJ, so draw[nW] * dt[ps] accumulates in zeptojoules.
const zJPerPJ = 1_000_000_000

// Energy is an exact fixed-point energy: an integer picojoule count plus a
// zeptojoule remainder in [0, 1e9). The zero value is zero energy.
// Additions carry exactly, so sums of Energy values are associative —
// unlike float64 joules, (a+b)+c always equals a+(b+c).
type Energy struct {
	PJ int64 // picojoules
	ZJ int64 // zeptojoule remainder, in [0, zJPerPJ)
}

// Add returns e + d with exact carry.
func (e Energy) Add(d Energy) Energy {
	e.PJ += d.PJ
	e.ZJ += d.ZJ
	if e.ZJ >= zJPerPJ {
		e.PJ++
		e.ZJ -= zJPerPJ
	}
	return e
}

// Sub returns e - d (both non-negative accumulator states, e >= d).
func (e Energy) Sub(d Energy) Energy {
	e.PJ -= d.PJ
	e.ZJ -= d.ZJ
	if e.ZJ < 0 {
		e.PJ--
		e.ZJ += zJPerPJ
	}
	return e
}

// MulN returns e scaled by a non-negative integer count with exact carry,
// for replaying a recorded per-cycle delta over a batch of identical
// cycles. The products stay far inside int64: a cycle delta is at most a
// few joules (~1e12 pJ) and batches are at most the cycle count of a run.
func (e Energy) MulN(n int64) Energy {
	if n < 0 {
		panic("power: Energy.MulN with negative count")
	}
	z := e.ZJ * n
	return Energy{PJ: e.PJ*n + z/zJPerPJ, ZJ: z % zJPerPJ}
}

// Joules converts to float64 joules (reporting only).
func (e Energy) Joules() float64 {
	return float64(e.PJ)*1e-12 + float64(e.ZJ)*1e-21
}

// IsZero reports whether the energy is exactly zero.
func (e Energy) IsZero() bool { return e.PJ == 0 && e.ZJ == 0 }

// energyFor integrates draw[nW] over dt[ps] exactly: the 128-bit product
// nW*ps is split into picojoules and a zeptojoule remainder.
func energyFor(drawNW int64, dt sim.Duration) Energy {
	if drawNW <= 0 || dt <= 0 {
		return Energy{}
	}
	hi, lo := bits.Mul64(uint64(drawNW), uint64(dt))
	// hi < 1e9 whenever drawNW*dt < 1e9*2^64 zJ ~= 1.8e10 J — far beyond
	// any modeled interval (a 3 W draw over the full ~106-day sim.Time
	// range is ~2.7e7 J), so Div64 cannot panic here.
	q, r := bits.Div64(hi, lo, zJPerPJ)
	return Energy{PJ: int64(q), ZJ: int64(r)}
}

// Component is a named power consumer. Create components with Meter.Register.
type Component struct {
	name   string
	group  string
	supply Supply

	drawMW     float64 // as-set draw, reported by DrawMW
	drawNW     int64   // quantized draw integrated into nominal energy
	battDrawNW int64   // quantized draw integrated into battery energy
	battStale  bool    // battDrawNW needs re-deriving from drawNW
	eff        float64 // mirror of Meter.efficiency for the lazy derivation
	nominal    Energy
	battery    Energy
	changedAt  sim.Time
}

// Name returns the component name.
func (c *Component) Name() string { return c.name }

// Group returns the reporting group (e.g. "processor", "board").
func (c *Component) Group() string { return c.group }

// DrawMW returns the current nominal draw in milliwatts.
func (c *Component) DrawMW() float64 { return c.drawMW }

// DrawsNW returns the quantized integrated draws (nominal and battery
// side), the integer state the fast-forward fingerprint hashes.
func (c *Component) DrawsNW() (nominal, battery int64) { return c.drawNW, c.battDraw() }

// battDraw returns the battery-side quantized draw, re-deriving it on the
// first observation after a draw or efficiency change. The derivation
// divides by the delivery efficiency; deferring it off the Set hot path
// costs nothing per settled interval (each draw change is observed at most
// once) and keeps Set itself integer-only.
func (c *Component) battDraw() int64 {
	if c.battStale {
		c.battDrawNW = battQuant(c.drawNW, c.supply, c.eff)
		c.battStale = false
	}
	return c.battDrawNW
}

// Meter owns all components of a platform and integrates their energy.
type Meter struct {
	sched      *sim.Scheduler
	byName     map[string]*Component
	components []*Component
	efficiency float64 // current power-delivery efficiency (0,1]
}

// NewMeter creates a meter with the given initial power-delivery efficiency.
func NewMeter(sched *sim.Scheduler, efficiency float64) *Meter {
	m := &Meter{sched: sched, byName: make(map[string]*Component)}
	m.SetEfficiency(efficiency)
	return m
}

// Register adds a component with zero initial draw. Registering a duplicate
// name panics: component names identify breakdown rows.
func (m *Meter) Register(name, group string, supply Supply) *Component {
	if _, dup := m.byName[name]; dup {
		panic(fmt.Sprintf("power: duplicate component %q", name))
	}
	c := &Component{name: name, group: group, supply: supply, eff: m.efficiency, changedAt: m.sched.Now()}
	m.byName[name] = c
	m.components = append(m.components, c)
	return c
}

// Lookup returns a registered component, or nil.
func (m *Meter) Lookup(name string) *Component { return m.byName[name] }

// Components returns all components sorted by name.
func (m *Meter) Components() []*Component {
	out := append([]*Component(nil), m.components...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Ordered returns the components in registration order. Registration order
// is a platform construction constant, which makes it a stable dense index
// for the fast-forward engine's per-component delta vectors.
func (m *Meter) Ordered() []*Component { return m.components }

// Efficiency returns the current power-delivery efficiency.
func (m *Meter) Efficiency() float64 { return m.efficiency }

// SetEfficiency changes the power-delivery efficiency from the current
// instant onward, settling accumulated energy first.
func (m *Meter) SetEfficiency(eff float64) {
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("power: efficiency %v out of (0,1]", eff))
	}
	m.settleAll()
	m.efficiency = eff
	for _, c := range m.components {
		c.eff = eff
		c.battStale = true
	}
}

// Set changes a component's nominal draw from the current instant onward.
// Negative draws panic.
func (m *Meter) Set(c *Component, drawMW float64) {
	if drawMW < 0 {
		panic(fmt.Sprintf("power: negative draw %v for %s", drawMW, c.name))
	}
	m.settle(c)
	c.drawMW = drawMW
	c.drawNW = int64(drawMW*1e6 + 0.5)
	c.battStale = true
}

// battQuant derives the integrated battery-side draw: the delivery tax is
// folded into the quantized draw when it changes, so integration itself
// stays a pure integer product.
func battQuant(drawNW int64, supply Supply, eff float64) int64 {
	if supply == Direct {
		return drawNW
	}
	return int64(float64(drawNW)/eff + 0.5)
}

// settle accumulates a component's energy up to now. Settling is exact, so
// settling at extra instants never changes the accumulated totals.
func (m *Meter) settle(c *Component) {
	now := m.sched.Now()
	if dt := now.Sub(c.changedAt); dt > 0 {
		c.nominal = c.nominal.Add(energyFor(c.drawNW, dt))
		c.battery = c.battery.Add(energyFor(c.battDraw(), dt))
	}
	c.changedAt = now
}

func (m *Meter) settleAll() {
	for _, c := range m.components {
		m.settle(c)
	}
}

// SettleAll settles every component's accumulators up to now. The
// fast-forward engine calls this at a cycle boundary before bulk-advancing
// the clock, so the skipped window's energy can then be applied as deltas.
func (m *Meter) SettleAll() { m.settleAll() }

// ReplayAdvance applies memoized per-component energy deltas (indexed in
// registration order, see Ordered) for a window the scheduler skipped.
// The caller must SettleAll before advancing the clock; draws are
// unchanged because a replayed cycle ends in the same phase it starts in.
func (m *Meter) ReplayAdvance(nominal, battery []Energy) {
	if len(nominal) != len(m.components) || len(battery) != len(m.components) {
		panic("power: ReplayAdvance delta vectors do not match component count")
	}
	now := m.sched.Now()
	for i, c := range m.components {
		c.nominal = c.nominal.Add(nominal[i])
		c.battery = c.battery.Add(battery[i])
		c.changedAt = now
	}
}

// EnergyOf settles and returns a component's exact accumulated energies.
func (m *Meter) EnergyOf(c *Component) (nominal, battery Energy) {
	m.settle(c)
	return c.nominal, c.battery
}

// TotalBattery settles and returns the exact total battery energy. Integer
// accumulation makes the sum order-independent.
func (m *Meter) TotalBattery() Energy {
	var t Energy
	for _, c := range m.components {
		m.settle(c)
		t = t.Add(c.battery)
	}
	return t
}

// BatteryPowerMW returns the instantaneous platform draw at the battery.
func (m *Meter) BatteryPowerMW() float64 {
	var total float64
	for _, c := range m.components {
		if c.supply == Delivered {
			total += c.drawMW / m.efficiency
		} else {
			total += c.drawMW
		}
	}
	return total
}

// NominalPowerMW returns the instantaneous sum of nominal draws.
func (m *Meter) NominalPowerMW() float64 {
	var total float64
	for _, c := range m.components {
		total += c.drawMW
	}
	return total
}

// Snapshot captures per-component battery energy at the current instant.
// Subtracting two snapshots gives the energy spent in an interval.
type Snapshot struct {
	At       sim.Time
	Battery  map[string]Energy
	NominalE map[string]Energy
}

// Snapshot settles and captures all component energies.
func (m *Meter) Snapshot() Snapshot {
	m.settleAll()
	s := Snapshot{
		At:       m.sched.Now(),
		Battery:  make(map[string]Energy, len(m.components)),
		NominalE: make(map[string]Energy, len(m.components)),
	}
	for _, c := range m.components {
		s.Battery[c.name] = c.battery
		s.NominalE[c.name] = c.nominal
	}
	return s
}

// TotalBatteryJ returns the total battery energy in the snapshot in joules.
// The underlying sum is exact integer arithmetic, so it is order-free.
func (s Snapshot) TotalBatteryJ() float64 {
	var t Energy
	for _, e := range s.Battery {
		t = t.Add(e)
	}
	return t.Joules()
}

// Interval is the energy spent between two snapshots.
type Interval struct {
	Duration sim.Duration
	ByName   map[string]Energy // exact battery energy per component
}

// Since returns the per-component battery energy spent since the earlier
// snapshot prev. Both snapshots must come from the same meter.
func (s Snapshot) Since(prev Snapshot) Interval {
	iv := Interval{
		Duration: s.At.Sub(prev.At),
		ByName:   make(map[string]Energy, len(s.Battery)),
	}
	for name, e := range s.Battery {
		iv.ByName[name] = e.Sub(prev.Battery[name])
	}
	return iv
}

// TotalJ returns the total battery energy in the interval in joules
// (exact integer summation underneath; order-free).
func (iv Interval) TotalJ() float64 {
	var t Energy
	for _, e := range iv.ByName {
		t = t.Add(e)
	}
	return t.Joules()
}

// AverageMW returns the interval's average battery power in milliwatts.
func (iv Interval) AverageMW() float64 {
	if iv.Duration <= 0 {
		return 0
	}
	return iv.TotalJ() * 1e3 / iv.Duration.Seconds()
}

// Breakdown aggregates an interval's energy by component group, returning
// group names sorted by descending share. Used for Fig. 1(b).
type Slice struct {
	Name    string
	Joules  float64
	Percent float64
}

// BreakdownBy aggregates interval energy through keyFn (e.g. by group or by
// component) and returns slices sorted by descending energy.
func (iv Interval) BreakdownBy(keyFn func(name string) string) []Slice {
	names := make([]string, 0, len(iv.ByName))
	for n := range iv.ByName {
		names = append(names, n)
	}
	sort.Strings(names)
	agg := make(map[string]Energy)
	var total Energy
	for _, name := range names {
		e := iv.ByName[name]
		agg[keyFn(name)] = agg[keyFn(name)].Add(e)
		total = total.Add(e)
	}
	out := make([]Slice, 0, len(agg))
	totalJ := total.Joules()
	for k, e := range agg {
		j := e.Joules()
		pct := 0.0
		if totalJ > 0 {
			pct = 100 * j / totalJ
		}
		out = append(out, Slice{Name: k, Joules: j, Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Joules != out[j].Joules {
			return out[i].Joules > out[j].Joules
		}
		return out[i].Name < out[j].Name
	})
	return out
}
