package power

import (
	"math"
	"testing"
	"testing/quick"

	"odrips/internal/sim"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeterIntegration(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 1.0)
	c := m.Register("sram", "processor", Delivered)
	m.Set(c, 10) // 10 mW
	s.After(sim.Second, "advance", func() {})
	s.Run()
	snap := m.Snapshot()
	if !approx(snap.Battery["sram"].Joules(), 0.010, 1e-12) {
		t.Fatalf("10mW for 1s = %v J, want 0.010", snap.Battery["sram"].Joules())
	}
}

func TestMeterEfficiencyTax(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 0.74)
	del := m.Register("del", "x", Delivered)
	dir := m.Register("dir", "x", Direct)
	m.Set(del, 7.4)
	m.Set(dir, 5.0)
	if got := m.BatteryPowerMW(); !approx(got, 15.0, 1e-9) {
		t.Fatalf("battery power = %v, want 15 (7.4/0.74 + 5)", got)
	}
	if got := m.NominalPowerMW(); !approx(got, 12.4, 1e-9) {
		t.Fatalf("nominal power = %v, want 12.4", got)
	}
	s.After(sim.Second, "advance", func() {})
	s.Run()
	snap := m.Snapshot()
	if !approx(snap.Battery["del"].Joules(), 0.010, 1e-12) {
		t.Fatalf("delivered battery J = %v, want 0.010", snap.Battery["del"].Joules())
	}
	if !approx(snap.NominalE["del"].Joules(), 0.0074, 1e-12) {
		t.Fatalf("delivered nominal J = %v, want 0.0074", snap.NominalE["del"].Joules())
	}
	if !approx(snap.Battery["dir"].Joules(), 0.005, 1e-12) {
		t.Fatalf("direct battery J = %v, want 0.005", snap.Battery["dir"].Joules())
	}
}

func TestMeterDrawChangeMidway(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 1.0)
	c := m.Register("x", "g", Delivered)
	m.Set(c, 100)
	s.After(sim.Millisecond, "drop", func() { m.Set(c, 0) })
	s.After(2*sim.Millisecond, "end", func() {})
	s.Run()
	snap := m.Snapshot()
	want := 100e-3 * 1e-3 // 100 mW for 1 ms
	if !approx(snap.Battery["x"].Joules(), want, 1e-15) {
		t.Fatalf("energy = %v, want %v", snap.Battery["x"].Joules(), want)
	}
}

func TestMeterEfficiencyChangeMidway(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 0.5)
	c := m.Register("x", "g", Delivered)
	m.Set(c, 10)
	s.After(sim.Second, "eff", func() { m.SetEfficiency(1.0) })
	s.After(2*sim.Second, "end", func() {})
	s.Run()
	snap := m.Snapshot()
	want := 0.010/0.5 + 0.010/1.0
	if !approx(snap.Battery["x"].Joules(), want, 1e-12) {
		t.Fatalf("energy across efficiency change = %v, want %v", snap.Battery["x"].Joules(), want)
	}
}

func TestNegativeDrawPanics(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 1.0)
	c := m.Register("x", "g", Delivered)
	defer func() {
		if recover() == nil {
			t.Fatal("negative draw did not panic")
		}
	}()
	m.Set(c, -1)
}

func TestDuplicateComponentPanics(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 1.0)
	m.Register("x", "g", Delivered)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	m.Register("x", "g", Delivered)
}

func TestBadEfficiencyPanics(t *testing.T) {
	s := sim.NewScheduler()
	for _, eff := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("efficiency %v did not panic", eff)
				}
			}()
			NewMeter(s, eff)
		}()
	}
}

func TestSnapshotSinceAndBreakdown(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 1.0)
	a := m.Register("proc.sram", "processor", Delivered)
	b := m.Register("board.xtal", "board", Delivered)
	m.Set(a, 30)
	m.Set(b, 10)
	before := m.Snapshot()
	s.After(sim.Second, "end", func() {})
	s.Run()
	iv := m.Snapshot().Since(before)
	if iv.Duration != sim.Second {
		t.Fatalf("interval duration = %v, want 1s", iv.Duration)
	}
	if !approx(iv.AverageMW(), 40, 1e-9) {
		t.Fatalf("average = %v mW, want 40", iv.AverageMW())
	}
	slices := iv.BreakdownBy(func(name string) string {
		if name == "proc.sram" {
			return "processor"
		}
		return "board"
	})
	if len(slices) != 2 || slices[0].Name != "processor" {
		t.Fatalf("breakdown = %+v", slices)
	}
	if !approx(slices[0].Percent, 75, 1e-9) || !approx(slices[1].Percent, 25, 1e-9) {
		t.Fatalf("shares = %v/%v, want 75/25", slices[0].Percent, slices[1].Percent)
	}
}

func TestLookupAndComponents(t *testing.T) {
	s := sim.NewScheduler()
	m := NewMeter(s, 1.0)
	m.Register("b", "g", Delivered)
	m.Register("a", "g", Direct)
	if m.Lookup("a") == nil || m.Lookup("zz") != nil {
		t.Fatal("Lookup misbehaved")
	}
	cs := m.Components()
	if len(cs) != 2 || cs[0].Name() != "a" || cs[1].Name() != "b" {
		t.Fatalf("Components() = %v,%v", cs[0].Name(), cs[1].Name())
	}
}

func TestProfileEquation1(t *testing.T) {
	// The paper's Fig. 2 numbers: 99.5% DRIPS at ~60 mW, 0.5% active-ish
	// at ~3 W gives ~74.4 mW average.
	p, err := NewProfile(
		map[State]float64{Active: 3000, Entry: 1000, Idle: 60, Exit: 1500},
		map[State]sim.Duration{
			Active: 150 * sim.Millisecond,
			Entry:  200 * sim.Microsecond,
			Idle:   30 * sim.Second,
			Exit:   300 * sim.Microsecond,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.ResidencySum(), 1.0, 1e-12) {
		t.Fatalf("residencies sum to %v", p.ResidencySum())
	}
	avg := p.AverageMW()
	if avg < 70 || avg > 80 {
		t.Fatalf("average = %v mW, want ~74", avg)
	}
	if r := p.Residency[Idle]; r < 0.994 || r > 0.996 {
		t.Fatalf("DRIPS residency = %v, want ~0.995", r)
	}
}

func TestProfileErrors(t *testing.T) {
	_, err := NewProfile(
		map[State]float64{Active: 1, Idle: 1, Exit: 1}, // missing Entry
		map[State]sim.Duration{Active: 1, Entry: 1, Idle: 1, Exit: 1},
	)
	if err == nil {
		t.Fatal("missing state power accepted")
	}
	_, err = NewProfile(
		map[State]float64{Active: 1, Entry: 1, Idle: 1, Exit: 1},
		map[State]sim.Duration{Active: 0, Entry: 0, Idle: 0, Exit: 0},
	)
	if err == nil {
		t.Fatal("zero-duration cycle accepted")
	}
	_, err = NewProfile(
		map[State]float64{Active: -1, Entry: 1, Idle: 1, Exit: 1},
		map[State]sim.Duration{Active: 1, Entry: 1, Idle: 1, Exit: 1},
	)
	if err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestBreakEven(t *testing.T) {
	base := CycleEnergy{TransitionUJ: 10, IdleMW: 60}
	opt := CycleEnergy{TransitionUJ: 120, IdleMW: 43.05} // paper-ish ODRIPS
	be, err := BreakEven(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	// T* = 110 uJ / 16.95 mW = 6.49 ms.
	if got := be.Milliseconds(); !approx(got, 6.49, 0.01) {
		t.Fatalf("break-even = %v ms, want ~6.49", got)
	}
}

func TestBreakEvenNoImprovement(t *testing.T) {
	_, err := BreakEven(CycleEnergy{IdleMW: 60}, CycleEnergy{IdleMW: 60})
	if err == nil {
		t.Fatal("no-improvement break-even did not error")
	}
}

func TestBreakEvenFreeWin(t *testing.T) {
	be, err := BreakEven(
		CycleEnergy{TransitionUJ: 50, IdleMW: 60},
		CycleEnergy{TransitionUJ: 40, IdleMW: 50},
	)
	if err != nil || be != 0 {
		t.Fatalf("free win: be=%v err=%v, want 0,nil", be, err)
	}
}

func TestBreakEvenFromSweep(t *testing.T) {
	points := []SweepPoint{
		{Residency: 1 * sim.Millisecond, BaseMW: 100, OptMW: 120},
		{Residency: 5 * sim.Millisecond, BaseMW: 80, OptMW: 82},
		{Residency: 7 * sim.Millisecond, BaseMW: 75, OptMW: 70},
	}
	be, ok := BreakEvenFromSweep(points)
	if !ok || be != 7*sim.Millisecond {
		t.Fatalf("sweep break-even = %v,%v", be, ok)
	}
	_, ok = BreakEvenFromSweep(points[:2])
	if ok {
		t.Fatal("sweep without crossover reported ok")
	}
}

// Property: meter energy equals Σ draw_i × dt_i for random draw schedules,
// and battery power is never below nominal power.
func TestMeterEnergyProperty(t *testing.T) {
	f := func(draws []uint16, effSeed uint8) bool {
		if len(draws) == 0 {
			return true
		}
		eff := 0.5 + float64(effSeed%50)/100 // 0.5..0.99
		s := sim.NewScheduler()
		m := NewMeter(s, eff)
		c := m.Register("x", "g", Delivered)
		var wantJ float64
		const stepMS = 1
		for _, d := range draws {
			mw := float64(d % 1000)
			m.Set(c, mw)
			wantJ += mw * 1e-3 * float64(stepMS) * 1e-3 / eff
			if m.BatteryPowerMW() < m.NominalPowerMW()-1e-9 {
				return false
			}
			s.After(stepMS*sim.Millisecond, "adv", func() {})
			s.Run()
		}
		got := m.Snapshot().Battery["x"].Joules()
		return approx(got, wantJ, 1e-9+wantJ*1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equation-1 average always lies between min and max state power.
func TestProfileBoundsProperty(t *testing.T) {
	f := func(p0, p1, p2, p3 uint16, d0, d1, d2, d3 uint16) bool {
		durs := map[State]sim.Duration{
			Active: sim.Duration(d0+1) * sim.Microsecond,
			Entry:  sim.Duration(d1+1) * sim.Microsecond,
			Idle:   sim.Duration(d2+1) * sim.Microsecond,
			Exit:   sim.Duration(d3+1) * sim.Microsecond,
		}
		pows := map[State]float64{
			Active: float64(p0), Entry: float64(p1), Idle: float64(p2), Exit: float64(p3),
		}
		prof, err := NewProfile(pows, durs)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range pows {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		avg := prof.AverageMW()
		return avg >= lo-1e-9 && avg <= hi+1e-9 && approx(prof.ResidencySum(), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMeterSet(b *testing.B) {
	s := sim.NewScheduler()
	m := NewMeter(s, 0.74)
	c := m.Register("x", "g", Delivered)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Set(c, float64(i%100))
	}
}
