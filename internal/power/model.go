package power

import (
	"fmt"

	"odrips/internal/sim"
)

// State enumerates the four connected-standby phases of the paper's
// Equation 1 and Fig. 2.
type State int

const (
	Active State = iota // C0, display off, kernel maintenance
	Entry               // preparing to enter DRIPS
	Idle                // DRIPS / ODRIPS residency
	Exit                // preparing to exit DRIPS
	numStates
)

var stateNames = [...]string{"Active", "Entry", "DRIPS", "Exit"}

// String returns the state name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// States lists all states in canonical order.
func States() []State { return []State{Active, Entry, Idle, Exit} }

// Profile is the analytic connected-standby model: per-state average power
// and residency. It implements the paper's Equation 1:
//
//	Average = Σ_state power(state) × residency(state)
//
// This is the "in-house power model" used before silicon; the experiments
// validate it against the simulated measurement (paper reports ~95%
// accuracy for theirs).
type Profile struct {
	PowerMW   [numStates]float64
	Residency [numStates]float64
}

// NewProfile builds a profile from per-cycle state durations and powers.
// Durations are one connected-standby period (Fig. 2); residencies are
// derived as duration shares.
func NewProfile(powerMW map[State]float64, durations map[State]sim.Duration) (Profile, error) {
	var p Profile
	var total float64
	for _, s := range States() {
		d, ok := durations[s]
		if !ok {
			return Profile{}, fmt.Errorf("power: missing duration for state %s", s)
		}
		if d < 0 {
			return Profile{}, fmt.Errorf("power: negative duration for state %s", s)
		}
		total += d.Seconds()
	}
	if total <= 0 {
		return Profile{}, fmt.Errorf("power: zero total cycle duration")
	}
	for _, s := range States() {
		mw, ok := powerMW[s]
		if !ok {
			return Profile{}, fmt.Errorf("power: missing power for state %s", s)
		}
		if mw < 0 {
			return Profile{}, fmt.Errorf("power: negative power for state %s", s)
		}
		p.PowerMW[s] = mw
		p.Residency[s] = durations[s].Seconds() / total
	}
	return p, nil
}

// AverageMW evaluates Equation 1.
func (p Profile) AverageMW() float64 {
	var avg float64
	for _, s := range States() {
		avg += p.PowerMW[s] * p.Residency[s]
	}
	return avg
}

// ResidencySum returns the sum of residencies (should be 1; exposed for the
// invariant tests).
func (p Profile) ResidencySum() float64 {
	var r float64
	for _, s := range States() {
		r += p.Residency[s]
	}
	return r
}

// CycleEnergy describes one idle cycle for break-even analysis: the energy
// spent transitioning in and out of the idle state, and the idle power that
// is paid for the duration of the residency.
type CycleEnergy struct {
	// TransitionUJ is the total entry+exit battery energy in microjoules.
	TransitionUJ float64
	// IdleMW is the battery power while resident in the idle state.
	IdleMW float64
}

// BreakEven returns the minimum idle residency at which the optimized state
// opt consumes less energy per cycle than base:
//
//	T* = (ΔE_transition) / (ΔP_idle)
//
// It returns an error if opt does not reduce idle power (no crossover) or
// if opt has no transition-energy penalty (always better; break-even 0).
func BreakEven(base, opt CycleEnergy) (sim.Duration, error) {
	dP := base.IdleMW - opt.IdleMW // mW
	dE := opt.TransitionUJ - base.TransitionUJ
	if dP <= 0 {
		return 0, fmt.Errorf("power: optimized idle power %.3f mW does not improve on %.3f mW", opt.IdleMW, base.IdleMW)
	}
	if dE <= 0 {
		return 0, nil
	}
	// T = dE[uJ] / dP[mW] = dE*1e-6 J / dP*1e-3 W seconds = dE/dP ms.
	return sim.FromSeconds(dE / dP * 1e-3), nil
}

// SweepPoint is one residency sample of a break-even sweep (§7: residency
// swept from 0.6 ms to 1 s at 0.1 ms granularity).
type SweepPoint struct {
	Residency sim.Duration
	BaseMW    float64
	OptMW     float64
}

// BreakEvenFromSweep scans sweep points in increasing residency order and
// returns the first residency at which the optimized average power is below
// the baseline's, mirroring the paper's empirical method. ok is false if no
// crossover occurs within the sweep.
func BreakEvenFromSweep(points []SweepPoint) (sim.Duration, bool) {
	for _, p := range points {
		if p.OptMW < p.BaseMW {
			return p.Residency, true
		}
	}
	return 0, false
}
