package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperBitWidths(t *testing.T) {
	// Paper §4.1.3: 24 MHz fast clock, 32.768 kHz slow clock, 1 ppb
	// precision → m = 10 integer bits, f = 21 fractional bits.
	const fast, slow = 24_000_000, 32_768
	if m := IntBitsNeeded(fast, slow); m != 10 {
		t.Errorf("IntBitsNeeded = %d, want 10", m)
	}
	if f := FracBitsNeeded(fast, slow); f != 21 {
		t.Errorf("FracBitsNeeded = %d, want 21", f)
	}
}

func TestIntBitsNeededTable(t *testing.T) {
	cases := []struct {
		fast, slow uint64
		want       uint
	}{
		{24_000_000, 32_768, 10}, // ratio 732.4 → floor(log2)+1 = 10
		{100_000_000, 32_768, 12},
		{3 * 32_768, 32_768, 2}, // ratio 3 → 2 bits
		{4 * 32_768, 32_768, 3}, // ratio 4 → 3 bits
		{32_768, 32_768, 1},     // ratio 1
		{16_384, 32_768, 1},     // sub-unity ratio still needs 1 bit
	}
	for _, c := range cases {
		if got := IntBitsNeeded(c.fast, c.slow); got != c.want {
			t.Errorf("IntBitsNeeded(%d,%d) = %d, want %d", c.fast, c.slow, got, c.want)
		}
	}
}

func TestFromRatioExact(t *testing.T) {
	// 3/1 with 4 fractional bits = 48 raw.
	q := FromRatio(3, 1, 4)
	if q.Raw != 48 || q.Integer() != 3 || q.Frac() != 0 {
		t.Fatalf("FromRatio(3,1,4) = %+v", q)
	}
	// 1/3 with 21 bits: floor(2^21/3) = 699050.
	q = FromRatio(1, 3, 21)
	if q.Raw != 699050 {
		t.Fatalf("FromRatio(1,3,21).Raw = %d, want 699050", q.Raw)
	}
}

func TestFromRatioPaperStep(t *testing.T) {
	// Step for 24 MHz / 32.768 kHz at f=21:
	// ratio = 732.421875 = 732 + 27/64 exactly (24e6/32768 = 46875/64).
	q := FromRatio(24_000_000, 32_768, 21)
	if q.Integer() != 732 {
		t.Fatalf("step integer = %d, want 732", q.Integer())
	}
	wantFrac := uint64(27 << (21 - 6)) // 27/64 in 21-bit fraction, exact
	if q.Frac() != wantFrac {
		t.Fatalf("step frac = %d, want %d", q.Frac(), wantFrac)
	}
	if math.Abs(q.Float()-732.421875) > 1e-12 {
		t.Fatalf("step float = %v, want 732.421875", q.Float())
	}
}

func TestFromRatioDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRatio(x, 0, f) did not panic")
		}
	}()
	FromRatio(1, 0, 21)
}

func TestFromRatioOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflowing FromRatio did not panic")
		}
	}()
	FromRatio(math.MaxUint64, 1, 21)
}

func TestAccAdd(t *testing.T) {
	a := NewAcc(4)
	step := New(0x18, 4) // 1.5
	for i := 0; i < 4; i++ {
		a.Add(step)
	}
	if a.Floor() != 6 || a.Frac() != 0 {
		t.Fatalf("4 * 1.5 accumulated to %d + %d/16, want 6 + 0", a.Floor(), a.Frac())
	}
}

func TestAccCarryPropagation(t *testing.T) {
	a := NewAcc(21)
	a.SetInt(0)
	step := New(1, 21) // smallest positive step: 2^-21
	for i := 0; i < 1<<21; i++ {
		a.Add(step)
	}
	if a.Floor() != 1 || a.Frac() != 0 {
		t.Fatalf("2^21 * 2^-21 = %d + %d, want exactly 1", a.Floor(), a.Frac())
	}
}

func TestAccSetIntClearsFraction(t *testing.T) {
	a := NewAcc(21)
	a.Add(New(3<<20, 21)) // 1.5
	a.SetInt(100)
	if a.Floor() != 100 || a.Frac() != 0 {
		t.Fatalf("SetInt left %d + %d/2^21", a.Floor(), a.Frac())
	}
}

func TestAccMismatchedWidthPanics(t *testing.T) {
	a := NewAcc(21)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched width Add did not panic")
		}
	}()
	a.Add(New(1, 20))
}

func TestAddNEquivalence(t *testing.T) {
	step := FromRatio(24_000_000, 32_768, 21)
	one := NewAcc(21)
	bulk := NewAcc(21)
	const n = 10_000
	for i := 0; i < n; i++ {
		one.Add(step)
	}
	bulk.AddN(step, n)
	if one.Int != bulk.Int || one.Frac() != bulk.Frac() {
		t.Fatalf("AddN diverges: loop=%d+%d bulk=%d+%d", one.Int, one.Frac(), bulk.Int, bulk.Frac())
	}
}

// Property: AddN(step, n) == n sequential Adds for random steps and counts.
func TestAddNEquivalenceProperty(t *testing.T) {
	f := func(rawSeed uint32, nSeed uint16, fracBits uint8) bool {
		fb := uint(fracBits%32) + 1
		step := New(uint64(rawSeed), fb)
		n := uint64(nSeed % 2000)
		one := NewAcc(fb)
		bulk := NewAcc(fb)
		for i := uint64(0); i < n; i++ {
			one.Add(step)
		}
		bulk.AddN(step, n)
		return one.Int == bulk.Int && one.Frac() == bulk.Frac()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FromRatio is within 2^-f of the true ratio, from below.
func TestFromRatioAccuracyProperty(t *testing.T) {
	f := func(numSeed, denSeed uint32) bool {
		num := uint64(numSeed)%1_000_000 + 1
		den := uint64(denSeed)%1_000_000 + 1
		q := FromRatio(num, den, 21)
		truth := float64(num) / float64(den)
		diff := truth - q.Float()
		return diff >= -1e-12 && diff < 1.0/float64(uint64(1)<<21)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: accumulated drift after n steps is below n * 2^-f + 1 counts,
// i.e. the error per step never exceeds the quantization of Step.
func TestAccDriftBoundProperty(t *testing.T) {
	f := func(nSeed uint16) bool {
		const fast, slow = 24_000_000, 32_768
		step := FromRatio(fast, slow, 21)
		a := NewAcc(21)
		n := uint64(nSeed)
		a.AddN(step, n)
		truth := float64(fast) / float64(slow) * float64(n)
		drift := truth - a.Float()
		bound := float64(n)/float64(uint64(1)<<21) + 1e-6
		return drift >= -1e-6 && drift <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQString(t *testing.T) {
	q := New(48, 4)
	if s := q.String(); s != "3+0x0/2^4" {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkAccAdd(b *testing.B) {
	step := FromRatio(24_000_000, 32_768, 21)
	a := NewAcc(21)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(step)
	}
}

func BenchmarkAccAddN(b *testing.B) {
	step := FromRatio(24_000_000, 32_768, 21)
	a := NewAcc(21)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.AddN(step, 1_000_000)
	}
}
