// Package fixedpoint implements the fixed-point arithmetic used by the
// chipset slow timer (paper §4.1.3).
//
// The slow timer advances the 64-bit platform time-stamp counter while the
// 24 MHz clock is off by adding, on every 32.768 kHz cycle, a Step value that
// represents the fast/slow frequency ratio as a Q(m.f) fixed-point number
// (m=10 integer bits and f=21 fractional bits for the paper's clocks at
// 1 ppb precision). The accumulator therefore needs 64+f bits; Acc keeps the
// fraction in a separate word so no precision is lost.
package fixedpoint

import (
	"fmt"
	"math/bits"
)

// Q is an unsigned fixed-point number with FracBits fractional bits. The
// zero value is the number 0 with 0 fractional bits.
type Q struct {
	Raw      uint64 // value * 2^FracBits
	FracBits uint
}

// New builds a Q from a raw scaled value.
func New(raw uint64, fracBits uint) Q {
	if fracBits > 63 {
		panic(fmt.Sprintf("fixedpoint: %d fractional bits unsupported", fracBits))
	}
	return Q{Raw: raw, FracBits: fracBits}
}

// FromRatio returns num/den rounded down to fracBits fractional bits.
// It computes floor(num * 2^fracBits / den) with a full 128-bit
// intermediate, so it is exact for any operands whose quotient fits.
// This is the calibration division of §4.1.3: with den chosen as a power of
// two (N_slow = 2^f) it reduces to placing the fixed point, but FromRatio
// supports arbitrary denominators for the property tests.
func FromRatio(num, den uint64, fracBits uint) Q {
	if den == 0 {
		panic("fixedpoint: division by zero")
	}
	if fracBits > 63 {
		panic(fmt.Sprintf("fixedpoint: %d fractional bits unsupported", fracBits))
	}
	hi, lo := bits.Mul64(num, 1<<fracBits)
	if hi >= den {
		panic(fmt.Sprintf("fixedpoint: %d/%d at %d fractional bits overflows 64 bits", num, den, fracBits))
	}
	q, _ := bits.Div64(hi, lo, den)
	return Q{Raw: q, FracBits: fracBits}
}

// Integer returns the integer part.
func (q Q) Integer() uint64 { return q.Raw >> q.FracBits }

// Frac returns the fractional part as raw scaled bits (value * 2^FracBits).
func (q Q) Frac() uint64 { return q.Raw & (1<<q.FracBits - 1) }

// Float returns the value as a float64 (display/diagnostics only).
func (q Q) Float() float64 { return float64(q.Raw) / float64(uint64(1)<<q.FracBits) }

// IntBitsNeeded returns the number of bits needed for the integer part of a
// fast/slow frequency ratio: floor(log2(fast/slow)) + 1 (paper Eq. 2).
func IntBitsNeeded(fastHz, slowHz uint64) uint {
	if fastHz == 0 || slowHz == 0 {
		panic("fixedpoint: zero frequency")
	}
	ratio := fastHz / slowHz
	if ratio == 0 {
		return 1
	}
	return uint(bits.Len64(ratio))
}

// FracBitsNeeded returns the number of fractional bits needed to bound the
// counting drift below one fast-clock cycle per 10^9 fast cycles (1 ppb):
// the smallest f with 2^f > (10^9 - 1) * slow / fast (paper Eq. 4).
func FracBitsNeeded(fastHz, slowHz uint64) uint {
	if fastHz == 0 || slowHz == 0 {
		panic("fixedpoint: zero frequency")
	}
	// threshold = (1e9-1) * slowHz / fastHz, computed in 128 bits.
	hi, lo := bits.Mul64(999_999_999, slowHz)
	if hi >= fastHz {
		panic("fixedpoint: slow clock faster than 2^64/1e9 of fast clock")
	}
	q, _ := bits.Div64(hi, lo, fastHz)
	// Smallest f with 2^f > threshold. Since 2^Len(q) > q for every integer
	// q and 2^Len(q) >= q+1 > threshold, f = Len64(q) suffices even when the
	// threshold has a fractional part or is itself a power of two.
	f := uint(bits.Len64(q))
	if f > 63 {
		panic("fixedpoint: required fractional bits exceed 63")
	}
	return f
}

// String renders the value as integer.fraction_hex for debugging.
func (q Q) String() string {
	return fmt.Sprintf("%d+0x%x/2^%d", q.Integer(), q.Frac(), q.FracBits)
}

// Acc is a (64 + FracBits)-bit fixed-point accumulator: a 64-bit integer
// part plus FracBits of fraction. It is the paper's slow-timer register
// ((64+21) bits for the Skylake implementation). The zero value is a valid
// zero accumulator with zero fractional bits; use NewAcc to pick the width.
type Acc struct {
	Int      uint64 // integer part (the architectural timer value)
	frac     uint64 // fractional part, low FracBits bits significant
	FracBits uint
}

// NewAcc returns a zero accumulator with the given fraction width.
func NewAcc(fracBits uint) *Acc {
	if fracBits > 63 {
		panic(fmt.Sprintf("fixedpoint: %d fractional bits unsupported", fracBits))
	}
	return &Acc{FracBits: fracBits}
}

// SetInt loads an integer value, clearing the fraction. This is the
// fast-timer → slow-timer copy at the 32 kHz edge during ODRIPS entry.
func (a *Acc) SetInt(v uint64) {
	a.Int = v
	a.frac = 0
}

// Add accumulates a step. The step must have the same fraction width.
func (a *Acc) Add(step Q) {
	if step.FracBits != a.FracBits {
		panic(fmt.Sprintf("fixedpoint: adding Q with %d fractional bits to accumulator with %d",
			step.FracBits, a.FracBits))
	}
	a.frac += step.Frac()
	carry := a.frac >> a.FracBits
	a.frac &= 1<<a.FracBits - 1
	a.Int += step.Integer() + carry
}

// AddN accumulates n steps at once (used to fast-forward the slow timer
// across a long idle period without simulating every 32 kHz edge). It is
// exactly equivalent to calling Add n times.
func (a *Acc) AddN(step Q, n uint64) {
	if step.FracBits != a.FracBits {
		panic(fmt.Sprintf("fixedpoint: adding Q with %d fractional bits to accumulator with %d",
			step.FracBits, a.FracBits))
	}
	// total fractional contribution = n*step.Frac(), up to 128 bits.
	hi, lo := bits.Mul64(n, step.Frac())
	// carry = floor((frac + n*stepFrac) / 2^f): add current fraction.
	lo2, c := bits.Add64(lo, a.frac, 0)
	hi += c
	carry := hi<<(64-a.FracBits) | lo2>>a.FracBits
	a.frac = lo2 & (1<<a.FracBits - 1)
	a.Int += n*step.Integer() + carry
}

// Frac returns the fractional part as raw scaled bits.
func (a *Acc) Frac() uint64 { return a.frac }

// Floor returns the integer part (the value reported to the platform timer).
func (a *Acc) Floor() uint64 { return a.Int }

// Float returns the full value as float64 (diagnostics only).
func (a *Acc) Float() float64 {
	return float64(a.Int) + float64(a.frac)/float64(uint64(1)<<a.FracBits)
}
