package dram

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"odrips/internal/sim"
)

func TestSkylakeConfigBandwidth(t *testing.T) {
	m := New(Skylake8GB())
	// DDR3L-1600 dual channel x 8B = 25.6 GB/s peak.
	if got := m.PeakBandwidth(); math.Abs(got-25.6e9) > 1 {
		t.Fatalf("peak bandwidth = %v, want 25.6e9", got)
	}
}

func TestTransferTimeScalesWithFrequency(t *testing.T) {
	cfg := Skylake8GB()
	full := New(cfg)
	cfg.TransferMTps = 800
	half := New(cfg)
	n := 200 << 10
	tf := full.TransferTime(n, true)
	th := half.TransferTime(n, true)
	if th <= tf {
		t.Fatalf("half-speed transfer %v not slower than full-speed %v", th, tf)
	}
	// Variable part should double exactly.
	varFull := tf - 2*sim.Microsecond
	varHalf := th - 2*sim.Microsecond
	ratio := float64(varHalf) / float64(varFull)
	if math.Abs(ratio-2.0) > 0.01 {
		t.Fatalf("variable transfer ratio = %v, want 2.0", ratio)
	}
}

func TestPCMWriteSlowerThanRead(t *testing.T) {
	m := New(PCM8GB())
	n := 200 << 10
	if m.TransferTime(n, true) <= m.TransferTime(n, false) {
		t.Fatal("PCM write not slower than read")
	}
	d := New(Skylake8GB())
	if m.TransferTime(n, true) <= d.TransferTime(n, true) {
		t.Fatal("PCM write not slower than DRAM write")
	}
	if m.TransferEnergyUJ(n, true) <= d.TransferEnergyUJ(n, true) {
		t.Fatal("PCM write energy not above DRAM write energy")
	}
}

func TestIdleDraw(t *testing.T) {
	d := New(Skylake8GB())
	p := New(PCM8GB())
	// DDR3L 8GB self-refresh = 12.4 mW nominal (the DRIPS budget).
	if got := d.IdleDrawMW(SelfRefresh); math.Abs(got-12.4) > 1e-9 {
		t.Fatalf("DDR3L self-refresh draw = %v, want 12.4", got)
	}
	if p.IdleDrawMW(SelfRefresh) >= d.IdleDrawMW(SelfRefresh)/2 {
		t.Fatal("PCM idle draw not well below DDR3L self-refresh")
	}
	if d.IdleDrawMW(PoweredOff) != 0 {
		t.Fatal("powered-off draw not zero")
	}
	if d.IdleDrawMW(Active) <= d.IdleDrawMW(SelfRefresh) {
		t.Fatal("active draw not above self-refresh")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(Skylake8GB())
	data := make([]byte, 3*BlockSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := m.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x1000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	r, w := m.Stats()
	if r != 3 || w != 3 {
		t.Fatalf("stats = %d,%d blocks, want 3,3", r, w)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New(Skylake8GB())
	got, err := m.Read(0x2000, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("unwritten block not zero")
	}
}

func TestAccessRules(t *testing.T) {
	m := New(Skylake8GB())
	if err := m.Write(7, make([]byte, BlockSize)); err == nil {
		t.Fatal("unaligned address accepted")
	}
	if err := m.Write(0, make([]byte, 10)); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if err := m.Write(8<<30, make([]byte, BlockSize)); err == nil {
		t.Fatal("beyond-capacity write accepted")
	}
	if err := m.SetState(SelfRefresh); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(0, BlockSize); err == nil {
		t.Fatal("read during self-refresh succeeded")
	}
}

func TestSelfRefreshRetainsVolatileData(t *testing.T) {
	m := New(Skylake8GB())
	if err := m.Write(0, []byte(pad("context", BlockSize))); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(SelfRefresh); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "context" {
		t.Fatal("self-refresh lost data")
	}
}

func TestPowerOffDestroysDDR3L(t *testing.T) {
	m := New(Skylake8GB())
	if err := m.Write(0, []byte(pad("secret", BlockSize))); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(PoweredOff); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0, BlockSize)
	if !bytes.Equal(got, make([]byte, BlockSize)) {
		t.Fatal("DDR3L retained data across power-off")
	}
}

func TestPowerOffRetainsPCM(t *testing.T) {
	m := New(PCM8GB())
	if err := m.Write(0, []byte(pad("persist", BlockSize))); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(PoweredOff); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:7]) != "persist" {
		t.Fatal("PCM lost data across power-off")
	}
}

func TestCKERules(t *testing.T) {
	m := New(Skylake8GB())
	if err := m.Write(0, []byte(pad("x", BlockSize))); err != nil {
		t.Fatal(err)
	}
	m.SetCKE(false)
	if err := m.SetState(SelfRefresh); err == nil {
		t.Fatal("self-refresh without CKE accepted")
	}
	m.SetCKE(true)
	if err := m.SetState(SelfRefresh); err != nil {
		t.Fatal(err)
	}
	// Dropping CKE mid-self-refresh destroys contents.
	m.SetCKE(false)
	m.SetCKE(true)
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Read(0, BlockSize)
	if got[0] == 'x' {
		t.Fatal("DDR3L retained data after CKE dropped in self-refresh")
	}
}

func TestPCMIgnoresCKE(t *testing.T) {
	m := New(PCM8GB())
	if err := m.Write(0, []byte(pad("nv", BlockSize))); err != nil {
		t.Fatal(err)
	}
	m.SetCKE(false)
	if err := m.SetState(SelfRefresh); err != nil {
		t.Fatalf("PCM idle entry required CKE: %v", err)
	}
	m.SetCKE(true)
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0, BlockSize)
	if err != nil || got[0] != 'n' {
		t.Fatalf("PCM lost data on CKE games: %v %v", got[:2], err)
	}
}

func TestSelfRefreshFromOffRejected(t *testing.T) {
	m := New(Skylake8GB())
	if err := m.SetState(PoweredOff); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(SelfRefresh); err == nil {
		t.Fatal("self-refresh from power-off accepted")
	}
}

func TestOnDrawHook(t *testing.T) {
	m := New(Skylake8GB())
	var draws []float64
	m.OnDraw = func(mw float64) { draws = append(draws, mw) }
	if err := m.SetState(SelfRefresh); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	if len(draws) != 2 || draws[0] >= draws[1] {
		t.Fatalf("draw hook sequence = %v", draws)
	}
}

// Property: write/read round trips preserve data for arbitrary block
// patterns and addresses while power stays on.
func TestSparseStoreProperty(t *testing.T) {
	f := func(addrs []uint16, seed byte) bool {
		m := New(Skylake8GB())
		shadow := make(map[uint64][]byte)
		for i, a := range addrs {
			addr := uint64(a) * BlockSize
			blk := make([]byte, BlockSize)
			for j := range blk {
				blk[j] = byte(i) ^ seed ^ byte(j)
			}
			if err := m.Write(addr, blk); err != nil {
				return false
			}
			shadow[addr] = blk
		}
		for addr, want := range shadow {
			got, err := m.Read(addr, BlockSize)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func pad(s string, n int) string {
	b := make([]byte, n)
	copy(b, s)
	return string(b)
}

func BenchmarkBlockWrite(b *testing.B) {
	m := New(Skylake8GB())
	blk := make([]byte, BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Write(uint64(i%1024)*BlockSize, blk)
	}
}

func TestReadBlockInto(t *testing.T) {
	m := New(Skylake8GB())
	blk := make([]byte, BlockSize)
	for i := range blk {
		blk[i] = byte(i + 1)
	}
	if err := m.Write(0x1000, blk); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, BlockSize)
	if err := m.ReadBlockInto(0x1000, dst[:BlockSize-1]); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := m.ReadBlockInto(0x1000, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, blk) {
		t.Fatal("ReadBlockInto returned wrong bytes")
	}
	// An unwritten block must zero-fill the whole destination, not leave
	// stale bytes from a previous read.
	if err := m.ReadBlockInto(0x2000, dst); err != nil {
		t.Fatal(err)
	}
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("unwritten block byte %d = %#x, want 0", i, b)
		}
	}
	if err := m.ReadBlockInto(0x1001, dst); err == nil {
		t.Fatal("unaligned address accepted")
	}
	if r, w := m.Stats(); r != 2 || w != 1 {
		t.Fatalf("stats read=%d write=%d, want 2/1 (failed calls must not count)", r, w)
	}
}

// TestBlockViewAliasing pins the documented aliasing contract: the view is
// the module's own storage, reflects later in-place writes, and dies with
// a power transition that destroys contents.
func TestBlockViewAliasing(t *testing.T) {
	m := New(Skylake8GB())
	if v, err := m.BlockView(0x40); err != nil || v != nil {
		t.Fatalf("view of unwritten block = %v, %v; want nil, nil", v, err)
	}
	blk := make([]byte, BlockSize)
	blk[0] = 0xAA
	if err := m.Write(0x40, blk); err != nil {
		t.Fatal(err)
	}
	v, err := m.BlockView(0x40)
	if err != nil || len(v) != BlockSize || v[0] != 0xAA {
		t.Fatalf("view = %v, %v", v[:1], err)
	}
	// In-place rewrite: the existing view observes the new bytes.
	blk[0] = 0xBB
	if err := m.Write(0x40, blk); err != nil {
		t.Fatal(err)
	}
	if v[0] != 0xBB {
		t.Fatalf("view did not track in-place write: %#x", v[0])
	}
	// Volatile power-off destroys contents; a fresh view must be nil and
	// the old view must no longer alias module storage.
	if err := m.SetState(PoweredOff); err != nil {
		t.Fatal(err)
	}
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	if nv, err := m.BlockView(0x40); err != nil || nv != nil {
		t.Fatalf("view after destroy = %v, %v; want nil, nil", nv, err)
	}
	if err := m.Write(0x40, blk); err != nil {
		t.Fatal(err)
	}
	if &v[0] == &blk[0] {
		t.Fatal("view aliases caller buffer")
	}
	if _, err := m.BlockView(0x41); err == nil {
		t.Fatal("unaligned view accepted")
	}
}

// TestWriteUpdatesInPlace pins the in-place rewrite guarantee Write now
// documents: steady-state rewrites reuse the existing block storage.
func TestWriteUpdatesInPlace(t *testing.T) {
	m := New(Skylake8GB())
	blk := make([]byte, BlockSize)
	if err := m.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	v, err := m.BlockView(0)
	if err != nil {
		t.Fatal(err)
	}
	blk[7] = 0x77
	if err := m.Write(0, blk); err != nil {
		t.Fatal(err)
	}
	if v[7] != 0x77 {
		t.Fatal("rewrite allocated fresh storage instead of updating in place")
	}
}

func TestCorruptBit(t *testing.T) {
	m := New(Skylake8GB())
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	rBefore, wBefore := m.Stats()

	// Legal in Active.
	if err := m.CorruptBit(0x1000+5, 3); err != nil {
		t.Fatal(err)
	}
	// Legal in SelfRefresh; counts no traffic.
	if err := m.SetState(SelfRefresh); err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptBit(0x1000+5, 3); err != nil {
		t.Fatal(err)
	}
	if r, w := m.Stats(); r != rBefore || w != wBefore {
		t.Fatalf("corruption generated traffic: %d,%d -> %d,%d", rBefore, wBefore, r, w)
	}
	// Double flip restored the original byte.
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x1000, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("double bit flip did not restore contents")
	}
	// Single flip changes exactly one bit.
	if err := m.CorruptBit(0x1000, 7); err != nil {
		t.Fatal(err)
	}
	got, err = m.Read(0x1000, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != data[0]^0x80 {
		t.Fatalf("byte 0 = %#x, want %#x", got[0], data[0]^0x80)
	}

	// Never-written blocks materialize as zeros plus the flip.
	if err := m.CorruptBit(0x8000+1, 0); err != nil {
		t.Fatal(err)
	}
	got, err = m.Read(0x8000, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Fatalf("materialized block byte = %#x, want 0x01", got[1])
	}

	// Illegal without contents or beyond capacity.
	if err := m.SetState(PoweredOff); err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptBit(0x1000, 0); err == nil {
		t.Fatal("corrupt in PoweredOff accepted")
	}
	if err := m.SetState(Active); err != nil {
		t.Fatal(err)
	}
	if err := m.CorruptBit(m.Config().CapacityBytes, 0); err == nil {
		t.Fatal("corrupt beyond capacity accepted")
	}
}
