// Package dram models the platform main memory: a DDR3L module with
// self-refresh (the baseline of Table 1), and the phase-change-memory (PCM)
// variant evaluated in §8.3 (Fig. 6(d)), which retains data with no refresh
// and no CKE drive.
//
// The module stores real bytes (sparse, 64-byte blocks) so that the
// SGX-protected context region holds actual ciphertext, and volatility is
// honest: powering a DDR3L module off destroys its contents, while PCM
// retains them.
package dram

import (
	"fmt"

	"odrips/internal/sim"
)

// BlockSize is the access granularity in bytes (one cache line).
const BlockSize = 64

// Technology selects the memory technology.
type Technology int

const (
	// DDR3L is the baseline volatile DRAM (needs self-refresh + CKE).
	DDR3L Technology = iota
	// PCM is non-volatile phase-change memory used as main memory.
	PCM
)

var techNames = [...]string{"DDR3L", "PCM"}

// String returns the technology name.
func (t Technology) String() string {
	if t < 0 || int(t) >= len(techNames) {
		return fmt.Sprintf("Technology(%d)", int(t))
	}
	return techNames[t]
}

// PowerState is the module power state.
type PowerState int

const (
	// Active: normal operation, reads/writes allowed.
	Active PowerState = iota
	// SelfRefresh: contents retained (DDR3L refreshes itself with CKE held
	// low; PCM simply idles), array inaccessible.
	SelfRefresh
	// PoweredOff: supply removed. DDR3L loses contents; PCM retains them.
	PoweredOff
)

var stateNames = [...]string{"active", "self-refresh", "off"}

// String returns the state name.
func (s PowerState) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
	return stateNames[s]
}

// Config describes a memory module.
type Config struct {
	Tech          Technology
	CapacityBytes uint64
	TransferMTps  int // e.g. 1600 for DDR3L-1600 ("1.6 GHz" in the paper)
	Channels      int
	BytesPerBeat  int // bus width per channel in bytes
}

// Skylake8GB returns the paper's Table 1 memory configuration: 8 GB
// dual-channel DDR3L-1600.
func Skylake8GB() Config {
	return Config{Tech: DDR3L, CapacityBytes: 8 << 30, TransferMTps: 1600, Channels: 2, BytesPerBeat: 8}
}

// PCM8GB returns the §8.3 PCM-as-main-memory configuration.
func PCM8GB() Config {
	return Config{Tech: PCM, CapacityBytes: 8 << 30, TransferMTps: 1600, Channels: 2, BytesPerBeat: 8}
}

// Module is one memory module with sparse block-addressed contents.
type Module struct {
	cfg    Config
	state  PowerState
	cke    bool // CKE pin held (DDR3L self-refresh requires it)
	blocks map[uint64][]byte

	// Stats.
	readBlocks  uint64
	writeBlocks uint64

	// OnDraw, if non-nil, receives the new nominal draw in mW on power
	// state changes.
	OnDraw func(mW float64)
}

// New creates a module in the Active state with CKE asserted.
func New(cfg Config) *Module {
	if cfg.CapacityBytes == 0 || cfg.TransferMTps <= 0 || cfg.Channels <= 0 || cfg.BytesPerBeat <= 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	return &Module{cfg: cfg, state: Active, cke: true, blocks: make(map[uint64][]byte)}
}

// Config returns the module configuration.
func (m *Module) Config() Config { return m.cfg }

// State returns the current power state.
func (m *Module) State() PowerState { return m.state }

// CKE reports whether the CKE pin is held.
func (m *Module) CKE() bool { return m.cke }

// Stats returns blocks read and written since creation.
func (m *Module) Stats() (readBlocks, writeBlocks uint64) { return m.readBlocks, m.writeBlocks }

// NonVolatile reports whether contents survive power-off.
func (m *Module) NonVolatile() bool { return m.cfg.Tech == PCM }

// NeedsSelfRefresh reports whether retention in idle requires self-refresh
// (and therefore a held CKE pin).
func (m *Module) NeedsSelfRefresh() bool { return m.cfg.Tech == DDR3L }

// PeakBandwidth returns the peak transfer bandwidth in bytes/second.
func (m *Module) PeakBandwidth() float64 {
	return float64(m.cfg.TransferMTps) * 1e6 * float64(m.cfg.Channels) * float64(m.cfg.BytesPerBeat)
}

// Technology-dependent transfer derating and fixed pipeline latencies.
// DDR3L sustains ~85% of peak on streaming transfers; PCM reads slower and
// writes much slower than DRAM (§8.3; PCM write latency is the well-known
// penalty of the technology).
func (m *Module) effBandwidth(write bool) float64 {
	bw := m.PeakBandwidth()
	switch m.cfg.Tech {
	case DDR3L:
		return bw * 0.85
	default: // PCM
		if write {
			return bw * 0.15
		}
		return bw * 0.55
	}
}

// fixed per-transfer pipeline setup latencies.
func (m *Module) fixedLatency(write bool) sim.Duration {
	if write {
		return 2 * sim.Microsecond
	}
	return sim.Microsecond
}

// TransferTime returns the streaming transfer latency for n bytes.
func (m *Module) TransferTime(n int, write bool) sim.Duration {
	if n <= 0 {
		return 0
	}
	return m.fixedLatency(write) + sim.FromSeconds(float64(n)/m.effBandwidth(write))
}

// TransferEnergyUJ returns the energy for a streaming transfer of n bytes
// in microjoules (IO + array energy; used to charge context save/restore).
func (m *Module) TransferEnergyUJ(n int, write bool) float64 {
	// DDR3L: ~40 pJ/B read, ~45 pJ/B write. PCM: reads comparable, writes
	// an order of magnitude more expensive.
	var pJPerB float64
	switch {
	case m.cfg.Tech == DDR3L && write:
		pJPerB = 45
	case m.cfg.Tech == DDR3L:
		pJPerB = 40
	case write: // PCM write
		pJPerB = 480
	default: // PCM read
		pJPerB = 55
	}
	return float64(n) * pJPerB * 1e-6
}

// IdleDrawMW returns the nominal retention draw per power state: the DDR3L
// self-refresh power for the configured capacity, or the PCM standby draw
// (array leakage only; no refresh).
func (m *Module) IdleDrawMW(s PowerState) float64 {
	gib := float64(m.cfg.CapacityBytes) / float64(1<<30)
	switch {
	case s == PoweredOff:
		return 0
	case s == Active:
		// Active standby (CKE high, no traffic): calibrated to the C0
		// platform budget; scales with capacity and, weakly, with the
		// interface rate (§8.2: lower DRAM frequency trims active power).
		rate := 0.15 + 0.85*float64(m.cfg.TransferMTps)/1600
		if m.cfg.Tech == PCM {
			return 28 * gib * rate
		}
		return 35 * gib * rate
	case m.cfg.Tech == PCM:
		// PCM idle: no refresh; controller/array standby only.
		return 0.55 * gib
	default:
		// DDR3L self-refresh: ~1.55 mW/GiB nominal -> 12.4 mW for 8 GiB.
		return 1.55 * gib
	}
}

// SetCKE drives the CKE pin. Dropping CKE while a DDR3L module is in
// self-refresh loses the contents: self-refresh requires the pin held low
// by a powered driver (Fig. 1(a), component 6).
func (m *Module) SetCKE(held bool) {
	if m.cke == held {
		return
	}
	m.cke = held
	if !held && m.state == SelfRefresh && m.NeedsSelfRefresh() {
		m.destroy()
	}
}

// SetState transitions the power state, enforcing technology rules.
func (m *Module) SetState(s PowerState) error {
	if s == m.state {
		return nil
	}
	if s == SelfRefresh && m.NeedsSelfRefresh() && !m.cke {
		return fmt.Errorf("dram: self-refresh entry without CKE held")
	}
	if m.state == PoweredOff && s == SelfRefresh {
		return fmt.Errorf("dram: cannot enter self-refresh from power-off")
	}
	if s == PoweredOff && !m.NonVolatile() {
		m.destroy()
	}
	m.state = s
	if m.OnDraw != nil {
		m.OnDraw(m.IdleDrawMW(s))
	}
	return nil
}

func (m *Module) destroy() {
	m.blocks = make(map[uint64][]byte)
}

func (m *Module) checkAccess(addr uint64, n int) error {
	if m.state != Active {
		return fmt.Errorf("dram: access in state %s", m.state)
	}
	if addr%BlockSize != 0 || n%BlockSize != 0 {
		return fmt.Errorf("dram: unaligned access addr=%#x len=%d", addr, n)
	}
	if addr+uint64(n) > m.cfg.CapacityBytes {
		return fmt.Errorf("dram: access [%#x,%#x) beyond capacity %#x", addr, addr+uint64(n), m.cfg.CapacityBytes)
	}
	return nil
}

// Write stores data (block-aligned) at addr. The bytes are copied: the
// module never retains a reference to data, so callers may reuse their
// buffer immediately. Blocks that were written before are updated in place,
// so steady-state rewrites allocate nothing.
func (m *Module) Write(addr uint64, data []byte) error {
	if err := m.checkAccess(addr, len(data)); err != nil {
		return err
	}
	for off := 0; off < len(data); off += BlockSize {
		a := addr + uint64(off)
		blk, ok := m.blocks[a]
		if !ok {
			blk = make([]byte, BlockSize)
			m.blocks[a] = blk
		}
		copy(blk, data[off:off+BlockSize])
		m.writeBlocks++
	}
	return nil
}

// Read returns n bytes (block-aligned) at addr in a freshly allocated
// buffer. Unwritten blocks read as zeros, as a scrubbed DRAM would.
func (m *Module) Read(addr uint64, n int) ([]byte, error) {
	if err := m.checkAccess(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for off := 0; off < n; off += BlockSize {
		if blk, ok := m.blocks[addr+uint64(off)]; ok {
			copy(out[off:], blk)
		}
		m.readBlocks++
	}
	return out, nil
}

// ReadBlockInto copies the single block at addr into dst[:BlockSize]
// without allocating. dst must hold at least BlockSize bytes; an unwritten
// block reads as zeros. It counts as one block of read traffic, exactly
// like reading the block through Read.
func (m *Module) ReadBlockInto(addr uint64, dst []byte) error {
	if err := m.checkAccess(addr, BlockSize); err != nil {
		return err
	}
	if len(dst) < BlockSize {
		return fmt.Errorf("dram: ReadBlockInto dst of %d bytes, need %d", len(dst), BlockSize)
	}
	dst = dst[:BlockSize]
	if blk, ok := m.blocks[addr]; ok {
		copy(dst, blk)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	m.readBlocks++
	return nil
}

// CorruptBit flips a single stored bit — the fault-injection backdoor that
// models a retention or disturb error while the module holds data. Unlike
// Write it is legal in both Active and SelfRefresh (the two states in which
// contents exist), generates no bus traffic, and bypasses the alignment
// rules: addr is a byte address, bit selects the bit within that byte.
// Flipping a bit in a never-written block materializes the block first
// (zeros plus the flipped bit), exactly as a disturb error in scrubbed
// memory would read back.
func (m *Module) CorruptBit(addr uint64, bit uint) error {
	if m.state != Active && m.state != SelfRefresh {
		return fmt.Errorf("dram: corrupt in state %s (no contents)", m.state)
	}
	if addr >= m.cfg.CapacityBytes {
		return fmt.Errorf("dram: corrupt at %#x beyond capacity %#x", addr, m.cfg.CapacityBytes)
	}
	base := addr - addr%BlockSize
	blk, ok := m.blocks[base]
	if !ok {
		blk = make([]byte, BlockSize)
		m.blocks[base] = blk
	}
	blk[addr-base] ^= 1 << (bit % 8)
	return nil
}

// BlockView returns a zero-copy view of the block at addr, or nil if the
// block was never written. It counts as one block of read traffic.
//
// Aliasing contract: the returned slice is the module's own storage.
// Callers must treat it as read-only, and it is only valid until the next
// Write covering addr (which updates the bytes in place), the next power
// transition that destroys contents, or — for a nil-returning addr — the
// first Write that materializes the block. Callers that need a stable copy
// must use Read or ReadBlockInto instead.
func (m *Module) BlockView(addr uint64) ([]byte, error) {
	if err := m.checkAccess(addr, BlockSize); err != nil {
		return nil, err
	}
	m.readBlocks++
	return m.blocks[addr], nil
}
