package memostore

import (
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

func openT(t *testing.T, mode Mode) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), mode)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s == nil {
		t.Fatalf("Open returned nil store for mode %v", mode)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := openT(t, RW)
	key := []byte("config-class-A|res=42")
	payload := []byte("the memoized result bytes")

	if _, ok, err := s.Load("sweep", key); ok || err != nil {
		t.Fatalf("cold load: ok=%v err=%v, want miss", ok, err)
	}
	s.Save("sweep", key, payload)
	got, ok, err := s.Load("sweep", key)
	if err != nil || !ok {
		t.Fatalf("warm load: ok=%v err=%v", ok, err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClassAndKeySeparation(t *testing.T) {
	s := openT(t, RW)
	s.Save("sweep", []byte("k1"), []byte("v1"))
	if _, ok, err := s.Load("trans", []byte("k1")); err != nil || ok {
		t.Fatalf("hit across classes (ok=%v err=%v)", ok, err)
	}
	if _, ok, err := s.Load("sweep", []byte("k2")); err != nil || ok {
		t.Fatalf("hit across keys (ok=%v err=%v)", ok, err)
	}
}

func TestModes(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir, RW)
	if err != nil {
		t.Fatal(err)
	}
	rw.Save("c", []byte("k"), []byte("v"))

	ro, err := Open(dir, RO)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ro.Load("c", []byte("k")); err != nil || !ok {
		t.Fatalf("ro: want hit (ok=%v err=%v)", ok, err)
	}
	ro.Save("c", []byte("k2"), []byte("v2"))
	if _, ok, err := ro.Load("c", []byte("k2")); err != nil || ok {
		t.Fatalf("ro: save must not persist (ok=%v err=%v)", ok, err)
	}

	ver, err := Open(dir, Verify)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ver.Load("c", []byte("k")); err != nil || !ok {
		t.Fatalf("verify: want hit, callers re-compute and compare (ok=%v err=%v)", ok, err)
	}

	var off *Store // nil store behaves as Off everywhere
	if off.Mode() != Off {
		t.Fatal("nil store mode")
	}
	off.Save("c", []byte("k"), []byte("v"))
	if _, ok, err := off.Load("c", []byte("k")); ok || err != nil {
		t.Fatal("nil store must miss")
	}
	if s, err := Open(dir, Off); err != nil || s != nil {
		t.Fatalf("Open(Off) = %v, %v; want nil, nil", s, err)
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"off", Off}, {"rw", RW}, {"ro", RO}, {"verify", Verify}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String round-trip: %v -> %q", got, got.String())
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("want error for bogus mode")
	}
}

// TestCorruptionMatrix is the satellite corruption/version matrix: every
// way an entry can be damaged or version-skewed must degrade to a miss
// (recomputation), never a bogus hit, a panic, or a crash.
func TestCorruptionMatrix(t *testing.T) {
	key := []byte("the-key")
	payload := []byte("the-payload-bytes-of-this-entry")

	write := func(t *testing.T, s *Store) string {
		t.Helper()
		s.Save("c", key, payload)
		path := s.EntryPath("c", key)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("entry not written: %v", err)
		}
		return path
	}

	mutate := map[string]struct {
		change      func(t *testing.T, path string)
		wantCorrupt bool // else counted as version skew / miss
	}{
		"truncated-header": {func(t *testing.T, path string) {
			data := readT(t, path)
			writeT(t, path, data[:headerLen/2])
		}, true},
		"truncated-payload": {func(t *testing.T, path string) {
			data := readT(t, path)
			writeT(t, path, data[:len(data)-trailerLen-3])
		}, true},
		"empty-file": {func(t *testing.T, path string) {
			writeT(t, path, nil)
		}, true},
		"flipped-magic": {func(t *testing.T, path string) {
			flipByte(t, path, 0)
		}, true},
		"flipped-payload-byte": {func(t *testing.T, path string) {
			flipByte(t, path, headerLen+2)
		}, true},
		"flipped-checksum-byte": {func(t *testing.T, path string) {
			data := readT(t, path)
			flipByte(t, path, len(data)-1)
		}, true},
		"schema-version-bump": {func(t *testing.T, path string) {
			flipByte(t, path, len(magic)) // first schema byte
		}, false},
		"build-fingerprint-mismatch": {func(t *testing.T, path string) {
			flipByte(t, path, len(magic)+4) // first buildFP byte
		}, false},
		"key-hash-mismatch": {func(t *testing.T, path string) {
			flipByte(t, path, len(magic)+4+32) // first keyHash byte
		}, false},
		"trailing-garbage": {func(t *testing.T, path string) {
			data := readT(t, path)
			writeT(t, path, append(data, 0xAA))
		}, true},
	}

	names := make([]string, 0, len(mutate))
	for name := range mutate {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tc := mutate[name]
		t.Run(name, func(t *testing.T) {
			s := openT(t, RW)
			path := write(t, s)
			tc.change(t, path)
			got, ok, err := s.Load("c", key)
			if ok || got != nil {
				t.Fatalf("damaged entry returned a hit (%q)", got)
			}
			if tc.wantCorrupt {
				if _, isCorrupt := err.(*CorruptError); !isCorrupt {
					t.Fatalf("want *CorruptError, got %v", err)
				}
			} else if err != nil {
				t.Fatalf("version skew must be a silent miss, got %v", err)
			}
			st := s.Stats()
			if tc.wantCorrupt && st.Corrupt != 1 {
				t.Fatalf("stats %+v, want Corrupt=1", st)
			}
			if !tc.wantCorrupt && st.Corrupt != 0 {
				t.Fatalf("stats %+v, want no corruption count", st)
			}
			// The damaged entry must not poison a recompute-and-save.
			s.Save("c", key, payload)
			got, ok, err = s.Load("c", key)
			if err != nil || !ok || string(got) != string(payload) {
				t.Fatalf("recompute-and-save after damage: ok=%v err=%v got=%q", ok, err, got)
			}
		})
	}
}

// TestConcurrentWriters races many rw writers (and readers) on the same
// entry under -race: every load observes either a miss or one writer's
// complete payload — never a torn entry.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	key := []byte("contended")
	valid := map[string]bool{}
	const writers = 8
	for i := 0; i < writers; i++ {
		valid[string(payloadFor(i))] = true
	}

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		s, err := Open(dir, RW)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Store, i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Save("c", key, payloadFor(i))
				if got, ok, err := s.Load("c", key); err != nil {
					t.Errorf("load: %v", err)
				} else if ok && !valid[string(got)] {
					t.Errorf("torn payload %q", got)
				}
			}
		}(s, i)
	}
	wg.Wait()

	s, err := Open(dir, RO)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load("c", key)
	if err != nil || !ok || !valid[string(got)] {
		t.Fatalf("final load: ok=%v err=%v got=%q", ok, err, got)
	}
	// No temp-file strays may survive the races' renames.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("stray temp files: %v", matches)
	}
}

func TestBuildFingerprintStable(t *testing.T) {
	a, err := buildFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := buildFingerprint()
	if a != b || a == ([32]byte{}) {
		t.Fatalf("fingerprint unstable or zero: %x vs %x", a, b)
	}
	if BuildFingerprintHex() == "" {
		t.Fatal("BuildFingerprintHex empty")
	}
}

func TestOversizedPayloadDropped(t *testing.T) {
	s := openT(t, RW)
	big := make([]byte, maxPayload+1)
	s.Save("c", []byte("k"), big)
	if _, ok, err := s.Load("c", []byte("k")); err != nil || ok {
		t.Fatalf("oversized payload must not persist (ok=%v err=%v)", ok, err)
	}
}

func payloadFor(i int) []byte {
	return []byte{byte('A' + i), byte('0' + i), byte(i)}
}

func readT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func writeT(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	data := readT(t, path)
	if off >= len(data) {
		t.Fatalf("flip offset %d beyond entry (%d bytes)", off, len(data))
	}
	data[off] ^= 0x01
	writeT(t, path, data)
}

// TestConcurrentViewDropView hammers View/DropView/Stats from many
// goroutines under -race: the fleet engine's shared memo plane hangs off
// store views while the load harness churns them, so the discipline here
// is part of the concurrency contract. Beyond race-freedom, it asserts
// the View invariant that every caller between two drops observes the
// same singleton.
func TestConcurrentViewDropView(t *testing.T) {
	s := openT(t, RW)
	classes := []string{"cycles", "platform.cycles", "sweep", "trans"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				class := classes[(g+i)%len(classes)]
				v := s.View(class, func() any { return new(sync.Map) })
				if v == nil {
					t.Errorf("View(%q) returned nil on a live store", class)
					return
				}
				again := s.View(class, func() any { return new(sync.Map) })
				// No drop can have happened between the two calls only if
				// nobody else dropped; so just exercise, and assert the
				// singleton property single-threaded below.
				_ = again
				if i%13 == 0 {
					s.DropView(class)
				}
				if i%29 == 0 {
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	// Single-threaded singleton check: between drops, View returns one
	// identity.
	v1 := s.View("cycles", func() any { return new(sync.Map) })
	v2 := s.View("cycles", func() any { return new(sync.Map) })
	if v1 != v2 {
		t.Fatal("View returned distinct singletons without an intervening DropView")
	}
	s.DropView("cycles")
	v3 := s.View("cycles", func() any { return new(sync.Map) })
	if v3 == v1 {
		t.Fatal("DropView did not discard the view")
	}
}

// TestStatsFootprint checks the Stats() point-in-time fields: live view
// count and on-disk entry count/bytes.
func TestStatsFootprint(t *testing.T) {
	s := openT(t, RW)
	if st := s.Stats(); st.Views != 0 || st.DiskEntries != 0 || st.DiskBytes != 0 {
		t.Fatalf("fresh store footprint %+v", st)
	}
	s.Save("sweep", []byte("k1"), []byte("payload-one"))
	s.Save("trans", []byte("k2"), []byte("p2"))
	s.View("cycles", func() any { return new(sync.Map) })
	st := s.Stats()
	if st.Views != 1 {
		t.Fatalf("Views = %d want 1", st.Views)
	}
	if st.DiskEntries != 2 {
		t.Fatalf("DiskEntries = %d want 2", st.DiskEntries)
	}
	wantBytes := uint64(0)
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		wantBytes += uint64(info.Size())
	}
	if st.DiskBytes != wantBytes {
		t.Fatalf("DiskBytes = %d want %d", st.DiskBytes, wantBytes)
	}
	s.DropView("cycles")
	if st := s.Stats(); st.Views != 0 {
		t.Fatalf("Views after DropView = %d want 0", st.Views)
	}
	// A nil store reports a zero footprint rather than erroring.
	var nilStore *Store
	if st := nilStore.Stats(); st != (Stats{}) {
		t.Fatalf("nil store stats %+v", st)
	}
}
