package memostore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the pack-segment layer (DESIGN.md §17): loose one-file
// entries compacted into append-only, content-addressed, checksummed
// segments with an in-memory index. The loose path pays an open + read +
// header decode per lookup — thousands of syscalls for a warm fleet or a
// freshly started server — while a segment is read and verified once per
// open and every subsequent load is a map probe over zero-copy payload
// slices.
//
// Soundness is the same contract as loose entries, enforced at segment
// granularity: the header carries the schema version and build
// fingerprint (wholesale invalidation — a foreign segment is skew, i.e. a
// silent miss), a trailing SHA-256 over the whole file catches any
// corruption (a typed *CorruptError miss), and every entry's full key
// hash is the index key, so a truncated-filename collision cannot
// produce a false hit. A segment that fails any check contributes no
// entries; readers fall back to loose files and recompute — the exact
// cold-path behavior.
//
// Pack segment layout (little-endian, fixed order):
//
//	magic        [8]byte  "ODRPACK1"
//	schema       uint32   SchemaVersion
//	buildFP      [32]byte SHA-256 of the running executable
//	count        uint32
//	count × {
//	  classLen   uint16
//	  class      [classLen]byte
//	  keyHash    [32]byte SHA-256 of the logical key
//	  payloadLen uint32
//	  payload    [payloadLen]byte
//	}
//	fileSum      [32]byte SHA-256 of all preceding bytes
const (
	packMagic      = "ODRPACK1"
	packHeaderLen  = len(packMagic) + 4 + 32 + 4
	packTrailerLen = 32

	// packEntryMin is the smallest possible encoded entry; it bounds the
	// count field against the remaining bytes so a corrupt count cannot
	// drive a huge allocation.
	packEntryMin   = 2 + 32 + 4
	maxPackEntries = 1 << 24
)

// packKey identifies one logical entry in the segment index: the class
// plus the full (untruncated) key hash.
type packKey struct {
	class string
	kh    [32]byte
}

// packEntryView is one decoded entry; payload aliases the segment buffer
// (zero-copy) and must be treated as read-only.
type packEntryView struct {
	class   string
	kh      [32]byte
	payload []byte
}

// packSegment is one accepted segment's metadata.
type packSegment struct {
	name string
	size int64
}

// packIndex is the immutable in-memory view of every accepted pack
// segment, built once per open (and swapped wholesale by Compact).
type packIndex struct {
	entries  map[packKey][]byte // zero-copy payload slices into segment buffers
	segments []packSegment      // accepted segments, lexicographic name order
	shadowed map[string]bool    // loose basenames the packed entries would occupy
	bytes    int64              // in-memory bytes pinned by the index (segment buffers)

	// damaged remembers the first corrupt segment so misses can carry the
	// diagnostic — the same fail-safe *CorruptError-miss contract as a
	// corrupt loose entry.
	damaged *CorruptError
}

// get probes the index; a nil index never hits.
func (p *packIndex) get(class string, kh [32]byte) ([]byte, bool) {
	if p == nil || len(p.entries) == 0 {
		return nil, false
	}
	payload, ok := p.entries[packKey{class: class, kh: kh}]
	return payload, ok
}

// looseName is the basename EntryPath uses for (class, keyHash).
func looseName(class string, kh [32]byte) string {
	return fmt.Sprintf("%s-%x.memo", class, kh[:16])
}

// classOfLooseName recovers the class from a loose entry's basename and
// cross-checks it against the entry's own key hash. A renamed or foreign
// file fails the check and is not Compact's to fold.
func classOfLooseName(name string, kh [32]byte) (string, bool) {
	base := strings.TrimSuffix(name, ".memo")
	suffix := fmt.Sprintf("-%x", kh[:16])
	if !strings.HasSuffix(base, suffix) || len(base) == len(suffix) {
		return "", false
	}
	return base[:len(base)-len(suffix)], true
}

// packIndexView returns the store's segment index, loading every *.pack
// file in the store directory exactly once per open. Compact swaps a
// fresh index in; readers always observe a complete one.
func (s *Store) packIndexView() *packIndex {
	if idx := s.packs.Load(); idx != nil {
		return idx
	}
	s.packOnce.Do(func() {
		idx := s.loadPackDir()
		// CompareAndSwap so a Compact that raced ahead of the lazy load
		// keeps its (strictly fresher) index.
		s.packs.CompareAndSwap(nil, idx)
	})
	return s.packs.Load()
}

// loadPackDir reads and verifies every segment in the store directory.
// Unreadable, corrupt, or version-skewed segments contribute no entries
// (counted like their loose-entry analogues); within one build,
// duplicate keys across segments hold byte-identical payloads
// (deterministic computes), so first-segment-wins is an arbitrary but
// stable choice.
func (s *Store) loadPackDir() *packIndex {
	idx := &packIndex{entries: make(map[packKey][]byte), shadowed: make(map[string]bool)}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return idx
	}
	var names []string
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".pack" {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, rerr := os.ReadFile(filepath.Join(s.dir, name))
		if rerr != nil {
			continue
		}
		views, v := decodePack(data, s.buildFP)
		switch v.kind {
		case 0:
			for _, e := range views {
				k := packKey{class: e.class, kh: e.kh}
				if _, dup := idx.entries[k]; dup {
					continue
				}
				idx.entries[k] = e.payload
				idx.shadowed[looseName(e.class, e.kh)] = true
			}
			idx.segments = append(idx.segments, packSegment{name: name, size: int64(len(data))})
			idx.bytes += int64(len(data))
		case 1:
			s.count(func(st *Stats) { st.VersionSkew++ })
		default:
			s.count(func(st *Stats) { st.Corrupt++ })
			if idx.damaged == nil {
				idx.damaged = &CorruptError{Path: filepath.Join(s.dir, name), Reason: v.reason}
			}
		}
	}
	return idx
}

// decodePack validates one raw segment against the expected build
// fingerprint. It is total: any input yields a verdict, never a panic,
// and entries are returned only when the magic, whole-file checksum,
// schema, build fingerprint, and every entry bound all verified. Entry
// payloads alias data.
func decodePack(data []byte, buildFP [32]byte) ([]packEntryView, entryVerdict) {
	if len(data) < packHeaderLen+packTrailerLen {
		return nil, corrupt("short pack")
	}
	if string(data[:len(packMagic)]) != packMagic {
		return nil, corrupt("bad pack magic")
	}
	body := data[:len(data)-packTrailerLen]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[len(data)-packTrailerLen:]) {
		return nil, corrupt("pack checksum mismatch")
	}
	off := len(packMagic)
	schema := binary.LittleEndian.Uint32(data[off:])
	off += 4
	var gotBuild [32]byte
	copy(gotBuild[:], data[off:])
	off += 32
	count := binary.LittleEndian.Uint32(data[off:])
	off += 4
	// Version checks come after the structural checksum so a well-formed
	// segment from another build is skew, not corruption.
	if schema != SchemaVersion || gotBuild != buildFP {
		return nil, entrySkew
	}
	if count > maxPackEntries || int(count) > (len(body)-off)/packEntryMin {
		return nil, corrupt("entry count exceeds segment size")
	}
	entries := make([]packEntryView, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+2 > len(body) {
			return nil, corrupt("truncated entry header")
		}
		clen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+clen+32+4 > len(body) {
			return nil, corrupt("truncated entry header")
		}
		class := string(data[off : off+clen])
		off += clen
		var kh [32]byte
		copy(kh[:], data[off:])
		off += 32
		plen := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if plen > maxPayload || off+int(plen) > len(body) {
			return nil, corrupt("entry payload overflows segment")
		}
		entries = append(entries, packEntryView{class: class, kh: kh, payload: data[off : off+int(plen) : off+int(plen)]})
		off += int(plen)
	}
	if off != len(body) {
		return nil, corrupt("trailing bytes after last entry")
	}
	return entries, entryOK
}

// encodePack renders entries (already sorted by the caller) into one
// segment with the store's version header and whole-file checksum.
func encodePack(buildFP [32]byte, entries []packEntryView) []byte {
	size := packHeaderLen + packTrailerLen
	for _, e := range entries {
		size += 2 + len(e.class) + 32 + 4 + len(e.payload)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, packMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SchemaVersion)
	buf = append(buf, buildFP[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.class)))
		buf = append(buf, e.class...)
		buf = append(buf, e.kh[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.payload)))
		buf = append(buf, e.payload...)
	}
	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

// LoadPacked is Load restricted to the pack segments: it never consults
// loose entry files. ok reports a verified hit; a miss while a corrupt
// segment exists carries the typed *CorruptError diagnostic (the miss
// may be that segment's fault). The returned payload aliases the
// in-memory segment buffer — callers must treat it as read-only.
func (s *Store) LoadPacked(class string, key []byte) (payload []byte, ok bool, err error) {
	if s == nil || !s.mode.Readable() {
		return nil, false, nil
	}
	kh := sha256.Sum256(key)
	idx := s.packIndexView()
	if payload, ok := idx.get(class, kh); ok {
		s.count(func(st *Stats) { st.Hits++; st.PackHits++ })
		return payload, true, nil
	}
	s.count(func(st *Stats) { st.Misses++ })
	if idx.damaged != nil {
		return nil, false, idx.damaged
	}
	return nil, false, nil
}

// DecodePackForFuzz exposes the raw segment validator to the fuzz
// target: it must classify arbitrary bytes without panicking and only
// accept a segment when every check passed.
func DecodePackForFuzz(data []byte, buildFP [32]byte) (entries int, ok bool, reason string) {
	views, v := decodePack(data, buildFP)
	return len(views), v.kind == 0, v.reason
}

// EncodePackForFuzz mirrors Compact's segment encoding for the fuzz
// target's round-trip assertion.
func EncodePackForFuzz(buildFP [32]byte, classes []string, keyHashes [][32]byte, payloads [][]byte) []byte {
	views := make([]packEntryView, len(classes))
	for i := range classes {
		views[i] = packEntryView{class: classes[i], kh: keyHashes[i], payload: payloads[i]}
	}
	return encodePack(buildFP, views)
}

// CompactStats reports what one Compact call did.
type CompactStats struct {
	Entries         int    `json:"entries"`          // logical entries in the new segment
	Segment         string `json:"segment"`          // new segment's basename ("" when there was nothing to pack)
	SegmentBytes    int64  `json:"segment_bytes"`    // encoded size of the new segment
	LooseMerged     int    `json:"loose_merged"`     // current-build loose entries folded in
	SegmentsMerged  int    `json:"segments_merged"`  // prior segments folded in
	LooseRemoved    int    `json:"loose_removed"`    // folded loose files unlinked
	SegmentsRemoved int    `json:"segments_removed"` // folded segments unlinked
	CorruptRemoved  int    `json:"corrupt_removed"`  // malformed loose entries deleted (already misses)
}

// Compact folds every current-build loose entry and every live segment
// into one new content-addressed segment, swaps it into the in-memory
// index, and only then unlinks what it folded. Readers are safe
// throughout: a reader holding the pre-compact index either finds the
// loose file still present or re-checks the post-swap index (Load's
// fallback), so a compact can cost a re-probe, never a transient miss.
// Foreign-build loose entries are left for their own build's compactor;
// corrupt loose entries are deleted (they were already misses).
// Idempotent: compacting a compacted store rewrites the same
// content-addressed segment. Requires a writable store.
//
// Concurrent compactors in different processes race benignly: identical
// content yields the same segment name (last rename wins with identical
// bytes), unlink errors are ignored, and a process still holding a
// removed segment keeps serving from its in-memory index.
func (s *Store) Compact() (CompactStats, error) {
	var cs CompactStats
	if s == nil || !s.mode.Writable() {
		return cs, fmt.Errorf("memostore: compact needs a writable store (mode %s)", s.Mode())
	}
	idx := s.packIndexView()
	merged := make(map[packKey][]byte, len(idx.entries))
	for k, p := range idx.entries {
		merged[k] = p
	}
	cs.SegmentsMerged = len(idx.segments)

	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return cs, fmt.Errorf("memostore: compact: %v", err)
	}
	var fold []string
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".memo" {
			continue
		}
		name := de.Name()
		path := filepath.Join(s.dir, name)
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			continue
		}
		kh, payload, v := decodeEntryAny(data, s.buildFP)
		class, nameOK := classOfLooseName(name, kh)
		switch {
		case v.kind == 0 && nameOK && len(class) <= 0xFFFF:
			merged[packKey{class: class, kh: kh}] = payload
			fold = append(fold, name)
			cs.LooseMerged++
		case v.kind == 3:
			if os.Remove(path) == nil {
				cs.CorruptRemoved++
			}
		}
		// Skew (another build's entry) and renamed/foreign files stay.
	}
	cs.Entries = len(merged)
	if len(merged) == 0 {
		return cs, nil
	}

	keys := make([]packKey, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return bytes.Compare(keys[i].kh[:], keys[j].kh[:]) < 0
	})
	views := make([]packEntryView, len(keys))
	for i, k := range keys {
		views[i] = packEntryView{class: k.class, kh: k.kh, payload: merged[k]}
	}
	buf := encodePack(s.buildFP, views)
	sum := sha256.Sum256(buf)
	segName := fmt.Sprintf("pack-%x.pack", sum[:8])
	if werr := s.writeAtomic(filepath.Join(s.dir, segName), buf); werr != nil {
		return cs, fmt.Errorf("memostore: compact: %v", werr)
	}
	cs.Segment = segName
	cs.SegmentBytes = int64(len(buf))

	// Re-decode the written bytes so the new index holds zero-copy views
	// of the single fresh segment, and swap it in before unlinking.
	nviews, v := decodePack(buf, s.buildFP)
	if v.kind != 0 {
		return cs, fmt.Errorf("memostore: compact: fresh segment failed verification: %s", v.reason)
	}
	nidx := &packIndex{
		entries:  make(map[packKey][]byte, len(nviews)),
		shadowed: make(map[string]bool, len(nviews)),
		segments: []packSegment{{name: segName, size: int64(len(buf))}},
		bytes:    int64(len(buf)),
	}
	for _, e := range nviews {
		nidx.entries[packKey{class: e.class, kh: e.kh}] = e.payload
		nidx.shadowed[looseName(e.class, e.kh)] = true
	}
	s.packs.Store(nidx)

	for _, name := range fold {
		if os.Remove(filepath.Join(s.dir, name)) == nil {
			cs.LooseRemoved++
		}
	}
	for _, seg := range idx.segments {
		if seg.name == segName {
			continue
		}
		if os.Remove(filepath.Join(s.dir, seg.name)) == nil {
			cs.SegmentsRemoved++
		}
	}
	return cs, nil
}
