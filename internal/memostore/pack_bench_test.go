package memostore

import (
	"bytes"
	"fmt"
	"testing"
)

// benchPopulate writes n deterministic loose entries (two classes,
// ~256 B payloads — the shape of a point-memo working set) and returns
// the store plus the (class, key) pairs for the load loop.
func benchPopulate(b *testing.B, n int) (s *Store, classes []string, keys [][]byte) {
	b.Helper()
	s, err := Open(b.TempDir(), RW)
	if err != nil {
		b.Fatal(err)
	}
	pad := bytes.Repeat([]byte{0x5A}, 224)
	classes = make([]string, n)
	keys = make([][]byte, n)
	for i := 0; i < n; i++ {
		class := "sweep"
		if i%2 == 1 {
			class = "trans"
		}
		key := []byte(fmt.Sprintf("cfg-%d", i))
		payload := append([]byte(fmt.Sprintf("payload-%d-%s-", i, class)), pad...)
		s.Save(class, key, payload)
		classes[i] = class
		keys[i] = key
	}
	if st := s.Stats(); st.WriteErrors != 0 || st.Writes != uint64(n) {
		b.Fatalf("populate: %+v", st)
	}
	return s, classes, keys
}

// BenchmarkStoreOpenWarm10k measures the warm-start cost a fleet process
// pays before its first simulation: open the shared store and load a
// 10,000-entry working set. "loose" reads one *.memo file per entry;
// "packed" serves the same set from one compacted segment (single read,
// once-per-open index, zero-copy payload slices). The packed variant is
// the acceptance bar: it must beat loose by at least 5x.
func BenchmarkStoreOpenWarm10k(b *testing.B) {
	const n = 10000
	loadAll := func(b *testing.B, dir string, classes []string, keys [][]byte) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := Open(dir, RO)
			if err != nil {
				b.Fatal(err)
			}
			for j := range keys {
				if _, ok, err := s.Load(classes[j], keys[j]); !ok || err != nil {
					b.Fatalf("entry %d: ok=%v err=%v", j, ok, err)
				}
			}
		}
		b.ReportMetric(float64(n), "entries/op")
	}

	b.Run("loose", func(b *testing.B) {
		s, classes, keys := benchPopulate(b, n)
		loadAll(b, s.Dir(), classes, keys)
	})
	b.Run("packed", func(b *testing.B) {
		s, classes, keys := benchPopulate(b, n)
		cs, err := s.Compact()
		if err != nil || cs.Entries != n {
			b.Fatalf("Compact: %+v %v", cs, err)
		}
		loadAll(b, s.Dir(), classes, keys)
	})
}
