// Package memostore is a disk-persisted, content-addressed, versioned
// store for the simulator's memoization layers (DESIGN.md §13): the
// fast-forward engine's steady-state cycle records and the experiment
// runner's sweep-point/transition memos.
//
// Soundness rests on three properties, each enforced structurally:
//
//   - Content addressing. An entry is stored under the hash of its full
//     logical key (config fingerprint class), and the un-truncated key
//     hash is repeated inside the entry header, so a filename collision
//     degrades to a miss, never to a wrong payload.
//
//   - Wholesale invalidation. Every entry carries the store schema
//     version and a build fingerprint (the SHA-256 of the running
//     executable). Any code change — simulator behavior, record layout,
//     compiler — changes the build fingerprint and turns the whole cache
//     into misses. There is no partial-invalidation logic to get wrong.
//
//   - Fail-safe loads. A corrupt, truncated, or version-mismatched entry
//     is reported as a miss (optionally with a typed *CorruptError
//     diagnostic); Load never panics and never returns a payload whose
//     checksum, key hash, version, and build fingerprint did not all
//     verify. Callers therefore recompute — the exact cold-path behavior
//     — and results stay byte-identical.
//
// Writes go through a unique temp file in the store directory followed
// by os.Rename, so concurrent writers (two rw processes, or worker
// goroutines) can race freely: readers only ever observe a complete
// entry or none.
//
// Two layers make the store fast and shared across processes
// (DESIGN.md §17): pack segments (pack.go) fold loose entries into
// checksummed, content-addressed files indexed in memory once per open,
// and the claim protocol (claim.go) plus in-process single-flight
// (flight.go) arrange for each cold key to be computed once fleet-wide.
// Both inherit the three properties above unchanged.
package memostore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Mode selects the store's behavior, mirroring the -memocache flag.
type Mode int32

const (
	// Off disables the store: loads miss, saves drop.
	Off Mode = iota
	// RW loads entries and persists new computations (the warm path).
	RW
	// RO loads entries but never writes (shared/read-only caches).
	RO
	// Verify loads entries but callers must re-compute every loaded
	// value and fail on divergence — the same contract as
	// -fastforward=verify. The store itself behaves like RO.
	Verify
)

// String renders the flag form.
func (m Mode) String() string {
	switch m {
	case RW:
		return "rw"
	case RO:
		return "ro"
	case Verify:
		return "verify"
	default:
		return "off"
	}
}

// ParseMode parses the -memocache flag values off|rw|ro|verify.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "rw":
		return RW, nil
	case "ro":
		return RO, nil
	case "verify":
		return Verify, nil
	}
	return Off, fmt.Errorf("memostore: mode %q (want off, rw, ro, or verify)", s)
}

// Readable reports whether loads may return hits.
func (m Mode) Readable() bool { return m == RW || m == RO || m == Verify }

// Writable reports whether saves persist.
func (m Mode) Writable() bool { return m == RW }

// Entry layout (little-endian, fixed order):
//
//	magic        [8]byte  "ODRMEMO1"
//	schema       uint32   SchemaVersion
//	buildFP      [32]byte SHA-256 of the running executable
//	keyHash      [32]byte SHA-256 of the logical key
//	payloadLen   uint32
//	payload      [payloadLen]byte
//	payloadSum   [32]byte SHA-256 of payload
const (
	// SchemaVersion is the on-disk entry format version. Bump it on any
	// layout change; old entries become misses.
	SchemaVersion = 1

	magic      = "ODRMEMO1"
	headerLen  = len(magic) + 4 + 32 + 32 + 4
	trailerLen = 32

	// maxPayload bounds a single entry so a corrupt length field cannot
	// drive a huge allocation.
	maxPayload = 64 << 20
)

// CorruptError reports a malformed entry file. Callers treat it as a
// miss; it exists so diagnostics (and the fuzz target) can tell
// corruption apart from plain absence.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("memostore: corrupt entry %s: %s", e.Path, e.Reason)
}

// Stats counts store outcomes since Open, plus a point-in-time view of
// the store's footprint taken when Stats() is called.
type Stats struct {
	Hits        uint64 `json:"hits"`         // loads that returned a verified payload
	PackHits    uint64 `json:"pack_hits"`    // the subset of Hits served from pack segments
	Misses      uint64 `json:"misses"`       // absent entries (or key-hash collisions)
	Corrupt     uint64 `json:"corrupt"`      // malformed entries/segments, degraded to misses
	VersionSkew uint64 `json:"version_skew"` // schema/build-fingerprint mismatches, degraded to misses
	Writes      uint64 `json:"writes"`       // entries persisted
	WriteErrors uint64 `json:"write_errors"` // failed persists (dropped; never fatal)

	// Single-flight and cross-process claim counters (DESIGN.md §17):
	FlightLeads    uint64 `json:"flight_leads"`    // LoadOrCompute calls that led a compute
	FlightShared   uint64 `json:"flight_shared"`   // LoadOrCompute calls that shared a leader's result
	ClaimsOwned    uint64 `json:"claims_owned"`    // cold-key claims this process won
	ClaimsLost     uint64 `json:"claims_lost"`     // claims found held by another live process
	ClaimWaitHits  uint64 `json:"claim_wait_hits"` // awaited claims resolved by the owner's entry landing
	ClaimTakeovers uint64 `json:"claim_takeovers"` // stale claims removed (presumed-dead owners)

	// Footprint snapshot, filled by Stats() at call time (not counters):
	Views         int    `json:"views"`          // live decoded in-process views (View minus DropView)
	DiskEntries   uint64 `json:"disk_entries"`   // unique logical entries (packed ∪ loose; an entry both packed and loose counts once)
	DiskBytes     uint64 `json:"disk_bytes"`     // total bytes of .memo and .pack files
	Segments      int    `json:"segments"`       // accepted pack segments
	PackedEntries int    `json:"packed_entries"` // entries in the loaded segment index
	LooseEntries  int    `json:"loose_entries"`  // .memo files on disk (including packed duplicates)
	IndexBytes    uint64 `json:"index_bytes"`    // in-memory bytes pinned by the segment index
}

// Store is a content-addressed entry cache rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	dir     string
	mode    Mode
	buildFP [32]byte

	mu    sync.Mutex
	stats Stats

	// tmpSeq disambiguates temp files within the process; combined with
	// the PID it keeps concurrent writers from colliding.
	tmpSeq atomic.Uint64

	// views holds per-store decoded singletons (class -> any), the
	// owning home for in-process caches that used to be package-level
	// state in the consuming packages; see View.
	views sync.Map

	// packOnce guards the once-per-open pack-segment index load; packs
	// holds the immutable index, swapped wholesale by Compact (pack.go).
	packOnce sync.Once
	packs    atomic.Pointer[packIndex]

	// flight coalesces concurrent LoadOrCompute calls per key.
	flight Flight[[]byte]

	// claimStaleNs is the claim-takeover threshold (0 = default; claim.go).
	claimStaleNs atomic.Int64
}

// Open creates (if needed) and opens a store rooted at dir. A nil store
// with mode Off is represented by a nil *Store; all methods tolerate a
// nil receiver, behaving as Off.
func Open(dir string, mode Mode) (*Store, error) {
	if mode == Off {
		return nil, nil
	}
	if dir == "" {
		return nil, fmt.Errorf("memostore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("memostore: %v", err)
	}
	fp, err := buildFingerprint()
	if err != nil {
		return nil, fmt.Errorf("memostore: build fingerprint: %v", err)
	}
	return &Store{dir: dir, mode: mode, buildFP: fp}, nil
}

// Mode returns the store's mode (Off for a nil store).
func (s *Store) Mode() Mode {
	if s == nil {
		return Off
	}
	return s.mode
}

// Dir returns the store's root directory.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// BuildFingerprint returns the digest that versions every entry.
func (s *Store) BuildFingerprint() [32]byte {
	if s == nil {
		return [32]byte{}
	}
	return s.buildFP
}

// View returns the store's singleton view for class, building it on
// first use. Under contention build may run more than once, but every
// caller observes the single kept result, so builders must return a
// cheap empty container and defer real work (disk loads) to the view's
// own methods. It exists so consuming
// packages can hang their in-process decoded caches off the store that
// feeds them instead of off package-level variables: the cache's
// lifetime and identity then follow the store's (a test swapping stores
// implicitly starts from an empty view), and the odrips-vet globalstate
// rule can ban package-level mutable state outright. A nil store has no
// views and returns nil.
func (s *Store) View(class string, build func() any) any {
	if s == nil {
		return nil
	}
	if v, ok := s.views.Load(class); ok {
		return v
	}
	v, _ := s.views.LoadOrStore(class, build())
	return v
}

// DropView discards the store's view for class, so the next View call
// rebuilds it (and its builder re-reads disk). Benchmarks use it to
// measure the honest disk-warm path; a nil store is a no-op.
func (s *Store) DropView(class string) {
	if s == nil {
		return
	}
	s.views.Delete(class)
}

// Stats returns a snapshot of the store's counters plus its current
// footprint: live view count and on-disk entry count/bytes. The disk
// half walks the store directory, so Stats is a reporting call, not a
// hot-path one; a directory read error simply leaves the disk fields
// zero (stats must never be able to break a run).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	s.views.Range(func(_, _ any) bool { st.Views++; return true })
	idx := s.packIndexView()
	st.Segments = len(idx.segments)
	st.PackedEntries = len(idx.entries)
	st.IndexBytes = uint64(idx.bytes)
	// Unique logical entries: everything packed, plus loose files whose
	// basename is not shadowed by a packed entry (an entry present both
	// packed and loose counts once).
	st.DiskEntries = uint64(len(idx.entries))
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			switch filepath.Ext(e.Name()) {
			case ".memo":
				st.LooseEntries++
				if !idx.shadowed[e.Name()] {
					st.DiskEntries++
				}
			case ".pack":
			default:
				continue
			}
			if info, err := e.Info(); err == nil {
				st.DiskBytes += uint64(info.Size())
			}
		}
	}
	return st
}

// EntryPath returns the file an entry for (class, key) lives in. The
// name embeds half the key hash; the full hash inside the entry guards
// the truncation.
func (s *Store) EntryPath(class string, key []byte) string {
	kh := sha256.Sum256(key)
	return filepath.Join(s.dir, looseName(class, kh))
}

// Load fetches the payload stored for (class, key), probing the pack
// segment index first (a warm hit costs a map probe, zero syscalls) and
// falling back to the loose entry file. ok reports a verified hit. A
// missing entry is (nil, false, nil); a malformed one — or a plain miss
// while a corrupt segment exists, since the miss may be that segment's
// fault — is (nil, false, *CorruptError); a schema or build mismatch is
// a plain miss. Load never returns ok together with an error. A payload
// served from a segment aliases store-internal memory and must be
// treated as read-only (every current caller only decodes it).
func (s *Store) Load(class string, key []byte) (payload []byte, ok bool, err error) {
	if s == nil || !s.mode.Readable() {
		return nil, false, nil
	}
	kh := sha256.Sum256(key)
	idx := s.packIndexView()
	if payload, ok := idx.get(class, kh); ok {
		s.count(func(st *Stats) { st.Hits++; st.PackHits++ })
		return payload, true, nil
	}
	path := filepath.Join(s.dir, looseName(class, kh))
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		// A concurrent Compact may have folded the loose entry into a
		// segment between the index probe above and this read; Compact
		// swaps the new index in before unlinking, so one re-check
		// closes the window.
		if idx2 := s.packs.Load(); idx2 != idx {
			if payload, ok := idx2.get(class, kh); ok {
				s.count(func(st *Stats) { st.Hits++; st.PackHits++ })
				return payload, true, nil
			}
		}
		s.count(func(st *Stats) { st.Misses++ })
		if idx.damaged != nil {
			return nil, false, idx.damaged
		}
		return nil, false, nil
	}
	payload, verdict := decodeEntry(data, s.buildFP, kh)
	switch verdict {
	case entryOK:
		s.count(func(st *Stats) { st.Hits++ })
		return payload, true, nil
	case entrySkew:
		s.count(func(st *Stats) { st.VersionSkew++ })
		return nil, false, nil
	case entryWrongKey:
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false, nil
	default:
		s.count(func(st *Stats) { st.Corrupt++ })
		return nil, false, &CorruptError{Path: path, Reason: verdict.reason}
	}
}

// Save persists payload for (class, key). Failures are counted and
// dropped: persistence is an optimization, never a correctness
// dependency.
func (s *Store) Save(class string, key, payload []byte) {
	if s == nil || !s.mode.Writable() || len(payload) > maxPayload {
		return
	}
	kh := sha256.Sum256(key)
	buf := make([]byte, 0, headerLen+len(payload)+trailerLen)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, SchemaVersion)
	buf = append(buf, s.buildFP[:]...)
	buf = append(buf, kh[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)

	if err := s.writeAtomic(s.EntryPath(class, key), buf); err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		return
	}
	s.count(func(st *Stats) { st.Writes++ })
}

// writeAtomic writes data to a unique temp file in the store directory
// and renames it into place, so readers never observe a partial entry
// and concurrent writers race safely (last rename wins).
func (s *Store) writeAtomic(path string, data []byte) error {
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), s.tmpSeq.Add(1))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp) // best effort; the unique name keeps strays harmless
		return werr
	}
	return nil
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// entryVerdict classifies a decode attempt.
type entryVerdict struct {
	kind   int // 0 ok, 1 skew, 2 wrong key, 3 corrupt
	reason string
}

var (
	entryOK       = entryVerdict{kind: 0}
	entrySkew     = entryVerdict{kind: 1}
	entryWrongKey = entryVerdict{kind: 2}
)

func corrupt(reason string) entryVerdict { return entryVerdict{kind: 3, reason: reason} }

// decodeEntryAny validates a raw entry against the expected build
// fingerprint and returns the entry's own key hash, for callers that
// recover identity from the file rather than the request (Compact). It
// is total: any input yields a verdict, never a panic, and a payload is
// returned only when every structural and version check passed.
func decodeEntryAny(data []byte, buildFP [32]byte) (keyHash [32]byte, payload []byte, v entryVerdict) {
	if len(data) < headerLen+trailerLen {
		return keyHash, nil, corrupt("short entry")
	}
	if string(data[:len(magic)]) != magic {
		return keyHash, nil, corrupt("bad magic")
	}
	off := len(magic)
	schema := binary.LittleEndian.Uint32(data[off:])
	off += 4
	var gotBuild [32]byte
	copy(gotBuild[:], data[off:])
	off += 32
	copy(keyHash[:], data[off:])
	off += 32
	plen := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if plen > maxPayload || len(data) != off+int(plen)+trailerLen {
		return keyHash, nil, corrupt("length mismatch")
	}
	payload = data[off : off+int(plen)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[off+int(plen):]) {
		return keyHash, nil, corrupt("payload checksum mismatch")
	}
	// Version checks come after structural ones so a well-formed entry
	// from another build is skew, not corruption.
	if schema != SchemaVersion || gotBuild != buildFP {
		return keyHash, nil, entrySkew
	}
	return keyHash, payload, entryOK
}

// decodeEntry validates a raw entry against the expected build
// fingerprint and key hash. It is total: any input yields a verdict,
// never a panic, and a payload is returned only when every check passed.
func decodeEntry(data []byte, buildFP, keyHash [32]byte) ([]byte, entryVerdict) {
	gotKey, payload, v := decodeEntryAny(data, buildFP)
	if v.kind != 0 {
		return nil, v
	}
	if gotKey != keyHash {
		return nil, entryWrongKey // filename-truncation collision
	}
	return payload, entryOK
}

// DecodeEntryForFuzz exposes the raw entry validator to the fuzz target:
// it must classify arbitrary bytes without panicking and only report a
// hit when every check passed.
func DecodeEntryForFuzz(data []byte, buildFP, keyHash [32]byte) (payload []byte, hit bool, reason string) {
	p, v := decodeEntry(data, buildFP, keyHash)
	return p, v.kind == 0, v.reason
}

// ---- Process-scoped state ----

// proc is this package's only process-scoped mutable state, gathered
// behind one owning struct so every mutation funnels through the
// accessors below: the default store installed by the -memocache flag /
// ODRIPS_MEMOCACHE env composition roots, and the once-per-process
// executable hash that versions every entry. Everything else mutable
// lives inside Store instances.
//
//odrips:allow globalstate the process composition root: the default store is set once by flag/env wiring and the build fingerprint is an immutable process property memoized behind a Once
var proc struct {
	defaultStore atomic.Pointer[Store]
	buildFP      struct {
		sync.Once
		fp  [32]byte
		err error
	}
}

// buildFingerprint hashes the running executable once per process. Any
// change to the simulator — code, record layouts, toolchain — yields a
// different binary and therefore a disjoint cache namespace.
func buildFingerprint() ([32]byte, error) {
	o := &proc.buildFP
	o.Do(func() {
		exe, err := os.Executable()
		if err != nil {
			o.err = err
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			o.err = err
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			o.err = err
			return
		}
		copy(o.fp[:], h.Sum(nil))
	})
	return o.fp, o.err
}

// BuildFingerprintHex returns the current process's build fingerprint in
// hex ("" on error); CI keys its cache on it.
func BuildFingerprintHex() string {
	fp, err := buildFingerprint()
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%x", fp)
}

// ---- Process-wide default store ----

// SetDefault installs the process-wide store consumed by the platform
// and experiment memo layers. nil turns persistence off.
func SetDefault(s *Store) { proc.defaultStore.Store(s) }

// Default returns the process-wide store (nil when off).
func Default() *Store { return proc.defaultStore.Load() }

// init wires the default store from the environment so test binaries and
// benchmark runs can opt in without flag plumbing:
//
//	ODRIPS_MEMOCACHE=off|rw|ro|verify   (default off)
//	ODRIPS_MEMOCACHE_DIR=<dir>          (default .odrips-memocache)
//
// A bad mode or an unopenable directory silently falls back to Off — the
// cache must never be able to break a run.
func init() {
	mode, err := ParseMode(os.Getenv("ODRIPS_MEMOCACHE"))
	if err != nil || mode == Off {
		return
	}
	dir := os.Getenv("ODRIPS_MEMOCACHE_DIR")
	if dir == "" {
		dir = ".odrips-memocache"
	}
	s, err := Open(dir, mode)
	if err != nil {
		return
	}
	SetDefault(s)
}
