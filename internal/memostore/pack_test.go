package memostore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// reopen opens a second Store over an existing store's directory,
// emulating a fresh process (modulo the shared build fingerprint, which
// is a process property).
func reopen(t *testing.T, s *Store, mode Mode) *Store {
	t.Helper()
	n, err := Open(s.Dir(), mode)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return n
}

// fillStore saves n deterministic entries across two classes and returns
// the (class, key, payload) triples.
func fillStore(t *testing.T, s *Store, n int) (classes []string, keys, payloads [][]byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		class := "sweep"
		if i%2 == 1 {
			class = "trans"
		}
		key := []byte(fmt.Sprintf("cfg-%d", i))
		payload := []byte(fmt.Sprintf("payload-%d-%s", i, class))
		s.Save(class, key, payload)
		classes = append(classes, class)
		keys = append(keys, key)
		payloads = append(payloads, payload)
	}
	return classes, keys, payloads
}

func TestPackRoundTrip(t *testing.T) {
	s := openT(t, RW)
	classes, keys, payloads := fillStore(t, s, 10)

	cs, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if cs.Entries != 10 || cs.LooseMerged != 10 || cs.LooseRemoved != 10 || cs.Segment == "" {
		t.Fatalf("compact stats %+v", cs)
	}

	// A fresh open (≈ a fresh process of the same build) must serve every
	// entry from the segment: same payloads, all PackHits, no loose files.
	n := reopen(t, s, RO)
	for i := range keys {
		got, ok, err := n.Load(classes[i], keys[i])
		if err != nil || !ok || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("entry %d: ok=%v err=%v got=%q want %q", i, ok, err, got, payloads[i])
		}
		gp, ok, err := n.LoadPacked(classes[i], keys[i])
		if err != nil || !ok || !bytes.Equal(gp, payloads[i]) {
			t.Fatalf("LoadPacked %d: ok=%v err=%v", i, ok, err)
		}
	}
	st := n.Stats()
	if st.PackHits != 20 || st.Hits != 20 || st.Misses != 0 {
		t.Fatalf("stats %+v, want 20 pack hits", st)
	}
	if st.Segments != 1 || st.PackedEntries != 10 || st.LooseEntries != 0 || st.DiskEntries != 10 {
		t.Fatalf("footprint %+v", st)
	}
	if st.IndexBytes == 0 || uint64(cs.SegmentBytes) != st.IndexBytes {
		t.Fatalf("index bytes %d, want segment size %d", st.IndexBytes, cs.SegmentBytes)
	}
}

func TestCompactIdempotentAndIncremental(t *testing.T) {
	s := openT(t, RW)
	fillStore(t, s, 6)
	cs1, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// Same content → same content-addressed segment.
	cs2, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs2.Segment != cs1.Segment || cs2.Entries != 6 || cs2.LooseMerged != 0 || cs2.SegmentsMerged != 1 || cs2.SegmentsRemoved != 0 {
		t.Fatalf("recompact %+v (first %+v)", cs2, cs1)
	}

	// New loose entries fold into a new segment; the old one is removed.
	s.Save("sweep", []byte("late"), []byte("late-payload"))
	cs3, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs3.Entries != 7 || cs3.LooseMerged != 1 || cs3.SegmentsMerged != 1 || cs3.SegmentsRemoved != 1 || cs3.Segment == cs1.Segment {
		t.Fatalf("incremental compact %+v", cs3)
	}
	if got, ok, err := s.Load("sweep", []byte("late")); err != nil || !ok || string(got) != "late-payload" {
		t.Fatalf("late entry after compact: ok=%v err=%v", ok, err)
	}
	st := s.Stats()
	if st.Segments != 1 || st.PackedEntries != 7 {
		t.Fatalf("footprint after incremental compact %+v", st)
	}
}

// TestPackCorruptionMatrix flips, truncates, and rewrites segment bytes
// and asserts the fail-safe contract: every damaged form degrades to a
// miss (typed *CorruptError for structural damage, silent skew for
// foreign builds), never a false hit, never a panic.
func TestPackCorruptionMatrix(t *testing.T) {
	build := func(t *testing.T) (*Store, string) {
		s := openT(t, RW)
		fillStore(t, s, 4)
		cs, err := s.Compact()
		if err != nil {
			t.Fatal(err)
		}
		return s, filepath.Join(s.Dir(), cs.Segment)
	}

	t.Run("bitflips", func(t *testing.T) {
		s, seg := build(t)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Positions: magic, count field, an entry body byte, the trailer.
		for _, off := range []int{0, packHeaderLen - 1, packHeaderLen + 10, len(data) - 1} {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0xFF
			if err := os.WriteFile(seg, bad, 0o666); err != nil {
				t.Fatal(err)
			}
			n := reopen(t, s, RO)
			_, ok, lerr := n.Load("sweep", []byte("cfg-0"))
			if ok {
				t.Fatalf("offset %d: hit from damaged segment", off)
			}
			if _, isCorrupt := lerr.(*CorruptError); !isCorrupt {
				t.Fatalf("offset %d: err %v, want *CorruptError", off, lerr)
			}
			if st := n.Stats(); st.Corrupt != 1 || st.Segments != 0 {
				t.Fatalf("offset %d: stats %+v", off, st)
			}
		}
	})

	t.Run("truncated", func(t *testing.T) {
		s, seg := build(t)
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, keep := range []int{0, 3, packHeaderLen, len(data) - 1} {
			if err := os.WriteFile(seg, data[:keep], 0o666); err != nil {
				t.Fatal(err)
			}
			n := reopen(t, s, RO)
			_, ok, err := n.Load("sweep", []byte("cfg-0"))
			if ok {
				t.Fatalf("keep %d: hit from truncated segment", keep)
			}
			if err != nil {
				if _, isCorrupt := err.(*CorruptError); !isCorrupt {
					t.Fatalf("keep %d: untyped error %v", keep, err)
				}
			}
		}
	})

	t.Run("foreign-build-is-skew", func(t *testing.T) {
		s, seg := build(t)
		var foreign [32]byte
		foreign[0] = 0xEE
		kh := [32]byte{1, 2, 3}
		alien := EncodePackForFuzz(foreign, []string{"sweep"}, [][32]byte{kh}, [][]byte{[]byte("alien")})
		if err := os.WriteFile(seg, alien, 0o666); err != nil {
			t.Fatal(err)
		}
		n := reopen(t, s, RO)
		_, ok, err := n.Load("sweep", []byte("cfg-0"))
		if ok || err != nil {
			t.Fatalf("skewed segment: ok=%v err=%v, want silent miss", ok, err)
		}
		if st := n.Stats(); st.VersionSkew != 1 || st.Corrupt != 0 || st.Segments != 0 {
			t.Fatalf("stats %+v, want one skew", st)
		}
	})
}

// TestPackedWinsOverLoose pins the precedence: when an entry exists both
// packed and loose, the packed payload is served (within one build the
// two are byte-identical by determinism; the divergence here is
// artificial, to observe which path answered).
func TestPackedWinsOverLoose(t *testing.T) {
	s := openT(t, RW)
	key := []byte("the-key")
	s.Save("sweep", key, []byte("packed-payload"))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Re-save a divergent loose entry over the same (class, key).
	s.Save("sweep", key, []byte("loose-payload"))

	n := reopen(t, s, RO)
	got, ok, err := n.Load("sweep", key)
	if err != nil || !ok || string(got) != "packed-payload" {
		t.Fatalf("ok=%v err=%v got=%q, want the packed payload", ok, err, got)
	}
	// The shadowed loose duplicate must not double-count the entry.
	st := n.Stats()
	if st.DiskEntries != 1 || st.LooseEntries != 1 || st.PackedEntries != 1 {
		t.Fatalf("footprint %+v, want 1 unique entry (1 loose shadowed by 1 packed)", st)
	}
}

func TestStatsCountsUnpackedLoose(t *testing.T) {
	s := openT(t, RW)
	fillStore(t, s, 4)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Save("sweep", []byte("fresh"), []byte("fresh-payload"))
	n := reopen(t, s, RO)
	st := n.Stats()
	if st.DiskEntries != 5 || st.PackedEntries != 4 || st.LooseEntries != 1 {
		t.Fatalf("footprint %+v, want 4 packed + 1 loose = 5 unique", st)
	}
}

// TestCompactWhileLoading races Compact against concurrent readers and
// asserts the no-transient-miss guarantee: every load throughout the
// compaction is a hit (run under -race in the tier-1 suite).
func TestCompactWhileLoading(t *testing.T) {
	s := openT(t, RW)
	classes, keys, payloads := fillStore(t, s, 32)

	var stop atomic.Bool
	var misses atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for i := range keys {
					got, ok, err := s.Load(classes[i], keys[i])
					if err != nil || !ok || !bytes.Equal(got, payloads[i]) {
						misses.Add(1)
					}
				}
			}
		}()
	}
	for round := 0; round < 3; round++ {
		if _, err := s.Compact(); err != nil {
			t.Errorf("Compact round %d: %v", round, err)
		}
		// Grow the store between rounds so each compact really rewrites.
		s.Save("sweep", []byte(fmt.Sprintf("extra-%d", round)), []byte("x"))
	}
	stop.Store(true)
	wg.Wait()
	if m := misses.Load(); m != 0 {
		t.Fatalf("%d loads missed during compaction, want 0", m)
	}
}

func TestCompactRemovesCorruptKeepsSkewed(t *testing.T) {
	s := openT(t, RW)
	s.Save("sweep", []byte("good"), []byte("good-payload"))

	corruptPath := filepath.Join(s.Dir(), "sweep-"+"00000000000000000000000000000000"+".memo")
	if err := os.WriteFile(corruptPath, []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	// A well-formed entry from another build: named consistently with its
	// own key hash so only the build fingerprint differs.
	var foreignFP [32]byte
	foreignFP[0] = 0x5A
	kh := [32]byte{9, 9, 9}
	skewed := encodeForFuzz(foreignFP, kh, []byte("foreign"))
	skewPath := filepath.Join(s.Dir(), looseName("sweep", kh))
	if err := os.WriteFile(skewPath, skewed, 0o666); err != nil {
		t.Fatal(err)
	}

	cs, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Entries != 1 || cs.LooseMerged != 1 || cs.CorruptRemoved != 1 {
		t.Fatalf("compact stats %+v", cs)
	}
	if _, err := os.Stat(corruptPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still present (err=%v)", err)
	}
	if _, err := os.Stat(skewPath); err != nil {
		t.Fatalf("skewed entry should survive for its own build's compactor: %v", err)
	}
}

func TestCompactRequiresWritable(t *testing.T) {
	s := openT(t, RW)
	fillStore(t, s, 2)
	ro := reopen(t, s, RO)
	if _, err := ro.Compact(); err == nil {
		t.Fatal("read-only compact succeeded")
	}
	var nilStore *Store
	if _, err := nilStore.Compact(); err == nil {
		t.Fatal("nil-store compact succeeded")
	}
}

// TestFlightShares drives one leader and one follower until the follower
// observably joins the leader's in-flight call and receives its value.
// Each attempt terminates either way (the follower that misses the
// window leads its own instant flight), so the loop cannot hang; it
// converges on the first attempt in practice.
func TestFlightShares(t *testing.T) {
	var f Flight[int]
	for attempt := 0; attempt < 1000; attempt++ {
		release := make(chan struct{})
		started := make(chan struct{})
		entered := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(3)
		var v int
		var sharedOut bool
		var err error
		go func() {
			defer wg.Done()
			f.Do("k", func() (int, error) {
				close(started)
				<-release
				return 7, nil
			})
		}()
		go func() {
			defer wg.Done()
			<-started
			close(entered)
			v, sharedOut, err = f.Do("k", func() (int, error) { return 8, nil })
		}()
		go func() {
			defer wg.Done()
			<-entered
			runtime.Gosched()
			close(release)
		}()
		wg.Wait()
		if sharedOut {
			if v != 7 || err != nil {
				t.Fatalf("shared call got v=%d err=%v, want the leader's 7", v, err)
			}
			return
		}
	}
	t.Fatal("follower never joined the leader's flight in 1000 attempts")
}

// TestFlightInvariants stress-runs concurrent callers and checks the
// scheduling-independent invariants: every caller is exactly one of
// leader or sharer, computes equal leads, and errors propagate.
func TestFlightInvariants(t *testing.T) {
	var f Flight[int]
	var computes, leads, shares atomic.Int32
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := f.Do("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("v=%d err=%v", v, err)
			}
			if shared {
				shares.Add(1)
			} else {
				leads.Add(1)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != leads.Load() || leads.Load()+shares.Load() != callers || leads.Load() < 1 {
		t.Fatalf("computes=%d leads=%d shares=%d", computes.Load(), leads.Load(), shares.Load())
	}
}

func TestLoadOrComputeSingleFlight(t *testing.T) {
	s := openT(t, RW)
	key := []byte("cold-key")
	var computes atomic.Int32
	compute := func() ([]byte, error) {
		computes.Add(1)
		return []byte("computed"), nil
	}

	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.LoadOrCompute("sweep", key, compute)
			if err != nil || string(got) != "computed" {
				t.Errorf("got %q err=%v", got, err)
			}
		}()
	}
	wg.Wait()
	if c := computes.Load(); c < 1 || c > callers {
		t.Fatalf("computes=%d", c)
	}
	st := s.Stats()
	if st.FlightLeads+st.FlightShared+st.Hits == 0 {
		t.Fatalf("no flight or hit accounting: %+v", st)
	}

	// The result persisted: a second wave (and a fresh store) loads it
	// without computing.
	before := computes.Load()
	if got, err := s.LoadOrCompute("sweep", key, compute); err != nil || string(got) != "computed" {
		t.Fatalf("warm wave: %q %v", got, err)
	}
	n := reopen(t, s, RO)
	if got, err := n.LoadOrCompute("sweep", key, compute); err != nil || string(got) != "computed" {
		t.Fatalf("fresh store: %q %v", got, err)
	}
	if computes.Load() != before {
		t.Fatalf("warm waves recomputed (%d → %d)", before, computes.Load())
	}
}

func TestLoadOrComputeNilStore(t *testing.T) {
	var s *Store
	got, err := s.LoadOrCompute("sweep", []byte("k"), func() ([]byte, error) { return []byte("v"), nil })
	if err != nil || string(got) != "v" {
		t.Fatalf("nil store: %q %v", got, err)
	}
}

// TestVerifyModeRecomputesPacked pins the -memocache verify contract for
// packed entries: LoadOrCompute in Verify mode must run the compute even
// when the entry is served by a segment.
func TestVerifyModeRecomputesPacked(t *testing.T) {
	s := openT(t, RW)
	key := []byte("k")
	s.Save("sweep", key, []byte("stored"))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	v := reopen(t, s, Verify)
	var computes atomic.Int32
	got, err := v.LoadOrCompute("sweep", key, func() ([]byte, error) {
		computes.Add(1)
		return []byte("stored"), nil
	})
	if err != nil || string(got) != "stored" || computes.Load() != 1 {
		t.Fatalf("verify mode: got=%q err=%v computes=%d", got, err, computes.Load())
	}
}
