package memostore

import "sync"

// Flight is a generic in-process single-flight group: concurrent Do
// calls for the same key share one execution of compute. It exists for
// the memo layers' load-miss→compute→save pipelines, where N workers
// hitting the same cold key would otherwise each pay the simulation —
// the computes are deterministic, so sharing the leader's result is
// byte-identical to recomputing.
//
// Completed calls are forgotten immediately (delete-before-close), so a
// caller arriving after the leader finished starts a fresh flight; the
// durable dedup across waves is the memo store itself. The zero Flight
// is ready to use.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// Do returns compute()'s result for key, coalescing concurrent callers:
// exactly one (the leader, shared=false) runs compute; the rest block
// and receive the leader's value and error (shared=true). The leader's
// error is shared verbatim — callers for whom a shared failure is not
// equivalent to their own must retry without the flight.
func (f *Flight[V]) Do(key string, compute func() (V, error)) (v V, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.v, true, c.err
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	c.v, c.err = compute()
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c.done)
	return c.v, false, c.err
}

// LoadOrCompute is the memo pipeline load-miss→compute→save with
// in-process single-flight dedup: concurrent callers for the same
// (class, key) share one compute, and the result is persisted (when the
// store is writable) so later waves — and other processes — load it. In
// Verify mode the load is skipped, matching the mode's contract that the
// caller's compute re-simulates and diffs; a nil store degrades to a
// plain compute call. A *CorruptError from the load is a fail-safe miss
// and falls through to compute.
func (s *Store) LoadOrCompute(class string, key []byte, compute func() ([]byte, error)) ([]byte, error) {
	if s == nil {
		return compute()
	}
	if s.mode != Verify {
		if payload, ok, err := s.Load(class, key); err == nil && ok {
			return payload, nil
		}
	}
	v, shared, err := s.flight.Do(class+"\x00"+string(key), func() ([]byte, error) {
		// Re-probe under the flight: a previous leader may have landed
		// the entry between our miss above and winning the lead.
		if s.mode != Verify {
			if payload, ok, lerr := s.Load(class, key); lerr == nil && ok {
				return payload, nil
			}
		}
		payload, cerr := compute()
		if cerr != nil {
			return nil, cerr
		}
		s.Save(class, key, payload)
		return payload, nil
	})
	s.count(func(st *Stats) {
		if shared {
			st.FlightShared++
		} else {
			st.FlightLeads++
		}
	})
	return v, err
}
