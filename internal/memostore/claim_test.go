package memostore

import (
	"context"
	"os"
	"sync"
	"testing"
	"time"
)

// twoStores opens two RW stores over one directory, emulating two
// cooperating processes (claims and entries are file-based, so two
// in-process stores exercise the identical protocol).
func twoStores(t *testing.T) (*Store, *Store) {
	t.Helper()
	a := openT(t, RW)
	b := reopen(t, a, RW)
	return a, b
}

func TestClaimExclusive(t *testing.T) {
	a, b := twoStores(t)
	key := []byte("cold")

	ca, err := a.Claim("cycles", key)
	if err != nil || ca == nil {
		t.Fatalf("first claim: %v %v", ca, err)
	}
	cb, err := b.Claim("cycles", key)
	if err != nil || cb != nil {
		t.Fatalf("second claim while held: claim=%v err=%v, want (nil, nil)", cb, err)
	}
	// Distinct keys are independent.
	if c, err := b.Claim("cycles", []byte("other")); err != nil || c == nil {
		t.Fatalf("unrelated claim: %v %v", c, err)
	}

	ca.Release()
	ca.Release() // idempotent
	cb2, err := b.Claim("cycles", key)
	if err != nil || cb2 == nil {
		t.Fatalf("claim after release: %v %v", cb2, err)
	}
	cb2.Release()

	if a.Stats().ClaimsOwned != 1 || b.Stats().ClaimsOwned != 2 || b.Stats().ClaimsLost != 1 {
		t.Fatalf("claim stats a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

func TestClaimRequiresWritable(t *testing.T) {
	a := openT(t, RW)
	ro := reopen(t, a, RO)
	if c, err := ro.Claim("cycles", []byte("k")); err == nil || c != nil {
		t.Fatalf("read-only claim: %v %v, want error", c, err)
	}
	var nilStore *Store
	if c, err := nilStore.Claim("cycles", []byte("k")); err == nil || c != nil {
		t.Fatalf("nil-store claim: %v %v, want error", c, err)
	}
}

// TestAwaitClaimedOwnerLands covers the cooperative path: the owner's
// entry landing resolves the wait with the owner's payload.
func TestAwaitClaimedOwnerLands(t *testing.T) {
	a, b := twoStores(t)
	key := []byte("cold")
	c, err := a.Claim("cycles", key)
	if err != nil || c == nil {
		t.Fatal(err)
	}

	// Owner computes concurrently with the waiter; the waiter's poll loop
	// terminates as soon as the entry renames into place.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a.Save("cycles", key, []byte("owner-result"))
		c.Release()
	}()
	payload, ok, err := b.AwaitClaimed(context.Background(), "cycles", key)
	wg.Wait()
	if err != nil || !ok || string(payload) != "owner-result" {
		t.Fatalf("await: ok=%v err=%v payload=%q", ok, err, payload)
	}
	if b.Stats().ClaimWaitHits != 1 {
		t.Fatalf("stats %+v, want one wait hit", b.Stats())
	}
}

// TestAwaitClaimedReleasedEmpty covers the owner failing: a released
// claim with no entry resolves the wait as a miss (the waiter then
// claims for itself or computes uncoordinated).
func TestAwaitClaimedReleasedEmpty(t *testing.T) {
	a, b := twoStores(t)
	key := []byte("cold")
	c, err := a.Claim("cycles", key)
	if err != nil || c == nil {
		t.Fatal(err)
	}
	c.Release()
	payload, ok, err := b.AwaitClaimed(context.Background(), "cycles", key)
	if err != nil || ok || payload != nil {
		t.Fatalf("await released-empty: ok=%v err=%v payload=%q, want plain miss", ok, err, payload)
	}
}

// TestAwaitClaimedStaleTakeover covers the crashed owner: a claim older
// than the staleness threshold is removed and the wait resolves as a
// miss, so waiters can no longer be parked forever.
func TestAwaitClaimedStaleTakeover(t *testing.T) {
	a, b := twoStores(t)
	key := []byte("cold")
	if c, err := a.Claim("cycles", key); err != nil || c == nil {
		t.Fatal(err)
	}
	// Any real file is "stale" against a nanosecond threshold, so the
	// takeover path runs deterministically without clock games.
	b.SetClaimStaleAfter(time.Nanosecond)
	payload, ok, err := b.AwaitClaimed(context.Background(), "cycles", key)
	if err != nil || ok || payload != nil {
		t.Fatalf("await stale: ok=%v err=%v payload=%q, want takeover miss", ok, err, payload)
	}
	if b.Stats().ClaimTakeovers != 1 {
		t.Fatalf("stats %+v, want one takeover", b.Stats())
	}
	if _, serr := os.Stat(b.ClaimPath("cycles", key)); !os.IsNotExist(serr) {
		t.Fatalf("stale claim file still present (err=%v)", serr)
	}
	// The key is claimable again.
	if c, err := b.Claim("cycles", key); err != nil || c == nil {
		t.Fatalf("re-claim after takeover: %v %v", c, err)
	}
}

func TestAwaitClaimedCtxCanceled(t *testing.T) {
	a, b := twoStores(t)
	key := []byte("cold")
	if c, err := a.Claim("cycles", key); err != nil || c == nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, ok, err := b.AwaitClaimed(ctx, "cycles", key)
	if ok || err == nil {
		t.Fatalf("await with canceled ctx: ok=%v err=%v, want ctx error", ok, err)
	}
}

// TestClaimFilesInvisibleToStats pins the extension split: claim files
// must not be confused with entries by the stats walk or Compact.
func TestClaimFilesInvisibleToStats(t *testing.T) {
	a := openT(t, RW)
	key := []byte("cold")
	c, err := a.Claim("cycles", key)
	if err != nil || c == nil {
		t.Fatal(err)
	}
	a.Save("cycles", key, []byte("v"))
	st := a.Stats()
	if st.DiskEntries != 1 || st.LooseEntries != 1 {
		t.Fatalf("stats count the claim file: %+v", st)
	}
	if cs, err := a.Compact(); err != nil || cs.Entries != 1 {
		t.Fatalf("compact with claim present: %+v %v", cs, err)
	}
	// The claim survives compaction (it guards the key, not the entry
	// file) and still blocks rivals.
	if c2, err := a.Claim("cycles", key); err != nil || c2 != nil {
		t.Fatalf("claim should still be held: %v %v", c2, err)
	}
	c.Release()
}
