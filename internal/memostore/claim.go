package memostore

import (
	"context"
	"fmt"
	"os"
	"time"
)

// This file is the cross-process claim protocol (DESIGN.md §17): M
// cooperating processes over one store elect exactly one computer per
// cold key via an O_EXCL claim file next to the entry, so the cold-start
// residue — the first simulation of each steady state — is paid once
// fleet-wide instead of once per process.
//
// Soundness: claims influence WHO computes, never WHAT is computed. The
// computes are deterministic, so the owner's saved entry is byte-
// identical to what any waiter would have produced; a waiter that gives
// up (context canceled, claim vanished, filesystem trouble) simply
// computes uncoordinated and produces the same bytes. Walltime therefore
// appears only in the liveness heuristic — deciding that a claim whose
// file has not been refreshed is abandoned — where a wrong clock costs
// duplicate (byte-identical) work, never a wrong result. That is why the
// odrips-vet walltime allowances below are sound.
//
// Takeover is deliberately racy-but-benign: if a stale claim is removed
// while its slow owner is still computing, both finish and both Save the
// same bytes (last rename wins); an owner's Release after a takeover can
// remove the taker's claim file, which sends waiters back to claiming —
// again duplicate work at worst.

// DefaultClaimStaleAfter is the claim age after which AwaitClaimed
// presumes the owner died without releasing and takes the claim over.
const DefaultClaimStaleAfter = 30 * time.Second

// awaitPollFloor/Ceil bound AwaitClaimed's exponential poll backoff.
const (
	awaitPollFloor = time.Millisecond
	awaitPollCeil  = 50 * time.Millisecond
)

// Claim is an owned compute claim on one (class, key). The owner
// computes, Saves, and Releases; everyone else awaits.
type Claim struct {
	path     string
	released bool
}

// ClaimPath returns the claim file guarding (class, key): the entry path
// plus a ".claim" suffix, so the stats walk and loose-entry logic (which
// match on the ".memo" extension) never confuse the two.
func (s *Store) ClaimPath(class string, key []byte) string {
	return s.EntryPath(class, key) + ".claim"
}

// Claim attempts to become the process that computes (class, key).
// Outcomes:
//
//	(claim, nil): owned — compute, Save, then Release.
//	(nil, nil):   another live process holds the claim — AwaitClaimed.
//	(nil, err):   no coordination possible (store nil/not writable, or
//	              filesystem trouble) — compute uncoordinated; the claim
//	              layer must never be able to block a result.
func (s *Store) Claim(class string, key []byte) (*Claim, error) {
	if s == nil || !s.mode.Writable() {
		return nil, fmt.Errorf("memostore: claim needs a writable store (mode %s)", s.Mode())
	}
	path := s.ClaimPath(class, key)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		if os.IsExist(err) {
			s.count(func(st *Stats) { st.ClaimsLost++ })
			return nil, nil
		}
		return nil, err
	}
	fmt.Fprintf(f, "%d\n", os.Getpid()) // advisory: who held it, for debugging
	f.Close()
	s.count(func(st *Stats) { st.ClaimsOwned++ })
	return &Claim{path: path}, nil
}

// Release removes the claim file. Idempotent; never fails (a remove
// error leaves a stale claim that ages into a takeover).
func (c *Claim) Release() {
	if c == nil || c.released {
		return
	}
	c.released = true
	os.Remove(c.path)
}

// SetClaimStaleAfter tunes the takeover threshold (d <= 0 restores
// DefaultClaimStaleAfter). Liveness only: see the soundness note above.
func (s *Store) SetClaimStaleAfter(d time.Duration) {
	if s == nil {
		return
	}
	if d <= 0 {
		d = DefaultClaimStaleAfter
	}
	s.claimStaleNs.Store(int64(d))
}

func (s *Store) claimStaleAfter() time.Duration {
	if ns := s.claimStaleNs.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultClaimStaleAfter
}

// AwaitClaimed waits for another process's claim on (class, key) to
// resolve. Outcomes:
//
//	(payload, true, nil): the owner's entry landed — adopt it.
//	(nil, false, nil):    the claim vanished without an entry (owner
//	                      released empty-handed or died and aged out) —
//	                      retry Claim, or compute uncoordinated.
//	(nil, false, err):    ctx canceled — compute uncoordinated.
//
// The wait polls the entry and the claim file with bounded backoff; a
// claim older than SetClaimStaleAfter is removed (takeover) so a crashed
// owner cannot park waiters forever.
func (s *Store) AwaitClaimed(ctx context.Context, class string, key []byte) (payload []byte, ok bool, err error) {
	if s == nil || !s.mode.Readable() {
		return nil, false, nil
	}
	path := s.ClaimPath(class, key)
	wait := awaitPollFloor
	for {
		payload, ok, lerr := s.Load(class, key)
		if lerr == nil && ok {
			s.count(func(st *Stats) { st.ClaimWaitHits++ })
			return payload, true, nil
		}
		// A corrupt entry (lerr != nil) is a fail-safe miss: keep
		// waiting — the owner's Save will overwrite it or the claim
		// will resolve.
		info, serr := os.Stat(path)
		if serr != nil {
			return nil, false, nil // claim gone; no entry appeared
		}
		//odrips:allow walltime claim staleness is a cross-process liveness heuristic only: a wrong clock duplicates byte-identical work, it cannot change results
		if time.Since(info.ModTime()) > s.claimStaleAfter() {
			os.Remove(path) // takeover; benign if the owner races us
			s.count(func(st *Stats) { st.ClaimTakeovers++ })
			return nil, false, nil
		}
		//odrips:allow walltime bounded poll sleep while awaiting another process's compute; pacing only, results are byte-identical at any poll cadence
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, false, ctx.Err()
		case <-t.C:
		}
		if wait < awaitPollCeil {
			wait *= 2
		}
	}
}
