package memostore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzMemoStoreLoad hardens the entry loader against arbitrary on-disk
// bytes — truncations, bit flips, hostile length fields, mutations of
// valid entries. The contract under fuzz: Load must return a miss or a
// typed *CorruptError, never panic, and never report a hit unless every
// header and checksum field verified, in which case the payload must be
// exactly the stored bytes.
func FuzzMemoStoreLoad(f *testing.F) {
	key := []byte("fuzz-key")
	keyHash := sha256.Sum256(key)
	var buildFP [32]byte
	copy(buildFP[:], bytes.Repeat([]byte{0xAB}, 32))

	// Seed with a valid entry and targeted mutations of it.
	valid := encodeForFuzz(buildFP, keyHash, []byte("payload-bytes"))
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	for _, off := range []int{0, len(magic), len(magic) + 4, len(magic) + 4 + 32, headerLen - 1, headerLen + 1, len(valid) - 1} {
		bad := append([]byte(nil), valid...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}
	f.Add(valid[:headerLen])
	f.Add(append(append([]byte(nil), valid...), 0x00))
	// A hostile length field.
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hostile[len(magic)+4+64:], ^uint32(0))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The raw validator must be total.
		payload, hit, _ := DecodeEntryForFuzz(data, buildFP, keyHash)
		if hit {
			// A hit is only legitimate when the bytes are a well-formed
			// entry for exactly this build and key; re-encoding the
			// accepted payload must reproduce the input.
			if !bytes.Equal(encodeForFuzz(buildFP, keyHash, payload), data) {
				t.Fatalf("accepted entry does not round-trip")
			}
		}

		// The full Load path over a real file must agree and never panic.
		dir := t.TempDir()
		s, err := Open(dir, RO)
		if err != nil {
			t.Fatal(err)
		}
		path := s.EntryPath("fuzz", key)
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.Load("fuzz", key)
		if ok && err != nil {
			t.Fatalf("hit with error: %v", err)
		}
		if err != nil {
			if _, isCorrupt := err.(*CorruptError); !isCorrupt {
				t.Fatalf("untyped load error: %v", err)
			}
		}
		if ok {
			// Load verifies against the store's own build fingerprint, so
			// a hit additionally requires the entry to carry it.
			if !bytes.Equal(encodeForFuzz(s.buildFP, keyHash, got), data) {
				t.Fatalf("Load accepted an entry that does not round-trip")
			}
		}
	})
}

// FuzzPackLoad hardens the pack-segment decoder against arbitrary
// on-disk bytes. The contract under fuzz: a segment is either accepted
// wholesale (every structural, checksum, and version field verified — in
// which case re-encoding its entries reproduces the input bytes) or
// contributes nothing; the full Load path over a real *.pack file must
// return a miss or a typed *CorruptError, never panic, and never a
// false hit.
func FuzzPackLoad(f *testing.F) {
	key := []byte("fuzz-key")
	keyHash := sha256.Sum256(key)
	var buildFP [32]byte
	copy(buildFP[:], bytes.Repeat([]byte{0xAB}, 32))

	valid := EncodePackForFuzz(buildFP,
		[]string{"fuzz", "other"},
		[][32]byte{keyHash, {1, 2, 3}},
		[][]byte{[]byte("payload-bytes"), []byte("second")})
	f.Add([]byte{})
	f.Add([]byte(packMagic))
	f.Add(valid)
	for _, off := range []int{0, len(packMagic), len(packMagic) + 4, packHeaderLen - 1, packHeaderLen + 1, len(valid) - 1} {
		bad := append([]byte(nil), valid...)
		bad[off] ^= 0xFF
		f.Add(bad)
	}
	f.Add(valid[:packHeaderLen])
	f.Add(append(append([]byte(nil), valid...), 0x00))
	// A hostile entry count.
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(hostile[packHeaderLen-4:], ^uint32(0))
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The raw validator must be total, and acceptance must mean every
		// check passed — which the decode/encode round-trip certifies.
		if n, ok, _ := DecodePackForFuzz(data, buildFP); ok && n >= 0 {
			classes, hashes, payloads := reencodePackInput(t, data)
			if !bytes.Equal(EncodePackForFuzz(buildFP, classes, hashes, payloads), data) {
				t.Fatalf("accepted segment does not round-trip")
			}
		}

		// The full Load path over a real segment file must agree: a hit
		// only via a verified segment (Load verifies against the store's
		// own build fingerprint, so our 0xAB-fingerprint seeds land as
		// skew — silent misses — at this layer; structural damage must
		// surface as *CorruptError).
		dir := t.TempDir()
		s, err := Open(dir, RO)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fuzz.pack"), data, 0o666); err != nil {
			t.Fatal(err)
		}
		payload, ok, err := s.Load("fuzz", key)
		if ok && err != nil {
			t.Fatalf("hit with error: %v", err)
		}
		if err != nil {
			if _, isCorrupt := err.(*CorruptError); !isCorrupt {
				t.Fatalf("untyped load error: %v", err)
			}
		}
		if ok {
			if n, accepted, _ := DecodePackForFuzz(data, s.BuildFingerprint()); !accepted || n == 0 {
				t.Fatalf("Load hit from a segment the validator rejects")
			}
			if payload == nil {
				t.Fatalf("hit with nil payload")
			}
		}
		pp, pok, perr := s.LoadPacked("fuzz", key)
		if pok != ok || !bytes.Equal(pp, payload) {
			t.Fatalf("LoadPacked disagrees with Load: ok %v vs %v", pok, ok)
		}
		_ = perr
	})
}

// reencodePackInput re-parses an accepted segment's fields for the
// round-trip assertion, using the same layout constants as the decoder.
func reencodePackInput(t *testing.T, data []byte) (classes []string, hashes [][32]byte, payloads [][]byte) {
	t.Helper()
	off := len(packMagic) + 4 + 32
	count := binary.LittleEndian.Uint32(data[off:])
	off += 4
	for i := uint32(0); i < count; i++ {
		clen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		classes = append(classes, string(data[off:off+clen]))
		off += clen
		var kh [32]byte
		copy(kh[:], data[off:])
		off += 32
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		payloads = append(payloads, data[off:off+plen])
		off += plen
		hashes = append(hashes, kh)
	}
	return classes, hashes, payloads
}

// encodeForFuzz mirrors Save's entry layout for arbitrary header fields.
func encodeForFuzz(buildFP, keyHash [32]byte, payload []byte) []byte {
	buf := make([]byte, 0, headerLen+len(payload)+trailerLen)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, SchemaVersion)
	buf = append(buf, buildFP[:]...)
	buf = append(buf, keyHash[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := sha256.Sum256(payload)
	return append(buf, sum[:]...)
}
