// Package faults defines seeded, schedule-deterministic fault-injection
// plans for the ODRIPS entry/exit flows. A Plan is pure data: a list of
// injections, each naming a fault kind, the connected-standby cycle it
// strikes, and — where the kind needs one — a flow-step index or an
// argument. The platform interprets the plan by scheduling each injection
// as an ordinary simulator event, so a given (config, workload, plan)
// triple replays byte-identically regardless of host parallelism; the plan
// carries no clocks, no randomness, and no callbacks of its own.
//
// Plans round-trip through a compact text grammar for CLI flags, fuzzing,
// and reproducers:
//
//	injection  = kind "@" cycle [ "." step ] [ ":" arg ]
//	plan       = injection { ";" injection }
//
// e.g. "wake@1.3;meefail@2:1;drift@0:250000" — a wake event at step 3 of
// cycle 1's entry flow, a persistent MEE integrity failure in cycle 2, and
// a +250 ppm slow-crystal drift excursion in cycle 0.
package faults

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// WakeDuringEntry delivers an external wake at the start of entry flow
	// step Step, arming the platform's abortable-entry path: the in-flight
	// step completes, then the flow unwinds from the deepest already-safe
	// state and the idle period is retried.
	WakeDuringEntry Kind = iota
	// WakeDuringExit delivers an external wake at the start of exit flow
	// step Step. The chipset's one-shot wake latch is already set by the
	// wake that started the exit, so the event must be absorbed — the
	// injection exists to prove exactly that.
	WakeDuringExit
	// MEEFail forces a context-restore verification failure. Arg
	// ArgTransient fails the first restore attempt only (a soft ECC or bus
	// glitch: the retry succeeds); ArgPersistent corrupts the stored image
	// so every attempt fails and the platform degrades to
	// DRIPS-with-retention-SRAM.
	MEEFail
	// DRAMBitFlip flips one bit of the MEE-protected DRAM region during
	// the idle window. Arg is the bit offset into the region, reduced
	// modulo the region size at apply time, so any int64 targets a valid
	// bit of data or integrity metadata.
	DRAMBitFlip
	// TimerDrift retunes the slow (32.768 kHz) crystal by Arg parts per
	// billion during the idle window — a thermal excursion. The drift is
	// detected by the exit flow's Step cross-check and triggers
	// recalibration when it exceeds the budget threshold.
	TimerDrift
	// FETGlitch makes the AON-IO rail over/undershoot on re-power during
	// the exit flow's FET release: the PMU detects the bad level and
	// re-drives the FET, costing one extra slew window.
	FETGlitch

	kindCount
)

// MEEFail argument values.
const (
	ArgTransient  int64 = 0
	ArgPersistent int64 = 1
)

// Validation bounds. MaxDriftPPB keeps the retuned crystal far from zero
// frequency; MaxCycle and MaxStep bound parsed plans to plausible runs.
const (
	MaxCycle    = 1 << 20
	MaxStep     = 63
	MaxDriftPPB = 500_000_000
)

var kindNames = [...]string{"wake", "wakex", "meefail", "bitflip", "drift", "fetglitch"}

// String returns the grammar keyword of the kind.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// hasStep reports whether the kind addresses a flow step.
func (k Kind) hasStep() bool { return k == WakeDuringEntry || k == WakeDuringExit }

// hasArg reports whether the kind carries an argument.
func (k Kind) hasArg() bool { return k == MEEFail || k == DRAMBitFlip || k == TimerDrift }

// Injection is one planned fault. The zero Step/Arg are meaningful for the
// kinds that use them and must be zero for the kinds that do not, so that
// Injection values compare with ==.
type Injection struct {
	Kind  Kind
	Cycle int   // 0-based connected-standby cycle within the run
	Step  int   // flow-step index (Wake* kinds only)
	Arg   int64 // kind-specific argument (MEEFail, DRAMBitFlip, TimerDrift)
}

// String renders the injection in the plan grammar. Kinds with an argument
// always print it, so the rendering is canonical.
func (in Injection) String() string {
	var b strings.Builder
	b.WriteString(in.Kind.String())
	b.WriteByte('@')
	b.WriteString(strconv.Itoa(in.Cycle))
	if in.Kind.hasStep() {
		b.WriteByte('.')
		b.WriteString(strconv.Itoa(in.Step))
	}
	if in.Kind.hasArg() {
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(in.Arg, 10))
	}
	return b.String()
}

// Plan is an ordered list of injections. The zero Plan injects nothing and
// a platform running one behaves byte-identically to a platform with no
// plan installed at all.
type Plan struct {
	Injections []Injection
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Injections) == 0 }

// String renders the plan in the grammar; Parse(p.String()) reproduces p
// exactly for any valid plan.
func (p Plan) String() string {
	parts := make([]string, len(p.Injections))
	for i, in := range p.Injections {
		parts[i] = in.String()
	}
	return strings.Join(parts, ";")
}

// ParseError reports a token the grammar rejects.
type ParseError struct {
	Token string // the offending injection token
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("faults: parse %q: %s", e.Token, e.Msg)
}

// ValidationError reports an injection outside the legal bounds.
type ValidationError struct {
	Index     int // position in Plan.Injections
	Injection Injection
	Msg       string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("faults: injection %d (%s): %s", e.Index, e.Injection, e.Msg)
}

// Parse decodes a plan from the grammar and validates it. Empty input (or
// input of only separators/whitespace) decodes to the empty plan.
func Parse(s string) (Plan, error) {
	var p Plan
	for _, tok := range strings.Split(s, ";") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		in, err := parseInjection(tok)
		if err != nil {
			return Plan{}, err
		}
		p.Injections = append(p.Injections, in)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func parseInjection(tok string) (Injection, error) {
	kindStr, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return Injection{}, &ParseError{Token: tok, Msg: "missing '@cycle'"}
	}
	var in Injection
	kind := -1
	for i, name := range kindNames {
		if kindStr == name {
			kind = i
			break
		}
	}
	if kind < 0 {
		return Injection{}, &ParseError{Token: tok, Msg: fmt.Sprintf("unknown kind %q", kindStr)}
	}
	in.Kind = Kind(kind)

	rest, argStr, hasArg := strings.Cut(rest, ":")
	cycleStr, stepStr, hasStep := strings.Cut(rest, ".")
	if hasArg && !in.Kind.hasArg() {
		return Injection{}, &ParseError{Token: tok, Msg: fmt.Sprintf("%s takes no ':arg'", in.Kind)}
	}
	if hasStep && !in.Kind.hasStep() {
		return Injection{}, &ParseError{Token: tok, Msg: fmt.Sprintf("%s takes no '.step'", in.Kind)}
	}

	cycle, err := strconv.Atoi(cycleStr)
	if err != nil {
		return Injection{}, &ParseError{Token: tok, Msg: fmt.Sprintf("bad cycle %q", cycleStr)}
	}
	in.Cycle = cycle
	if hasStep {
		step, err := strconv.Atoi(stepStr)
		if err != nil {
			return Injection{}, &ParseError{Token: tok, Msg: fmt.Sprintf("bad step %q", stepStr)}
		}
		in.Step = step
	}
	if hasArg {
		arg, err := strconv.ParseInt(argStr, 10, 64)
		if err != nil {
			return Injection{}, &ParseError{Token: tok, Msg: fmt.Sprintf("bad arg %q", argStr)}
		}
		in.Arg = arg
	}
	return in, nil
}

// Validate checks every injection against the kind-specific bounds.
func (p Plan) Validate() error {
	for i, in := range p.Injections {
		if err := in.validate(); err != nil {
			return &ValidationError{Index: i, Injection: in, Msg: err.Error()}
		}
	}
	return nil
}

func (in Injection) validate() error {
	if in.Kind >= kindCount {
		return fmt.Errorf("unknown kind %d", in.Kind)
	}
	if in.Cycle < 0 || in.Cycle > MaxCycle {
		return fmt.Errorf("cycle %d outside [0, %d]", in.Cycle, MaxCycle)
	}
	if in.Kind.hasStep() {
		if in.Step < 0 || in.Step > MaxStep {
			return fmt.Errorf("step %d outside [0, %d]", in.Step, MaxStep)
		}
	} else if in.Step != 0 {
		return fmt.Errorf("%s takes no step", in.Kind)
	}
	switch in.Kind {
	case MEEFail:
		if in.Arg != ArgTransient && in.Arg != ArgPersistent {
			return fmt.Errorf("arg %d not transient (%d) or persistent (%d)", in.Arg, ArgTransient, ArgPersistent)
		}
	case DRAMBitFlip:
		if in.Arg < 0 {
			return fmt.Errorf("negative bit offset %d", in.Arg)
		}
	case TimerDrift:
		if in.Arg < -MaxDriftPPB || in.Arg > MaxDriftPPB {
			return fmt.Errorf("drift %d ppb outside ±%d", in.Arg, MaxDriftPPB)
		}
	default:
		if in.Arg != 0 {
			return fmt.Errorf("%s takes no arg", in.Kind)
		}
	}
	return nil
}

// Random draws a valid plan of n injections from the given seeded source:
// cycles in [0, cycles), entry/exit step indices in [0, entrySteps) and
// [0, exitSteps). It is the generator behind the property harness; the
// caller logs the seed so any failure replays.
func Random(rng *rand.Rand, n, cycles, entrySteps, exitSteps int) Plan {
	if cycles < 1 {
		cycles = 1
	}
	if entrySteps < 1 {
		entrySteps = 1
	}
	if exitSteps < 1 {
		exitSteps = 1
	}
	var p Plan
	for i := 0; i < n; i++ {
		in := Injection{
			Kind:  Kind(rng.Intn(int(kindCount))),
			Cycle: rng.Intn(cycles),
		}
		switch in.Kind {
		case WakeDuringEntry:
			in.Step = rng.Intn(entrySteps)
		case WakeDuringExit:
			in.Step = rng.Intn(exitSteps)
		case MEEFail:
			in.Arg = int64(rng.Intn(2))
		case DRAMBitFlip:
			in.Arg = rng.Int63n(1 << 30)
		case TimerDrift:
			// Large enough to trip the recalibration threshold about half
			// of the time, in either direction.
			in.Arg = int64(rng.Intn(2*MaxDriftPPB/1000)) - MaxDriftPPB/1000
		}
		p.Injections = append(p.Injections, in)
	}
	return p
}
