package faults

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Plan
	}{
		{"", Plan{}},
		{" ; ;", Plan{}},
		{"wake@1.3", Plan{Injections: []Injection{{Kind: WakeDuringEntry, Cycle: 1, Step: 3}}}},
		{"wakex@0.9", Plan{Injections: []Injection{{Kind: WakeDuringExit, Cycle: 0, Step: 9}}}},
		{"meefail@2:1", Plan{Injections: []Injection{{Kind: MEEFail, Cycle: 2, Arg: ArgPersistent}}}},
		{"meefail@2", Plan{Injections: []Injection{{Kind: MEEFail, Cycle: 2, Arg: ArgTransient}}}},
		{"bitflip@0:123456", Plan{Injections: []Injection{{Kind: DRAMBitFlip, Cycle: 0, Arg: 123456}}}},
		{"drift@1:-250000", Plan{Injections: []Injection{{Kind: TimerDrift, Cycle: 1, Arg: -250000}}}},
		{"fetglitch@4", Plan{Injections: []Injection{{Kind: FETGlitch, Cycle: 4}}}},
		{"wake@1.3; meefail@2:1 ;fetglitch@0", Plan{Injections: []Injection{
			{Kind: WakeDuringEntry, Cycle: 1, Step: 3},
			{Kind: MEEFail, Cycle: 2, Arg: ArgPersistent},
			{Kind: FETGlitch, Cycle: 0},
		}}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if len(got.Injections) != len(c.want.Injections) {
			t.Fatalf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got.Injections {
			if got.Injections[i] != c.want.Injections[i] {
				t.Fatalf("Parse(%q)[%d] = %+v, want %+v", c.in, i, got.Injections[i], c.want.Injections[i])
			}
		}
		// Canonical render re-parses to the same plan.
		again, err := Parse(got.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", c.in, err)
		}
		if again.String() != got.String() {
			t.Fatalf("round trip %q -> %q -> %q", c.in, got.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"wake",              // no @cycle
		"nosuch@1",          // unknown kind
		"wake@x.1",          // bad cycle
		"wake@1.x",          // bad step
		"meefail@1:x",       // bad arg
		"meefail@1.2:0",     // step on a stepless kind
		"fetglitch@1:5",     // arg on an argless kind
		"wake@-1.0",         // negative cycle
		"wake@1.99",         // step beyond MaxStep
		"wake@9999999.0",    // cycle beyond MaxCycle
		"meefail@1:7",       // invalid MEEFail arg
		"bitflip@1:-2",      // negative bit offset
		"drift@1:999999999", // drift beyond bound
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}

	var pe *ParseError
	if _, err := Parse("nosuch@1"); !errors.As(err, &pe) {
		t.Errorf("unknown kind error is %T, want *ParseError", err)
	}
	var ve *ValidationError
	if _, err := Parse("meefail@1:7"); !errors.As(err, &ve) {
		t.Errorf("bad arg error is %T, want *ValidationError", err)
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	bad := []Injection{
		{Kind: kindCount, Cycle: 0},
		{Kind: WakeDuringEntry, Cycle: -1},
		{Kind: WakeDuringEntry, Cycle: 0, Step: MaxStep + 1},
		{Kind: MEEFail, Cycle: 0, Arg: 2},
		{Kind: FETGlitch, Cycle: 0, Arg: 1},
		{Kind: DRAMBitFlip, Cycle: 0, Arg: -1},
		{Kind: TimerDrift, Cycle: 0, Arg: MaxDriftPPB + 1},
		{Kind: MEEFail, Cycle: 0, Step: 1, Arg: 0}, // step on stepless kind
	}
	for _, in := range bad {
		p := Plan{Injections: []Injection{in}}
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", in)
		}
	}
}

func TestRandomPlansValidateAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := Random(rng, rng.Intn(6), 5, 9, 10)
		if err := p.Validate(); err != nil {
			t.Fatalf("Random produced invalid plan %q: %v", p, err)
		}
		got, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", p, err)
		}
		if got.String() != p.String() {
			t.Fatalf("round trip %q -> %q", p, got)
		}
		if len(got.Injections) != len(p.Injections) {
			t.Fatalf("round trip lost injections: %q", p)
		}
		for j := range got.Injections {
			if got.Injections[j] != p.Injections[j] {
				t.Fatalf("round trip changed injection %d of %q", j, p)
			}
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	var p Plan
	if !p.Empty() {
		t.Fatal("zero plan not empty")
	}
	if p.String() != "" {
		t.Fatalf("zero plan renders %q", p.String())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if q, err := Parse("wake@0.0"); err != nil || q.Empty() {
		t.Fatal("non-empty plan reported empty")
	}
}

func TestKindStrings(t *testing.T) {
	want := []string{"wake", "wakex", "meefail", "bitflip", "drift", "fetglitch"}
	for k := Kind(0); k < kindCount; k++ {
		if k.String() != want[k] {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k, want[k])
		}
	}
	if !strings.HasPrefix(kindCount.String(), "Kind(") {
		t.Fatalf("out-of-range kind renders %q", kindCount)
	}
}
