package prop

import (
	"flag"
	"math/rand"
	"testing"

	"odrips/internal/faults"
	"odrips/internal/platform"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// propSeed reseeds the whole harness; the default keeps CI deterministic,
// and a failure report always names the seed that produced it.
var propSeed = flag.Int64("prop.seed", 20260806, "master seed for the property harness")

const propCases = 200

// TestFaultPlaneProperties is the randomized invariant sweep: propCases
// generated (config, workload, plan) triples, each checked against the
// package-doc invariants. Failures shrink to a minimal fault plan first.
func TestFaultPlaneProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(*propSeed))
	t.Logf("master seed %d (-prop.seed to override)", *propSeed)
	for i := 0; i < propCases; i++ {
		c := Generate(rng)
		if err := Check(c); err != nil {
			min := Shrink(c, Check)
			t.Fatalf("case %d failed: %v\n  case: %s\n  minimal reproducer: %s",
				i, err, c, min)
		}
	}
}

// TestEmptyPlanInertAcrossConfigs is invariant 1 over every technique
// combination the generator can draw, including the eMRAM variant.
func TestEmptyPlanInertAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(*propSeed + 1))
	for i := 0; i < 24; i++ {
		c := Generate(rng)
		c.Plan = faults.Plan{}
		if err := CheckInert(c); err != nil {
			t.Fatalf("case %d (%s): %v", i, c, err)
		}
	}
}

// TestFaultedRunsRepeatDeterministically: same case, two executions,
// identical outcomes — the schedule-determinism half of the tentpole.
func TestFaultedRunsRepeatDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(*propSeed + 2))
	for i := 0; i < 20; i++ {
		c := Generate(rng)
		a, err := Run(c, c.Plan)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, c, err)
		}
		b, err := Run(c, c.Plan)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, c, err)
		}
		if err := equalOutcome(a, b); err != nil {
			t.Fatalf("case %d (%s) diverged: %v", i, c, err)
		}
	}
}

// TestShrinkFindsMinimalPlan seeds a known-failing predicate (a planted
// "bug" that trips whenever a degradation happens) and checks the shrinker
// strips every unrelated injection from a noisy plan.
func TestShrinkFindsMinimalPlan(t *testing.T) {
	c := Case{
		Config: func() platform.Config {
			cfg := platform.ODRIPSConfig()
			cfg.ForceDeepest = true
			return cfg
		}(),
		Cycles: workload.Fixed(3, 0, 40*sim.Millisecond),
		Plan: mustParse(t,
			"fetglitch@0;meefail@1:1;wakex@2.1;drift@0:3000"),
	}
	check := func(tc Case) error {
		out, err := Run(tc, tc.Plan)
		if err != nil {
			return err
		}
		if out.Result.Faults.Degradations > 0 {
			return errPlanted
		}
		return nil
	}
	if check(c) == nil {
		t.Fatal("planted predicate does not fail on the full plan")
	}
	min := Shrink(c, check)
	if got := min.Plan.String(); got != "meefail@1:1" {
		t.Fatalf("shrunk plan = %q, want %q", got, "meefail@1:1")
	}
}

var errPlanted = &plantedError{}

type plantedError struct{}

func (*plantedError) Error() string { return "planted failure" }

func mustParse(t *testing.T, s string) faults.Plan {
	t.Helper()
	p, err := faults.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
