package prop

import (
	"flag"
	"math/rand"
	"reflect"
	"testing"

	"odrips/internal/faults"
	"odrips/internal/platform"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// propSeed reseeds the whole harness; the default keeps CI deterministic,
// and a failure report always names the seed that produced it.
var propSeed = flag.Int64("prop.seed", 20260806, "master seed for the property harness")

const propCases = 200

// TestFaultPlaneProperties is the randomized invariant sweep: propCases
// generated (config, workload, plan) triples, each checked against the
// package-doc invariants. Failures shrink to a minimal fault plan first.
func TestFaultPlaneProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(*propSeed))
	t.Logf("master seed %d (-prop.seed to override)", *propSeed)
	for i := 0; i < propCases; i++ {
		c := Generate(rng)
		if err := Check(c); err != nil {
			min := Shrink(c, Check)
			t.Fatalf("case %d failed: %v\n  case: %s\n  minimal reproducer: %s",
				i, err, c, min)
		}
	}
}

// TestEmptyPlanInertAcrossConfigs is invariant 1 over every technique
// combination the generator can draw, including the eMRAM variant.
func TestEmptyPlanInertAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(*propSeed + 1))
	for i := 0; i < 24; i++ {
		c := Generate(rng)
		c.Plan = faults.Plan{}
		if err := CheckInert(c); err != nil {
			t.Fatalf("case %d (%s): %v", i, c, err)
		}
	}
}

// TestFaultedRunsRepeatDeterministically: same case, two executions,
// identical outcomes — the schedule-determinism half of the tentpole.
func TestFaultedRunsRepeatDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(*propSeed + 2))
	for i := 0; i < 20; i++ {
		c := Generate(rng)
		a, err := Run(c, c.Plan)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, c, err)
		}
		b, err := Run(c, c.Plan)
		if err != nil {
			t.Fatalf("case %d (%s): %v", i, c, err)
		}
		if err := equalOutcome(a, b); err != nil {
			t.Fatalf("case %d (%s) diverged: %v", i, c, err)
		}
	}
}

// TestShrinkFindsMinimalPlan seeds a known-failing predicate (a planted
// "bug" that trips whenever a degradation happens) and checks the shrinker
// strips every unrelated injection from a noisy plan.
func TestShrinkFindsMinimalPlan(t *testing.T) {
	c := Case{
		Config: func() platform.Config {
			cfg := platform.ODRIPSConfig()
			cfg.ForceDeepest = true
			return cfg
		}(),
		Cycles: workload.Fixed(3, 0, 40*sim.Millisecond),
		Plan: mustParse(t,
			"fetglitch@0;meefail@1:1;wakex@2.1;drift@0:3000"),
	}
	check := func(tc Case) error {
		out, err := Run(tc, tc.Plan)
		if err != nil {
			return err
		}
		if out.Result.Faults.Degradations > 0 {
			return errPlanted
		}
		return nil
	}
	if check(c) == nil {
		t.Fatal("planted predicate does not fail on the full plan")
	}
	min := Shrink(c, check)
	if got := min.Plan.String(); got != "meefail@1:1" {
		t.Fatalf("shrunk plan = %q, want %q", got, "meefail@1:1")
	}
}

// TestFastForwardMetamorphic is the fast-forward metamorphic invariant:
// for generated faulted cases, the run is byte-identical with the cycle
// memo on, off, and in verify mode (verify additionally re-simulates and
// diffs every memoized cycle, so a pass is a machine-checked soundness
// certificate for the case).
func TestFastForwardMetamorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(*propSeed + 3))
	for i := 0; i < 30; i++ {
		c := Generate(rng)
		off, err := RunMode(c, c.Plan, platform.FFOff)
		if err != nil {
			t.Fatalf("case %d (%s) off: %v", i, c, err)
		}
		for _, mode := range []platform.FFMode{platform.FFOn, platform.FFVerify} {
			got, err := RunMode(c, c.Plan, mode)
			if err != nil {
				t.Fatalf("case %d (%s) %v: %v", i, c, mode, err)
			}
			if !reflect.DeepEqual(off, got) {
				t.Fatalf("case %d (%s) diverged at -fastforward=%v:\noff: %+v\ngot: %+v",
					i, c, mode, off.Result, got.Result)
			}
		}
	}
}

var errPlanted = &plantedError{}

type plantedError struct{}

func (*plantedError) Error() string { return "planted failure" }

func mustParse(t *testing.T, s string) faults.Plan {
	t.Helper()
	p, err := faults.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
