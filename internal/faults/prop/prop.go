// Package prop is the property/metamorphic harness for the fault-injection
// plane: it generates randomized (workload, config, fault-plan) cases and
// checks the recovery-edge invariants the platform promises —
//
//  1. the empty plan is inert: results and flow traces are byte-identical
//     to a platform with no fault plane installed;
//  2. an aborted entry can only cost energy: a run with entry aborts (and
//     no timer-drift injection, which legitimately moves wake instants)
//     spends at least as much battery energy as the fault-free run;
//  3. degradation moves idle power monotonically toward the
//     retention-SRAM floor: fault-free idle power <= degraded-run idle
//     power <= the same configuration with the off-chip context store
//     stripped.
//
// A failing case shrinks to a minimal fault plan before being reported, so
// a reproducer is one short -faults string plus the logged seed.
package prop

import (
	"fmt"
	"math/rand"

	"odrips/internal/faults"
	"odrips/internal/platform"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// Case is one generated scenario: a platform configuration, a workload,
// and a fault plan to inject into it.
type Case struct {
	Seed   int64
	Config platform.Config
	Cycles []workload.Cycle
	Plan   faults.Plan
}

// String renders the case compactly for failure reports.
func (c Case) String() string {
	return fmt.Sprintf("seed=%d techniques=%v emram=%v cycles=%d plan=%q",
		c.Seed, c.Config.Techniques, c.Config.CtxInEMRAM, len(c.Cycles), c.Plan.String())
}

// techniqueMenu holds the valid technique combinations Generate draws from
// (AON-IO-GATE requires WAKE-UP-OFF, so free bit mixing is not legal).
var techniqueMenu = []platform.Technique{
	0,
	platform.WakeUpOff,
	platform.WakeUpOff | platform.AONIOGate,
	platform.CtxSGXDRAM,
	platform.WakeUpOff | platform.CtxSGXDRAM,
	platform.ODRIPS,
}

// Generate draws a random case. Workloads force the deepest state so every
// cycle actually exercises the entry/exit flows the injections target.
func Generate(rng *rand.Rand) Case {
	cfg := platform.ODRIPSConfig()
	cfg.Techniques = techniqueMenu[rng.Intn(len(techniqueMenu))]
	if !cfg.Techniques.Has(platform.CtxSGXDRAM) && rng.Intn(3) == 0 {
		cfg.CtxInEMRAM = true
	}
	cfg.ForceDeepest = true
	cfg.Seed = rng.Int63n(1 << 30)

	// 2-3 cycles: enough for cross-cycle effects (degradation persists,
	// recalibration re-anchors) while every trace fits the ring buffer, so
	// Check's marker counting never reads a truncated window.
	n := 2 + rng.Intn(2)
	cycles := make([]workload.Cycle, n)
	for i := range cycles {
		idle := sim.Duration(20+rng.Intn(120)) * sim.Millisecond
		var wake workload.WakeKind
		switch rng.Intn(4) {
		case 0:
			wake = workload.WakeExternal
		case 1:
			wake = workload.WakeThermal
		default:
			wake = workload.WakeTimer
		}
		cycles[i] = workload.Cycle{Idle: idle, Wake: wake}
	}

	plan := faults.Random(rng, rng.Intn(5), n, 9, 10)
	return Case{Seed: cfg.Seed, Config: cfg, Cycles: cycles, Plan: plan}
}

// Outcome is one executed run of a case.
type Outcome struct {
	Result   platform.Result
	Trace    []platform.FlowStep
	Degraded bool
}

// TotalJ returns the run's total battery energy.
func (o Outcome) TotalJ() float64 {
	return o.Result.AvgPowerMW * 1e-3 * o.Result.Duration.Seconds()
}

// Run executes the case with the given plan installed (which may differ
// from c.Plan — the shrinker and the baseline comparisons substitute their
// own).
func Run(c Case, plan faults.Plan) (Outcome, error) {
	p, err := platform.New(c.Config)
	if err != nil {
		return Outcome{}, err
	}
	if err := p.InjectFaults(plan); err != nil {
		return Outcome{}, err
	}
	res, err := p.RunCycles(c.Cycles)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: res, Trace: p.FlowTrace(), Degraded: p.Degraded()}, nil
}

// RunMode executes the case with the plan installed and an explicit
// fast-forward mode — the two sides of the fast-forward metamorphic
// invariant (results must be byte-identical at every mode).
func RunMode(c Case, plan faults.Plan, mode platform.FFMode) (Outcome, error) {
	p, err := platform.New(c.Config)
	if err != nil {
		return Outcome{}, err
	}
	if err := p.SetFastForward(mode); err != nil {
		return Outcome{}, err
	}
	if err := p.InjectFaults(plan); err != nil {
		return Outcome{}, err
	}
	res, err := p.RunCycles(c.Cycles)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: res, Trace: p.FlowTrace(), Degraded: p.Degraded()}, nil
}

// RunBare executes the case with no fault plane installed at all — the
// reference side of the empty-plan-is-inert invariant.
func RunBare(c Case) (Outcome, error) {
	p, err := platform.New(c.Config)
	if err != nil {
		return Outcome{}, err
	}
	res, err := p.RunCycles(c.Cycles)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Result: res, Trace: p.FlowTrace(), Degraded: p.Degraded()}, nil
}

// floorConfig strips the off-chip context store: the configuration a
// degraded platform effectively runs with.
func floorConfig(cfg platform.Config) platform.Config {
	cfg.Techniques &^= platform.CtxSGXDRAM
	cfg.CtxInEMRAM = false
	return cfg
}

// hasDrift reports whether the plan carries a timer-drift injection, which
// legitimately moves wake instants (exempting the energy invariant).
func hasDrift(plan faults.Plan) bool {
	for _, inj := range plan.Injections {
		if inj.Kind == faults.TimerDrift {
			return true
		}
	}
	return false
}

// Check runs the case and its fault-free reference and verifies every
// applicable invariant, returning the first violation.
func Check(c Case) error {
	base, err := RunBare(c)
	if err != nil {
		return fmt.Errorf("fault-free run: %w", err)
	}
	got, err := Run(c, c.Plan)
	if err != nil {
		return fmt.Errorf("faulted run: %w", err)
	}
	st := got.Result.Faults

	// Invariant 2: aborts (and the other pure-cost recovery edges) only
	// add energy. Two legitimate exemptions: a drift injection moves wake
	// instants, and an injected entry wake that lands after the flow
	// completes (quantized past the last step) is an ordinary early wake
	// that truncates the idle period. The trace tells the two apart: every
	// "wake" marker that did not abort truncated an idle window.
	wakeMarkers := uint64(0)
	for _, fs := range got.Trace {
		if fs.Flow == "fault" && fs.Step == "wake" {
			wakeMarkers++
		}
	}
	allAborted := wakeMarkers == st.EntryAborts
	costly := st.EntryAborts > 0 || st.MEERetries > 0 || st.FETRetries > 0
	if costly && allAborted && !hasDrift(c.Plan) {
		// Recovery edges delay the cycles that follow them, which re-aligns
		// later 32 kHz-quantized idle windows by up to one slow period each
		// (~2 uJ) in either direction. Real recovery work costs two orders
		// of magnitude more, so a small allowance keeps the invariant sharp.
		const quantSlackJ = 2e-5
		baseJ, gotJ := base.TotalJ(), got.TotalJ()
		if gotJ < baseJ-quantSlackJ {
			return fmt.Errorf("energy shrank under faults: %.9f J < fault-free %.9f J (stats %+v)",
				gotJ, baseJ, st)
		}
	}

	// Invariant 3: degradation lands idle power between the fault-free
	// level and the stripped-context floor.
	if st.Degradations > 0 {
		if !got.Degraded {
			return fmt.Errorf("stats count a degradation but the platform is not degraded")
		}
		floor, err := RunBare(Case{Config: floorConfig(c.Config), Cycles: c.Cycles})
		if err != nil {
			return fmt.Errorf("floor run: %w", err)
		}
		idle := got.Result.IdlePowerMW()
		lo := base.Result.IdlePowerMW()
		hi := floor.Result.IdlePowerMW()
		const eps = 0.05 // mW; idle-share jitter from flow-adjacent samples
		if idle < lo-eps {
			return fmt.Errorf("degraded idle power %.3f mW below fault-free %.3f mW", idle, lo)
		}
		if idle > hi+eps {
			return fmt.Errorf("degraded idle power %.3f mW above retention-SRAM floor %.3f mW", idle, hi)
		}
	}

	// Bookkeeping sanity on every case: one-shot injections can fire or
	// be skipped at most once each, never both.
	if st.Fired+st.Skipped > st.Planned {
		return fmt.Errorf("fired %d + skipped %d exceeds planned %d", st.Fired, st.Skipped, st.Planned)
	}
	return nil
}

// CheckInert verifies invariant 1 for the case's config and workload: the
// empty plan changes nothing observable against a bare platform.
func CheckInert(c Case) error {
	base, err := RunBare(c)
	if err != nil {
		return err
	}
	armed, err := Run(c, faults.Plan{})
	if err != nil {
		return err
	}
	if err := equalOutcome(base, armed); err != nil {
		return fmt.Errorf("empty plan not inert: %w", err)
	}
	return nil
}

func equalOutcome(a, b Outcome) error {
	if a.Result.AvgPowerMW != b.Result.AvgPowerMW ||
		a.Result.Duration != b.Result.Duration ||
		a.Result.Faults != b.Result.Faults {
		return fmt.Errorf("results differ: %.9f mW / %v vs %.9f mW / %v",
			a.Result.AvgPowerMW, a.Result.Duration, b.Result.AvgPowerMW, b.Result.Duration)
	}
	if len(a.Trace) != len(b.Trace) {
		return fmt.Errorf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			return fmt.Errorf("trace step %d differs: %+v vs %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	return nil
}

// Shrink greedily minimizes the failing case's fault plan: it repeatedly
// drops any single injection whose removal preserves the failure, until no
// further drop does. The returned case fails check (assuming the input
// does) and its plan is locally minimal.
func Shrink(c Case, check func(Case) error) Case {
	for {
		shrunk := false
		for i := range c.Plan.Injections {
			trial := c
			trial.Plan = faults.Plan{Injections: append(
				append([]faults.Injection(nil), c.Plan.Injections[:i]...),
				c.Plan.Injections[i+1:]...)}
			if check(trial) != nil {
				c = trial
				shrunk = true
				break
			}
		}
		if !shrunk {
			return c
		}
	}
}
