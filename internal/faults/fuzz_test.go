package faults

import (
	"errors"
	"strings"
	"testing"
)

// FuzzFaultPlan hardens the plan grammar: arbitrary strings — including
// mutations of valid plans, which is what a mistyped -faults flag or a
// corrupted sweep config hands the CLI — must produce a typed error or a
// valid plan, never a panic. Accepted plans must survive the canonical
// String/Parse round trip unchanged.
func FuzzFaultPlan(f *testing.F) {
	seeds := []string{
		"",
		";",
		"wake@1.3",
		"wakex@0.9",
		"meefail@2:1",
		"bitflip@0:123456",
		"drift@1:-250000",
		"fetglitch@4",
		"wake@1.3; meefail@2:1 ;fetglitch@0",
		"wake@1.3.5",
		"meefail@@2",
		"drift@1:999999999999999999999",
		"wake@" + strings.Repeat("9", 40),
		"bitflip@1:" + strings.Repeat("1", 40),
		"wake@1.3;wake@1.3;wake@1.3",
		"\x00@\x00",
		"wake@é1.2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			// Every rejection must be one of the two typed errors so CLI
			// callers can distinguish syntax from range problems.
			var pe *ParseError
			var ve *ValidationError
			if !errors.As(err, &pe) && !errors.As(err, &ve) {
				t.Fatalf("Parse(%q) returned untyped error %T: %v", s, err, err)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid plan: %v", s, err)
		}
		canon := p.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String(Parse(%q))) = %v", s, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, again.String())
		}
		if len(again.Injections) != len(p.Injections) {
			t.Fatalf("round trip changed injection count for %q", s)
		}
		for i := range p.Injections {
			if p.Injections[i] != again.Injections[i] {
				t.Fatalf("round trip changed injection %d of %q", i, s)
			}
		}
	})
}
