package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"odrips/internal/sim"
)

// SpecError is the typed error for job-spec decode, encode, and
// validation failures. The serving layer maps it to a 400 with the
// reason in the body; the fuzz harness (FuzzJobSpec) pins that arbitrary
// input yields either a *SpecError or a canonical round-trip — never a
// panic, never an untyped error.
type SpecError struct {
	Reason string // "decode", "duration", "validate", "encode"
	Err    error
}

func (e *SpecError) Error() string { return fmt.Sprintf("fleet: spec %s: %v", e.Reason, e.Err) }

// Unwrap exposes the cause for errors.Is/As.
func (e *SpecError) Unwrap() error { return e.Err }

func specErrf(reason, format string, args ...any) *SpecError {
	return &SpecError{Reason: reason, Err: fmt.Errorf(format, args...)}
}

// specJSON is the on-disk fleet spec: the Spec fields with durations as
// human strings ("6h", "30s", "250ms") so spec files stay readable.
type specJSON struct {
	Name         string `json:"name"`
	Devices      int    `json:"devices"`
	Preset       string `json:"preset"`
	Horizon      string `json:"horizon"`
	Active       string `json:"active"`
	WakePeriod   string `json:"wake_period"`
	Shards       int    `json:"shards"`
	Workers      int    `json:"workers"`
	PlaneClasses int    `json:"plane_classes"`
	Spread       struct {
		SeedBase    int64     `json:"seed_base"`
		SeedStride  int64     `json:"seed_stride"`
		DriftPPB    []int64   `json:"drift_ppb"`
		BatteryMWh  []float64 `json:"battery_mwh"`
		JitterSteps []string  `json:"jitter_steps"`
		Faults      []struct {
			Device int    `json:"device"`
			Plan   string `json:"plan"`
		} `json:"faults"`
	} `json:"spread"`
}

// ParseSpecJSON decodes a fleet spec file. Unknown fields are errors
// (a typoed knob silently defaulting would corrupt a fleet study), and
// the decoded spec is validated after defaulting. Every failure is a
// *SpecError.
func ParseSpecJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		return Spec{}, &SpecError{Reason: "decode", Err: err}
	}
	s := Spec{
		Name:         sj.Name,
		Devices:      sj.Devices,
		Preset:       sj.Preset,
		Shards:       sj.Shards,
		Workers:      sj.Workers,
		PlaneClasses: sj.PlaneClasses,
	}
	var err error
	if s.Horizon, err = parseDur(sj.Horizon); err != nil {
		return Spec{}, specErrf("duration", "horizon: %w", err)
	}
	if s.Active, err = parseDur(sj.Active); err != nil {
		return Spec{}, specErrf("duration", "active: %w", err)
	}
	if s.WakePeriod, err = parseDur(sj.WakePeriod); err != nil {
		return Spec{}, specErrf("duration", "wake_period: %w", err)
	}
	s.Spread.SeedBase = sj.Spread.SeedBase
	s.Spread.SeedStride = sj.Spread.SeedStride
	s.Spread.DriftPPB = sj.Spread.DriftPPB
	s.Spread.BatteryMWh = sj.Spread.BatteryMWh
	if len(sj.Spread.JitterSteps) > 0 {
		s.Spread.JitterSteps = make([]sim.Duration, len(sj.Spread.JitterSteps))
		for i, js := range sj.Spread.JitterSteps {
			if s.Spread.JitterSteps[i], err = parseDur(js); err != nil {
				return Spec{}, specErrf("duration", "jitter step %d: %w", i, err)
			}
		}
	}
	for _, f := range sj.Spread.Faults {
		s.Spread.Faults = append(s.Spread.Faults, DeviceFaults{Device: f.Device, Plan: f.Plan})
	}
	if err := s.withDefaults().Validate(); err != nil {
		return Spec{}, &SpecError{Reason: "validate", Err: err}
	}
	return s, nil
}

// EncodeSpecJSON renders a spec in the canonical on-disk form — the
// exact inverse of ParseSpecJSON. Parse∘Encode is the identity and
// Encode∘Parse is a fixpoint after one round (durations normalize to
// time.Duration.String form), which is what makes encoded specs usable
// as content-addressed job identities. Sub-nanosecond durations (never
// produced by Parse) are an "encode" *SpecError rather than silent
// truncation.
func EncodeSpecJSON(s Spec) ([]byte, error) {
	var sj specJSON
	sj.Name = s.Name
	sj.Devices = s.Devices
	sj.Preset = s.Preset
	var err error
	if sj.Horizon, err = formatDur(s.Horizon); err != nil {
		return nil, specErrf("encode", "horizon: %w", err)
	}
	if sj.Active, err = formatDur(s.Active); err != nil {
		return nil, specErrf("encode", "active: %w", err)
	}
	if sj.WakePeriod, err = formatDur(s.WakePeriod); err != nil {
		return nil, specErrf("encode", "wake_period: %w", err)
	}
	sj.Shards = s.Shards
	sj.Workers = s.Workers
	sj.PlaneClasses = s.PlaneClasses
	sj.Spread.SeedBase = s.Spread.SeedBase
	sj.Spread.SeedStride = s.Spread.SeedStride
	sj.Spread.DriftPPB = s.Spread.DriftPPB
	sj.Spread.BatteryMWh = s.Spread.BatteryMWh
	if len(s.Spread.JitterSteps) > 0 {
		sj.Spread.JitterSteps = make([]string, len(s.Spread.JitterSteps))
		for i, js := range s.Spread.JitterSteps {
			if sj.Spread.JitterSteps[i], err = formatDur(js); err != nil {
				return nil, specErrf("encode", "jitter step %d: %w", i, err)
			}
		}
	}
	for _, f := range s.Spread.Faults {
		sj.Spread.Faults = append(sj.Spread.Faults, struct {
			Device int    `json:"device"`
			Plan   string `json:"plan"`
		}{Device: f.Device, Plan: f.Plan})
	}
	b, err := json.Marshal(sj)
	if err != nil {
		return nil, &SpecError{Reason: "encode", Err: err}
	}
	return b, nil
}

// formatDur renders sim time in the human form parseDur accepts.
func formatDur(d sim.Duration) (string, error) {
	if d%sim.Nanosecond != 0 {
		return "", fmt.Errorf("%d ps is not a whole nanosecond", int64(d))
	}
	return time.Duration(int64(d / sim.Nanosecond)).String(), nil
}
