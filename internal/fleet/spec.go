package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"odrips/internal/sim"
)

// specJSON is the on-disk fleet spec: the Spec fields with durations as
// human strings ("6h", "30s", "250ms") so spec files stay readable.
type specJSON struct {
	Name         string `json:"name"`
	Devices      int    `json:"devices"`
	Preset       string `json:"preset"`
	Horizon      string `json:"horizon"`
	Active       string `json:"active"`
	WakePeriod   string `json:"wake_period"`
	Shards       int    `json:"shards"`
	Workers      int    `json:"workers"`
	PlaneClasses int    `json:"plane_classes"`
	Spread       struct {
		SeedBase    int64     `json:"seed_base"`
		SeedStride  int64     `json:"seed_stride"`
		DriftPPB    []int64   `json:"drift_ppb"`
		BatteryMWh  []float64 `json:"battery_mwh"`
		JitterSteps []string  `json:"jitter_steps"`
		Faults      []struct {
			Device int    `json:"device"`
			Plan   string `json:"plan"`
		} `json:"faults"`
	} `json:"spread"`
}

// ParseSpecJSON decodes a fleet spec file. Unknown fields are errors
// (a typoed knob silently defaulting would corrupt a fleet study), and
// the decoded spec is validated after defaulting.
func ParseSpecJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		return Spec{}, fmt.Errorf("fleet: spec: %w", err)
	}
	s := Spec{
		Name:         sj.Name,
		Devices:      sj.Devices,
		Preset:       sj.Preset,
		Shards:       sj.Shards,
		Workers:      sj.Workers,
		PlaneClasses: sj.PlaneClasses,
	}
	var err error
	if s.Horizon, err = parseDur(sj.Horizon); err != nil {
		return Spec{}, fmt.Errorf("fleet: spec horizon: %w", err)
	}
	if s.Active, err = parseDur(sj.Active); err != nil {
		return Spec{}, fmt.Errorf("fleet: spec active: %w", err)
	}
	if s.WakePeriod, err = parseDur(sj.WakePeriod); err != nil {
		return Spec{}, fmt.Errorf("fleet: spec wake_period: %w", err)
	}
	s.Spread.SeedBase = sj.Spread.SeedBase
	s.Spread.SeedStride = sj.Spread.SeedStride
	s.Spread.DriftPPB = sj.Spread.DriftPPB
	s.Spread.BatteryMWh = sj.Spread.BatteryMWh
	if len(sj.Spread.JitterSteps) > 0 {
		s.Spread.JitterSteps = make([]sim.Duration, len(sj.Spread.JitterSteps))
		for i, js := range sj.Spread.JitterSteps {
			if s.Spread.JitterSteps[i], err = parseDur(js); err != nil {
				return Spec{}, fmt.Errorf("fleet: spec jitter step %d: %w", i, err)
			}
		}
	}
	for _, f := range sj.Spread.Faults {
		s.Spread.Faults = append(s.Spread.Faults, DeviceFaults{Device: f.Device, Plan: f.Plan})
	}
	if err := s.withDefaults().Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
