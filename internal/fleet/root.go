package fleet

import (
	"sync/atomic"

	"odrips/internal/memostore"
	"odrips/internal/platform"
)

// The fleet composition root: the process-wide shared memo plane that
// long-lived callers (the load harness, a fleet service loop) use so
// that memo classes warmed by one job accelerate every later job. The
// plane is bounded (platform.DefaultMemoPlaneClasses) and every method
// is concurrency-safe; jobs that need byte-identical memo statistics
// pass their own quiescent plane to Run instead.
//
//odrips:allow globalstate the process composition root for fleet jobs: one lazily built shared memo plane behind an atomic pointer, bounded by the plane's own LRU and safe for concurrent jobs
var root struct {
	plane atomic.Pointer[platform.MemoPlane]
}

// DefaultPlane returns the process-wide shared memo plane, creating it
// (detached from disk, default class bound) on first use.
func DefaultPlane() *platform.MemoPlane {
	if p := root.plane.Load(); p != nil {
		return p
	}
	fresh := platform.NewMemoPlane(nil, 0)
	if root.plane.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return root.plane.Load()
}

// SetDefaultPlane replaces the process-wide plane — wiring, called once
// at startup by binaries that want persistence-backed or custom-bounded
// sharing (and by tests to isolate).
func SetDefaultPlane(p *platform.MemoPlane) {
	root.plane.Store(p)
}

// PlaneFor builds a memo plane over store sized for the job: at least
// Spec.PlaneClasses, and never smaller than the job's own memo class
// count (an undersized plane thrashes — correct, but it re-simulates
// what it evicts). One-shot CLI runs use this; Run(s, nil) does the
// same sizing over a detached plane.
func PlaneFor(s Spec, store *memostore.Store) (*platform.MemoPlane, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	devices, err := expand(s)
	if err != nil {
		return nil, err
	}
	classes := make(map[string]bool, len(devices))
	for _, d := range devices {
		classes[d.memoClass] = true
	}
	n := s.PlaneClasses
	if n < len(classes) {
		n = len(classes)
	}
	return platform.NewMemoPlane(store, n), nil
}
