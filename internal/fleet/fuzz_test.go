package fleet

import (
	"errors"
	"reflect"
	"testing"
)

// FuzzJobSpec pins the job-spec decoder's serving contract: arbitrary
// bytes either fail with a typed *SpecError or decode to a spec whose
// canonical encoding is a fixpoint (Encode∘Parse stabilizes after one
// round and Parse∘Encode is the identity). Panics and untyped errors
// are the bugs this target hunts — the server feeds it raw request
// bodies. Wired into `make fuzz` and nightly-fuzz.yml.
func FuzzJobSpec(f *testing.F) {
	f.Add([]byte(`{"devices": 100}`))
	f.Add([]byte(`{
		"name": "nightly", "devices": 100, "preset": "odrips",
		"horizon": "6h", "wake_period": "30s", "shards": 4,
		"spread": {
			"seed_base": 10, "drift_ppb": [0, 40],
			"battery_mwh": [36000], "jitter_steps": ["0s", "250ms"],
			"faults": [{"device": 3, "plan": "wake@1.3"}]
		}
	}`))
	f.Add([]byte(`{"devices": 1, "horizon": "1h30m", "active": "250us"}`))
	f.Add([]byte(`{"devices": 0}`))
	f.Add([]byte(`{"devices": 2, "typo_knob": 3}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"devices": 1, "wake_period": "-30s"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpecJSON(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("untyped error %T from %q: %v", err, data, err)
			}
			return
		}
		c1, err := EncodeSpecJSON(s)
		if err != nil {
			t.Fatalf("parsed spec does not encode: %v (input %q)", err, data)
		}
		s2, err := ParseSpecJSON(c1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v (canonical %s)", err, c1)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the spec:\n was %+v\n now %+v\n canonical %s", s, s2, c1)
		}
		c2, err := EncodeSpecJSON(s2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(c1) != string(c2) {
			t.Fatalf("canonical form is not a fixpoint:\n c1 %s\n c2 %s", c1, c2)
		}
	})
}
