package fleet

import (
	"sync/atomic"
)

// Progress is a cheap, concurrently readable view of one running fleet
// job, built for the serving half of the engine: a job queue worker
// passes a Progress into RunWithProgress and the HTTP result stream
// polls Stats while the simulation runs. Every counter is an atomic —
// reading progress never takes a lock the simulation could be holding —
// and every counter is monotone, so consecutive Stats snapshots never
// move backwards (the contract the load harness asserts).
//
// Granularity is the device-run boundary, which is where the fleet
// engine's collapse layers make progress observable at all: a device's
// cycles "resolve" the moment its run-class representative finishes,
// because every other member of the class is served a copy of that
// result (DESIGN.md §15). Warm (phase-1) runs advance the warm counters
// only; device and cycle resolution is attributed in phase 2, per shard.
type Progress struct {
	shape atomic.Pointer[progressShape]
}

// NewProgress returns an idle Progress; Stats reports Started=false
// until a run adopts it. One Progress observes one run.
func NewProgress() *Progress { return &Progress{} }

// progressShape is the immutable layout (totals, per-run-class shard
// deltas) plus the mutable atomic counters, installed once at run start.
type progressShape struct {
	devices     int
	cyclesTotal uint64
	warmTotal   int
	runTotal    int

	warmDone    atomic.Uint64
	runDone     atomic.Uint64
	devicesDone atomic.Uint64
	cyclesDone  atomic.Uint64

	shards []progressShard
	// byRunClass maps a run-class key to the per-shard resolution this
	// class's completion unlocks. Read-only after build.
	byRunClass map[string][]shardDelta
}

type progressShard struct {
	devices     int
	cycles      uint64
	devicesDone atomic.Uint64
	cyclesDone  atomic.Uint64
}

type shardDelta struct {
	shard   int
	devices int
	cycles  uint64
}

// start installs the run's shape. Devices must be in index order (the
// expand contract), which makes each class's shard sequence
// nondecreasing, so deltas merge against the last element only.
func (p *Progress) start(devices []device, warmTotal, runTotal int) {
	if p == nil {
		return
	}
	sh := &progressShape{
		warmTotal:  warmTotal,
		runTotal:   runTotal,
		devices:    len(devices),
		byRunClass: make(map[string][]shardDelta),
	}
	maxShard := 0
	for i := range devices {
		if devices[i].shard > maxShard {
			maxShard = devices[i].shard
		}
	}
	sh.shards = make([]progressShard, maxShard+1)
	for i := range devices {
		d := &devices[i]
		cycles := uint64(d.cycles)
		sh.cyclesTotal += cycles
		sh.shards[d.shard].devices++
		sh.shards[d.shard].cycles += cycles
		dl := sh.byRunClass[d.runClass]
		if n := len(dl); n > 0 && dl[n-1].shard == d.shard {
			dl[n-1].devices++
			dl[n-1].cycles += cycles
		} else {
			dl = append(dl, shardDelta{shard: d.shard, devices: 1, cycles: cycles})
		}
		sh.byRunClass[d.runClass] = dl
	}
	p.shape.Store(sh)
}

// warmRunDone records one completed phase-1 (plane-warming) run.
func (p *Progress) warmRunDone() {
	if p == nil {
		return
	}
	if sh := p.shape.Load(); sh != nil {
		sh.warmDone.Add(1)
	}
}

// runClassDone resolves a completed phase-2 run class: every member
// device's cycles are now accounted for, attributed to its shard.
func (p *Progress) runClassDone(class string) {
	if p == nil {
		return
	}
	sh := p.shape.Load()
	if sh == nil {
		return
	}
	sh.runDone.Add(1)
	for _, dl := range sh.byRunClass[class] {
		sh.shards[dl.shard].devicesDone.Add(uint64(dl.devices))
		sh.shards[dl.shard].cyclesDone.Add(dl.cycles)
		sh.devicesDone.Add(uint64(dl.devices))
		sh.cyclesDone.Add(dl.cycles)
	}
}

// ShardProgress is one shard's slice of a ProgressStats snapshot.
type ShardProgress struct {
	Shard       int    `json:"shard"`
	Devices     int    `json:"devices"`
	DevicesDone int    `json:"devices_done"`
	Cycles      uint64 `json:"cycles"`
	CyclesDone  uint64 `json:"cycles_done"`
}

// ProgressStats is a point-in-time snapshot. Each counter is monotone
// across snapshots of the same run; the snapshot as a whole is not
// atomic (counters are read independently), which streaming tolerates.
type ProgressStats struct {
	Started bool `json:"started"`

	Devices     int    `json:"devices"`
	DevicesDone int    `json:"devices_done"`
	CyclesTotal uint64 `json:"cycles_total"`
	CyclesDone  uint64 `json:"cycles_done"`

	// WarmRuns are the phase-1 plane-warming simulations (one per memo
	// class); Runs are the phase-2 run-class simulations.
	WarmRuns     int `json:"warm_runs"`
	WarmRunsDone int `json:"warm_runs_done"`
	Runs         int `json:"runs"`
	RunsDone     int `json:"runs_done"`

	Shards []ShardProgress `json:"shards"`
}

// Stats snapshots the counters. Safe on a nil Progress and before the
// run starts (zero value, Started=false).
func (p *Progress) Stats() ProgressStats {
	if p == nil {
		return ProgressStats{}
	}
	sh := p.shape.Load()
	if sh == nil {
		return ProgressStats{}
	}
	st := ProgressStats{
		Started:      true,
		Devices:      sh.devices,
		DevicesDone:  int(sh.devicesDone.Load()),
		CyclesTotal:  sh.cyclesTotal,
		CyclesDone:   sh.cyclesDone.Load(),
		WarmRuns:     sh.warmTotal,
		WarmRunsDone: int(sh.warmDone.Load()),
		Runs:         sh.runTotal,
		RunsDone:     int(sh.runDone.Load()),
		Shards:       make([]ShardProgress, len(sh.shards)),
	}
	for i := range sh.shards {
		s := &sh.shards[i]
		st.Shards[i] = ShardProgress{
			Shard:       i,
			Devices:     s.devices,
			DevicesDone: int(s.devicesDone.Load()),
			Cycles:      s.cycles,
			CyclesDone:  s.cyclesDone.Load(),
		}
	}
	return st
}
