package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"odrips/internal/memostore"
	"odrips/internal/platform"
	"odrips/internal/sim"
)

// mixedSpec is a small but fully featured fleet: two drift populations
// (two memo classes), three jitter steps, two battery capacities, one
// faulted device — seven run classes across 48 devices, cheap enough to
// also simulate naively device-by-device for the equivalence test.
func mixedSpec() Spec {
	return Spec{
		Name:    "mixed",
		Devices: 48,
		Horizon: 10 * sim.Minute,
		Shards:  4,
		Spread: Spread{
			DriftPPB:    []int64{0, 40},
			BatteryMWh:  []float64{36000, 30000},
			JitterSteps: []sim.Duration{0, 250 * sim.Millisecond, 500 * sim.Millisecond},
			Faults:      []DeviceFaults{{Device: 5, Plan: "wake@1.3"}},
		},
	}
}

func mustAggJSON(t *testing.T, rep *Report) string {
	t.Helper()
	b, err := json.Marshal(rep.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func mustReportJSON(t *testing.T, rep *Report) string {
	t.Helper()
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetMatchesNaiveSimulation is the engine's ground truth: the
// fleet aggregates must be byte-identical to simulating every device
// individually, with no plane and no dedup, and folding the results
// through the same aggregation. This pins all three collapse layers
// (run dedup, cross-device replay, fast-forward) as pure optimizations.
func TestFleetMatchesNaiveSimulation(t *testing.T) {
	s := mixedSpec().withDefaults()

	rep, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}

	devices, err := expand(s)
	if err != nil {
		t.Fatal(err)
	}
	byRun := make(map[string]runOutcome)
	runRepIndex := make(map[string]int)
	warmFF := make(map[string]platform.FFStats)
	memoRepIndex := make(map[string]int)
	warmCount := make(map[string]int)
	for _, d := range devices {
		if _, ok := byRun[d.runClass]; !ok {
			out, err := runDevice(s, d, nil) // solo: no plane, no snapshot
			if err != nil {
				t.Fatalf("device %d solo: %v", d.index, err)
			}
			byRun[d.runClass] = out
			runRepIndex[d.runClass] = d.index
		}
		if _, ok := memoRepIndex[d.memoClass]; !ok {
			memoRepIndex[d.memoClass] = d.index
			warmFF[d.memoClass] = platform.FFStats{}
			warmCount[d.memoClass] = d.cycles
		}
	}
	naive, err := aggregate(s, devices, byRun, runRepIndex, warmFF, memoRepIndex, warmCount)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := mustAggJSON(t, rep), mustAggJSON(t, naive); got != want {
		t.Errorf("fleet aggregates diverged from naive per-device simulation:\nfleet: %s\nnaive: %s", got, want)
	}
	if rep.Memo.RunClasses != 7 || rep.Memo.MemoClasses != 2 {
		t.Errorf("class structure: %d run, %d memo classes (want 7, 2)",
			rep.Memo.RunClasses, rep.Memo.MemoClasses)
	}
}

// TestFleetDeterminism: the whole report is byte-identical at any worker
// count, and the Aggregates section additionally at any shard count and
// fast-forward mode.
func TestFleetDeterminism(t *testing.T) {
	base := mixedSpec()

	ref, err := Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	refFull := mustReportJSON(t, ref)
	refAgg := mustAggJSON(t, ref)

	for _, workers := range []int{1, 3} {
		s := base
		s.Workers = workers
		rep, err := Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mustReportJSON(t, rep) != refFull {
			t.Errorf("workers=%d: full report diverged", workers)
		}
	}
	for _, shards := range []int{1, 16, 48} {
		s := base
		s.Shards = shards
		rep, err := Run(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if mustAggJSON(t, rep) != refAgg {
			t.Errorf("shards=%d: aggregates diverged", shards)
		}
		if len(rep.Shards) != shards {
			t.Errorf("shards=%d: %d shard rows", shards, len(rep.Shards))
		}
	}
	defer platform.SetDefaultFastForward(platform.DefaultFastForward())
	for _, mode := range []platform.FFMode{platform.FFOff, platform.FFVerify, platform.FFOn} {
		platform.SetDefaultFastForward(mode)
		rep, err := Run(base, nil)
		if err != nil {
			t.Fatalf("fastforward=%v: %v", mode, err)
		}
		if mustAggJSON(t, rep) != refAgg {
			t.Errorf("fastforward=%v: aggregates diverged", mode)
		}
	}
}

// TestFleetHomogeneousHitRate is the acceptance scenario: a
// homogeneous-spread fleet (seeds and battery capacities vary, physics
// does not) collapses to one simulated run class, and the cross-device
// memo hit rate clears 90% with a wide margin.
func TestFleetHomogeneousHitRate(t *testing.T) {
	s := Spec{
		Name:    "homogeneous",
		Devices: 1000,
		Horizon: 10 * sim.Minute,
		Spread: Spread{
			SeedStride: 7,
			BatteryMWh: []float64{36000, 30000, 28000},
		},
	}
	rep, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Memo.RunClasses != 1 || rep.Memo.MemoClasses != 1 {
		t.Fatalf("homogeneous fleet split: %d run, %d memo classes", rep.Memo.RunClasses, rep.Memo.MemoClasses)
	}
	if rep.Memo.CrossDeviceHitRatePct < 90 {
		t.Errorf("cross-device hit rate %.3f%% < 90%%", rep.Memo.CrossDeviceHitRatePct)
	}
	if rep.Memo.SimulatedRuns != 2 { // one warm run, one frozen-snapshot run
		t.Errorf("simulated %d runs for a one-class fleet", rep.Memo.SimulatedRuns)
	}
	// Battery spread must show up in the life distribution even though
	// only one device was simulated.
	if agg := rep.Aggregates; !(agg.BatteryLifeHours.Min < agg.BatteryLifeHours.Max) {
		t.Errorf("battery spread lost: %+v", agg.BatteryLifeHours)
	}
}

// TestFleetLoadHarness hammers the shared default plane with many
// concurrent fleet jobs (two alternating specs sharing a memo class) and
// checks every job's aggregates against sequential golden runs. The CI
// fleet-smoke tier raises the job count via ODRIPS_FLEET_LOAD_JOBS and
// runs this under -race.
func TestFleetLoadHarness(t *testing.T) {
	jobs := 64
	if v := os.Getenv("ODRIPS_FLEET_LOAD_JOBS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("ODRIPS_FLEET_LOAD_JOBS=%q", v)
		}
		jobs = n
	}
	specs := []Spec{
		{Name: "load-a", Devices: 8, Horizon: 2 * sim.Minute},
		{Name: "load-b", Devices: 8, Horizon: 2 * sim.Minute,
			Spread: Spread{JitterSteps: []sim.Duration{250 * sim.Millisecond}}},
	}
	want := make([]string, len(specs))
	for i := range specs {
		rep, err := Run(specs[i], platform.NewMemoPlane(nil, 0))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = mustAggJSON(t, rep)
	}

	SetDefaultPlane(platform.NewMemoPlane(nil, 0))
	t.Cleanup(func() { SetDefaultPlane(platform.NewMemoPlane(nil, 0)) })
	const lanes = 8
	errs := make(chan error, lanes)
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for j := lane; j < jobs; j += lanes {
				i := j % len(specs)
				rep, err := Run(specs[i], DefaultPlane())
				if err != nil {
					errs <- fmt.Errorf("job %d: %w", j, err)
					return
				}
				if got, err := json.Marshal(rep.Aggregates); err != nil || string(got) != want[i] {
					errs <- fmt.Errorf("job %d (%s): aggregates diverged under load", j, specs[i].Name)
					return
				}
			}
		}(lane)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// fleetStore opens one RW store handle over dir, emulating a process in
// the multi-process tests (claims, entries, and packs are file-based).
func fleetStore(t *testing.T, dir string) *memostore.Store {
	t.Helper()
	s, err := memostore.Open(dir, memostore.RW)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFleetSecondProcessRecomputesNothing is the sequential half of the
// cross-process contract: a second process over an already-warmed shared
// store serves every memo class from disk — zero claims, zero writes —
// and reports byte-identical aggregates.
func TestFleetSecondProcessRecomputesNothing(t *testing.T) {
	s := mixedSpec()
	ref, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	refAgg := mustAggJSON(t, ref)

	dir := t.TempDir()
	storeA := fleetStore(t, dir)
	repA, err := Run(s, platform.NewMemoPlane(storeA, 0))
	if err != nil {
		t.Fatal(err)
	}
	if mustAggJSON(t, repA) != refAgg {
		t.Error("process A aggregates diverged from the plane-less run")
	}
	stA := storeA.Stats()
	if stA.Writes == 0 || stA.ClaimsOwned == 0 {
		t.Fatalf("cold process stats %+v: want writes and owned claims", stA)
	}

	storeB := fleetStore(t, dir)
	repB, err := Run(s, platform.NewMemoPlane(storeB, 0))
	if err != nil {
		t.Fatal(err)
	}
	if mustAggJSON(t, repB) != refAgg {
		t.Error("process B aggregates diverged")
	}
	stB := storeB.Stats()
	if stB.Writes != 0 || stB.ClaimsOwned != 0 {
		t.Fatalf("warm process re-did cold work: %+v", stB)
	}
	if stB.Hits == 0 {
		t.Fatalf("warm process never read the shared store: %+v", stB)
	}

	// Packing the store changes the byte layout, not the outcome: a third
	// process over the compacted store behaves exactly like B, now served
	// from the segment index.
	if cs, cerr := storeA.Compact(); cerr != nil || cs.LooseRemoved == 0 {
		t.Fatalf("compact: %+v %v", cs, cerr)
	}
	storeC := fleetStore(t, dir)
	repC, err := Run(s, platform.NewMemoPlane(storeC, 0))
	if err != nil {
		t.Fatal(err)
	}
	if mustAggJSON(t, repC) != refAgg {
		t.Error("packed-store process aggregates diverged")
	}
	stC := storeC.Stats()
	if stC.Writes != 0 || stC.ClaimsOwned != 0 || stC.PackHits == 0 {
		t.Fatalf("packed-store process stats %+v: want pure pack hits", stC)
	}
}

// TestFleetTwoProcessesShareColdStart races two "processes" (two store
// handles, two planes) through the same cold spec over one shared store
// directory, under -race in the tier-1 suite. The claim protocol
// guarantees each memo class's discovery is claimed at least once and at
// most once per process — never left unclaimed, never computed by a
// process that successfully awaited — and results are byte-identical
// either way.
func TestFleetTwoProcessesShareColdStart(t *testing.T) {
	s := mixedSpec()
	ref, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	refAgg := mustAggJSON(t, ref)

	dir := t.TempDir()
	stores := []*memostore.Store{fleetStore(t, dir), fleetStore(t, dir)}
	reps := make([]*Report, len(stores))
	var wg sync.WaitGroup
	for i := range stores {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := Run(s, platform.NewMemoPlane(stores[i], 0))
			if err != nil {
				t.Errorf("process %d: %v", i, err)
				return
			}
			reps[i] = rep
		}()
	}
	wg.Wait()
	for i, rep := range reps {
		if rep == nil {
			continue
		}
		if mustAggJSON(t, rep) != refAgg {
			t.Errorf("process %d aggregates diverged from the plane-less run", i)
		}
	}

	classes := uint64(ref.Memo.MemoClasses)
	var owned, takeovers uint64
	for _, st := range stores {
		stats := st.Stats()
		owned += stats.ClaimsOwned
		takeovers += stats.ClaimTakeovers
	}
	// Every cold class is claimed by its first toucher; a class can be
	// claimed by both processes only in the benign release/re-claim
	// window, never more than once per process (the loser of a live race
	// awaits and adopts instead).
	if owned < classes || owned > 2*classes {
		t.Errorf("claims owned fleet-wide = %d, want within [%d, %d]", owned, classes, 2*classes)
	}
	if takeovers != 0 {
		t.Errorf("%d stale takeovers during a live run", takeovers)
	}
}

// TestParseSpecJSON covers the spec file round trip and its error paths.
func TestParseSpecJSON(t *testing.T) {
	s, err := ParseSpecJSON([]byte(`{
		"name": "nightly", "devices": 100, "preset": "odrips",
		"horizon": "6h", "wake_period": "30s", "shards": 4,
		"spread": {
			"seed_base": 10, "drift_ppb": [0, 40],
			"battery_mwh": [36000], "jitter_steps": ["0s", "250ms"],
			"faults": [{"device": 3, "plan": "wake@1.3"}]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Devices != 100 || s.Horizon != 6*sim.Hour || s.Shards != 4 {
		t.Errorf("parsed spec %+v", s)
	}
	if len(s.Spread.JitterSteps) != 2 || s.Spread.JitterSteps[1] != 250*sim.Millisecond {
		t.Errorf("jitter steps %v", s.Spread.JitterSteps)
	}
	if len(s.Spread.Faults) != 1 || s.Spread.Faults[0].Plan != "wake@1.3" {
		t.Errorf("faults %+v", s.Spread.Faults)
	}

	for name, bad := range map[string]string{
		"unknown field": `{"devices": 1, "typo_knob": 3}`,
		"bad duration":  `{"devices": 1, "horizon": "6 fortnights"}`,
		"bad plan":      `{"devices": 1, "spread": {"faults": [{"device": 0, "plan": "nonsense"}]}}`,
		"no devices":    `{}`,
	} {
		if _, err := ParseSpecJSON([]byte(bad)); err == nil {
			t.Errorf("%s: accepted %s", name, bad)
		}
	}
}

// TestFleetSpecValidation exercises Spec.Validate edges and the shard
// split invariants.
func TestFleetSpecValidation(t *testing.T) {
	for name, s := range map[string]Spec{
		"too many shards": {Devices: 2, Shards: 3},
		"bad preset":      {Devices: 1, Preset: "warp-drive"},
		"jitter >= wake":  {Devices: 1, Spread: Spread{JitterSteps: []sim.Duration{40 * sim.Second}}},
		"fault oob":       {Devices: 2, Spread: Spread{Faults: []DeviceFaults{{Device: 2, Plan: "wake@1.3"}}}},
	} {
		if err := s.withDefaults().Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}

	s := Spec{Devices: 10, Shards: 4}.withDefaults()
	devices, err := expand(s)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, s.Shards)
	prev := 0
	for _, d := range devices {
		if d.shard < prev || d.shard >= s.Shards {
			t.Fatalf("device %d: shard %d not a contiguous split", d.index, d.shard)
		}
		prev = d.shard
		counts[d.shard]++
	}
	for i, c := range counts {
		if c < 2 || c > 3 { // 10 devices over 4 shards: 3/2/3/2
			t.Errorf("shard %d has %d devices; want balanced", i, c)
		}
	}
}

// TestFleetAcceptanceScale pins the headline perf claim structurally
// (so it cannot rot with machine speed): the 10k-device six-hour
// acceptance fleet must simulate at most 1/50th of its device-cycles —
// the engine replaces ≥50× of the sequential work — at a ≥90%
// cross-device hit rate.
func TestFleetAcceptanceScale(t *testing.T) {
	s := Spec{
		Name:    "acceptance",
		Devices: 10000,
		Shards:  16,
		Spread: Spread{
			SeedStride: 3,
			BatteryMWh: []float64{36000, 30000, 28000},
		},
	}
	rep, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Memo.CrossDeviceHitRatePct < 90 {
		t.Errorf("cross-device hit rate %.3f%% < 90%%", rep.Memo.CrossDeviceHitRatePct)
	}
	if got, budget := rep.Memo.SimulatedCycles, rep.Aggregates.TotalDeviceCycles/50; got > budget {
		t.Errorf("simulated %d of %d device-cycles; 50x bound allows %d",
			got, rep.Aggregates.TotalDeviceCycles, budget)
	}
	if rep.Aggregates.TotalDeviceCycles != 719*10000 {
		t.Errorf("total device-cycles %d; want 7,190,000 (719 per device)", rep.Aggregates.TotalDeviceCycles)
	}
}

// TestFleetProgress pins the serving-side progress contract: counters
// are monotone while the run executes, and at completion every total is
// accounted for, per shard and overall.
func TestFleetProgress(t *testing.T) {
	s := mixedSpec()
	prog := NewProgress()
	if st := prog.Stats(); st.Started {
		t.Fatal("progress started before the run")
	}

	// A polling reader races the run, checking monotonicity of every
	// counter across snapshots (the stream the server sends clients).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var violations atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last ProgressStats
		for {
			st := prog.Stats()
			if st.DevicesDone < last.DevicesDone || st.CyclesDone < last.CyclesDone ||
				st.RunsDone < last.RunsDone || st.WarmRunsDone < last.WarmRunsDone {
				violations.Add(1)
			}
			for i := range st.Shards {
				if i < len(last.Shards) && st.Shards[i].CyclesDone < last.Shards[i].CyclesDone {
					violations.Add(1)
				}
			}
			last = st
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	rep, err := RunWithProgress(context.Background(), s, nil, prog)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if violations.Load() > 0 {
		t.Errorf("%d non-monotone progress snapshots", violations.Load())
	}

	st := prog.Stats()
	if !st.Started {
		t.Fatal("progress never started")
	}
	if st.DevicesDone != st.Devices || st.Devices != s.Devices {
		t.Errorf("devices %d/%d (spec %d)", st.DevicesDone, st.Devices, s.Devices)
	}
	if st.CyclesDone != st.CyclesTotal || st.CyclesTotal != rep.Aggregates.TotalDeviceCycles {
		t.Errorf("cycles %d/%d (report %d)", st.CyclesDone, st.CyclesTotal, rep.Aggregates.TotalDeviceCycles)
	}
	if st.RunsDone != st.Runs || st.Runs != rep.Memo.RunClasses {
		t.Errorf("runs %d/%d (report %d classes)", st.RunsDone, st.Runs, rep.Memo.RunClasses)
	}
	if st.WarmRunsDone != st.WarmRuns || st.WarmRuns != rep.Memo.MemoClasses {
		t.Errorf("warm runs %d/%d (report %d classes)", st.WarmRunsDone, st.WarmRuns, rep.Memo.MemoClasses)
	}
	if len(st.Shards) != s.Shards {
		t.Fatalf("%d shard rows (spec %d)", len(st.Shards), s.Shards)
	}
	var shardCycles, shardDevices uint64
	for i, sh := range st.Shards {
		if sh.CyclesDone != sh.Cycles || sh.DevicesDone != sh.Devices {
			t.Errorf("shard %d incomplete: %d/%d cycles, %d/%d devices",
				i, sh.CyclesDone, sh.Cycles, sh.DevicesDone, sh.Devices)
		}
		shardCycles += sh.Cycles
		shardDevices += uint64(sh.Devices)
	}
	if shardCycles != st.CyclesTotal || shardDevices != uint64(st.Devices) {
		t.Errorf("shard totals %d cycles / %d devices; fleet %d / %d",
			shardCycles, shardDevices, st.CyclesTotal, st.Devices)
	}
}

// TestFleetCancellation: a canceled context stops the run at the next
// device-run boundary with an error that unwraps to context.Canceled,
// and a pre-canceled context never simulates at all.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunWithProgress(ctx, mixedSpec(), nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run: %v", err)
	}

	// Cancel mid-run: trip the cancel from the progress callback of the
	// first completed warm run, so the cancellation lands while later
	// representatives are still pending.
	s := mixedSpec()
	s.Workers = 1
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	prog := NewProgress()
	var once sync.Once
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if prog.Stats().WarmRunsDone > 0 {
				once.Do(cancel)
				return
			}
		}
	}()
	_, err := RunWithProgress(ctx, s, nil, prog)
	close(done)
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: %v", err)
	}
	if st := prog.Stats(); st.DevicesDone == st.Devices && st.CyclesDone == st.CyclesTotal {
		t.Error("run completed despite cancellation")
	}
}
