// Package fleet is the sharded multi-device simulation engine: it runs N
// device configurations — a base platform configuration crossed with
// per-device perturbations (seed, crystal drift, battery capacity, wake
// period jitter, optional fault plans) — against one shared, bounded,
// concurrent cycle-memo plane (platform.MemoPlane), and reports
// deterministic fleet aggregates: battery-life percentiles, residency
// histogram, wake statistics, and cross-device memo hit rates.
//
// The paper's headline numbers are population claims (99.5% DRIPS
// residency, 28% battery-life extension for devices, plural); this
// package is the engine that evaluates them at population scale without
// paying population cost. Three collapse layers stack:
//
//  1. Run-level dedup. Devices identical up to output-inert parameters
//     share one simulation: the seed only varies DRAM context bytes
//     (size-based accounting, never content-based — the identity
//     platform.MemoClassKey documents and TestSeedInertness pins), and
//     battery capacity is applied to the result downstream of the
//     simulation. A 10k-device homogeneous-spread fleet therefore
//     simulates a handful of run classes and copies.
//
//  2. Cross-device cycle replay. Distinct run classes of one memo class
//     (jittered wake periods, post-fault steady states) adopt each
//     other's steady-state cycle records through the shared plane, so
//     only the first device pays for each cycle class.
//
//  3. Steady-state fast-forward within each simulated run (DESIGN.md
//     §12), as for any single-device run.
//
// Determinism: execution is two-phase. Phase 1 warms the plane with one
// representative per memo class (disjoint classes — publication order
// cannot matter); the plane is then frozen into a MemoSnapshot; phase 2
// runs one representative per run class against the frozen snapshot, so
// every phase-2 execution — results AND replay statistics — is a pure
// function of the spec. Results are assembled in submission-index order
// (the experiments engine's discipline), making the whole report
// byte-identical at any -shards/-workers count.
package fleet

import (
	"fmt"
	"math"
	"time"

	"odrips/internal/battery"
	"odrips/internal/faults"
	"odrips/internal/platform"
	"odrips/internal/sim"
	"odrips/internal/workload"
)

// Spec describes one fleet job.
type Spec struct {
	// Name labels the job in reports.
	Name string
	// Devices is the fleet size.
	Devices int
	// Preset names the base configuration: "odrips" (default),
	// "baseline", "wake-up-off", "aon-io-gate", or "ctx-sgx-dram".
	Preset string
	// Horizon is the simulated wall time per device (default 6h).
	Horizon sim.Duration
	// Active and WakePeriod shape the connected-standby cycle: an Active
	// maintenance burst (default 2ms) followed by WakePeriod of idle
	// (default 30s) until a timer wake.
	Active     sim.Duration
	WakePeriod sim.Duration
	// Shards is the number of aggregation groups devices are split into
	// (contiguous index ranges; default 1). Shard count changes the
	// per-shard breakdown only, never the fleet-level aggregates.
	Shards int
	// Workers sizes the simulation worker pool (0 = package default).
	Workers int
	// PlaneClasses bounds the memo plane when Run creates one (0 = large
	// enough for this job's memo classes).
	PlaneClasses int

	Spread Spread
}

// Spread is the per-device perturbation recipe. Each non-empty list is
// cycled over the device index, so perturbations cross-product cheaply.
type Spread struct {
	// SeedBase/SeedStride assign device i the seed SeedBase+i*SeedStride
	// (defaults 1 and 1). Seeds are output-inert; they never split run
	// classes.
	SeedBase   int64
	SeedStride int64
	// DriftPPB adds per-device slow-crystal frequency error on top of the
	// preset's. Distinct drifts are distinct memo classes (they change
	// timer behavior) and re-simulate.
	DriftPPB []int64
	// BatteryMWh overrides the pack nameplate capacity per device.
	// Capacity is applied downstream of the simulation, so it never
	// splits run classes.
	BatteryMWh []float64
	// JitterSteps adds per-device extra idle to the wake period,
	// quantized: devices sharing a step share a run class, and all steps
	// share the memo class (the plane covers them cross-device).
	JitterSteps []sim.Duration
	// Faults assigns fault plans to individual devices (sparse).
	Faults []DeviceFaults
}

// DeviceFaults installs a fault plan (faults package grammar) on one
// device index.
type DeviceFaults struct {
	Device int
	Plan   string
}

// Defaults for zero Spec fields.
const (
	DefaultHorizon    = 6 * sim.Hour
	DefaultActive     = 2 * sim.Millisecond
	DefaultWakePeriod = 30 * sim.Second
)

// baseConfig resolves the preset name.
func baseConfig(preset string) (platform.Config, error) {
	switch preset {
	case "", "odrips":
		return platform.ODRIPSConfig(), nil
	case "baseline":
		return platform.DefaultConfig(), nil
	case "wake-up-off":
		return platform.DefaultConfig().WithTechniques(platform.WakeUpOff), nil
	case "aon-io-gate":
		return platform.DefaultConfig().WithTechniques(platform.WakeUpOff | platform.AONIOGate), nil
	case "ctx-sgx-dram":
		return platform.DefaultConfig().WithTechniques(platform.CtxSGXDRAM), nil
	}
	return platform.Config{}, fmt.Errorf("fleet: unknown preset %q (want odrips, baseline, wake-up-off, aon-io-gate, or ctx-sgx-dram)", preset)
}

// withDefaults fills zero fields.
func (s Spec) withDefaults() Spec {
	if s.Horizon == 0 {
		s.Horizon = DefaultHorizon
	}
	if s.Active == 0 {
		s.Active = DefaultActive
	}
	if s.WakePeriod == 0 {
		s.WakePeriod = DefaultWakePeriod
	}
	if s.Shards == 0 {
		s.Shards = 1
	}
	if s.Spread.SeedBase == 0 {
		s.Spread.SeedBase = 1
	}
	if s.Spread.SeedStride == 0 {
		s.Spread.SeedStride = 1
	}
	return s
}

// Normalized returns the spec with defaults filled and validated — the
// form the job queue runs and hashes for job identities, so two
// submissions differing only in defaulted fields are the same job.
func (s Spec) Normalized() (Spec, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks a spec (after defaulting).
func (s Spec) Validate() error {
	if s.Devices < 1 {
		return fmt.Errorf("fleet: %d devices (want at least 1)", s.Devices)
	}
	if _, err := baseConfig(s.Preset); err != nil {
		return err
	}
	if s.Horizon < 0 || s.Active < 0 || s.WakePeriod <= 0 {
		return fmt.Errorf("fleet: bad cycle shape (horizon %v, active %v, wake period %v)", s.Horizon, s.Active, s.WakePeriod)
	}
	if s.Shards < 0 || s.Workers < 0 || s.PlaneClasses < 0 {
		return fmt.Errorf("fleet: negative shards/workers/plane-classes")
	}
	if s.Shards > s.Devices {
		return fmt.Errorf("fleet: %d shards for %d devices", s.Shards, s.Devices)
	}
	for _, j := range s.Spread.JitterSteps {
		if j < 0 || j >= s.WakePeriod {
			return fmt.Errorf("fleet: jitter step %v out of [0, wake period)", j)
		}
	}
	for _, df := range s.Spread.Faults {
		if df.Device < 0 || df.Device >= s.Devices {
			return fmt.Errorf("fleet: fault plan for device %d outside fleet of %d", df.Device, s.Devices)
		}
		if _, err := faults.Parse(df.Plan); err != nil {
			return fmt.Errorf("fleet: device %d: %w", df.Device, err)
		}
	}
	return nil
}

// device is one expanded fleet member.
type device struct {
	index   int
	cfg     platform.Config
	idle    sim.Duration
	cycles  int
	pack    battery.Pack
	planStr string
	shard   int

	memoClass string
	runClass  string
}

// expand deterministically materializes the per-device list from a
// defaulted, validated spec. Devices are produced in index order; shard
// assignment is the balanced contiguous split index*Shards/Devices.
func expand(s Spec) ([]device, error) {
	base, err := baseConfig(s.Preset)
	if err != nil {
		return nil, err
	}
	plans := make(map[int]string, len(s.Spread.Faults))
	for _, df := range s.Spread.Faults {
		if _, dup := plans[df.Device]; dup {
			return nil, fmt.Errorf("fleet: device %d has two fault plans", df.Device)
		}
		plans[df.Device] = df.Plan
	}
	devices := make([]device, s.Devices)
	for i := range devices {
		d := &devices[i]
		d.index = i
		d.cfg = base
		d.cfg.Seed = s.Spread.SeedBase + int64(i)*s.Spread.SeedStride
		if n := len(s.Spread.DriftPPB); n > 0 {
			d.cfg.XtalSlowPPB += s.Spread.DriftPPB[i%n]
		}
		d.idle = s.WakePeriod
		if n := len(s.Spread.JitterSteps); n > 0 {
			d.idle += s.Spread.JitterSteps[i%n]
		}
		period := s.Active + d.idle
		d.cycles = int(s.Horizon / period)
		if d.cycles < 1 {
			d.cycles = 1
		}
		d.pack = battery.Tablet()
		if n := len(s.Spread.BatteryMWh); n > 0 {
			d.pack.CapacityMWh = s.Spread.BatteryMWh[i%n]
		}
		if err := d.pack.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", i, err)
		}
		d.planStr = plans[i]
		d.shard = i * s.Shards / s.Devices

		d.memoClass = platform.MemoClassKey(d.cfg)
		d.runClass = fmt.Sprintf("%s|active=%d|idle=%d|n=%d|plan=%s",
			d.memoClass, int64(s.Active), int64(d.idle), d.cycles, d.planStr)
	}
	return devices, nil
}

// cyclesFor builds a device's workload.
func cyclesFor(s Spec, d device) []workload.Cycle {
	return workload.Fixed(d.cycles, s.Active, d.idle)
}

// parseDur parses a human duration ("30s", "6h") into sim time.
// Durations whose picosecond representation overflows int64 (~106 days)
// are rejected rather than silently wrapped.
func parseDur(v string) (sim.Duration, error) {
	if v == "" {
		return 0, nil
	}
	td, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("fleet: %w", err)
	}
	ns := td.Nanoseconds()
	const maxNS = math.MaxInt64 / int64(sim.Nanosecond)
	if ns > maxNS || ns < -maxNS {
		return 0, fmt.Errorf("fleet: %v overflows simulated time (limit ~106 days)", td)
	}
	return sim.Duration(ns) * sim.Nanosecond, nil
}
