package fleet

import (
	"context"
	"fmt"

	"odrips/internal/experiments"
	"odrips/internal/faults"
	"odrips/internal/platform"
	"odrips/internal/workload"
)

// classRep is a deterministic class representative: the lowest-indexed
// device of the class.
type classRep struct {
	key string
	dev device
}

// classesOf collects, in first-appearance (= device index) order, one
// representative per class.
func classesOf(devices []device, key func(device) string) []classRep {
	seen := make(map[string]bool, len(devices))
	var reps []classRep
	for _, d := range devices {
		k := key(d)
		if seen[k] {
			continue
		}
		seen[k] = true
		reps = append(reps, classRep{key: k, dev: d})
	}
	return reps
}

// runOutcome is one simulated run class's full result.
type runOutcome struct {
	res platform.Result
	ff  platform.FFStats
}

// runDevice builds, attaches, faults, and runs one device simulation.
func runDevice(s Spec, d device, attach func(*platform.Platform)) (runOutcome, error) {
	p, err := platform.New(d.cfg)
	if err != nil {
		return runOutcome{}, err
	}
	if attach != nil {
		attach(p)
	}
	if d.planStr != "" {
		plan, err := faults.Parse(d.planStr)
		if err != nil {
			return runOutcome{}, err
		}
		if err := p.InjectFaults(plan); err != nil {
			return runOutcome{}, err
		}
	}
	res, err := p.RunCycles(cyclesFor(s, d))
	if err != nil {
		return runOutcome{}, err
	}
	return runOutcome{res: res, ff: p.FFStats()}, nil
}

// runReps evaluates one simulation per representative on the worker pool,
// results in representative order. ctx is checked at every device-run
// boundary — a canceled job stops claiming new simulations and surfaces
// ctx's error (wrapped; errors.Is(err, ctx.Err()) holds) after in-flight
// points drain. onDone, when non-nil, observes each completed
// representative from its worker goroutine (it must be concurrency-safe;
// the Progress counters are). warm, when non-nil, routes each run
// through plane.WarmClass keyed by the representative's class, so a
// cold class is discovered once per process (single-flight) and once
// fleet-wide (store claims) — phase 1 passes the live plane here, phase
// 2 runs uncoordinated against the frozen snapshot.
func runReps(ctx context.Context, s Spec, reps []classRep, attach func(*platform.Platform), warm *platform.MemoPlane, onDone func(classRep)) ([]runOutcome, error) {
	points := make([]experiments.PointSpec[runOutcome], len(reps))
	for i := range reps {
		rep := reps[i]
		d := rep.dev
		points[i] = experiments.PointSpec[runOutcome]{
			LabelFn: func() string { return fmt.Sprintf("device %d", d.index) },
			Run: func() (runOutcome, error) {
				if err := ctx.Err(); err != nil {
					return runOutcome{}, fmt.Errorf("fleet: canceled before device %d: %w", d.index, err)
				}
				var out runOutcome
				run := func() error {
					var rerr error
					out, rerr = runDevice(s, d, attach)
					return rerr
				}
				var err error
				if warm != nil {
					err = warm.WarmClass(ctx, rep.key, run)
				} else {
					err = run()
				}
				if err == nil && onDone != nil {
					onDone(rep)
				}
				return out, err
			},
		}
	}
	results, err := experiments.RunPoints(points, s.Workers)
	if err != nil {
		return nil, err
	}
	out := make([]runOutcome, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}

// Run executes a fleet job. plane is the shared memo plane the job warms
// and draws from; nil creates a fresh one sized for the job (the common
// case for one-shot CLI runs — long-lived services pass DefaultPlane()).
//
// The report is byte-identical at any Workers count, and its Aggregates
// section additionally at any Shards count and fast-forward mode,
// provided the plane has capacity for the job's memo classes and no
// other job mutates it concurrently (a congested or contended plane can
// change memo statistics — never results).
func Run(s Spec, plane *platform.MemoPlane) (*Report, error) {
	return RunWithProgress(context.Background(), s, plane, nil)
}

// RunWithProgress is Run with the serving hooks: ctx cancels the job at
// the next device-run boundary (the returned error satisfies
// errors.Is(err, ctx.Err())), and prog, when non-nil, exposes live
// per-shard completion counters to concurrent readers (one Progress per
// run). Both may be nil/background; Run is exactly that.
func RunWithProgress(ctx context.Context, s Spec, plane *platform.MemoPlane, prog *Progress) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	devices, err := expand(s)
	if err != nil {
		return nil, err
	}

	memoReps := classesOf(devices, func(d device) string { return d.memoClass })
	runReps_ := classesOf(devices, func(d device) string { return d.runClass })
	prog.start(devices, len(memoReps), len(runReps_))
	if plane == nil {
		classes := s.PlaneClasses
		if classes < len(memoReps) {
			classes = len(memoReps)
		}
		plane = platform.NewMemoPlane(nil, classes)
	}

	// Phase 1: warm the plane with one full run per memo class. Classes
	// are disjoint, so publication interleaving cannot influence the
	// plane's content. The phase-1 outcomes are measurement too: they are
	// the cost the fleet actually paid, reported as warming work.
	warm, err := runReps(ctx, s, memoReps, plane.Attach, plane, func(classRep) { prog.warmRunDone() })
	if err != nil {
		return nil, err
	}

	// Freeze. Phase 2 runs against the immutable snapshot: every run
	// class outcome — result and replay statistics — is a pure function
	// of (spec, snapshot), independent of scheduling.
	snap := plane.Snapshot()
	outcomes, err := runReps(ctx, s, runReps_, snap.Attach, nil, func(r classRep) { prog.runClassDone(r.key) })
	if err != nil {
		return nil, err
	}
	byRun := make(map[string]runOutcome, len(runReps_))
	runRepIndex := make(map[string]int, len(runReps_))
	for i, r := range runReps_ {
		byRun[r.key] = outcomes[i]
		runRepIndex[r.key] = r.dev.index
	}
	warmCycles := make(map[string]platform.FFStats, len(memoReps))
	memoRepIndex := make(map[string]int, len(memoReps))
	warmCount := make(map[string]int, len(memoReps))
	for i, r := range memoReps {
		warmCycles[r.key] = warm[i].ff
		memoRepIndex[r.key] = r.dev.index
		warmCount[r.key] = r.dev.cycles
	}

	rep, err := aggregate(s, devices, byRun, runRepIndex, warmCycles, memoRepIndex, warmCount)
	if err != nil {
		return nil, err
	}
	// Flush before snapshotting the store so the report's store counters
	// include the job's own persistence (a cold run shows its writes).
	plane.Flush()
	rep.Memo.Plane = plane.Stats()
	rep.Memo.Store = plane.StoreStats()
	return rep, nil
}

// Workload view used by tests: the exact cycles device i would run.
func DeviceCycles(s Spec, i int) ([]workload.Cycle, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	devices, err := expand(s)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= len(devices) {
		return nil, fmt.Errorf("fleet: device %d outside fleet of %d", i, len(devices))
	}
	return cyclesFor(s, devices[i]), nil
}
