package fleet

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"odrips/internal/memostore"
	"odrips/internal/platform"
	"odrips/internal/power"
	"odrips/internal/report"
)

// Report is a fleet job's full output. Aggregates is the physics: it is
// byte-identical at any shard count, worker count, and fast-forward mode.
// Memo and Shards describe how the work was executed (memo-plane
// effectiveness, per-shard breakdown) — deterministic for a fixed spec
// and quiescent plane, but legitimately different across fast-forward
// modes and shard counts.
type Report struct {
	Name    string `json:"name"`
	Preset  string `json:"preset"`
	Devices int    `json:"devices"`

	Aggregates Aggregates `json:"aggregates"`
	Memo       MemoReport `json:"memo"`
	Shards     []ShardAgg `json:"shards"`
}

// Dist is a deterministic distribution summary (nearest-rank
// percentiles over the per-device values in device-index order).
type Dist struct {
	Min  float64 `json:"min"`
	P5   float64 `json:"p5"`
	P25  float64 `json:"p25"`
	P50  float64 `json:"p50"`
	P75  float64 `json:"p75"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// Bucket is one residency histogram bin: devices whose DRIPS residency
// share lands in [LoPct, HiPct).
type Bucket struct {
	LoPct   float64 `json:"lo_pct"`
	HiPct   float64 `json:"hi_pct"`
	Devices int     `json:"devices"`
}

// SourceCount is a named counter (wake source, shallow state).
type SourceCount struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

// WakeAgg is the fleet's wake accounting: totals by source plus the
// wake-storm view (the per-device wake-rate histogram and the hottest
// device) and the coalescing view (idle windows parked shallow instead
// of reaching DRIPS).
type WakeAgg struct {
	BySource          []SourceCount       `json:"by_source"`
	MeanPerDeviceHour float64             `json:"mean_per_device_hour"`
	MaxPerDeviceHour  float64             `json:"max_per_device_hour"` // wake storm
	RateHist          []report.HistBucket `json:"rate_hist"`           // devices by wakes/hour
	ShallowIdles      []SourceCount       `json:"shallow_idles"`       // coalescing shortfall
}

// Aggregates is the shard- and execution-independent fleet physics.
type Aggregates struct {
	TotalDeviceCycles uint64  `json:"total_device_cycles"`
	TotalSimHours     float64 `json:"total_sim_hours"`

	BatteryLifeHours  Dist     `json:"battery_life_hours"`
	AvgPowerMW        Dist     `json:"avg_power_mw"`
	DRIPSResidencyPct Dist     `json:"drips_residency_pct"`
	ResidencyHist     []Bucket `json:"residency_hist"`
	Wakes             WakeAgg  `json:"wakes"`
}

// MemoReport is the shared-plane effectiveness section.
type MemoReport struct {
	MemoClasses   int `json:"memo_classes"`
	RunClasses    int `json:"run_classes"`
	SimulatedRuns int `json:"simulated_runs"` // phase-1 + phase-2 platform executions

	// Cycle provenance across the whole fleet: every device-cycle was
	// either simulated in full (by a class representative), replayed from
	// the memo plane by a representative, or deduplicated outright
	// (served by a representative's result copy).
	SimulatedCycles uint64 `json:"simulated_cycles"`
	ReplayedCycles  uint64 `json:"replayed_cycles"`
	DedupedCycles   uint64 `json:"deduped_cycles"`

	// CrossDeviceHitRatePct is the headline metric: the share of fleet
	// device-cycles that did NOT need full simulation.
	CrossDeviceHitRatePct float64 `json:"cross_device_hit_rate_pct"`

	Plane platform.MemoPlaneStats `json:"plane"`
	Store memostore.Stats         `json:"store"`
}

// ShardAgg is one shard's slice of the fleet.
type ShardAgg struct {
	Shard   int `json:"shard"`
	Devices int `json:"devices"`

	MeanBatteryLifeHours float64 `json:"mean_battery_life_hours"`
	MeanAvgPowerMW       float64 `json:"mean_avg_power_mw"`

	DeviceCycles    uint64  `json:"device_cycles"`
	SimulatedCycles uint64  `json:"simulated_cycles"`
	MemoHitRatePct  float64 `json:"memo_hit_rate_pct"`
}

// dist summarizes values (indexed by device) with nearest-rank
// percentiles (report.Percentiles, the shared deterministic encoder).
func dist(values []float64) Dist {
	if len(values) == 0 {
		return Dist{}
	}
	p := report.Percentiles(values, 0, 5, 25, 50, 75, 95, 99, 100)
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return Dist{
		Min: p[0], P5: p[1], P25: p[2], P50: p[3],
		P75: p[4], P95: p[5], P99: p[6], Max: p[7],
		Mean: sum / float64(len(values)),
	}
}

// residencyEdges are the histogram bin edges in DRIPS residency percent;
// the paper's 99.5% claim sits inside the fourth bin.
var residencyEdges = []float64{0, 90, 99, 99.5, 99.9, 100.0000001}

// wakeRateEdges bin devices by wakes per device-hour for the wake-storm
// histogram: 120/h is the paper's nominal 30 s timer cadence, so the
// bins below it catch coalesced fleets and the bins above are storm
// territory. The last bin is open-ended in practice (a cycle period is
// at least a millisecond, so no device can clear 1e7/h).
var wakeRateEdges = []float64{0, 30, 60, 90, 120, 180, 360, 720, 3600, 1e7}

// aggregate folds per-device patched results into the report. All loops
// run in device-index order, so every float accumulation is
// order-deterministic.
func aggregate(
	s Spec,
	devices []device,
	byRun map[string]runOutcome,
	runRepIndex map[string]int,
	warmFF map[string]platform.FFStats,
	memoRepIndex map[string]int,
	warmCount map[string]int,
) (*Report, error) {
	n := len(devices)
	lifeH := make([]float64, n)
	powerMW := make([]float64, n)
	residencyPct := make([]float64, n)

	rep := &Report{
		Name:    s.Name,
		Preset:  s.Preset,
		Devices: n,
	}
	if rep.Preset == "" {
		rep.Preset = "odrips"
	}
	agg := &rep.Aggregates
	memo := &rep.Memo
	memo.RunClasses = len(byRun)
	memo.MemoClasses = len(warmFF)
	memo.SimulatedRuns = len(byRun) + len(warmFF)

	shards := make([]ShardAgg, s.Shards)
	for i := range shards {
		shards[i].Shard = i
	}
	wakeBySource := map[string]uint64{}
	shallow := map[string]uint64{}
	maxWakeRate := 0.0
	rateHist := report.NewHist(wakeRateEdges...)
	var totalWakes uint64
	var simByDevice uint64

	for i := range devices {
		d := &devices[i]
		out, ok := byRun[d.runClass]
		if !ok {
			return nil, fmt.Errorf("fleet: device %d: missing run class outcome", d.index)
		}
		res := out.res
		hours := res.Duration.Seconds() / 3600
		life, err := d.pack.StandbyHours(res.AvgPowerMW)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", d.index, err)
		}
		lifeH[i] = life
		powerMW[i] = res.AvgPowerMW
		residencyPct[i] = res.Residency[power.Idle] * 100

		agg.TotalDeviceCycles += uint64(res.Cycles)
		agg.TotalSimHours += hours

		var devWakes uint64
		for _, src := range sortedKeys(res.WakeCounts) {
			wakeBySource[src] += res.WakeCounts[src]
			devWakes += res.WakeCounts[src]
		}
		totalWakes += devWakes
		if hours > 0 {
			rate := float64(devWakes) / hours
			rateHist.Observe(rate)
			if rate > maxWakeRate {
				maxWakeRate = rate
			}
		}
		for _, st := range sortedKeys(res.ShallowIdles) {
			shallow[st] += res.ShallowIdles[st]
		}

		// Cycle provenance: class representatives carry the cycles their
		// phase actually simulated; every other device's cycles were
		// deduplicated.
		var devSim uint64
		if memoRepIndex[d.memoClass] == d.index {
			wf := warmFF[d.memoClass]
			devSim += uint64(warmCount[d.memoClass]) - wf.CyclesReplayed
		}
		if runRepIndex[d.runClass] == d.index {
			devSim += uint64(res.Cycles) - out.ff.CyclesReplayed
			memo.ReplayedCycles += out.ff.CyclesReplayed
		} else {
			memo.DedupedCycles += uint64(res.Cycles)
		}
		simByDevice += devSim

		sh := &shards[d.shard]
		sh.Devices++
		sh.MeanBatteryLifeHours += life
		sh.MeanAvgPowerMW += res.AvgPowerMW
		sh.DeviceCycles += uint64(res.Cycles)
		sh.SimulatedCycles += devSim
	}
	memo.SimulatedCycles = simByDevice
	if agg.TotalDeviceCycles > 0 {
		memo.CrossDeviceHitRatePct = 100 * (1 - float64(memo.SimulatedCycles)/float64(agg.TotalDeviceCycles))
	}

	agg.BatteryLifeHours = dist(lifeH)
	agg.AvgPowerMW = dist(powerMW)
	agg.DRIPSResidencyPct = dist(residencyPct)
	for b := 0; b+1 < len(residencyEdges); b++ {
		bucket := Bucket{LoPct: residencyEdges[b], HiPct: math.Min(residencyEdges[b+1], 100)}
		for _, r := range residencyPct {
			if r >= residencyEdges[b] && r < residencyEdges[b+1] {
				bucket.Devices++
			}
		}
		agg.ResidencyHist = append(agg.ResidencyHist, bucket)
	}
	for _, src := range sortedKeys(wakeBySource) {
		agg.Wakes.BySource = append(agg.Wakes.BySource, SourceCount{Name: src, Count: wakeBySource[src]})
	}
	for _, st := range sortedKeys(shallow) {
		agg.Wakes.ShallowIdles = append(agg.Wakes.ShallowIdles, SourceCount{Name: st, Count: shallow[st]})
	}
	if agg.TotalSimHours > 0 {
		agg.Wakes.MeanPerDeviceHour = float64(totalWakes) / agg.TotalSimHours
	}
	agg.Wakes.MaxPerDeviceHour = maxWakeRate
	agg.Wakes.RateHist = rateHist.Buckets()

	for i := range shards {
		sh := &shards[i]
		if sh.Devices > 0 {
			sh.MeanBatteryLifeHours /= float64(sh.Devices)
			sh.MeanAvgPowerMW /= float64(sh.Devices)
		}
		if sh.DeviceCycles > 0 {
			sh.MemoHitRatePct = 100 * (1 - float64(sh.SimulatedCycles)/float64(sh.DeviceCycles))
		}
	}
	rep.Shards = shards
	return rep, nil
}

// sortedKeys returns a map's keys sorted, for deterministic iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JSON renders the report as stable, indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Tables renders the report as text tables.
func (r *Report) Tables() []*report.Table {
	agg := report.NewTable(fmt.Sprintf("Fleet %q: %d devices (%s)", r.Name, r.Devices, r.Preset),
		"metric", "min", "p5", "p50", "p95", "p99", "max", "mean")
	row := func(name string, d Dist, f string) {
		agg.AddRow(name,
			fmt.Sprintf(f, d.Min), fmt.Sprintf(f, d.P5), fmt.Sprintf(f, d.P50),
			fmt.Sprintf(f, d.P95), fmt.Sprintf(f, d.P99), fmt.Sprintf(f, d.Max),
			fmt.Sprintf(f, d.Mean))
	}
	row("battery life (h)", r.Aggregates.BatteryLifeHours, "%.1f")
	row("avg power (mW)", r.Aggregates.AvgPowerMW, "%.3f")
	row("DRIPS residency (%)", r.Aggregates.DRIPSResidencyPct, "%.3f")
	agg.AddNote("%d device-cycles over %.0f simulated device-hours",
		r.Aggregates.TotalDeviceCycles, r.Aggregates.TotalSimHours)
	for _, b := range r.Aggregates.ResidencyHist {
		if b.Devices > 0 {
			agg.AddNote("residency [%.1f%%, %.1f%%): %d device(s)", b.LoPct, b.HiPct, b.Devices)
		}
	}
	for _, sc := range r.Aggregates.Wakes.BySource {
		agg.AddNote("wakes from %s: %d", sc.Name, sc.Count)
	}
	agg.AddNote("wake rate: mean %.1f/device-hour, storm max %.1f/device-hour",
		r.Aggregates.Wakes.MeanPerDeviceHour, r.Aggregates.Wakes.MaxPerDeviceHour)
	for _, b := range r.Aggregates.Wakes.RateHist {
		if b.Count > 0 {
			agg.AddNote("wake rate [%g/h, %g/h): %d device(s)", b.Lo, b.Hi, b.Count)
		}
	}

	memo := report.NewTable("Shared memo plane", "metric", "value")
	m := &r.Memo
	memo.AddRow("memo classes", fmt.Sprintf("%d", m.MemoClasses))
	memo.AddRow("run classes", fmt.Sprintf("%d", m.RunClasses))
	memo.AddRow("simulated runs", fmt.Sprintf("%d", m.SimulatedRuns))
	memo.AddRow("simulated cycles", fmt.Sprintf("%d", m.SimulatedCycles))
	memo.AddRow("replayed cycles", fmt.Sprintf("%d", m.ReplayedCycles))
	memo.AddRow("deduped cycles", fmt.Sprintf("%d", m.DedupedCycles))
	memo.AddRow("cross-device hit rate", fmt.Sprintf("%.3f%%", m.CrossDeviceHitRatePct))
	memo.AddRow("plane classes", fmt.Sprintf("%d/%d", m.Plane.Classes, m.Plane.MaxClasses))
	memo.AddRow("plane records", fmt.Sprintf("%d (adopted %d)", m.Plane.Records, m.Plane.Adopted))
	if m.Store != (memostore.Stats{}) {
		memo.AddRow("store hits/misses", fmt.Sprintf("%d/%d", m.Store.Hits, m.Store.Misses))
		memo.AddRow("store disk", fmt.Sprintf("%d entries, %d bytes", m.Store.DiskEntries, m.Store.DiskBytes))
	}

	shards := report.NewTable("Per-shard breakdown",
		"shard", "devices", "life mean (h)", "power mean (mW)", "cycles", "simulated", "hit rate")
	for _, sh := range r.Shards {
		shards.AddRow(
			fmt.Sprintf("%d", sh.Shard),
			fmt.Sprintf("%d", sh.Devices),
			fmt.Sprintf("%.1f", sh.MeanBatteryLifeHours),
			fmt.Sprintf("%.3f", sh.MeanAvgPowerMW),
			fmt.Sprintf("%d", sh.DeviceCycles),
			fmt.Sprintf("%d", sh.SimulatedCycles),
			fmt.Sprintf("%.3f%%", sh.MemoHitRatePct),
		)
	}
	return []*report.Table{agg, memo, shards}
}

// Text renders the full text report.
func (r *Report) Text() string {
	var b strings.Builder
	for _, t := range r.Tables() {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Markdown renders the report as GitHub-flavored markdown.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Fleet %q — %d devices (%s)\n\n", r.Name, r.Devices, r.Preset)

	fmt.Fprintf(&b, "## Aggregates\n\n")
	fmt.Fprintf(&b, "| metric | min | p5 | p50 | p95 | p99 | max | mean |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|\n")
	mdDist := func(name string, d Dist, f string) {
		fmt.Fprintf(&b, "| %s | "+f+" | "+f+" | "+f+" | "+f+" | "+f+" | "+f+" | "+f+" |\n",
			name, d.Min, d.P5, d.P50, d.P95, d.P99, d.Max, d.Mean)
	}
	mdDist("battery life (h)", r.Aggregates.BatteryLifeHours, "%.1f")
	mdDist("avg power (mW)", r.Aggregates.AvgPowerMW, "%.3f")
	mdDist("DRIPS residency (%)", r.Aggregates.DRIPSResidencyPct, "%.3f")
	fmt.Fprintf(&b, "\n%d device-cycles over %.0f simulated device-hours; wake rate mean %.1f/device-hour (storm max %.1f).\n",
		r.Aggregates.TotalDeviceCycles, r.Aggregates.TotalSimHours,
		r.Aggregates.Wakes.MeanPerDeviceHour, r.Aggregates.Wakes.MaxPerDeviceHour)

	fmt.Fprintf(&b, "\n## Shared memo plane\n\n")
	fmt.Fprintf(&b, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| memo classes | %d |\n", r.Memo.MemoClasses)
	fmt.Fprintf(&b, "| run classes | %d |\n", r.Memo.RunClasses)
	fmt.Fprintf(&b, "| simulated runs | %d |\n", r.Memo.SimulatedRuns)
	fmt.Fprintf(&b, "| simulated / replayed / deduped cycles | %d / %d / %d |\n",
		r.Memo.SimulatedCycles, r.Memo.ReplayedCycles, r.Memo.DedupedCycles)
	fmt.Fprintf(&b, "| **cross-device hit rate** | **%.3f%%** |\n", r.Memo.CrossDeviceHitRatePct)
	fmt.Fprintf(&b, "| plane classes / records / adopted | %d / %d / %d |\n",
		r.Memo.Plane.Classes, r.Memo.Plane.Records, r.Memo.Plane.Adopted)
	if r.Memo.Store != (memostore.Stats{}) {
		fmt.Fprintf(&b, "| store hits / misses / disk | %d / %d / %d entries (%d bytes) |\n",
			r.Memo.Store.Hits, r.Memo.Store.Misses, r.Memo.Store.DiskEntries, r.Memo.Store.DiskBytes)
	}

	fmt.Fprintf(&b, "\n## Shards\n\n")
	fmt.Fprintf(&b, "| shard | devices | life mean (h) | power mean (mW) | hit rate |\n|---|---|---|---|---|\n")
	for _, sh := range r.Shards {
		fmt.Fprintf(&b, "| %d | %d | %.1f | %.3f | %.3f%% |\n",
			sh.Shard, sh.Devices, sh.MeanBatteryLifeHours, sh.MeanAvgPowerMW, sh.MemoHitRatePct)
	}
	return b.String()
}
