// Package ltr implements the idle-state decision inputs of §2.2: latency
// tolerance reporting (LTR), through which devices declare how much memory
// access latency they can absorb with their buffers, and time-to-next-timer
// event (TNTE), through which the platform knows how soon a scheduled
// wake-up will fire. The PMU combines both to pick the deepest affordable
// C-state.
package ltr

import (
	"fmt"
	"sort"

	"odrips/internal/sim"
)

// Report is one device's latency tolerance declaration.
type Report struct {
	Device    string
	Tolerance sim.Duration // max latency the device can absorb
}

// Table aggregates LTR reports and scheduled timer events.
type Table struct {
	sched   *sim.Scheduler
	reports map[string]sim.Duration
	timers  map[string]sim.Time // next deadline per timer owner
}

// NewTable creates an empty table.
func NewTable(sched *sim.Scheduler) *Table {
	return &Table{
		sched:   sched,
		reports: make(map[string]sim.Duration),
		timers:  make(map[string]sim.Time),
	}
}

// Update records a device's current tolerance. Zero or negative tolerance
// means "no latency tolerated" and pins the platform out of deep idle.
func (t *Table) Update(device string, tolerance sim.Duration) {
	if device == "" {
		panic("ltr: empty device name")
	}
	t.reports[device] = tolerance
}

// Remove clears a device's report (device suspended or unplugged).
func (t *Table) Remove(device string) { delete(t.reports, device) }

// Reports returns the current reports sorted by device name.
func (t *Table) Reports() []Report {
	out := make([]Report, 0, len(t.reports))
	for d, tol := range t.reports {
		out = append(out, Report{Device: d, Tolerance: tol})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// MinTolerance returns the platform latency tolerance: the minimum over
// devices, or ok=false when no device reports (no constraint).
func (t *Table) MinTolerance() (sim.Duration, bool) {
	first := true
	var min sim.Duration
	for _, tol := range t.reports {
		if first || tol < min {
			min = tol
			first = false
		}
	}
	return min, !first
}

// SetTimer records (or re-arms) a named timer's next deadline.
func (t *Table) SetTimer(owner string, deadline sim.Time) error {
	if deadline.Before(t.sched.Now()) {
		return fmt.Errorf("ltr: timer %q deadline %v in the past (now %v)", owner, deadline, t.sched.Now())
	}
	t.timers[owner] = deadline
	return nil
}

// ClearTimer removes a named timer.
func (t *Table) ClearTimer(owner string) { delete(t.timers, owner) }

// Timer is one named deadline, as exported by Timers.
type Timer struct {
	Owner    string
	Deadline sim.Time
}

// Timers returns every armed timer sorted by owner. The platform
// fast-forward engine fingerprints the deadlines (relative to now) and
// rebuilds them after a replayed window.
func (t *Table) Timers() []Timer {
	out := make([]Timer, 0, len(t.timers))
	for o, dl := range t.timers {
		out = append(out, Timer{Owner: o, Deadline: dl})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// ReplaySetTimer re-arms a timer to the deadline a replayed cycle would
// have left, bypassing the not-in-the-past check: a consumed deadline
// legitimately sits in the past until the owner re-arms it.
func (t *Table) ReplaySetTimer(owner string, deadline sim.Time) { t.timers[owner] = deadline }

// NextTimerEvent returns the earliest scheduled deadline, or ok=false.
// Deadlines already in the past (missed while busy) report as "now".
func (t *Table) NextTimerEvent() (sim.Time, bool) {
	first := true
	var min sim.Time
	for _, dl := range t.timers {
		if first || dl.Before(min) {
			min = dl
			first = false
		}
	}
	if first {
		return 0, false
	}
	if min.Before(t.sched.Now()) {
		min = t.sched.Now()
	}
	return min, true
}

// TNTE returns the time to the next timer event from now; ok=false when no
// timer is armed.
func (t *Table) TNTE() (sim.Duration, bool) {
	at, ok := t.NextTimerEvent()
	if !ok {
		return 0, false
	}
	return at.Sub(t.sched.Now()), true
}
