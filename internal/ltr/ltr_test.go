package ltr

import (
	"testing"

	"odrips/internal/sim"
)

func TestMinTolerance(t *testing.T) {
	s := sim.NewScheduler()
	tbl := NewTable(s)
	if _, ok := tbl.MinTolerance(); ok {
		t.Fatal("empty table reported a tolerance")
	}
	tbl.Update("nic", 5*sim.Millisecond)
	tbl.Update("audio", 2*sim.Millisecond)
	tbl.Update("camera", 30*sim.Millisecond)
	min, ok := tbl.MinTolerance()
	if !ok || min != 2*sim.Millisecond {
		t.Fatalf("min tolerance = %v,%v", min, ok)
	}
	// A device tightening its report pins the platform shallower.
	tbl.Update("audio", 100*sim.Microsecond)
	min, _ = tbl.MinTolerance()
	if min != 100*sim.Microsecond {
		t.Fatalf("updated min = %v", min)
	}
	tbl.Remove("audio")
	min, _ = tbl.MinTolerance()
	if min != 5*sim.Millisecond {
		t.Fatalf("min after removal = %v", min)
	}
}

func TestReportsSorted(t *testing.T) {
	s := sim.NewScheduler()
	tbl := NewTable(s)
	tbl.Update("zeta", sim.Second)
	tbl.Update("alpha", sim.Second)
	reps := tbl.Reports()
	if len(reps) != 2 || reps[0].Device != "alpha" || reps[1].Device != "zeta" {
		t.Fatalf("reports = %+v", reps)
	}
}

func TestEmptyDevicePanics(t *testing.T) {
	s := sim.NewScheduler()
	tbl := NewTable(s)
	defer func() {
		if recover() == nil {
			t.Fatal("empty device name did not panic")
		}
	}()
	tbl.Update("", sim.Second)
}

func TestTimersAndTNTE(t *testing.T) {
	s := sim.NewScheduler()
	tbl := NewTable(s)
	if _, ok := tbl.TNTE(); ok {
		t.Fatal("empty table reported TNTE")
	}
	if err := tbl.SetTimer("os-tick", s.Now().Add(30*sim.Second)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetTimer("watchdog", s.Now().Add(5*sim.Second)); err != nil {
		t.Fatal(err)
	}
	tnte, ok := tbl.TNTE()
	if !ok || tnte != 5*sim.Second {
		t.Fatalf("TNTE = %v,%v, want 5s", tnte, ok)
	}
	tbl.ClearTimer("watchdog")
	tnte, _ = tbl.TNTE()
	if tnte != 30*sim.Second {
		t.Fatalf("TNTE after clear = %v", tnte)
	}
}

func TestPastDeadlineRejected(t *testing.T) {
	s := sim.NewScheduler()
	s.After(sim.Second, "adv", func() {})
	s.Run()
	tbl := NewTable(s)
	if err := tbl.SetTimer("x", sim.Time(0)); err == nil {
		t.Fatal("past deadline accepted")
	}
}

func TestMissedDeadlineClampsToNow(t *testing.T) {
	s := sim.NewScheduler()
	tbl := NewTable(s)
	if err := tbl.SetTimer("x", s.Now().Add(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s.After(sim.Second, "adv", func() {})
	s.Run()
	tnte, ok := tbl.TNTE()
	if !ok || tnte != 0 {
		t.Fatalf("missed deadline TNTE = %v,%v, want 0", tnte, ok)
	}
}
