// Package timer implements the platform timekeeping hardware of paper §4:
// the processor main timer (TSC), the chipset fast timer (24 MHz), the
// chipset slow timer (32.768 kHz with a fixed-point Step), the run-time Step
// calibration, and the fast↔slow switch protocol of Fig. 3.
package timer

import (
	"fmt"

	"odrips/internal/clock"
	"odrips/internal/fixedpoint"
	"odrips/internal/sim"
)

// FastCounter is a 64-bit counter incremented by one on every rising edge
// of its clock domain (the processor main timer and the chipset fast timer
// are both FastCounters). The counter is materialized lazily: reads compute
// the edge count since the last load instead of simulating every cycle.
type FastCounter struct {
	name    string
	dom     *clock.Domain
	sched   *sim.Scheduler
	base    uint64
	anchor  sim.Time
	running bool
}

// NewFastCounter creates a stopped counter with value 0.
func NewFastCounter(sched *sim.Scheduler, name string, dom *clock.Domain) *FastCounter {
	return &FastCounter{name: name, dom: dom, sched: sched}
}

// Name returns the counter's label.
func (c *FastCounter) Name() string { return c.name }

// Running reports whether the counter is counting.
func (c *FastCounter) Running() bool { return c.running }

// Set loads a value at the current instant and starts counting. Edges
// strictly after now increment the counter. The clock domain must be
// running, otherwise the load is rejected: hardware cannot latch a value
// into an unclocked register.
func (c *FastCounter) Set(v uint64) error {
	if !c.dom.Running() {
		return fmt.Errorf("timer: %s: load with clock domain %s not running", c.name, c.dom.Name())
	}
	c.base = v
	c.anchor = c.sched.Now()
	c.running = true
	return nil
}

// Read returns the current value. Reading a stopped counter returns the
// frozen value. The clock domain must not have been gated while running;
// the switch protocol guarantees Stop is called before gating.
func (c *FastCounter) Read() uint64 {
	if !c.running {
		return c.base
	}
	return c.base + c.dom.Source().EdgesBetween(c.anchor, c.sched.Now())
}

// Stop freezes the counter at its current value.
func (c *FastCounter) Stop() {
	if !c.running {
		return
	}
	c.base = c.Read()
	c.running = false
}

// ReplaySnapshot exports the raw latch state (base value, load anchor,
// running flag) for the platform fast-forward engine, which records a
// cycle's effect on the counter as deltas against this snapshot.
func (c *FastCounter) ReplaySnapshot() (base uint64, anchor sim.Time, running bool) {
	return c.base, c.anchor, c.running
}

// ReplayRestore installs latch state computed by the fast-forward engine
// for a replayed window, bypassing the clock-domain-running check that
// guards Set: the replay reproduces a state that a real Set (with the
// domain running at the time) already produced once.
func (c *FastCounter) ReplayRestore(base uint64, anchor sim.Time, running bool) {
	c.base = base
	c.anchor = anchor
	c.running = running
}

// TimeOfValue returns the instant at which the counter reaches target
// (first instant Read() >= target). ok is false when the counter is
// stopped, its clock is not running, or the target is unreachable.
func (c *FastCounter) TimeOfValue(target uint64) (sim.Time, bool) {
	if !c.running || !c.dom.Running() {
		return 0, false
	}
	now := c.sched.Now()
	cur := c.Read()
	if target <= cur {
		return now, true
	}
	delta := target - cur
	// Find the edge index for "now" position, then step delta edges ahead.
	k, at, ok := c.dom.NextEdge(now)
	if !ok {
		return 0, false
	}
	// If the next edge is exactly now, it was already counted by Read's
	// half-open interval only when strictly after anchor; EdgesBetween uses
	// (anchor, now], so an edge at now is included in cur. Start from the
	// edge after now in that case.
	if at == now {
		k++
	}
	return c.dom.Source().EdgeTime(k + delta - 1), true
}

// SlowCounter is the chipset slow timer: a (64+f)-bit accumulator advanced
// by the fixed-point Step on every rising edge of the 32.768 kHz clock
// (paper §4.1.2). Like FastCounter it is materialized lazily via AddN.
type SlowCounter struct {
	name    string
	osc     *clock.Oscillator
	sched   *sim.Scheduler
	acc     *fixedpoint.Acc
	step    fixedpoint.Q
	anchor  sim.Time
	running bool
}

// NewSlowCounter creates a stopped slow counter with the given Step.
func NewSlowCounter(sched *sim.Scheduler, name string, osc *clock.Oscillator, step fixedpoint.Q) *SlowCounter {
	return &SlowCounter{
		name:  name,
		osc:   osc,
		sched: sched,
		acc:   fixedpoint.NewAcc(step.FracBits),
		step:  step,
	}
}

// Name returns the counter's label.
func (c *SlowCounter) Name() string { return c.name }

// Step returns the configured Step value.
func (c *SlowCounter) Step() fixedpoint.Q { return c.step }

// SetStep reconfigures the Step. Only legal while stopped (recalibration
// happens with the platform awake).
func (c *SlowCounter) SetStep(step fixedpoint.Q) error {
	if c.running {
		return fmt.Errorf("timer: %s: SetStep while running", c.name)
	}
	if step.FracBits != c.step.FracBits {
		c.acc = fixedpoint.NewAcc(step.FracBits)
	}
	c.step = step
	return nil
}

// Running reports whether the counter is stepping.
func (c *SlowCounter) Running() bool { return c.running }

// Load copies v into the integer part (fraction cleared — the hardware
// copies the fast timer into the upper 64 bits) and starts stepping on
// edges strictly after now. The protocol calls Load exactly at a 32 kHz
// rising edge, so the first increment lands one slow period later.
func (c *SlowCounter) Load(v uint64) error {
	if !c.osc.Stable() {
		return fmt.Errorf("timer: %s: load with oscillator %s unstable", c.name, c.osc.Name())
	}
	c.acc.SetInt(v)
	c.anchor = c.sched.Now()
	c.running = true
	return nil
}

// advance materializes steps up to now.
func (c *SlowCounter) advance() {
	if !c.running {
		return
	}
	now := c.sched.Now()
	n := c.osc.EdgesBetween(c.anchor, now)
	if n > 0 {
		c.acc.AddN(c.step, n)
	}
	c.anchor = now
}

// Read returns the integer part (the architectural 64-bit timer value).
func (c *SlowCounter) Read() uint64 {
	c.advance()
	return c.acc.Floor()
}

// Frac returns the fractional part in raw scaled bits (diagnostics).
func (c *SlowCounter) Frac() uint64 {
	c.advance()
	return c.acc.Frac()
}

// Stop freezes the counter.
func (c *SlowCounter) Stop() {
	c.advance()
	c.running = false
}

// TimeOfValue returns the first instant at which Read() >= target.
// ok is false if the counter is stopped or the step is zero.
func (c *SlowCounter) TimeOfValue(target uint64) (sim.Time, bool) {
	if !c.running {
		return 0, false
	}
	if c.step.Raw == 0 {
		return 0, false
	}
	c.advance()
	if target <= c.acc.Floor() {
		return c.sched.Now(), true
	}
	n, err := stepsToReach(c.acc, c.step, target)
	if err != nil {
		return 0, false
	}
	// The n-th edge strictly after anchor. Edges are counted half-open
	// (anchor, t], so we need the edge with index anchorIndex + n.
	k, at, ok := c.osc.NextEdge(c.anchor)
	if !ok {
		return 0, false
	}
	if at == c.anchor {
		k++ // edge exactly at anchor is already accumulated
	}
	return c.osc.EdgeTime(k + n - 1), true
}
