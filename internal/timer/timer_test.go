package timer

import (
	"math"
	"testing"
	"testing/quick"

	"odrips/internal/clock"
	"odrips/internal/fixedpoint"
	"odrips/internal/sim"
)

// rig is a standard two-crystal test bench.
type rig struct {
	sched   *sim.Scheduler
	fastOsc *clock.Oscillator
	slowOsc *clock.Oscillator
	fastDom *clock.Domain
}

func newRig(fastPPB, slowPPB int64) *rig {
	s := sim.NewScheduler()
	fo := clock.NewOscillator(s, "xtal24", 24_000_000, fastPPB, 0)
	so := clock.NewOscillator(s, "xtal32", 32_768, slowPPB, 0)
	fo.PowerOn()
	so.PowerOn()
	return &rig{sched: s, fastOsc: fo, slowOsc: so, fastDom: clock.NewDomain("fast", fo)}
}

func (r *rig) step(t *testing.T) fixedpoint.Q {
	t.Helper()
	res, err := CalibrateNow(r.sched, r.fastOsc, r.slowOsc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Step
}

func TestFastCounterCounts(t *testing.T) {
	r := newRig(0, 0)
	c := NewFastCounter(r.sched, "tsc", r.fastDom)
	if err := c.Set(1000); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(sim.Millisecond) // 24k cycles
	if got := c.Read(); got != 1000+24_000 {
		t.Fatalf("Read = %d, want 25000", got)
	}
	c.Stop()
	frozen := c.Read()
	r.sched.RunFor(sim.Millisecond)
	if c.Read() != frozen {
		t.Fatal("stopped counter advanced")
	}
	if c.Running() {
		t.Fatal("Running() true after Stop")
	}
}

func TestFastCounterSetRequiresClock(t *testing.T) {
	r := newRig(0, 0)
	r.fastDom.Gate()
	c := NewFastCounter(r.sched, "tsc", r.fastDom)
	if err := c.Set(5); err == nil {
		t.Fatal("Set with gated clock succeeded")
	}
}

func TestFastCounterTimeOfValue(t *testing.T) {
	r := newRig(0, 0)
	c := NewFastCounter(r.sched, "tsc", r.fastDom)
	if err := c.Set(0); err != nil {
		t.Fatal(err)
	}
	at, ok := c.TimeOfValue(24_000_000)
	if !ok {
		t.Fatal("TimeOfValue failed")
	}
	if at != sim.Time(sim.Second) {
		t.Fatalf("reach 24e6 at %v, want 1s", at)
	}
	// Already-reached target: now.
	at, ok = c.TimeOfValue(0)
	if !ok || at != r.sched.Now() {
		t.Fatalf("reached target gave %v,%v", at, ok)
	}
	// Verify the returned instant is exact: counter reads target there and
	// target-1 just before.
	var got, before uint64
	target := uint64(24_000_000)
	wakeAt, _ := c.TimeOfValue(target)
	r.sched.At(wakeAt-1, "before", func() { before = c.Read() })
	r.sched.At(wakeAt, "at", func() { got = c.Read() })
	r.sched.Run()
	if got != target || before != target-1 {
		t.Fatalf("at wake: %d (want %d), just before: %d (want %d)", got, target, before, target-1)
	}
}

func TestSlowCounterSteps(t *testing.T) {
	r := newRig(0, 0)
	step := r.step(t)
	c := NewSlowCounter(r.sched, "slow", r.slowOsc, step)
	if err := c.Load(0); err != nil {
		t.Fatal(err)
	}
	// One simulated second = 32768 slow edges = 32768 * 732.421875 = 24e6.
	r.sched.RunFor(sim.Second)
	if got := c.Read(); got != 24_000_000 {
		t.Fatalf("slow counter after 1s = %d, want 24000000", got)
	}
}

func TestSlowCounterLoadClearsFraction(t *testing.T) {
	r := newRig(0, 0)
	c := NewSlowCounter(r.sched, "slow", r.slowOsc, r.step(t))
	if err := c.Load(999); err != nil {
		t.Fatal(err)
	}
	if c.Read() != 999 || c.Frac() != 0 {
		t.Fatalf("after load: %d + %d", c.Read(), c.Frac())
	}
}

func TestSlowCounterSetStepWhileRunning(t *testing.T) {
	r := newRig(0, 0)
	c := NewSlowCounter(r.sched, "slow", r.slowOsc, r.step(t))
	if err := c.Load(0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetStep(fixedpoint.New(1, 21)); err == nil {
		t.Fatal("SetStep while running succeeded")
	}
	c.Stop()
	if err := c.SetStep(fixedpoint.New(1, 21)); err != nil {
		t.Fatal(err)
	}
}

func TestSlowCounterTimeOfValue(t *testing.T) {
	r := newRig(0, 0)
	c := NewSlowCounter(r.sched, "slow", r.slowOsc, r.step(t))
	if err := c.Load(0); err != nil {
		t.Fatal(err)
	}
	target := uint64(24_000_000) // one second of fast time
	at, ok := c.TimeOfValue(target)
	if !ok {
		t.Fatal("TimeOfValue failed")
	}
	var got, before uint64
	r.sched.At(at-1, "before", func() { before = c.Read() })
	r.sched.At(at, "at", func() { got = c.Read() })
	r.sched.Run()
	if got < target {
		t.Fatalf("at wake instant counter = %d < target %d", got, target)
	}
	if before >= target {
		t.Fatalf("counter reached target before wake instant: %d >= %d", before, target)
	}
}

// Property: stepsToReach matches brute-force accumulation.
func TestStepsToReachProperty(t *testing.T) {
	f := func(rawSeed uint32, fracSeed uint32, deltaSeed uint16) bool {
		step := fixedpoint.New(uint64(rawSeed%(1<<25))+(1<<21), 21) // step >= 1.0
		acc := fixedpoint.NewAcc(21)
		acc.SetInt(100)
		// Pre-roll a random fraction.
		acc.Add(fixedpoint.New(uint64(fracSeed)%(1<<21), 21))
		start := acc.Floor()
		target := start + uint64(deltaSeed%5000) + 1
		n, err := stepsToReach(acc, step, target)
		if err != nil {
			return false
		}
		// Brute force from a copy.
		brute := fixedpoint.NewAcc(21)
		brute.SetInt(0)
		brute.Add(fixedpoint.New(acc.Frac(), 21))
		brute.Int = acc.Floor()
		var count uint64
		for brute.Floor() < target {
			brute.Add(step)
			count++
			if count > 1<<22 {
				return false
			}
		}
		return n == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrationPaperValues(t *testing.T) {
	r := newRig(0, 0)
	res, err := CalibrateNow(r.sched, r.fastOsc, r.slowOsc)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntBits != 10 || res.FracBits != 21 {
		t.Fatalf("m,f = %d,%d; want 10,21", res.IntBits, res.FracBits)
	}
	if res.NSlow != 1<<21 {
		t.Fatalf("N_slow = %d, want 2^21", res.NSlow)
	}
	// Perfect crystals: N_fast = 2^21 * 24e6/32768 = 2^21 * 732.421875,
	// which is exactly 1536000000.
	if res.NFast != 1_536_000_000 {
		t.Fatalf("N_fast = %d, want 1536000000", res.NFast)
	}
	if got := res.Step.Float(); math.Abs(got-732.421875) > 1e-9 {
		t.Fatalf("step = %v, want 732.421875", got)
	}
	// Window is 2^21 slow cycles = 64 s.
	if w := res.Window.Seconds(); math.Abs(w-64) > 1e-6 {
		t.Fatalf("window = %v s, want 64", w)
	}
	if ppb := res.DriftPPB(); ppb > 1.0 {
		t.Fatalf("drift = %v ppb, want <= 1", ppb)
	}
}

func TestCalibrationRequiresStableOscillators(t *testing.T) {
	s := sim.NewScheduler()
	fo := clock.NewOscillator(s, "f", 24_000_000, 0, sim.Millisecond)
	so := clock.NewOscillator(s, "s", 32_768, 0, 0)
	so.PowerOn()
	fo.PowerOn() // stabilizes at 1ms, not yet stable
	if _, err := CalibrateNow(s, fo, so); err == nil {
		t.Fatal("calibration with unstable oscillator succeeded")
	}
}

func TestCalibrationTracksCrystalError(t *testing.T) {
	// A fast crystal running +50 ppm must yield a proportionally larger
	// step so that timekeeping follows the *actual* clock ratio.
	r := newRig(50_000, 0)
	res, err := CalibrateNow(r.sched, r.fastOsc, r.slowOsc)
	if err != nil {
		t.Fatal(err)
	}
	want := 732.421875 * (1 + 50e-6)
	if got := res.Step.Float(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("step with +50ppm fast crystal = %v, want ~%v", got, want)
	}
}

func TestCalibratorRealLatency(t *testing.T) {
	r := newRig(0, 0)
	cal := NewCalibrator(r.sched, r.fastOsc, r.slowOsc)
	var got *CalibrationResult
	if err := cal.Start(func(res CalibrationResult) { got = &res }); err != nil {
		t.Fatal(err)
	}
	if !cal.Busy() {
		t.Fatal("calibrator not busy after Start")
	}
	if err := cal.Start(func(CalibrationResult) {}); err == nil {
		t.Fatal("second Start while busy succeeded")
	}
	r.sched.RunFor(63 * sim.Second)
	if got != nil {
		t.Fatal("calibration completed before its 64 s window")
	}
	r.sched.RunFor(2 * sim.Second)
	if got == nil {
		t.Fatal("calibration did not complete")
	}
	if cal.Busy() || cal.Result() == nil {
		t.Fatal("calibrator state wrong after completion")
	}
	if got.NFast != 1_536_000_000 {
		t.Fatalf("N_fast = %d", got.NFast)
	}
}

// driftAtEdges measures |slow-estimate - true fast count| at slow-clock
// edges over a window, returning the max absolute error in fast counts.
func driftAtEdges(t *testing.T, fastPPB, slowPPB int64, window sim.Duration) float64 {
	t.Helper()
	r := newRig(fastPPB, slowPPB)
	step := r.step(t)
	// Reference fast counter that never stops.
	ref := NewFastCounter(r.sched, "ref", r.fastDom)
	slow := NewSlowCounter(r.sched, "slow", r.slowOsc, step)
	// Align the start to a slow edge so the load is phase-exact, as the
	// hardware protocol does.
	var maxErr float64
	_, t0, ok := r.slowOsc.NextEdge(r.sched.Now())
	if !ok {
		t.Fatal("no slow edge")
	}
	r.sched.At(t0, "start", func() {
		if err := ref.Set(0); err != nil {
			t.Error(err)
		}
		if err := slow.Load(0); err != nil {
			t.Error(err)
		}
	})
	// Sample at slow edges: every 1024 edges to keep the event count low.
	sampleEvery := 1024 * sim.Duration(30517578) // ~31ms, just off edges
	for at := t0.Add(sampleEvery); at.Before(t0.Add(window)); at = at.Add(sampleEvery) {
		r.sched.At(at, "sample", func() {
			// Move exactly onto the previous slow edge for the comparison.
			e := math.Abs(float64(slow.Read()) - float64(ref.Read()))
			if e > maxErr {
				maxErr = e
			}
		})
	}
	r.sched.Run()
	return maxErr
}

func TestSlowTimerDriftWithinPPBBudget(t *testing.T) {
	// Over ~42 s (1e9 fast cycles) the accumulated drift must stay within
	// ~1 count from step quantization plus one slow-period of sampling lag
	// (the slow timer only updates every 30.5 us; between updates it lags
	// by up to one Step = ~733 counts).
	const window = 42 * sim.Second
	for _, tc := range []struct {
		name             string
		fastPPB, slowPPB int64
	}{
		{"perfect", 0, 0},
		{"fast+20ppm", 20_000, 0},
		{"slow-35ppm", 0, -35_000},
		{"both", -12_000, 8_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			maxErr := driftAtEdges(t, tc.fastPPB, tc.slowPPB, window)
			// Budget: one Step of sampling granularity + 2 counts of
			// long-run drift (1 ppb of 1e9 cycles = 1 count).
			if maxErr > 736 {
				t.Fatalf("max drift %v counts exceeds budget", maxErr)
			}
		})
	}
}

func TestSwitchEnterSlowAtEdge(t *testing.T) {
	r := newRig(0, 0)
	u := NewUnit(r.sched, r.fastDom, r.slowOsc, r.step(t))
	var events []string
	u.Trace = func(ev string, at sim.Time, v uint64) { events = append(events, ev) }
	r.sched.RunFor(5 * sim.Microsecond) // desync from edge 0
	var switchedAt sim.Time
	if err := u.EnterSlow(1_000_000, func(at sim.Time) { switchedAt = at }); err != nil {
		t.Fatal(err)
	}
	if u.Mode() != ModeEnteringSlow || !u.SwitchAsserted() {
		t.Fatalf("mid-protocol mode=%s switch=%v", u.Mode(), u.SwitchAsserted())
	}
	r.sched.Run()
	if u.Mode() != ModeSlow {
		t.Fatalf("mode = %s, want slow", u.Mode())
	}
	// The switch must land exactly on a 32 kHz edge.
	k, at, _ := r.slowOsc.NextEdge(switchedAt)
	if at != switchedAt {
		t.Fatalf("switch at %v, not on a slow edge (next edge %d at %v)", switchedAt, k, at)
	}
	// Value continuity: slow timer holds fast value from the edge.
	wantV := uint64(1_000_000) + r.fastOsc.EdgesBetween(sim.Time(5*sim.Microsecond), switchedAt)
	if got := u.Slow.Read(); got != wantV {
		t.Fatalf("slow value = %d, want %d", got, wantV)
	}
	if len(events) != 2 || events[0] != "assert-switch" || events[1] != "slow-loaded" {
		t.Fatalf("trace = %v", events)
	}
}

func TestSwitchEnterSlowWrongMode(t *testing.T) {
	r := newRig(0, 0)
	u := NewUnit(r.sched, r.fastDom, r.slowOsc, r.step(t))
	if err := u.EnterSlow(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := u.EnterSlow(0, nil); err == nil {
		t.Fatal("double EnterSlow succeeded")
	}
}

func TestSwitchFullRoundTrip(t *testing.T) {
	r := newRig(0, 0)
	u := NewUnit(r.sched, r.fastDom, r.slowOsc, r.step(t))
	if err := u.EnterSlow(0, func(sim.Time) {
		// Chipset PMU: gate fast clock, power off crystal.
		r.fastDom.Gate()
		r.fastOsc.PowerOff()
	}); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(10 * sim.Second)
	if u.Mode() != ModeSlow {
		t.Fatalf("mode = %s", u.Mode())
	}
	if err := u.ExitFast(nil); err == nil {
		t.Fatal("ExitFast with crystal off succeeded")
	}
	// Power crystal back on (no startup latency in this rig), ungate.
	r.fastOsc.PowerOn()
	r.fastDom.Ungate()
	var value uint64
	var exitAt sim.Time
	if err := u.ExitFast(func(v uint64, at sim.Time) { value, exitAt = v, at }); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	if u.Mode() != ModeFast {
		t.Fatalf("mode after exit = %s", u.Mode())
	}
	// ~10 s at 24 MHz = ~240e6 counts; allow one slow period of hand-over
	// slack on each side.
	if value < 239_900_000 || value > 240_100_000 {
		t.Fatalf("timer value after round trip = %d, want ~240e6", value)
	}
	_, at, _ := r.slowOsc.NextEdge(exitAt)
	if at != exitAt {
		t.Fatalf("exit hand-over not on a slow edge: %v", exitAt)
	}
}

func TestSwitchExitWaitsForCrystalStartup(t *testing.T) {
	s := sim.NewScheduler()
	fo := clock.NewOscillator(s, "xtal24", 24_000_000, 0, 100*sim.Microsecond)
	so := clock.NewOscillator(s, "xtal32", 32_768, 0, 0)
	fo.PowerOn()
	so.PowerOn()
	s.RunFor(sim.Millisecond) // fast crystal stable
	dom := clock.NewDomain("fast", fo)
	res, err := CalibrateNow(s, fo, so)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUnit(s, dom, so, res.Step)
	if err := u.EnterSlow(0, func(sim.Time) { dom.Gate(); fo.PowerOff() }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Second)
	// Exit: crystal needs 100us to stabilize; the protocol must keep
	// retrying slow edges until the fast domain runs.
	fo.PowerOn()
	dom.Ungate()
	var exitAt sim.Time
	if err := u.ExitFast(func(_ uint64, at sim.Time) { exitAt = at }); err != nil {
		t.Fatal(err)
	}
	stableAt := fo.StableAt()
	s.Run()
	if exitAt == 0 {
		t.Fatal("exit never completed")
	}
	if exitAt.Before(stableAt) {
		t.Fatalf("exit at %v before crystal stable at %v", exitAt, stableAt)
	}
}

// Property: Unit.Now() is monotonic non-decreasing across repeated
// enter/exit cycles with random idle durations, and the cumulative error
// against a reference clock stays bounded by the per-cycle hand-over slack.
func TestSwitchMonotonicityProperty(t *testing.T) {
	f := func(idles []uint16) bool {
		if len(idles) > 8 {
			idles = idles[:8]
		}
		r := newRig(3_000, -2_000) // imperfect crystals
		refOsc := clock.NewOscillator(r.sched, "ref", 24_000_000, 3_000, 0)
		refOsc.PowerOn()
		refDom := clock.NewDomain("ref", refOsc)
		ref := NewFastCounter(r.sched, "ref", refDom)
		if err := ref.Set(0); err != nil {
			return false
		}
		res, err := CalibrateNow(r.sched, r.fastOsc, r.slowOsc)
		if err != nil {
			return false
		}
		u := NewUnit(r.sched, r.fastDom, r.slowOsc, res.Step)
		last := uint64(0)
		okAll := true
		check := func() {
			v := u.Now()
			if v < last {
				okAll = false
			}
			last = v
		}
		if err := u.Fast.Set(0); err != nil {
			return false
		}
		u.mode = ModeFast
		for _, idle := range idles {
			idleDur := sim.Duration(idle%2000+1) * sim.Microsecond
			done := false
			if err := u.EnterSlow(u.Fast.Read(), func(sim.Time) { done = true }); err != nil {
				return false
			}
			r.sched.RunFor(40 * sim.Microsecond) // at most ~1.3 slow periods
			if !done {
				r.sched.RunFor(40 * sim.Microsecond)
			}
			check()
			r.sched.RunFor(idleDur)
			check()
			exited := false
			if err := u.ExitFast(func(uint64, sim.Time) { exited = true }); err != nil {
				return false
			}
			for i := 0; i < 4 && !exited; i++ {
				r.sched.RunFor(40 * sim.Microsecond)
			}
			if !exited {
				return false
			}
			check()
		}
		// Cumulative error bound: each hand-over loses < 1 count to the
		// floor copy plus calibration drift; allow 4 counts per cycle.
		refV := ref.Read()
		diff := math.Abs(float64(u.Now()) - float64(refV))
		return okAll && diff <= float64(len(idles)*4+800) // +1 slow-period lag when in slow mode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitWakeAt(t *testing.T) {
	r := newRig(0, 0)
	u := NewUnit(r.sched, r.fastDom, r.slowOsc, r.step(t))
	if err := u.EnterSlow(0, nil); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(sim.Millisecond)
	var wokeAt sim.Time
	var wokeVal uint64
	target := uint64(24_000_000)
	if _, err := u.WakeAt(target, "wake", func() {
		wokeAt = r.sched.Now()
		wokeVal = u.Now()
	}); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	if wokeVal < target {
		t.Fatalf("woke at value %d < target %d", wokeVal, target)
	}
	if math.Abs(wokeAt.Seconds()-1.0) > 0.001 {
		t.Fatalf("woke at %v, want ~1s", wokeAt)
	}
}

func TestUnitWakeAtDuringHandoverErrors(t *testing.T) {
	r := newRig(0, 0)
	u := NewUnit(r.sched, r.fastDom, r.slowOsc, r.step(t))
	if err := u.EnterSlow(0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := u.WakeAt(100, "w", func() {}); err == nil {
		t.Fatal("WakeAt during hand-over succeeded")
	}
}

func BenchmarkSlowCounterRead(b *testing.B) {
	s := sim.NewScheduler()
	fo := clock.NewOscillator(s, "f", 24_000_000, 0, 0)
	so := clock.NewOscillator(s, "s", 32_768, 0, 0)
	fo.PowerOn()
	so.PowerOn()
	res, err := CalibrateNow(s, fo, so)
	if err != nil {
		b.Fatal(err)
	}
	c := NewSlowCounter(s, "slow", so, res.Step)
	if err := c.Load(0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(sim.Microsecond, "adv", func() {})
		s.Step()
		c.Read()
	}
}
