package timer

import (
	"fmt"

	"odrips/internal/clock"
	"odrips/internal/fixedpoint"
	"odrips/internal/sim"
)

// Mode is the timekeeping mode of the switch unit.
type Mode int

const (
	// ModeFast: the fast timer counts on the 24 MHz clock.
	ModeFast Mode = iota
	// ModeEnteringSlow: Switch_to_32KHz asserted, waiting for the 32 kHz
	// rising edge that hands counting to the slow timer.
	ModeEnteringSlow
	// ModeSlow: the slow timer steps on the 32.768 kHz clock; the fast
	// clock may be gated and its crystal powered off.
	ModeSlow
	// ModeExitingFast: Switch_to_32KHz de-asserted, waiting for the 32 kHz
	// rising edge that hands counting back to the fast timer.
	ModeExitingFast
)

var modeNames = [...]string{"fast", "entering-slow", "slow", "exiting-fast"}

// String returns the mode name.
func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return modeNames[m]
}

// Unit is the chipset timer-switch hardware of Fig. 3(a): a fast timer, a
// slow timer, the Switch_to_32KHz control, and the hand-over protocol of
// Fig. 3(b). Crystal power and clock gating remain the chipset PMU's job;
// the unit only sequences the counters.
type Unit struct {
	sched   *sim.Scheduler
	fastDom *clock.Domain
	slowOsc *clock.Oscillator

	Fast *FastCounter
	Slow *SlowCounter

	mode       Mode
	switchFlag bool // the Switch_to_32KHz signal

	// Trace, if non-nil, receives protocol milestones for waveform
	// reconstruction (Fig. 3(b)): "assert-switch", "slow-loaded",
	// "deassert-switch", "fast-reloaded".
	Trace func(event string, at sim.Time, value uint64)
}

// NewUnit builds a switch unit in fast mode with the given calibrated step.
func NewUnit(sched *sim.Scheduler, fastDom *clock.Domain, slowOsc *clock.Oscillator, step fixedpoint.Q) *Unit {
	return &Unit{
		sched:   sched,
		fastDom: fastDom,
		slowOsc: slowOsc,
		Fast:    NewFastCounter(sched, "chipset.fast-timer", fastDom),
		Slow:    NewSlowCounter(sched, "chipset.slow-timer", slowOsc, step),
	}
}

// Mode returns the current timekeeping mode.
func (u *Unit) Mode() Mode { return u.mode }

// SwitchAsserted reports the Switch_to_32KHz signal level.
func (u *Unit) SwitchAsserted() bool { return u.switchFlag }

func (u *Unit) trace(event string, value uint64) {
	if u.Trace != nil {
		u.Trace(event, u.sched.Now(), value)
	}
}

// EnterSlow starts the ODRIPS-entry hand-over: load the fast timer with
// value (the main-timer value, already compensated for the PML transfer),
// assert Switch_to_32KHz, and at the next 32 kHz rising edge copy the fast
// timer into the slow timer and freeze the fast timer. done fires at that
// edge; afterwards the caller may gate the 24 MHz clock and power off its
// crystal.
func (u *Unit) EnterSlow(value uint64, done func(at sim.Time)) error {
	if u.mode != ModeFast {
		return fmt.Errorf("timer: EnterSlow in mode %s", u.mode)
	}
	if err := u.Fast.Set(value); err != nil {
		return err
	}
	u.mode = ModeEnteringSlow
	u.switchFlag = true
	u.trace("assert-switch", value)
	ev := u.slowOsc.ScheduleEdge("timer.switch.to-slow", func() {
		v := u.Fast.Read()
		u.Fast.Stop()
		if err := u.Slow.Load(v); err != nil {
			panic(fmt.Sprintf("timer: slow load failed mid-protocol: %v", err))
		}
		u.mode = ModeSlow
		u.trace("slow-loaded", v)
		if done != nil {
			done(u.sched.Now())
		}
	})
	if !ev.Valid() {
		u.mode = ModeFast
		u.switchFlag = false
		return fmt.Errorf("timer: 32 kHz oscillator not running")
	}
	return nil
}

// ExitFast starts the ODRIPS-exit hand-over: de-assert Switch_to_32KHz and
// at the next 32 kHz rising edge with the 24 MHz domain running, copy the
// slow timer's integer part into the fast timer and resume fast counting.
// The caller must power the 24 MHz crystal back on first; if it is still
// stabilizing, the protocol waits additional 32 kHz edges until it is
// usable. done receives the reloaded value.
func (u *Unit) ExitFast(done func(value uint64, at sim.Time)) error {
	if u.mode != ModeSlow {
		return fmt.Errorf("timer: ExitFast in mode %s", u.mode)
	}
	if !u.fastDom.Source().On() {
		return fmt.Errorf("timer: ExitFast with 24 MHz crystal off")
	}
	u.mode = ModeExitingFast
	u.switchFlag = false
	u.trace("deassert-switch", u.Slow.Read())
	u.exitAttempt(done)
	return nil
}

func (u *Unit) exitAttempt(done func(uint64, sim.Time)) {
	ev := u.slowOsc.ScheduleEdge("timer.switch.to-fast", func() {
		if !u.fastDom.Running() {
			// Crystal still stabilizing or domain still gated: retry at
			// the next slow edge. Schedule strictly after now.
			u.sched.After(sim.Duration(1), "timer.switch.retry", func() {
				u.exitAttempt(done)
			})
			return
		}
		v := u.Slow.Read() // upper 64 bits of the (64+f)-bit register
		u.Slow.Stop()
		if err := u.Fast.Set(v); err != nil {
			panic(fmt.Sprintf("timer: fast reload failed mid-protocol: %v", err))
		}
		u.mode = ModeFast
		u.trace("fast-reloaded", v)
		if done != nil {
			done(v, u.sched.Now())
		}
	})
	if !ev.Valid() {
		panic("timer: 32 kHz oscillator stopped mid-protocol")
	}
}

// Now returns the current timekeeping value in either stable mode. During
// a hand-over it returns the value of whichever counter is authoritative.
func (u *Unit) Now() uint64 {
	switch u.mode {
	case ModeFast, ModeEnteringSlow:
		return u.Fast.Read()
	default:
		return u.Slow.Read()
	}
}

// WakeAt schedules fn at the first instant the timekeeping value reaches
// target. It must be called in a stable mode (fast or slow); hand-overs
// re-arm wakes themselves.
func (u *Unit) WakeAt(target uint64, name string, fn func()) (sim.Event, error) {
	var at sim.Time
	var ok bool
	switch u.mode {
	case ModeFast:
		at, ok = u.Fast.TimeOfValue(target)
	case ModeSlow:
		at, ok = u.Slow.TimeOfValue(target)
	default:
		return sim.Event{}, fmt.Errorf("timer: WakeAt during hand-over (%s)", u.mode)
	}
	if !ok {
		return sim.Event{}, fmt.Errorf("timer: WakeAt(%d) unreachable in mode %s", target, u.mode)
	}
	return u.sched.At(at, name, fn), nil
}
